package selfemerge

// The benchmarks in this file regenerate every figure of the paper's
// evaluation (Section IV) — run them with:
//
//	go test -bench=Figure -benchmem
//
// Each figure benchmark performs one full parameter sweep per iteration at
// reduced resolution (the cmd/emergesim tool runs the full-resolution
// versions) and reports the paper-comparable headline numbers as custom
// metrics. Microbenchmarks for the substrates (Shamir, onion, sealing, DHT
// lookup, planner, Monte Carlo trial throughput) and the share-death
// ablation follow.

import (
	"fmt"
	"testing"
	"time"

	"selfemerge/internal/bench"
	"selfemerge/internal/core"
	"selfemerge/internal/crypto/onion"
	"selfemerge/internal/crypto/seal"
	"selfemerge/internal/crypto/shamir"
	"selfemerge/internal/dht"
	"selfemerge/internal/mc"
	"selfemerge/internal/sim"
	"selfemerge/internal/stats"
	"selfemerge/internal/transport"
	"selfemerge/internal/transport/simnet"
)

func benchOpts() bench.Options {
	return bench.Options{Trials: 300, PStep: 0.05, Seed: 2017}
}

// BenchmarkFigure6a — attack resilience vs p, 10,000-node DHT.
func BenchmarkFigure6a(b *testing.B) {
	var joint034, joint042 float64
	for i := 0; i < b.N; i++ {
		res, _, err := bench.Figure6(10000, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		s, _ := res.SeriesByLabel("joint")
		joint034, joint042 = s.ValueAt(0.35), s.ValueAt(0.4)
	}
	b.ReportMetric(joint034, "joint-R@p0.35")
	b.ReportMetric(joint042, "joint-R@p0.40")
}

// BenchmarkFigure6b — required nodes C vs p, 10,000-node DHT.
func BenchmarkFigure6b(b *testing.B) {
	var cost float64
	for i := 0; i < b.N; i++ {
		_, costFig, err := bench.Figure6(10000, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		s, _ := costFig.SeriesByLabel("joint")
		cost = s.ValueAt(0.35)
	}
	b.ReportMetric(cost, "joint-C@p0.35")
}

// BenchmarkFigure6c — attack resilience vs p, 100-node DHT.
func BenchmarkFigure6c(b *testing.B) {
	var joint float64
	for i := 0; i < b.N; i++ {
		res, _, err := bench.Figure6(100, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		s, _ := res.SeriesByLabel("joint")
		joint = s.ValueAt(0.3)
	}
	b.ReportMetric(joint, "joint-R@p0.30")
}

// BenchmarkFigure6d — required nodes C vs p, 100-node DHT.
func BenchmarkFigure6d(b *testing.B) {
	var cost float64
	for i := 0; i < b.N; i++ {
		_, costFig, err := bench.Figure6(100, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		s, _ := costFig.SeriesByLabel("joint")
		cost = s.ValueAt(0.3)
	}
	b.ReportMetric(cost, "joint-C@p0.30")
}

// benchmarkFigure7 runs one churn panel and reports share vs joint at p=0.2.
func benchmarkFigure7(b *testing.B, alpha float64) {
	b.Helper()
	var share, joint float64
	for i := 0; i < b.N; i++ {
		fig, err := bench.Figure7(alpha, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		s, _ := fig.SeriesByLabel("share")
		j, _ := fig.SeriesByLabel("joint")
		share, joint = s.ValueAt(0.2), j.ValueAt(0.2)
	}
	b.ReportMetric(share, "share-R@p0.2")
	b.ReportMetric(joint, "joint-R@p0.2")
}

// BenchmarkFigure7a..7d — churn resilience vs p at alpha = 1, 2, 3, 5.
func BenchmarkFigure7a(b *testing.B) { benchmarkFigure7(b, 1) }
func BenchmarkFigure7b(b *testing.B) { benchmarkFigure7(b, 2) }
func BenchmarkFigure7c(b *testing.B) { benchmarkFigure7(b, 3) }
func BenchmarkFigure7d(b *testing.B) { benchmarkFigure7(b, 5) }

// BenchmarkFigure8 — key share routing cost: R vs p for 100..10000
// available nodes at alpha = 3.
func BenchmarkFigure8(b *testing.B) {
	metrics := map[string]float64{}
	for i := 0; i < b.N; i++ {
		fig, err := bench.Figure8(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, label := range []string{"100", "1000", "10000"} {
			s, _ := fig.SeriesByLabel(label)
			metrics["R@p0.15-n"+label] = s.ValueAt(0.15)
		}
	}
	for name, v := range metrics {
		b.ReportMetric(v, name)
	}
}

// BenchmarkAblationShareDeathModel quantifies the share-loss modelling
// choice documented in DESIGN.md: the paper's deterministic per-column
// loss (d = floor(pdead*n), what Algorithm 1 budgets for) versus
// independent exponential deaths, at the Figure 8 operating point that
// separates them most (100 available nodes, alpha = 3, p = 0.1).
func BenchmarkAblationShareDeathModel(b *testing.B) {
	plan, err := core.PlanKeyShare(0.1, 3, 1, core.PlannerConfig{Budget: 100})
	if err != nil {
		b.Fatal(err)
	}
	base := mc.Env{Population: 10000, Malicious: 1000, Alpha: 3}
	var paper, binom float64
	for i := 0; i < b.N; i++ {
		envP := base
		resP, err := mc.Estimate(plan, envP, mc.Options{Trials: 2000, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		envB := base
		envB.ShareModel = mc.ShareModelBinomial
		resB, err := mc.Estimate(plan, envB, mc.Options{Trials: 2000, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		paper, binom = resP.R(), resB.R()
	}
	b.ReportMetric(paper, "R-paper-model")
	b.ReportMetric(binom, "R-binomial-model")
}

// BenchmarkPlannerJoint measures the (k, l) search at the paper's scale.
func BenchmarkPlannerJoint(b *testing.B) {
	cfg := core.PlannerConfig{Budget: 10000}
	for i := 0; i < b.N; i++ {
		if _, err := core.PlanMultipath(core.SchemeJoint, 0.3, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlannerKeyShare measures Algorithm 1 plus the shape search.
func BenchmarkPlannerKeyShare(b *testing.B) {
	cfg := core.PlannerConfig{Budget: 10000}
	for i := 0; i < b.N; i++ {
		if _, err := core.PlanKeyShare(0.3, 3, 1, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMCTrialJoint measures Monte Carlo trial throughput for a large
// joint topology under churn (the hot loop of Figure 7).
func BenchmarkMCTrialJoint(b *testing.B) {
	plan := core.Plan{Scheme: core.SchemeJoint, K: 9, L: 150}
	env := mc.Env{Population: 10000, Malicious: 3000, Alpha: 3}
	rng := stats.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mc.RunTrial(plan, env, rng)
	}
}

// BenchmarkShamirSplit / Combine — the share scheme's crypto inner loop
// (32-byte keys, the paper's m=2, n=3 example and a wider (10, 30)).
func BenchmarkShamirSplit(b *testing.B) {
	secret := make([]byte, seal.KeySize)
	for i := 0; i < b.N; i++ {
		if _, err := shamir.Split(secret, 10, 30); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShamirCombine(b *testing.B) {
	secret := make([]byte, seal.KeySize)
	shares, err := shamir.Split(secret, 10, 30)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := shamir.Combine(shares[:10], 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOnionBuild / Peel — wrapping and unwrapping a 10-layer onion.
func onionFixture(b *testing.B) ([]onion.Layer, []seal.Key) {
	b.Helper()
	const layers = 10
	ls := make([]onion.Layer, layers)
	keys := make([]seal.Key, layers)
	hop := dht.IDFromKey([]byte("hop"))
	for i := range ls {
		ls[i] = onion.Layer{NextHops: [][]byte{hop[:], hop[:]}}
		k, err := seal.NewKey()
		if err != nil {
			b.Fatal(err)
		}
		keys[i] = k
	}
	ls[layers-1].Payload = make([]byte, seal.KeySize)
	return ls, keys
}

func BenchmarkOnionBuild(b *testing.B) {
	ls, keys := onionFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := onion.Build(ls, keys); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOnionPeel(b *testing.B) {
	ls, keys := onionFixture(b)
	wrapped, err := onion.Build(ls, keys)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := onion.Peel(keys[0], wrapped); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSeal measures AES-GCM sealing of a 1 KiB payload.
func BenchmarkSeal(b *testing.B) {
	key, err := seal.NewKey()
	if err != nil {
		b.Fatal(err)
	}
	msg := make([]byte, 1024)
	b.SetBytes(int64(len(msg)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := seal.Encrypt(key, msg, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDHTLookup measures one iterative lookup in a 256-node simnet
// cluster, including all message processing.
func BenchmarkDHTLookup(b *testing.B) {
	s := sim.NewSimulator()
	net := simnet.New(s, simnet.Config{BaseLatency: time.Millisecond, Seed: 3})
	rng := stats.NewRNG(4)
	var nodes []*dht.Node
	for i := 0; i < 256; i++ {
		ep := net.Endpoint(transport.Addr(fmt.Sprintf("n%d", i)))
		node, err := dht.NewNode(dht.Config{ID: dht.RandomID(rng), Endpoint: ep, Clock: s})
		if err != nil {
			b.Fatal(err)
		}
		nodes = append(nodes, node)
	}
	seed := []dht.Contact{nodes[0].Contact()}
	for _, n := range nodes[1:] {
		n.Bootstrap(seed, nil)
	}
	s.Run()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		done := false
		nodes[i%len(nodes)].Lookup(dht.RandomID(rng), func([]dht.Contact) { done = true })
		s.Run()
		if !done {
			b.Fatal("lookup did not finish")
		}
	}
}

// BenchmarkSimnetThroughput measures the raw simnet fabric hot path —
// send, loss/jitter decision, delivery event, handler dispatch — and
// reports messages per second of wall time.
func BenchmarkSimnetThroughput(b *testing.B) {
	s := sim.NewSimulator()
	net := simnet.New(s, simnet.Config{BaseLatency: time.Millisecond, Jitter: time.Millisecond, Seed: 5})
	const n = 64
	addrs := make([]transport.Addr, n)
	eps := make([]transport.Endpoint, n)
	delivered := 0
	for i := range addrs {
		addrs[i] = transport.Addr(fmt.Sprintf("n%d", i))
		eps[i] = net.Endpoint(addrs[i])
		eps[i].SetHandler(func(transport.Addr, []byte) { delivered++ })
	}
	payload := make([]byte, 256)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eps[i%n].Send(addrs[(i+1)%n], payload); err != nil {
			b.Fatal(err)
		}
		if i%1024 == 1023 {
			s.Run() // drain in batches, keeping the event heap realistic
		}
	}
	s.Run()
	b.StopTimer()
	if delivered == 0 {
		b.Fatal("nothing delivered")
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "msgs/sec")
}

// BenchmarkMissionAllocs measures allocations over one complete mission
// cycle — dispatch, hold, release, delivery check — through a pre-booted
// 60-node network with the joint 2x2 plan. This is the allocation gate for
// the zero-allocation crypto & wire path: CI fails if allocs/op regresses
// above the baseline committed in BENCH_scenario.json (an exact allocation
// count, not a timing). Retry is enabled (on a fault-free fabric, so no
// re-send ever fires): the gate covers the hardened steady state — acked
// app delivery, wire retention, receiver dedup — not just the legacy
// single-shot path.
func BenchmarkMissionAllocs(b *testing.B) {
	net, err := NewNetwork(NetworkConfig{Nodes: 60, Seed: 11, Retry: 3})
	if err != nil {
		b.Fatal(err)
	}
	plan := core.Plan{Scheme: core.SchemeJoint, K: 2, L: 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		msg, err := net.Send([]byte("alloc probe"), time.Hour, WithPlan(plan))
		if err != nil {
			b.Fatal(err)
		}
		net.RunUntil(msg.Release().Add(time.Minute))
		net.Settle()
		if _, _, ok := net.Emerged(msg); !ok {
			b.Fatal("mission did not emerge")
		}
	}
}

// BenchmarkShamirSplitSeeded is BenchmarkShamirSplit on the deterministic
// stream with the batched coefficient draw — the mission dispatch path of
// seeded live runs (one Read per split instead of one per secret byte, no
// syscalls).
func BenchmarkShamirSplitSeeded(b *testing.B) {
	secret := make([]byte, seal.KeySize)
	stream := stats.NewByteStream(3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := shamir.SplitRand(stream, secret, 10, 30); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOnionBuildSealers is BenchmarkOnionBuild through cached Sealer
// handles and a seeded nonce stream: the key schedules are paid once outside
// the loop and the intermediate layers run through pooled scratch, so one
// build allocates only its output.
func BenchmarkOnionBuildSealers(b *testing.B) {
	ls, keys := onionFixture(b)
	stream := stats.NewByteStream(4)
	sealers := make([]*seal.Sealer, len(keys))
	for i, k := range keys {
		s, err := seal.NewSealerRand(k, stream)
		if err != nil {
			b.Fatal(err)
		}
		sealers[i] = s
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := onion.BuildSealers(ls, sealers); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEndEmergence measures a full send->emerge cycle (100-node
// network, joint scheme) in simulated time.
func BenchmarkEndToEndEmergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		net, err := NewNetwork(NetworkConfig{Nodes: 100, Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		msg, err := net.Send([]byte("benchmark payload"), time.Hour,
			WithScheme(SchemeJoint), WithThreatModel(0.1))
		if err != nil {
			b.Fatal(err)
		}
		net.RunUntil(msg.Release().Add(time.Minute))
		net.Settle()
		if _, _, ok := net.Emerged(msg); !ok {
			b.Fatal("message did not emerge")
		}
	}
}
