// Command voting reproduces the paper's secure-voting scenario (Section I):
// encrypted ballots are collected during the polling window, but the
// tallying key is self-emerging and appears only after the polls close —
// even the election authority cannot count early. A drop-attacking
// adversary tries to destroy the key instead.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"selfemerge"
)

func main() {
	// Honest run: ballots count after the polls close.
	net, err := selfemerge.NewNetwork(selfemerge.NetworkConfig{Nodes: 250, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}

	ballots := []string{"alice: YES", "bob: NO", "carol: YES", "dave: YES"}
	const pollWindow = 8 * time.Hour

	tallyKey, err := net.Send([]byte(strings.Join(ballots, "\n")), pollWindow,
		selfemerge.WithScheme(selfemerge.SchemeKeyShare), // long window: churn-resilient scheme
		selfemerge.WithThreatModel(0.2),
	)
	if err != nil {
		log.Fatal(err)
	}
	plan := tallyKey.Plan()
	fmt.Printf("polls close at %v; tally key routed via %v (k=%d, l=%d, n=%d per column)\n",
		tallyKey.Release().Format(time.Kitchen), plan.Scheme, plan.K, plan.L, plan.ShareN)

	// Mid-poll: counting must be impossible.
	net.RunUntil(tallyKey.Release().Add(-pollWindow / 2))
	if _, _, ok := net.Emerged(tallyKey); ok {
		log.Fatal("BUG: tally possible mid-poll")
	}
	fmt.Printf("%v: polls still open, tally key still dispersed\n", net.Now().Format(time.Kitchen))

	// After close: tally.
	net.RunUntil(tallyKey.Release().Add(time.Minute))
	net.Settle()
	tally, at, ok := net.Emerged(tallyKey)
	if !ok {
		log.Fatal("tally key never emerged")
	}
	yes := strings.Count(string(tally), "YES")
	no := strings.Count(string(tally), ": NO")
	fmt.Printf("%v: polls closed, tally: YES=%d NO=%d\n\n", at.Format(time.Kitchen), yes, no)

	// Adversarial run: 100% of nodes drop every package they hold.
	hostile, err := selfemerge.NewNetwork(selfemerge.NetworkConfig{
		Nodes:         250,
		MaliciousRate: 1,
		DropAttack:    true,
		Seed:          12,
	})
	if err != nil {
		log.Fatal(err)
	}
	doomed, err := hostile.Send([]byte("YES: 3, NO: 1"), pollWindow,
		selfemerge.WithScheme(selfemerge.SchemeKeyShare))
	if err != nil {
		log.Fatal(err)
	}
	hostile.RunUntil(doomed.Release().Add(time.Hour))
	hostile.Settle()
	if _, _, ok := hostile.Emerged(doomed); ok {
		fmt.Println("unexpected: tally survived a total drop attack")
	} else {
		fmt.Println("drop attack demo: a fully hostile DHT destroyed the tally key (availability, not secrecy, is lost)")
	}
}
