// Command quickstart is the 60-second tour: send a message to the future
// over a simulated 200-node DHT and watch it emerge at the release time —
// and not a moment earlier.
package main

import (
	"fmt"
	"log"
	"time"

	"selfemerge"
)

func main() {
	net, err := selfemerge.NewNetwork(selfemerge.NetworkConfig{
		Nodes: 200,
		Seed:  1,
	})
	if err != nil {
		log.Fatalf("building network: %v", err)
	}

	const emerging = 24 * time.Hour
	msg, err := net.Send(
		[]byte("the vault combination is 7-21-34"),
		emerging,
		selfemerge.WithScheme(selfemerge.SchemeJoint),
		selfemerge.WithThreatModel(0.2), // plan against 20% Sybil nodes
	)
	if err != nil {
		log.Fatalf("sending: %v", err)
	}
	plan := msg.Plan()
	fmt.Printf("dispatched: scheme=%v paths k=%d, columns l=%d, holders=%d, release=%v\n",
		plan.Scheme, plan.K, plan.L, plan.NodesRequired(), msg.Release().Format(time.Kitchen))

	// An hour before release: the ciphertext is in the cloud, but no key.
	net.RunUntil(msg.Release().Add(-time.Hour))
	if _, _, ok := net.Emerged(msg); ok {
		log.Fatal("BUG: message emerged early")
	}
	fmt.Printf("%v: nothing has emerged (as it should be)\n", net.Now().Format(time.Kitchen))

	// Past release: the key has hopped its way to the receiver.
	net.RunUntil(msg.Release().Add(time.Minute))
	net.Settle()
	plaintext, at, ok := net.Emerged(msg)
	if !ok {
		log.Fatal("message never emerged")
	}
	fmt.Printf("%v: emerged (delivered %v after release): %q\n",
		net.Now().Format(time.Kitchen), at.Sub(msg.Release()).Round(time.Millisecond), plaintext)
}
