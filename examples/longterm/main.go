// Command longterm demonstrates the headline result of the paper's churn
// evaluation (Figure 7): hiding a key for five node lifetimes (alpha = 5).
// Schemes that pre-assign layer keys bleed custody to churn, while key
// share routing holds — "if the average lifetime of a DHT node is one
// month, the key share routing scheme can successfully hide the secret key
// for 5 months" (Section IV-B2).
//
// This example runs the comparison twice: analytically via the planner's
// predictions, and empirically via Monte Carlo trials on the experiment
// engine that regenerates Figure 7.
package main

import (
	"fmt"
	"log"

	"selfemerge/internal/core"
	"selfemerge/internal/mc"
)

func main() {
	const (
		network = 10000
		p       = 0.2 // adversary controls 20% of nodes
		alpha   = 5.0 // emerging period = 5 mean lifetimes
		trials  = 2000
	)
	env := mc.Env{Population: network, Malicious: int(p * network), Alpha: alpha}
	cfg := core.PlannerConfig{Budget: network}

	fmt.Printf("hiding a key for %g node lifetimes with %.0f%% malicious nodes (%d trials/scheme)\n\n",
		alpha, p*100, trials)
	fmt.Printf("%-10s %8s %8s %8s %10s\n", "scheme", "Rr", "Rd", "R", "holders")

	for _, scheme := range []core.Scheme{core.SchemeCentral, core.SchemeDisjoint, core.SchemeJoint, core.SchemeKeyShare} {
		var plan core.Plan
		var err error
		switch scheme {
		case core.SchemeCentral:
			plan = core.PlanCentral(p)
		case core.SchemeDisjoint, core.SchemeJoint:
			plan, err = core.PlanMultipath(scheme, p, cfg)
		case core.SchemeKeyShare:
			plan, err = core.PlanKeyShare(p, alpha, 1, cfg)
		}
		if err != nil {
			log.Fatal(err)
		}
		res, err := mc.Estimate(plan, env, mc.Options{Trials: trials, Seed: 99})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %8.3f %8.3f %8.3f %10d\n",
			scheme, res.Rr(), res.Rd(), res.R(), plan.NodesRequired())
	}
	fmt.Println("\nR = P[key emerges at tr and was never reconstructable early].")
	fmt.Println("Only key share routing survives alpha = 5; the others lose the key to churn")
	fmt.Println("or leak it through churn-repair re-replication (Section II-C).")
}
