// Command onlineexam reproduces the paper's online-examination scenario
// (Section I): exam questions are published as self-emerging data before
// the exam window, and a cheating student controlling a fraction of the
// DHT tries a release-ahead attack to leak them early.
//
// Two networks are compared: a mild adversary (10% Sybil nodes) against the
// joint scheme, and a total compromise that demonstrates what the attack
// looks like when it wins.
package main

import (
	"fmt"
	"log"
	"time"

	"selfemerge"
)

const questions = `Q1: Prove Lemma 1 (Rr + Rd > 1 for p < 0.5).
Q2: Derive Equation (3) for the node-joint scheme.
Q3: Why does churn favour just-in-time key shares?`

func run(name string, maliciousRate float64) {
	fmt.Printf("--- %s (p = %.0f%%) ---\n", name, maliciousRate*100)
	net, err := selfemerge.NewNetwork(selfemerge.NetworkConfig{
		Nodes:         300,
		MaliciousRate: maliciousRate,
		Seed:          7,
	})
	if err != nil {
		log.Fatal(err)
	}

	const untilExam = 12 * time.Hour
	exam, err := net.Send([]byte(questions), untilExam,
		selfemerge.WithScheme(selfemerge.SchemeJoint),
		selfemerge.WithThreatModel(0.25),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exam sealed; starts at %v; plan k=%d l=%d using %d holders\n",
		exam.Release().Format(time.Kitchen), exam.Plan().K, exam.Plan().L, exam.Plan().NodesRequired())

	// The night before the exam, the adversary collects from its nodes.
	net.RunUntil(exam.Release().Add(-time.Hour))
	if at, ok := net.AdversaryRecovered(exam); ok && net.AdversaryDecrypts(exam) {
		fmt.Printf("LEAKED: adversary reconstructed the key at %v, %v before the exam\n",
			at.Format(time.Kitchen), exam.Release().Sub(at).Round(time.Minute))
	} else {
		fmt.Println("no leak: adversary could not reconstruct the key before the exam")
	}

	// Exam time: the questions appear for everyone.
	net.RunUntil(exam.Release())
	net.Settle()
	if paper, at, ok := net.Emerged(exam); ok {
		fmt.Printf("exam opened at %v:\n%s\n\n", at.Format(time.Kitchen), paper)
	} else {
		fmt.Print("exam questions were lost (drop attack or churn)\n\n")
	}
}

func main() {
	run("honest-majority DHT", 0.10)
	run("fully compromised DHT", 1.00)
}
