package selfemerge

import (
	"fmt"
	"testing"
	"time"

	"selfemerge/internal/protocol"
)

// runTrace drives a fixed two-mission workload under churn and a drop
// adversary and returns a full observable fingerprint of the run: mission
// outcomes with timestamps and secrets, churn totals, and fabric counters.
func runTrace(t *testing.T, cfg NetworkConfig) string {
	t.Helper()
	net, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := ""
	for m := 0; m < 2; m++ {
		var id protocol.MissionID
		id[0] = byte(m + 1)
		msg, err := net.Send([]byte("partition golden"), 2*time.Hour,
			WithScheme(SchemeJoint), WithThreatModel(0.1), WithMissionID(id))
		if err != nil {
			t.Fatal(err)
		}
		net.RunUntil(msg.Release().Add(time.Minute))
		net.Settle()
		plain, at, ok := net.Emerged(msg)
		recAt, rec := net.AdversaryRecovered(msg)
		out += fmt.Sprintf("mission=%d emerged=%v at=%d plain=%q recovered=%v recAt=%d\n",
			m, ok, at.UnixNano(), plain, rec, recAt.UnixNano())
	}
	deaths, joins := net.ChurnEvents()
	sent, delivered, dropped := net.FabricStats()
	out += fmt.Sprintf("deaths=%d joins=%d sent=%d delivered=%d dropped=%d now=%d\n",
		deaths, joins, sent, delivered, dropped, net.Now().UnixNano())
	return out
}

// TestPartitionOneMatchesClassic is the compatibility golden: the partition
// engine with a single shard must reproduce the historical single-loop run
// byte for byte — same deliveries, same timestamps, same churn and fabric
// counters — because shard 0 keeps every classic seed derivation and a
// one-shard lockstep runs the same event sequence.
func TestPartitionOneMatchesClassic(t *testing.T) {
	cfg := NetworkConfig{
		Nodes:           80,
		MaliciousRate:   0.2,
		Attack:          AttackDrop,
		MeanLifetime:    3 * time.Hour,
		Replace:         true,
		Repair:          true,
		HonestEndpoints: true,
		Replicas:        1,
		Seed:            11,
	}
	classic := runTrace(t, cfg)
	part := cfg
	part.Partition = 1
	if got := runTrace(t, part); got != classic {
		t.Errorf("Partition:1 diverged from the classic run\nclassic:\n%spartition:\n%s", classic, got)
	}
}

// TestPartitionDeterministicAcrossWorkers checks the partition engine's
// headline property end to end: a multi-shard run's full observable
// fingerprint is identical whether the shard loops run serially or on
// concurrent workers.
func TestPartitionDeterministicAcrossWorkers(t *testing.T) {
	cfg := NetworkConfig{
		Nodes:           80,
		MaliciousRate:   0.2,
		Attack:          AttackDrop,
		MeanLifetime:    3 * time.Hour,
		Replace:         true,
		Repair:          true,
		HonestEndpoints: true,
		Replicas:        1,
		Seed:            11,
		Partition:       4,
	}
	cfg.PartitionWorkers = 1
	serial := runTrace(t, cfg)
	for _, workers := range []int{0, 4} {
		cfg.PartitionWorkers = workers
		if got := runTrace(t, cfg); got != serial {
			t.Errorf("workers=%d diverged from serial run\nserial:\n%sworkers:\n%s", workers, serial, got)
		}
	}
}

// TestPartitionDeliversAcrossShards is a plain liveness check: missions
// still emerge when the population spans several shards.
func TestPartitionDeliversAcrossShards(t *testing.T) {
	net, err := NewNetwork(NetworkConfig{Nodes: 60, Seed: 1, Partition: 3})
	if err != nil {
		t.Fatal(err)
	}
	msg, err := net.Send([]byte("cross-shard"), 4*time.Hour,
		WithScheme(SchemeJoint), WithThreatModel(0.1))
	if err != nil {
		t.Fatal(err)
	}
	net.RunUntil(msg.Release().Add(-time.Minute))
	if _, _, ok := net.Emerged(msg); ok {
		t.Fatal("message emerged before release time")
	}
	net.RunUntil(msg.Release().Add(time.Minute))
	net.Settle()
	plain, _, ok := net.Emerged(msg)
	if !ok {
		t.Fatal("message never emerged across shards")
	}
	if string(plain) != "cross-shard" {
		t.Fatalf("plaintext = %q", plain)
	}
}
