// Command emergelint is the repository's analyzer suite: machine-checked
// determinism, copy-to-retain and pool acquire/release invariants as a
// vet-style multichecker.
//
// Standalone:
//
//	go run ./cmd/emergelint ./...
//
// As a vet tool (what CI runs; covers test files and build variants):
//
//	go build -o emergelint ./cmd/emergelint
//	go vet -vettool=$(pwd)/emergelint ./...
//
// Diagnostics at audited exception sites are suppressed with a mandatory
// reason: //lint:allow <analyzer> <reason>. Unused annotations are
// themselves diagnostics, so exemptions cannot go stale.
package main

import (
	"fmt"
	"os"

	"selfemerge/internal/lint"
)

func main() {
	args := os.Args[1:]
	if lint.VetMain(args, lint.Suite()) {
		return
	}
	if len(args) == 1 && args[0] == "help" {
		usage()
		return
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "emergelint:", err)
		os.Exit(1)
	}
	pkgs, err := lint.Load(dir, args...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "emergelint:", err)
		os.Exit(1)
	}
	exit := 0
	for _, pkg := range pkgs {
		diags, err := lint.RunAnalyzers(pkg, lint.Suite())
		if err != nil {
			fmt.Fprintln(os.Stderr, "emergelint:", err)
			os.Exit(1)
		}
		for _, d := range diags {
			fmt.Printf("%s: %s: %s\n", pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
			exit = 1
		}
	}
	os.Exit(exit)
}

func usage() {
	fmt.Println("emergelint checks the repository's determinism, retain and pool contracts.")
	fmt.Println()
	fmt.Println("usage: emergelint [packages]   (standalone, non-test files)")
	fmt.Println("       go vet -vettool=emergelint ./...   (full coverage)")
	fmt.Println()
	for _, a := range lint.Suite() {
		fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		fmt.Println()
	}
}
