// Command dhtnode runs a real Kademlia DHT node over UDP — the same node
// implementation the simulations use, on sockets instead of simnet. Start a
// few in separate terminals to form a local cluster, then store and fetch
// values through any member.
//
// Usage:
//
//	dhtnode -listen 127.0.0.1:4001                        # first node
//	dhtnode -listen 127.0.0.1:4002 -join 127.0.0.1:4001   # join via seed
//	dhtnode -listen 127.0.0.1:4003 -join 127.0.0.1:4001 \
//	        -store exam=ciphertext                        # store a value
//	dhtnode -listen 127.0.0.1:4004 -join 127.0.0.1:4001 \
//	        -get exam -oneshot                            # fetch and exit
package main

import (
	"crypto/rand"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"selfemerge/internal/dht"
	"selfemerge/internal/sim"
	"selfemerge/internal/stats"
	"selfemerge/internal/transport"
	"selfemerge/internal/transport/udp"
)

func main() {
	var (
		listen  = flag.String("listen", "127.0.0.1:0", "UDP address to listen on")
		join    = flag.String("join", "", "comma-separated seed addresses to bootstrap from")
		store   = flag.String("store", "", "key=value to store after joining")
		get     = flag.String("get", "", "key to look up after joining")
		oneshot = flag.Bool("oneshot", false, "exit after performing -store/-get")
	)
	flag.Parse()

	ep, err := udp.Listen(*listen)
	if err != nil {
		fatal(err)
	}
	var seed [8]byte
	if _, err := rand.Read(seed[:]); err != nil {
		fatal(err)
	}
	rng := stats.NewRNG(uint64(seed[0]) | uint64(seed[1])<<8 | uint64(seed[2])<<16 | uint64(seed[3])<<24)
	node, err := dht.NewNode(dht.Config{
		ID:       dht.RandomID(rng),
		Endpoint: ep,
		Clock:    sim.RealClock(),
		OnApp: func(from dht.Contact, payload []byte) {
			fmt.Printf("app message from %s: %q\n", from.ID.Short(), payload)
		},
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("node %s listening on %s\n", node.ID().Short(), ep.Addr())

	if *join != "" {
		done := make(chan int, 1)
		var seeds []dht.Contact
		for _, addr := range strings.Split(*join, ",") {
			// The seed's ID is learned from its first reply; a zero ID
			// placeholder is enough to route the initial lookup.
			seeds = append(seeds, dht.Contact{ID: dht.IDFromKey([]byte(addr)), Addr: transport.Addr(addr)})
		}
		node.Bootstrap(seeds, func(contacts int) { done <- contacts })
		select {
		case n := <-done:
			fmt.Printf("joined: %d contacts\n", n)
		case <-time.After(5 * time.Second):
			fmt.Println("join timed out (no seeds reachable)")
		}
	}

	if *store != "" {
		kv := strings.SplitN(*store, "=", 2)
		if len(kv) != 2 {
			fatal(fmt.Errorf("-store wants key=value, got %q", *store))
		}
		done := make(chan int, 1)
		node.Store(dht.IDFromKey([]byte(kv[0])), []byte(kv[1]), time.Hour, func(acked int) { done <- acked })
		select {
		case acked := <-done:
			fmt.Printf("stored %q at %d replicas\n", kv[0], acked)
		case <-time.After(5 * time.Second):
			fmt.Println("store timed out")
		}
	}

	if *get != "" {
		done := make(chan struct{}, 1)
		node.Get(dht.IDFromKey([]byte(*get)), func(value []byte, ok bool) {
			if ok {
				fmt.Printf("%s = %q\n", *get, value)
			} else {
				fmt.Printf("%s not found\n", *get)
			}
			done <- struct{}{}
		})
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			fmt.Println("get timed out")
		}
	}

	if *oneshot {
		_ = node.Close()
		return
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	_ = node.Close()
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dhtnode: %v\n", err)
	os.Exit(1)
}
