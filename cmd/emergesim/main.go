// Command emergesim regenerates the paper's evaluation (Section IV): every
// panel of Figures 6, 7 and 8, as ASCII tables or CSV — and, with the
// scenario subcommand, measures the same Rr/Rd quantities by running live
// missions through the full protocol stack under churn and adversaries,
// cross-checked against the Monte Carlo model.
//
// Usage:
//
//	emergesim [flags] fig6a|fig6b|fig6c|fig6d|fig7|fig8|all
//	emergesim scenario [flags]
//
// Examples:
//
//	emergesim -trials 1000 -step 0.02 all        # full-resolution, all figures
//	emergesim -alpha 5 fig7                      # one churn panel
//	emergesim -csv fig8 > fig8.csv               # machine-readable series
//	emergesim scenario -nodes 1000 -p 0.1 -alpha 1 -drop -k 3 -l 2 -missions 200
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"selfemerge/internal/bench"
	"selfemerge/internal/core"
	"selfemerge/internal/scenario"
)

// runScenario is the `emergesim scenario` subcommand: one live-network
// experiment point next to its Monte Carlo and analytic references.
func runScenario(args []string) {
	fs := flag.NewFlagSet("scenario", flag.ExitOnError)
	var (
		nodes    = fs.Int("nodes", 200, "DHT population N")
		p        = fs.Float64("p", 0.1, "malicious (Sybil) fraction")
		alpha    = fs.Float64("alpha", 1, "churn severity T/lifetime (0 disables churn)")
		drop     = fs.Bool("drop", false, "drop attack instead of spying")
		scheme   = fs.String("scheme", "joint", "routing scheme: central|disjoint|joint|share")
		k        = fs.Int("k", 3, "replication factor (paths)")
		l        = fs.Int("l", 2, "path length (holder columns)")
		shareN   = fs.Int("sharen", 0, "share carriers per column (share scheme)")
		shareM   = fs.String("sharem", "", "comma-separated per-column thresholds (share scheme)")
		missions = fs.Int("missions", 100, "live emergence trials")
		emerging = fs.Duration("emerging", 2*time.Hour, "emerging period T")
		replicas = fs.Int("replicas", 1, "packet replica count (1 = model-faithful)")
		mcTrials = fs.Int("mc-trials", 2000, "Monte Carlo reference trials")
		seed     = fs.Uint64("seed", 2017, "RNG seed")
	)
	_ = fs.Parse(args)

	plan, err := scenarioPlan(*scheme, *k, *l, *shareN, *shareM)
	if err != nil {
		fmt.Fprintf(os.Stderr, "emergesim: %v\n", err)
		os.Exit(2)
	}
	report, err := scenario.Run(scenario.Config{
		Nodes:         *nodes,
		MaliciousRate: *p,
		Drop:          *drop,
		Alpha:         *alpha,
		Emerging:      *emerging,
		Missions:      *missions,
		Plan:          plan,
		Replicas:      *replicas,
		MCTrials:      *mcTrials,
		Seed:          *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "emergesim: %v\n", err)
		os.Exit(1)
	}
	if err := report.WriteTable(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "emergesim: %v\n", err)
		os.Exit(1)
	}
}

// scenarioPlan assembles the routing plan from subcommand flags.
func scenarioPlan(scheme string, k, l, shareN int, shareM string) (core.Plan, error) {
	switch scheme {
	case "central":
		return core.Plan{Scheme: core.SchemeCentral, K: 1, L: 1}, nil
	case "disjoint":
		return core.Plan{Scheme: core.SchemeDisjoint, K: k, L: l}, nil
	case "joint":
		return core.Plan{Scheme: core.SchemeJoint, K: k, L: l}, nil
	case "share":
		var thresholds []int
		if shareM != "" {
			for _, part := range strings.Split(shareM, ",") {
				m, err := strconv.Atoi(strings.TrimSpace(part))
				if err != nil {
					return core.Plan{}, fmt.Errorf("bad -sharem %q: %w", shareM, err)
				}
				thresholds = append(thresholds, m)
			}
		}
		return core.Plan{Scheme: core.SchemeKeyShare, K: k, L: l, ShareN: shareN, ShareM: thresholds}, nil
	default:
		return core.Plan{}, fmt.Errorf("unknown scheme %q", scheme)
	}
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "scenario" {
		runScenario(os.Args[2:])
		return
	}
	var (
		trials    = flag.Int("trials", 1000, "Monte Carlo trials per data point (paper: 1000)")
		step      = flag.Float64("step", 0.02, "malicious-rate grid step")
		seed      = flag.Uint64("seed", 2017, "base RNG seed")
		alpha     = flag.Float64("alpha", 3, "churn severity T/tlife for fig7")
		csv       = flag.Bool("csv", false, "emit CSV instead of a table")
		predicted = flag.Bool("predicted", false, "include closed-form curves next to measured ones (fig6)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: emergesim [flags] fig6a|fig6b|fig6c|fig6d|fig7|fig8|all")
		flag.PrintDefaults()
		os.Exit(2)
	}

	opts := bench.Options{
		Trials:           *trials,
		PStep:            *step,
		Seed:             *seed,
		IncludePredicted: *predicted,
	}
	emit := func(fig bench.Figure, err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "emergesim: %v\n", err)
			os.Exit(1)
		}
		if *csv {
			if err := fig.WriteCSV(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "emergesim: %v\n", err)
				os.Exit(1)
			}
			return
		}
		if err := fig.WriteTable(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "emergesim: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
	}
	fig6 := func(network int, wantRes bool) {
		res, cost, err := bench.Figure6(network, opts)
		if wantRes {
			emit(res, err)
		} else {
			emit(cost, err)
		}
	}

	switch flag.Arg(0) {
	case "fig6a":
		fig6(10000, true)
	case "fig6b":
		fig6(10000, false)
	case "fig6c":
		fig6(100, true)
	case "fig6d":
		fig6(100, false)
	case "fig7":
		emit(bench.Figure7(*alpha, opts))
	case "fig8":
		emit(bench.Figure8(opts))
	case "all":
		res, cost, err := bench.Figure6(10000, opts)
		emit(res, err)
		emit(cost, err)
		res, cost, err = bench.Figure6(100, opts)
		emit(res, err)
		emit(cost, err)
		for _, a := range []float64{1, 2, 3, 5} {
			emit(bench.Figure7(a, opts))
		}
		emit(bench.Figure8(opts))
	default:
		fmt.Fprintf(os.Stderr, "emergesim: unknown figure %q\n", flag.Arg(0))
		os.Exit(2)
	}
}
