// Command emergesim regenerates the paper's evaluation (Section IV) through
// the unified experiment engine: declarative parameter sweeps executed by
// any of the three estimators — closed-form analytic, Monte Carlo, or the
// live protocol stack (simnet + Kademlia + protocol hosts under churn and
// adversaries, cross-checked against the matched Monte Carlo references).
//
// Usage:
//
//	emergesim sweep -estimator live|mc|analytic -axis name=values ... [flags]
//	emergesim scenario [flags]
//	emergesim [flags] fig6a|fig6b|fig6c|fig6d|fig7|fig8|all
//
// An axis is "name=v1,v2,..." or "name=start:stop:step" over p, alpha,
// network (alias: nodes), budget, k, l, sharen, replicas, forge, partition,
// faultsev, retry, scheme, drop, strategy, table or fault; the first axis is
// the X axis, the rest form the series. The figure names remain as aliases
// for the canned full-resolution specs.
//
// The eclipse attack curves (release failure vs forgery rate, naive vs
// ping-evict tables) come from, e.g.:
//
//	emergesim sweep -estimator live -strategy eclipse -axis forge=0:60:15 \
//	    -axis table=naive,pingevict -nodes 150 -p 0.2 -missions 40 -format csv
//
// Examples:
//
//	emergesim -trials 1000 -step 0.02 all        # full-resolution, all figures
//	emergesim -csv fig8 > fig8.csv               # machine-readable series
//	emergesim sweep -estimator live -axis p=0:0.3:0.1 -axis scheme=central,joint \
//	    -nodes 500 -alpha 1 -k 3 -l 2 -missions 100 -format csv
//	emergesim scenario -nodes 1000 -p 0.1 -alpha 1 -drop -k 3 -l 2 -missions 200
//	emergesim scenario -nodes 10000 -missions 1000 -shards 8 -p 0.1 -alpha 1
//
// Live points accept two orthogonal scaling levers. -shards S replicates:
// the point's missions are partitioned over S independent network replicas
// executed concurrently across cores (each with its own zone map), merged
// deterministically — the lever for very large mission-count axes.
// -partition S splits instead: the point's one population runs across S
// parallel event loops with deterministic cross-shard routing — the lever
// for very large network-size axes, where a single event loop is the
// bottleneck. The two are mutually exclusive on a point.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"selfemerge/internal/adversary"
	"selfemerge/internal/bench"
	"selfemerge/internal/core"
	"selfemerge/internal/dht"
	"selfemerge/internal/experiment"
	"selfemerge/internal/fault"
	"selfemerge/internal/mc"
	"selfemerge/internal/scenario"
)

func fatalf(code int, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "emergesim: "+format+"\n", args...)
	os.Exit(code)
}

// planFlags declares the shared plan-shape flags and returns the spec
// builder both subcommands use.
func planFlags(fs *flag.FlagSet) func(p, alpha float64, budget int) (core.PlanSpec, error) {
	var (
		scheme = fs.String("scheme", "joint", "routing scheme: central|disjoint|joint|share")
		k      = fs.Int("k", 3, "replication factor (paths); 0 with -l 0 lets the planner size the shape")
		l      = fs.Int("l", 2, "path length (holder columns)")
		shareN = fs.Int("sharen", 0, "share carriers per column (share scheme)")
		shareM = fs.String("sharem", "", "comma-separated per-column thresholds (share scheme)")
	)
	return func(p, alpha float64, budget int) (core.PlanSpec, error) {
		s, err := core.ParseScheme(*scheme)
		if err != nil {
			return core.PlanSpec{}, err
		}
		var thresholds []int
		if *shareM != "" {
			for _, part := range strings.Split(*shareM, ",") {
				m, err := strconv.Atoi(strings.TrimSpace(part))
				if err != nil {
					return core.PlanSpec{}, fmt.Errorf("bad -sharem %q: %w", *shareM, err)
				}
				thresholds = append(thresholds, m)
			}
		}
		return core.PlanSpec{
			Scheme: s, P: p, Alpha: alpha, Budget: budget,
			K: *k, L: *l, ShareN: *shareN, ShareM: thresholds,
		}, nil
	}
}

// axisFlags collects repeatable -axis specs.
type axisFlags struct {
	axes []experiment.Axis
}

func (a *axisFlags) String() string { return fmt.Sprintf("%d axes", len(a.axes)) }

func (a *axisFlags) Set(spec string) error {
	ax, err := experiment.ParseAxis(spec)
	if err != nil {
		return err
	}
	a.axes = append(a.axes, ax)
	return nil
}

// runSweep is the `emergesim sweep` subcommand: one declarative sweep on the
// unified experiment runner.
func runSweep(args []string) {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	var axes axisFlags
	fs.Var(&axes, "axis", "swept axis, name=v1,v2,... or name=start:stop:step (repeatable; first = numeric X axis)")
	var (
		estimator = fs.String("estimator", "mc", "point estimator: analytic|mc|live")
		nodes     = fs.Int("nodes", 1000, "DHT population N (base)")
		budget    = fs.Int("budget", 0, "planner node budget (0 = nodes)")
		p         = fs.Float64("p", 0.1, "malicious (Sybil) fraction (base)")
		alpha     = fs.Float64("alpha", 0, "churn severity T/lifetime (base; 0 disables churn)")
		drop      = fs.Bool("drop", false, "drop attack instead of spying (base)")
		strategy  = fs.String("strategy", "spy", "adversary strategy: spy|drop|eclipse (base; live estimator)")
		forge     = fs.Float64("forge", 0, "eclipse forgery rate, forged contacts per attacker per minute (live estimator)")
		table     = fs.String("table", "", "DHT routing-table policy: naive|pingevict (base; live estimator)")
		faultProf = fs.String("fault", "", "fault-injection profile: none|burst|partition|flap (base; live estimator)")
		faultSev  = fs.Float64("faultsev", 0, "fault severity in [0,1] (base; live estimator)")
		retry     = fs.Int("retry", 0, "total send attempts per DHT RPC, >1 enables retry/backoff hardening (base; live estimator)")
		replicas  = fs.Int("replicas", 1, "packet replica count (live; 1 = model-faithful)")
		trials    = fs.Int("trials", 1000, "Monte Carlo trials per point (mc estimator)")
		missions  = fs.Int("missions", 100, "live emergence trials per point (live estimator)")
		shards    = fs.Int("shards", 1, "independent network replicas per live point, run in parallel (live estimator)")
		partition = fs.Int("partition", 0, "split each live point's one population across this many parallel event loops (live estimator; exclusive with -shards > 1)")
		partWork  = fs.Int("partition-workers", 0, "concurrent partition shard loops per point (0 = GOMAXPROCS; live estimator)")
		emerging  = fs.Duration("emerging", 2*time.Hour, "emerging period T (live estimator)")
		mcTrials  = fs.Int("mc-trials", 0, "live reference trials (0 = missions)")
		shareMod  = fs.String("share-model", "default", "key-share loss model: default|quota|binomial|live (mc points, live references)")
		workers   = fs.Int("workers", 0, "concurrent sweep points (0 = GOMAXPROCS)")
		loopStats = fs.Bool("loopstats", false, "print per-point event-loop stats (epochs, idle skips, merge allocs) to stderr (live estimator, partition mode)")
		format    = fs.String("format", "table", "output format: table|csv|json")
		seed      = fs.Uint64("seed", 2017, "base RNG seed")
		name      = fs.String("name", "sweep", "sweep name for the report header")
		cpuprof   = fs.String("cpuprofile", "", "write a CPU profile of the sweep to this file (go tool pprof)")
		memprof   = fs.String("memprofile", "", "write a post-sweep heap profile to this file (go tool pprof)")
	)
	spec := planFlags(fs)
	_ = fs.Parse(args)
	if len(axes.axes) == 0 {
		fatalf(2, "sweep needs at least one -axis (e.g. -axis p=0:0.5:0.05)")
	}

	// Reject explicitly-set flags the chosen estimator ignores: a silently
	// dropped -trials or -missions would mislabel what was measured.
	setFlags := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { setFlags[f.Name] = true })
	irrelevant := map[string][]string{
		"analytic": {"trials", "missions", "shards", "partition", "partition-workers", "loopstats", "emerging", "mc-trials", "share-model", "strategy", "forge", "table", "fault", "faultsev", "retry"},
		"mc":       {"missions", "shards", "partition", "partition-workers", "loopstats", "emerging", "mc-trials", "strategy", "forge", "table", "fault", "faultsev", "retry"},
		"live":     {"trials"},
	}
	for _, name := range irrelevant[*estimator] {
		if setFlags[name] {
			fatalf(2, "-%s does not apply to the %s estimator", name, *estimator)
		}
	}

	base, err := spec(*p, *alpha, *budget)
	if err != nil {
		fatalf(2, "%v", err)
	}
	strat, err := adversary.ParseStrategy(*strategy)
	if err != nil {
		fatalf(2, "%v", err)
	}
	var policy dht.TablePolicy
	if *table != "" {
		if policy, err = dht.ParseTablePolicy(*table); err != nil {
			fatalf(2, "%v", err)
		}
	}
	profile, err := fault.ParseProfile(*faultProf)
	if err != nil {
		fatalf(2, "%v", err)
	}
	sw := experiment.Sweep{
		Name: *name,
		Seed: *seed,
		Base: experiment.Point{
			Scheme: base.Scheme, P: base.P, Alpha: base.Alpha,
			Network: *nodes, Budget: *budget,
			K: base.K, L: base.L, ShareN: base.ShareN, ShareM: base.ShareM,
			Replicas: *replicas, Drop: *drop,
			Strategy: strat, Forge: *forge, Table: policy,
			Fault: profile, FaultSev: *faultSev, Retry: *retry,
		},
		Axes: axes.axes,
	}

	model, err := mc.ParseShareModel(*shareMod)
	if err != nil {
		fatalf(2, "%v", err)
	}
	var est experiment.Estimator
	switch *estimator {
	case "analytic":
		est = experiment.Analytic{}
	case "mc":
		// One trial worker per point: the runner parallelizes across points,
		// and pinning the per-point partition makes the emitted sweep
		// byte-identical across machines, not just across -workers values.
		est = experiment.MonteCarlo{Trials: *trials, Workers: 1, ShareModel: model}
	case "live":
		est = &scenario.Estimator{Missions: *missions, Shards: *shards, Partition: *partition, PartitionWorkers: *partWork, Emerging: *emerging, MCTrials: *mcTrials, ShareModel: model}
	default:
		fatalf(2, "unknown estimator %q (want analytic|mc|live)", *estimator)
	}

	runner := experiment.Runner{Estimator: est, Parallel: *workers}
	// Pre-flight the whole grid (plan shapes, estimator compatibility) and
	// the output format so parameter mistakes exit as usage errors (2)
	// before any compute runs.
	if err := runner.Validate(sw); err != nil {
		fatalf(2, "%v", err)
	}
	emit, ok := map[string]func(*experiment.ResultSet) error{
		"table": func(rs *experiment.ResultSet) error { return rs.WriteTable(os.Stdout) },
		"csv":   func(rs *experiment.ResultSet) error { return rs.WriteCSV(os.Stdout) },
		"json":  func(rs *experiment.ResultSet) error { return rs.WriteJSON(os.Stdout) },
	}[*format]
	if !ok {
		fatalf(2, "unknown format %q (want table|csv|json)", *format)
	}
	// Profiling brackets exactly the sweep execution, so the profile shows
	// the estimator hot path, not flag parsing or emission.
	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			fatalf(1, "cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf(1, "cpuprofile: %v", err)
		}
		defer f.Close()
	}
	rs, err := runner.Run(sw)
	if *cpuprof != "" {
		pprof.StopCPUProfile()
	}
	if err != nil {
		fatalf(1, "%v", err)
	}
	if err := emit(rs); err != nil {
		fatalf(1, "%v", err)
	}
	// Loop stats go to stderr so the emitted sweep stays byte-deterministic
	// on stdout regardless of the flag.
	if *loopStats {
		for _, res := range rs.Results {
			fmt.Fprintf(os.Stderr, "emergesim: loopstats point=%d series=%s x=%g partition=%d epochs=%d idle_skips=%d merge_allocs=%d\n",
				res.Point.Index, res.Point.Series, res.Point.X, res.Point.Partition,
				res.Epochs, res.IdleSkips, res.MergeAllocs)
		}
	}
	// The heap profile is written after the results are out: a sweep's
	// output must never be lost to a profiling side-channel failure.
	if *memprof != "" {
		f, err := os.Create(*memprof)
		if err != nil {
			fatalf(1, "memprofile: %v", err)
		}
		runtime.GC() // settle the heap so the profile shows retained state
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatalf(1, "memprofile: %v", err)
		}
		f.Close()
	}
	fmt.Fprintf(os.Stderr, "emergesim: %d points in %s (%s of summed point time)\n",
		len(rs.Results), rs.Elapsed.Round(time.Millisecond), rs.PointElapsed.Round(time.Millisecond))
}

// runScenario is the `emergesim scenario` subcommand: one live-network
// experiment point next to its Monte Carlo and analytic references.
func runScenario(args []string) {
	fs := flag.NewFlagSet("scenario", flag.ExitOnError)
	var (
		nodes     = fs.Int("nodes", 200, "DHT population N")
		p         = fs.Float64("p", 0.1, "malicious (Sybil) fraction")
		alpha     = fs.Float64("alpha", 1, "churn severity T/lifetime (0 disables churn)")
		drop      = fs.Bool("drop", false, "drop attack instead of spying")
		strategy  = fs.String("strategy", "spy", "adversary strategy: spy|drop|eclipse")
		forge     = fs.Float64("forge", 0, "eclipse forgery rate, forged contacts per attacker per minute")
		table     = fs.String("table", "", "DHT routing-table policy: naive|pingevict")
		missions  = fs.Int("missions", 100, "live emergence trials")
		shards    = fs.Int("shards", 1, "independent network replicas run in parallel (each gets its own zone map)")
		partition = fs.Int("partition", 0, "split the one population across this many parallel event loops (exclusive with -shards > 1)")
		partWork  = fs.Int("partition-workers", 0, "concurrent partition shard loops (0 = GOMAXPROCS)")
		faultProf = fs.String("fault", "", "fault-injection profile: none|burst|partition|flap")
		faultSev  = fs.Float64("faultsev", 0, "fault severity in [0,1]")
		retry     = fs.Int("retry", 0, "total send attempts per DHT RPC (>1 enables retry/backoff hardening)")
		emerging  = fs.Duration("emerging", 2*time.Hour, "emerging period T")
		replicas  = fs.Int("replicas", 1, "packet replica count (1 = model-faithful)")
		mcTrials  = fs.Int("mc-trials", 2000, "Monte Carlo reference trials")
		loopStats = fs.Bool("loopstats", false, "print event-loop stats (epochs, idle skips, merge allocs) to stderr (partition mode)")
		seed      = fs.Uint64("seed", 2017, "RNG seed")
	)
	spec := planFlags(fs)
	_ = fs.Parse(args)

	planSpec, err := spec(*p, *alpha, *nodes)
	if err != nil {
		fatalf(2, "%v", err)
	}
	plan, err := planSpec.Plan()
	if err != nil {
		fatalf(2, "%v", err)
	}
	strat, err := adversary.ParseStrategy(*strategy)
	if err != nil {
		fatalf(2, "%v", err)
	}
	var policy dht.TablePolicy
	if *table != "" {
		if policy, err = dht.ParseTablePolicy(*table); err != nil {
			fatalf(2, "%v", err)
		}
	}
	profile, err := fault.ParseProfile(*faultProf)
	if err != nil {
		fatalf(2, "%v", err)
	}
	report, err := scenario.Run(scenario.Config{
		Nodes:            *nodes,
		MaliciousRate:    *p,
		Drop:             *drop,
		Strategy:         strat,
		Forge:            *forge,
		Table:            policy,
		Alpha:            *alpha,
		Emerging:         *emerging,
		Missions:         *missions,
		Shards:           *shards,
		Partition:        *partition,
		PartitionWorkers: *partWork,
		Fault:            profile,
		FaultSeverity:    *faultSev,
		Retry:            *retry,
		Plan:             plan,
		Replicas:         *replicas,
		MCTrials:         *mcTrials,
		Seed:             *seed,
	})
	if err != nil {
		fatalf(1, "%v", err)
	}
	if err := report.WriteTable(os.Stdout); err != nil {
		fatalf(1, "%v", err)
	}
	if *loopStats {
		fmt.Fprintf(os.Stderr, "emergesim: loopstats partition=%d epochs=%d idle_skips=%d merge_allocs=%d\n",
			*partition, report.Epochs, report.IdleSkips, report.MergeAllocs)
	}
}

// runFigures handles the canned figure aliases (fig6a..fig8, all): the
// paper's full-resolution sweep specs on the shared runner.
func runFigures(args []string) {
	fs := flag.NewFlagSet("emergesim", flag.ExitOnError)
	var (
		trials    = fs.Int("trials", 1000, "Monte Carlo trials per data point (paper: 1000)")
		step      = fs.Float64("step", 0.02, "malicious-rate grid step")
		seed      = fs.Uint64("seed", 2017, "base RNG seed")
		alpha     = fs.Float64("alpha", 3, "churn severity T/tlife for fig7")
		csv       = fs.Bool("csv", false, "emit CSV instead of a table")
		predicted = fs.Bool("predicted", false, "include closed-form curves next to measured ones (fig6)")
	)
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: emergesim [flags] fig6a|fig6b|fig6c|fig6d|fig7|fig8|all")
		fmt.Fprintln(os.Stderr, "       emergesim sweep -estimator analytic|mc|live -axis name=values ...")
		fmt.Fprintln(os.Stderr, "       emergesim scenario [flags]")
		fs.PrintDefaults()
		os.Exit(2)
	}

	opts := bench.Options{
		Trials:           *trials,
		PStep:            *step,
		Seed:             *seed,
		IncludePredicted: *predicted,
	}
	emit := func(fig bench.Figure, err error) {
		if err != nil {
			fatalf(1, "%v", err)
		}
		if *csv {
			if err := fig.WriteCSV(os.Stdout); err != nil {
				fatalf(1, "%v", err)
			}
			return
		}
		if err := fig.WriteTable(os.Stdout); err != nil {
			fatalf(1, "%v", err)
		}
		fmt.Println()
	}
	fig6 := func(network int, wantRes bool) {
		res, cost, err := bench.Figure6(network, opts)
		if wantRes {
			emit(res, err)
		} else {
			emit(cost, err)
		}
	}

	switch fs.Arg(0) {
	case "fig6a":
		fig6(10000, true)
	case "fig6b":
		fig6(10000, false)
	case "fig6c":
		fig6(100, true)
	case "fig6d":
		fig6(100, false)
	case "fig7":
		emit(bench.Figure7(*alpha, opts))
	case "fig8":
		emit(bench.Figure8(opts))
	case "all":
		res, cost, err := bench.Figure6(10000, opts)
		emit(res, err)
		emit(cost, err)
		res, cost, err = bench.Figure6(100, opts)
		emit(res, err)
		emit(cost, err)
		for _, a := range []float64{1, 2, 3, 5} {
			emit(bench.Figure7(a, opts))
		}
		emit(bench.Figure8(opts))
	default:
		fatalf(2, "unknown figure %q", fs.Arg(0))
	}
}

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "sweep":
			runSweep(os.Args[2:])
			return
		case "scenario":
			runScenario(os.Args[2:])
			return
		}
	}
	runFigures(os.Args[1:])
}
