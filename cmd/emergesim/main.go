// Command emergesim regenerates the paper's evaluation (Section IV): every
// panel of Figures 6, 7 and 8, as ASCII tables or CSV.
//
// Usage:
//
//	emergesim [flags] fig6a|fig6b|fig6c|fig6d|fig7|fig8|all
//
// Examples:
//
//	emergesim -trials 1000 -step 0.02 all        # full-resolution, all figures
//	emergesim -alpha 5 fig7                      # one churn panel
//	emergesim -csv fig8 > fig8.csv               # machine-readable series
package main

import (
	"flag"
	"fmt"
	"os"

	"selfemerge/internal/bench"
)

func main() {
	var (
		trials    = flag.Int("trials", 1000, "Monte Carlo trials per data point (paper: 1000)")
		step      = flag.Float64("step", 0.02, "malicious-rate grid step")
		seed      = flag.Uint64("seed", 2017, "base RNG seed")
		alpha     = flag.Float64("alpha", 3, "churn severity T/tlife for fig7")
		csv       = flag.Bool("csv", false, "emit CSV instead of a table")
		predicted = flag.Bool("predicted", false, "include closed-form curves next to measured ones (fig6)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: emergesim [flags] fig6a|fig6b|fig6c|fig6d|fig7|fig8|all")
		flag.PrintDefaults()
		os.Exit(2)
	}

	opts := bench.Options{
		Trials:           *trials,
		PStep:            *step,
		Seed:             *seed,
		IncludePredicted: *predicted,
	}
	emit := func(fig bench.Figure, err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "emergesim: %v\n", err)
			os.Exit(1)
		}
		if *csv {
			if err := fig.WriteCSV(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "emergesim: %v\n", err)
				os.Exit(1)
			}
			return
		}
		if err := fig.WriteTable(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "emergesim: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
	}
	fig6 := func(network int, wantRes bool) {
		res, cost, err := bench.Figure6(network, opts)
		if wantRes {
			emit(res, err)
		} else {
			emit(cost, err)
		}
	}

	switch flag.Arg(0) {
	case "fig6a":
		fig6(10000, true)
	case "fig6b":
		fig6(10000, false)
	case "fig6c":
		fig6(100, true)
	case "fig6d":
		fig6(100, false)
	case "fig7":
		emit(bench.Figure7(*alpha, opts))
	case "fig8":
		emit(bench.Figure8(opts))
	case "all":
		res, cost, err := bench.Figure6(10000, opts)
		emit(res, err)
		emit(cost, err)
		res, cost, err = bench.Figure6(100, opts)
		emit(res, err)
		emit(cost, err)
		for _, a := range []float64{1, 2, 3, 5} {
			emit(bench.Figure7(a, opts))
		}
		emit(bench.Figure8(opts))
	default:
		fmt.Fprintf(os.Stderr, "emergesim: unknown figure %q\n", flag.Arg(0))
		os.Exit(2)
	}
}
