// Command emergectl runs one complete self-emerging send/receive cycle on
// an in-process DHT, with the adversary and churn knobs exposed. It is the
// fastest way to see how each scheme behaves under a chosen threat model:
//
//	emergectl -scheme share -nodes 500 -p 0.2 -emerging 24h
//	emergectl -scheme joint -p 1 -drop          # watch a drop attack win
//	emergectl -scheme central -churn 12h        # watch churn eat the key
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"selfemerge"
	"selfemerge/internal/core"
)

func main() {
	var (
		schemeName = flag.String("scheme", "joint", "central|disjoint|joint|share")
		nodes      = flag.Int("nodes", 300, "DHT network size")
		p          = flag.Float64("p", 0.2, "fraction of malicious (Sybil) nodes")
		drop       = flag.Bool("drop", false, "malicious nodes mount a drop attack instead of spying")
		emerging   = flag.Duration("emerging", 12*time.Hour, "emerging period T")
		churn      = flag.Duration("churn", 0, "mean node lifetime (0 = no churn)")
		seed       = flag.Uint64("seed", 1, "simulation seed")
		message    = flag.String("message", "meet me at the old mill at midnight", "plaintext to protect")
	)
	flag.Parse()

	scheme, err := core.ParseScheme(*schemeName)
	if err != nil {
		fatal(err)
	}
	net, err := selfemerge.NewNetwork(selfemerge.NetworkConfig{
		Nodes:         *nodes,
		MaliciousRate: *p,
		DropAttack:    *drop,
		MeanLifetime:  *churn,
		Seed:          *seed,
		// Real deployment default: key material from crypto/rand, not the
		// seed-derived stream (the seed only shapes the simulated network).
		SystemRand: true,
	})
	if err != nil {
		fatal(err)
	}

	msg, err := net.Send([]byte(*message), *emerging,
		selfemerge.WithScheme(scheme),
		selfemerge.WithThreatModel(*p),
	)
	if err != nil {
		fatal(err)
	}
	plan := msg.Plan()
	fmt.Printf("network : %d nodes, p=%.2f, drop=%v, churn=%v\n", *nodes, *p, *drop, *churn)
	fmt.Printf("plan    : %v k=%d l=%d holders=%d (predicted Rr=%.4f Rd=%.4f)\n",
		plan.Scheme, plan.K, plan.L, plan.NodesRequired(),
		plan.Predicted.ReleaseAhead, plan.Predicted.Drop)
	fmt.Printf("timeline: start %v, release %v\n",
		net.Now().Format(time.Kitchen), msg.Release().Format(time.Kitchen))

	net.RunUntil(msg.Release().Add(time.Minute))
	net.Settle()

	if at, ok := net.AdversaryRecovered(msg); ok && at.Before(msg.Release()) {
		fmt.Printf("RELEASE-AHEAD: adversary held the key %v early (at %v)\n",
			msg.Release().Sub(at).Round(time.Second), at.Format(time.Kitchen))
	} else {
		fmt.Println("release-ahead attack failed: key not reconstructable before release")
	}
	if plain, at, ok := net.Emerged(msg); ok {
		fmt.Printf("EMERGED %v after release: %q\n", at.Sub(msg.Release()).Round(time.Millisecond), plain)
	} else {
		fmt.Println("NOT DELIVERED: the key was dropped or lost (drop attack / churn)")
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "emergectl: %v\n", err)
	os.Exit(1)
}
