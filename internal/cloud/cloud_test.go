package cloud

import (
	"bytes"
	"testing"
)

func TestPutGetPublic(t *testing.T) {
	s := NewStore()
	s.Put("exam", []byte("ciphertext"))
	got, err := s.Get("exam", "anyone")
	if err != nil || !bytes.Equal(got, []byte("ciphertext")) {
		t.Fatalf("Get = %q, %v", got, err)
	}
}

func TestACL(t *testing.T) {
	s := NewStore()
	s.Put("ballots", []byte("x"), "bob", "carol")
	if _, err := s.Get("ballots", "bob"); err != nil {
		t.Errorf("authorized reader denied: %v", err)
	}
	if _, err := s.Get("ballots", "mallory"); err != ErrForbidden {
		t.Errorf("unauthorized read: %v", err)
	}
}

func TestNotFound(t *testing.T) {
	s := NewStore()
	if _, err := s.Get("missing", "x"); err != ErrNotFound {
		t.Errorf("err = %v", err)
	}
}

func TestOverwriteAndDelete(t *testing.T) {
	s := NewStore()
	s.Put("k", []byte("v1"))
	s.Put("k", []byte("v2"))
	got, err := s.Get("k", "")
	if err != nil || string(got) != "v2" {
		t.Fatalf("overwrite: %q %v", got, err)
	}
	s.Delete("k")
	if _, err := s.Get("k", ""); err != ErrNotFound {
		t.Errorf("after delete: %v", err)
	}
	s.Delete("k") // idempotent
	if s.Len() != 0 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := NewStore()
	s.Put("k", []byte("orig"))
	got, _ := s.Get("k", "")
	got[0] = 'X'
	again, _ := s.Get("k", "")
	if string(again) != "orig" {
		t.Error("Get returned aliased memory")
	}
}

func TestPutCopiesInput(t *testing.T) {
	s := NewStore()
	buf := []byte("orig")
	s.Put("k", buf)
	buf[0] = 'X'
	got, _ := s.Get("k", "")
	if string(got) != "orig" {
		t.Error("Put aliased caller memory")
	}
}
