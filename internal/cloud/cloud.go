// Package cloud models the always-available cloud store of the system
// (Figure 1): the sender uploads the encrypted message at start time, and
// authenticated receivers may download it at any time. The cloud never
// holds key material — confidentiality rests entirely on the DHT-routed
// key.
package cloud

import (
	"errors"
	"sync"
)

// ErrNotFound is returned for unknown object names.
var ErrNotFound = errors.New("cloud: object not found")

// ErrForbidden is returned when the requester is not an authorized reader.
var ErrForbidden = errors.New("cloud: access denied")

// Store is an in-memory cloud blob store with per-object ACLs. It is safe
// for concurrent use.
type Store struct {
	mu      sync.RWMutex
	objects map[string]object
}

type object struct {
	data    []byte
	readers map[string]bool // empty means public
}

// NewStore creates an empty store.
func NewStore() *Store {
	return &Store{objects: make(map[string]object)}
}

// Put uploads data under name, readable by the listed principals (everyone
// when none are given). Existing objects are overwritten.
func (s *Store) Put(name string, data []byte, readers ...string) {
	obj := object{data: append([]byte(nil), data...)}
	if len(readers) > 0 {
		obj.readers = make(map[string]bool, len(readers))
		for _, r := range readers {
			obj.readers[r] = true
		}
	}
	s.mu.Lock()
	s.objects[name] = obj
	s.mu.Unlock()
}

// Get downloads an object as principal.
func (s *Store) Get(name, principal string) ([]byte, error) {
	s.mu.RLock()
	obj, ok := s.objects[name]
	s.mu.RUnlock()
	if !ok {
		return nil, ErrNotFound
	}
	if obj.readers != nil && !obj.readers[principal] {
		return nil, ErrForbidden
	}
	out := make([]byte, len(obj.data))
	copy(out, obj.data)
	return out, nil
}

// Delete removes an object; deleting a missing object is a no-op.
func (s *Store) Delete(name string) {
	s.mu.Lock()
	delete(s.objects, name)
	s.mu.Unlock()
}

// Len reports the number of stored objects.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.objects)
}
