package udp

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"selfemerge/internal/transport"
)

func TestRoundTrip(t *testing.T) {
	a, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	type recv struct {
		from    transport.Addr
		payload []byte
	}
	got := make(chan recv, 1)
	b.SetHandler(func(from transport.Addr, payload []byte) {
		got <- recv{from, payload}
	})

	msg := []byte("over real sockets")
	if err := a.Send(b.Addr(), msg); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-got:
		if !bytes.Equal(r.payload, msg) {
			t.Errorf("payload = %q", r.payload)
		}
		if r.from != a.Addr() {
			t.Errorf("from = %q, want %q", r.from, a.Addr())
		}
	case <-time.After(2 * time.Second):
		t.Fatal("datagram not delivered")
	}
}

func TestBidirectional(t *testing.T) {
	a, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	var wg sync.WaitGroup
	wg.Add(2)
	a.SetHandler(func(from transport.Addr, payload []byte) { wg.Done() })
	b.SetHandler(func(from transport.Addr, payload []byte) {
		_ = b.Send(from, []byte("pong"))
		wg.Done()
	})
	if err := a.Send(b.Addr(), []byte("ping")); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("ping/pong incomplete")
	}
}

func TestCloseStopsEndpoint(t *testing.T) {
	e, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Send("127.0.0.1:9", []byte("x")); err != transport.ErrClosed {
		t.Errorf("send after close: %v", err)
	}
	if err := e.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestOversizedRejected(t *testing.T) {
	e, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.Send("127.0.0.1:9", make([]byte, transport.MaxDatagram+1)); err == nil {
		t.Error("oversized payload accepted")
	}
}

func TestBadAddress(t *testing.T) {
	e, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.Send("not an address", []byte("x")); err == nil {
		t.Error("bad address accepted")
	}
}
