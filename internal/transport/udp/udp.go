// Package udp implements the transport interface over real UDP sockets,
// enabling multi-process DHT clusters (cmd/dhtnode). Framing is native:
// one datagram per message.
package udp

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"selfemerge/internal/transport"
)

// Endpoint is a UDP-backed transport endpoint.
type Endpoint struct {
	conn *net.UDPConn

	mu      sync.RWMutex
	handler transport.Handler
	closed  bool
	wg      sync.WaitGroup
}

var _ transport.Endpoint = (*Endpoint)(nil)

// Listen opens a UDP endpoint on the given address ("127.0.0.1:0" picks a
// free port). The read loop starts immediately; install a handler before
// peers learn the address.
func Listen(addr string) (*Endpoint, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("udp: resolving %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("udp: listening on %q: %w", addr, err)
	}
	e := &Endpoint{conn: conn}
	e.wg.Add(1)
	go e.readLoop()
	return e, nil
}

// Addr returns the bound address (with the concrete port).
func (e *Endpoint) Addr() transport.Addr {
	return transport.Addr(e.conn.LocalAddr().String())
}

// SetHandler installs the inbound handler.
func (e *Endpoint) SetHandler(h transport.Handler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.handler = h
}

// Send transmits one datagram to the given "host:port" address.
func (e *Endpoint) Send(to transport.Addr, payload []byte) error {
	e.mu.RLock()
	closed := e.closed
	e.mu.RUnlock()
	if closed {
		return transport.ErrClosed
	}
	if len(payload) > transport.MaxDatagram {
		return fmt.Errorf("udp: payload %d exceeds %d bytes", len(payload), transport.MaxDatagram)
	}
	dst, err := net.ResolveUDPAddr("udp", string(to))
	if err != nil {
		return fmt.Errorf("udp: resolving %q: %w", to, err)
	}
	if _, err := e.conn.WriteToUDP(payload, dst); err != nil {
		return fmt.Errorf("udp: sending to %q: %w", to, err)
	}
	return nil
}

// Close shuts down the socket and waits for the read loop to exit.
func (e *Endpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	err := e.conn.Close()
	e.wg.Wait()
	return err
}

func (e *Endpoint) readLoop() {
	defer e.wg.Done()
	buf := make([]byte, transport.MaxDatagram+1)
	for {
		n, from, err := e.conn.ReadFromUDP(buf)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			e.mu.RLock()
			closed := e.closed
			e.mu.RUnlock()
			if closed {
				return
			}
			continue // transient read error; UDP is lossy anyway
		}
		if n > transport.MaxDatagram {
			continue // oversized datagram: drop
		}
		e.mu.RLock()
		h := e.handler
		e.mu.RUnlock()
		if h == nil {
			continue
		}
		// The read buffer is handed to the handler directly and reused for
		// the next datagram: handlers run serially on this loop and copy
		// anything they keep, per the transport contract.
		h(transport.Addr(from.String()), buf[:n])
	}
}
