package simnet

import (
	"testing"
	"time"

	"selfemerge/internal/sim"
	"selfemerge/internal/transport"
)

func TestDeliveryWithLatency(t *testing.T) {
	s := sim.NewSimulator()
	net := New(s, Config{BaseLatency: 50 * time.Millisecond})
	a := net.Endpoint("a")
	b := net.Endpoint("b")

	var gotFrom transport.Addr
	var gotAt time.Time
	var payload []byte
	b.SetHandler(func(from transport.Addr, p []byte) {
		gotFrom, gotAt, payload = from, s.Now(), p
	})
	start := s.Now()
	if err := a.Send("b", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if string(payload) != "hello" || gotFrom != "a" {
		t.Fatalf("got %q from %q", payload, gotFrom)
	}
	if gotAt.Sub(start) != 50*time.Millisecond {
		t.Errorf("delivered after %v", gotAt.Sub(start))
	}
}

func TestPayloadIsCopied(t *testing.T) {
	s := sim.NewSimulator()
	net := New(s, Config{})
	a := net.Endpoint("a")
	b := net.Endpoint("b")
	var got []byte
	b.SetHandler(func(_ transport.Addr, p []byte) { got = p })
	buf := []byte("original")
	if err := a.Send("b", buf); err != nil {
		t.Fatal(err)
	}
	copy(buf, "XXXXXXXX") // sender reuses its buffer before delivery
	s.Run()
	if string(got) != "original" {
		t.Errorf("payload aliased sender buffer: %q", got)
	}
}

func TestLoss(t *testing.T) {
	s := sim.NewSimulator()
	net := New(s, Config{LossRate: 1.0})
	a := net.Endpoint("a")
	b := net.Endpoint("b")
	b.SetHandler(func(transport.Addr, []byte) { t.Error("lossy network delivered") })
	if err := a.Send("b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	s.Run()
	sent, delivered, dropped := net.Stats()
	if sent != 1 || delivered != 0 || dropped != 1 {
		t.Errorf("stats = %d/%d/%d", sent, delivered, dropped)
	}
}

func TestDownEndpointsDropTraffic(t *testing.T) {
	s := sim.NewSimulator()
	net := New(s, Config{})
	a := net.Endpoint("a")
	b := net.Endpoint("b")
	got := 0
	b.SetHandler(func(transport.Addr, []byte) { got++ })

	net.SetDown("b", true)
	_ = a.Send("b", []byte("1"))
	s.Run()
	net.SetDown("b", false)
	_ = a.Send("b", []byte("2"))
	s.Run()
	if got != 1 {
		t.Errorf("delivered %d messages, want 1 (only after recovery)", got)
	}
}

func TestDownSenderDropsTraffic(t *testing.T) {
	s := sim.NewSimulator()
	net := New(s, Config{})
	a := net.Endpoint("a")
	b := net.Endpoint("b")
	got := 0
	b.SetHandler(func(transport.Addr, []byte) { got++ })
	net.SetDown("a", true)
	_ = a.Send("b", []byte("1"))
	s.Run()
	if got != 0 {
		t.Error("down sender delivered")
	}
}

func TestCloseDetaches(t *testing.T) {
	s := sim.NewSimulator()
	net := New(s, Config{})
	a := net.Endpoint("a")
	b := net.Endpoint("b")
	b.SetHandler(func(transport.Addr, []byte) { t.Error("closed endpoint delivered") })
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	_ = a.Send("b", []byte("x"))
	s.Run()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", []byte("y")); err != transport.ErrClosed {
		t.Errorf("send on closed endpoint: %v", err)
	}
}

func TestInFlightMessageToClosedEndpointDropped(t *testing.T) {
	s := sim.NewSimulator()
	net := New(s, Config{BaseLatency: time.Second})
	a := net.Endpoint("a")
	b := net.Endpoint("b")
	b.SetHandler(func(transport.Addr, []byte) { t.Error("delivered after close") })
	_ = a.Send("b", []byte("x"))
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	s.Run()
}

func TestOversizedPayloadRejected(t *testing.T) {
	s := sim.NewSimulator()
	net := New(s, Config{})
	a := net.Endpoint("a")
	if err := a.Send("b", make([]byte, transport.MaxDatagram+1)); err == nil {
		t.Error("oversized payload accepted")
	}
}

func TestJitterBounded(t *testing.T) {
	s := sim.NewSimulator()
	net := New(s, Config{BaseLatency: 10 * time.Millisecond, Jitter: 5 * time.Millisecond, Seed: 42})
	a := net.Endpoint("a")
	b := net.Endpoint("b")
	var deliveries []time.Duration
	start := s.Now()
	b.SetHandler(func(transport.Addr, []byte) {
		deliveries = append(deliveries, s.Now().Sub(start))
	})
	for i := 0; i < 100; i++ {
		_ = a.Send("b", []byte("x"))
	}
	s.Run()
	if len(deliveries) != 100 {
		t.Fatalf("delivered %d", len(deliveries))
	}
	for _, d := range deliveries {
		if d < 10*time.Millisecond || d >= 15*time.Millisecond {
			t.Fatalf("delivery latency %v outside [10ms,15ms)", d)
		}
	}
}

func TestEndpointReplacement(t *testing.T) {
	// Re-attaching the same address replaces the endpoint (a new node takes
	// over a churned-out identity).
	s := sim.NewSimulator()
	net := New(s, Config{})
	old := net.Endpoint("x")
	oldGot := 0
	old.SetHandler(func(transport.Addr, []byte) { oldGot++ })
	replacement := net.Endpoint("x")
	newGot := 0
	replacement.SetHandler(func(transport.Addr, []byte) { newGot++ })

	a := net.Endpoint("a")
	_ = a.Send("x", []byte("m"))
	s.Run()
	if oldGot != 0 || newGot != 1 {
		t.Errorf("old=%d new=%d", oldGot, newGot)
	}
}
