// Package simnet is an in-memory transport for large in-process DHT
// networks, the role Overlay Weaver's emulation mode played in the paper's
// evaluation. Delivery runs through the discrete-event simulator with
// configurable base latency, jitter and loss; endpoints can be marked down
// (transient churn) or closed (node death).
package simnet

import (
	"fmt"
	"sync"
	"time"

	"selfemerge/internal/churn"
	"selfemerge/internal/sim"
	"selfemerge/internal/stats"
	"selfemerge/internal/transport"
)

// Config shapes the simulated network.
type Config struct {
	// BaseLatency is the one-way delivery delay (default 10ms).
	BaseLatency time.Duration
	// Jitter is the maximum extra uniform delay added per message.
	Jitter time.Duration
	// LossRate is the probability a message is silently dropped in flight.
	LossRate float64
	// Seed seeds the network's private RNG (jitter and loss decisions).
	Seed uint64
	// Inject, when non-nil, rules on every datagram that survives the
	// uniform loss/jitter model: correlated drops, extra delay, duplication
	// (see internal/fault). Judge calls are serialized under the network's
	// RNG lock, in the same order as the loss/jitter draws, so a
	// deterministic injector keeps the fabric byte-deterministic. Not
	// supported by the partition engine (NewPartition rejects it): the
	// cross-shard hand-off path bypasses the local send path, so an
	// injector would see only a shard-dependent subset of traffic.
	Inject Injector
}

// Verdict is an injector's ruling on one in-flight datagram.
type Verdict struct {
	// Drop discards the datagram (counted in the fabric's dropped stat).
	Drop bool
	// Extra is added to the delivery delay.
	Extra time.Duration
	// DupExtra, when positive, delivers a second copy DupExtra after the
	// first — duplication with reordering.
	DupExtra time.Duration
}

// Injector perturbs deliveries beyond the uniform loss/jitter model. Judge
// receives the fabric clock's current time and the endpoints of the
// datagram; implementations may keep internal state (calls are serialized
// by the fabric).
type Injector interface {
	Judge(now time.Time, from, to transport.Addr) Verdict
}

func (c Config) withDefaults() Config {
	if c.BaseLatency == 0 {
		c.BaseLatency = 10 * time.Millisecond
	}
	return c
}

// Network is the in-memory message fabric.
type Network struct {
	clock sim.Clock
	cfg   Config

	// part and shard are set when this network is one shard sub-network of a
	// Partition; sends whose destination another shard owns divert into the
	// partition's hand-off queues instead of this network's event loop.
	part  *Partition
	shard int

	mu      sync.Mutex
	nodes   nodeTable
	dlvFree []*delivery

	// The loss/jitter RNG serializes on its own lock so concurrent senders
	// drawing randomness do not contend on the endpoint-map critical section.
	rngMu sync.Mutex
	rng   *stats.RNG

	sent      int
	delivered int
	dropped   int
}

// New creates a network that delivers messages on the given clock.
func New(clock sim.Clock, cfg Config) *Network {
	cfg = cfg.withDefaults()
	return &Network{
		clock: clock,
		cfg:   cfg,
		rng:   stats.NewRNG(cfg.Seed),
	}
}

// nodeTable is the fabric's per-address state: one open-addressing slot per
// address seen, carrying the attached endpoint, the transient-down flag, and
// (in partition mode) the lazily cached owning shard. The send and delivery
// paths consult all of that per datagram, so folding the former endpoint,
// down and owner map lookups into a single FNV probe is a measurable win on
// the simulator's hottest path. Slots are never removed — detaching clears
// the endpoint but keeps the record, and the address population of a run is
// bounded by its node count.
type nodeTable struct {
	slots []nodeSlot // power-of-two length
	used  int
}

type nodeSlot struct {
	hash uint64 // 0 = empty (occupied hashes are forced nonzero)
	addr transport.Addr
	ep   *endpoint
	down bool
	// shard is the partition-mode owner cache: -1 until resolved against the
	// partition's frozen owner map, then the owning shard. Unowned addresses
	// stay -1 (re-checked per send; they only appear in tests).
	shard int16
}

func hashAddr(a transport.Addr) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(a); i++ {
		h ^= uint64(a[i])
		h *= 1099511628211
	}
	if h == 0 {
		h = 1
	}
	return h
}

// find returns the slot for addr, or nil if the address was never seen.
// Callers hold the network lock; the pointer is valid until the next insert.
func (t *nodeTable) find(addr transport.Addr) *nodeSlot {
	if t.used == 0 {
		return nil
	}
	h := hashAddr(addr)
	mask := len(t.slots) - 1
	for i := int(h) & mask; ; i = (i + 1) & mask {
		sl := &t.slots[i]
		if sl.hash == 0 {
			return nil
		}
		if sl.hash == h && sl.addr == addr {
			return sl
		}
	}
}

// slotFor returns the slot for addr, inserting an empty record first if the
// address is new. Callers hold the network lock; the pointer is valid until
// the next insert.
func (t *nodeTable) slotFor(addr transport.Addr) *nodeSlot {
	if sl := t.find(addr); sl != nil {
		return sl
	}
	if 4*(t.used+1) > 3*len(t.slots) {
		old := t.slots
		size := 2 * len(old)
		if size == 0 {
			size = 64
		}
		t.slots = make([]nodeSlot, size)
		mask := size - 1
		for i := range old {
			if old[i].hash == 0 {
				continue
			}
			j := int(old[i].hash) & mask
			for t.slots[j].hash != 0 {
				j = (j + 1) & mask
			}
			t.slots[j] = old[i]
		}
	}
	h := hashAddr(addr)
	mask := len(t.slots) - 1
	i := int(h) & mask
	for t.slots[i].hash != 0 {
		i = (i + 1) & mask
	}
	t.slots[i] = nodeSlot{hash: h, addr: addr, shard: -1}
	t.used++
	return &t.slots[i]
}

// Endpoint attaches (or replaces) an endpoint with the given address.
func (n *Network) Endpoint(addr transport.Addr) transport.Endpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	ep := &endpoint{net: n, addr: addr}
	sl := n.nodes.slotFor(addr)
	sl.ep = ep
	sl.down = false
	return ep
}

// SetDown marks an endpoint unavailable (messages to and from it vanish)
// without detaching it — the transient-churn state of Section II-C.
func (n *Network) SetDown(addr transport.Addr, down bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.nodes.slotFor(addr).down = down
}

// ApplyChurn wires a churn process's transient availability flapping into
// the endpoint's down/up transitions: the endpoint alternates between up and
// down with exponential sojourn times drawn from proc. It returns a stop
// function; call it when the endpoint is decommissioned (permanent death is
// a Close, not a flap). The transport owns this binding deliberately — the
// down state is a transport-level condition (Section II-C's session
// flapping), and every fabric consumer gets it without re-deriving the
// toggling logic.
func (n *Network) ApplyChurn(addr transport.Addr, proc *churn.Process) (stop func()) {
	return proc.ManageAvailability(func(down bool) { n.SetDown(addr, down) })
}

// Stats reports (sent, delivered, dropped) message counts.
func (n *Network) Stats() (sent, delivered, dropped int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.sent, n.delivered, n.dropped
}

func (n *Network) send(from transport.Addr, to transport.Addr, payload []byte) {
	n.mu.Lock()
	tsl := n.nodes.slotFor(to)
	if n.part != nil {
		if tsl.shard < 0 {
			// Resolve the owner cache against the partition's frozen owner
			// map (churn replacements reuse their predecessor's address, so
			// the map never changes after boot). An address no shard owns
			// stays unresolved and falls through to the local path, dropping
			// as unattached.
			if dst, ok := n.part.owner[to]; ok {
				tsl.shard = int16(dst)
			}
		}
		if dst := int(tsl.shard); dst >= 0 && dst != n.shard {
			n.mu.Unlock()
			n.part.handoff(n, dst, from, to, payload)
			return
		}
	}
	n.sent++
	fsl := n.nodes.find(from)
	if (fsl != nil && fsl.down) || tsl.down || tsl.ep == nil {
		// Immediate drop: no payload copy, no RNG draw, no delivery event.
		// A detached destination can never receive — endpoint replacement
		// (churn re-join) re-attaches within the same simulator event as the
		// close, so no in-flight window observes the gap.
		n.dropped++
		n.mu.Unlock()
		return
	}
	n.mu.Unlock()

	n.rngMu.Lock()
	if n.cfg.LossRate > 0 && n.rng.Bool(n.cfg.LossRate) {
		n.rngMu.Unlock()
		n.mu.Lock()
		n.dropped++
		n.mu.Unlock()
		return
	}
	delay := n.cfg.BaseLatency
	if n.cfg.Jitter > 0 {
		delay += time.Duration(n.rng.Uint64n(uint64(n.cfg.Jitter)))
	}
	var dup time.Duration
	if n.cfg.Inject != nil {
		v := n.cfg.Inject.Judge(n.clock.Now(), from, to)
		if v.Drop {
			n.rngMu.Unlock()
			n.mu.Lock()
			n.dropped++
			n.mu.Unlock()
			return
		}
		delay += v.Extra
		dup = v.DupExtra
	}
	n.rngMu.Unlock()

	// Copy the payload into a pooled delivery record: the sender may reuse
	// its buffer the moment Send returns, and the record (buffer included)
	// is reclaimed once the handler returns (handlers copy what they keep,
	// per the transport contract). Scheduling through ScheduleArg with the
	// package-level deliver function makes the steady-state per-message
	// path allocation-free: no payload garbage, no closure, no timer box.
	d := n.getDelivery()
	d.net, d.from, d.to = n, from, to
	d.msg = append(d.msg[:0], payload...)
	sim.ScheduleArg(n.clock, delay, deliver, d)
	if dup > 0 {
		// An injector-duplicated datagram: a second pooled record trailing
		// the first, each releasing independently after its own handler call.
		d2 := n.getDelivery()
		d2.net, d2.from, d2.to = n, from, to
		d2.msg = append(d2.msg[:0], payload...)
		sim.ScheduleArg(n.clock, delay+dup, deliver, d2)
	}
}

// delivery is one in-flight datagram: a recycled record carrying its own
// payload copy.
type delivery struct {
	net      *Network
	from, to transport.Addr
	msg      []byte
}

// getDelivery pops a record from this network's freelist (or allocates).
// Records recycle per network rather than through a global sync.Pool so
// their payload buffers survive garbage collections; cross-shard records
// are popped from the sending shard and released to the receiving one,
// which balances out for the roughly symmetric traffic of a DHT.
func (n *Network) getDelivery() *delivery {
	n.mu.Lock()
	var d *delivery
	if k := len(n.dlvFree); k > 0 {
		d = n.dlvFree[k-1]
		n.dlvFree[k-1] = nil
		n.dlvFree = n.dlvFree[:k-1]
	}
	n.mu.Unlock()
	if d == nil {
		d = new(delivery)
	}
	return d
}

// putDelivery returns a finished record to this network's freelist. The cap
// bounds the buffer memory a persistently asymmetric flow could strand.
func (n *Network) putDelivery(d *delivery) {
	d.net = nil
	n.mu.Lock()
	if len(n.dlvFree) < 1<<12 {
		n.dlvFree = append(n.dlvFree, d)
	}
	n.mu.Unlock()
}

// deliver is the delivery event callback: hand the datagram to the
// destination handler (or count the drop) and recycle the record.
func deliver(v any) {
	d := v.(*delivery)
	n := d.net
	n.mu.Lock()
	tsl := n.nodes.find(d.to)
	fsl := n.nodes.find(d.from)
	downNow := (tsl != nil && tsl.down) || (fsl != nil && fsl.down)
	var dst *endpoint
	var h transport.Handler
	if tsl != nil && tsl.ep != nil {
		dst = tsl.ep
		h = dst.handler
	}
	if dst == nil || downNow || h == nil || dst.closed {
		n.dropped++
		n.mu.Unlock()
	} else {
		n.delivered++
		n.mu.Unlock()
		h(d.from, d.msg)
	}
	n.putDelivery(d)
}

type endpoint struct {
	net     *Network
	addr    transport.Addr
	handler transport.Handler
	closed  bool
}

func (e *endpoint) Addr() transport.Addr { return e.addr }

func (e *endpoint) SetHandler(h transport.Handler) {
	e.net.mu.Lock()
	defer e.net.mu.Unlock()
	e.handler = h
}

func (e *endpoint) Send(to transport.Addr, payload []byte) error {
	e.net.mu.Lock()
	closed := e.closed
	e.net.mu.Unlock()
	if closed {
		return transport.ErrClosed
	}
	if len(payload) > transport.MaxDatagram {
		return fmt.Errorf("simnet: payload %d exceeds %d bytes", len(payload), transport.MaxDatagram)
	}
	e.net.send(e.addr, to, payload)
	return nil
}

func (e *endpoint) Close() error {
	e.net.mu.Lock()
	defer e.net.mu.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	if sl := e.net.nodes.find(e.addr); sl != nil && sl.ep == e {
		sl.ep = nil
	}
	return nil
}
