package simnet

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"selfemerge/internal/sim"
	"selfemerge/internal/transport"
)

func newTestPartition(t *testing.T, shards int, cfg Config) ([]*sim.Simulator, *Partition, *sim.Lockstep) {
	t.Helper()
	sims := make([]*sim.Simulator, shards)
	clocks := make([]sim.Clock, shards)
	for i := range sims {
		sims[i] = sim.NewSimulator()
		clocks[i] = sims[i]
	}
	p, err := NewPartition(clocks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	l := &sim.Lockstep{Sims: sims, Lookahead: p.Lookahead(), Exchange: p.Flush}
	return sims, p, l
}

// TestPartitionPerPairOrdering checks that with zero jitter the cross-shard
// path preserves per-pair FIFO order, exactly like the single fabric: sends
// staggered across many epochs from one endpoint arrive in send order.
func TestPartitionPerPairOrdering(t *testing.T) {
	sims, p, l := newTestPartition(t, 2, Config{BaseLatency: 3 * time.Millisecond})
	a := p.Endpoint(0, "a")
	b := p.Endpoint(1, "b")

	var got []byte
	b.SetHandler(func(from transport.Addr, payload []byte) {
		got = append(got, payload[0])
	})

	// Irregular, non-monotonic send instants with collisions: several sends
	// land in one epoch and several share an instant, exercising the
	// (deliver-time, source shard, seq) merge.
	const n = 50
	when := func(i int) time.Duration {
		return time.Duration(i*i%17)*time.Millisecond + time.Duration(i%5)*100*time.Microsecond
	}
	for i := 0; i < n; i++ {
		i := i
		sims[0].AfterFunc(when(i), func() {
			if err := a.Send("b", []byte{byte(i)}); err != nil {
				t.Error(err)
			}
		})
	}
	l.RunFor(time.Second)

	// Zero jitter makes arrival order the send order: indices sorted by send
	// instant, schedule order breaking ties (the simulator's (at, seq) rule).
	want := make([]byte, 0, n)
	for i := 0; i < n; i++ {
		want = append(want, byte(i))
	}
	sort.SliceStable(want, func(x, y int) bool { return when(int(want[x])) < when(int(want[y])) })
	if len(got) != n {
		t.Fatalf("delivered %d messages, want %d", len(got), n)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("arrival %d is message %d, want %d (full order %v)", i, got[i], want[i], got)
		}
	}
}

// TestPartitionLatencyLowerBound checks every cross-shard message arrives at
// least BaseLatency after its send, jitter included — the invariant the
// conservative epoch barrier relies on.
func TestPartitionLatencyLowerBound(t *testing.T) {
	const base = 2 * time.Millisecond
	sims, p, l := newTestPartition(t, 3, Config{BaseLatency: base, Jitter: 5 * time.Millisecond, Seed: 9})
	a := p.Endpoint(0, "a")
	b := p.Endpoint(1, "b")
	c := p.Endpoint(2, "c")

	sendAt := make([]time.Time, 64)
	var delivered int
	check := func(s *sim.Simulator) transport.Handler {
		return func(_ transport.Addr, payload []byte) {
			delivered++
			if lat := s.Now().Sub(sendAt[payload[0]]); lat < base {
				t.Errorf("message %d latency %v below base %v", payload[0], lat, base)
			}
		}
	}
	b.SetHandler(check(sims[1]))
	c.SetHandler(check(sims[2]))

	for i := 0; i < 40; i++ {
		i := i
		to := transport.Addr("b")
		if i%2 == 1 {
			to = "c"
		}
		sims[0].AfterFunc(time.Duration(i)*700*time.Microsecond, func() {
			sendAt[i] = sims[0].Now()
			if err := a.Send(to, []byte{byte(i)}); err != nil {
				t.Error(err)
			}
		})
	}
	l.RunFor(time.Second)
	if delivered != 40 {
		t.Fatalf("delivered %d, want 40", delivered)
	}
}

// ringTrace runs a deterministic cascade workload — 12 endpoints round-robin
// across 3 shards, each receipt forwarded around the ring with a TTL, under
// jitter and loss — and returns the per-shard delivery logs plus the fabric
// stats. Each shard's log is appended only from that shard's event loop, so
// the logs are well-defined under any worker count.
func ringTrace(t *testing.T, workers int) ([][]string, [3]int) {
	t.Helper()
	sims, p, l := newTestPartition(t, 3, Config{
		BaseLatency: time.Millisecond,
		Jitter:      4 * time.Millisecond,
		LossRate:    0.1,
		Seed:        42,
	})
	l.Workers = workers

	const n = 12
	addr := func(i int) transport.Addr { return transport.Addr(fmt.Sprintf("node-%d", i)) }
	eps := make([]transport.Endpoint, n)
	for i := 0; i < n; i++ {
		eps[i] = p.Endpoint(i%3, addr(i))
	}
	logs := make([][]string, 3)
	for i := 0; i < n; i++ {
		i := i
		shard := i % 3
		eps[i].SetHandler(func(from transport.Addr, payload []byte) {
			ttl, id := payload[0], payload[1]
			logs[shard] = append(logs[shard],
				fmt.Sprintf("%s<-%s id=%d ttl=%d @%d", addr(i), from, id, ttl, sims[shard].Now().UnixNano()))
			if ttl > 0 {
				if err := eps[i].Send(addr((i+1)%n), []byte{ttl - 1, id}); err != nil {
					t.Error(err)
				}
			}
		})
	}
	for k := 0; k < 6; k++ {
		if err := eps[k].Send(addr((k+5)%n), []byte{8, byte(k)}); err != nil {
			t.Fatal(err)
		}
	}
	l.RunFor(2 * time.Second)
	sent, delivered, dropped := p.Stats()
	return logs, [3]int{sent, delivered, dropped}
}

// TestPartitionDeterministicAcrossWorkers checks the headline property: the
// partitioned fabric's observable behaviour is byte-identical whether the
// shard loops run serially or on concurrent workers.
func TestPartitionDeterministicAcrossWorkers(t *testing.T) {
	baseLogs, baseStats := ringTrace(t, 1)
	total := 0
	for _, lg := range baseLogs {
		total += len(lg)
	}
	if total == 0 {
		t.Fatal("workload delivered nothing")
	}
	if baseStats[0] != baseStats[1]+baseStats[2] {
		t.Fatalf("stats inconsistent after drain: sent %d != delivered %d + dropped %d",
			baseStats[0], baseStats[1], baseStats[2])
	}
	for _, workers := range []int{2, 4} {
		logs, stats := ringTrace(t, workers)
		if stats != baseStats {
			t.Errorf("workers=%d stats %v, want %v", workers, stats, baseStats)
		}
		for s := range logs {
			if len(logs[s]) != len(baseLogs[s]) {
				t.Errorf("workers=%d shard %d logged %d events, want %d", workers, s, len(logs[s]), len(baseLogs[s]))
				continue
			}
			for i := range logs[s] {
				if logs[s][i] != baseLogs[s][i] {
					t.Errorf("workers=%d shard %d event %d = %q, want %q", workers, s, i, logs[s][i], baseLogs[s][i])
				}
			}
		}
	}
}

// TestPartitionSingleShardMatchesPlainNetwork checks a one-shard partition
// reproduces the plain fabric byte for byte: same seed, same jitter and loss
// draws, same delivery trace. This is the compatibility contract that lets
// partition mode claim S=1 equivalence with historical runs.
func TestPartitionSingleShardMatchesPlainNetwork(t *testing.T) {
	cfg := Config{BaseLatency: time.Millisecond, Jitter: 3 * time.Millisecond, LossRate: 0.15, Seed: 7}

	run := func(build func(s *sim.Simulator) (func(i int, a transport.Addr) transport.Endpoint, func(d time.Duration))) []string {
		s := sim.NewSimulator()
		endpoint, runFor := build(s)
		const n = 8
		addr := func(i int) transport.Addr { return transport.Addr(fmt.Sprintf("node-%d", i)) }
		eps := make([]transport.Endpoint, n)
		for i := 0; i < n; i++ {
			eps[i] = endpoint(i, addr(i))
		}
		var log []string
		for i := 0; i < n; i++ {
			i := i
			eps[i].SetHandler(func(from transport.Addr, payload []byte) {
				log = append(log, fmt.Sprintf("%s<-%s ttl=%d @%d", addr(i), from, payload[0], s.Now().UnixNano()))
				if payload[0] > 0 {
					if err := eps[i].Send(addr((i+3)%n), []byte{payload[0] - 1}); err != nil {
						t.Error(err)
					}
				}
			})
		}
		for k := 0; k < 4; k++ {
			if err := eps[k].Send(addr((k+1)%n), []byte{6}); err != nil {
				t.Fatal(err)
			}
		}
		runFor(time.Second)
		return log
	}

	plain := run(func(s *sim.Simulator) (func(int, transport.Addr) transport.Endpoint, func(time.Duration)) {
		net := New(s, cfg)
		return func(_ int, a transport.Addr) transport.Endpoint { return net.Endpoint(a) }, s.RunFor
	})
	part := run(func(s *sim.Simulator) (func(int, transport.Addr) transport.Endpoint, func(time.Duration)) {
		p, err := NewPartition([]sim.Clock{s}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		l := &sim.Lockstep{Sims: []*sim.Simulator{s}, Lookahead: p.Lookahead(), Exchange: p.Flush}
		return func(i int, a transport.Addr) transport.Endpoint { return p.Endpoint(0, a) }, l.RunFor
	})

	if len(plain) == 0 {
		t.Fatal("plain run delivered nothing")
	}
	if len(plain) != len(part) {
		t.Fatalf("plain logged %d events, partition %d", len(plain), len(part))
	}
	for i := range plain {
		if plain[i] != part[i] {
			t.Errorf("event %d: plain %q, partition %q", i, plain[i], part[i])
		}
	}
}

// TestPartitionDownAndClose checks endpoint state is enforced across shards:
// a down sender drops at send, a closed destination drops at delivery, and a
// re-attached destination (churn replacement) receives again.
func TestPartitionDownAndClose(t *testing.T) {
	_, p, l := newTestPartition(t, 2, Config{BaseLatency: time.Millisecond})
	a := p.Endpoint(0, "a")
	b := p.Endpoint(1, "b")
	var got int
	recv := func(transport.Addr, []byte) { got++ }
	b.SetHandler(recv)

	p.SetDown("a", true)
	if err := a.Send("b", []byte{1}); err != nil {
		t.Fatal(err)
	}
	p.SetDown("a", false)
	l.RunFor(50 * time.Millisecond)
	if got != 0 {
		t.Fatalf("down sender delivered %d messages", got)
	}

	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", []byte{2}); err != nil {
		t.Fatal(err)
	}
	l.RunFor(50 * time.Millisecond)
	if got != 0 {
		t.Fatalf("closed destination delivered %d messages", got)
	}

	b2 := p.Endpoint(1, "b") // replacement reuses the address and shard
	b2.SetHandler(recv)
	if err := a.Send("b", []byte{3}); err != nil {
		t.Fatal(err)
	}
	l.RunFor(50 * time.Millisecond)
	if got != 1 {
		t.Fatalf("replacement received %d messages, want 1", got)
	}

	sent, delivered, dropped := p.Stats()
	if sent != 3 || delivered != 1 || dropped != 2 {
		t.Fatalf("stats sent=%d delivered=%d dropped=%d, want 3/1/2", sent, delivered, dropped)
	}
}

// TestPartitionCheckLookahead pins the lookahead validation: a lockstep
// window must be positive and no wider than the fabric's minimum
// cross-shard latency, or epochs would overrun in-flight arrivals.
func TestPartitionCheckLookahead(t *testing.T) {
	_, p, _ := newTestPartition(t, 2, Config{BaseLatency: 3 * time.Millisecond})
	if err := p.CheckLookahead(p.Lookahead()); err != nil {
		t.Fatalf("fabric's own lookahead rejected: %v", err)
	}
	if err := p.CheckLookahead(time.Millisecond); err != nil {
		t.Fatalf("narrower-than-latency lookahead rejected: %v", err)
	}
	if err := p.CheckLookahead(0); err == nil {
		t.Fatal("zero lookahead accepted")
	}
	if err := p.CheckLookahead(-time.Millisecond); err == nil {
		t.Fatal("negative lookahead accepted")
	}
	if err := p.CheckLookahead(p.Lookahead() + time.Nanosecond); err == nil {
		t.Fatal("lookahead wider than the minimum cross-shard latency accepted")
	}
}
