// Partitioned fabric: one population of endpoints split across S shard
// sub-networks, each delivering local traffic on its own simulator, with
// cross-shard sends turned into timestamped hand-off records merged at the
// epoch barriers of a sim.Lockstep. This is the transport half of the
// partition engine; the conservative-lookahead argument lives with
// sim.Lockstep, and the fabric's base latency is the lookahead it relies on.
package simnet

import (
	"fmt"
	"slices"
	"time"

	"selfemerge/internal/churn"
	"selfemerge/internal/sim"
	"selfemerge/internal/stats"
	"selfemerge/internal/transport"
)

// Partition is an in-memory fabric split across S shard sub-networks. Every
// endpoint is owned by exactly one shard (registered at Endpoint time and
// frozen thereafter — churn replacements reuse their predecessor's address
// and shard). Local sends run the plain single-network path on the owning
// shard's simulator; a send whose destination lives on another shard becomes
// a hand-off record carrying its absolute delivery time, queued per source
// shard, and injected into the destination simulator at the next barrier in
// fixed (deliver-time, source shard, sequence) order — so the merged event
// schedule, and therefore every observable byte, is a pure function of the
// configuration, independent of how many goroutines run the shard loops.
//
// Loss and jitter for a cross-shard message are drawn from the source
// shard's RNG at send time, inside that shard's deterministic execution.
// The one semantic difference from the single fabric: a sender's transient
// down state (availability flapping) is enforced at send time only for
// cross-shard messages — the destination shard cannot consult a foreign
// down map at delivery time. Runs that enable flapping and partitioning
// accept that in-flight cross-shard datagrams survive the sender flapping
// down; permanent death (endpoint close) is still enforced at delivery.
type Partition struct {
	subs      []*Network
	owner     map[transport.Addr]int
	outboxes  []outbox
	heads     []int   // per-outbox merge cursor, reused across barriers
	nows      []int64 // per-shard barrier clock, captured once per Flush
	lookahead time.Duration

	mergeAllocs uint64 // outbox capacity growths: the drain's only allocations
}

// outbox is one source shard's pending cross-shard records. It is written
// only from that shard's event loop (or the driving goroutine while all
// loops are paused at a barrier), and drained only at barriers, so it needs
// no lock.
type outbox struct {
	recs  []handoff
	seq   uint64
	grows uint64 // capacity growths, kept per-box: boxes are written concurrently
}

// handoff is one cross-shard datagram: the pooled delivery record (payload
// copy included, net already pointing at the destination sub-network) plus
// the merge coordinates.
type handoff struct {
	at  int64 // absolute delivery time, Unix nanoseconds
	src int
	seq uint64
	d   *delivery
}

// NewPartition builds a fabric of len(clocks) shard sub-networks, shard i
// delivering its local traffic on clocks[i]. Shard 0 keeps cfg.Seed for its
// loss/jitter RNG — a one-shard partition is byte-identical to the plain
// Network — and higher shards draw decorrelated SplitMix64 substreams. The
// base latency must be explicitly positive: it is the lookahead that makes
// barrier-drained hand-offs conservative, so the plain fabric's
// zero-means-default rule does not apply here — a zero would previously be
// papered over by the 10ms default, silently changing the lookahead the
// caller thought it configured, and a negative one would make epoch-barrier
// delivery unsound outright.
func NewPartition(clocks []sim.Clock, cfg Config) (*Partition, error) {
	if len(clocks) < 1 {
		return nil, fmt.Errorf("simnet: partition needs at least one shard clock")
	}
	if cfg.BaseLatency <= 0 {
		return nil, fmt.Errorf("simnet: partition needs an explicit positive base latency (the lockstep lookahead), got %v", cfg.BaseLatency)
	}
	if cfg.Inject != nil {
		return nil, fmt.Errorf("simnet: fault injection requires the single fabric; the partition hand-off path bypasses the injector")
	}
	cfg = cfg.withDefaults()
	p := &Partition{
		subs:      make([]*Network, len(clocks)),
		owner:     make(map[transport.Addr]int),
		outboxes:  make([]outbox, len(clocks)),
		heads:     make([]int, len(clocks)),
		nows:      make([]int64, len(clocks)),
		lookahead: cfg.BaseLatency,
	}
	for i, clock := range clocks {
		sub := cfg
		if i > 0 {
			sub.Seed = stats.Mix64(cfg.Seed, uint64(i))
		}
		p.subs[i] = New(clock, sub)
		p.subs[i].part, p.subs[i].shard = p, i
	}
	return p, nil
}

// Shards returns the shard count.
func (p *Partition) Shards() int { return len(p.subs) }

// Lookahead returns the minimum cross-shard latency: the sim.Lockstep
// lookahead this fabric supports.
func (p *Partition) Lookahead() time.Duration { return p.lookahead }

// CheckLookahead validates a lookahead a sim.Lockstep intends to drive this
// fabric with: it must be positive and no larger than the fabric's minimum
// cross-shard latency (the base latency — jitter only adds delay). A wider
// lookahead would let an epoch overrun arrivals, silently voiding the
// conservative-delivery argument, so mis-wired callers fail loudly here.
func (p *Partition) CheckLookahead(w time.Duration) error {
	if w <= 0 {
		return fmt.Errorf("simnet: lockstep lookahead must be positive, got %v", w)
	}
	if w > p.lookahead {
		return fmt.Errorf("simnet: lockstep lookahead %v exceeds the fabric's minimum cross-shard latency %v; epochs would overrun arrivals", w, p.lookahead)
	}
	return nil
}

// MergeAllocs returns how many times an outbox had to grow its backing
// array — the hand-off drain's only allocation source. In steady state the
// boxes reach their high-water capacity and the counter stops moving; the
// partitioned benchmark emits it so a regression that re-introduces
// per-record or per-barrier allocation is visible and gateable. Counted
// per box (boxes are written concurrently) and summed here; call it from
// the driving goroutine, like Flush.
func (p *Partition) MergeAllocs() uint64 {
	n := p.mergeAllocs
	for i := range p.outboxes {
		n += p.outboxes[i].grows
	}
	return n
}

// Endpoint attaches (or, for a churn replacement, re-attaches) an endpoint
// with the given address on its owning shard. The first attachment
// registers the ownership; it is frozen from then on — re-attaching under a
// different shard panics, because migrating an address would race the
// lock-free owner lookups on the send path.
func (p *Partition) Endpoint(shard int, addr transport.Addr) transport.Endpoint {
	if got, ok := p.owner[addr]; ok {
		if got != shard {
			panic(fmt.Sprintf("simnet: endpoint %s owned by shard %d, re-attached on shard %d", addr, got, shard))
		}
	} else {
		// First attachment: boot-time, single-goroutine. After boot the map
		// is read-only (replacements reuse registered addresses), which is
		// what lets concurrent shard loops consult it without a lock.
		p.owner[addr] = shard
	}
	return p.subs[shard].Endpoint(addr)
}

// Owner reports which shard owns an address.
func (p *Partition) Owner(addr transport.Addr) (int, bool) {
	shard, ok := p.owner[addr]
	return shard, ok
}

// SetDown marks an endpoint unavailable on its owning shard.
func (p *Partition) SetDown(addr transport.Addr, down bool) {
	if shard, ok := p.owner[addr]; ok {
		p.subs[shard].SetDown(addr, down)
	}
}

// ApplyChurn wires availability flapping into the owning shard's fabric.
func (p *Partition) ApplyChurn(addr transport.Addr, proc *churn.Process) (stop func()) {
	shard, ok := p.owner[addr]
	if !ok {
		return func() {}
	}
	return p.subs[shard].ApplyChurn(addr, proc)
}

// Stats sums (sent, delivered, dropped) across the shard sub-networks.
// Sends are counted on the source shard and deliveries/drops on the
// destination, so the totals match what one fused network would report.
func (p *Partition) Stats() (sent, delivered, dropped int) {
	for _, sub := range p.subs {
		s, d, r := sub.Stats()
		sent += s
		delivered += d
		dropped += r
	}
	return sent, delivered, dropped
}

// handoff queues one cross-shard datagram from src's shard to dst. Runs
// inside the source shard's deterministic execution (its event loop, or the
// driver at a barrier), which is what makes the per-source sequence — and
// every RNG draw — reproducible.
func (p *Partition) handoff(src *Network, dst int, from, to transport.Addr, payload []byte) {
	src.mu.Lock()
	src.sent++
	if fsl := src.nodes.find(from); fsl != nil && fsl.down {
		src.dropped++
		src.mu.Unlock()
		return
	}
	src.mu.Unlock()

	src.rngMu.Lock()
	if src.cfg.LossRate > 0 && src.rng.Bool(src.cfg.LossRate) {
		src.rngMu.Unlock()
		src.mu.Lock()
		src.dropped++
		src.mu.Unlock()
		return
	}
	delay := src.cfg.BaseLatency
	if src.cfg.Jitter > 0 {
		delay += time.Duration(src.rng.Uint64n(uint64(src.cfg.Jitter)))
	}
	src.rngMu.Unlock()

	d := src.getDelivery()
	d.net, d.from, d.to = p.subs[dst], from, to
	d.msg = append(d.msg[:0], payload...)
	box := &p.outboxes[src.shard]
	if len(box.recs) == cap(box.recs) {
		box.grows++ // steady state keeps the high-water array; see MergeAllocs
	}
	box.recs = append(box.recs, handoff{
		at:  src.clock.Now().UnixNano() + int64(delay),
		src: src.shard,
		seq: box.seq,
		d:   d,
	})
	box.seq++
}

// cmpHandoff orders one outbox's records: (at, seq). The source shard is
// constant within a box, so this is the global (at, src, seq) order
// restricted to the box.
func cmpHandoff(a, b handoff) int {
	switch {
	case a.at < b.at:
		return -1
	case a.at > b.at:
		return 1
	case a.seq < b.seq:
		return -1
	case a.seq > b.seq:
		return 1
	}
	return 0
}

// Flush drains every outbox and injects the records into their destination
// simulators in fixed (deliver-time, source shard, sequence) order: the
// sim.Lockstep Exchange hook. It must run while every shard loop is paused
// at a common barrier; the lookahead guarantees every queued record's
// delivery time is at or after that barrier, so nothing is scheduled in the
// past (asserted per record — a violation means a lookahead/epoch-bound bug
// upstream, not recoverable data). Destination-side state (endpoint
// attached, down, handler) is checked at delivery time by the ordinary
// deliver path.
//
// The drain is a k-way merge over the boxes rather than a concat-and-sort:
// each box is sorted in place by (at, seq) — jitter makes send order differ
// from delivery order within a box — and the merge repeatedly takes the
// earliest (at, src) head, which with per-box seq monotonicity reproduces
// the exact global (at, src, seq) order the old scratch sort produced,
// without copying records into a scratch slab or allocating a comparator.
func (p *Partition) Flush() {
	total := 0
	for i := range p.outboxes {
		recs := p.outboxes[i].recs
		if len(recs) > 1 {
			slices.SortFunc(recs, cmpHandoff)
		}
		total += len(recs)
		p.heads[i] = 0
	}
	if total == 0 {
		return
	}
	for i, sub := range p.subs {
		p.nows[i] = sub.clock.Now().UnixNano()
	}
	for n := 0; n < total; n++ {
		best := -1
		var bestAt int64
		for i := range p.outboxes {
			j := p.heads[i]
			if j == len(p.outboxes[i].recs) {
				continue
			}
			// Strict < keeps the lowest source shard on delivery-time ties.
			if at := p.outboxes[i].recs[j].at; best == -1 || at < bestAt {
				best, bestAt = i, at
			}
		}
		box := &p.outboxes[best]
		h := box.recs[p.heads[best]]
		box.recs[p.heads[best]].d = nil // do not pin pooled records past injection
		p.heads[best]++
		dst := h.d.net
		now := p.nows[dst.shard]
		if h.at < now {
			panic(fmt.Sprintf("simnet: cross-shard record for shard %d timestamped %dns before its clock; lookahead/epoch-bound violation", dst.shard, now-h.at))
		}
		sim.ScheduleArg(dst.clock, time.Duration(h.at-now), deliver, h.d)
	}
	for i := range p.outboxes {
		p.outboxes[i].recs = p.outboxes[i].recs[:0]
	}
}
