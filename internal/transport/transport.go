// Package transport defines the message transport abstraction the DHT runs
// over. Two implementations exist: simnet (an in-memory network with
// configurable latency, loss and node up/down state, driven by the
// discrete-event simulator) and udp (a real net.UDPConn transport for
// running nodes as separate processes).
package transport

import "errors"

// Addr identifies an endpoint. For simnet it is an opaque node name; for
// UDP it is a "host:port" string.
type Addr string

// Handler consumes an inbound datagram. The payload is only valid for the
// duration of the call: transports recycle delivery buffers, so a handler
// that needs the bytes afterwards must copy them. Handlers are invoked
// serially per endpoint (the simulator's event loop, or one read loop per
// UDP socket).
type Handler func(from Addr, payload []byte)

// ErrClosed is returned when sending through a closed endpoint.
var ErrClosed = errors.New("transport: endpoint closed")

// MaxDatagram is the largest payload an endpoint must accept. It matches a
// conservative UDP datagram budget; the DHT keeps its messages below this.
const MaxDatagram = 60 * 1024

// Endpoint is one attachment point to a network.
type Endpoint interface {
	// Addr returns the endpoint's own address.
	Addr() Addr
	// Send transmits payload to the given address, best effort: delivery
	// failures (loss, dead peer) are silent, exactly like UDP. An error is
	// returned only for local conditions (endpoint closed, oversized
	// payload). Send does not retain payload after it returns, so callers
	// may reuse the buffer immediately.
	Send(to Addr, payload []byte) error
	// SetHandler installs the inbound handler. Must be called before any
	// traffic arrives; not safe to call concurrently with traffic.
	SetHandler(h Handler)
	// Close detaches the endpoint. Further Sends fail with ErrClosed.
	Close() error
}
