package sim

import (
	"testing"
	"time"

	"selfemerge/internal/stats"
)

// This file pins the timer wheel to the binary heap it replaced: the heap
// implementation below is the historical eventHeap retained verbatim (over a
// plain oracle record instead of the pooled *event) as the ordering oracle.
// The property test drives a live Simulator through randomized
// schedule/cancel/run/chain interleavings and requires the wheel's dispatch
// sequence, NextAt probe and Pending counter to agree with the heap's
// prediction byte for byte.

// oracleEvent is the oracle's view of one scheduled callback.
type oracleEvent struct {
	at  int64
	seq uint64
	id  uint64

	cancelled bool
	fired     bool

	// chainDelay >= 0 arms a child event (childID) scheduled from inside the
	// callback — the mid-drain insert path of the wheel.
	chainDelay int64
	childID    uint64
}

// oracleHeap is the pre-wheel eventHeap, retained as the test oracle.
type oracleHeap struct {
	items []*oracleEvent
}

func (h *oracleHeap) less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.at == b.at {
		return a.seq < b.seq
	}
	return a.at < b.at
}

func (h *oracleHeap) peek() *oracleEvent {
	if len(h.items) == 0 {
		return nil
	}
	return h.items[0]
}

func (h *oracleHeap) push(ev *oracleEvent) {
	h.items = append(h.items, ev)
	h.up(len(h.items) - 1)
}

func (h *oracleHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *oracleHeap) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
}

func (h *oracleHeap) pop() *oracleEvent {
	if len(h.items) == 0 {
		return nil
	}
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items[last] = nil
	h.items = h.items[:last]
	if last > 0 {
		h.down(0)
	}
	return top
}

// minPending returns the earliest live entry without popping, discarding
// cancelled and fired records from the top — the oracle's NextAt.
func (h *oracleHeap) minPending() *oracleEvent {
	for {
		top := h.peek()
		if top == nil {
			return nil
		}
		if top.cancelled || top.fired {
			h.pop()
			continue
		}
		return top
	}
}

// TestWheelMatchesHeapOracle is the determinism property test for the wheel:
// randomized interleavings of schedules across every level of the wheel
// (same-tick, level 0 through level 3, and the overflow list), cancellations
// (live, already-fired and double-stops), mid-callback chained schedules,
// and run bounds landing on arbitrary ticks must dispatch in exactly the
// (at, seq) order the retained heap predicts, with NextAt and Pending
// agreeing at every quiescent point.
func TestWheelMatchesHeapOracle(t *testing.T) {
	// Delay ranges chosen so inserts land in each wheel level: a tick is
	// 2^20ns, level 0 covers ~268ms, then ~68.7s, ~4.9h, ~52 days, and
	// beyond that the overflow list.
	delayRanges := []int64{
		int64(2 * time.Millisecond),
		int64(300 * time.Millisecond),
		int64(100 * time.Second),
		int64(11 * time.Hour),
		int64(100 * 24 * time.Hour),
	}
	for _, seed := range []uint64{1, 7, 29, 4242} {
		rng := stats.NewRNG(seed)
		s := NewSimulator()
		oracle := &oracleHeap{}

		var got, want []uint64
		var nextID, seq uint64
		var live []*oracleEvent // every armed record, for cancel targeting
		stops := make(map[uint64]Timer)

		// schedule arms one event on both the simulator and the oracle,
		// mirroring the simulator's internal seq assignment (single
		// goroutine, so arming order is assignment order).
		schedule := func() {
			id := nextID
			nextID++
			d := int64(rng.Uint64n(uint64(delayRanges[rng.Intn(len(delayRanges))])))
			if rng.Intn(20) == 0 {
				d = -d // negative delays clamp to "now"
			}
			at := s.Now().UnixNano() + d
			if d < 0 {
				at = s.Now().UnixNano()
			}
			oe := &oracleEvent{at: at, seq: seq, id: id, chainDelay: -1}
			seq++
			switch rng.Intn(4) {
			case 0: // cancellable Timer
				stops[id] = s.AfterFunc(time.Duration(d), func() { got = append(got, id) })
			case 1: // cancellable value handle
				h := s.AfterFuncArg(time.Duration(d), func(a any) { got = append(got, a.(uint64)) }, id)
				stops[id] = h
			case 2: // fire-and-forget
				s.Schedule(time.Duration(d), func() { got = append(got, id) })
			case 3: // chained: the callback schedules a child mid-drain
				child := nextID
				nextID++
				cd := int64(rng.Uint64n(uint64(4 * time.Millisecond)))
				if rng.Intn(3) == 0 {
					cd = 0 // same-instant child, dispatched in the same pass
				}
				oe.chainDelay, oe.childID = cd, child
				s.Schedule(time.Duration(d), func() {
					got = append(got, id)
					s.Schedule(time.Duration(cd), func() { got = append(got, child) })
				})
			}
			oracle.push(oe)
			live = append(live, oe)
		}

		// expect pops the oracle up to bound, mirroring chained schedules
		// (their seq is assigned at parent dispatch time).
		expect := func(bound int64, limit int) {
			for limit != 0 {
				top := oracle.minPending()
				if top == nil || top.at > bound {
					return
				}
				oracle.pop()
				top.fired = true
				want = append(want, top.id)
				limit--
				if top.chainDelay >= 0 {
					child := &oracleEvent{at: top.at + top.chainDelay, seq: seq, id: top.childID, chainDelay: -1}
					seq++
					oracle.push(child)
					live = append(live, child)
				}
			}
		}

		check := func(round int) {
			if len(got) != len(want) {
				t.Fatalf("seed %d round %d: dispatched %d events, oracle predicts %d", seed, round, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("seed %d round %d: dispatch[%d] = id %d, oracle predicts id %d", seed, round, i, got[i], want[i])
				}
			}
			at, ok := s.NextAt()
			top := oracle.minPending()
			if ok != (top != nil) {
				t.Fatalf("seed %d round %d: NextAt ok=%v, oracle pending=%v", seed, round, ok, top != nil)
			}
			if ok && at.UnixNano() != top.at {
				t.Fatalf("seed %d round %d: NextAt=%d, oracle min=%d", seed, round, at.UnixNano(), top.at)
			}
			pending := 0
			for _, oe := range live {
				if !oe.cancelled && !oe.fired {
					pending++
				}
			}
			if s.Pending() != pending {
				t.Fatalf("seed %d round %d: Pending()=%d, oracle count=%d", seed, round, s.Pending(), pending)
			}
		}

		for round := 0; round < 2500; round++ {
			switch op := rng.Intn(100); {
			case op < 45:
				schedule()
			case op < 65: // cancel a random armed record (possibly stale)
				if len(live) == 0 {
					continue
				}
				oe := live[rng.Intn(len(live))]
				tm, cancellable := stops[oe.id]
				if !cancellable {
					continue
				}
				stopped := tm.Stop()
				if wantStop := !oe.cancelled && !oe.fired; stopped != wantStop {
					t.Fatalf("seed %d round %d: Stop(id %d)=%v, oracle expects %v", seed, round, oe.id, stopped, wantStop)
				}
				if stopped {
					oe.cancelled = true
				}
			case op < 90: // run to a randomized bound
				d := int64(rng.Uint64n(uint64(delayRanges[rng.Intn(len(delayRanges))])))
				bound := s.Now().UnixNano() + d
				expect(bound, -1)
				s.RunUntil(time.Unix(0, bound))
				if now := s.Now().UnixNano(); now != bound {
					t.Fatalf("seed %d round %d: clock at %d after RunUntil(%d)", seed, round, now, bound)
				}
			default: // single step
				top := oracle.minPending()
				expect(1<<63-1, 1)
				if stepped := s.Step(); stepped != (top != nil) {
					t.Fatalf("seed %d round %d: Step()=%v, oracle pending=%v", seed, round, stepped, top != nil)
				}
			}
			check(round)
		}
		// Drain everything, including the far-overflow tail.
		expect(1<<63-1, -1)
		s.Run()
		check(-1)
	}
}

// TestWheelCascadeBoundaries pins the cascade edges directly: events placed
// exactly on level-block boundaries (multiples of 2^28, 2^36, 2^44 ns from
// the epoch-aligned wheel time) and one past the 52-day overflow horizon
// must fire in timestamp order with the clock advancing through multi-level
// cascades in one RunUntil.
func TestWheelCascadeBoundaries(t *testing.T) {
	s := NewSimulator()
	base := s.Now()
	var got []int
	delays := []time.Duration{
		0,
		1 << wheelShift,                       // one tick
		(1 << (wheelShift + wheelBits)) - 1,   // last tick of level 0's window
		1 << (wheelShift + wheelBits),         // first tick of level 1's window
		1 << (wheelShift + 2*wheelBits),       // level 2 boundary
		1 << (wheelShift + 3*wheelBits),       // level 3 boundary
		(1 << (wheelShift + 4*wheelBits)) * 2, // beyond the horizon: overflow
	}
	for i, d := range delays {
		i := i
		s.Schedule(d, func() { got = append(got, i) })
	}
	if at, ok := s.NextAt(); !ok || !at.Equal(base) {
		t.Fatalf("NextAt = %v, %v; want %v", at, ok, base)
	}
	s.RunUntil(base.Add(delays[len(delays)-1]))
	if len(got) != len(delays) {
		t.Fatalf("dispatched %d of %d events", len(got), len(delays))
	}
	for i, id := range got {
		if id != i {
			t.Fatalf("dispatch order %v not ascending", got)
		}
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d after full drain", s.Pending())
	}
}
