package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Lockstep advances a set of simulators in conservative lockstep epochs: the
// parallel-discrete-event form of RunUntil. Each member simulator owns a
// disjoint partition of the modelled system (one shard's nodes and their
// local traffic), and anything one partition sends another is queued outside
// the simulators and injected at epoch boundaries by the Exchange hook.
//
// The correctness argument is the classic conservative-lookahead one
// (Chandy–Misra–Bryant), sharpened per member. Let next_i be member i's
// earliest pending event at a barrier (+inf if idle), m1 = min_i next_i, and
// W = Lookahead, the guaranteed minimum cross-member latency. During an
// epoch every cross effect member i emits lands at least W after the
// emitting event, i.e. at or after next_i + W. Clamping each member's
// potential-send horizon at one hop past the global minimum,
//
//	floor_i = min(next_i, m1 + W)
//
// lets member j run to
//
//	bound_j = min over i != j of floor_i, plus W
//
// without overrunning any arrival: everything i can send j lands at or
// after floor_i + W >= bound_j (arrival exactly at bound_j is injected at
// the next barrier with j's clock parked there, which RunUntil's inclusive
// semantics already define). The floor is what makes the widened window
// transitively sound — without it, the minimum member could race past a
// reply provoked from an idle member by its own send (send at m1 wakes i at
// m1+W, reply lands m1+2W, so no bound may exceed m1+2W). Concretely: the
// minimum member a gets bound_a = min(m2, m1+W) + W (m2 the second minimum)
// — up to a double-width window when the rest of the fabric is quiet — and
// every other member gets the classic m1 + W. With a single member there is
// no cross traffic at all and the bound is the deadline itself: one epoch
// per RunUntil, which is what keeps Partition=1 at classic-loop speed.
//
// Within an epoch the member simulators are entirely independent and may
// run on separate goroutines; determinism is untouched because each
// simulator's event order is its own, the Exchange hook injects cross
// records in a fixed total order, and the epoch/bound schedule is a pure
// function of the probed event times. Epoch and idle-skip counts are
// likewise schedule-independent and exposed for the loop-stats columns.
//
// Lockstep itself is not safe for concurrent use: one goroutine drives
// RunUntil/RunFor, exactly like Simulator.Run.
type Lockstep struct {
	// Sims are the member simulators. Their clocks must agree when the
	// Lockstep is constructed (all fresh, or all previously advanced
	// together); every barrier re-aligns them to their epoch bounds.
	Sims []*Simulator
	// Lookahead is the minimum cross-simulator latency W. It must be > 0 and
	// a true lower bound on the delay of every cross record, or epochs would
	// overrun arrivals (fabrics expose CheckLookahead-style validation for
	// exactly this wiring mistake).
	Lookahead time.Duration
	// Exchange drains the cross queues into the member simulators. It runs
	// with every simulator paused at a common barrier, before each epoch and
	// once before the final clock alignment, so it may touch any simulator
	// freely. Optional.
	Exchange func()
	// Release, if set, is called after each barrier probe with the horizon
	// strictly below which no member can emit further observable output
	// (reports): every member's future activity is at or after its probed
	// next event. Collectors that must ingest output in global timestamp
	// order despite members' clocks diverging within an epoch hold records
	// back and feed them here. The final call, after the deadline
	// alignment, uses deadline+1ns so records timestamped exactly at the
	// deadline flush too. Optional.
	Release func(before time.Time)
	// Workers caps how many member simulators run concurrently within one
	// epoch (default GOMAXPROCS). Execution throttle only: results are
	// identical for any value, including 1.
	Workers int

	nexts  []int64 // per-sim earliest pending event, scratch
	bounds []int64 // per-sim epoch bound, scratch

	epochs    uint64
	idleSkips uint64
}

// Now returns the common barrier time. Between Run calls every member clock
// agrees; the first member is as good as any.
func (l *Lockstep) Now() time.Time { return l.Sims[0].Now() }

// Epochs returns the cumulative number of epoch barriers executed. The
// count is a pure function of the simulated workload — independent of
// GOMAXPROCS and Workers — which is what makes it gateable in CI.
func (l *Lockstep) Epochs() uint64 { return l.epochs }

// IdleSkips returns how many of those epochs had at most one member with
// work in its window — the degenerate epochs the adaptive bound turns into
// cheap inline fast-forwards instead of full fan-outs.
func (l *Lockstep) IdleSkips() uint64 { return l.idleSkips }

// RunFor advances every member simulator by d in lockstep.
func (l *Lockstep) RunFor(d time.Duration) { l.RunUntil(l.Now().Add(d)) }

// RunUntil executes events with timestamps <= deadline across every member
// simulator, exchanging cross records at each epoch barrier, then aligns
// all clocks to the deadline.
func (l *Lockstep) RunUntil(deadline time.Time) {
	bound := deadline.UnixNano()
	lookahead := int64(l.Lookahead)
	if len(l.nexts) != len(l.Sims) {
		l.nexts = make([]int64, len(l.Sims))
		l.bounds = make([]int64, len(l.Sims))
	}
	for {
		if l.Exchange != nil {
			l.Exchange()
		}
		// Probe the earliest pending event across the members. Cross records
		// were just injected, so the wheels hold everything schedulable.
		const inf = 1<<63 - 1
		m1, m2 := int64(inf), int64(inf) // global and second minimum
		argmin := -1
		for i, s := range l.Sims {
			l.nexts[i] = inf
			if at, ok := s.NextAt(); ok {
				n := at.UnixNano()
				l.nexts[i] = n
				switch {
				case n < m1:
					m1, m2 = n, m1
					argmin = i
				case n < m2:
					m2 = n
				}
			}
		}
		if l.Release != nil && m1 != inf {
			// Everything any member still does is at or after its next event,
			// so output timestamped strictly before m1 is final.
			l.Release(time.Unix(0, m1))
		}
		if m1 > bound {
			break
		}
		// Per-member epoch bounds from the floors rule (see type comment):
		// the minimum member may run to min(m2, m1+W) + W, everyone else to
		// the classic m1 + W; all capped at the deadline.
		wide := int64(inf) // single member: no cross traffic can exist
		if len(l.Sims) > 1 {
			// Even with every other member idle (m2 = inf) the cap at m1+2W
			// stands: the minimum member's own sends can provoke replies
			// landing as early as two hops past m1.
			wide = m1 + 2*lookahead
			if m2 != inf && m2+lookahead < wide {
				wide = m2 + lookahead
			}
		}
		narrow := m1 + lookahead
		active := 0
		for i := range l.Sims {
			b := narrow
			if i == argmin {
				b = wide
			}
			if b > bound || b < 0 { // < 0: overflow past the int64 horizon
				b = bound
			}
			l.bounds[i] = b
			if l.nexts[i] <= b {
				active++
			}
		}
		l.epochs++
		if active <= 1 {
			l.idleSkips++
		}
		l.runEpoch(active)
	}
	// No runnable event at or before the deadline remains anywhere (and the
	// probe above ran after a final Exchange); align every clock and flush
	// any output parked at the deadline itself.
	for _, s := range l.Sims {
		s.RunUntil(deadline)
	}
	if l.Release != nil {
		l.Release(deadline.Add(1))
	}
}

// runEpoch runs every member with work in its window concurrently up to its
// bound and advances the idle members' clocks. Which goroutine runs which
// member never matters: members share no state inside an epoch.
func (l *Lockstep) runEpoch(active int) {
	for i := range l.Sims {
		if l.nexts[i] > l.bounds[i] {
			l.Sims[i].RunUntil(time.Unix(0, l.bounds[i])) // clock advance only
		}
	}
	workers := l.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > active {
		workers = active
	}
	if workers <= 1 {
		// One busy shard (the common sparse-epoch case) or a serial cap: run
		// inline, no goroutine or barrier cost.
		for i := range l.Sims {
			if l.nexts[i] <= l.bounds[i] {
				l.Sims[i].RunUntil(time.Unix(0, l.bounds[i]))
			}
		}
		return
	}
	var cursor atomic.Int64
	run := func() {
		for {
			i := int(cursor.Add(1)) - 1
			if i >= len(l.Sims) {
				return
			}
			if l.nexts[i] <= l.bounds[i] {
				l.Sims[i].RunUntil(time.Unix(0, l.bounds[i]))
			}
		}
	}
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			run()
		}()
	}
	run()
	wg.Wait()
}
