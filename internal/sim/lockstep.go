package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Lockstep advances a set of simulators in conservative lockstep epochs: the
// parallel-discrete-event form of RunUntil. Each member simulator owns a
// disjoint partition of the modelled system (one shard's nodes and their
// local traffic), and anything one partition sends another is queued outside
// the simulators and injected at epoch boundaries by the Exchange hook.
//
// The correctness argument is the classic conservative-lookahead one. If
// every cross-simulator effect scheduled while the clocks are at or past
// time t lands at or after t+W (W = Lookahead — in the simnet fabric, its
// base latency), then running every simulator independently up to
// bound = min(earliest pending event) + W cannot miss an interaction:
// whatever a shard sends during the epoch arrives no earlier than the next
// epoch, so draining the cross queues at each barrier is sufficient. Within
// an epoch the member simulators are entirely independent and may run on
// separate goroutines; determinism is untouched because each simulator's
// event order is its own and the Exchange hook injects cross records in a
// fixed total order.
//
// Lockstep itself is not safe for concurrent use: one goroutine drives
// RunUntil/RunFor, exactly like Simulator.Run.
type Lockstep struct {
	// Sims are the member simulators. Their clocks must agree when the
	// Lockstep is constructed (all fresh, or all previously advanced
	// together); every barrier re-aligns them exactly.
	Sims []*Simulator
	// Lookahead is the minimum cross-simulator latency W. It must be > 0 and
	// a true lower bound on the delay of every cross record, or epochs would
	// overrun arrivals.
	Lookahead time.Duration
	// Exchange drains the cross queues into the member simulators. It runs
	// with every simulator paused at a common barrier time, before each
	// epoch and once before the final clock alignment, so it may touch any
	// simulator freely. Optional.
	Exchange func()
	// Workers caps how many member simulators run concurrently within one
	// epoch (default GOMAXPROCS). Execution throttle only: results are
	// identical for any value, including 1.
	Workers int

	nexts []int64 // per-sim earliest pending event, scratch
}

// Now returns the common barrier time. Between Run calls every member clock
// agrees; the first member is as good as any.
func (l *Lockstep) Now() time.Time { return l.Sims[0].Now() }

// RunFor advances every member simulator by d in lockstep.
func (l *Lockstep) RunFor(d time.Duration) { l.RunUntil(l.Now().Add(d)) }

// RunUntil executes events with timestamps <= deadline across every member
// simulator, exchanging cross records at each epoch barrier, then aligns
// all clocks to the deadline.
func (l *Lockstep) RunUntil(deadline time.Time) {
	bound := deadline.UnixNano()
	lookahead := int64(l.Lookahead)
	if len(l.nexts) != len(l.Sims) {
		l.nexts = make([]int64, len(l.Sims))
	}
	for {
		if l.Exchange != nil {
			l.Exchange()
		}
		// Probe the earliest pending event across the members. Cross records
		// were just injected, so the heaps hold everything schedulable.
		next := int64(1<<63 - 1)
		for i, s := range l.Sims {
			at, ok := s.NextAt()
			l.nexts[i] = 1<<63 - 1
			if ok {
				l.nexts[i] = at.UnixNano()
				if l.nexts[i] < next {
					next = l.nexts[i]
				}
			}
		}
		if next > bound {
			break
		}
		// The epoch window [next, next+W]: every cross effect of an event in
		// it lands at >= next+W, i.e. not before the next barrier. Skipping
		// straight to `next` keeps sparse stretches (holding periods between
		// hops) as cheap as they are under a single event loop.
		epochEnd := next + lookahead
		if epochEnd > bound {
			epochEnd = bound
		}
		l.runEpoch(time.Unix(0, epochEnd))
	}
	// No runnable event at or before the deadline remains anywhere (and the
	// probe above ran after a final Exchange); align every clock.
	for _, s := range l.Sims {
		s.RunUntil(deadline)
	}
}

// runEpoch runs every member with work in the window concurrently up to t
// and advances the idle members' clocks. Which goroutine runs which member
// never matters: members share no state inside an epoch.
func (l *Lockstep) runEpoch(t time.Time) {
	bound := t.UnixNano()
	active := 0
	for i := range l.Sims {
		if l.nexts[i] <= bound {
			active++
		} else {
			l.Sims[i].RunUntil(t) // clock advance only
		}
	}
	workers := l.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > active {
		workers = active
	}
	if workers <= 1 {
		// One busy shard (the common sparse-epoch case) or a serial cap: run
		// inline, no goroutine or barrier cost.
		for i := range l.Sims {
			if l.nexts[i] <= bound {
				l.Sims[i].RunUntil(t)
			}
		}
		return
	}
	var cursor atomic.Int64
	run := func() {
		for {
			i := int(cursor.Add(1)) - 1
			if i >= len(l.Sims) {
				return
			}
			if l.nexts[i] <= bound {
				l.Sims[i].RunUntil(t)
			}
		}
	}
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			run()
		}()
	}
	run()
	wg.Wait()
}
