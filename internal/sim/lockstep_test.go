package sim

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestLockstepAlignsClocks(t *testing.T) {
	sims := []*Simulator{NewSimulator(), NewSimulator(), NewSimulator()}
	l := &Lockstep{Sims: sims, Lookahead: time.Millisecond}
	deadline := l.Now().Add(time.Second)
	l.RunUntil(deadline)
	for i, s := range sims {
		if !s.Now().Equal(deadline) {
			t.Errorf("sim %d clock %v, want %v", i, s.Now(), deadline)
		}
	}
}

func TestLockstepRunsLocalEvents(t *testing.T) {
	sims := []*Simulator{NewSimulator(), NewSimulator()}
	l := &Lockstep{Sims: sims, Lookahead: time.Millisecond}

	// Both sims hold events at the same instants, so they are active in the
	// same epochs and may run on concurrent workers: guard the shared slice.
	var mu sync.Mutex
	var ran []string
	for i, s := range sims {
		i := i
		for _, d := range []time.Duration{
			time.Millisecond, 500 * time.Millisecond, time.Second, // the last lands exactly on the deadline
		} {
			d := d
			s.AfterFunc(d, func() {
				mu.Lock()
				ran = append(ran, fmt.Sprintf("%d@%v", i, d))
				mu.Unlock()
			})
		}
		s.AfterFunc(time.Second+time.Nanosecond, func() { t.Errorf("sim %d ran an event past the deadline", i) })
	}
	l.RunFor(time.Second)
	if len(ran) != 6 {
		t.Fatalf("ran %d events (%v), want 6", len(ran), ran)
	}
}

// TestLockstepExchange models the partition fabric by hand: each simulator
// hosts one node; every event sends a record to the other simulator with
// delivery time now+lookahead, and the Exchange hook drains the queue into
// the destination heaps. The hop trace must be identical for any worker
// count, and every hop must honour the lookahead lower bound.
func TestLockstepExchange(t *testing.T) {
	const lookahead = time.Millisecond
	type hop struct {
		sim int
		at  time.Time
	}

	run := func(workers int) []hop {
		sims := []*Simulator{NewSimulator(), NewSimulator()}
		var mu sync.Mutex // hops on distinct sims may interleave across epochs
		var trace []hop
		type rec struct {
			at  time.Time
			dst int
		}
		var queue []rec
		var bounce func(dst int)
		bounce = func(dst int) {
			mu.Lock()
			trace = append(trace, hop{sim: dst, at: sims[dst].Now()})
			mu.Unlock()
			queue = append(queue, rec{at: sims[dst].Now().Add(lookahead), dst: 1 - dst})
		}
		l := &Lockstep{
			Sims:      sims,
			Lookahead: lookahead,
			Workers:   workers,
			Exchange: func() {
				for _, r := range queue {
					r := r
					sims[r.dst].AfterFunc(r.at.Sub(sims[r.dst].Now()), func() { bounce(r.dst) })
				}
				queue = queue[:0]
			},
		}
		sims[0].AfterFunc(lookahead, func() { bounce(0) })
		l.RunFor(20 * time.Millisecond)
		return trace
	}

	// The queue append in bounce is only safe because a ping-pong has exactly
	// one active simulator per epoch; the real fabric uses per-shard queues.
	base := run(1)
	if len(base) != 20 {
		t.Fatalf("ran %d hops, want 20", len(base))
	}
	start := base[0].at
	for i, h := range base {
		if h.sim != i%2 {
			t.Errorf("hop %d on sim %d, want %d", i, h.sim, i%2)
		}
		if want := start.Add(time.Duration(i) * lookahead); !h.at.Equal(want) {
			t.Errorf("hop %d at %v, want %v (lookahead lower bound)", i, h.at, want)
		}
	}
	for _, workers := range []int{2, 4} {
		got := run(workers)
		if len(got) != len(base) {
			t.Fatalf("workers=%d ran %d hops, want %d", workers, len(got), len(base))
		}
		for i := range got {
			if got[i] != base[i] {
				t.Errorf("workers=%d hop %d = %+v, want %+v", workers, i, got[i], base[i])
			}
		}
	}
}

// TestLockstepDeadlineExclusive pins the boundary semantics: an event exactly
// at the deadline runs (matching Simulator.RunUntil), one past it does not.
func TestLockstepDeadlineExclusive(t *testing.T) {
	s := NewSimulator()
	l := &Lockstep{Sims: []*Simulator{s}, Lookahead: time.Millisecond}
	var atDeadline, past bool
	s.AfterFunc(time.Second, func() { atDeadline = true })
	s.AfterFunc(time.Second+time.Nanosecond, func() { past = true })
	l.RunFor(time.Second)
	if !atDeadline {
		t.Error("event at the deadline did not run")
	}
	if past {
		t.Error("event past the deadline ran")
	}
	l.RunFor(time.Second)
	if !past {
		t.Error("event did not run after the deadline advanced past it")
	}
}
