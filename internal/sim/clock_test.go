package sim

import (
	"sync"
	"testing"
	"time"
)

func TestSimulatorOrdering(t *testing.T) {
	s := NewSimulator()
	var order []int
	s.AfterFunc(3*time.Second, func() { order = append(order, 3) })
	s.AfterFunc(1*time.Second, func() { order = append(order, 1) })
	s.AfterFunc(2*time.Second, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
}

func TestSimulatorSameInstantFIFO(t *testing.T) {
	s := NewSimulator()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.AfterFunc(time.Second, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events out of order: %v", order)
		}
	}
}

func TestSimulatorClockAdvances(t *testing.T) {
	s := NewSimulator()
	start := s.Now()
	var at time.Time
	s.AfterFunc(5*time.Minute, func() { at = s.Now() })
	s.Run()
	if got := at.Sub(start); got != 5*time.Minute {
		t.Fatalf("event ran at +%v", got)
	}
}

func TestSimulatorNestedScheduling(t *testing.T) {
	s := NewSimulator()
	var fired []time.Duration
	start := s.Now()
	s.AfterFunc(time.Second, func() {
		fired = append(fired, s.Now().Sub(start))
		s.AfterFunc(2*time.Second, func() {
			fired = append(fired, s.Now().Sub(start))
		})
	})
	s.Run()
	if len(fired) != 2 || fired[0] != time.Second || fired[1] != 3*time.Second {
		t.Fatalf("fired = %v", fired)
	}
}

func TestTimerStop(t *testing.T) {
	s := NewSimulator()
	ran := false
	timer := s.AfterFunc(time.Second, func() { ran = true })
	if !timer.Stop() {
		t.Fatal("Stop returned false before firing")
	}
	s.Run()
	if ran {
		t.Fatal("cancelled timer fired")
	}
	if timer.Stop() {
		t.Fatal("second Stop returned true")
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	s := NewSimulator()
	timer := s.AfterFunc(time.Second, func() {})
	s.Run()
	if timer.Stop() {
		t.Fatal("Stop after firing returned true")
	}
}

func TestRunUntil(t *testing.T) {
	s := NewSimulator()
	var fired []int
	s.AfterFunc(1*time.Second, func() { fired = append(fired, 1) })
	s.AfterFunc(10*time.Second, func() { fired = append(fired, 10) })
	deadline := s.Now().Add(5 * time.Second)
	s.RunUntil(deadline)
	if len(fired) != 1 || fired[0] != 1 {
		t.Fatalf("fired = %v", fired)
	}
	if !s.Now().Equal(deadline) {
		t.Fatalf("clock at %v, want %v", s.Now(), deadline)
	}
	s.Run()
	if len(fired) != 2 {
		t.Fatalf("remaining event did not run: %v", fired)
	}
}

func TestRunFor(t *testing.T) {
	s := NewSimulator()
	count := 0
	var tick func()
	tick = func() {
		count++
		s.AfterFunc(time.Second, tick)
	}
	s.AfterFunc(time.Second, tick)
	s.RunFor(10 * time.Second)
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
}

func TestPending(t *testing.T) {
	s := NewSimulator()
	a := s.AfterFunc(time.Second, func() {})
	s.AfterFunc(2*time.Second, func() {})
	if got := s.Pending(); got != 2 {
		t.Fatalf("Pending = %d", got)
	}
	a.Stop()
	if got := s.Pending(); got != 1 {
		t.Fatalf("Pending after cancel = %d", got)
	}
}

func TestNegativeDelay(t *testing.T) {
	s := NewSimulator()
	ran := false
	s.AfterFunc(-time.Second, func() { ran = true })
	s.Run()
	if !ran {
		t.Fatal("negative-delay event did not run")
	}
}

func TestRealClock(t *testing.T) {
	c := RealClock()
	before := time.Now()
	if c.Now().Before(before.Add(-time.Second)) {
		t.Fatal("RealClock.Now far in the past")
	}
	var wg sync.WaitGroup
	wg.Add(1)
	c.AfterFunc(time.Millisecond, wg.Done)
	wg.Wait() // must fire
	timer := c.AfterFunc(time.Hour, func() { t.Error("should not fire") })
	if !timer.Stop() {
		t.Fatal("Stop on real timer failed")
	}
}

func TestConcurrentScheduling(t *testing.T) {
	// AfterFunc may be called from many goroutines (e.g. UDP handlers).
	s := NewSimulator()
	var mu sync.Mutex
	count := 0
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.AfterFunc(time.Duration(i)*time.Millisecond, func() {
					mu.Lock()
					count++
					mu.Unlock()
				})
			}
		}()
	}
	wg.Wait()
	s.Run()
	if count != 800 {
		t.Fatalf("count = %d", count)
	}
}
