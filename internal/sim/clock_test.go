package sim

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSimulatorOrdering(t *testing.T) {
	s := NewSimulator()
	var order []int
	s.AfterFunc(3*time.Second, func() { order = append(order, 3) })
	s.AfterFunc(1*time.Second, func() { order = append(order, 1) })
	s.AfterFunc(2*time.Second, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
}

func TestSimulatorSameInstantFIFO(t *testing.T) {
	s := NewSimulator()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.AfterFunc(time.Second, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events out of order: %v", order)
		}
	}
}

func TestSimulatorClockAdvances(t *testing.T) {
	s := NewSimulator()
	start := s.Now()
	var at time.Time
	s.AfterFunc(5*time.Minute, func() { at = s.Now() })
	s.Run()
	if got := at.Sub(start); got != 5*time.Minute {
		t.Fatalf("event ran at +%v", got)
	}
}

func TestSimulatorNestedScheduling(t *testing.T) {
	s := NewSimulator()
	var fired []time.Duration
	start := s.Now()
	s.AfterFunc(time.Second, func() {
		fired = append(fired, s.Now().Sub(start))
		s.AfterFunc(2*time.Second, func() {
			fired = append(fired, s.Now().Sub(start))
		})
	})
	s.Run()
	if len(fired) != 2 || fired[0] != time.Second || fired[1] != 3*time.Second {
		t.Fatalf("fired = %v", fired)
	}
}

func TestTimerStop(t *testing.T) {
	s := NewSimulator()
	ran := false
	timer := s.AfterFunc(time.Second, func() { ran = true })
	if !timer.Stop() {
		t.Fatal("Stop returned false before firing")
	}
	s.Run()
	if ran {
		t.Fatal("cancelled timer fired")
	}
	if timer.Stop() {
		t.Fatal("second Stop returned true")
	}
}

func TestAfterFuncArg(t *testing.T) {
	s := NewSimulator()
	var got any
	h := s.AfterFuncArg(time.Second, func(v any) { got = v }, "payload")
	s.Run()
	if got != "payload" {
		t.Fatalf("arg = %v", got)
	}
	if h.Stop() {
		t.Fatal("Stop after firing returned true")
	}
}

func TestAfterFuncArgStop(t *testing.T) {
	s := NewSimulator()
	ran := false
	h := s.AfterFuncArg(time.Second, func(any) { ran = true }, nil)
	if !h.Stop() {
		t.Fatal("Stop returned false before firing")
	}
	s.Run()
	if ran {
		t.Fatal("cancelled arg timer fired")
	}
	if h.Stop() {
		t.Fatal("second Stop returned true")
	}
}

func TestAfterFuncArgZeroHandle(t *testing.T) {
	var h ArgTimer
	if h.Stop() {
		t.Fatal("zero ArgTimer Stop returned true")
	}
}

func TestAfterFuncArgFallback(t *testing.T) {
	// A clock without native support routes through AfterFunc + closure.
	done := make(chan any, 1)
	h := AfterFuncArg(RealClock(), time.Millisecond, func(v any) { done <- v }, 7)
	select {
	case v := <-done:
		if v != 7 {
			t.Fatalf("arg = %v", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("fallback arg timer never fired")
	}
	if h.Stop() {
		t.Fatal("Stop after firing returned true")
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	s := NewSimulator()
	timer := s.AfterFunc(time.Second, func() {})
	s.Run()
	if timer.Stop() {
		t.Fatal("Stop after firing returned true")
	}
}

func TestRunUntil(t *testing.T) {
	s := NewSimulator()
	var fired []int
	s.AfterFunc(1*time.Second, func() { fired = append(fired, 1) })
	s.AfterFunc(10*time.Second, func() { fired = append(fired, 10) })
	deadline := s.Now().Add(5 * time.Second)
	s.RunUntil(deadline)
	if len(fired) != 1 || fired[0] != 1 {
		t.Fatalf("fired = %v", fired)
	}
	if !s.Now().Equal(deadline) {
		t.Fatalf("clock at %v, want %v", s.Now(), deadline)
	}
	s.Run()
	if len(fired) != 2 {
		t.Fatalf("remaining event did not run: %v", fired)
	}
}

func TestRunFor(t *testing.T) {
	s := NewSimulator()
	count := 0
	var tick func()
	tick = func() {
		count++
		s.AfterFunc(time.Second, tick)
	}
	s.AfterFunc(time.Second, tick)
	s.RunFor(10 * time.Second)
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
}

func TestPending(t *testing.T) {
	s := NewSimulator()
	a := s.AfterFunc(time.Second, func() {})
	s.AfterFunc(2*time.Second, func() {})
	if got := s.Pending(); got != 2 {
		t.Fatalf("Pending = %d", got)
	}
	a.Stop()
	if got := s.Pending(); got != 1 {
		t.Fatalf("Pending after cancel = %d", got)
	}
}

func TestPendingCancelThenDispatch(t *testing.T) {
	// The O(1) pending counter must track all three transitions: schedule,
	// cancel (even though the cancelled record stays lazily queued in the
	// heap) and dispatch.
	s := NewSimulator()
	timers := make([]Timer, 6)
	for i := range timers {
		timers[i] = s.AfterFunc(time.Duration(i+1)*time.Second, func() {})
	}
	if got := s.Pending(); got != 6 {
		t.Fatalf("Pending = %d, want 6", got)
	}
	for _, tm := range timers[:3] {
		if !tm.Stop() {
			t.Fatal("Stop on a queued timer returned false")
		}
	}
	if got := s.Pending(); got != 3 {
		t.Fatalf("Pending after 3 cancels = %d, want 3", got)
	}
	// Double-Stop must not decrement twice.
	if timers[0].Stop() {
		t.Fatal("second Stop returned true")
	}
	if got := s.Pending(); got != 3 {
		t.Fatalf("Pending after double cancel = %d, want 3", got)
	}
	s.Step()
	if got := s.Pending(); got != 2 {
		t.Fatalf("Pending after one dispatch = %d, want 2", got)
	}
	s.Run()
	if got := s.Pending(); got != 0 {
		t.Fatalf("Pending after drain = %d, want 0", got)
	}
}

func TestStaleHandleCannotTouchRecycledEvent(t *testing.T) {
	// Event records are pooled: after a timer fires, its record may be
	// re-armed for an unrelated callback. A held handle from the earlier
	// life must observe the generation bump and become a no-op instead of
	// cancelling the new occupant.
	s := NewSimulator()
	stale := s.AfterFunc(time.Second, func() {})
	s.Run() // fires and recycles the record
	// Schedule until the pool hands the same record back (single-threaded,
	// so the first schedule already reuses it; loop defensively).
	ran := false
	var fresh Timer
	for i := 0; i < 8; i++ {
		fresh = s.AfterFunc(time.Second, func() { ran = true })
		if fresh.(timerHandle).ev == stale.(timerHandle).ev {
			break
		}
	}
	if fresh.(timerHandle).ev != stale.(timerHandle).ev {
		t.Skip("pool did not recycle the record; nothing to check")
	}
	if stale.Stop() {
		t.Fatal("stale handle claimed to cancel the recycled event")
	}
	before := s.Pending()
	stale.Stop() // must not corrupt the pending counter either
	if got := s.Pending(); got != before {
		t.Fatalf("stale Stop moved Pending from %d to %d", before, got)
	}
	s.Run()
	if !ran {
		t.Fatal("stale handle cancelled the new occupant's callback")
	}
}

func TestConcurrentStopRace(t *testing.T) {
	// Many goroutines race Stop against the dispatch loop; exactly one side
	// wins each event, and the pending counter ends at zero.
	s := NewSimulator()
	const n = 400
	var fired atomic.Int64
	timers := make([]Timer, n)
	for i := range timers {
		timers[i] = s.AfterFunc(time.Duration(i)*time.Millisecond, func() { fired.Add(1) })
	}
	var stopped atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := g; i < n; i += 4 {
				if timers[i].Stop() {
					stopped.Add(1)
				}
			}
		}()
	}
	s.Run()
	wg.Wait()
	if got := fired.Load() + stopped.Load(); got != n {
		t.Fatalf("fired %d + stopped %d = %d, want %d", fired.Load(), stopped.Load(), got, n)
	}
	if got := s.Pending(); got != 0 {
		t.Fatalf("Pending after drain = %d", got)
	}
}

func TestNegativeDelay(t *testing.T) {
	s := NewSimulator()
	ran := false
	s.AfterFunc(-time.Second, func() { ran = true })
	s.Run()
	if !ran {
		t.Fatal("negative-delay event did not run")
	}
}

func TestRealClock(t *testing.T) {
	c := RealClock()
	before := time.Now()
	if c.Now().Before(before.Add(-time.Second)) {
		t.Fatal("RealClock.Now far in the past")
	}
	var wg sync.WaitGroup
	wg.Add(1)
	c.AfterFunc(time.Millisecond, wg.Done)
	wg.Wait() // must fire
	timer := c.AfterFunc(time.Hour, func() { t.Error("should not fire") })
	if !timer.Stop() {
		t.Fatal("Stop on real timer failed")
	}
}

func TestConcurrentScheduling(t *testing.T) {
	// AfterFunc may be called from many goroutines (e.g. UDP handlers).
	s := NewSimulator()
	var mu sync.Mutex
	count := 0
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.AfterFunc(time.Duration(i)*time.Millisecond, func() {
					mu.Lock()
					count++
					mu.Unlock()
				})
			}
		}()
	}
	wg.Wait()
	s.Run()
	if count != 800 {
		t.Fatalf("count = %d", count)
	}
}
