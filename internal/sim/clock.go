// Package sim provides the discrete-event simulation engine the in-process
// DHT experiments run on: a virtual clock with an event heap, deterministic
// ordering, and a Clock abstraction that lets the same DHT and protocol code
// run on either simulated or wall-clock time.
package sim

import (
	"sync"
	"sync/atomic"
	"time"
)

// Clock abstracts time for components that must run under both the
// discrete-event simulator and real time (the UDP deployment).
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// AfterFunc schedules fn to run d from now and returns a cancellable
	// timer. fn runs on the clock's dispatch context: the simulator's Run
	// loop, or a timer goroutine for the real clock.
	AfterFunc(d time.Duration, fn func()) Timer
}

// Timer is a cancellable scheduled callback.
type Timer interface {
	// Stop cancels the timer if it has not fired; it reports whether the
	// call prevented the callback from running.
	Stop() bool
}

// Scheduler is implemented by clocks that can arm fire-and-forget callbacks
// without materializing a cancellable Timer handle. The simulator implements
// it allocation-free; Schedule falls back to AfterFunc for any other clock.
type Scheduler interface {
	Schedule(d time.Duration, fn func())
}

// Schedule arms fn to run d from now with no way to cancel it — the
// hot-path form for the per-message delivery and refresh events that are
// never stopped, sparing the Timer interface allocation AfterFunc pays.
func Schedule(c Clock, d time.Duration, fn func()) {
	if s, ok := c.(Scheduler); ok {
		s.Schedule(d, fn)
		return
	}
	c.AfterFunc(d, fn)
}

// ArgScheduler is implemented by clocks that can arm a fire-and-forget
// callback taking one argument. With a package-level fn and a pooled
// pointer arg the whole schedule is allocation-free — no closure, no Timer
// box — which is what the transport uses for per-datagram delivery events.
type ArgScheduler interface {
	ScheduleArg(d time.Duration, fn func(any), arg any)
}

// ScheduleArg arms fn(arg) to run d from now with no cancellation handle,
// falling back to a closure for clocks without native support.
func ScheduleArg(c Clock, d time.Duration, fn func(any), arg any) {
	if s, ok := c.(ArgScheduler); ok {
		s.ScheduleArg(d, fn, arg)
		return
	}
	c.AfterFunc(d, func() { fn(arg) })
}

// ArgTimerScheduler is implemented by clocks that can arm a cancellable
// one-argument callback without boxing a closure or a Timer interface. The
// simulator implements it allocation-free: the handle is a value struct over
// the pooled event record, and with a package-level fn plus a pooled pointer
// arg the whole arm/fire/stop cycle allocates nothing — the form the
// per-RPC timeout path uses.
type ArgTimerScheduler interface {
	AfterFuncArg(d time.Duration, fn func(any), arg any) ArgTimer
}

// AfterFuncArg arms fn(arg) to run d from now and returns a cancellable
// handle, falling back to a closure over AfterFunc for clocks without native
// support.
func AfterFuncArg(c Clock, d time.Duration, fn func(any), arg any) ArgTimer {
	if s, ok := c.(ArgTimerScheduler); ok {
		return s.AfterFuncArg(d, fn, arg)
	}
	return ArgTimer{t: c.AfterFunc(d, func() { fn(arg) })}
}

// ArgTimer is the cancellable handle returned by AfterFuncArg: a value
// struct, so storing it in a caller's record costs no allocation. The zero
// value is inert (Stop reports false).
type ArgTimer struct {
	ev  *event
	gen uint64
	t   Timer // fallback clocks only
}

// Stop cancels the timer if it has not fired; it reports whether the call
// prevented the callback from running.
func (h ArgTimer) Stop() bool {
	if h.ev != nil {
		return timerHandle{ev: h.ev, gen: h.gen}.Stop()
	}
	if h.t != nil {
		return h.t.Stop()
	}
	return false
}

// realClock implements Clock with package time.
type realClock struct{}

// RealClock returns a Clock backed by the system clock.
func RealClock() Clock { return realClock{} }

func (realClock) Now() time.Time { return time.Now() } //lint:allow detrand realClock is the one sanctioned wall-clock bridge; sims inject Simulator instead

func (realClock) AfterFunc(d time.Duration, fn func()) Timer {
	return realTimer{t: time.AfterFunc(d, fn)} //lint:allow detrand realClock is the one sanctioned wall-clock bridge; sims inject Simulator instead
}

func (realClock) Schedule(d time.Duration, fn func()) {
	time.AfterFunc(d, fn) //lint:allow detrand realClock is the one sanctioned wall-clock bridge; sims inject Simulator instead
}

type realTimer struct{ t *time.Timer }

func (rt realTimer) Stop() bool { return rt.t.Stop() }

// Simulator is a deterministic discrete-event scheduler implementing Clock.
// Events scheduled for the same instant run in scheduling order. All methods
// are safe for concurrent use, but Run itself must be called from a single
// goroutine.
//
// The event loop is the inner loop of every live-scenario shard, so its hot
// path is tuned accordingly: the virtual clock and the pending-event counter
// are atomics (Now and Pending never take the queue lock), event records are
// recycled through a pool with generation-checked timer handles instead of
// allocating per schedule, and cancellation is a single compare-and-swap on
// the event's packed state word rather than a per-event mutex.
type Simulator struct {
	now  atomic.Int64 // virtual time, Unix nanoseconds
	live atomic.Int64 // queued events that have not run and are not cancelled

	mu    sync.Mutex // guards seq and queue
	seq   uint64
	queue eventHeap

	pool sync.Pool // recycled *event records
}

// NewSimulator returns a simulator starting at the Unix epoch plus one hour
// (so negative offsets in tests stay valid).
func NewSimulator() *Simulator {
	s := &Simulator{}
	s.now.Store(time.Unix(0, 0).Add(time.Hour).UnixNano())
	return s
}

// Now returns the current virtual time.
func (s *Simulator) Now() time.Time {
	return time.Unix(0, s.now.Load())
}

// AfterFunc schedules fn at now+d. Non-positive d runs fn at the current
// instant (still through the queue, preserving deterministic order).
func (s *Simulator) AfterFunc(d time.Duration, fn func()) Timer {
	ev, gen := s.schedule(d, fn, nil, nil)
	return timerHandle{ev: ev, gen: gen}
}

// Schedule arms fn at now+d with no cancellation handle: the same queue and
// ordering as AfterFunc without boxing a Timer per event — the form the
// per-message simnet delivery path uses.
func (s *Simulator) Schedule(d time.Duration, fn func()) {
	s.schedule(d, fn, nil, nil)
}

// ScheduleArg arms fn(arg) at now+d with no cancellation handle. With a
// package-level fn and a pooled pointer arg the call is allocation-free.
func (s *Simulator) ScheduleArg(d time.Duration, fn func(any), arg any) {
	s.schedule(d, nil, fn, arg)
}

// AfterFuncArg arms fn(arg) at now+d and returns a cancellable value handle
// over the pooled event record — the allocation-free cancellable form.
func (s *Simulator) AfterFuncArg(d time.Duration, fn func(any), arg any) ArgTimer {
	ev, gen := s.schedule(d, nil, fn, arg)
	return ArgTimer{ev: ev, gen: gen}
}

func (s *Simulator) schedule(d time.Duration, fn func(), argFn func(any), arg any) (*event, uint64) {
	if d < 0 {
		d = 0
	}
	var ev *event
	if v := s.pool.Get(); v != nil {
		ev = v.(*event)
	} else {
		ev = &event{sim: s}
	}
	// Re-arm under the generation the release bumped: handles to the
	// record's previous life see a generation mismatch and become no-ops.
	gen := ev.state.Load() >> stateGenShift
	ev.at = s.now.Load() + int64(d)
	ev.fn = fn
	ev.argFn = argFn
	ev.arg = arg
	ev.state.Store(gen<<stateGenShift | statusPending)
	s.live.Add(1)
	s.mu.Lock()
	ev.seq = s.seq
	s.seq++
	s.queue.push(ev)
	s.mu.Unlock()
	return ev, gen
}

// Step executes the next pending event, advancing the clock to its
// timestamp. It reports whether an event was executed.
func (s *Simulator) Step() bool {
	return s.step(1<<63 - 1)
}

// step pops and runs the earliest pending event with at <= bound, reporting
// whether one ran.
func (s *Simulator) step(bound int64) bool {
	s.mu.Lock()
	ev := s.popRunnable(bound)
	if ev == nil {
		s.mu.Unlock()
		return false
	}
	if ev.at > s.now.Load() {
		s.now.Store(ev.at)
	}
	s.mu.Unlock()
	fn, argFn, arg := ev.fn, ev.argFn, ev.arg
	// Release before dispatch: the record is out of the heap and marked done,
	// so fn (and any concurrent scheduler) may reuse it immediately; stale
	// timer handles fail their generation check.
	s.release(ev)
	if fn != nil {
		fn()
	} else {
		argFn(arg)
	}
	return true
}

// Run executes events until the queue is empty.
func (s *Simulator) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to the deadline.
func (s *Simulator) RunUntil(deadline time.Time) {
	bound := deadline.UnixNano()
	for s.step(bound) {
	}
	// No runnable event at or before the deadline is left; advance the clock.
	s.mu.Lock()
	if s.now.Load() < bound {
		s.now.Store(bound)
	}
	s.mu.Unlock()
}

// RunFor advances the simulation by d.
func (s *Simulator) RunFor(d time.Duration) {
	s.RunUntil(s.Now().Add(d))
}

// Pending returns the number of queued events (cancelled ones excluded) in
// O(1): the counter moves on schedule, cancel and dispatch, so lazily
// deleted cancelled records still in the heap never distort it.
func (s *Simulator) Pending() int {
	return int(s.live.Load())
}

// NextAt returns the timestamp of the earliest pending event, discarding
// lazily cancelled heap heads along the way; ok is false when nothing is
// pending. It is the lookahead probe of the Lockstep epoch barrier: the
// barrier sizes each epoch from the earliest event across all member
// simulators. A concurrent Stop between the peek and the epoch merely
// shrinks the epoch — never past a runnable event — so the probe stays
// conservative.
func (s *Simulator) NextAt() (at time.Time, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		ev := s.queue.peek()
		if ev == nil {
			return time.Time{}, false
		}
		if ev.state.Load()&stateStatusMask == statusPending {
			return time.Unix(0, ev.at), true
		}
		s.queue.pop()
		s.release(ev)
	}
}

// release returns a finished (run or cancelled) event record to the pool,
// bumping its generation so any still-held timer handle turns inert.
func (s *Simulator) release(ev *event) {
	gen := ev.state.Load() >> stateGenShift
	ev.fn = nil // do not retain the callback or its argument while pooled
	ev.argFn = nil
	ev.arg = nil
	ev.state.Store((gen + 1) << stateGenShift) // next life, pending
	s.pool.Put(ev)
}

// Event state is a packed word: the low two bits hold the status, the rest a
// generation counter bumped each time the record is recycled. Cancellation
// and dispatch race through compare-and-swap on this word alone.
const (
	statusPending   = 0
	statusCancelled = 1
	statusDone      = 2
	stateStatusMask = 3
	stateGenShift   = 2
)

// event is a pooled scheduled callback record. Exactly one of fn and argFn
// is set: argFn events carry their argument in the record, so hot callers
// with a package-level argFn schedule without allocating a closure.
type event struct {
	at    int64 // Unix nanoseconds
	seq   uint64
	fn    func()
	argFn func(any)
	arg   any
	sim   *Simulator
	state atomic.Uint64
}

// timerHandle is the Timer for one generation of a pooled event record.
type timerHandle struct {
	ev  *event
	gen uint64
}

// Stop cancels the event; it reports true if the call prevented the callback
// from running. A handle whose record was dispatched and recycled observes a
// generation mismatch and reports false without touching the new occupant.
func (h timerHandle) Stop() bool {
	for {
		st := h.ev.state.Load()
		if st>>stateGenShift != h.gen || st&stateStatusMask != statusPending {
			return false
		}
		if h.ev.state.CompareAndSwap(st, h.gen<<stateGenShift|statusCancelled) {
			h.ev.sim.live.Add(-1)
			return true
		}
	}
}

// popRunnable pops the earliest pending event with at <= bound, discarding
// lazily cancelled records along the way. The caller must hold s.mu.
func (s *Simulator) popRunnable(bound int64) *event {
	for {
		ev := s.queue.peek()
		if ev == nil || ev.at > bound {
			return nil
		}
		s.queue.pop()
		st := ev.state.Load()
		if st&stateStatusMask == statusPending &&
			ev.state.CompareAndSwap(st, st&^uint64(stateStatusMask)|statusDone) {
			s.live.Add(-1)
			return ev
		}
		// Lost the race to a concurrent Stop (which already decremented the
		// live counter): drop the cancelled record and keep looking.
		s.release(ev)
	}
}

// eventHeap is a binary min-heap ordered by (at, seq).
type eventHeap struct {
	items []*event
}

func (h *eventHeap) less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.at == b.at {
		return a.seq < b.seq
	}
	return a.at < b.at
}

func (h *eventHeap) peek() *event {
	if len(h.items) == 0 {
		return nil
	}
	return h.items[0]
}

func (h *eventHeap) push(ev *event) {
	h.items = append(h.items, ev)
	h.up(len(h.items) - 1)
}

func (h *eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *eventHeap) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
}

func (h *eventHeap) pop() *event {
	if len(h.items) == 0 {
		return nil
	}
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items[last] = nil
	h.items = h.items[:last]
	if last > 0 {
		h.down(0)
	}
	return top
}
