// Package sim provides the discrete-event simulation engine the in-process
// DHT experiments run on: a virtual clock with a hierarchical timer wheel,
// deterministic ordering, and a Clock abstraction that lets the same DHT and
// protocol code run on either simulated or wall-clock time.
package sim

import (
	"math/bits"
	"slices"
	"sync"
	"sync/atomic"
	"time"
)

// Clock abstracts time for components that must run under both the
// discrete-event simulator and real time (the UDP deployment).
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// AfterFunc schedules fn to run d from now and returns a cancellable
	// timer. fn runs on the clock's dispatch context: the simulator's Run
	// loop, or a timer goroutine for the real clock.
	AfterFunc(d time.Duration, fn func()) Timer
}

// Timer is a cancellable scheduled callback.
type Timer interface {
	// Stop cancels the timer if it has not fired; it reports whether the
	// call prevented the callback from running.
	Stop() bool
}

// Scheduler is implemented by clocks that can arm fire-and-forget callbacks
// without materializing a cancellable Timer handle. The simulator implements
// it allocation-free; Schedule falls back to AfterFunc for any other clock.
type Scheduler interface {
	Schedule(d time.Duration, fn func())
}

// Schedule arms fn to run d from now with no way to cancel it — the
// hot-path form for the per-message delivery and refresh events that are
// never stopped, sparing the Timer interface allocation AfterFunc pays.
func Schedule(c Clock, d time.Duration, fn func()) {
	if s, ok := c.(Scheduler); ok {
		s.Schedule(d, fn)
		return
	}
	c.AfterFunc(d, fn)
}

// ArgScheduler is implemented by clocks that can arm a fire-and-forget
// callback taking one argument. With a package-level fn and a pooled
// pointer arg the whole schedule is allocation-free — no closure, no Timer
// box — which is what the transport uses for per-datagram delivery events.
type ArgScheduler interface {
	ScheduleArg(d time.Duration, fn func(any), arg any)
}

// ScheduleArg arms fn(arg) to run d from now with no cancellation handle,
// falling back to a closure for clocks without native support.
func ScheduleArg(c Clock, d time.Duration, fn func(any), arg any) {
	if s, ok := c.(ArgScheduler); ok {
		s.ScheduleArg(d, fn, arg)
		return
	}
	c.AfterFunc(d, func() { fn(arg) })
}

// ArgTimerScheduler is implemented by clocks that can arm a cancellable
// one-argument callback without boxing a closure or a Timer interface. The
// simulator implements it allocation-free: the handle is a value struct over
// the pooled event record, and with a package-level fn plus a pooled pointer
// arg the whole arm/fire/stop cycle allocates nothing — the form the
// per-RPC timeout path uses.
type ArgTimerScheduler interface {
	AfterFuncArg(d time.Duration, fn func(any), arg any) ArgTimer
}

// AfterFuncArg arms fn(arg) to run d from now and returns a cancellable
// handle, falling back to a closure over AfterFunc for clocks without native
// support.
func AfterFuncArg(c Clock, d time.Duration, fn func(any), arg any) ArgTimer {
	if s, ok := c.(ArgTimerScheduler); ok {
		return s.AfterFuncArg(d, fn, arg)
	}
	return ArgTimer{t: c.AfterFunc(d, func() { fn(arg) })}
}

// ArgTimer is the cancellable handle returned by AfterFuncArg: a value
// struct, so storing it in a caller's record costs no allocation. The zero
// value is inert (Stop reports false).
type ArgTimer struct {
	ev  *event
	gen uint64
	t   Timer // fallback clocks only
}

// Stop cancels the timer if it has not fired; it reports whether the call
// prevented the callback from running.
func (h ArgTimer) Stop() bool {
	if h.ev != nil {
		return timerHandle{ev: h.ev, gen: h.gen}.Stop()
	}
	if h.t != nil {
		return h.t.Stop()
	}
	return false
}

// realClock implements Clock with package time.
type realClock struct{}

// RealClock returns a Clock backed by the system clock.
func RealClock() Clock { return realClock{} }

func (realClock) Now() time.Time { return time.Now() } //lint:allow detrand realClock is the one sanctioned wall-clock bridge; sims inject Simulator instead

func (realClock) AfterFunc(d time.Duration, fn func()) Timer {
	return realTimer{t: time.AfterFunc(d, fn)} //lint:allow detrand realClock is the one sanctioned wall-clock bridge; sims inject Simulator instead
}

func (realClock) Schedule(d time.Duration, fn func()) {
	time.AfterFunc(d, fn) //lint:allow detrand realClock is the one sanctioned wall-clock bridge; sims inject Simulator instead
}

type realTimer struct{ t *time.Timer }

func (rt realTimer) Stop() bool { return rt.t.Stop() }

// Simulator is a deterministic discrete-event scheduler implementing Clock.
// Events scheduled for the same instant run in scheduling order. All methods
// are safe for concurrent use, but Run itself must be called from a single
// goroutine.
//
// The event loop is the inner loop of every live-scenario shard, so its hot
// path is tuned accordingly: the virtual clock and the pending-event counter
// are atomics (Now and Pending never take the queue lock), event records are
// recycled through a pool with generation-checked timer handles instead of
// allocating per schedule, and cancellation is a single compare-and-swap on
// the event's packed state word rather than a per-event mutex.
//
// The pending queue is a hierarchical timer wheel (Varghese–Lauck), not a
// binary heap: schedule and cancel are O(1) amortized regardless of how many
// far-future timers are parked (per-node refresh loops, hold timers), where
// a heap charges every near-horizon RPC timeout and delivery event O(log n)
// against the whole standing population. Events that share a wheel tick are
// sorted by (at, seq) once when their slot is drained, so dispatch order is
// the exact (at, seq) total order the heap produced.
type Simulator struct {
	now  atomic.Int64 // virtual time, Unix nanoseconds
	live atomic.Int64 // queued events that have not run and are not cancelled

	mu    sync.Mutex // guards seq, wheel and the NextAt cache
	seq   uint64
	wheel timerWheel

	// NextAt cache: the earliest pending event as of the last full scan.
	// Self-invalidating — dispatch, cancellation and recycling all change the
	// event's packed state word, so cacheValid() detects staleness without
	// any bookkeeping on those paths; schedule keeps the cache exact by
	// min-updating it. This is what keeps the Lockstep barrier's per-epoch
	// probe O(1) on idle shards.
	cachedEv  *event
	cachedGen uint64

	// Recycled *event records, guarded by their own leaf mutex. A
	// per-simulator freelist (rather than a sync.Pool) keeps the records
	// across garbage collections: on multi-gigabyte runs pool eviction made
	// every post-GC schedule allocate, feeding the next collection.
	freeMu sync.Mutex
	free   []*event
}

// NewSimulator returns a simulator starting at the Unix epoch plus one hour
// (so negative offsets in tests stay valid).
func NewSimulator() *Simulator {
	s := &Simulator{}
	start := time.Unix(0, 0).Add(time.Hour).UnixNano()
	s.now.Store(start)
	s.wheel.wtime = start >> wheelShift
	return s
}

// Now returns the current virtual time.
func (s *Simulator) Now() time.Time {
	return time.Unix(0, s.now.Load())
}

// AfterFunc schedules fn at now+d. Non-positive d runs fn at the current
// instant (still through the queue, preserving deterministic order).
func (s *Simulator) AfterFunc(d time.Duration, fn func()) Timer {
	ev, gen := s.schedule(d, fn, nil, nil)
	return timerHandle{ev: ev, gen: gen}
}

// Schedule arms fn at now+d with no cancellation handle: the same queue and
// ordering as AfterFunc without boxing a Timer per event — the form the
// per-message simnet delivery path uses.
func (s *Simulator) Schedule(d time.Duration, fn func()) {
	s.schedule(d, fn, nil, nil)
}

// ScheduleArg arms fn(arg) at now+d with no cancellation handle. With a
// package-level fn and a pooled pointer arg the call is allocation-free.
func (s *Simulator) ScheduleArg(d time.Duration, fn func(any), arg any) {
	s.schedule(d, nil, fn, arg)
}

// AfterFuncArg arms fn(arg) at now+d and returns a cancellable value handle
// over the pooled event record — the allocation-free cancellable form.
func (s *Simulator) AfterFuncArg(d time.Duration, fn func(any), arg any) ArgTimer {
	ev, gen := s.schedule(d, nil, fn, arg)
	return ArgTimer{ev: ev, gen: gen}
}

func (s *Simulator) schedule(d time.Duration, fn func(), argFn func(any), arg any) (*event, uint64) {
	if d < 0 {
		d = 0
	}
	var ev *event
	s.freeMu.Lock()
	if k := len(s.free); k > 0 {
		ev = s.free[k-1]
		s.free[k-1] = nil
		s.free = s.free[:k-1]
	}
	s.freeMu.Unlock()
	if ev == nil {
		ev = &event{sim: s}
	}
	// Re-arm under the generation the release bumped: handles to the
	// record's previous life see a generation mismatch and become no-ops.
	gen := ev.state.Load() >> stateGenShift
	ev.at = s.now.Load() + int64(d)
	ev.fn = fn
	ev.argFn = argFn
	ev.arg = arg
	ev.state.Store(gen<<stateGenShift | statusPending)
	s.live.Add(1)
	s.mu.Lock()
	ev.seq = s.seq
	s.seq++
	s.wheel.insert(ev)
	// Keep a valid NextAt cache exact: a new event can only lower the
	// minimum. A stale cache stays stale (the new event need not be the
	// minimum of the whole wheel) and the next NextAt recomputes.
	if s.cachedAt() != 1<<63-1 && ev.at < s.cachedEv.at {
		s.cachedEv, s.cachedGen = ev, gen
	}
	s.mu.Unlock()
	return ev, gen
}

// cachedAt returns the cached earliest pending timestamp, or maxInt64 when
// the cache is stale (its event dispatched, cancelled or recycled — all of
// which move the packed state word off the cached generation's pending
// value). Callers hold s.mu.
func (s *Simulator) cachedAt() int64 {
	if s.cachedEv != nil && s.cachedEv.state.Load() == s.cachedGen<<stateGenShift|statusPending {
		return s.cachedEv.at
	}
	return 1<<63 - 1
}

// Step executes the next pending event, advancing the clock to its
// timestamp. It reports whether an event was executed.
func (s *Simulator) Step() bool {
	return s.step(1<<63 - 1)
}

// step pops and runs the earliest pending event with at <= bound, reporting
// whether one ran.
func (s *Simulator) step(bound int64) bool {
	s.mu.Lock()
	ev := s.popRunnable(bound)
	if ev == nil {
		s.mu.Unlock()
		return false
	}
	if ev.at > s.now.Load() {
		s.now.Store(ev.at)
	}
	s.mu.Unlock()
	fn, argFn, arg := ev.fn, ev.argFn, ev.arg
	// Release before dispatch: the record is out of the wheel and marked done,
	// so fn (and any concurrent scheduler) may reuse it immediately; stale
	// timer handles fail their generation check.
	s.release(ev)
	if fn != nil {
		fn()
	} else {
		argFn(arg)
	}
	return true
}

// Run executes events until the queue is empty.
func (s *Simulator) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to the deadline.
func (s *Simulator) RunUntil(deadline time.Time) {
	bound := deadline.UnixNano()
	for s.step(bound) {
	}
	// No runnable event at or before the deadline is left; advance the clock.
	s.mu.Lock()
	if s.now.Load() < bound {
		s.now.Store(bound)
	}
	s.mu.Unlock()
}

// RunFor advances the simulation by d.
func (s *Simulator) RunFor(d time.Duration) {
	s.RunUntil(s.Now().Add(d))
}

// Pending returns the number of queued events (cancelled ones excluded) in
// O(1): the counter moves on schedule, cancel and dispatch, so lazily
// deleted cancelled records still in the wheel never distort it.
func (s *Simulator) Pending() int {
	return int(s.live.Load())
}

// NextAt returns the timestamp of the earliest pending event, purging lazily
// cancelled records it scans past; ok is false when nothing is pending. It
// is the lookahead probe of the Lockstep epoch barrier: the barrier sizes
// each epoch from the earliest event across all member simulators. The
// result is cached on the event itself (see cachedAt), so back-to-back
// barrier probes of an idle shard cost one atomic load; a concurrent Stop
// between the peek and the epoch merely shrinks the epoch — never past a
// runnable event — and the purge on the next recompute keeps a stale
// cancelled minimum from pinning the epoch size, so the probe stays
// conservative and live.
func (s *Simulator) NextAt() (at time.Time, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t := s.cachedAt(); t != 1<<63-1 {
		return time.Unix(0, t), true
	}
	ev := s.wheel.minPending(s)
	if ev == nil {
		s.cachedEv = nil
		return time.Time{}, false
	}
	s.cachedEv, s.cachedGen = ev, ev.state.Load()>>stateGenShift
	return time.Unix(0, ev.at), true
}

// release returns a finished (run or cancelled) event record to the pool,
// bumping its generation so any still-held timer handle turns inert.
func (s *Simulator) release(ev *event) {
	gen := ev.state.Load() >> stateGenShift
	ev.fn = nil // do not retain the callback or its argument while pooled
	ev.argFn = nil
	ev.arg = nil
	ev.state.Store((gen + 1) << stateGenShift) // next life, pending
	s.freeMu.Lock()
	s.free = append(s.free, ev)
	s.freeMu.Unlock()
}

// Event state is a packed word: the low two bits hold the status, the rest a
// generation counter bumped each time the record is recycled. Cancellation
// and dispatch race through compare-and-swap on this word alone.
const (
	statusPending   = 0
	statusCancelled = 1
	statusDone      = 2
	stateStatusMask = 3
	stateGenShift   = 2
)

// event is a pooled scheduled callback record. Exactly one of fn and argFn
// is set: argFn events carry their argument in the record, so hot callers
// with a package-level argFn schedule without allocating a closure.
type event struct {
	at    int64 // Unix nanoseconds
	seq   uint64
	fn    func()
	argFn func(any)
	arg   any
	sim   *Simulator
	state atomic.Uint64
}

// cmpEvent is the dispatch total order: (at, seq). seq is unique per
// simulator, so the order is strict.
func cmpEvent(a, b *event) int {
	switch {
	case a.at < b.at:
		return -1
	case a.at > b.at:
		return 1
	case a.seq < b.seq:
		return -1
	case a.seq > b.seq:
		return 1
	}
	return 0
}

// timerHandle is the Timer for one generation of a pooled event record.
type timerHandle struct {
	ev  *event
	gen uint64
}

// Stop cancels the event; it reports true if the call prevented the callback
// from running. A handle whose record was dispatched and recycled observes a
// generation mismatch and reports false without touching the new occupant.
// Cancellation is lazy: the record stays in its wheel slot and is discarded
// when a drain or scan reaches it.
func (h timerHandle) Stop() bool {
	for {
		st := h.ev.state.Load()
		if st>>stateGenShift != h.gen || st&stateStatusMask != statusPending {
			return false
		}
		if h.ev.state.CompareAndSwap(st, h.gen<<stateGenShift|statusCancelled) {
			h.ev.sim.live.Add(-1)
			return true
		}
	}
}

// popRunnable pops the earliest pending event with at <= bound, discarding
// lazily cancelled records along the way. The caller must hold s.mu.
func (s *Simulator) popRunnable(bound int64) *event {
	w := &s.wheel
	for {
		// Fast path: the current-tick run queue, already in (at, seq) order.
		for w.runIdx < len(w.runQ) {
			ev := w.runQ[w.runIdx]
			if ev.at > bound {
				return nil
			}
			w.runQ[w.runIdx] = nil
			w.runIdx++
			st := ev.state.Load()
			if st&stateStatusMask == statusPending &&
				ev.state.CompareAndSwap(st, st&^uint64(stateStatusMask)|statusDone) {
				s.live.Add(-1)
				return ev
			}
			// Lost the race to a concurrent Stop (which already decremented the
			// live counter): drop the cancelled record and keep looking.
			s.release(ev)
		}
		w.runQ = w.runQ[:0]
		w.runIdx = 0
		if !w.advance(bound) {
			return nil
		}
	}
}

// Timer wheel geometry. A tick is 2^wheelShift nanoseconds (~1.05ms — a
// fifth of the default simnet latency, so delivery events spread over a few
// slots). Four levels of 256 slots cover relative horizons of ~268ms, ~68.7s,
// ~4.9h and ~52 days from the wheel's current time; anything farther parks in
// an unsorted overflow list and is re-binned when the horizon reaches it (no
// simulated experiment runs close to that long, so the overflow is a
// correctness backstop, not a hot path).
const (
	wheelShift  = 20
	wheelBits   = 8
	wheelSlots  = 1 << wheelBits
	wheelMask   = wheelSlots - 1
	wheelLevels = 4
)

// timerWheel is the hierarchical pending-event structure. All operations run
// under the owning Simulator's mu.
//
// Invariants: every queued event's tick (at >> wheelShift) is >= wtime
// (events scheduled into the past are clamped into the run queue); runQ
// holds the events of tick wtime sorted by (at, seq) with runQ[:runIdx]
// consumed; a level-L slot holds events whose tick was wtime+[2^(8L),
// 2^(8(L+1))) away when inserted, and advance never moves wtime past the
// cascade boundary of an occupied slot, so no slot is ever stranded behind
// the wheel's current time.
type timerWheel struct {
	wtime  int64 // current wheel time, in ticks
	runQ   []*event
	runIdx int

	slots [wheelLevels][wheelSlots][]*event
	occ   [wheelLevels][wheelSlots / 64]uint64
	// slotMin caches a lower bound on each occupied slot's earliest pending
	// timestamp: exact after inserts (O(1) min-update), stale-low after lazy
	// cancellations, meaningless while the occupancy bit is clear. minPending
	// consults these instead of scanning buckets, verifying only the winning
	// slot — without this, every barrier probe would rescan the thousands of
	// parked far-horizon timers in the first level-2/3 buckets.
	slotMin [wheelLevels][wheelSlots]int64

	overflow []*event
	// overflowMin is a lower bound on the overflow entries' ticks (exact on
	// insert, stale-early after cancellations), so advance knows when a
	// re-bin could matter without scanning.
	overflowMin int64
}

// insert files ev by its distance from the wheel's current time.
func (w *timerWheel) insert(ev *event) {
	tick := ev.at >> wheelShift
	r := tick - w.wtime
	switch {
	case r <= 0:
		// Current tick (or a concurrent schedule racing a bound advance):
		// keep the run queue sorted so dispatch order stays (at, seq).
		w.insertRun(ev)
	case r < 1<<wheelBits:
		w.put(0, int(tick&wheelMask), ev)
	case r < 1<<(2*wheelBits):
		w.put(1, int((tick>>wheelBits)&wheelMask), ev)
	case r < 1<<(3*wheelBits):
		w.put(2, int((tick>>(2*wheelBits))&wheelMask), ev)
	case r < 1<<(4*wheelBits):
		w.put(3, int((tick>>(3*wheelBits))&wheelMask), ev)
	default:
		if len(w.overflow) == 0 || tick < w.overflowMin {
			w.overflowMin = tick
		}
		w.overflow = append(w.overflow, ev)
	}
}

func (w *timerWheel) put(level, slot int, ev *event) {
	if w.occ[level][slot>>6]&(1<<(slot&63)) == 0 {
		w.occ[level][slot>>6] |= 1 << (slot & 63)
		w.slotMin[level][slot] = ev.at
	} else if ev.at < w.slotMin[level][slot] {
		w.slotMin[level][slot] = ev.at
	}
	w.slots[level][slot] = append(w.slots[level][slot], ev)
}

// insertRun places ev into the live run queue at its (at, seq) position
// among the not-yet-consumed entries — the mid-drain schedule path, so an
// event scheduled at the current instant from a running callback dispatches
// in the same pass, in order, exactly like the heap did.
func (w *timerWheel) insertRun(ev *event) {
	i, _ := slices.BinarySearchFunc(w.runQ[w.runIdx:], ev, cmpEvent)
	i += w.runIdx
	w.runQ = append(w.runQ, nil)
	copy(w.runQ[i+1:], w.runQ[i:])
	w.runQ[i] = ev
}

// nextOcc returns the cyclic distance (1..wheelSlots) from slot `from` to
// the next occupied slot at the given level, or 0 when the level is empty.
// Distance wheelSlots means the only occupied slot is `from` itself, a full
// lap away.
func (w *timerWheel) nextOcc(level, from int) int {
	occ := &w.occ[level]
	// Bits strictly after `from` in its word, then the following words, then
	// wrap around up to and including `from`.
	word, bit := from>>6, from&63
	if v := occ[word] &^ (1<<(bit+1) - 1); v != 0 {
		return bits.TrailingZeros64(v) + word<<6 - from
	}
	for i := 1; i <= wheelSlots/64; i++ {
		j := (word + i) % (wheelSlots / 64)
		v := occ[j]
		if i == wheelSlots/64 {
			v &= 1<<(bit+1) - 1 // final partial word: slots up to `from`
		}
		if v != 0 {
			d := bits.TrailingZeros64(v) + j<<6 - from
			if d <= 0 {
				d += wheelSlots
			}
			return d
		}
	}
	return 0
}

// advance moves the wheel forward to the next occupied tick at or before
// bound (nanoseconds), draining that tick's slot into the run queue in
// (at, seq) order, cascading higher-level slots whose windows open along the
// way. It reports whether the run queue gained entries; false means nothing
// is pending at or before the bound (the wheel time then rests at the bound
// tick, so later inserts keep their level maths tight).
func (w *timerWheel) advance(bound int64) bool {
	boundTick := bound >> wheelShift
	for {
		jump := int64(1<<63 - 1)
		// Earliest occupied level-0 slot: its tick is wtime + distance.
		if d := w.nextOcc(0, int(w.wtime&wheelMask)); d != 0 && d < wheelSlots {
			jump = w.wtime + int64(d)
		}
		// Earliest cascade boundary per higher level: the d-th crossing of a
		// 2^(8L)-tick block opens slot cur+d, so an occupied slot at cyclic
		// distance d cascades at block_start(wtime) + d blocks.
		for level := 1; level < wheelLevels; level++ {
			shift := uint(level * wheelBits)
			cur := int((w.wtime >> shift) & wheelMask)
			if d := w.nextOcc(level, cur); d != 0 {
				t := (w.wtime>>shift + int64(d)) << shift
				if t < jump {
					jump = t
				}
			}
		}
		if len(w.overflow) > 0 {
			// The overflow's nearest entry enters the top level's horizon at
			// this tick; re-binning any later would strand it.
			if t := w.overflowMin - (1<<(wheelLevels*wheelBits) - 1); t > w.wtime && t < jump {
				jump = t
			} else if t <= w.wtime {
				jump = w.wtime // re-bin immediately
			}
		}
		if jump > boundTick {
			if boundTick > w.wtime {
				w.wtime = boundTick
			}
			return false
		}
		w.wtime = jump
		if len(w.overflow) > 0 && w.overflowMin-(1<<(wheelLevels*wheelBits)-1) <= w.wtime {
			w.rebinOverflow()
		}
		// Cascade outside-in: a top-level slot re-bins into the levels below,
		// which may include the lower-level slot that opens at this same tick.
		for level := wheelLevels - 1; level >= 1; level-- {
			shift := uint(level * wheelBits)
			if jump&(1<<shift-1) != 0 {
				continue
			}
			slot := int((jump >> shift) & wheelMask)
			w.drainSlot(level, slot)
		}
		// The level-0 slot of the new current tick becomes the run queue.
		w.drainSlot(0, int(w.wtime&wheelMask))
		if len(w.runQ) > 0 {
			slices.SortFunc(w.runQ, cmpEvent)
			return true
		}
	}
}

// drainSlot empties one slot: level 0 into the run queue (all entries share
// the current tick), higher levels re-binned by their now-smaller distance.
func (w *timerWheel) drainSlot(level, slot int) {
	evs := w.slots[level][slot]
	if len(evs) == 0 {
		return
	}
	w.occ[level][slot>>6] &^= 1 << (slot & 63)
	if level == 0 {
		if len(w.runQ) == 0 {
			// Steal the slot's backing array for the run queue and donate the
			// (consumed, capacity-bearing) old run queue to the slot, so the
			// steady state recycles two arrays instead of growing either.
			w.runQ, w.slots[level][slot] = evs, w.runQ[:0]
			return
		}
		w.runQ = append(w.runQ, evs...)
		w.slots[level][slot] = evs[:0]
		return
	}
	w.slots[level][slot] = evs[:0]
	for i, ev := range evs {
		w.insert(ev)
		evs[i] = nil
	}
}

// rebinOverflow re-files every overflow entry; those still beyond the top
// horizon return to the overflow with an exact new minimum.
func (w *timerWheel) rebinOverflow() {
	// Detach the list before re-inserting: entries still beyond the horizon
	// re-append to w.overflow, which must not alias the array being walked.
	evs := w.overflow
	w.overflow = nil
	w.overflowMin = 1<<63 - 1
	for _, ev := range evs {
		w.insert(ev)
	}
}

// minPending returns the earliest pending event without advancing the wheel
// — the pure peek behind NextAt. Candidates must be compared across levels:
// after the wheel time drifts within a block, an un-cascaded higher-level
// slot's window can overlap level 0's, so the earliest occupied slot of
// every level is consulted (within one level the earliest-cascading slot
// provably holds that level's minimum — slots' tick windows are disjoint
// blocks in cascade order). Selection runs over the cached slotMin bounds;
// only the winning slot is scanned, which both verifies the bound (a lazily
// cancelled minimum may have left it stale-low — left uncorrected it would
// pin the epoch barrier's probe early forever, the livelock this loop
// guards against) and purges the cancelled records it finds. A slot proven
// exact that wins re-selection is the answer.
func (w *timerWheel) minPending(sim *Simulator) *event {
	// Run-queue head first: its tick is wtime, below every slotted tick, so
	// a pending head short-circuits the whole selection.
	for w.runIdx < len(w.runQ) {
		ev := w.runQ[w.runIdx]
		if ev.state.Load()&stateStatusMask == statusPending {
			return ev
		}
		w.runQ[w.runIdx] = nil
		w.runIdx++
		sim.release(ev)
	}
	const inf = int64(1<<63 - 1)
	exactLevel, exactSlot := -1, -1
	exactOverflow := false
	var exactEv *event
	for {
		bestAt := inf
		bestLevel, bestSlot := -1, -1
		if d := w.nextOcc(0, int(w.wtime&wheelMask)); d != 0 && d < wheelSlots {
			slot := int((w.wtime + int64(d)) & wheelMask)
			bestAt, bestLevel, bestSlot = w.slotMin[0][slot], 0, slot
		}
		for level := 1; level < wheelLevels; level++ {
			cur := int((w.wtime >> uint(level*wheelBits)) & wheelMask)
			if d := w.nextOcc(level, cur); d != 0 {
				slot := (cur + d) & wheelMask
				if m := w.slotMin[level][slot]; m < bestAt {
					bestAt, bestLevel, bestSlot = m, level, slot
				}
			}
		}
		if len(w.overflow) > 0 && w.overflowMin<<wheelShift < bestAt {
			if exactOverflow {
				return exactEv
			}
			exactEv = w.scanOverflow(sim)
			exactOverflow, exactLevel = true, -1
			continue
		}
		if bestLevel == -1 {
			return nil
		}
		if bestLevel == exactLevel && bestSlot == exactSlot {
			return exactEv
		}
		exactEv = w.scanSlot(sim, bestLevel, bestSlot)
		exactLevel, exactSlot, exactOverflow = bestLevel, bestSlot, false
	}
}

// scanSlot computes one slot's exact minimum pending event, swap-removing
// cancelled records (slot order is insertion order, rebuilt at drain time,
// so removal order is irrelevant), refreshing slotMin and clearing the
// occupancy bit if the slot empties.
func (w *timerWheel) scanSlot(sim *Simulator, level, slot int) *event {
	evs := w.slots[level][slot]
	var best *event
	for i := 0; i < len(evs); {
		ev := evs[i]
		if ev.state.Load()&stateStatusMask != statusPending {
			last := len(evs) - 1
			evs[i] = evs[last]
			evs[last] = nil
			evs = evs[:last]
			sim.release(ev)
			continue
		}
		if best == nil || cmpEvent(ev, best) < 0 {
			best = ev
		}
		i++
	}
	w.slots[level][slot] = evs
	if best == nil {
		w.occ[level][slot>>6] &^= 1 << (slot & 63)
	} else {
		w.slotMin[level][slot] = best.at
	}
	return best
}

// scanOverflow computes the overflow list's exact minimum pending event,
// purging cancelled records and tightening overflowMin.
func (w *timerWheel) scanOverflow(sim *Simulator) *event {
	var best *event
	for i := 0; i < len(w.overflow); {
		ev := w.overflow[i]
		if ev.state.Load()&stateStatusMask != statusPending {
			last := len(w.overflow) - 1
			w.overflow[i] = w.overflow[last]
			w.overflow[last] = nil
			w.overflow = w.overflow[:last]
			sim.release(ev)
			continue
		}
		if best == nil || cmpEvent(ev, best) < 0 {
			best = ev
		}
		i++
	}
	if best != nil {
		w.overflowMin = best.at >> wheelShift
	}
	return best
}
