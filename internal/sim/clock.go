// Package sim provides the discrete-event simulation engine the in-process
// DHT experiments run on: a virtual clock with an event heap, deterministic
// ordering, and a Clock abstraction that lets the same DHT and protocol code
// run on either simulated or wall-clock time.
package sim

import (
	"sync"
	"time"
)

// Clock abstracts time for components that must run under both the
// discrete-event simulator and real time (the UDP deployment).
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// AfterFunc schedules fn to run d from now and returns a cancellable
	// timer. fn runs on the clock's dispatch context: the simulator's Run
	// loop, or a timer goroutine for the real clock.
	AfterFunc(d time.Duration, fn func()) Timer
}

// Timer is a cancellable scheduled callback.
type Timer interface {
	// Stop cancels the timer if it has not fired; it reports whether the
	// call prevented the callback from running.
	Stop() bool
}

// realClock implements Clock with package time.
type realClock struct{}

// RealClock returns a Clock backed by the system clock.
func RealClock() Clock { return realClock{} }

func (realClock) Now() time.Time { return time.Now() }

func (realClock) AfterFunc(d time.Duration, fn func()) Timer {
	return realTimer{t: time.AfterFunc(d, fn)}
}

type realTimer struct{ t *time.Timer }

func (rt realTimer) Stop() bool { return rt.t.Stop() }

// Simulator is a deterministic discrete-event scheduler implementing Clock.
// Events scheduled for the same instant run in scheduling order. All methods
// are safe for concurrent use, but Run itself must be called from a single
// goroutine.
type Simulator struct {
	mu    sync.Mutex
	now   time.Time
	seq   uint64
	queue eventHeap
}

// NewSimulator returns a simulator starting at the Unix epoch plus one hour
// (so negative offsets in tests stay valid).
func NewSimulator() *Simulator {
	return &Simulator{now: time.Unix(0, 0).Add(time.Hour)}
}

// Now returns the current virtual time.
func (s *Simulator) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// AfterFunc schedules fn at now+d. Non-positive d runs fn at the current
// instant (still through the queue, preserving deterministic order).
func (s *Simulator) AfterFunc(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ev := &event{at: s.now.Add(d), seq: s.seq, fn: fn}
	s.seq++
	s.queue.push(ev)
	return ev
}

// Step executes the next pending event, advancing the clock to its
// timestamp. It reports whether an event was executed.
func (s *Simulator) Step() bool {
	s.mu.Lock()
	ev := s.queue.popRunnable()
	if ev == nil {
		s.mu.Unlock()
		return false
	}
	if ev.at.After(s.now) {
		s.now = ev.at
	}
	s.mu.Unlock()
	ev.fn()
	return true
}

// Run executes events until the queue is empty.
func (s *Simulator) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to the deadline.
func (s *Simulator) RunUntil(deadline time.Time) {
	for {
		s.mu.Lock()
		next := s.queue.peekRunnable()
		if next == nil || next.at.After(deadline) {
			if s.now.Before(deadline) {
				s.now = deadline
			}
			s.mu.Unlock()
			return
		}
		s.mu.Unlock()
		s.Step()
	}
}

// RunFor advances the simulation by d.
func (s *Simulator) RunFor(d time.Duration) {
	s.RunUntil(s.Now().Add(d))
}

// Pending returns the number of queued events (cancelled ones excluded).
func (s *Simulator) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, ev := range s.queue.items {
		if !ev.cancelled {
			n++
		}
	}
	return n
}

// event is a scheduled callback; it doubles as the Timer handle.
type event struct {
	at        time.Time
	seq       uint64
	fn        func()
	cancelled bool
	heapIdx   int
	owner     *eventHeap
	mu        sync.Mutex
}

// Stop cancels the event; it reports true if the event had not yet run.
func (e *event) Stop() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.cancelled || e.owner == nil {
		return false
	}
	e.cancelled = true
	return true
}

func (e *event) ran() {
	e.mu.Lock()
	e.owner = nil
	e.mu.Unlock()
}

func (e *event) isCancelled() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cancelled
}

// eventHeap is a binary min-heap ordered by (at, seq).
type eventHeap struct {
	items []*event
}

func (h *eventHeap) less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.at.Equal(b.at) {
		return a.seq < b.seq
	}
	return a.at.Before(b.at)
}

func (h *eventHeap) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.items[i].heapIdx = i
	h.items[j].heapIdx = j
}

func (h *eventHeap) push(ev *event) {
	ev.owner = h
	ev.heapIdx = len(h.items)
	h.items = append(h.items, ev)
	h.up(len(h.items) - 1)
}

func (h *eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *eventHeap) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}

func (h *eventHeap) pop() *event {
	if len(h.items) == 0 {
		return nil
	}
	top := h.items[0]
	last := len(h.items) - 1
	h.swap(0, last)
	h.items = h.items[:last]
	if last > 0 {
		h.down(0)
	}
	top.ran()
	return top
}

// popRunnable pops events until a non-cancelled one is found.
func (h *eventHeap) popRunnable() *event {
	for {
		ev := h.pop()
		if ev == nil {
			return nil
		}
		if !ev.isCancelled() {
			return ev
		}
	}
}

// peekRunnable returns the earliest non-cancelled event without removing it.
func (h *eventHeap) peekRunnable() *event {
	for len(h.items) > 0 {
		if !h.items[0].isCancelled() {
			return h.items[0]
		}
		h.pop()
	}
	return nil
}
