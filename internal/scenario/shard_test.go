package scenario_test

import (
	"runtime"
	"testing"

	"selfemerge/internal/core"
	"selfemerge/internal/scenario"
)

// TestShardOneMatchesHistoricalRun pins the exact outcome of two unsharded
// configurations as measured before the shard engine (and the pooled
// simulator event loop) landed. Shards=1 — and the default Shards=0 — must
// keep reproducing the historical single-network runs bit for bit: these
// counts are the contract that sharding is an opt-in change of the point
// descriptor, never a silent change of what existing points measure.
func TestShardOneMatchesHistoricalRun(t *testing.T) {
	cases := []struct {
		cfg          scenario.Config
		live         scenario.Result
		deaths, sent int
	}{
		{
			cfg: scenario.Config{Nodes: 120, MaliciousRate: 0.2, Drop: true, Alpha: 1, Missions: 30,
				Plan: core.Plan{Scheme: core.SchemeJoint, K: 2, L: 2}, MCTrials: 40, Seed: 11},
			live:   scenario.Result{Missions: 30, Released: 5, Delivered: 12, Succeeded: 11},
			deaths: 227, sent: 29329,
		},
		{
			cfg: scenario.Config{Nodes: 120, MaliciousRate: 0.1, Alpha: 1, Missions: 24,
				Plan: core.Plan{Scheme: core.SchemeKeyShare, K: 2, L: 3, ShareN: 4, ShareM: []int{2, 2}}, MCTrials: 10, Seed: 21},
			live:   scenario.Result{Missions: 24, Released: 3, Delivered: 18, Succeeded: 15},
			deaths: 245, sent: 166413,
		},
	}
	for _, shards := range []int{0, 1} {
		for i, c := range cases {
			cfg := c.cfg
			cfg.Shards = shards
			report, err := scenario.Measure(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if report.Live != c.live {
				t.Errorf("case %d shards=%d: live %+v, want historical %+v", i, shards, report.Live, c.live)
			}
			if report.Deaths != c.deaths || report.Joins != c.deaths {
				t.Errorf("case %d shards=%d: churn %d/%d, want %d/%d", i, shards, report.Deaths, report.Joins, c.deaths, c.deaths)
			}
			if report.Sent != c.sent {
				t.Errorf("case %d shards=%d: sent %d, want %d", i, shards, report.Sent, c.sent)
			}
		}
	}
}

// shardedCfg is the sharded point most tests below measure.
func shardedCfg(shards int) scenario.Config {
	return scenario.Config{
		Nodes:         120,
		MaliciousRate: 0.2,
		Drop:          true,
		Alpha:         1,
		Missions:      30,
		Shards:        shards,
		Plan:          core.Plan{Scheme: core.SchemeJoint, K: 2, L: 2},
		MCTrials:      40,
		Seed:          11,
	}
}

// TestShardedPointDeterministicAcrossGOMAXPROCS: the merged result of a
// sharded point is a pure function of its descriptor — identical whether the
// shards ran one at a time on a single core or spread over all of them.
func TestShardedPointDeterministicAcrossGOMAXPROCS(t *testing.T) {
	measure := func() *scenario.Report {
		report, err := scenario.Measure(shardedCfg(4))
		if err != nil {
			t.Fatal(err)
		}
		return report
	}
	wide := measure()
	prev := runtime.GOMAXPROCS(1)
	narrow := measure()
	runtime.GOMAXPROCS(prev)
	if wide.Live != narrow.Live {
		t.Errorf("sharded point differs across GOMAXPROCS: %+v vs %+v", wide.Live, narrow.Live)
	}
	if wide.Deaths != narrow.Deaths || wide.Joins != narrow.Joins ||
		wide.Sent != narrow.Sent || wide.Recv != narrow.Recv || wide.Dropped != narrow.Dropped {
		t.Errorf("sharded observability differs across GOMAXPROCS: %+v vs %+v", wide, narrow)
	}
	// And across repeated runs at the same width.
	again := measure()
	if wide.Live != again.Live || wide.Sent != again.Sent {
		t.Errorf("sharded point not reproducible: %+v vs %+v", wide.Live, again.Live)
	}
}

// TestShardedPointMergesShardRuns: a sharded point is exactly the fixed-order
// merge of its per-shard single-network runs — same mission split, same
// derived seeds — executed here by hand through the public API.
func TestShardedPointMergesShardRuns(t *testing.T) {
	const shards = 3
	sharded, err := scenario.Measure(shardedCfg(shards))
	if err != nil {
		t.Fatal(err)
	}
	var merged scenario.Result
	var deaths, sent int
	for i := 0; i < shards; i++ {
		sc := shardedCfg(1)
		sc.Missions = 10 // 30 missions over 3 shards
		sc.Seed = scenario.ShardSeed(shardedCfg(shards).Seed, i)
		rep, err := scenario.Measure(sc)
		if err != nil {
			t.Fatal(err)
		}
		merged.Missions += rep.Live.Missions
		merged.Released += rep.Live.Released
		merged.Delivered += rep.Live.Delivered
		merged.Succeeded += rep.Live.Succeeded
		deaths += rep.Deaths
		sent += rep.Sent
	}
	if sharded.Live != merged {
		t.Errorf("sharded point %+v != merged shard runs %+v", sharded.Live, merged)
	}
	if sharded.Deaths != deaths || sharded.Sent != sent {
		t.Errorf("sharded observability (%d deaths, %d sent) != merged (%d, %d)",
			sharded.Deaths, sharded.Sent, deaths, sent)
	}
}

// TestShardSeedDerivation: shard 0 keeps the point seed (the shards=1
// compatibility anchor); higher shards get distinct decorrelated seeds.
func TestShardSeedDerivation(t *testing.T) {
	if got := scenario.ShardSeed(42, 0); got != 42 {
		t.Errorf("shard 0 seed = %d, want the point seed", got)
	}
	seen := map[uint64]int{42: 0}
	for i := 1; i < 64; i++ {
		s := scenario.ShardSeed(42, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("shards %d and %d share seed %d", prev, i, s)
		}
		seen[s] = i
	}
	if scenario.ShardSeed(42, 1) == scenario.ShardSeed(43, 1) {
		t.Error("adjacent point seeds collide at shard 1")
	}
}

// TestShardClampAndValidation: more shards than missions clamp (every shard
// runs at least one mission), negative counts are rejected, and Setup
// refuses to boot a multi-shard config as a single network.
func TestShardClampAndValidation(t *testing.T) {
	cfg := shardedCfg(64)
	cfg.Missions = 5
	report, err := scenario.Measure(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if report.Config.Shards != 5 {
		t.Errorf("64 shards over 5 missions defaulted to %d, want clamp to 5", report.Config.Shards)
	}
	if report.Live.Missions != 5 {
		t.Errorf("clamped run measured %d missions, want 5", report.Live.Missions)
	}

	bad := shardedCfg(-1)
	if _, err := scenario.Measure(bad); err == nil {
		t.Error("negative shard count accepted")
	}
	if _, _, err := scenario.Setup(shardedCfg(2)); err == nil {
		t.Error("Setup booted a multi-shard config as one network")
	}
	if _, _, err := scenario.Setup(shardedCfg(1)); err != nil {
		t.Errorf("Setup rejected a one-shard config: %v", err)
	}
}

// TestShardedReferenceKey: the shard count is part of the point descriptor,
// so it must split the reference cache key even though the abstract model
// ignores it.
func TestShardedReferenceKey(t *testing.T) {
	one, _ := shardedCfg(1).References()
	four, _ := shardedCfg(4).References()
	if one.Key() == four.Key() {
		t.Errorf("shard counts 1 and 4 share a reference cache key: %s", one.Key())
	}
	zero, _ := shardedCfg(0).References()
	if zero.Key() != one.Key() {
		t.Errorf("un-defaulted and one-shard descriptors diverge:\n%s\n%s", zero.Key(), one.Key())
	}
}

// TestSharedBudgetThrottlesWithoutChangingResults: a one-slot budget forces
// fully serial shard execution; the merged point must not move.
func TestSharedBudgetThrottlesWithoutChangingResults(t *testing.T) {
	free, err := scenario.Measure(shardedCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	cfg := shardedCfg(4)
	cfg.Budget = scenario.NewBudget(1)
	serial, err := scenario.Measure(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if free.Live != serial.Live || free.Sent != serial.Sent {
		t.Errorf("budget changed the measurement: %+v/%d vs %+v/%d",
			free.Live, free.Sent, serial.Live, serial.Sent)
	}
}
