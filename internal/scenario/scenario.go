// Package scenario drives the real protocol stack — simnet transport, live
// Kademlia DHT, per-node protocol hosts — through full emergence missions
// under live churn and packet-level adversaries, and measures the
// release-ahead and drop resilience (Rr, Rd) the paper's Section IV plots.
// It is the end-to-end counterpart of the abstract Monte Carlo engine
// (internal/mc): the same experiment point measured twice, once by executing
// the protocol and once by sampling the model, cross-validates both.
//
// A scenario boots an N-node network in which floor(p*N) nodes are
// Sybil-controlled, every non-infrastructure node dies with an exponential
// lifetime and is replaced by a fresh join (keeping the population and the
// Sybil fraction stationary), and surviving key custodians repair churned
// holder slots by re-granting layer keys once per holding period. M missions
// run concurrently through the live network; each is scored like one Monte
// Carlo trial.
//
// A point may be sharded: Config.Shards = S partitions the M missions across
// S independent network replicas, each with its own simulator, simnet fabric
// and zone map, executed concurrently across cores and merged in fixed shard
// order — so one huge live point is no longer bound to a single core, and
// its missions average over S independent network compositions instead of
// sharing one.
package scenario

import (
	"fmt"
	"time"

	selfemerge "selfemerge"
	"selfemerge/internal/adversary"
	"selfemerge/internal/analytic"
	"selfemerge/internal/core"
	"selfemerge/internal/dht"
	"selfemerge/internal/fault"
	"selfemerge/internal/mc"
	"selfemerge/internal/protocol"
	"selfemerge/internal/stats"
)

// Config parameterizes one scenario run. The zero value is completed by
// defaults; Plan is required.
type Config struct {
	// Nodes is the DHT population N (default 200).
	Nodes int
	// MaliciousRate is the Sybil fraction p; floor(p*N) nodes are marked,
	// infrastructure (bootstrap, receiver, dispatcher) exempt.
	MaliciousRate float64
	// Drop switches the adversary from spying (release-ahead collection
	// only) to the drop attack (malicious holders swallow every package).
	// Equivalent to Strategy: adversary.StrategyDrop; kept for existing
	// callers, and set by withDefaults whenever Strategy drops packages.
	Drop bool
	// Strategy selects the malicious-holder strategy explicitly: spy
	// (default), drop, or eclipse (bucket poisoning plus drop). See
	// adversary.Strategy.
	Strategy adversary.Strategy
	// Forge is the eclipse flood intensity in forged contacts per attacker
	// per minute. Requires StrategyEclipse; zero degenerates to drop.
	Forge float64
	// Table selects the DHT bucket admission policy of every live node. The
	// default resolves (inside the network) to dht.TableNaive, the policy
	// all recorded deterministic runs were captured under; attack sweeps pin
	// dht.TablePingEvict for the defended arm of the curves.
	Table dht.TablePolicy
	// Alpha is the churn severity T/lifetime: the emerging period expressed
	// in mean node lifetimes. Zero disables churn.
	Alpha float64
	// Emerging is the period T between dispatch and release (default 2h).
	// Only the ratio Alpha matters to the model; the absolute value sets
	// how much simulated time the run spans.
	Emerging time.Duration
	// Missions is the number of live emergence trials M (default 100). All
	// of a shard's missions run concurrently through that shard's network.
	Missions int
	// Shards partitions the M missions across this many independent network
	// replicas (default 1), each booted from its own substream of Seed with
	// a private simulator and simnet fabric, executed concurrently across
	// cores and merged in fixed shard order. S is part of the point
	// descriptor, not an execution detail: changing it changes which random
	// streams are sampled (S independent zone maps instead of one), but the
	// merged result is byte-identical for a given (Config, S) regardless of
	// GOMAXPROCS or how callers schedule the shards. Shards=1 reproduces the
	// historical single-network run exactly. Clamped to Missions so every
	// shard runs at least one mission.
	Shards int
	// Budget optionally caps how many shard event loops run at once; nil
	// uses a private budget of min(Shards, GOMAXPROCS). The live estimator
	// shares one budget across every point of a sweep. Execution throttle
	// only — results never depend on it.
	Budget *Budget
	// Partition runs the point's ONE population across this many parallel
	// event loops — the partition engine of selfemerge.NetworkConfig, where
	// each shard owns a zone of the identifier space and cross-shard traffic
	// merges at conservative lockstep barriers. It is the scaling mode for
	// populations a single core's event loop cannot hold (replicate-mode
	// Shards scales mission count, not population). Zero keeps the classic
	// single loop; 1 exercises the partition machinery and replays the
	// classic run byte for byte; like Shards it is part of the point
	// descriptor (S > 1 samples decorrelated per-shard churn substreams).
	// Mutually exclusive with Shards > 1.
	Partition int
	// PartitionWorkers caps how many partition shard loops run concurrently
	// (0 = GOMAXPROCS). Execution throttle only: results are byte-identical
	// for any value.
	PartitionWorkers int
	// Stagger spreads mission launches uniformly over this window (default:
	// one emerging period). Missions sharing one network see the same churn
	// trajectory; staggering exposes each to a different time slice, which
	// decorrelates their outcomes and keeps the measured rates' effective
	// sample size close to Missions. Negative disables staggering.
	Stagger time.Duration
	// Plan is the routing scheme shape to execute. Required.
	Plan core.Plan
	// Replicas is how many closest nodes receive each protocol packet
	// (default 1, so each holder slot maps to exactly one physical node as
	// the Monte Carlo model assumes; the production default elsewhere is 2).
	Replicas int
	// Latency is the one-way simnet latency (default 5ms).
	Latency time.Duration
	// Fault selects the deterministic fault-injection profile the simnet
	// fabric runs under: none (default), burst (Gilbert–Elliott loss with
	// latency spikes and duplication), partition (timed bisections), or flap
	// (crash-restart windows). See fault.Profile. Requires the single event
	// loop — the cross-shard handoff of Partition mode bypasses the injector.
	Fault fault.Profile
	// FaultSeverity scales the chosen profile in [0,1]; zero disables
	// injection even with a profile set, so sweep axes can cross severity
	// through zero.
	FaultSeverity float64
	// Retry is the total send attempts per DHT RPC (0 or 1 = single-shot,
	// the historical behaviour). Values above 1 enable the retry/backoff
	// hardening: per-RPC re-sends with deterministic jittered exponential
	// backoff, acked app delivery with receiver-side dedup, lookup re-query
	// of timed-out contacts, and doubled grant/share refresh pushes.
	Retry int
	// MCTrials sizes the Monte Carlo reference estimate (default 2000).
	MCTrials int
	// ShareModel pins the key-share churn-loss and release-exposure model of
	// the matched Monte Carlo references. The default (mc.ShareModelDefault)
	// resolves to mc.ShareModelLive for key-share plans — the chained,
	// protocol-faithful model that the live measurements cross-validate
	// against — and is ignored for the other schemes. Sweeps that want the
	// paper's coarse column-loss reference instead pin mc.ShareModelQuota
	// (or mc.ShareModelBinomial for the ablation); the pinned value is part
	// of the reference cache key.
	ShareModel mc.ShareModel
	// Seed makes the whole run — node IDs, malicious marking, lifetimes,
	// mission placement — reproducible.
	Seed uint64
}

func (c Config) withDefaults() (Config, error) {
	if c.Nodes == 0 {
		c.Nodes = 200
	}
	if c.Nodes < 10 {
		return c, fmt.Errorf("scenario: %d nodes is too small a population", c.Nodes)
	}
	if c.MaliciousRate < 0 || c.MaliciousRate > 1 {
		return c, fmt.Errorf("scenario: malicious rate %v outside [0,1]", c.MaliciousRate)
	}
	if c.Alpha < 0 {
		return c, fmt.Errorf("scenario: alpha %v must be >= 0", c.Alpha)
	}
	if c.Emerging == 0 {
		c.Emerging = 2 * time.Hour
	}
	if c.Emerging < 0 {
		return c, fmt.Errorf("scenario: emerging period %v must be positive", c.Emerging)
	}
	if c.Missions == 0 {
		c.Missions = 100
	}
	if c.Missions < 1 {
		return c, fmt.Errorf("scenario: missions %d must be >= 1", c.Missions)
	}
	if c.Shards < 0 {
		return c, fmt.Errorf("scenario: shards %d must be >= 0", c.Shards)
	}
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.Shards > c.Missions {
		c.Shards = c.Missions
	}
	if c.Stagger == 0 {
		c.Stagger = c.Emerging
	}
	if c.Stagger < 0 {
		c.Stagger = 0
	}
	if c.Replicas < 0 {
		return c, fmt.Errorf("scenario: replicas %d must be >= 0", c.Replicas)
	}
	if c.Replicas == 0 {
		c.Replicas = 1
	}
	if c.Latency < 0 {
		return c, fmt.Errorf("scenario: latency %v must be positive", c.Latency)
	}
	if c.Latency == 0 {
		c.Latency = 5 * time.Millisecond
	}
	if c.MCTrials == 0 {
		c.MCTrials = 2000
	}
	if c.Drop && c.Strategy == adversary.StrategySpy {
		c.Strategy = adversary.StrategyDrop
	}
	if c.Strategy.Drops() {
		// Eclipse holders also swallow their packages, so every Drop-keyed
		// decision (delivery reference, scoring semantics) applies.
		c.Drop = true
	}
	if c.Forge < 0 {
		return c, fmt.Errorf("scenario: forge rate %v must be >= 0", c.Forge)
	}
	if c.Forge > 0 && c.Strategy != adversary.StrategyEclipse {
		return c, fmt.Errorf("scenario: forge rate requires the eclipse strategy")
	}
	if c.Partition < 0 {
		return c, fmt.Errorf("scenario: partition %d must be >= 0", c.Partition)
	}
	if c.Partition > 0 && c.Shards > 1 {
		return c, fmt.Errorf("scenario: partition and shards are mutually exclusive (one population across loops vs %d replicas)", c.Shards)
	}
	if c.Partition > 0 && c.Forge > 0 {
		return c, fmt.Errorf("scenario: the eclipse forger requires the single event loop, not partition")
	}
	if err := (fault.Config{Profile: c.Fault, Severity: c.FaultSeverity}).Validate(); err != nil {
		return c, fmt.Errorf("scenario: %w", err)
	}
	if c.Partition > 0 && c.Fault != fault.ProfileNone && c.FaultSeverity > 0 {
		return c, fmt.Errorf("scenario: fault profiles require the single event loop, not partition")
	}
	if c.Retry < 0 {
		return c, fmt.Errorf("scenario: retry %d must be >= 0", c.Retry)
	}
	if err := c.Plan.Validate(); err != nil {
		return c, fmt.Errorf("scenario: %w", err)
	}
	return c, nil
}

// shareModel resolves the reference share model: an explicitly pinned value
// wins; otherwise key-share plans default to the live-faithful chained model
// (that is what the protocol stack being measured does) and the remaining
// schemes, which ignore the knob, stay on the zero value.
func (c Config) shareModel() mc.ShareModel {
	if c.ShareModel != mc.ShareModelDefault {
		return c.ShareModel
	}
	if c.Plan.Scheme == core.SchemeKeyShare {
		return mc.ShareModelLive
	}
	return mc.ShareModelDefault
}

// maliciousCount mirrors the Network's marking: floor(p*N), capped to the
// non-infrastructure population.
func (c Config) maliciousCount() int {
	count := int(c.MaliciousRate * float64(c.Nodes))
	if count > c.Nodes-3 {
		count = c.Nodes - 3
	}
	return count
}

// Result aggregates live mission outcomes for one scenario, mirroring
// mc.Result.
type Result struct {
	Missions  int
	Released  int // missions where the release-ahead attack succeeded
	Delivered int // missions where the key emerged on time
	Succeeded int // missions with neither early release nor delivery failure
}

// Rr is the measured release-ahead resilience 1 - P[attack success].
func (r Result) Rr() float64 { return 1 - ratio(r.Released, r.Missions) }

// Rd is the measured drop/loss resilience: the probability the key emerged
// at the release time despite malicious holders and churn.
func (r Result) Rd() float64 { return ratio(r.Delivered, r.Missions) }

// R is the combined resilience P[delivered and not stolen], the single curve
// plotted per scheme in Figures 7 and 8.
func (r Result) R() float64 { return ratio(r.Succeeded, r.Missions) }

// ReleaseCI returns the 95% Wilson interval for the release-ahead success
// probability.
func (r Result) ReleaseCI() (lo, hi float64) {
	var p stats.Proportion
	p.AddN(r.Released, r.Missions)
	return p.Wilson95()
}

// DeliverCI returns the 95% Wilson interval for the delivery probability.
func (r Result) DeliverCI() (lo, hi float64) {
	var p stats.Proportion
	p.AddN(r.Delivered, r.Missions)
	return p.Wilson95()
}

func ratio(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Report is the full outcome of a scenario run: the live measurement, the
// matching Monte Carlo estimate, and the no-churn closed-form prediction.
type Report struct {
	Config Config

	Live Result
	// MC is the Monte Carlo estimate at the matched environment
	// (same population, malicious count and alpha).
	MC mc.Result
	// MCDelivery is the delivery reference. Under the drop attack it equals
	// MC. Under a spy adversary malicious holders forward faithfully, so
	// live delivery is compared against the same environment with zero
	// malicious nodes (churn losses only) — the model's counterpart of a
	// spying holder population.
	MCDelivery mc.Result
	// Predicted is the no-churn closed-form resilience (Equations (1)-(3)),
	// zero when no closed form applies.
	Predicted analytic.Resilience

	// Churn and transport volume observed during the run.
	Deaths, Joins       int
	Sent, Recv, Dropped int
	// Resilience counters from the retry-hardened RPC layer: re-sends,
	// RPCs recovered by a re-send, and receiver-suppressed duplicate
	// deliveries. All zero on single-shot (Retry <= 1) runs.
	Retries, Recovered, Duplicates uint64
	// Partition event-loop counters: epoch barriers executed, epochs with
	// at most one busy shard, and hand-off outbox capacity growths. Pure
	// functions of configuration and seed (never of GOMAXPROCS or worker
	// counts), zero outside partition mode.
	Epochs, IdleSkips, MergeAllocs uint64
	Elapsed                        time.Duration // wall-clock time of the live run
}

// AgreesWithMC reports whether the live release and delivery rates fall
// inside the 95% Wilson intervals of the Monte Carlo estimates. For the
// check to be statistically meaningful, size MCTrials comparably to
// Missions: the interval must reflect at least the sampling noise the live
// measurement carries.
func (r *Report) AgreesWithMC() (release, deliver bool) {
	relLo, relHi := r.MC.ReleaseCI()
	delLo, delHi := r.MCDelivery.DeliverCI()
	liveRel := ratio(r.Live.Released, r.Live.Missions)
	liveDel := ratio(r.Live.Delivered, r.Live.Missions)
	const eps = 1e-9 // absorb interval-endpoint rounding at 0 and 1
	return liveRel >= relLo-eps && liveRel <= relHi+eps,
		liveDel >= delLo-eps && liveDel <= delHi+eps
}

// Setup validates cfg, applies its defaults and boots the live network: the
// first of the three phases (setup, drive, score) the experiment runner
// composes. The returned Config is the defaulted one the later phases need.
// Setup boots exactly one network, so it rejects multi-shard configs; use
// Measure (or Run), which splits the point into per-shard configs and feeds
// each through these same phases.
func Setup(cfg Config) (Config, *selfemerge.Network, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return cfg, nil, err
	}
	if cfg.Shards > 1 {
		return cfg, nil, fmt.Errorf("scenario: Setup boots one network; %d shards need Measure", cfg.Shards)
	}
	return boot(cfg)
}

// boot builds the single live network of one (already defaulted) shard
// config.
func boot(cfg Config) (Config, *selfemerge.Network, error) {
	var lifetime time.Duration
	if cfg.Alpha > 0 {
		lifetime = time.Duration(float64(cfg.Emerging) / cfg.Alpha)
	}
	net, err := selfemerge.NewNetwork(selfemerge.NetworkConfig{
		Nodes:            cfg.Nodes,
		MaliciousRate:    cfg.MaliciousRate,
		Attack:           cfg.Strategy,
		ForgeRate:        cfg.Forge,
		Table:            cfg.Table,
		MeanLifetime:     lifetime,
		Replace:          true,
		HonestEndpoints:  true,
		Replicas:         cfg.Replicas,
		Repair:           true,
		Latency:          cfg.Latency,
		Partition:        cfg.Partition,
		PartitionWorkers: cfg.PartitionWorkers,
		Fault:            cfg.Fault,
		FaultSeverity:    cfg.FaultSeverity,
		Retry:            cfg.Retry,
		Seed:             cfg.Seed,
	})
	if err != nil {
		return cfg, nil, err
	}
	return cfg, net, nil
}

// Drive launches cfg.Missions staggered missions through the live network
// and advances simulated time until every mission's release has passed and
// the final traffic has settled. cfg must be the defaulted Config Setup
// returned.
func Drive(cfg Config, net *selfemerge.Network) ([]*selfemerge.Message, error) {
	// Launch every mission with a deterministic identifier (the identifier
	// alone fixes the pseudo-random holder slot placement), staggered over
	// the launch window.
	rng := stats.NewRNG(cfg.Seed ^ 0x5ce7a110_c0ffee)
	var gap time.Duration
	if cfg.Missions > 1 {
		gap = cfg.Stagger / time.Duration(cfg.Missions)
	}
	msgs := make([]*selfemerge.Message, cfg.Missions)
	for i := range msgs {
		var id protocol.MissionID
		for w := 0; w < 2; w++ {
			v := rng.Uint64()
			for b := 0; b < 8; b++ {
				id[w*8+b] = byte(v >> (8 * b))
			}
		}
		msg, err := net.Send([]byte(fmt.Sprintf("mission-%d", i)), cfg.Emerging,
			selfemerge.WithPlan(cfg.Plan), selfemerge.WithMissionID(id))
		if err != nil {
			return nil, fmt.Errorf("scenario: dispatching mission %d: %w", i, err)
		}
		msgs[i] = msg
		if gap > 0 && i < cfg.Missions-1 {
			net.RunFor(gap)
		}
	}

	// Run the mission window plus slack for the final lookups and delivery.
	release := msgs[len(msgs)-1].Release()
	net.RunUntil(release.Add(time.Minute))
	net.Settle()
	return msgs, nil
}

// Score tallies each mission like one Monte Carlo trial. Release-ahead
// success follows Equation (1)'s semantics: the adversary reconstructs the
// key from start-time material — pre-assigned layer keys (including churn
// re-grants) plus the entry package — which completes strictly before the
// first forwarding hop at ts + th. Recoveries after that instant involve
// capturing the onion mid-route, a strictly weaker partial attack (it
// shortens the wait by at most (l-1)/l of the period) that neither Equation
// (1) nor the Monte Carlo engine counts.
func Score(cfg Config, net *selfemerge.Network, msgs []*selfemerge.Message) Result {
	hold := cfg.Plan.HoldPeriod(cfg.Emerging)
	res := Result{Missions: len(msgs)}
	for _, msg := range msgs {
		released := false
		if at, ok := net.AdversaryRecovered(msg); ok && at.Before(msg.Start().Add(hold)) {
			res.Released++
			released = true
		}
		if _, at, ok := net.Emerged(msg); ok && !at.Before(msg.Release()) {
			res.Delivered++
			if !released {
				res.Succeeded++
			}
		}
	}
	return res
}

// Measure runs the live phases only — setup, drive, score, once per shard —
// and returns a report without the Monte Carlo references (Report.MC and
// MCDelivery stay zero; Predicted and the churn/transport observability
// totals are filled). The experiment runner uses it so matched references
// are computed once per environment and shared across points instead of
// re-sampled inline. With Shards > 1 the shards execute concurrently (up to
// the budget) and their outcomes merge in fixed shard order, so the report
// is identical no matter how the shards were scheduled.
func Measure(cfg Config) (*Report, error) {
	began := time.Now() //lint:allow detrand Elapsed is operator-facing wall time, not part of the seeded result
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	report := &Report{Config: cfg}
	if err := measureShards(cfg, report); err != nil {
		return nil, err
	}
	report.Predicted = predicted(cfg)
	report.Elapsed = time.Since(began) //lint:allow detrand wall-time metadata only; every seeded quantity flows from pt.Seed
	return report, nil
}

// Reference describes one matched Monte Carlo reference estimate: the
// environment, trial count and seed that reproduce it. References with
// equal keys yield identical estimates, which is what lets the experiment
// runner compute each matched environment once and cache it.
type Reference struct {
	Plan   core.Plan
	Env    mc.Env
	Trials int
	Seed   uint64
	// Shards is the live point's shard count. The abstract model has no
	// network replicas, so Estimate ignores it — but it is part of the point
	// descriptor, so it keys the cache: points that differ only in S never
	// share a cached reference entry.
	Shards int
	// Partition is the live point's partition loop count (0 = classic single
	// loop). Like Shards it is descriptor, not execution detail: a
	// partitioned point samples decorrelated per-shard churn substreams, so
	// it never shares a cached reference entry with the classic run.
	Partition int
	// Fault, FaultSev and Retry are the live point's fault-injection and
	// retry-hardening knobs. The Monte Carlo model is fault-blind — Estimate
	// ignores all three and returns the clean-network estimate (see
	// ROADMAP.md) — but they are part of the point descriptor, so they key
	// the cache like Shards and Partition do.
	Fault    fault.Profile
	FaultSev float64
	Retry    int
}

// Key returns a canonical cache key: two references with the same key
// produce byte-identical estimates.
func (r Reference) Key() string {
	key := fmt.Sprintf("%v/%d/%d/%d/%v|N%d m%d a%g sm%v|t%d s%d S%d P%d",
		r.Plan.Scheme, r.Plan.K, r.Plan.L, r.Plan.ShareN, r.Plan.ShareM,
		r.Env.Population, r.Env.Malicious, r.Env.Alpha, r.Env.ShareModel,
		r.Trials, r.Seed, r.Shards, r.Partition)
	// Keep the historical key bytes for fault-free single-shot points; only
	// the new arms grow a suffix.
	if r.Fault != fault.ProfileNone || r.FaultSev != 0 || r.Retry != 0 {
		key += fmt.Sprintf(" F%v fs%g r%d", r.Fault, r.FaultSev, r.Retry)
	}
	return key
}

// Estimate runs the reference on a single trial worker, so equal keys yield
// identical estimates on every machine regardless of GOMAXPROCS (the trial
// partition, and hence the sampled streams, would otherwise vary).
func (r Reference) Estimate() (mc.Result, error) {
	return mc.Estimate(r.Plan, r.Env, mc.Options{Trials: r.Trials, Seed: r.Seed, Workers: 1})
}

// References returns the matched Monte Carlo reference descriptors for the
// (defaulted) config: the release reference at the live environment, and the
// delivery reference — identical under the drop attack, malicious-free
// (churn losses only) under a spy adversary, whose holders forward
// faithfully.
func (c Config) References() (release, deliver Reference) {
	env := mc.Env{
		Population: c.Nodes,
		Malicious:  c.maliciousCount(),
		Alpha:      c.Alpha,
		ShareModel: c.shareModel(),
	}
	shards := c.Shards
	if shards < 1 {
		shards = 1 // un-defaulted config: the descriptor's canonical form
	}
	release = Reference{Plan: c.Plan, Env: env, Trials: c.MCTrials, Seed: c.Seed + 101, Shards: shards, Partition: c.Partition,
		Fault: c.Fault, FaultSev: c.FaultSeverity, Retry: c.Retry}
	if c.Drop {
		return release, release
	}
	env.Malicious = 0
	deliver = Reference{Plan: c.Plan, Env: env, Trials: c.MCTrials, Seed: c.Seed + 103, Shards: shards, Partition: c.Partition,
		Fault: c.Fault, FaultSev: c.FaultSeverity, Retry: c.Retry}
	return release, deliver
}

// Run executes one scenario — the live measurement plus its inline Monte
// Carlo references — and returns its report. The run is fully deterministic
// for a fixed Config.
func Run(cfg Config) (*Report, error) {
	report, err := Measure(cfg)
	if err != nil {
		return nil, err
	}
	relRef, delRef := report.Config.References()
	if report.MC, err = relRef.Estimate(); err != nil {
		return nil, fmt.Errorf("scenario: reference estimate: %w", err)
	}
	report.MCDelivery = report.MC
	if !report.Config.Drop {
		if report.MCDelivery, err = delRef.Estimate(); err != nil {
			return nil, fmt.Errorf("scenario: delivery reference estimate: %w", err)
		}
	}
	return report, nil
}

// predicted returns the no-churn closed-form resilience of the plan, when
// one exists.
func predicted(cfg Config) analytic.Resilience {
	p := cfg.MaliciousRate
	switch cfg.Plan.Scheme {
	case core.SchemeCentral:
		return analytic.Central(p)
	case core.SchemeDisjoint:
		return analytic.Disjoint(p, cfg.Plan.K, cfg.Plan.L)
	case core.SchemeJoint:
		return analytic.Joint(p, cfg.Plan.K, cfg.Plan.L)
	default:
		return cfg.Plan.Predicted
	}
}
