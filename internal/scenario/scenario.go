// Package scenario drives the real protocol stack — simnet transport, live
// Kademlia DHT, per-node protocol hosts — through full emergence missions
// under live churn and packet-level adversaries, and measures the
// release-ahead and drop resilience (Rr, Rd) the paper's Section IV plots.
// It is the end-to-end counterpart of the abstract Monte Carlo engine
// (internal/mc): the same experiment point measured twice, once by executing
// the protocol and once by sampling the model, cross-validates both.
//
// A scenario boots an N-node network in which floor(p*N) nodes are
// Sybil-controlled, every non-infrastructure node dies with an exponential
// lifetime and is replaced by a fresh join (keeping the population and the
// Sybil fraction stationary), and surviving key custodians repair churned
// holder slots by re-granting layer keys once per holding period. M missions
// run concurrently through the live network; each is scored like one Monte
// Carlo trial.
package scenario

import (
	"fmt"
	"time"

	selfemerge "selfemerge"
	"selfemerge/internal/analytic"
	"selfemerge/internal/core"
	"selfemerge/internal/mc"
	"selfemerge/internal/protocol"
	"selfemerge/internal/stats"
)

// Config parameterizes one scenario run. The zero value is completed by
// defaults; Plan is required.
type Config struct {
	// Nodes is the DHT population N (default 200).
	Nodes int
	// MaliciousRate is the Sybil fraction p; floor(p*N) nodes are marked,
	// infrastructure (bootstrap, receiver, dispatcher) exempt.
	MaliciousRate float64
	// Drop switches the adversary from spying (release-ahead collection
	// only) to the drop attack (malicious holders swallow every package).
	Drop bool
	// Alpha is the churn severity T/lifetime: the emerging period expressed
	// in mean node lifetimes. Zero disables churn.
	Alpha float64
	// Emerging is the period T between dispatch and release (default 2h).
	// Only the ratio Alpha matters to the model; the absolute value sets
	// how much simulated time the run spans.
	Emerging time.Duration
	// Missions is the number of live emergence trials M (default 100). All
	// missions run concurrently through the same network.
	Missions int
	// Stagger spreads mission launches uniformly over this window (default:
	// one emerging period). Missions sharing one network see the same churn
	// trajectory; staggering exposes each to a different time slice, which
	// decorrelates their outcomes and keeps the measured rates' effective
	// sample size close to Missions. Negative disables staggering.
	Stagger time.Duration
	// Plan is the routing scheme shape to execute. Required.
	Plan core.Plan
	// Replicas is how many closest nodes receive each protocol packet
	// (default 1, so each holder slot maps to exactly one physical node as
	// the Monte Carlo model assumes; the production default elsewhere is 2).
	Replicas int
	// Latency is the one-way simnet latency (default 5ms).
	Latency time.Duration
	// MCTrials sizes the Monte Carlo reference estimate (default 2000).
	MCTrials int
	// Seed makes the whole run — node IDs, malicious marking, lifetimes,
	// mission placement — reproducible.
	Seed uint64
}

func (c Config) withDefaults() (Config, error) {
	if c.Nodes == 0 {
		c.Nodes = 200
	}
	if c.Nodes < 10 {
		return c, fmt.Errorf("scenario: %d nodes is too small a population", c.Nodes)
	}
	if c.MaliciousRate < 0 || c.MaliciousRate > 1 {
		return c, fmt.Errorf("scenario: malicious rate %v outside [0,1]", c.MaliciousRate)
	}
	if c.Alpha < 0 {
		return c, fmt.Errorf("scenario: alpha %v must be >= 0", c.Alpha)
	}
	if c.Emerging == 0 {
		c.Emerging = 2 * time.Hour
	}
	if c.Emerging < 0 {
		return c, fmt.Errorf("scenario: emerging period %v must be positive", c.Emerging)
	}
	if c.Missions == 0 {
		c.Missions = 100
	}
	if c.Missions < 1 {
		return c, fmt.Errorf("scenario: missions %d must be >= 1", c.Missions)
	}
	if c.Stagger == 0 {
		c.Stagger = c.Emerging
	}
	if c.Stagger < 0 {
		c.Stagger = 0
	}
	if c.Replicas == 0 {
		c.Replicas = 1
	}
	if c.Latency == 0 {
		c.Latency = 5 * time.Millisecond
	}
	if c.MCTrials == 0 {
		c.MCTrials = 2000
	}
	if err := c.Plan.Validate(); err != nil {
		return c, fmt.Errorf("scenario: %w", err)
	}
	return c, nil
}

// maliciousCount mirrors the Network's marking: floor(p*N), capped to the
// non-infrastructure population.
func (c Config) maliciousCount() int {
	count := int(c.MaliciousRate * float64(c.Nodes))
	if count > c.Nodes-3 {
		count = c.Nodes - 3
	}
	return count
}

// Result aggregates live mission outcomes for one scenario, mirroring
// mc.Result.
type Result struct {
	Missions  int
	Released  int // missions where the release-ahead attack succeeded
	Delivered int // missions where the key emerged on time
}

// Rr is the measured release-ahead resilience 1 - P[attack success].
func (r Result) Rr() float64 { return 1 - ratio(r.Released, r.Missions) }

// Rd is the measured drop/loss resilience: the probability the key emerged
// at the release time despite malicious holders and churn.
func (r Result) Rd() float64 { return ratio(r.Delivered, r.Missions) }

// ReleaseCI returns the 95% Wilson interval for the release-ahead success
// probability.
func (r Result) ReleaseCI() (lo, hi float64) {
	var p stats.Proportion
	p.AddN(r.Released, r.Missions)
	return p.Wilson95()
}

// DeliverCI returns the 95% Wilson interval for the delivery probability.
func (r Result) DeliverCI() (lo, hi float64) {
	var p stats.Proportion
	p.AddN(r.Delivered, r.Missions)
	return p.Wilson95()
}

func ratio(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Report is the full outcome of a scenario run: the live measurement, the
// matching Monte Carlo estimate, and the no-churn closed-form prediction.
type Report struct {
	Config Config

	Live Result
	// MC is the Monte Carlo estimate at the matched environment
	// (same population, malicious count and alpha).
	MC mc.Result
	// MCDelivery is the delivery reference. Under the drop attack it equals
	// MC. Under a spy adversary malicious holders forward faithfully, so
	// live delivery is compared against the same environment with zero
	// malicious nodes (churn losses only) — the model's counterpart of a
	// spying holder population.
	MCDelivery mc.Result
	// Predicted is the no-churn closed-form resilience (Equations (1)-(3)),
	// zero when no closed form applies.
	Predicted analytic.Resilience

	// Churn and transport volume observed during the run.
	Deaths, Joins       int
	Sent, Recv, Dropped int
	Elapsed             time.Duration // wall-clock time of the live run
}

// AgreesWithMC reports whether the live release and delivery rates fall
// inside the 95% Wilson intervals of the Monte Carlo estimates. For the
// check to be statistically meaningful, size MCTrials comparably to
// Missions: the interval must reflect at least the sampling noise the live
// measurement carries.
func (r *Report) AgreesWithMC() (release, deliver bool) {
	relLo, relHi := r.MC.ReleaseCI()
	delLo, delHi := r.MCDelivery.DeliverCI()
	liveRel := ratio(r.Live.Released, r.Live.Missions)
	liveDel := ratio(r.Live.Delivered, r.Live.Missions)
	const eps = 1e-9 // absorb interval-endpoint rounding at 0 and 1
	return liveRel >= relLo-eps && liveRel <= relHi+eps,
		liveDel >= delLo-eps && liveDel <= delHi+eps
}

// Run executes one scenario and returns its report. The run is fully
// deterministic for a fixed Config.
func Run(cfg Config) (*Report, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	began := time.Now()

	var lifetime time.Duration
	if cfg.Alpha > 0 {
		lifetime = time.Duration(float64(cfg.Emerging) / cfg.Alpha)
	}
	net, err := selfemerge.NewNetwork(selfemerge.NetworkConfig{
		Nodes:           cfg.Nodes,
		MaliciousRate:   cfg.MaliciousRate,
		DropAttack:      cfg.Drop,
		MeanLifetime:    lifetime,
		Replace:         true,
		HonestEndpoints: true,
		Replicas:        cfg.Replicas,
		Repair:          true,
		Latency:         cfg.Latency,
		Seed:            cfg.Seed,
	})
	if err != nil {
		return nil, err
	}

	// Launch every mission with a deterministic identifier (the identifier
	// alone fixes the pseudo-random holder slot placement), staggered over
	// the launch window.
	rng := stats.NewRNG(cfg.Seed ^ 0x5ce7a110_c0ffee)
	var gap time.Duration
	if cfg.Missions > 1 {
		gap = cfg.Stagger / time.Duration(cfg.Missions)
	}
	msgs := make([]*selfemerge.Message, cfg.Missions)
	for i := range msgs {
		var id protocol.MissionID
		for w := 0; w < 2; w++ {
			v := rng.Uint64()
			for b := 0; b < 8; b++ {
				id[w*8+b] = byte(v >> (8 * b))
			}
		}
		msg, err := net.Send([]byte(fmt.Sprintf("mission-%d", i)), cfg.Emerging,
			selfemerge.WithPlan(cfg.Plan), selfemerge.WithMissionID(id))
		if err != nil {
			return nil, fmt.Errorf("scenario: dispatching mission %d: %w", i, err)
		}
		msgs[i] = msg
		if gap > 0 && i < cfg.Missions-1 {
			net.RunFor(gap)
		}
	}

	// Run the mission window plus slack for the final lookups and delivery.
	release := msgs[len(msgs)-1].Release()
	net.RunUntil(release.Add(time.Minute))
	net.Settle()

	// Score each mission like one Monte Carlo trial. Release-ahead success
	// follows Equation (1)'s semantics: the adversary reconstructs the key
	// from start-time material — pre-assigned layer keys (including churn
	// re-grants) plus the entry package — which completes strictly before
	// the first forwarding hop at ts + th. Recoveries after that instant
	// involve capturing the onion mid-route, a strictly weaker partial
	// attack (it shortens the wait by at most (l-1)/l of the period) that
	// neither Equation (1) nor the Monte Carlo engine counts.
	hold := cfg.Plan.HoldPeriod(cfg.Emerging)
	res := Result{Missions: cfg.Missions}
	for _, msg := range msgs {
		if at, ok := net.AdversaryRecovered(msg); ok && at.Before(msg.Start().Add(hold)) {
			res.Released++
		}
		if _, at, ok := net.Emerged(msg); ok && !at.Before(msg.Release()) {
			res.Delivered++
		}
	}

	report := &Report{Config: cfg, Live: res, Elapsed: time.Since(began)}
	report.Deaths, report.Joins = net.ChurnEvents()
	report.Sent, report.Recv, report.Dropped = net.FabricStats()

	// Matched Monte Carlo references and closed-form prediction.
	env := mc.Env{
		Population:          cfg.Nodes,
		Malicious:           cfg.maliciousCount(),
		Alpha:               cfg.Alpha,
		BinomialShareDeaths: cfg.Plan.Scheme == core.SchemeKeyShare,
	}
	report.MC, err = mc.Estimate(cfg.Plan, env, mc.Options{Trials: cfg.MCTrials, Seed: cfg.Seed + 101})
	if err != nil {
		return nil, fmt.Errorf("scenario: reference estimate: %w", err)
	}
	report.MCDelivery = report.MC
	if !cfg.Drop {
		// Spies forward faithfully: the delivery reference is the same
		// environment with churn losses only.
		env.Malicious = 0
		report.MCDelivery, err = mc.Estimate(cfg.Plan, env, mc.Options{Trials: cfg.MCTrials, Seed: cfg.Seed + 103})
		if err != nil {
			return nil, fmt.Errorf("scenario: delivery reference estimate: %w", err)
		}
	}
	report.Predicted = predicted(cfg)
	return report, nil
}

// predicted returns the no-churn closed-form resilience of the plan, when
// one exists.
func predicted(cfg Config) analytic.Resilience {
	p := cfg.MaliciousRate
	switch cfg.Plan.Scheme {
	case core.SchemeCentral:
		return analytic.Central(p)
	case core.SchemeDisjoint:
		return analytic.Disjoint(p, cfg.Plan.K, cfg.Plan.L)
	case core.SchemeJoint:
		return analytic.Joint(p, cfg.Plan.K, cfg.Plan.L)
	default:
		return cfg.Plan.Predicted
	}
}
