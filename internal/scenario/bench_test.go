package scenario_test

import (
	"fmt"
	"os"
	"runtime"
	"testing"

	"selfemerge/internal/core"
	"selfemerge/internal/fault"
	"selfemerge/internal/scenario"
)

// benchCfg is the shared shape of the scenario throughput benchmarks: a
// 120-node live network under alpha=1 replacement churn and a 10% Sybil
// drop attack, 30 missions, joint 2x2 plan.
func benchCfg(missions, shards int) scenario.Config {
	return scenario.Config{
		Nodes:         120,
		MaliciousRate: 0.1,
		Drop:          true,
		Alpha:         1,
		Missions:      missions,
		Shards:        shards,
		Plan:          core.Plan{Scheme: core.SchemeJoint, K: 2, L: 2},
		MCTrials:      1, // live throughput, not reference accuracy
		Seed:          17,
	}
}

// BenchmarkScenarioMissions measures live-scenario throughput — a full
// 120-node churn + adversary network driving 30 concurrent missions through
// the real stack — and reports missions per second of wall time, the number
// that bounds how fast live figure curves can be generated per core. The
// baseline is recorded in BENCH_scenario.json at the repository root.
func BenchmarkScenarioMissions(b *testing.B) {
	const missions = 30
	cfg := benchCfg(missions, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scenario.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(missions*b.N)/b.Elapsed().Seconds(), "missions/sec")
}

// BenchmarkScenarioMissionsParallel is the sharded counterpart: the same
// point partitioned over GOMAXPROCS independent network replicas executed
// concurrently. The mission count scales with the shard count so every
// shard drives the same per-network load as the serial benchmark, making
// missions/sec directly comparable: on an S-core runner the sharded point
// should approach S times the serial number. Baselined next to the serial
// benchmark in BENCH_scenario.json.
func BenchmarkScenarioMissionsParallel(b *testing.B) {
	shards := runtime.GOMAXPROCS(0)
	missions := 30 * shards
	cfg := benchCfg(missions, shards)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scenario.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(missions*b.N)/b.Elapsed().Seconds(), "missions/sec")
	b.ReportMetric(float64(shards), "shards")
}

// BenchmarkScenarioMissionsPartitioned measures the partition engine: ONE
// population (no replicas) split across S parallel event loops with
// cross-shard routing under the conservative epoch barrier. The population
// is larger than the replicate benchmarks' — partitioning pays off when the
// single event loop is the bottleneck, which takes a network too big to
// replicate cheaply. S=1 runs the same config through the partition
// machinery on one loop: the single-loop baseline the S=GOMAXPROCS number
// is compared against (the >1.5x multi-core target recorded in
// BENCH_scenario.json). For a fixed S, results are byte-identical at any
// GOMAXPROCS or worker count; only the wall clock moves.
//
// The S=2 arm is fixed-shape on every machine, and its epochs/idle_skips/
// merge_allocs metrics are pure functions of the workload (not of core or
// worker counts) — that arm's epoch count is what CI gates, so a lookahead
// or barrier regression that multiplies the epoch count fails the build
// even when the wall clock hides it.
func BenchmarkScenarioMissionsPartitioned(b *testing.B) {
	shapes := []int{1, 2}
	if g := runtime.GOMAXPROCS(0); g != 1 && g != 2 {
		shapes = append(shapes, g)
	}
	for _, s := range shapes {
		b.Run(fmt.Sprintf("S=%d", s), func(b *testing.B) {
			const missions = 20
			cfg := benchCfg(missions, 1)
			cfg.Shards = 0
			cfg.Nodes = 600
			cfg.Partition = s
			var epochs, idleSkips, mergeAllocs uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				report, err := scenario.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				epochs += report.Epochs
				idleSkips += report.IdleSkips
				mergeAllocs += report.MergeAllocs
			}
			b.ReportMetric(float64(missions*b.N)/b.Elapsed().Seconds(), "missions/sec")
			b.ReportMetric(float64(s), "loops")
			b.ReportMetric(float64(epochs)/float64(b.N), "epochs")
			b.ReportMetric(float64(idleSkips)/float64(b.N), "idle_skips")
			b.ReportMetric(float64(mergeAllocs)/float64(b.N), "merge_allocs")
		})
	}
}

// BenchmarkScenarioMissionsFaulty is the serial benchmark under the burst
// fault profile with retry hardening: the Gilbert–Elliott injector judges
// every datagram and the retry machinery re-sends through the drops, so this
// measures the fault path's full cost — injection draws, duplicate
// deliveries, two-phase retry timers, wire retention — against the clean
// BenchmarkScenarioMissions number. Named inside the ScenarioMissions CI
// smoke pattern deliberately: the race-detector smoke iteration covers the
// injector and retry concurrency. Baselined in BENCH_scenario.json.
func BenchmarkScenarioMissionsFaulty(b *testing.B) {
	const missions = 30
	cfg := benchCfg(missions, 1)
	cfg.Fault = fault.ProfileBurst
	cfg.FaultSeverity = 0.5
	cfg.Retry = 3
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scenario.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(missions*b.N)/b.Elapsed().Seconds(), "missions/sec")
}

// BenchmarkPartitionSmoke100k is the 100k-node partitioned live point: one
// population of 10^5 nodes over 8 event loops driving a small mission set.
// Deliberately named outside the ScenarioMissions CI smoke pattern — boot
// alone is minutes under the race detector. Run it on sized hardware:
//
//	go test -run '^$' -bench PartitionSmoke100k -benchtime 1x ./internal/scenario/
func BenchmarkPartitionSmoke100k(b *testing.B) {
	cfg := benchCfg(8, 1)
	cfg.Shards = 0
	cfg.Nodes = 100_000
	cfg.Alpha = 0 // boot + routing load is the point; churn scales separately
	cfg.Partition = 8
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scenario.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPartitionMillionNodes is the off-CI 10^6-node target: the
// million-node live point of the partition engine's design envelope. It
// needs tens of GB of RAM and tens of minutes; it is gated behind
// EMERGE_MILLION=1 so a stray -bench '.' never eats a laptop. Expect the
// event loops to dominate and the epoch barrier to stay <5% of wall time.
func BenchmarkPartitionMillionNodes(b *testing.B) {
	if os.Getenv("EMERGE_MILLION") == "" {
		b.Skip("set EMERGE_MILLION=1 to run the million-node partitioned point")
	}
	cfg := benchCfg(4, 1)
	cfg.Shards = 0
	cfg.Nodes = 1_000_000
	cfg.Alpha = 0
	cfg.Partition = runtime.GOMAXPROCS(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scenario.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
