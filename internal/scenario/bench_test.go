package scenario_test

import (
	"testing"

	"selfemerge/internal/core"
	"selfemerge/internal/scenario"
)

// BenchmarkScenarioMissions measures live-scenario throughput — a full
// 120-node churn + adversary network driving 30 concurrent missions through
// the real stack — and reports missions per second of wall time, the number
// that bounds how fast live figure curves can be generated per core. The
// baseline is recorded in BENCH_scenario.json at the repository root.
func BenchmarkScenarioMissions(b *testing.B) {
	const missions = 30
	cfg := scenario.Config{
		Nodes:         120,
		MaliciousRate: 0.1,
		Drop:          true,
		Alpha:         1,
		Missions:      missions,
		Plan:          core.Plan{Scheme: core.SchemeJoint, K: 2, L: 2},
		MCTrials:      1, // live throughput, not reference accuracy
		Seed:          17,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scenario.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(missions*b.N)/b.Elapsed().Seconds(), "missions/sec")
}
