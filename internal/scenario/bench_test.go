package scenario_test

import (
	"runtime"
	"testing"

	"selfemerge/internal/core"
	"selfemerge/internal/scenario"
)

// benchCfg is the shared shape of the scenario throughput benchmarks: a
// 120-node live network under alpha=1 replacement churn and a 10% Sybil
// drop attack, 30 missions, joint 2x2 plan.
func benchCfg(missions, shards int) scenario.Config {
	return scenario.Config{
		Nodes:         120,
		MaliciousRate: 0.1,
		Drop:          true,
		Alpha:         1,
		Missions:      missions,
		Shards:        shards,
		Plan:          core.Plan{Scheme: core.SchemeJoint, K: 2, L: 2},
		MCTrials:      1, // live throughput, not reference accuracy
		Seed:          17,
	}
}

// BenchmarkScenarioMissions measures live-scenario throughput — a full
// 120-node churn + adversary network driving 30 concurrent missions through
// the real stack — and reports missions per second of wall time, the number
// that bounds how fast live figure curves can be generated per core. The
// baseline is recorded in BENCH_scenario.json at the repository root.
func BenchmarkScenarioMissions(b *testing.B) {
	const missions = 30
	cfg := benchCfg(missions, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scenario.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(missions*b.N)/b.Elapsed().Seconds(), "missions/sec")
}

// BenchmarkScenarioMissionsParallel is the sharded counterpart: the same
// point partitioned over GOMAXPROCS independent network replicas executed
// concurrently. The mission count scales with the shard count so every
// shard drives the same per-network load as the serial benchmark, making
// missions/sec directly comparable: on an S-core runner the sharded point
// should approach S times the serial number. Baselined next to the serial
// benchmark in BENCH_scenario.json.
func BenchmarkScenarioMissionsParallel(b *testing.B) {
	shards := runtime.GOMAXPROCS(0)
	missions := 30 * shards
	cfg := benchCfg(missions, shards)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scenario.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(missions*b.N)/b.Elapsed().Seconds(), "missions/sec")
	b.ReportMetric(float64(shards), "shards")
}
