package scenario

import (
	"runtime"
	"sync"
	"time"

	"selfemerge/internal/experiment"
	"selfemerge/internal/mc"
)

// Estimator measures experiment points by running live missions through the
// full protocol stack: the "live" leg of the unified experiment engine. Each
// point boots a private network (its own discrete-event simulator and simnet
// fabric), so the runner executes a whole live curve with one point per
// core. Matched Monte Carlo references are computed once per distinct
// environment and cached — points that share an environment (and, via the
// sweep's common-random-numbers seeding, a seed) share the reference.
//
// The zero value works; it uses the scenario defaults (100 missions, 2h
// emerging period, Missions-matched reference trials). Safe for concurrent
// use by the runner's workers.
type Estimator struct {
	// Missions is the number of live emergence trials per point (default
	// 100).
	Missions int
	// Emerging is the period T between dispatch and release (default 2h).
	Emerging time.Duration
	// Stagger spreads mission launches (default: one emerging period).
	Stagger time.Duration
	// Latency is the one-way simnet latency (default 5ms).
	Latency time.Duration
	// MCTrials sizes the Monte Carlo references (default: Missions, so the
	// Wilson agreement check reflects the live sampling noise).
	MCTrials int
	// ShareModel pins the key-share model of the matched references for
	// every point of the sweep (default: Config.ShareModel's resolution,
	// mc.ShareModelLive for key-share plans). Part of the reference cache
	// key, so pinned and unpinned sweeps never share entries.
	ShareModel mc.ShareModel
	// Shards partitions every point's missions across this many independent
	// network replicas, executed concurrently under the sweep-wide budget
	// (default 1). Part of each point's descriptor and reference cache key.
	Shards int
	// Partition runs every point's one population across this many parallel
	// event loops instead (the partition engine; mutually exclusive with
	// Shards > 1). A partitioned point occupies one budget slot and spreads
	// its shard loops over PartitionWorkers goroutines. Part of each point's
	// descriptor and reference cache key; per-point overrides come from the
	// sweep's partition axis.
	Partition int
	// PartitionWorkers caps concurrent partition shard loops per point (0 =
	// GOMAXPROCS). Execution throttle only.
	PartitionWorkers int
	// Concurrency caps how many shard event loops run at once across the
	// whole sweep (default GOMAXPROCS) — the shared budget between the
	// runner's point-level workers and the shards inside each point, so
	// Parallel x Shards goroutines never oversubscribe the cores. Execution
	// detail only: results are byte-identical for any value.
	Concurrency int

	budgetOnce sync.Once
	budget     *Budget

	mu   sync.Mutex
	refs map[string]*refEntry
}

// refEntry is a singleflight cache slot: the first point needing the
// reference computes it, concurrent points wait on the once.
type refEntry struct {
	once sync.Once
	res  mc.Result
	err  error
}

// Name implements experiment.Estimator.
func (e *Estimator) Name() string { return "live" }

// CheckPoint implements experiment.PointChecker: plan construction plus the
// scenario config validation, without booting a network.
func (e *Estimator) CheckPoint(pt experiment.Point) error {
	if err := pt.Validate(); err != nil {
		return err
	}
	cfg, err := e.config(pt)
	if err != nil {
		return err
	}
	_, err = cfg.withDefaults()
	return err
}

// config translates an experiment point into a scenario config.
func (e *Estimator) config(pt experiment.Point) (Config, error) {
	plan, err := pt.Plan()
	if err != nil {
		return Config{}, err
	}
	mcTrials := e.MCTrials
	if mcTrials == 0 {
		mcTrials = e.Missions
		if mcTrials == 0 {
			mcTrials = 100 // the scenario default mission count
		}
	}
	partition := e.Partition
	if pt.Partition > 0 {
		partition = pt.Partition // the sweep's partition axis overrides
	}
	return Config{
		Nodes:            pt.Network,
		MaliciousRate:    pt.P,
		Drop:             pt.Drop,
		Strategy:         pt.Strategy,
		Forge:            pt.Forge,
		Table:            pt.Table,
		Alpha:            pt.Alpha,
		Emerging:         e.Emerging,
		Missions:         e.Missions,
		Stagger:          e.Stagger,
		Plan:             plan,
		Replicas:         pt.Replicas,
		Latency:          e.Latency,
		MCTrials:         mcTrials,
		ShareModel:       e.ShareModel,
		Shards:           e.Shards,
		Budget:           e.sharedBudget(),
		Partition:        partition,
		PartitionWorkers: e.PartitionWorkers,
		Fault:            pt.Fault,
		FaultSeverity:    pt.FaultSev,
		Retry:            pt.Retry,
		Seed:             pt.Seed,
	}, nil
}

// sharedBudget lazily builds the sweep-wide shard concurrency budget.
func (e *Estimator) sharedBudget() *Budget {
	e.budgetOnce.Do(func() {
		slots := e.Concurrency
		if slots <= 0 {
			slots = runtime.GOMAXPROCS(0)
		}
		e.budget = NewBudget(slots)
	})
	return e.budget
}

// Estimate implements experiment.Estimator: the live measurement of Measure
// plus cached matched references and the AgreesWithMC cross-check.
func (e *Estimator) Estimate(pt experiment.Point) (experiment.Result, error) {
	if err := pt.Validate(); err != nil {
		return experiment.Result{}, err
	}
	cfg, err := e.config(pt)
	if err != nil {
		return experiment.Result{}, err
	}
	report, err := Measure(cfg)
	if err != nil {
		return experiment.Result{}, err
	}
	relRef, delRef := report.Config.References()
	if report.MC, err = e.reference(relRef); err != nil {
		return experiment.Result{}, err
	}
	report.MCDelivery = report.MC
	if !report.Config.Drop {
		if report.MCDelivery, err = e.reference(delRef); err != nil {
			return experiment.Result{}, err
		}
	}
	agreeRel, agreeDel := report.AgreesWithMC()

	live := report.Live
	return experiment.Result{
		Point:        pt,
		Plan:         report.Config.Plan,
		Samples:      live.Missions,
		Released:     live.Released,
		Delivered:    live.Delivered,
		Succeeded:    live.Succeeded,
		Rr:           live.Rr(),
		Rd:           live.Rd(),
		R:            live.R(),
		Cost:         report.Config.Plan.NodesRequired(),
		Predicted:    report.Predicted,
		HasReference: true,
		RefRelease:   report.MC,
		RefDeliver:   report.MCDelivery,
		AgreeRelease: agreeRel,
		AgreeDeliver: agreeDel,
		Deaths:       report.Deaths,
		Joins:        report.Joins,
		Retries:      report.Retries,
		Recovered:    report.Recovered,
		Duplicates:   report.Duplicates,
		Epochs:       report.Epochs,
		IdleSkips:    report.IdleSkips,
		MergeAllocs:  report.MergeAllocs,
		Elapsed:      report.Elapsed,
	}, nil
}

// reference returns the cached estimate for ref, computing it exactly once
// per distinct key across all concurrent points.
func (e *Estimator) reference(ref Reference) (mc.Result, error) {
	key := ref.Key()
	e.mu.Lock()
	if e.refs == nil {
		e.refs = make(map[string]*refEntry)
	}
	entry, ok := e.refs[key]
	if !ok {
		entry = &refEntry{}
		e.refs[key] = entry
	}
	e.mu.Unlock()
	entry.once.Do(func() { entry.res, entry.err = ref.Estimate() })
	return entry.res, entry.err
}
