package scenario_test

import (
	"testing"

	"selfemerge/internal/core"
	"selfemerge/internal/mc"
	"selfemerge/internal/scenario"
)

// TestReferenceShareModelResolution: key-share configs default their
// matched references to the live-faithful model, explicit pins win, and the
// other schemes stay on the engine default.
func TestReferenceShareModelResolution(t *testing.T) {
	share := scenario.Config{
		Nodes: 100, MaliciousRate: 0.1,
		Plan: core.Plan{Scheme: core.SchemeKeyShare, K: 2, L: 3, ShareN: 4, ShareM: []int{2, 2}},
	}
	release, deliver := share.References()
	if release.Env.ShareModel != mc.ShareModelLive || deliver.Env.ShareModel != mc.ShareModelLive {
		t.Errorf("key-share references default to %v/%v, want live/live",
			release.Env.ShareModel, deliver.Env.ShareModel)
	}

	share.ShareModel = mc.ShareModelQuota
	release, _ = share.References()
	if release.Env.ShareModel != mc.ShareModelQuota {
		t.Errorf("pinned quota model resolved to %v", release.Env.ShareModel)
	}

	joint := scenario.Config{
		Nodes: 100, MaliciousRate: 0.1,
		Plan: core.Plan{Scheme: core.SchemeJoint, K: 2, L: 2},
	}
	release, _ = joint.References()
	if release.Env.ShareModel != mc.ShareModelDefault {
		t.Errorf("joint reference carries share model %v", release.Env.ShareModel)
	}
}

// TestReferenceKeyReflectsShareModel: pinning a different share model must
// change the reference cache key, or pinned and unpinned sweeps would share
// cached estimates.
func TestReferenceKeyReflectsShareModel(t *testing.T) {
	cfg := scenario.Config{
		Nodes: 100, MaliciousRate: 0.1,
		Plan: core.Plan{Scheme: core.SchemeKeyShare, K: 2, L: 3, ShareN: 4, ShareM: []int{2, 2}},
	}
	liveRef, _ := cfg.References()
	cfg.ShareModel = mc.ShareModelBinomial
	binomRef, _ := cfg.References()
	if liveRef.Key() == binomRef.Key() {
		t.Errorf("share models live and binomial share a cache key: %s", liveRef.Key())
	}
	// Same model, same key: the cache must still coalesce equal references.
	again, _ := cfg.References()
	if binomRef.Key() != again.Key() {
		t.Errorf("equal references produced distinct keys:\n%s\n%s", binomRef.Key(), again.Key())
	}
}
