package scenario_test

import (
	"math"
	"testing"
	"time"

	"selfemerge/internal/core"
	"selfemerge/internal/mc"
	"selfemerge/internal/scenario"
)

// The cross-validation suite measures the paper's Rr/Rd quantities twice at
// the same experiment point — once by running live missions through the full
// protocol stack (simnet + Kademlia + protocol hosts, with churn and
// adversaries), once by sampling the abstract Monte Carlo model — and
// asserts statistical agreement. MCTrials is sized to the live mission count
// so the model's Wilson interval reflects at least the sampling noise the
// live measurement carries.
//
// Live/model agreement holds at the ~2% level for the central and multipath
// schemes against their shared model, and for the key share scheme against
// the live-faithful mc.ShareModelLive references (the coarse column-loss
// models miss both the nested-custody release exposure and the chained
// per-slot survival the executable protocol exhibits).

// run executes a scenario and logs its comparison table.
func run(t *testing.T, cfg scenario.Config) *scenario.Report {
	t.Helper()
	report, err := scenario.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("live Rr=%.3f Rd=%.3f | mc Rr=%.3f Rd=%.3f | %d deaths | wall %s",
		report.Live.Rr(), report.Live.Rd(), report.MC.Rr(), report.MCDelivery.Rd(),
		report.Deaths, report.Elapsed.Round(time.Millisecond))
	return report
}

// assertAgreement requires the live rates to fall inside the matched Monte
// Carlo estimate's 95% Wilson intervals.
func assertAgreement(t *testing.T, report *scenario.Report) {
	t.Helper()
	release, deliver := report.AgreesWithMC()
	if !release {
		lo, hi := report.MC.ReleaseCI()
		t.Errorf("live release rate %.3f outside MC 95%% Wilson interval [%.3f, %.3f]",
			1-report.Live.Rr(), lo, hi)
	}
	if !deliver {
		lo, hi := report.MCDelivery.DeliverCI()
		t.Errorf("live delivery rate %.3f outside MC 95%% Wilson interval [%.3f, %.3f]",
			report.Live.Rd(), lo, hi)
	}
}

func TestCrossValidateCentralChurn(t *testing.T) {
	report := run(t, scenario.Config{
		Nodes:         300,
		MaliciousRate: 0.2,
		Alpha:         1,
		Missions:      300,
		Plan:          core.Plan{Scheme: core.SchemeCentral, K: 1, L: 1},
		MCTrials:      300,
		Seed:          7,
	})
	assertAgreement(t, report)
}

func TestCrossValidateJointDropNoChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validation is slow")
	}
	report := run(t, scenario.Config{
		Nodes:         500,
		MaliciousRate: 0.15,
		Drop:          true,
		Missions:      200,
		Plan:          core.Plan{Scheme: core.SchemeJoint, K: 3, L: 2},
		MCTrials:      200,
		Seed:          7,
	})
	assertAgreement(t, report)
}

func TestCrossValidateJointPureChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validation is slow")
	}
	report := run(t, scenario.Config{
		Nodes:    500,
		Alpha:    1,
		Missions: 300,
		Plan:     core.Plan{Scheme: core.SchemeJoint, K: 3, L: 2},
		MCTrials: 5000,
		Seed:     7,
	})
	// No adversary: release-ahead must never happen, on either path.
	if report.Live.Released != 0 {
		t.Errorf("pure churn released %d missions early", report.Live.Released)
	}
	if rel := 1 - report.MC.Rr(); rel != 0 {
		t.Errorf("model released %.3f with zero malicious nodes", rel)
	}
	// Delivery: the precise model point must sit inside the live Wilson
	// interval (the live measurement is the noisier of the two here).
	lo, hi := report.Live.DeliverCI()
	if mcRd := report.MCDelivery.Rd(); mcRd < lo || mcRd > hi {
		t.Errorf("model delivery %.3f outside live 95%% Wilson interval [%.3f, %.3f]", mcRd, lo, hi)
	}
}

// Seed selection for the share-scheme cross-validations. A live share point
// carries network-level scatter on top of per-mission noise: all missions of
// one network share a zone map, so the effective Sybil fraction the share
// chain meets is a per-network random variable (measured at +-0.06 release
// rate across seeds at N=500, p=0.15). The rule for picking a seed is
// therefore two-sided: (1) the live rates must fall inside the matched
// reference's 95% Wilson interval — the assertAgreement bound every seed
// must clear — and (2) the candidate must not be a lucky outlier, checked by
// validating the same config across at least three seeds (PR 3 used {3, 6,
// 7} for the churn point and committed 6) and, where the test asserts it,
// by requiring the live rate within the scatter band of a high-precision
// live-model estimate. Sharding tightens, never loosens, this rule: a
// Shards=S point averages S independent zone maps, shrinking the
// network-level scatter roughly by sqrt(S), so the unsharded seeds remain
// valid for their unsharded tests (shards=1 leaves their streams untouched)
// and the sharded variant below re-validated seed 6 — along with 3 and 7 —
// under its S=5 shard streams before committing it.

// TestCrossValidateShareNoChurn cross-validates the key share scheme's
// release-ahead exposure: at p = 0.15 the live adversary recovers ~14% of
// missions at start time — twenty times the coarse column-loss model's
// prediction, because the column-1 slot onions nest the whole future share
// chain — and the live-faithful reference model must agree, in both
// directions. Delivery without churn or drop is lossless on both sides.
func TestCrossValidateShareNoChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validation is slow")
	}
	report := run(t, scenario.Config{
		Nodes:         500,
		MaliciousRate: 0.15,
		Missions:      300,
		Plan:          core.Plan{Scheme: core.SchemeKeyShare, K: 2, L: 3, ShareN: 5, ShareM: []int{2, 2}},
		MCTrials:      300,
		Seed:          5,
	})
	assertAgreement(t, report)
	if report.Live.Delivered != report.Live.Missions {
		t.Errorf("share scheme lost %d/%d missions without churn or drop",
			report.Live.Missions-report.Live.Delivered, report.Live.Missions)
	}
	// The release exposure is real and well-centered: the live rate sits
	// within the per-seed network-level scatter (+-0.06, measured across
	// seeds: the 300 missions of one run share a zone map, so their
	// effective Sybil rate is a network-level random variable) of a
	// high-precision live-model estimate, and far above the coarse quota
	// model's every-column-thresholds rate.
	precise, err := mc.Estimate(report.Config.Plan, mc.Env{
		Population: 500, Malicious: 75, ShareModel: mc.ShareModelLive,
	}, mc.Options{Trials: 50000, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	liveRel := 1 - report.Live.Rr()
	if preciseRel := 1 - precise.Rr(); math.Abs(liveRel-preciseRel) > 0.06 {
		t.Errorf("live release %.4f vs precise live-model %.4f: outside the network-level scatter band",
			liveRel, preciseRel)
	}
	quota, err := mc.Estimate(report.Config.Plan, mc.Env{
		Population: 500, Malicious: 75, ShareModel: mc.ShareModelQuota,
	}, mc.Options{Trials: 50000, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if liveRel < 5*(1-quota.Rr()) {
		t.Errorf("live release %.3f vs quota-model %.3f: nested-custody exposure vanished?",
			liveRel, 1-quota.Rr())
	}
}

// TestCrossValidateShareChurn is the churn cross-validation of the key
// share scheme: a 1000-node network at alpha = 1 under a 10% Sybil drop
// attack. Delivery is dominated by chained slot survival (the live model's
// refinement over per-column independence — the coarse models sit 15-30
// points too high here), and agreement must hold per-point in the Wilson
// sense for both release and delivery.
func TestCrossValidateShareChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validation is slow")
	}
	report := run(t, scenario.Config{
		Nodes:         1000,
		MaliciousRate: 0.1,
		Drop:          true,
		Alpha:         1,
		Missions:      250,
		Plan:          core.Plan{Scheme: core.SchemeKeyShare, K: 2, L: 3, ShareN: 5, ShareM: []int{2, 2}},
		MCTrials:      250,
		Seed:          6,
	})
	assertAgreement(t, report)
	// Churn really ran: alpha = 1 over the mission span kills the population
	// roughly twice, and every death was replaced.
	if report.Deaths < 1000 {
		t.Errorf("only %d deaths in a 1000-node alpha=1 scenario", report.Deaths)
	}
	if report.Joins != report.Deaths {
		t.Errorf("%d deaths but %d replacement joins", report.Deaths, report.Joins)
	}
	// The chained live model must beat the per-column models decisively: its
	// delivery estimate sits close to the live rate, the binomial ablation's
	// far above it.
	env := mc.Env{Population: 1000, Malicious: 100, Alpha: 1, ShareModel: mc.ShareModelLive}
	live, err := mc.Estimate(report.Config.Plan, env, mc.Options{Trials: 50000, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	env.ShareModel = mc.ShareModelBinomial
	binom, err := mc.Estimate(report.Config.Plan, env, mc.Options{Trials: 50000, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	liveRate := report.Live.Rd()
	if gapLive, gapBinom := math.Abs(liveRate-live.Rd()), math.Abs(liveRate-binom.Rd()); gapLive > gapBinom/2 {
		t.Errorf("chained model gap %.3f not clearly below per-column model gap %.3f", gapLive, gapBinom)
	}
}

// TestCrossValidateShareChurnSharded is the sharded replica of the share
// churn cross-validation: the same 1000-node alpha=1 drop-attack point, its
// 250 missions partitioned over 5 independent network replicas (50 missions
// and a private zone map each). Agreement must hold exactly as for the
// single-network point — the shards change which random streams are sampled,
// not what they estimate — and the shard fan-out itself must merge
// deterministically (covered structurally by the shard engine tests; here
// the statistical contract is on trial).
func TestCrossValidateShareChurnSharded(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validation is slow")
	}
	report := run(t, scenario.Config{
		Nodes:         1000,
		MaliciousRate: 0.1,
		Drop:          true,
		Alpha:         1,
		Missions:      250,
		Shards:        5,
		Plan:          core.Plan{Scheme: core.SchemeKeyShare, K: 2, L: 3, ShareN: 5, ShareM: []int{2, 2}},
		MCTrials:      250,
		Seed:          6, // re-validated across seeds {3, 6, 7} under S=5; see the seed rule above
	})
	assertAgreement(t, report)
	// Five populations of 1000 under alpha=1 churn: the merged death count
	// spans all shards, roughly 5x the single-network trajectory.
	if report.Deaths < 5000 {
		t.Errorf("only %d deaths across 5 sharded 1000-node alpha=1 networks", report.Deaths)
	}
	if report.Joins != report.Deaths {
		t.Errorf("%d deaths but %d replacement joins", report.Deaths, report.Joins)
	}
}

// TestThousandNodeLiveScenario is the headline cross-validation: a
// 1000-node live network under churn (alpha = 1) and a 10% Sybil drop
// attack, 250 concurrent missions, deterministic under its seed, finishing
// in well under a minute of wall time — with measured release and delivery
// rates inside the 95% Wilson intervals of the matched Monte Carlo
// estimate, in both directions.
func TestThousandNodeLiveScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validation is slow")
	}
	report := run(t, scenario.Config{
		Nodes:         1000,
		MaliciousRate: 0.1,
		Drop:          true,
		Alpha:         1,
		Missions:      250,
		Plan:          core.Plan{Scheme: core.SchemeJoint, K: 3, L: 2},
		MCTrials:      250,
		Seed:          6,
	})
	assertAgreement(t, report)

	// Churn really ran at scale: alpha=1 over the mission span kills the
	// population roughly twice (launch window + emerging period).
	if report.Deaths < 1000 {
		t.Errorf("only %d deaths in a 1000-node alpha=1 scenario", report.Deaths)
	}
	if report.Joins != report.Deaths {
		t.Errorf("%d deaths but %d replacement joins", report.Deaths, report.Joins)
	}

	// Reverse direction: a high-precision model estimate must fall inside
	// the live measurement's own Wilson intervals.
	precise, err := mc.Estimate(report.Config.Plan, mc.Env{
		Population: report.Config.Nodes,
		Malicious:  100,
		Alpha:      1,
	}, mc.Options{Trials: 50000, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	relLo, relHi := report.Live.ReleaseCI()
	if rel := 1 - precise.Rr(); rel < relLo || rel > relHi {
		t.Errorf("precise MC release %.4f outside live interval [%.3f, %.3f]", rel, relLo, relHi)
	}
	delLo, delHi := report.Live.DeliverCI()
	if del := precise.Rd(); del < delLo || del > delHi {
		t.Errorf("precise MC delivery %.4f outside live interval [%.3f, %.3f]", del, delLo, delHi)
	}

	if !raceEnabled && report.Elapsed > 60*time.Second {
		t.Errorf("1000-node scenario took %s, want < 60s", report.Elapsed)
	}
}
