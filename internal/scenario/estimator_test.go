package scenario_test

import (
	"bytes"
	"runtime"
	"testing"
	"time"

	"selfemerge/internal/core"
	"selfemerge/internal/experiment"
	"selfemerge/internal/fault"
	"selfemerge/internal/scenario"
)

// liveSweep is the headline live grid: the 1000-node churn + drop-attack
// configuration of TestThousandNodeLiveScenario, swept as a multi-point
// Rr/Rd curve through the full protocol stack.
func liveSweep() experiment.Sweep {
	return experiment.Sweep{
		Name: "live-test",
		Seed: 6,
		Base: experiment.Point{Network: 1000, Alpha: 1, Drop: true, K: 3, L: 2, Scheme: core.SchemeJoint},
		Axes: []experiment.Axis{experiment.RangeAxis("p", 0, 0.2, 0.1)},
	}
}

// TestLiveSweepAgreesWithMC is the sweep-level cross-validation: every point
// of a live curve must sit inside the 95% Wilson intervals of its matched
// (runner-cached) Monte Carlo references — the same check scenario.Run's
// AgreesWithMC applies to a single point.
func TestLiveSweepAgreesWithMC(t *testing.T) {
	if testing.Short() {
		t.Skip("live sweeps are slow")
	}
	est := &scenario.Estimator{Missions: 250}
	rs, err := experiment.Runner{Estimator: est}.Run(liveSweep())
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range rs.Results {
		if !res.HasReference {
			t.Fatalf("live point %d has no Monte Carlo reference", res.Point.Index)
		}
		if res.Samples != 250 || res.RefRelease.Trials != 250 {
			t.Errorf("point %d: %d missions vs %d reference trials, want 250/250",
				res.Point.Index, res.Samples, res.RefRelease.Trials)
		}
		if !res.AgreeRelease {
			t.Errorf("p=%.2f: live release rate %.3f outside MC Wilson interval (ref Rr %.3f)",
				res.Point.P, 1-res.Rr, res.RefRelease.Rr())
		}
		if !res.AgreeDeliver {
			t.Errorf("p=%.2f: live delivery rate %.3f outside MC Wilson interval (ref Rd %.3f)",
				res.Point.P, res.Rd, res.RefDeliver.Rd())
		}
	}
	// The p=0 point shares one environment between release and delivery
	// references under the drop attack — the cache must have coalesced them.
	first := rs.Results[0]
	if first.RefRelease != first.RefDeliver {
		t.Error("drop-attack references not shared between release and delivery")
	}
	// Resilience must not improve as the Sybil fraction grows.
	if rs.Results[0].Rr < rs.Results[2].Rr-0.05 {
		t.Errorf("Rr grew with p: %.3f at p=0 vs %.3f at p=0.2", rs.Results[0].Rr, rs.Results[2].Rr)
	}
}

// TestLiveSweepDeterministicAcrossWorkerCounts: each live point owns its
// private simulator and fabric — and with Shards > 1, several of them — so
// the emitted sweep must be byte-identical across every execution shape: the
// runner's worker count {1, 4} crossed with GOMAXPROCS {1, NumCPU}, plus a
// warm-pool repeat of the last shape in the same process. The repeat is the
// pooled-buffer regression check: the wire path recycles encode, delivery
// and event buffers through sync.Pools shared across goroutines, so a rerun
// over dirty pools (and any pool-stealing between concurrent shards) must
// still reproduce the cold-start bytes exactly. The scheme axis includes the
// key share scheme, exercising the live share path — just-in-time share
// scatter, oracle-validated threshold recovery, share re-grant repair, all
// through cloned custody of recycled delivery buffers — and its matched
// live-model references under all shapes; Shards=2 on the estimator makes
// every point fan out inside the worker pool through the shared concurrency
// budget. The fault axis adds a burst-loss arm with retry hardening on top
// of the clean arm: the fault engine's Gilbert–Elliott draws, the two-phase
// retry timers and the conditional fault columns of the emitters must all be
// byte-stable across the same execution shapes.
func TestLiveSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("live sweeps are slow")
	}
	est := func() *scenario.Estimator { return &scenario.Estimator{Missions: 30, Shards: 2} }
	sw := experiment.Sweep{
		Name: "live-det",
		Seed: 11,
		Base: experiment.Point{
			Network: 120, Alpha: 1, Drop: true,
			K: 2, L: 2, ShareN: 4, ShareM: []int{2}, Scheme: core.SchemeJoint,
			FaultSev: 0.5, Retry: 3,
		},
		Axes: []experiment.Axis{
			experiment.RangeAxis("p", 0, 0.2, 0.2),
			experiment.SchemeAxis(core.SchemeJoint, core.SchemeKeyShare),
			experiment.FaultAxis(fault.ProfileNone, fault.ProfileBurst),
		},
	}
	type shape struct{ gomaxprocs, parallel int }
	var shapes []shape
	for _, gmp := range []int{1, runtime.NumCPU()} {
		for _, parallel := range []int{1, 4} {
			shapes = append(shapes, shape{gmp, parallel})
		}
	}
	// Warm-pool repeat: the last shape again, over pools already populated
	// by every run before it.
	shapes = append(shapes, shapes[len(shapes)-1])
	var outputs [][]byte
	for _, sh := range shapes {
		prev := runtime.GOMAXPROCS(sh.gomaxprocs)
		rs, err := experiment.Runner{Estimator: est(), Parallel: sh.parallel}.Run(sw)
		runtime.GOMAXPROCS(prev)
		if err != nil {
			t.Fatal(err)
		}
		for _, res := range rs.Results {
			if !res.HasReference {
				t.Fatalf("live point %d (%s) has no Monte Carlo reference", res.Point.Index, res.Point.Series)
			}
		}
		var out bytes.Buffer
		if err := rs.WriteCSV(&out); err != nil {
			t.Fatal(err)
		}
		if err := rs.WriteJSON(&out); err != nil {
			t.Fatal(err)
		}
		outputs = append(outputs, out.Bytes())
	}
	for i := 1; i < len(outputs); i++ {
		if !bytes.Equal(outputs[0], outputs[i]) {
			t.Errorf("live sweep differs between shape %+v and %+v:\n%s\nvs:\n%s",
				shapes[0], shapes[i], outputs[0], outputs[i])
		}
	}
}

// TestLiveSweepWorkerScaling checks the tentpole's performance claim: a
// multi-point live sweep on >= 4 cores finishes in well under half the
// summed single-point wall times, because every point gets a private
// simulator and the runner spreads points over the cores.
func TestLiveSweepWorkerScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling measurement is slow")
	}
	if raceEnabled {
		t.Skip("wall-clock assertion unreliable under the race detector")
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("need >= 4 cores, have %d", runtime.GOMAXPROCS(0))
	}
	sw := experiment.Sweep{
		Name: "live-scaling",
		Seed: 3,
		Base: experiment.Point{Network: 250, Alpha: 1, Drop: true, K: 3, L: 2, Scheme: core.SchemeJoint},
		Axes: []experiment.Axis{experiment.RangeAxis("p", 0, 0.15, 0.05)},
	}

	// Sequential baseline: summed single-point wall times.
	seq, err := experiment.Runner{Estimator: &scenario.Estimator{Missions: 100}, Parallel: 1}.Run(sw)
	if err != nil {
		t.Fatal(err)
	}
	par, err := experiment.Runner{Estimator: &scenario.Estimator{Missions: 100}, Parallel: 4}.Run(sw)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("4 live points: sequential %s (summed %s), 4 workers %s",
		seq.Elapsed.Round(time.Millisecond), seq.PointElapsed.Round(time.Millisecond),
		par.Elapsed.Round(time.Millisecond))
	if par.Elapsed >= seq.PointElapsed*6/10 {
		t.Errorf("4-worker live sweep took %s, want < 0.6x the sequential sum %s",
			par.Elapsed, seq.PointElapsed)
	}
}
