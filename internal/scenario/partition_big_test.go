package scenario_test

import (
	"bytes"
	"os"
	"runtime"
	"testing"
	"time"

	"selfemerge/internal/core"
	"selfemerge/internal/experiment"
	"selfemerge/internal/scenario"
)

// TestPartitionHundredKByteIdentical is the acceptance run of the partition
// engine at scale: one population of 100,000 nodes split over 8 event
// loops, driven through a live mission sweep, with the emitted CSV and JSON
// compared byte-for-byte across GOMAXPROCS {1, NumCPU} and partition worker
// counts {1, 4}. Any schedule leak — a racy cross-shard merge, a
// worker-count-dependent event order, a non-deterministic report drain —
// shows up as a byte diff here. Gated behind EMERGE_BIG=1: it boots the
// 10^5-node network once per combination and wants minutes and GBs, not CI.
func TestPartitionHundredKByteIdentical(t *testing.T) {
	if os.Getenv("EMERGE_BIG") == "" {
		t.Skip("set EMERGE_BIG=1 to run the 100k-node partitioned determinism check")
	}

	axis, err := experiment.ParseAxis("p=0.1")
	if err != nil {
		t.Fatal(err)
	}
	sweep := experiment.Sweep{
		Name: "partition-100k",
		Seed: 7,
		Base: experiment.Point{
			Scheme:  core.SchemeJoint,
			Network: 100_000,
			K:       2, L: 2,
			Drop: true,
		},
		Axes: []experiment.Axis{axis},
	}

	emit := func(maxprocs, workers int) (string, string) {
		prev := runtime.GOMAXPROCS(maxprocs)
		defer runtime.GOMAXPROCS(prev)
		est := &scenario.Estimator{
			Missions:         6,
			Emerging:         time.Hour,
			MCTrials:         6,
			Partition:        8,
			PartitionWorkers: workers,
		}
		runner := experiment.Runner{Estimator: est, Parallel: 1}
		rs, err := runner.Run(sweep)
		if err != nil {
			t.Fatal(err)
		}
		var csv, json bytes.Buffer
		if err := rs.WriteCSV(&csv); err != nil {
			t.Fatal(err)
		}
		if err := rs.WriteJSON(&json); err != nil {
			t.Fatal(err)
		}
		return csv.String(), json.String()
	}

	type combo struct{ maxprocs, workers int }
	combos := []combo{{1, 1}, {1, 4}}
	if n := runtime.NumCPU(); n > 1 {
		combos = append(combos, combo{n, 1}, combo{n, 4})
	}
	refCSV, refJSON := emit(combos[0].maxprocs, combos[0].workers)
	if len(refCSV) == 0 || len(refJSON) == 0 {
		t.Fatal("empty emitted output")
	}
	for _, c := range combos[1:] {
		csv, json := emit(c.maxprocs, c.workers)
		if csv != refCSV {
			t.Errorf("CSV differs at GOMAXPROCS=%d workers=%d", c.maxprocs, c.workers)
		}
		if json != refJSON {
			t.Errorf("JSON differs at GOMAXPROCS=%d workers=%d", c.maxprocs, c.workers)
		}
	}
}
