package scenario

import (
	"runtime"
	"sync"
	"sync/atomic"

	"selfemerge/internal/stats"
)

// Budget caps how many shard event loops run at once across every scenario
// sharing it. The live estimator hands one budget (sized to the core count)
// to all points of a sweep, so the runner's point-level workers and the
// shards inside each point draw from a single concurrency pool instead of
// multiplying into oversubscription. It is purely an execution throttle:
// shard results are merged in fixed shard order, so any budget — including
// none — yields byte-identical results.
type Budget struct {
	sem chan struct{}
}

// NewBudget returns a budget with the given number of concurrent slots
// (minimum 1).
func NewBudget(slots int) *Budget {
	if slots < 1 {
		slots = 1
	}
	return &Budget{sem: make(chan struct{}, slots)}
}

func (b *Budget) acquire() { b.sem <- struct{}{} }
func (b *Budget) release() { <-b.sem }

// Slots reports the budget's concurrency capacity.
func (b *Budget) Slots() int { return cap(b.sem) }

// ShardSeed derives the seed of shard i from the point seed. Shard 0 keeps
// the point seed itself, so a one-shard point is byte-identical to the
// historical single-network run; higher shards draw decorrelated SplitMix64
// substreams. The derivation depends only on (seed, shard) — never on the
// shard count or any execution-time state — which is what makes the merged
// point result a pure function of its descriptor, and lets any single shard
// be re-run standalone as a Shards=1 config with this seed.
func ShardSeed(seed uint64, shard int) uint64 {
	if shard == 0 {
		return seed
	}
	return stats.Mix64(seed, uint64(shard))
}

// shardConfigs splits a defaulted config into its per-shard single-network
// configs: shard i runs Missions/Shards missions (the first Missions mod
// Shards shards carry one extra) through a private network seeded from
// substream i. Each shard staggers its own missions over the full launch
// window, so the point spans the same simulated time regardless of S.
func (c Config) shardConfigs() []Config {
	base, extra := c.Missions/c.Shards, c.Missions%c.Shards
	out := make([]Config, c.Shards)
	for i := range out {
		sc := c
		sc.Shards = 1
		sc.Budget = nil
		sc.Missions = base
		if i < extra {
			sc.Missions++
		}
		sc.Seed = ShardSeed(c.Seed, i)
		out[i] = sc
	}
	return out
}

// shardOutcome is one shard's complete contribution to the merged report.
type shardOutcome struct {
	res                        Result
	deaths, joins              int
	sent, recv, dropped        int
	retries, recov, dups       uint64
	epochs, idleSkips, mallocs uint64
	err                        error
}

// runShard executes the three live phases for one single-network shard
// config.
func runShard(cfg Config) shardOutcome {
	cfg, net, err := boot(cfg)
	if err != nil {
		return shardOutcome{err: err}
	}
	msgs, err := Drive(cfg, net)
	if err != nil {
		return shardOutcome{err: err}
	}
	out := shardOutcome{res: Score(cfg, net, msgs)}
	out.deaths, out.joins = net.ChurnEvents()
	out.sent, out.recv, out.dropped = net.FabricStats()
	rs := net.ResilienceStats()
	out.retries, out.recov, out.dups = rs.Retries, rs.Recovered, rs.Duplicates
	out.epochs, out.idleSkips, out.mallocs = net.LoopStats()
	return out
}

// measureShards runs every shard of the defaulted config — concurrently, up
// to the budget — and merges their outcomes in fixed shard order into the
// report. The goroutine schedule never leaks into the result: each shard is
// deterministic under its derived seed, and the merge order is the shard
// index, so the merged point is identical under GOMAXPROCS=1 and a full
// multi-core run.
//
// The spawn itself is bounded to the budget's slot count: min(S, slots)
// workers pull shard indices from a shared cursor, so a 1000-shard point on
// a sweep-wide 8-slot budget parks 8 goroutines on the semaphore instead of
// a thousand.
func measureShards(cfg Config, report *Report) error {
	budget := cfg.Budget
	if budget == nil {
		slots := cfg.Shards
		if max := runtime.GOMAXPROCS(0); slots > max {
			slots = max
		}
		budget = NewBudget(slots)
	}
	shards := cfg.shardConfigs()
	outs := make([]shardOutcome, len(shards))
	workers := budget.Slots()
	if workers > len(shards) {
		workers = len(shards)
	}
	var (
		cursor atomic.Int64
		wg     sync.WaitGroup
	)
	cursor.Store(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1))
				if i >= len(shards) {
					return
				}
				budget.acquire()
				outs[i] = runShard(shards[i])
				budget.release()
			}
		}()
	}
	wg.Wait()
	for _, out := range outs {
		if out.err != nil {
			return out.err
		}
		report.Live.Missions += out.res.Missions
		report.Live.Released += out.res.Released
		report.Live.Delivered += out.res.Delivered
		report.Live.Succeeded += out.res.Succeeded
		report.Deaths += out.deaths
		report.Joins += out.joins
		report.Sent += out.sent
		report.Recv += out.recv
		report.Dropped += out.dropped
		report.Retries += out.retries
		report.Recovered += out.recov
		report.Duplicates += out.dups
		report.Epochs += out.epochs
		report.IdleSkips += out.idleSkips
		report.MergeAllocs += out.mallocs
	}
	return nil
}
