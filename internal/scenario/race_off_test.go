//go:build !race

package scenario_test

// raceEnabled reports whether the race detector is active; wall-clock
// assertions are skipped under its instrumentation overhead.
const raceEnabled = false
