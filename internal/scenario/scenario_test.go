package scenario_test

import (
	"strings"
	"testing"
	"time"

	"selfemerge/internal/core"
	"selfemerge/internal/scenario"
)

// jointPlan is the small shape most engine tests drive.
var jointPlan = core.Plan{Scheme: core.SchemeJoint, K: 2, L: 2}

func TestScenarioDeterministic(t *testing.T) {
	cfg := scenario.Config{
		Nodes:         120,
		MaliciousRate: 0.2,
		Drop:          true,
		Alpha:         1,
		Missions:      30,
		Plan:          jointPlan,
		MCTrials:      40,
		Seed:          11,
	}
	a, err := scenario.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := scenario.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Live != b.Live {
		t.Errorf("live outcomes differ across identical runs: %+v vs %+v", a.Live, b.Live)
	}
	if a.Deaths != b.Deaths || a.Joins != b.Joins {
		t.Errorf("churn trajectories differ: %d/%d vs %d/%d deaths/joins",
			a.Deaths, a.Joins, b.Deaths, b.Joins)
	}
	if a.Sent != b.Sent || a.Recv != b.Recv || a.Dropped != b.Dropped {
		t.Errorf("fabric traffic differs: %d/%d/%d vs %d/%d/%d",
			a.Sent, a.Recv, a.Dropped, b.Sent, b.Recv, b.Dropped)
	}
}

func TestScenarioChurnKillsAndReplaces(t *testing.T) {
	report, err := scenario.Run(scenario.Config{
		Nodes:    120,
		Alpha:    1,
		Missions: 5,
		Plan:     jointPlan,
		MCTrials: 20,
		Seed:     12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Deaths == 0 {
		t.Fatal("alpha=1 churn produced no deaths")
	}
	if report.Joins != report.Deaths {
		t.Errorf("every death must be replaced: %d deaths, %d joins", report.Deaths, report.Joins)
	}
}

func TestScenarioCleanNetworkDeliversEverything(t *testing.T) {
	report, err := scenario.Run(scenario.Config{
		Nodes:    120,
		Missions: 30,
		Plan:     jointPlan,
		MCTrials: 20,
		Seed:     13,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Live.Delivered != report.Live.Missions {
		t.Errorf("honest static network delivered %d/%d", report.Live.Delivered, report.Live.Missions)
	}
	if report.Live.Released != 0 {
		t.Errorf("honest network released %d missions early", report.Live.Released)
	}
	if report.Deaths != 0 {
		t.Errorf("alpha=0 produced %d deaths", report.Deaths)
	}
}

func TestScenarioFullCompromise(t *testing.T) {
	// Every non-infrastructure node is a Sybil. Spies harvest all key
	// material at start time (release-ahead succeeds on every mission) but
	// forward faithfully; droppers additionally swallow every package.
	for _, drop := range []bool{false, true} {
		report, err := scenario.Run(scenario.Config{
			Nodes:         150,
			MaliciousRate: 1,
			Drop:          drop,
			Missions:      20,
			Plan:          jointPlan,
			MCTrials:      20,
			Seed:          14,
		})
		if err != nil {
			t.Fatal(err)
		}
		// The three infrastructure nodes stay honest even at rate 1, and a
		// mission whose slot lands on one of them can survive; allow a few.
		if report.Live.Released < report.Live.Missions-4 {
			t.Errorf("drop=%v: full compromise released only %d/%d", drop, report.Live.Released, report.Live.Missions)
		}
		wantDelivered := report.Live.Missions
		if drop {
			wantDelivered = 0
		}
		if report.Live.Delivered != wantDelivered {
			t.Errorf("drop=%v: delivered %d, want %d", drop, report.Live.Delivered, wantDelivered)
		}
	}
}

func TestScenarioValidation(t *testing.T) {
	bad := []scenario.Config{
		{Plan: jointPlan, Nodes: 5},
		{Plan: jointPlan, MaliciousRate: 1.5},
		{Plan: jointPlan, Alpha: -1},
		{Plan: jointPlan, Missions: -1},
		{Plan: core.Plan{Scheme: core.SchemeJoint}}, // invalid shape
	}
	for i, cfg := range bad {
		if _, err := scenario.Run(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestScenarioReportTable(t *testing.T) {
	report, err := scenario.Run(scenario.Config{
		Nodes:         120,
		MaliciousRate: 0.2,
		Alpha:         0.5,
		Missions:      10,
		Plan:          jointPlan,
		MCTrials:      20,
		Seed:          15,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := report.WriteTable(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"scenario joint", "live (10 missions)", "monte-carlo", "agreement"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestScenarioEmergingPeriodScalesChurn(t *testing.T) {
	// Only alpha should matter, not the absolute emerging period: a 30m
	// period at alpha=1 must see roughly the same death count as a 2h one.
	short, err := scenario.Run(scenario.Config{
		Nodes:    120,
		Alpha:    1,
		Emerging: 30 * time.Minute,
		Missions: 5,
		Plan:     jointPlan,
		MCTrials: 20,
		Seed:     16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if short.Deaths == 0 {
		t.Fatal("short emerging period at alpha=1 saw no churn")
	}
}
