package scenario

import (
	"fmt"
	"io"

	"selfemerge/internal/analytic"
	"selfemerge/internal/fault"
)

// WriteTable renders the report as an aligned ASCII table: the live
// measurement with its Wilson intervals next to the Monte Carlo estimate at
// the matched environment and the no-churn closed form.
func (r *Report) WriteTable(w io.Writer) error {
	cfg := r.Config
	attack := "spy"
	if cfg.Drop {
		attack = "drop"
	}
	if _, err := fmt.Fprintf(w,
		"scenario %s k=%d l=%d: N=%d p=%.3f alpha=%.2f attack=%s replicas=%d missions=%d shards=%d emerging=%s seed=%d\n",
		cfg.Plan.Scheme, cfg.Plan.K, cfg.Plan.L, cfg.Nodes, cfg.MaliciousRate,
		cfg.Alpha, attack, cfg.Replicas, cfg.Missions, cfg.Shards, cfg.Emerging, cfg.Seed); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w,
		"churn: %d deaths, %d joins; fabric: %d sent, %d delivered, %d dropped; wall %s\n",
		r.Deaths, r.Joins, r.Sent, r.Recv, r.Dropped, r.Elapsed.Round(1e6)); err != nil {
		return err
	}
	if cfg.Fault != fault.ProfileNone || cfg.Retry > 1 {
		if _, err := fmt.Fprintf(w,
			"fault: profile=%s severity=%.2f retry=%d; rpc: %d retries, %d recovered, %d duplicate deliveries\n",
			cfg.Fault, cfg.FaultSeverity, cfg.Retry, r.Retries, r.Recovered, r.Duplicates); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%-22s %-28s %s\n", "", "Rr (release resilience)", "Rd (delivery resilience)"); err != nil {
		return err
	}

	// Wilson intervals on the success probabilities, mapped to the
	// resilience convention (Rr = 1 - release rate).
	relLo, relHi := r.Live.ReleaseCI()
	delLo, delHi := r.Live.DeliverCI()
	if _, err := fmt.Fprintf(w, "%-22s %.3f [%.3f, %.3f]         %.3f [%.3f, %.3f]\n",
		fmt.Sprintf("live (%d missions)", r.Live.Missions),
		r.Live.Rr(), 1-relHi, 1-relLo, r.Live.Rd(), delLo, delHi); err != nil {
		return err
	}
	mrelLo, mrelHi := r.MC.ReleaseCI()
	mdelLo, mdelHi := r.MCDelivery.DeliverCI()
	if _, err := fmt.Fprintf(w, "%-22s %.3f [%.3f, %.3f]         %.3f [%.3f, %.3f]\n",
		fmt.Sprintf("monte-carlo (%d)", r.MC.Trials),
		r.MC.Rr(), 1-mrelHi, 1-mrelLo, r.MCDelivery.Rd(), mdelLo, mdelHi); err != nil {
		return err
	}
	if r.Predicted != (analytic.Resilience{}) {
		if _, err := fmt.Fprintf(w, "%-22s %.3f                        %.3f\n",
			"analytic (no churn)", r.Predicted.ReleaseAhead, r.Predicted.Drop); err != nil {
			return err
		}
	}
	relOK, delOK := r.AgreesWithMC()
	_, err := fmt.Fprintf(w, "agreement with monte-carlo 95%% Wilson interval: release=%v delivery=%v\n",
		relOK, delOK)
	return err
}
