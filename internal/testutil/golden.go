// Package testutil holds shared test helpers; it is imported only from
// _test files.
package testutil

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// update is registered once per test binary that imports this package:
// `go test -update` rewrites the golden files a test compares against.
var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

// Golden compares got against the golden file testdata/<name>, rewriting it
// instead when the -update flag is set.
func Golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden output\ngot:\n%s\nwant:\n%s", name, got, want)
	}
}
