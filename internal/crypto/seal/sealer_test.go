package seal_test

import (
	"bytes"
	"testing"

	"selfemerge/internal/crypto/seal"
	"selfemerge/internal/stats"
)

// TestSealerRoundTripProperty sweeps payload shapes through the cached
// Sealer under both randomness sources — crypto/rand and a seeded
// deterministic stream — asserting the package-level one-shot wrappers and
// the handle agree on round-trip behavior.
func TestSealerRoundTripProperty(t *testing.T) {
	sources := map[string]func() *seal.Sealer{
		"crypto/rand": func() *seal.Sealer {
			key, err := seal.NewKey()
			if err != nil {
				t.Fatal(err)
			}
			s, err := seal.NewSealer(key)
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
		"seeded": func() *seal.Sealer {
			stream := stats.NewByteStream(99)
			key, err := seal.NewKeyFrom(stream)
			if err != nil {
				t.Fatal(err)
			}
			s, err := seal.NewSealerRand(key, stream)
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
	}
	for name, mk := range sources {
		t.Run(name, func(t *testing.T) {
			s := mk()
			rng := stats.NewRNG(7)
			for trial := 0; trial < 64; trial++ {
				plaintext := make([]byte, 1+rng.Intn(512))
				for i := range plaintext {
					plaintext[i] = byte(rng.Uint64())
				}
				var aad []byte
				if rng.Bool(0.5) {
					aad = []byte("context")
				}
				box, err := s.Encrypt(plaintext, aad)
				if err != nil {
					t.Fatal(err)
				}
				if len(box) != len(plaintext)+seal.Overhead() {
					t.Fatalf("overhead mismatch: %d vs %d+%d", len(box), len(plaintext), seal.Overhead())
				}
				back, err := s.Decrypt(box, aad)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(back, plaintext) {
					t.Fatalf("round trip mutated payload (%d bytes)", len(plaintext))
				}
				// The one-shot package path opens the handle's output too.
				back, err = seal.Decrypt(s.Key(), box, aad)
				if err != nil || !bytes.Equal(back, plaintext) {
					t.Fatalf("package Decrypt disagreed with Sealer: %v", err)
				}
			}
		})
	}
}

// TestSealerSeededDeterministic asserts two sealers over equal seeded
// streams emit byte-identical ciphertexts — the property seeded live runs
// rely on — while crypto/rand sealers never repeat a nonce.
func TestSealerSeededDeterministic(t *testing.T) {
	build := func() *seal.Sealer {
		stream := stats.NewByteStream(1234)
		key, err := seal.NewKeyFrom(stream)
		if err != nil {
			t.Fatal(err)
		}
		s, err := seal.NewSealerRand(key, stream)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := build(), build()
	for i := 0; i < 8; i++ {
		boxA, err := a.Encrypt([]byte("deterministic payload"), nil)
		if err != nil {
			t.Fatal(err)
		}
		boxB, err := b.Encrypt([]byte("deterministic payload"), nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(boxA, boxB) {
			t.Fatalf("seal %d diverged under equal seeds", i)
		}
	}
}

// TestAppendEncryptPreservesPrefix asserts the append form writes after the
// existing bytes and produces a ciphertext Decrypt accepts.
func TestAppendEncryptPreservesPrefix(t *testing.T) {
	key, err := seal.NewKey()
	if err != nil {
		t.Fatal(err)
	}
	s, err := seal.NewSealer(key)
	if err != nil {
		t.Fatal(err)
	}
	prefix := []byte("header")
	out, err := s.AppendEncrypt(append([]byte(nil), prefix...), []byte("payload"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(out, prefix) {
		t.Fatalf("prefix clobbered: %x", out)
	}
	back, err := s.Decrypt(out[len(prefix):], nil)
	if err != nil || string(back) != "payload" {
		t.Fatalf("appended ciphertext failed to open: %v %q", err, back)
	}
}
