// Package seal provides the authenticated encryption used throughout the
// self-emerging data protocol: AES-256-GCM with random nonces. Onion layers,
// cloud payloads and the secret key envelope are all sealed with this
// package.
//
// The Sealer handle caches the expanded AES-GCM state for one key, so a
// mission that seals many layers (or many onions) under the same key pays
// the key schedule once; it also carries the nonce randomness source, which
// defaults to crypto/rand and can be a deterministic seeded stream
// (stats.ByteStream) for reproducible simulation runs. The package-level
// Encrypt/Decrypt are thin one-shot wrappers.
package seal

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"errors"
	"fmt"
	"io"
)

// KeySize is the size of a sealing key in bytes (AES-256).
const KeySize = 32

// ErrKeySize is returned when a key is not KeySize bytes long.
var ErrKeySize = errors.New("seal: key must be 32 bytes")

// ErrDecrypt is returned when authentication fails or the ciphertext is
// malformed. Callers must treat it as "wrong key or tampered data" without
// distinguishing the two.
var ErrDecrypt = errors.New("seal: message authentication failed")

// Key is a symmetric sealing key.
type Key [KeySize]byte

// NewKey generates a fresh random key from crypto/rand.
func NewKey() (Key, error) {
	return NewKeyFrom(nil)
}

// NewKeyFrom generates a fresh key from r (nil means crypto/rand).
func NewKeyFrom(r io.Reader) (Key, error) {
	if r == nil {
		r = rand.Reader //lint:allow detrand real deployments key from the OS CSPRNG; deterministic runs inject a seeded reader
	}
	var k Key
	if _, err := io.ReadFull(r, k[:]); err != nil {
		return Key{}, fmt.Errorf("seal: generating key: %w", err)
	}
	return k, nil
}

// KeyFromBytes copies a 32-byte slice into a Key.
func KeyFromBytes(b []byte) (Key, error) {
	var k Key
	if len(b) != KeySize {
		return Key{}, ErrKeySize
	}
	copy(k[:], b)
	return k, nil
}

// Bytes returns the key material as a fresh slice.
func (k Key) Bytes() []byte {
	out := make([]byte, KeySize)
	copy(out, k[:])
	return out
}

// Sealer is the cached cipher state for one key: the expanded AES-GCM AEAD
// plus the nonce randomness source. Reuse one Sealer for every seal/open
// under the same key instead of re-running the key schedule per call. Not
// safe for concurrent use when the nonce source is a deterministic stream.
type Sealer struct {
	key  Key
	aead cipher.AEAD
	rand io.Reader
}

// NewSealer builds the cached AEAD for k with crypto/rand nonces.
func NewSealer(k Key) (*Sealer, error) {
	return NewSealerRand(k, nil)
}

// NewSealerRand builds the cached AEAD for k drawing nonces from r (nil
// means crypto/rand).
func NewSealerRand(k Key, r io.Reader) (*Sealer, error) {
	aead, err := newAEAD(k)
	if err != nil {
		return nil, err
	}
	if r == nil {
		r = rand.Reader //lint:allow detrand real deployments key from the OS CSPRNG; deterministic runs inject a seeded reader
	}
	return &Sealer{key: k, aead: aead, rand: r}, nil
}

// Key returns the sealer's key.
func (s *Sealer) Key() Key { return s.key }

// Encrypt seals plaintext with optional additional authenticated data. The
// returned ciphertext embeds the nonce prefix.
func (s *Sealer) Encrypt(plaintext, aad []byte) ([]byte, error) {
	return s.AppendEncrypt(nil, plaintext, aad)
}

// AppendEncrypt seals plaintext and appends the ciphertext (nonce prefix
// included) to dst, returning the extended slice — the allocation-free form
// for callers that reuse a scratch buffer.
func (s *Sealer) AppendEncrypt(dst, plaintext, aad []byte) ([]byte, error) {
	nonceAt := len(dst)
	var pad [16]byte
	dst = append(dst, pad[:s.aead.NonceSize()]...)
	nonce := dst[nonceAt:]
	if _, err := io.ReadFull(s.rand, nonce); err != nil {
		return nil, fmt.Errorf("seal: generating nonce: %w", err)
	}
	return s.aead.Seal(dst, nonce, plaintext, aad), nil
}

// Decrypt opens a ciphertext produced by Encrypt/AppendEncrypt. It returns
// ErrDecrypt for any authentication failure.
func (s *Sealer) Decrypt(ciphertext, aad []byte) ([]byte, error) {
	if len(ciphertext) < s.aead.NonceSize() {
		return nil, ErrDecrypt
	}
	nonce, box := ciphertext[:s.aead.NonceSize()], ciphertext[s.aead.NonceSize():]
	plaintext, err := s.aead.Open(nil, nonce, box, aad)
	if err != nil {
		return nil, ErrDecrypt
	}
	return plaintext, nil
}

// Encrypt seals plaintext under k with optional additional authenticated
// data: a one-shot wrapper that builds the AEAD on the stack, seals once
// and discards the state. Callers sealing repeatedly under one key should
// hold a Sealer.
func Encrypt(k Key, plaintext, aad []byte) ([]byte, error) {
	aead, err := newAEAD(k)
	if err != nil {
		return nil, err
	}
	s := Sealer{key: k, aead: aead, rand: rand.Reader} //lint:allow detrand one-shot convenience path; deterministic callers use NewSealerRand
	return s.AppendEncrypt(nil, plaintext, aad)
}

// Decrypt opens a ciphertext produced by Encrypt. It returns ErrDecrypt for
// any authentication failure.
func Decrypt(k Key, ciphertext, aad []byte) ([]byte, error) {
	aead, err := newAEAD(k)
	if err != nil {
		return nil, err
	}
	s := Sealer{key: k, aead: aead, rand: rand.Reader} //lint:allow detrand Decrypt never draws from the reader; populated for struct symmetry
	return s.Decrypt(ciphertext, aad)
}

// Overhead is the ciphertext expansion of one Encrypt call (nonce + GCM tag).
func Overhead() int {
	return 12 + 16
}

func newAEAD(k Key) (cipher.AEAD, error) {
	block, err := aes.NewCipher(k[:])
	if err != nil {
		return nil, fmt.Errorf("seal: creating cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("seal: creating GCM: %w", err)
	}
	return aead, nil
}
