// Package seal provides the authenticated encryption used throughout the
// self-emerging data protocol: AES-256-GCM with random nonces. Onion layers,
// cloud payloads and the secret key envelope are all sealed with this
// package.
package seal

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"errors"
	"fmt"
	"io"
)

// KeySize is the size of a sealing key in bytes (AES-256).
const KeySize = 32

// ErrKeySize is returned when a key is not KeySize bytes long.
var ErrKeySize = errors.New("seal: key must be 32 bytes")

// ErrDecrypt is returned when authentication fails or the ciphertext is
// malformed. Callers must treat it as "wrong key or tampered data" without
// distinguishing the two.
var ErrDecrypt = errors.New("seal: message authentication failed")

// Key is a symmetric sealing key.
type Key [KeySize]byte

// NewKey generates a fresh random key from crypto/rand.
func NewKey() (Key, error) {
	var k Key
	if _, err := io.ReadFull(rand.Reader, k[:]); err != nil {
		return Key{}, fmt.Errorf("seal: generating key: %w", err)
	}
	return k, nil
}

// KeyFromBytes copies a 32-byte slice into a Key.
func KeyFromBytes(b []byte) (Key, error) {
	var k Key
	if len(b) != KeySize {
		return Key{}, ErrKeySize
	}
	copy(k[:], b)
	return k, nil
}

// Bytes returns the key material as a fresh slice.
func (k Key) Bytes() []byte {
	out := make([]byte, KeySize)
	copy(out, k[:])
	return out
}

// Encrypt seals plaintext under k with optional additional authenticated
// data. The returned ciphertext embeds the nonce prefix.
func Encrypt(k Key, plaintext, aad []byte) ([]byte, error) {
	aead, err := newAEAD(k)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, aead.NonceSize())
	if _, err := io.ReadFull(rand.Reader, nonce); err != nil {
		return nil, fmt.Errorf("seal: generating nonce: %w", err)
	}
	return aead.Seal(nonce, nonce, plaintext, aad), nil
}

// Decrypt opens a ciphertext produced by Encrypt. It returns ErrDecrypt for
// any authentication failure.
func Decrypt(k Key, ciphertext, aad []byte) ([]byte, error) {
	aead, err := newAEAD(k)
	if err != nil {
		return nil, err
	}
	if len(ciphertext) < aead.NonceSize() {
		return nil, ErrDecrypt
	}
	nonce, box := ciphertext[:aead.NonceSize()], ciphertext[aead.NonceSize():]
	plaintext, err := aead.Open(nil, nonce, box, aad)
	if err != nil {
		return nil, ErrDecrypt
	}
	return plaintext, nil
}

// Overhead is the ciphertext expansion of one Encrypt call (nonce + GCM tag).
func Overhead() int {
	return 12 + 16
}

func newAEAD(k Key) (cipher.AEAD, error) {
	block, err := aes.NewCipher(k[:])
	if err != nil {
		return nil, fmt.Errorf("seal: creating cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("seal: creating GCM: %w", err)
	}
	return aead, nil
}
