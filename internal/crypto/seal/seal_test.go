package seal

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	key, err := NewKey()
	if err != nil {
		t.Fatal(err)
	}
	for _, msg := range [][]byte{[]byte("x"), []byte("hello self-emerging world"), make([]byte, 4096)} {
		ct, err := Encrypt(key, msg, nil)
		if err != nil {
			t.Fatal(err)
		}
		pt, err := Decrypt(key, ct, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pt, msg) {
			t.Errorf("round trip mismatch for %d-byte message", len(msg))
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	key, err := NewKey()
	if err != nil {
		t.Fatal(err)
	}
	err = quick.Check(func(msg, aad []byte) bool {
		if len(msg) == 0 {
			msg = []byte{0}
		}
		ct, err := Encrypt(key, msg, aad)
		if err != nil {
			return false
		}
		pt, err := Decrypt(key, ct, aad)
		return err == nil && bytes.Equal(pt, msg)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestWrongKeyFails(t *testing.T) {
	k1, _ := NewKey()
	k2, _ := NewKey()
	ct, err := Encrypt(k1, []byte("secret"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decrypt(k2, ct, nil); err != ErrDecrypt {
		t.Errorf("wrong key: err = %v, want ErrDecrypt", err)
	}
}

func TestWrongAADFails(t *testing.T) {
	k, _ := NewKey()
	ct, err := Encrypt(k, []byte("secret"), []byte("context-a"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decrypt(k, ct, []byte("context-b")); err != ErrDecrypt {
		t.Errorf("wrong aad: err = %v, want ErrDecrypt", err)
	}
}

func TestTamperDetected(t *testing.T) {
	k, _ := NewKey()
	ct, err := Encrypt(k, []byte("secret"), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, idx := range []int{0, len(ct) / 2, len(ct) - 1} {
		mangled := append([]byte(nil), ct...)
		mangled[idx] ^= 0x01
		if _, err := Decrypt(k, mangled, nil); err != ErrDecrypt {
			t.Errorf("tamper at %d: err = %v, want ErrDecrypt", idx, err)
		}
	}
}

func TestTruncatedCiphertext(t *testing.T) {
	k, _ := NewKey()
	if _, err := Decrypt(k, []byte{1, 2, 3}, nil); err != ErrDecrypt {
		t.Errorf("short ciphertext: err = %v, want ErrDecrypt", err)
	}
	if _, err := Decrypt(k, nil, nil); err != ErrDecrypt {
		t.Errorf("nil ciphertext: err = %v, want ErrDecrypt", err)
	}
}

func TestNoncesDiffer(t *testing.T) {
	k, _ := NewKey()
	a, _ := Encrypt(k, []byte("same message"), nil)
	b, _ := Encrypt(k, []byte("same message"), nil)
	if bytes.Equal(a, b) {
		t.Error("two encryptions of the same message are identical (nonce reuse?)")
	}
}

func TestKeyFromBytes(t *testing.T) {
	raw := bytes.Repeat([]byte{7}, KeySize)
	k, err := KeyFromBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(k.Bytes(), raw) {
		t.Error("Bytes() mismatch")
	}
	if _, err := KeyFromBytes(raw[:31]); err != ErrKeySize {
		t.Errorf("short key err = %v", err)
	}
	// Bytes must be a copy.
	b := k.Bytes()
	b[0] = 99
	if k.Bytes()[0] == 99 {
		t.Error("Bytes() returned aliased memory")
	}
}

func TestOverheadMatchesReality(t *testing.T) {
	k, _ := NewKey()
	msg := []byte("12345")
	ct, _ := Encrypt(k, msg, nil)
	if got := len(ct) - len(msg); got != Overhead() {
		t.Errorf("overhead = %d, Overhead() = %d", got, Overhead())
	}
}

func TestKeysAreRandom(t *testing.T) {
	a, _ := NewKey()
	b, _ := NewKey()
	if a == b {
		t.Error("two generated keys are identical")
	}
}
