package onion

import (
	"bytes"
	"testing"
	"testing/quick"

	"selfemerge/internal/crypto/seal"
)

func mustKeys(t *testing.T, n int) []seal.Key {
	t.Helper()
	keys := make([]seal.Key, n)
	for i := range keys {
		k, err := seal.NewKey()
		if err != nil {
			t.Fatal(err)
		}
		keys[i] = k
	}
	return keys
}

func TestBuildPeelThreeLayers(t *testing.T) {
	keys := mustKeys(t, 3)
	layers := []Layer{
		{NextHops: [][]byte{[]byte("holder-1-2"), []byte("holder-2-2")}, Shares: [][]byte{[]byte("share-a")}},
		{NextHops: [][]byte{[]byte("holder-1-3")}, Shares: [][]byte{[]byte("share-b"), []byte("share-c")}},
		{Payload: []byte("the secret key")},
	}
	wrapped, err := Build(layers, keys)
	if err != nil {
		t.Fatal(err)
	}

	l0, err := Peel(keys[0], wrapped)
	if err != nil {
		t.Fatal(err)
	}
	if len(l0.NextHops) != 2 || string(l0.NextHops[0]) != "holder-1-2" {
		t.Errorf("layer 0 hops: %q", l0.NextHops)
	}
	if len(l0.Shares) != 1 || string(l0.Shares[0]) != "share-a" {
		t.Errorf("layer 0 shares: %q", l0.Shares)
	}
	if l0.Payload != nil {
		t.Errorf("layer 0 has payload %q", l0.Payload)
	}
	if l0.Rest == nil {
		t.Fatal("layer 0 missing rest")
	}

	l1, err := Peel(keys[1], l0.Rest)
	if err != nil {
		t.Fatal(err)
	}
	if len(l1.Shares) != 2 || string(l1.Shares[1]) != "share-c" {
		t.Errorf("layer 1 shares: %q", l1.Shares)
	}

	l2, err := Peel(keys[2], l1.Rest)
	if err != nil {
		t.Fatal(err)
	}
	if string(l2.Payload) != "the secret key" {
		t.Errorf("payload = %q", l2.Payload)
	}
	if l2.Rest != nil {
		t.Error("innermost layer has rest")
	}
}

func TestPeelOutOfOrderFails(t *testing.T) {
	keys := mustKeys(t, 2)
	wrapped, err := Build([]Layer{
		{NextHops: [][]byte{[]byte("n")}},
		{Payload: []byte("s")},
	}, keys)
	if err != nil {
		t.Fatal(err)
	}
	// The inner key must not open the outer layer: onion order is enforced.
	if _, err := Peel(keys[1], wrapped); err == nil {
		t.Error("inner key opened outer layer")
	}
}

func TestSingleLayer(t *testing.T) {
	keys := mustKeys(t, 1)
	wrapped, err := Build([]Layer{{Payload: []byte("direct")}}, keys)
	if err != nil {
		t.Fatal(err)
	}
	l, err := Peel(keys[0], wrapped)
	if err != nil {
		t.Fatal(err)
	}
	if string(l.Payload) != "direct" || l.Rest != nil {
		t.Errorf("layer = %+v", l)
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, nil); err != ErrNoLayers {
		t.Errorf("no layers: %v", err)
	}
	keys := mustKeys(t, 2)
	if _, err := Build([]Layer{{Payload: []byte("x")}}, keys); err == nil {
		t.Error("layer/key count mismatch accepted")
	}
}

func TestTamperedOnionRejected(t *testing.T) {
	keys := mustKeys(t, 2)
	wrapped, err := Build([]Layer{
		{NextHops: [][]byte{[]byte("n")}},
		{Payload: []byte("s")},
	}, keys)
	if err != nil {
		t.Fatal(err)
	}
	wrapped[len(wrapped)/2] ^= 1
	if _, err := Peel(keys[0], wrapped); err == nil {
		t.Error("tampered onion accepted")
	}
}

func TestEmptySections(t *testing.T) {
	keys := mustKeys(t, 1)
	wrapped, err := Build([]Layer{{NextHops: [][]byte{}, Shares: nil, Payload: []byte("p")}}, keys)
	if err != nil {
		t.Fatal(err)
	}
	l, err := Peel(keys[0], wrapped)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.NextHops) != 0 || len(l.Shares) != 0 {
		t.Errorf("expected empty sections: %+v", l)
	}
}

func TestRoundTripProperty(t *testing.T) {
	keys := mustKeys(t, 2)
	err := quick.Check(func(hopA, hopB, share, payload []byte) bool {
		if len(payload) == 0 {
			payload = []byte{1}
		}
		wrapped, err := Build([]Layer{
			{NextHops: [][]byte{hopA, hopB}, Shares: [][]byte{share}},
			{Payload: payload},
		}, keys)
		if err != nil {
			return false
		}
		l0, err := Peel(keys[0], wrapped)
		if err != nil || len(l0.NextHops) != 2 {
			return false
		}
		if !bytes.Equal(l0.NextHops[0], hopA) || !bytes.Equal(l0.NextHops[1], hopB) {
			return false
		}
		if len(l0.Shares) != 1 || !bytes.Equal(l0.Shares[0], share) {
			return false
		}
		l1, err := Peel(keys[1], l0.Rest)
		return err == nil && bytes.Equal(l1.Payload, payload)
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDecodeMalformed(t *testing.T) {
	for _, raw := range [][]byte{
		{},
		{0, 0, 0},
		{0xff, 0xff, 0xff, 0xff},
		{0, 0, 0, 1, 0, 0, 0, 200, 1},
	} {
		if _, err := decodeLayer(raw); err == nil {
			t.Errorf("decodeLayer(%v) accepted", raw)
		}
	}
}

func TestLayerSizeGrowth(t *testing.T) {
	// Each wrap adds only the seal overhead plus encoding; verify the onion
	// does not balloon (important for DHT message sizes).
	keys := mustKeys(t, 5)
	layers := make([]Layer, 5)
	for i := 0; i < 4; i++ {
		layers[i] = Layer{NextHops: [][]byte{make([]byte, 20)}}
	}
	layers[4] = Layer{Payload: make([]byte, 32)}
	wrapped, err := Build(layers, keys)
	if err != nil {
		t.Fatal(err)
	}
	// 5 seal overheads + 5 encodings (~50 bytes each) + payload + hops.
	if len(wrapped) > 1024 {
		t.Errorf("5-layer onion is %d bytes; expected well under 1 KiB", len(wrapped))
	}
}
