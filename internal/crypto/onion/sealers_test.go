package onion_test

import (
	"bytes"
	"testing"

	"selfemerge/internal/crypto/onion"
	"selfemerge/internal/crypto/seal"
	"selfemerge/internal/stats"
)

// buildFixture returns a 4-layer onion shape with hops, scattered shares
// and an innermost payload.
func buildFixture() []onion.Layer {
	layers := make([]onion.Layer, 4)
	for i := range layers {
		layers[i] = onion.Layer{
			NextHops: [][]byte{[]byte("hop-a"), []byte("hop-b")},
			Shares:   [][]byte{{0xC0, 1, 2, 3}},
		}
	}
	layers[len(layers)-1] = onion.Layer{Payload: []byte("the protected secret")}
	return layers
}

// TestBuildSealersRoundTrip peels a BuildSealers onion layer by layer under
// both randomness sources and checks every revealed field, proving the
// pooled-scratch build path and the classic Build agree semantically.
func TestBuildSealersRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name   string
		stream func() *stats.ByteStream // nil means crypto/rand
	}{
		{"crypto/rand", func() *stats.ByteStream { return nil }},
		{"seeded", func() *stats.ByteStream { return stats.NewByteStream(2024) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			layers := buildFixture()
			var rand *stats.ByteStream = tc.stream()
			keys := make([]seal.Key, len(layers))
			sealers := make([]*seal.Sealer, len(layers))
			for i := range keys {
				var err error
				if rand != nil {
					keys[i], err = seal.NewKeyFrom(rand)
				} else {
					keys[i], err = seal.NewKey()
				}
				if err != nil {
					t.Fatal(err)
				}
				if rand != nil {
					sealers[i], err = seal.NewSealerRand(keys[i], rand)
				} else {
					sealers[i], err = seal.NewSealer(keys[i])
				}
				if err != nil {
					t.Fatal(err)
				}
			}
			wrapped, err := onion.BuildSealers(layers, sealers)
			if err != nil {
				t.Fatal(err)
			}
			rest := wrapped
			for i := range layers {
				layer, err := onion.Peel(keys[i], rest)
				if err != nil {
					t.Fatalf("peeling layer %d: %v", i, err)
				}
				if len(layer.NextHops) != len(layers[i].NextHops) {
					t.Fatalf("layer %d: %d hops, want %d", i, len(layer.NextHops), len(layers[i].NextHops))
				}
				for j, hop := range layer.NextHops {
					if !bytes.Equal(hop, layers[i].NextHops[j]) {
						t.Fatalf("layer %d hop %d mutated", i, j)
					}
				}
				if len(layer.Shares) != len(layers[i].Shares) {
					t.Fatalf("layer %d: %d shares, want %d", i, len(layer.Shares), len(layers[i].Shares))
				}
				if i == len(layers)-1 {
					if string(layer.Payload) != "the protected secret" {
						t.Fatalf("innermost payload mutated: %q", layer.Payload)
					}
					if layer.Rest != nil {
						t.Fatal("innermost layer has a rest")
					}
				} else if layer.Rest == nil {
					t.Fatalf("layer %d lost its inner onion", i)
				}
				rest = layer.Rest
			}
		})
	}
}

// TestBuildSealersMatchesBuildSeeded asserts the pooled BuildSealers path
// and the classic Build wrapper emit byte-identical onions when their
// randomness is pinned to equal seeded streams.
func TestBuildSealersMatchesBuildSeeded(t *testing.T) {
	layers := buildFixture()
	keys := make([]seal.Key, len(layers))
	for i := range keys {
		keys[i] = seal.Key{byte(i + 1)}
	}
	wrap := func() []byte {
		stream := stats.NewByteStream(7)
		sealers := make([]*seal.Sealer, len(keys))
		for i, k := range keys {
			s, err := seal.NewSealerRand(k, stream)
			if err != nil {
				t.Fatal(err)
			}
			sealers[i] = s
		}
		wrapped, err := onion.BuildSealers(layers, sealers)
		if err != nil {
			t.Fatal(err)
		}
		return wrapped
	}
	first, second := wrap(), wrap()
	if !bytes.Equal(first, second) {
		t.Fatal("seeded BuildSealers is not deterministic")
	}
	// And the classic keyed Build (crypto/rand nonces) still opens with the
	// same keys: the two construction paths are interchangeable.
	classic, err := onion.Build(layers, keys)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := onion.Peel(keys[0], classic); err != nil {
		t.Fatal(err)
	}
	if _, err := onion.Peel(keys[0], first); err != nil {
		t.Fatal(err)
	}
}
