// Package onion builds and peels the layered packages the self-emerging key
// routing schemes transmit (Section III). Each layer is sealed with one
// layer key K_j; peeling reveals the next-hop addresses, any key-share
// payloads to scatter to the next holders, and the remaining (still sealed)
// inner onion. The innermost layer carries the protected secret.
//
// The package is transport- and DHT-agnostic: next hops and shares are
// opaque byte strings supplied by the protocol layer.
package onion

import (
	"encoding/binary"
	"errors"
	"fmt"

	"selfemerge/internal/crypto/seal"
)

// Layer describes the plaintext of one onion layer.
type Layer struct {
	// NextHops are opaque addresses of the holders the remaining onion (and
	// shares) must be forwarded to. Empty for the innermost layer.
	NextHops [][]byte
	// Shares are opaque key-share payloads revealed at this layer, to be
	// scattered one-per-next-column-holder by the key share routing scheme.
	Shares [][]byte
	// Payload is the protected secret, present only at the innermost layer.
	Payload []byte
	// Rest is the still-sealed inner onion to forward; nil at the innermost
	// layer. Populated by Peel, ignored by Build.
	Rest []byte
}

var (
	// ErrMalformed is returned when a peeled plaintext cannot be decoded.
	ErrMalformed = errors.New("onion: malformed layer")
	// ErrNoLayers is returned by Build when no layers are supplied.
	ErrNoLayers = errors.New("onion: at least one layer required")
)

const maxSection = 1 << 24 // sanity cap on any encoded field length

// Build wraps the given layers (outermost first) under the corresponding
// keys (keys[0] seals layers[0]). The innermost layer is layers[len-1].
// Build returns the fully wrapped onion ciphertext.
func Build(layers []Layer, keys []seal.Key) ([]byte, error) {
	if len(layers) == 0 {
		return nil, ErrNoLayers
	}
	if len(layers) != len(keys) {
		return nil, fmt.Errorf("onion: %d layers but %d keys", len(layers), len(keys))
	}
	var inner []byte
	for i := len(layers) - 1; i >= 0; i-- {
		layer := layers[i]
		layer.Rest = inner
		plain, err := encodeLayer(layer)
		if err != nil {
			return nil, err
		}
		sealed, err := seal.Encrypt(keys[i], plain, nil)
		if err != nil {
			return nil, fmt.Errorf("onion: sealing layer %d: %w", i, err)
		}
		inner = sealed
	}
	return inner, nil
}

// Peel removes the outermost layer of the onion with key, returning the
// revealed layer. Layer.Rest holds the remaining onion (nil at the
// innermost layer).
func Peel(key seal.Key, wrapped []byte) (Layer, error) {
	plain, err := seal.Decrypt(key, wrapped, nil)
	if err != nil {
		return Layer{}, fmt.Errorf("onion: %w", err)
	}
	return decodeLayer(plain)
}

func encodeLayer(l Layer) ([]byte, error) {
	size := 4 + 4 + 4 + len(l.Payload) + 4 + len(l.Rest)
	for _, h := range l.NextHops {
		size += 4 + len(h)
	}
	for _, s := range l.Shares {
		size += 4 + len(s)
	}
	buf := make([]byte, 0, size)
	var err error
	appendList := func(list [][]byte) {
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(list)))
		for _, item := range list {
			if len(item) > maxSection {
				err = fmt.Errorf("onion: section of %d bytes exceeds limit", len(item))
				return
			}
			buf = binary.BigEndian.AppendUint32(buf, uint32(len(item)))
			buf = append(buf, item...)
		}
	}
	appendList(l.NextHops)
	if err != nil {
		return nil, err
	}
	appendList(l.Shares)
	if err != nil {
		return nil, err
	}
	appendList([][]byte{l.Payload, l.Rest})
	if err != nil {
		return nil, err
	}
	return buf, nil
}

func decodeLayer(plain []byte) (Layer, error) {
	r := reader{buf: plain}
	hops, err := r.list()
	if err != nil {
		return Layer{}, err
	}
	shares, err := r.list()
	if err != nil {
		return Layer{}, err
	}
	tail, err := r.list()
	if err != nil {
		return Layer{}, err
	}
	if len(tail) != 2 || r.remaining() != 0 {
		return Layer{}, ErrMalformed
	}
	l := Layer{NextHops: hops, Shares: shares}
	if len(tail[0]) > 0 {
		l.Payload = tail[0]
	}
	if len(tail[1]) > 0 {
		l.Rest = tail[1]
	}
	return l, nil
}

type reader struct {
	buf []byte
	off int
}

func (r *reader) remaining() int { return len(r.buf) - r.off }

func (r *reader) uint32() (uint32, error) {
	if r.remaining() < 4 {
		return 0, ErrMalformed
	}
	v := binary.BigEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v, nil
}

func (r *reader) bytes(n int) ([]byte, error) {
	if n < 0 || n > maxSection || r.remaining() < n {
		return nil, ErrMalformed
	}
	out := r.buf[r.off : r.off+n]
	r.off += n
	return out, nil
}

func (r *reader) list() ([][]byte, error) {
	count, err := r.uint32()
	if err != nil {
		return nil, err
	}
	if int(count) > maxSection {
		return nil, ErrMalformed
	}
	out := make([][]byte, 0, count)
	for i := 0; i < int(count); i++ {
		n, err := r.uint32()
		if err != nil {
			return nil, err
		}
		item, err := r.bytes(int(n))
		if err != nil {
			return nil, err
		}
		out = append(out, item)
	}
	return out, nil
}
