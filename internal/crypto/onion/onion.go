// Package onion builds and peels the layered packages the self-emerging key
// routing schemes transmit (Section III). Each layer is sealed with one
// layer key K_j; peeling reveals the next-hop addresses, any key-share
// payloads to scatter to the next holders, and the remaining (still sealed)
// inner onion. The innermost layer carries the protected secret.
//
// The package is transport- and DHT-agnostic: next hops and shares are
// opaque byte strings supplied by the protocol layer.
package onion

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"selfemerge/internal/crypto/seal"
)

// Layer describes the plaintext of one onion layer.
type Layer struct {
	// NextHops are opaque addresses of the holders the remaining onion (and
	// shares) must be forwarded to. Empty for the innermost layer.
	NextHops [][]byte
	// Shares are opaque key-share payloads revealed at this layer, to be
	// scattered one-per-next-column-holder by the key share routing scheme.
	Shares [][]byte
	// Payload is the protected secret, present only at the innermost layer.
	Payload []byte
	// Rest is the still-sealed inner onion to forward; nil at the innermost
	// layer. Populated by Peel, ignored by Build.
	Rest []byte
}

var (
	// ErrMalformed is returned when a peeled plaintext cannot be decoded.
	ErrMalformed = errors.New("onion: malformed layer")
	// ErrNoLayers is returned by Build when no layers are supplied.
	ErrNoLayers = errors.New("onion: at least one layer required")
)

const maxSection = 1 << 24 // sanity cap on any encoded field length

// Build wraps the given layers (outermost first) under the corresponding
// keys (keys[0] seals layers[0]). The innermost layer is layers[len-1].
// Build returns the fully wrapped onion ciphertext. It is a one-shot
// wrapper around BuildSealers; callers wrapping several onions under the
// same keys should construct the sealers once.
func Build(layers []Layer, keys []seal.Key) ([]byte, error) {
	if len(layers) != len(keys) {
		return nil, fmt.Errorf("onion: %d layers but %d keys", len(layers), len(keys))
	}
	sealers := make([]*seal.Sealer, len(keys))
	for i, k := range keys {
		s, err := seal.NewSealer(k)
		if err != nil {
			return nil, err
		}
		sealers[i] = s
	}
	return BuildSealers(layers, sealers)
}

// buildBufs pools the two scratch buffers one Build needs (the plaintext
// layer encoding and the intermediate sealed onion).
var buildBufs = sync.Pool{New: func() any { return new(buildScratch) }}

type buildScratch struct{ plain, sealed []byte }

// BuildSealers is Build over pre-constructed Sealer handles: the AES key
// schedule for each layer key is paid once per Sealer, not once per onion,
// and nonce randomness comes from the sealers' source. Only the returned
// outermost ciphertext is freshly allocated; all intermediate layers run
// through pooled scratch buffers.
func BuildSealers(layers []Layer, sealers []*seal.Sealer) ([]byte, error) {
	if len(layers) == 0 {
		return nil, ErrNoLayers
	}
	if len(layers) != len(sealers) {
		return nil, fmt.Errorf("onion: %d layers but %d sealers", len(layers), len(sealers))
	}
	scratch := buildBufs.Get().(*buildScratch)
	defer buildBufs.Put(scratch)
	var inner []byte
	for i := len(layers) - 1; i >= 0; i-- {
		layer := layers[i]
		layer.Rest = inner
		plain, err := appendLayer(scratch.plain[:0], layer)
		if err != nil {
			return nil, err
		}
		scratch.plain = plain[:0]
		// The innermost iterations seal into the pooled scratch (the layer
		// encoding above has already copied the previous ciphertext out of
		// it); the outermost seals into a fresh slice the caller keeps.
		var dst []byte
		if i > 0 {
			dst = scratch.sealed[:0]
		}
		sealed, err := sealers[i].AppendEncrypt(dst, plain, nil)
		if err != nil {
			return nil, fmt.Errorf("onion: sealing layer %d: %w", i, err)
		}
		if i > 0 {
			scratch.sealed = sealed[:0]
		}
		inner = sealed
	}
	return inner, nil
}

// Peel removes the outermost layer of the onion with key, returning the
// revealed layer. Layer.Rest holds the remaining onion (nil at the
// innermost layer). It is a one-shot wrapper around PeelSealer; callers
// peeling repeatedly under the same key should construct the sealer once.
func Peel(key seal.Key, wrapped []byte) (Layer, error) {
	s, err := seal.NewSealer(key)
	if err != nil {
		return Layer{}, fmt.Errorf("onion: %w", err)
	}
	return PeelSealer(s, wrapped)
}

// PeelSealer is Peel over a pre-constructed Sealer handle: the AES-GCM key
// schedule is paid once per Sealer, not once per peel attempt. This is the
// peel-side twin of BuildSealers — a holder retrying the same granted key
// across advance rounds (or probing many candidate onions with it) reuses
// one cipher state instead of rebuilding it per call.
func PeelSealer(s *seal.Sealer, wrapped []byte) (Layer, error) {
	plain, err := s.Decrypt(wrapped, nil)
	if err != nil {
		return Layer{}, fmt.Errorf("onion: %w", err)
	}
	return decodeLayer(plain)
}

// appendLayer appends the wire form of one layer plaintext to buf.
func appendLayer(buf []byte, l Layer) ([]byte, error) {
	var err error
	appendItem := func(item []byte) {
		if len(item) > maxSection {
			err = fmt.Errorf("onion: section of %d bytes exceeds limit", len(item))
			return
		}
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(item)))
		buf = append(buf, item...)
	}
	appendList := func(list [][]byte) {
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(list)))
		for _, item := range list {
			appendItem(item)
			if err != nil {
				return
			}
		}
	}
	appendList(l.NextHops)
	if err != nil {
		return nil, err
	}
	appendList(l.Shares)
	if err != nil {
		return nil, err
	}
	// The payload/rest tail is a two-item list, appended without
	// materializing a [][]byte.
	buf = binary.BigEndian.AppendUint32(buf, 2)
	appendItem(l.Payload)
	if err != nil {
		return nil, err
	}
	appendItem(l.Rest)
	if err != nil {
		return nil, err
	}
	return buf, nil
}

func decodeLayer(plain []byte) (Layer, error) {
	r := reader{buf: plain}
	hops, err := r.list()
	if err != nil {
		return Layer{}, err
	}
	shares, err := r.list()
	if err != nil {
		return Layer{}, err
	}
	tail, err := r.list()
	if err != nil {
		return Layer{}, err
	}
	if len(tail) != 2 || r.remaining() != 0 {
		return Layer{}, ErrMalformed
	}
	l := Layer{NextHops: hops, Shares: shares}
	if len(tail[0]) > 0 {
		l.Payload = tail[0]
	}
	if len(tail[1]) > 0 {
		l.Rest = tail[1]
	}
	return l, nil
}

type reader struct {
	buf []byte
	off int
}

func (r *reader) remaining() int { return len(r.buf) - r.off }

func (r *reader) uint32() (uint32, error) {
	if r.remaining() < 4 {
		return 0, ErrMalformed
	}
	v := binary.BigEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v, nil
}

func (r *reader) bytes(n int) ([]byte, error) {
	if n < 0 || n > maxSection || r.remaining() < n {
		return nil, ErrMalformed
	}
	out := r.buf[r.off : r.off+n]
	r.off += n
	return out, nil
}

func (r *reader) list() ([][]byte, error) {
	count, err := r.uint32()
	if err != nil {
		return nil, err
	}
	if int(count) > maxSection {
		return nil, ErrMalformed
	}
	out := make([][]byte, 0, count)
	for i := 0; i < int(count); i++ {
		n, err := r.uint32()
		if err != nil {
			return nil, err
		}
		item, err := r.bytes(int(n))
		if err != nil {
			return nil, err
		}
		out = append(out, item)
	}
	return out, nil
}
