package onion

import (
	"bytes"
	"fmt"
	"testing"

	"selfemerge/internal/crypto/seal"
)

// buildTestOnion wraps depth layers, each carrying distinguishable hops and
// shares, with the secret payload at the innermost layer.
func buildTestOnion(t *testing.T, depth int) ([]Layer, []seal.Key, []byte) {
	t.Helper()
	layers := make([]Layer, depth)
	keys := make([]seal.Key, depth)
	for i := range layers {
		key, err := seal.NewKey()
		if err != nil {
			t.Fatal(err)
		}
		keys[i] = key
		layers[i] = Layer{
			NextHops: [][]byte{
				[]byte(fmt.Sprintf("hop-%d-a", i)),
				[]byte(fmt.Sprintf("hop-%d-b", i)),
			},
			Shares: [][]byte{[]byte(fmt.Sprintf("share-%d", i))},
		}
	}
	layers[depth-1].Payload = []byte("the protected secret")
	wrapped, err := Build(layers, keys)
	if err != nil {
		t.Fatal(err)
	}
	return layers, keys, wrapped
}

// TestPeelOrderMatchesWrapOrder peels onions of every depth in wrap order
// and checks each revealed layer matches what was built, with the payload
// appearing exactly at the innermost layer.
func TestPeelOrderMatchesWrapOrder(t *testing.T) {
	for depth := 1; depth <= 5; depth++ {
		layers, keys, wrapped := buildTestOnion(t, depth)
		rest := wrapped
		for i := 0; i < depth; i++ {
			layer, err := Peel(keys[i], rest)
			if err != nil {
				t.Fatalf("depth %d: peeling layer %d: %v", depth, i, err)
			}
			if len(layer.NextHops) != len(layers[i].NextHops) {
				t.Fatalf("depth %d layer %d: %d hops, want %d", depth, i, len(layer.NextHops), len(layers[i].NextHops))
			}
			for j, hop := range layer.NextHops {
				if !bytes.Equal(hop, layers[i].NextHops[j]) {
					t.Fatalf("depth %d layer %d hop %d mismatch", depth, i, j)
				}
			}
			for j, share := range layer.Shares {
				if !bytes.Equal(share, layers[i].Shares[j]) {
					t.Fatalf("depth %d layer %d share %d mismatch", depth, i, j)
				}
			}
			if i < depth-1 {
				if layer.Payload != nil {
					t.Fatalf("depth %d: payload leaked at outer layer %d", depth, i)
				}
				if layer.Rest == nil {
					t.Fatalf("depth %d: layer %d has no inner onion", depth, i)
				}
			} else {
				if !bytes.Equal(layer.Payload, []byte("the protected secret")) {
					t.Fatalf("depth %d: innermost payload = %q", depth, layer.Payload)
				}
				if layer.Rest != nil {
					t.Fatalf("depth %d: innermost layer still has an inner onion", depth)
				}
			}
			rest = layer.Rest
		}
	}
}

// TestEveryDepthStrictlyLayered verifies, at every depth, that no key other
// than the next wrap key opens the current outermost layer.
func TestEveryDepthStrictlyLayered(t *testing.T) {
	_, keys, wrapped := buildTestOnion(t, 5)
	rest := wrapped
	for i := 0; i < len(keys); i++ {
		for j, key := range keys {
			if j == i {
				continue
			}
			if _, err := Peel(key, rest); err == nil {
				t.Fatalf("key %d peeled layer %d", j, i)
			}
		}
		layer, err := Peel(keys[i], rest)
		if err != nil {
			t.Fatalf("peeling layer %d: %v", i, err)
		}
		rest = layer.Rest
	}
}
