package shamir

import (
	"bytes"
	"testing"
	"testing/quick"

	"selfemerge/internal/stats"
)

func TestSplitCombineRoundTrip(t *testing.T) {
	secret := []byte("the self-emerging key")
	tests := []struct{ m, n int }{
		{1, 1}, {1, 5}, {2, 3}, {3, 5}, {5, 5}, {10, 20},
	}
	for _, tc := range tests {
		shares, err := Split(secret, tc.m, tc.n)
		if err != nil {
			t.Fatalf("(%d,%d): %v", tc.m, tc.n, err)
		}
		if len(shares) != tc.n {
			t.Fatalf("(%d,%d): got %d shares", tc.m, tc.n, len(shares))
		}
		got, err := Combine(shares[:tc.m], tc.m)
		if err != nil {
			t.Fatalf("(%d,%d): combine: %v", tc.m, tc.n, err)
		}
		if !bytes.Equal(got, secret) {
			t.Errorf("(%d,%d): reconstruction mismatch", tc.m, tc.n)
		}
	}
}

func TestAnySubsetOfMReconstructs(t *testing.T) {
	secret := []byte{0x00, 0xff, 0x42, 0x13, 0x37}
	const m, n = 3, 6
	shares, err := Split(secret, m, n)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(5)
	for trial := 0; trial < 50; trial++ {
		idx := rng.SampleWithoutReplacement(n, m)
		subset := make([]Share, 0, m)
		for _, i := range idx {
			subset = append(subset, shares[i])
		}
		got, err := Combine(subset, m)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, secret) {
			t.Fatalf("subset %v failed to reconstruct", idx)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	rng := stats.NewRNG(11)
	err := quick.Check(func(secret []byte, seed uint64) bool {
		if len(secret) == 0 {
			secret = []byte{1}
		}
		n := int(seed%10) + 1
		m := int(seed/10%uint64(n)) + 1
		shares, err := Split(secret, m, n)
		if err != nil {
			return false
		}
		// Shuffle then take an arbitrary m-subset.
		rng.Shuffle(len(shares), func(i, j int) { shares[i], shares[j] = shares[j], shares[i] })
		got, err := Combine(shares[:m], m)
		return err == nil && bytes.Equal(got, secret)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestBelowThresholdRevealsNothing(t *testing.T) {
	// With threshold m, any m-1 shares are consistent with EVERY possible
	// secret: interpolating the m-1 shares plus a forged point (x=another
	// share id, arbitrary y) must always produce some valid polynomial. We
	// verify the weaker statistical property directly: reconstructing from
	// m-1 real shares plus one uniformly random fake share yields a
	// uniformly varying secret, not the true one.
	secret := []byte{0xAB}
	const m, n = 3, 5
	shares, err := Split(secret, m, n)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(17)
	hits := 0
	const trials = 512
	for i := 0; i < trials; i++ {
		fake := Share{X: shares[m-1].X, Data: []byte{byte(rng.Intn(256))}}
		got, err := Combine([]Share{shares[0], shares[1], fake}, m)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] == secret[0] {
			hits++
		}
	}
	// Expected ~trials/256 hits; far more would mean leakage.
	if hits > trials/256*4+4 {
		t.Errorf("secret recovered %d/%d times from m-1 shares; leakage", hits, trials)
	}
}

func TestSharesDiffer(t *testing.T) {
	shares, err := Split([]byte("payload"), 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range shares {
		for j := i + 1; j < len(shares); j++ {
			if shares[i].X == shares[j].X {
				t.Errorf("duplicate X %d", shares[i].X)
			}
		}
	}
}

func TestCombineErrors(t *testing.T) {
	shares, err := Split([]byte("s"), 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Combine(shares[:1], 2); err != ErrTooFewShares {
		t.Errorf("too few: %v", err)
	}
	dup := []Share{shares[0], shares[0]}
	if _, err := Combine(dup, 2); err != ErrShareMismatch {
		t.Errorf("duplicate: %v", err)
	}
	bad := []Share{shares[0], {X: shares[1].X, Data: []byte{1, 2}}}
	if _, err := Combine(bad, 2); err != ErrShareMismatch {
		t.Errorf("length mismatch: %v", err)
	}
	zero := []Share{shares[0], {X: 0, Data: []byte{1}}}
	if _, err := Combine(zero, 2); err != ErrShareMismatch {
		t.Errorf("zero X: %v", err)
	}
	if _, err := Combine(shares, 0); err != ErrThreshold {
		t.Errorf("zero threshold: %v", err)
	}
}

func TestSplitErrors(t *testing.T) {
	if _, err := Split([]byte("s"), 0, 3); err != ErrThreshold {
		t.Errorf("m=0: %v", err)
	}
	if _, err := Split([]byte("s"), 4, 3); err != ErrThreshold {
		t.Errorf("m>n: %v", err)
	}
	if _, err := Split([]byte("s"), 1, 256); err != ErrThreshold {
		t.Errorf("n=256: %v", err)
	}
	if _, err := Split(nil, 1, 2); err == nil {
		t.Error("empty secret accepted")
	}
}

func TestGFFieldAxioms(t *testing.T) {
	// Multiplicative inverse and associativity over random triples.
	err := quick.Check(func(a, b, c byte) bool {
		if mul(a, mul(b, c)) != mul(mul(a, b), c) {
			return false
		}
		if mul(a, b) != mul(b, a) {
			return false
		}
		// Distributivity over GF(2) addition (xor).
		if mul(a, b^c) != mul(a, b)^mul(a, c) {
			return false
		}
		if a != 0 && mul(a, inv(a)) != 1 {
			return false
		}
		return mul(a, 1) == a && mul(a, 0) == 0
	}, &quick.Config{MaxCount: 2000})
	if err != nil {
		t.Fatal(err)
	}
}
