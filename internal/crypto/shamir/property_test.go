package shamir

import (
	"bytes"
	"testing"
)

// TestSplitCombineAllThresholds sweeps every (n, m) threshold pair in a
// practical range and checks the scheme's defining invariants: any m of the
// n shares reconstruct the secret — regardless of which m and in any order —
// and m-1 shares do not.
func TestSplitCombineAllThresholds(t *testing.T) {
	secret := []byte("sixteen byte key")
	for n := 1; n <= 10; n++ {
		for m := 1; m <= n; m++ {
			shares, err := Split(secret, m, n)
			if err != nil {
				t.Fatalf("Split(m=%d, n=%d): %v", m, n, err)
			}
			if len(shares) != n {
				t.Fatalf("Split(m=%d, n=%d) returned %d shares", m, n, len(shares))
			}

			subsets := [][]Share{
				shares[:m],           // first m
				shares[n-m:],         // last m
				reversed(shares)[:m], // reversed order
			}
			for i, subset := range subsets {
				got, err := Combine(subset, m)
				if err != nil {
					t.Fatalf("Combine subset %d (m=%d, n=%d): %v", i, m, n, err)
				}
				if !bytes.Equal(got, secret) {
					t.Fatalf("subset %d (m=%d, n=%d) reconstructed %q", i, m, n, got)
				}
			}

			// Below the threshold the interpolation must not reveal the
			// secret (the polynomial coefficients are random, so an
			// accidental match over 16 bytes is negligible).
			if m >= 2 {
				got, err := Combine(shares[:m-1], m-1)
				if err != nil {
					t.Fatalf("Combine m-1 shares (m=%d, n=%d): %v", m, n, err)
				}
				if bytes.Equal(got, secret) {
					t.Fatalf("m-1=%d shares of an (m=%d, n=%d) split revealed the secret", m-1, m, n)
				}
			}
		}
	}
}

func reversed(shares []Share) []Share {
	out := make([]Share, len(shares))
	for i, s := range shares {
		out[len(shares)-1-i] = s
	}
	return out
}

func TestCombineRejectsZeroEvaluationPoint(t *testing.T) {
	shares, err := Split([]byte("secret"), 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	zero := []Share{shares[0], shares[1], {X: 0, Data: shares[2].Data}}
	if _, err := Combine(zero, 3); err == nil {
		t.Error("accepted the forbidden x=0 evaluation point")
	}
}
