package shamir

import (
	"bytes"
	"testing"

	"selfemerge/internal/stats"
)

// TestSplitRandSeededDeterministic asserts seeded splits are reproducible,
// distinct seeds diverge, and the batched-draw path still reconstructs.
func TestSplitRandSeededDeterministic(t *testing.T) {
	secret := []byte("thirty-two bytes of key material")
	split := func(seed uint64) []Share {
		shares, err := SplitRand(stats.NewByteStream(seed), secret, 3, 5)
		if err != nil {
			t.Fatal(err)
		}
		return shares
	}
	a, b := split(11), split(11)
	for i := range a {
		if a[i].X != b[i].X || !bytes.Equal(a[i].Data, b[i].Data) {
			t.Fatalf("share %d diverged under equal seeds", i)
		}
	}
	c := split(12)
	same := true
	for i := range a {
		if !bytes.Equal(a[i].Data, c[i].Data) {
			same = false
		}
	}
	if same {
		t.Fatal("distinct seeds produced identical share sets")
	}
	back, err := Combine(a[1:4], 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, secret) {
		t.Fatalf("seeded shares failed to reconstruct: %q", back)
	}
}

// TestSplitRandMatchesPerByteDraws pins the batched coefficient draw to the
// historical per-byte consumption order: splitting with a seeded stream
// equals splitting with the same stream drawn (m-1) bytes per position —
// so regenerated goldens are explainable, not incidental.
func TestSplitRandMatchesPerByteDraws(t *testing.T) {
	secret := []byte{0x42, 0x00, 0xFF, 0x17}
	const m, n = 4, 7
	got, err := SplitRand(stats.NewByteStream(5), secret, m, n)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: the historical loop, drawing per byte position.
	stream := stats.NewByteStream(5)
	coeffs := make([]byte, m-1)
	want := make([]Share, n)
	for j := range want {
		want[j] = Share{X: byte(j + 1), Data: make([]byte, len(secret))}
	}
	for i, b := range secret {
		if _, err := stream.Read(coeffs); err != nil {
			t.Fatal(err)
		}
		for j := range want {
			want[j].Data[i] = evalPoly(b, coeffs, want[j].X)
		}
	}
	for j := range want {
		if got[j].X != want[j].X || !bytes.Equal(got[j].Data, want[j].Data) {
			t.Fatalf("share %d: batched draw diverged from per-byte draws", j)
		}
	}
}
