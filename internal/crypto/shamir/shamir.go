// Package shamir implements Shamir's (m, n) threshold secret sharing over
// GF(2^8), the mechanism the key share routing scheme (Section III-D) uses
// to deliver onion layer keys just-in-time: a key split into n shares can be
// recovered from any m of them, tolerating up to n-m shares lost to churn or
// withheld by malicious holders, while m-1 shares reveal nothing.
//
// Each byte of the secret is shared independently with a random polynomial
// of degree m-1; share j carries the polynomial evaluations at x = j. The
// field is GF(2^8) with the AES reduction polynomial x^8+x^4+x^3+x+1.
package shamir

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
)

// Share is one fragment of a split secret. X identifies the evaluation
// point (1..n); Data holds one byte per secret byte.
type Share struct {
	X    byte
	Data []byte
}

var (
	// ErrThreshold is returned for invalid (m, n) parameters.
	ErrThreshold = errors.New("shamir: need 1 <= m <= n <= 255")
	// ErrTooFewShares is returned when fewer than m shares are combined.
	ErrTooFewShares = errors.New("shamir: not enough shares to reconstruct")
	// ErrShareMismatch is returned when shares disagree on length or carry
	// duplicate evaluation points.
	ErrShareMismatch = errors.New("shamir: inconsistent shares")
)

// Split shares secret into n shares with reconstruction threshold m,
// drawing the polynomial coefficients from crypto/rand. The secret may be
// any non-empty byte string.
func Split(secret []byte, m, n int) ([]Share, error) {
	return SplitRand(nil, secret, m, n)
}

// SplitRand is Split with an explicit randomness source (nil means
// crypto/rand): deterministic sharing under a seeded stream. The whole
// polynomial set — (m-1) coefficients for each of the len(secret) byte
// positions — is sampled in one batched draw, so splitting a 32-byte key
// costs one Read instead of one syscall per secret byte. The byte-to-
// coefficient mapping matches the historical per-byte draws exactly: the
// coefficients of position i are the next m-1 stream bytes.
func SplitRand(r io.Reader, secret []byte, m, n int) ([]Share, error) {
	if m < 1 || n < m || n > 255 {
		return nil, ErrThreshold
	}
	if len(secret) == 0 {
		return nil, errors.New("shamir: empty secret")
	}
	if r == nil {
		r = rand.Reader //lint:allow detrand real deployments key from the OS CSPRNG; deterministic runs inject a seeded reader
	}
	shares := make([]Share, n)
	data := make([]byte, n*len(secret)) // one backing array for all shares
	for j := range shares {
		shares[j] = Share{X: byte(j + 1), Data: data[j*len(secret) : (j+1)*len(secret) : (j+1)*len(secret)]}
	}
	coeffs := make([]byte, (m-1)*len(secret))
	if _, err := io.ReadFull(r, coeffs); err != nil {
		return nil, fmt.Errorf("shamir: sampling polynomial: %w", err)
	}
	for i, b := range secret {
		cs := coeffs[i*(m-1) : (i+1)*(m-1)]
		for j := range shares {
			shares[j].Data[i] = evalPoly(b, cs, shares[j].X)
		}
	}
	return shares, nil
}

// Combine reconstructs the secret from at least m distinct shares produced
// by Split with threshold m. Extra shares are fine; they are not verified
// against each other (Shamir sharing is not authenticated — the protocol
// seals shares inside authenticated onion layers instead).
func Combine(shares []Share, m int) ([]byte, error) {
	if m < 1 {
		return nil, ErrThreshold
	}
	if len(shares) < m {
		return nil, ErrTooFewShares
	}
	use := shares[:m]
	length := len(use[0].Data)
	seen := make(map[byte]bool, m)
	for _, s := range use {
		if len(s.Data) != length {
			return nil, ErrShareMismatch
		}
		if s.X == 0 || seen[s.X] {
			return nil, ErrShareMismatch
		}
		seen[s.X] = true
	}
	if length == 0 {
		return nil, ErrShareMismatch
	}

	// Lagrange interpolation at x = 0, per byte position. The basis factors
	// depend only on the share x-coordinates, so compute them once.
	basis := make([]byte, m)
	for j := range use {
		num, den := byte(1), byte(1)
		for i := range use {
			if i == j {
				continue
			}
			num = mul(num, use[i].X)          // (0 - x_i) == x_i in GF(2^8)
			den = mul(den, use[j].X^use[i].X) // (x_j - x_i)
		}
		basis[j] = mul(num, inv(den))
	}
	secret := make([]byte, length)
	for pos := 0; pos < length; pos++ {
		var acc byte
		for j := range use {
			acc ^= mul(use[j].Data[pos], basis[j])
		}
		secret[pos] = acc
	}
	return secret, nil
}

// evalPoly evaluates secret + c1*x + c2*x^2 + ... at x using Horner's rule.
func evalPoly(secret byte, coeffs []byte, x byte) byte {
	acc := byte(0)
	for i := len(coeffs) - 1; i >= 0; i-- {
		acc = mul(acc, x) ^ coeffs[i]
	}
	return mul(acc, x) ^ secret
}

// mul multiplies in GF(2^8) modulo x^8+x^4+x^3+x+1 (0x11b).
func mul(a, b byte) byte {
	var p byte
	for b > 0 {
		if b&1 == 1 {
			p ^= a
		}
		carry := a & 0x80
		a <<= 1
		if carry != 0 {
			a ^= 0x1b
		}
		b >>= 1
	}
	return p
}

// inv returns the multiplicative inverse in GF(2^8); inv(0) is 0 by
// convention (never reached by Combine, which rejects duplicate points).
func inv(a byte) byte {
	if a == 0 {
		return 0
	}
	// a^254 = a^-1 in GF(2^8) by Fermat's little theorem for GF(2^8)*.
	result := byte(1)
	base := a
	for exp := 254; exp > 0; exp >>= 1 {
		if exp&1 == 1 {
			result = mul(result, base)
		}
		base = mul(base, base)
	}
	return result
}
