package fault

import (
	"testing"
	"time"

	"selfemerge/internal/sim"
	"selfemerge/internal/transport"
	"selfemerge/internal/transport/simnet"
)

func TestParseProfileRoundTrip(t *testing.T) {
	for _, p := range []Profile{ProfileNone, ProfileBurst, ProfilePartition, ProfileFlap} {
		got, err := ParseProfile(p.String())
		if err != nil {
			t.Fatalf("ParseProfile(%q): %v", p.String(), err)
		}
		if got != p {
			t.Fatalf("ParseProfile(%q) = %v, want %v", p.String(), got, p)
		}
	}
	if _, err := ParseProfile("meteor"); err == nil {
		t.Fatal("ParseProfile accepted an unknown profile")
	}
	if p, err := ParseProfile(""); err != nil || p != ProfileNone {
		t.Fatalf("ParseProfile(\"\") = %v, %v; want none, nil", p, err)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{Severity: 1.5}).Validate(); err == nil {
		t.Fatal("severity 1.5 accepted")
	}
	if err := (Config{Severity: -0.1}).Validate(); err == nil {
		t.Fatal("severity -0.1 accepted")
	}
	if _, err := New(Config{Profile: ProfileBurst, Severity: 2}); err == nil {
		t.Fatal("New accepted severity 2")
	}
}

// TestBurstDeterminism: two engines with one seed produce identical verdict
// sequences; a different seed diverges.
func TestBurstDeterminism(t *testing.T) {
	mk := func(seed uint64) []simnet.Verdict {
		e, err := New(Config{Profile: ProfileBurst, Severity: 0.8, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		vs := make([]simnet.Verdict, 0, 500)
		now := time.Unix(0, 0)
		for i := 0; i < 500; i++ {
			vs = append(vs, e.Judge(now, "a", "b"))
		}
		return vs
	}
	a, b, c := mk(7), mk(7), mk(8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("verdict %d differs across same-seed engines: %+v vs %+v", i, a[i], b[i])
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 produced identical verdict sequences")
	}
}

// TestBurstInjectsFaults: at high severity the chain must actually drop,
// delay and duplicate something over a long window.
func TestBurstInjectsFaults(t *testing.T) {
	e, err := New(Config{Profile: ProfileBurst, Severity: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var drops, spikes, dups int
	now := time.Unix(0, 0)
	for i := 0; i < 5000; i++ {
		v := e.Judge(now, "a", "b")
		if v.Drop {
			drops++
		}
		if v.Extra > 0 {
			spikes++
		}
		if v.DupExtra > 0 {
			dups++
		}
	}
	if drops == 0 || spikes == 0 || dups == 0 {
		t.Fatalf("severity-1 burst injected nothing: drops=%d spikes=%d dups=%d", drops, spikes, dups)
	}
	if drops > 4000 {
		t.Fatalf("burst profile dropped %d/5000 — stationary loss too harsh", drops)
	}
}

// TestSeverityZeroNoOp: every profile at severity 0 returns the zero
// verdict and schedules no crashes.
func TestSeverityZeroNoOp(t *testing.T) {
	for _, p := range []Profile{ProfileBurst, ProfilePartition, ProfileFlap} {
		e, err := New(Config{Profile: p, Severity: 0, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		now := time.Unix(0, 0)
		for i := 0; i < 100; i++ {
			if v := e.Judge(now, "a", "b"); v != (simnet.Verdict{}) {
				t.Fatalf("%v at severity 0 returned %+v", p, v)
			}
		}
		s := sim.NewSimulator()
		stop := e.ManageCrashes(s, "a", func(bool) { t.Errorf("%v at severity 0 scheduled a crash", p) })
		s.RunFor(24 * time.Hour)
		stop()
	}
}

// TestPartitionWindows: the bisection drops cross-side traffic only during
// the blackout window, same-side traffic never, and the window is a pure
// function of time (identical across engines regardless of draw history).
func TestPartitionWindows(t *testing.T) {
	e, err := New(Config{Profile: ProfilePartition, Severity: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Find two addresses on opposite sides and two on the same side.
	var left, right transport.Addr
	for _, a := range []transport.Addr{"n0", "n1", "n2", "n3", "n4", "n5"} {
		if side(a) == 0 && left == "" {
			left = a
		}
		if side(a) == 1 && right == "" {
			right = a
		}
	}
	if left == "" || right == "" {
		t.Fatal("test addresses all hashed to one side")
	}
	inWindow := time.Unix(0, int64(e.blackout)/2)
	outWindow := time.Unix(0, int64(e.blackout)+int64(partitionPeriod-e.blackout)/2)
	if !e.Judge(inWindow, left, right).Drop {
		t.Fatal("cross-side message survived inside the blackout window")
	}
	if e.Judge(inWindow, left, left).Drop {
		t.Fatal("same-side message dropped inside the blackout window")
	}
	if e.Judge(outWindow, left, right).Drop {
		t.Fatal("cross-side message dropped outside the blackout window")
	}
	// Next period: the window recurs.
	if !e.Judge(inWindow.Add(partitionPeriod), left, right).Drop {
		t.Fatal("blackout window did not recur in the next period")
	}
}

// TestManageCrashesDeterministic: one address's crash schedule is a pure
// function of (seed, addr) — independent of wiring order and other nodes.
func TestManageCrashesDeterministic(t *testing.T) {
	run := func(wireOthersFirst bool) []time.Duration {
		e, err := New(Config{Profile: ProfileFlap, Severity: 0.7, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		s := sim.NewSimulator()
		if wireOthersFirst {
			for _, a := range []transport.Addr{"x", "y", "z"} {
				stop := e.ManageCrashes(s, a, func(bool) {})
				defer stop()
			}
		}
		var at []time.Duration
		start := s.Now()
		stop := e.ManageCrashes(s, "target", func(down bool) {
			at = append(at, s.Now().Sub(start))
		})
		defer stop()
		s.RunFor(time.Hour)
		return at
	}
	a, b := run(false), run(true)
	if len(a) == 0 {
		t.Fatal("flap profile scheduled no crash transitions in an hour")
	}
	if len(a) != len(b) {
		t.Fatalf("transition count depends on wiring order: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("transition %d at %v vs %v — schedule depends on wiring order", i, a[i], b[i])
		}
	}
}

// TestManageCrashesStop: after stop, no further transitions fire.
func TestManageCrashesStop(t *testing.T) {
	e, err := New(Config{Profile: ProfileFlap, Severity: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := sim.NewSimulator()
	n := 0
	stop := e.ManageCrashes(s, "a", func(bool) { n++ })
	s.RunFor(10 * time.Minute)
	if n == 0 {
		t.Fatal("no transitions before stop")
	}
	stop()
	before := n
	s.RunFor(10 * time.Minute)
	if n != before {
		t.Fatalf("transitions after stop: %d -> %d", before, n)
	}
}

// TestInjectorOnFabric: an engine wired into a simnet fabric perturbs
// delivery deterministically — two identical runs deliver identical
// counts, and a burst engine at full severity drops some messages.
func TestInjectorOnFabric(t *testing.T) {
	run := func() (sent, delivered, dropped int) {
		e, err := New(Config{Profile: ProfileBurst, Severity: 1, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		s := sim.NewSimulator()
		net := simnet.New(s, simnet.Config{BaseLatency: 5 * time.Millisecond, Seed: 4, Inject: e})
		a := net.Endpoint("a")
		b := net.Endpoint("b")
		b.SetHandler(func(transport.Addr, []byte) {})
		for i := 0; i < 200; i++ {
			i := i
			s.AfterFunc(time.Duration(i)*time.Millisecond, func() {
				if err := a.Send("b", []byte{byte(i)}); err != nil {
					t.Error(err)
				}
			})
		}
		s.RunFor(time.Second)
		return net.Stats()
	}
	s1, d1, x1 := run()
	s2, d2, x2 := run()
	if s1 != s2 || d1 != d2 || x1 != x2 {
		t.Fatalf("fabric stats differ across identical runs: (%d,%d,%d) vs (%d,%d,%d)", s1, d1, x1, s2, d2, x2)
	}
	if x1 == 0 {
		t.Fatal("severity-1 burst dropped nothing on the fabric")
	}
	if d1 <= 0 {
		t.Fatal("nothing delivered under burst profile")
	}
}
