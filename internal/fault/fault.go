// Package fault synthesizes correlated failure processes for the simulated
// network: Gilbert–Elliott burst loss, timed bisection partitions,
// latency-spike degraded links, message duplication, and crash-restart
// windows. The paper's failure model (Section II-C) is benign — independent
// per-message loss plus exponential churn — so these regimes sit outside
// the reference estimators by design; they exist to measure how far the
// protocol's resilience claims survive correlated faults, and what a retry
// layer buys back.
//
// Determinism: an Engine draws every decision from RNGs derived with
// stats.Mix64 substreams of its seed. Link verdicts (Judge) are serialized
// by the fabric's RNG lock and consumed in delivery order, which the
// single-loop simulator fixes; crash schedules use one substream per
// address, a pure function of the seed and the address, so wiring order
// cannot perturb them. A run with a fault engine is as byte-reproducible as
// one without.
package fault

import (
	"fmt"
	"time"

	"selfemerge/internal/sim"
	"selfemerge/internal/stats"
	"selfemerge/internal/transport"
	"selfemerge/internal/transport/simnet"
)

// Profile names a fault regime.
type Profile int

const (
	// ProfileNone injects nothing; the fabric's own loss/jitter model is
	// the only perturbation.
	ProfileNone Profile = iota
	// ProfileBurst drives a Gilbert–Elliott two-state loss chain over the
	// whole fabric: long good stretches with near-zero loss, punctuated by
	// bad bursts that drop most messages, spike latency, and occasionally
	// duplicate deliveries.
	ProfileBurst
	// ProfilePartition opens periodic bisection blackholes: addresses hash
	// onto two sides, and during a window every cross-side message vanishes.
	// The window function is pure in simulated time — no RNG draws — so the
	// schedule is identical on every run and every worker count.
	ProfilePartition
	// ProfileFlap crashes and restarts individual nodes: the endpoint goes
	// down for a sojourn and comes back with routing and custody state
	// intact — distinct from churn's permanent death and replacement.
	ProfileFlap
)

// String implements fmt.Stringer.
func (p Profile) String() string {
	switch p {
	case ProfileNone:
		return "none"
	case ProfileBurst:
		return "burst"
	case ProfilePartition:
		return "partition"
	case ProfileFlap:
		return "flap"
	default:
		return fmt.Sprintf("Profile(%d)", int(p))
	}
}

// ParseProfile parses a profile name as spelled by String.
func ParseProfile(s string) (Profile, error) {
	switch s {
	case "none", "":
		return ProfileNone, nil
	case "burst":
		return ProfileBurst, nil
	case "partition":
		return ProfilePartition, nil
	case "flap":
		return ProfileFlap, nil
	default:
		return ProfileNone, fmt.Errorf("fault: unknown profile %q (want none, burst, partition or flap)", s)
	}
}

// Config parameterizes an Engine.
type Config struct {
	// Profile selects the fault regime.
	Profile Profile
	// Severity in [0,1] scales the regime's intensity: burst frequency and
	// depth, partition duty cycle, crash frequency and outage length.
	// Severity 0 makes every profile a no-op.
	Severity float64
	// Seed seeds the engine's substreams.
	Seed uint64
}

// Validate rejects out-of-range configurations.
func (c Config) Validate() error {
	if c.Severity < 0 || c.Severity > 1 {
		return fmt.Errorf("fault: severity %g outside [0,1]", c.Severity)
	}
	return nil
}

// Substream labels for the engine's Mix64 derivations.
const (
	streamLink  = 0x114b // per-message link verdicts (burst chain)
	streamCrash = 0xc4a5 // base for per-address crash schedules
)

// Partition window geometry: a blackout of Severity*partitionDuty*period
// opens at the start of every period. The period is chosen long enough
// that a retry policy spanning a few seconds can bridge a window, and the
// duty ceiling keeps connectivity majority-up even at severity 1.
const (
	partitionPeriod = 8 * time.Second
	partitionDuty   = 0.5
)

// Engine realizes one fault schedule. It implements simnet.Injector; wire
// it with simnet.Config.Inject. Judge is serialized by the fabric's RNG
// lock; ManageCrashes runs on the simulator loop.
type Engine struct {
	cfg Config
	rng *stats.RNG // link-verdict substream (burst chain)
	bad bool       // Gilbert–Elliott chain state

	// Burst parameters, fixed at construction from Severity.
	pBad, pGood        float64 // per-message good→bad / bad→good transition
	lossBad, lossGood  float64 // drop probability per state
	dupRate            float64 // duplicate probability (undropped messages)
	spikeBad, spikeGood time.Duration // max extra delay in bad / good state

	blackout time.Duration // partition window length per period
}

// New builds an engine for the given schedule.
func New(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sev := cfg.Severity
	return &Engine{
		cfg:      cfg,
		rng:      stats.NewRNG(stats.Mix64(cfg.Seed, streamLink)),
		pBad:     0.05 * sev,
		pGood:    0.25,
		lossBad:  0.7 + 0.3*sev,
		lossGood: 0.01 * sev,
		dupRate:  0.04 * sev,
		spikeBad: time.Duration(sev * float64(60*time.Millisecond)),
		spikeGood: time.Duration(sev * float64(4*time.Millisecond)),
		blackout: time.Duration(sev * partitionDuty * float64(partitionPeriod)),
	}, nil
}

// Profile reports the engine's regime.
func (e *Engine) Profile() Profile { return e.cfg.Profile }

// side assigns an address to one half of the bisection: an FNV-1a hash
// finished with a SplitMix64 avalanche, so similar addresses still split.
func side(addr transport.Addr) int {
	h := uint64(14695981039346656037)
	for i := 0; i < len(addr); i++ {
		h ^= uint64(addr[i])
		h *= 1099511628211
	}
	return int(stats.Mix64(h, 0x51de) & 1)
}

// addrStream derives the per-address crash substream seed.
func addrStream(seed uint64, addr transport.Addr) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(addr); i++ {
		h ^= uint64(addr[i])
		h *= 1099511628211
	}
	return stats.Mix64(stats.Mix64(seed, streamCrash), h)
}

// Judge implements simnet.Injector: one verdict per in-flight datagram.
func (e *Engine) Judge(now time.Time, from, to transport.Addr) simnet.Verdict {
	if e.cfg.Severity == 0 {
		return simnet.Verdict{}
	}
	switch e.cfg.Profile {
	case ProfileBurst:
		return e.judgeBurst()
	case ProfilePartition:
		// Pure window function: no RNG draws, so the schedule cannot shift
		// with message volume.
		if e.blackout > 0 && now.UnixNano()%int64(partitionPeriod) < int64(e.blackout) && side(from) != side(to) {
			return simnet.Verdict{Drop: true}
		}
		return simnet.Verdict{}
	default:
		// ProfileFlap perturbs availability (ManageCrashes), not links.
		return simnet.Verdict{}
	}
}

// judgeBurst advances the Gilbert–Elliott chain one message and rules on it.
func (e *Engine) judgeBurst() simnet.Verdict {
	if e.bad {
		if e.rng.Bool(e.pGood) {
			e.bad = false
		}
	} else if e.rng.Bool(e.pBad) {
		e.bad = true
	}
	loss, spike := e.lossGood, e.spikeGood
	if e.bad {
		loss, spike = e.lossBad, e.spikeBad
	}
	if e.rng.Bool(loss) {
		return simnet.Verdict{Drop: true}
	}
	var v simnet.Verdict
	if spike > 0 {
		v.Extra = time.Duration(e.rng.Uint64n(uint64(spike)))
	}
	if e.dupRate > 0 && e.rng.Bool(e.dupRate) {
		// The copy trails the original by a fresh spike draw (plus 1 so the
		// two deliveries never share an instant): duplication doubles as a
		// reordering stressor for the dedup paths.
		v.DupExtra = 1 + time.Duration(e.rng.Uint64n(uint64(e.spikeBad+time.Millisecond)))
	}
	return v
}

// Crash sojourn scaling: mean uptime shrinks and mean outage grows with
// severity. Outages are bounded well below a holding period so a crashed
// custodian's share is stale, not lost, when it restarts.
const (
	crashUpFloor   = 60 * time.Second
	crashUpRange   = 240 * time.Second
	crashDownFloor = 1 * time.Second
	crashDownRange = 9 * time.Second
)

// ManageCrashes alternates setDown(true)/setDown(false) for one address
// with exponential up/down sojourns, starting up — the crash-restart
// regime of ProfileFlap. The schedule draws from a substream keyed by the
// address alone, so it is independent of wiring order and of every other
// node's schedule. For other profiles (or severity 0) it is a no-op
// returning a no-op stop. Call stop when the node is decommissioned for
// real (churn death): a crash is transient and keeps node state, so it
// must not outlive the node.
func (e *Engine) ManageCrashes(clock sim.Clock, addr transport.Addr, setDown func(bool)) (stop func()) {
	if e.cfg.Profile != ProfileFlap || e.cfg.Severity == 0 {
		return func() {}
	}
	sev := e.cfg.Severity
	upMean := float64(crashUpFloor) + (1-sev)*float64(crashUpRange)
	downMean := float64(crashDownFloor) + sev*float64(crashDownRange)
	rng := stats.NewRNG(addrStream(e.cfg.Seed, addr))
	stopped := false
	var timer sim.Timer
	var crash, restart func()
	crash = func() {
		if stopped {
			return
		}
		setDown(true)
		timer = clock.AfterFunc(time.Duration(rng.Exp(downMean)), restart)
	}
	restart = func() {
		if stopped {
			return
		}
		setDown(false)
		timer = clock.AfterFunc(time.Duration(rng.Exp(upMean)), crash)
	}
	timer = clock.AfterFunc(time.Duration(rng.Exp(upMean)), crash)
	return func() {
		stopped = true
		if timer != nil {
			timer.Stop()
		}
	}
}
