package mc

import (
	"fmt"
	"math"

	"selfemerge/internal/core"
	"selfemerge/internal/stats"
)

// Outcome is the result of one simulated emergence attempt under attack and
// (optionally) churn.
type Outcome struct {
	// Released reports a successful release-ahead attack: the adversary
	// gathered every onion layer key (and the entry package) and could
	// restore the secret key at start time ts.
	Released bool
	// Delivered reports that the secret key emerged at release time tr:
	// no drop attack or churn loss broke every path.
	Delivered bool
}

// ShareModel selects how the key-share scheme's trials sample churn losses
// and release-ahead exposure. The zero value defers to the paper's model, so
// existing callers (and the figure goldens) are unaffected.
type ShareModel uint8

const (
	// ShareModelDefault leaves the choice to the caller's context; the mc
	// engine itself resolves it to ShareModelQuota, the paper's model.
	// internal/scenario's matched references resolve it to ShareModelLive for
	// key-share plans, because that is what the executable protocol does.
	ShareModelDefault ShareModel = iota
	// ShareModelQuota is the paper's model: each column loses exactly
	// d = floor(pdead*n) shares per holding period — the same quantity
	// Algorithm 1 plans its thresholds against — and every column's carrier
	// set is sampled independently.
	ShareModelQuota
	// ShareModelBinomial replaces the deterministic per-column quota with
	// independent per-carrier exponential deaths, still with per-column
	// independence. The added death-count variance is not budgeted by
	// Algorithm 1's thresholds and visibly lowers the small-n (Figure 8, 100
	// available nodes) curves; exposed for the ablation benchmarks.
	ShareModelBinomial
	// ShareModelLive mirrors the executable protocol (internal/protocol)
	// closely enough to cross-validate against live scenario runs:
	//
	//   - Deaths are independent per carrier (as under exponential churn),
	//     and a slot's carrier chain must survive *cumulatively*: the slot
	//     onion of carrier (c, s) travels only down slot s, so one dead or
	//     withholding ancestor kills the whole chain — per-column
	//     independence, the coarse models' optimism, is gone.
	//   - The main onion fans out to every carrier of the next column, so it
	//     survives a column when any carrier there is honest and alive (and
	//     the column key's share threshold was met one hop earlier).
	//   - Release-ahead follows the nested-custody reality: the column-1
	//     slot onions hold the entire future share chain, sealed under slot
	//     keys whose shares ride in the same column, so an adversary with at
	//     least max(m) malicious column-1 carriers — one of them a main
	//     holder — unwraps everything at start time. Later columns add no
	//     release opportunities before the scoring cutoff at ts + th.
	ShareModelLive
)

// ParseShareModel parses a share model name: default, quota (the paper's
// column-loss model), binomial (the per-carrier ablation) or live (the
// protocol-faithful chained model).
func ParseShareModel(s string) (ShareModel, error) {
	switch s {
	case "", "default":
		return ShareModelDefault, nil
	case "quota":
		return ShareModelQuota, nil
	case "binomial":
		return ShareModelBinomial, nil
	case "live":
		return ShareModelLive, nil
	default:
		return 0, fmt.Errorf("mc: unknown share model %q (want default|quota|binomial|live)", s)
	}
}

// String names the model.
func (m ShareModel) String() string {
	switch m {
	case ShareModelDefault:
		return "default"
	case ShareModelQuota:
		return "quota"
	case ShareModelBinomial:
		return "binomial"
	case ShareModelLive:
		return "live"
	default:
		return fmt.Sprintf("ShareModel(%d)", uint8(m))
	}
}

// Env describes the simulated environment of one experiment point.
type Env struct {
	// Population is the DHT network size N (10,000 in most of the paper's
	// experiments, 100 in Figure 6(c)/(d)).
	Population int
	// Malicious is the number of Sybil-controlled nodes, floor(p*N).
	Malicious int
	// Alpha is the churn severity T/tlife: the emerging period expressed in
	// mean node lifetimes. Zero disables churn (Figure 6's setting).
	Alpha float64
	// ShareModel selects the key-share scheme's churn-loss and
	// release-exposure model; ignored by the other schemes.
	ShareModel ShareModel
}

// Validate checks the environment parameters.
func (e Env) Validate() error {
	if e.Population < 1 {
		return fmt.Errorf("mc: population %d must be >= 1", e.Population)
	}
	if e.Malicious < 0 || e.Malicious > e.Population {
		return fmt.Errorf("mc: malicious count %d outside [0, %d]", e.Malicious, e.Population)
	}
	if e.Alpha < 0 || math.IsNaN(e.Alpha) {
		return fmt.Errorf("mc: alpha %v must be >= 0", e.Alpha)
	}
	if e.ShareModel > ShareModelLive {
		return fmt.Errorf("mc: unknown share model %d", e.ShareModel)
	}
	return nil
}

// RunTrial simulates one emergence attempt of the given plan in env using
// rng, and returns the attack outcome. It is deterministic given the RNG
// state.
func RunTrial(plan core.Plan, env Env, rng *stats.RNG) Outcome {
	sampler := newMaliciousSampler(rng, env.Population, env.Malicious)
	// Per-holding-period death probability: the decay model of Bhagwan et
	// al. adopted by the paper, q = 1 - exp(-th/lambda) with th = T/l, i.e.
	// q = 1 - exp(-alpha/l).
	q := 0.0
	if env.Alpha > 0 {
		q = 1 - math.Exp(-env.Alpha/float64(plan.L))
	}
	switch plan.Scheme {
	case core.SchemeCentral:
		return centralTrial(env, sampler, rng)
	case core.SchemeDisjoint:
		return multipathTrial(plan, false, q, sampler, rng)
	case core.SchemeJoint:
		return multipathTrial(plan, true, q, sampler, rng)
	case core.SchemeKeyShare:
		if env.ShareModel == ShareModelLive {
			return shareLiveTrial(plan, q, sampler, rng)
		}
		return shareTrial(plan, q, env.ShareModel == ShareModelBinomial, sampler, rng)
	default:
		panic(fmt.Sprintf("mc: unknown scheme %v", plan.Scheme))
	}
}

// centralTrial: one node keeps the key for the whole emerging period. A
// malicious node can both read the key at ts and withhold it at tr; under
// churn the node must additionally survive the full period T = alpha
// lifetimes, and its death loses the key (a single node has no replica to
// repair from).
func centralTrial(env Env, sampler *maliciousSampler, rng *stats.RNG) Outcome {
	malicious := sampler.Draw()
	survives := true
	if env.Alpha > 0 {
		survives = rng.Float64() < math.Exp(-env.Alpha)
	}
	return Outcome{
		Released:  malicious,
		Delivered: !malicious && survives,
	}
}

// multipathTrial simulates the node-disjoint (joint=false) and node-joint
// (joint=true) schemes, including the churn-repair dynamics of Section II-C:
// a column's layer key lives on its k holders from ts until the onion
// arrives; each holding period every holder dies with probability q; dead
// holders are replaced by fresh DHT nodes that receive the key from a
// surviving replica (one more chance to be malicious); if an entire column
// dies within one period the layer key is lost forever.
func multipathTrial(plan core.Plan, joint bool, q float64, sampler *maliciousSampler, rng *stats.RNG) Outcome {
	k, l := plan.K, plan.L

	// forward[i][j]: holder i of column j was honest at onion arrival and
	// survived the carry period, so its copy moved on.
	forward := make([][]bool, k)
	for i := range forward {
		forward[i] = make([]bool, l)
	}
	released := true
	keyLost := false

	for j := 0; j < l; j++ {
		// Current occupants of the column's k holder slots.
		malicious := make([]bool, k)
		columnCompromised := false
		for i := range malicious {
			malicious[i] = sampler.Draw()
			columnCompromised = columnCompromised || malicious[i]
		}
		columnKeyAlive := true

		// Storage periods 1..j: the layer key K_{j+1} waits on the holders
		// until the onion arrives after j holding periods. Every period each
		// holder dies with probability q; a dead slot is re-filled by a
		// fresh node which receives the key from a surviving replica (one
		// more malicious draw); if all k replicas die within one period the
		// key is lost. Rather than looping over every quiet period, jump
		// straight to the next period containing at least one death — the
		// skip is geometric, so the sampled process is statistically
		// identical to the period-by-period loop.
		if q > 0 && j > 0 {
			deathPeriodProb := 1 - math.Pow(1-q, float64(k))
			period := 0
			for deathPeriodProb > 0 {
				period += rng.Geometric(deathPeriodProb)
				if period > j {
					break
				}
				d := conditionalDeaths(rng, k, q)
				if d == k {
					// No replica left to repair from: the key is gone.
					columnKeyAlive = false
					break
				}
				for _, slot := range rng.SampleWithoutReplacement(k, d) {
					malicious[slot] = sampler.Draw()
					columnCompromised = columnCompromised || malicious[slot]
				}
			}
		}
		if !columnKeyAlive {
			keyLost = true
		}

		// Carry period: the occupants receive the onion, must be honest and
		// must live long enough to forward it.
		for i := 0; i < k; i++ {
			ok := columnKeyAlive && !malicious[i]
			if ok && q > 0 && rng.Float64() < q {
				ok = false // died while holding the onion
			}
			forward[i][j] = ok
		}

		// Release-ahead bookkeeping (Equation (1) semantics): the adversary
		// needs at least one replica of every column's layer key; every node
		// that ever stored the key — initial holders and churn replacements —
		// is an opportunity.
		released = released && columnCompromised
	}

	delivered := false
	if !keyLost {
		if joint {
			// The onion survives a column if any holder forwarded it
			// (packages fan out to every next-column holder).
			delivered = true
			for j := 0; j < l && delivered; j++ {
				columnOK := false
				for i := 0; i < k; i++ {
					if forward[i][j] {
						columnOK = true
						break
					}
				}
				delivered = columnOK
			}
		} else {
			// Node-disjoint: a path delivers only if every one of its own
			// holders forwarded.
			for i := 0; i < k && !delivered; i++ {
				pathOK := true
				for j := 0; j < l; j++ {
					if !forward[i][j] {
						pathOK = false
						break
					}
				}
				delivered = pathOK
			}
		}
	}
	return Outcome{Released: released, Delivered: delivered}
}

// conditionalDeaths samples D ~ Binomial(k, q) conditioned on D >= 1 by
// inversion over the conditional pmf. Used by the period-skipping churn
// simulation, where quiet periods are skipped geometrically and each visited
// period is guaranteed at least one death.
func conditionalDeaths(rng *stats.RNG, k int, q float64) int {
	if q >= 1 {
		return k
	}
	norm := 1 - math.Pow(1-q, float64(k))
	u := rng.Float64() * norm
	// pmf(d) = C(k,d) q^d (1-q)^(k-d), iterated via the ratio recurrence.
	pmf := float64(k) * q * math.Pow(1-q, float64(k-1))
	cum := 0.0
	for d := 1; d <= k; d++ {
		cum += pmf
		if u <= cum {
			return d
		}
		pmf *= float64(k-d) / float64(d+1) * q / (1 - q)
	}
	return k // float round-off fallback
}

// shareTrial simulates the key share routing scheme. Columns 1..l-1 hold n
// carriers each (the k main-path holders are among them); the terminal
// column holds only the k main holders. Every onion layer key is Shamir
// split (m, n) and travels one hop behind schedule, so each carrier is
// exposed for a single holding period — the root of the scheme's churn
// resilience.
//
// Churn losses follow the paper's model by default: each column loses
// exactly floor(q*n) shares per holding period, the quantity d that
// Algorithm 1 budgets its thresholds against (see Env.ShareModel).
func shareTrial(plan core.Plan, q float64, binomialDeaths bool, sampler *maliciousSampler, rng *stats.RNG) Outcome {
	k, l, n := plan.K, plan.L, plan.ShareN

	released := true
	delivered := true

	for c := 0; c < l-1; c++ {
		m := plan.ShareM[c] // threshold protecting the column c+2 key
		dead := deathSet(rng, n, q, binomialDeaths)
		maliciousShares := 0
		deliveredShares := 0
		mainCompromised := false
		mainForwarded := false
		for s := 0; s < n; s++ {
			malicious := sampler.Draw()
			if malicious {
				maliciousShares++
				if c == 0 && s < k {
					mainCompromised = true
				}
			} else if !dead[s] {
				deliveredShares++
				if c == 0 && s < k {
					mainForwarded = true
				}
			}
		}
		if c == 0 {
			// Release-ahead needs the main onion nest, which only the k main
			// first-column holders possess at ts; delivery needs at least one
			// of them to forward the main onion.
			released = released && mainCompromised
			delivered = delivered && mainForwarded
		}
		released = released && maliciousShares >= m
		delivered = delivered && deliveredShares >= m
	}

	// Terminal column: resources are uniform along the paths (Algorithm 1
	// line 1), so the last column also holds n carriers; each recovers the
	// final layer key from the delivered shares, and at least one honest
	// survivor must remain to release the secret key at tr.
	terminalDead := deathSet(rng, n, q, binomialDeaths)
	terminalOK := false
	terminalCompromised := false
	for s := 0; s < n; s++ {
		malicious := sampler.Draw()
		if malicious {
			terminalCompromised = true
		} else if !terminalDead[s] {
			terminalOK = true
		}
	}
	delivered = delivered && terminalOK
	if l == 1 {
		// Degenerate single-column plan: n-replicated direct storage; any
		// malicious holder reads the key immediately.
		released = terminalCompromised
	}

	return Outcome{Released: released, Delivered: delivered}
}

// shareLiveTrial simulates the key share scheme with the semantics the
// executable protocol actually exhibits (ShareModelLive); see the constant's
// doc for the three points where it departs from the coarse per-column
// models. The outcome cross-validates against internal/scenario's live
// measurements within Wilson intervals.
//
// Per column c and slot s one occupant is drawn (malicious?) and one death
// coin is flipped (dies during its single holding period of custody?).
// ok[s] = honest and surviving is what lets the occupant forward; chains
// additionally require every ancestor ok, the main onion only some occupant
// ok per column. Share re-grant repair (protocol churn repair) re-delivers
// key material to replacement occupants but cannot re-create the
// single-custody packages that died with their holder, so it adds no
// delivery term here — which the live cross-validation confirms.
func shareLiveTrial(plan core.Plan, q float64, sampler *maliciousSampler, rng *stats.RNG) Outcome {
	k, l, n := plan.K, plan.L, plan.ShareN

	// Column 1: occupants receive everything directly at start time. Their
	// maliciousness alone decides release-ahead (the nested-custody attack
	// runs entirely on start-time material); deaths only affect forwarding.
	maxM := 0
	for _, m := range plan.ShareM {
		if m > maxM {
			maxM = m
		}
	}
	maliciousCount := 0
	mainMalicious := false
	chain := make([]bool, n) // slot chain still intact and delivering
	alive := 0               // chains that forwarded out of the current column
	mainAlive := false       // main onion custody survives, some holder can peel
	for s := 0; s < n; s++ {
		malicious := sampler.Draw()
		if malicious {
			maliciousCount++
			if s < k {
				mainMalicious = true
			}
		}
		ok := !malicious && !(q > 0 && rng.Float64() < q)
		chain[s] = ok
		if ok {
			alive++
			if s < k {
				mainAlive = true
			}
		}
	}
	if l == 1 {
		// Degenerate single-column plan: the k main holders alone store the
		// secret for one period; any malicious one reads it outright.
		return Outcome{Released: mainMalicious, Delivered: mainAlive}
	}
	released := mainMalicious && maliciousCount >= maxM

	// Columns 2..l: the threshold gate of the previous column's scattered
	// shares applies to main and slot custody alike (CK_c and the SK_{c,s}
	// are split with the same threshold and scattered by the same carriers).
	delivered := true
	for c := 2; c <= l; c++ {
		if alive < plan.ShareM[c-2] {
			delivered = false
			break
		}
		columnOK := false
		nextAlive := 0
		for s := 0; s < n; s++ {
			malicious := sampler.Draw()
			ok := !malicious && !(q > 0 && rng.Float64() < q)
			if ok {
				columnOK = true
			}
			chain[s] = chain[s] && ok
			if chain[s] {
				nextAlive++
			}
		}
		mainAlive = mainAlive && columnOK
		alive = nextAlive
	}
	delivered = delivered && mainAlive

	return Outcome{Released: released, Delivered: delivered}
}

// deathSet returns which of n carriers die during one holding period: under
// the paper's model exactly floor(q*n) uniformly-chosen carriers, under the
// binomial ablation each carrier independently with probability q. A nil
// map means no deaths.
func deathSet(rng *stats.RNG, n int, q float64, binomial bool) map[int]bool {
	if q <= 0 || n <= 0 {
		return nil
	}
	dead := make(map[int]bool)
	if binomial {
		for s := 0; s < n; s++ {
			if rng.Float64() < q {
				dead[s] = true
			}
		}
		return dead
	}
	for _, s := range rng.SampleWithoutReplacement(n, int(q*float64(n))) {
		dead[s] = true
	}
	return dead
}
