package mc

import (
	"fmt"
	"math"

	"selfemerge/internal/core"
	"selfemerge/internal/stats"
)

// Outcome is the result of one simulated emergence attempt under attack and
// (optionally) churn.
type Outcome struct {
	// Released reports a successful release-ahead attack: the adversary
	// gathered every onion layer key (and the entry package) and could
	// restore the secret key at start time ts.
	Released bool
	// Delivered reports that the secret key emerged at release time tr:
	// no drop attack or churn loss broke every path.
	Delivered bool
}

// Env describes the simulated environment of one experiment point.
type Env struct {
	// Population is the DHT network size N (10,000 in most of the paper's
	// experiments, 100 in Figure 6(c)/(d)).
	Population int
	// Malicious is the number of Sybil-controlled nodes, floor(p*N).
	Malicious int
	// Alpha is the churn severity T/tlife: the emerging period expressed in
	// mean node lifetimes. Zero disables churn (Figure 6's setting).
	Alpha float64
	// BinomialShareDeaths switches the key-share scheme's churn losses from
	// the paper's model — exactly d = floor(pdead*n) shares lost per column,
	// the same quantity Algorithm 1 plans its thresholds against — to
	// independent per-carrier exponential deaths. The independent model adds
	// death-count variance that Algorithm 1's thresholds do not budget for
	// and visibly lowers the small-n (Figure 8, 100 available nodes) curves;
	// it is exposed for the ablation benchmarks.
	BinomialShareDeaths bool
}

// Validate checks the environment parameters.
func (e Env) Validate() error {
	if e.Population < 1 {
		return fmt.Errorf("mc: population %d must be >= 1", e.Population)
	}
	if e.Malicious < 0 || e.Malicious > e.Population {
		return fmt.Errorf("mc: malicious count %d outside [0, %d]", e.Malicious, e.Population)
	}
	if e.Alpha < 0 || math.IsNaN(e.Alpha) {
		return fmt.Errorf("mc: alpha %v must be >= 0", e.Alpha)
	}
	return nil
}

// RunTrial simulates one emergence attempt of the given plan in env using
// rng, and returns the attack outcome. It is deterministic given the RNG
// state.
func RunTrial(plan core.Plan, env Env, rng *stats.RNG) Outcome {
	sampler := newMaliciousSampler(rng, env.Population, env.Malicious)
	// Per-holding-period death probability: the decay model of Bhagwan et
	// al. adopted by the paper, q = 1 - exp(-th/lambda) with th = T/l, i.e.
	// q = 1 - exp(-alpha/l).
	q := 0.0
	if env.Alpha > 0 {
		q = 1 - math.Exp(-env.Alpha/float64(plan.L))
	}
	switch plan.Scheme {
	case core.SchemeCentral:
		return centralTrial(env, sampler, rng)
	case core.SchemeDisjoint:
		return multipathTrial(plan, false, q, sampler, rng)
	case core.SchemeJoint:
		return multipathTrial(plan, true, q, sampler, rng)
	case core.SchemeKeyShare:
		return shareTrial(plan, q, env.BinomialShareDeaths, sampler, rng)
	default:
		panic(fmt.Sprintf("mc: unknown scheme %v", plan.Scheme))
	}
}

// centralTrial: one node keeps the key for the whole emerging period. A
// malicious node can both read the key at ts and withhold it at tr; under
// churn the node must additionally survive the full period T = alpha
// lifetimes, and its death loses the key (a single node has no replica to
// repair from).
func centralTrial(env Env, sampler *maliciousSampler, rng *stats.RNG) Outcome {
	malicious := sampler.Draw()
	survives := true
	if env.Alpha > 0 {
		survives = rng.Float64() < math.Exp(-env.Alpha)
	}
	return Outcome{
		Released:  malicious,
		Delivered: !malicious && survives,
	}
}

// multipathTrial simulates the node-disjoint (joint=false) and node-joint
// (joint=true) schemes, including the churn-repair dynamics of Section II-C:
// a column's layer key lives on its k holders from ts until the onion
// arrives; each holding period every holder dies with probability q; dead
// holders are replaced by fresh DHT nodes that receive the key from a
// surviving replica (one more chance to be malicious); if an entire column
// dies within one period the layer key is lost forever.
func multipathTrial(plan core.Plan, joint bool, q float64, sampler *maliciousSampler, rng *stats.RNG) Outcome {
	k, l := plan.K, plan.L

	// forward[i][j]: holder i of column j was honest at onion arrival and
	// survived the carry period, so its copy moved on.
	forward := make([][]bool, k)
	for i := range forward {
		forward[i] = make([]bool, l)
	}
	released := true
	keyLost := false

	for j := 0; j < l; j++ {
		// Current occupants of the column's k holder slots.
		malicious := make([]bool, k)
		columnCompromised := false
		for i := range malicious {
			malicious[i] = sampler.Draw()
			columnCompromised = columnCompromised || malicious[i]
		}
		columnKeyAlive := true

		// Storage periods 1..j: the layer key K_{j+1} waits on the holders
		// until the onion arrives after j holding periods. Every period each
		// holder dies with probability q; a dead slot is re-filled by a
		// fresh node which receives the key from a surviving replica (one
		// more malicious draw); if all k replicas die within one period the
		// key is lost. Rather than looping over every quiet period, jump
		// straight to the next period containing at least one death — the
		// skip is geometric, so the sampled process is statistically
		// identical to the period-by-period loop.
		if q > 0 && j > 0 {
			deathPeriodProb := 1 - math.Pow(1-q, float64(k))
			period := 0
			for deathPeriodProb > 0 {
				period += rng.Geometric(deathPeriodProb)
				if period > j {
					break
				}
				d := conditionalDeaths(rng, k, q)
				if d == k {
					// No replica left to repair from: the key is gone.
					columnKeyAlive = false
					break
				}
				for _, slot := range rng.SampleWithoutReplacement(k, d) {
					malicious[slot] = sampler.Draw()
					columnCompromised = columnCompromised || malicious[slot]
				}
			}
		}
		if !columnKeyAlive {
			keyLost = true
		}

		// Carry period: the occupants receive the onion, must be honest and
		// must live long enough to forward it.
		for i := 0; i < k; i++ {
			ok := columnKeyAlive && !malicious[i]
			if ok && q > 0 && rng.Float64() < q {
				ok = false // died while holding the onion
			}
			forward[i][j] = ok
		}

		// Release-ahead bookkeeping (Equation (1) semantics): the adversary
		// needs at least one replica of every column's layer key; every node
		// that ever stored the key — initial holders and churn replacements —
		// is an opportunity.
		released = released && columnCompromised
	}

	delivered := false
	if !keyLost {
		if joint {
			// The onion survives a column if any holder forwarded it
			// (packages fan out to every next-column holder).
			delivered = true
			for j := 0; j < l && delivered; j++ {
				columnOK := false
				for i := 0; i < k; i++ {
					if forward[i][j] {
						columnOK = true
						break
					}
				}
				delivered = columnOK
			}
		} else {
			// Node-disjoint: a path delivers only if every one of its own
			// holders forwarded.
			for i := 0; i < k && !delivered; i++ {
				pathOK := true
				for j := 0; j < l; j++ {
					if !forward[i][j] {
						pathOK = false
						break
					}
				}
				delivered = pathOK
			}
		}
	}
	return Outcome{Released: released, Delivered: delivered}
}

// conditionalDeaths samples D ~ Binomial(k, q) conditioned on D >= 1 by
// inversion over the conditional pmf. Used by the period-skipping churn
// simulation, where quiet periods are skipped geometrically and each visited
// period is guaranteed at least one death.
func conditionalDeaths(rng *stats.RNG, k int, q float64) int {
	if q >= 1 {
		return k
	}
	norm := 1 - math.Pow(1-q, float64(k))
	u := rng.Float64() * norm
	// pmf(d) = C(k,d) q^d (1-q)^(k-d), iterated via the ratio recurrence.
	pmf := float64(k) * q * math.Pow(1-q, float64(k-1))
	cum := 0.0
	for d := 1; d <= k; d++ {
		cum += pmf
		if u <= cum {
			return d
		}
		pmf *= float64(k-d) / float64(d+1) * q / (1 - q)
	}
	return k // float round-off fallback
}

// shareTrial simulates the key share routing scheme. Columns 1..l-1 hold n
// carriers each (the k main-path holders are among them); the terminal
// column holds only the k main holders. Every onion layer key is Shamir
// split (m, n) and travels one hop behind schedule, so each carrier is
// exposed for a single holding period — the root of the scheme's churn
// resilience.
//
// Churn losses follow the paper's model by default: each column loses
// exactly floor(q*n) shares per holding period, the quantity d that
// Algorithm 1 budgets its thresholds against (see Env.BinomialShareDeaths).
func shareTrial(plan core.Plan, q float64, binomialDeaths bool, sampler *maliciousSampler, rng *stats.RNG) Outcome {
	k, l, n := plan.K, plan.L, plan.ShareN

	released := true
	delivered := true

	for c := 0; c < l-1; c++ {
		m := plan.ShareM[c] // threshold protecting the column c+2 key
		dead := deathSet(rng, n, q, binomialDeaths)
		maliciousShares := 0
		deliveredShares := 0
		mainCompromised := false
		mainForwarded := false
		for s := 0; s < n; s++ {
			malicious := sampler.Draw()
			if malicious {
				maliciousShares++
				if c == 0 && s < k {
					mainCompromised = true
				}
			} else if !dead[s] {
				deliveredShares++
				if c == 0 && s < k {
					mainForwarded = true
				}
			}
		}
		if c == 0 {
			// Release-ahead needs the main onion nest, which only the k main
			// first-column holders possess at ts; delivery needs at least one
			// of them to forward the main onion.
			released = released && mainCompromised
			delivered = delivered && mainForwarded
		}
		released = released && maliciousShares >= m
		delivered = delivered && deliveredShares >= m
	}

	// Terminal column: resources are uniform along the paths (Algorithm 1
	// line 1), so the last column also holds n carriers; each recovers the
	// final layer key from the delivered shares, and at least one honest
	// survivor must remain to release the secret key at tr.
	terminalDead := deathSet(rng, n, q, binomialDeaths)
	terminalOK := false
	terminalCompromised := false
	for s := 0; s < n; s++ {
		malicious := sampler.Draw()
		if malicious {
			terminalCompromised = true
		} else if !terminalDead[s] {
			terminalOK = true
		}
	}
	delivered = delivered && terminalOK
	if l == 1 {
		// Degenerate single-column plan: n-replicated direct storage; any
		// malicious holder reads the key immediately.
		released = terminalCompromised
	}

	return Outcome{Released: released, Delivered: delivered}
}

// deathSet returns which of n carriers die during one holding period: under
// the paper's model exactly floor(q*n) uniformly-chosen carriers, under the
// binomial ablation each carrier independently with probability q. A nil
// map means no deaths.
func deathSet(rng *stats.RNG, n int, q float64, binomial bool) map[int]bool {
	if q <= 0 || n <= 0 {
		return nil
	}
	dead := make(map[int]bool)
	if binomial {
		for s := 0; s < n; s++ {
			if rng.Float64() < q {
				dead[s] = true
			}
		}
		return dead
	}
	for _, s := range rng.SampleWithoutReplacement(n, int(q*float64(n))) {
		dead[s] = true
	}
	return dead
}
