package mc

import (
	"math"
	"testing"

	"selfemerge/internal/core"
	"selfemerge/internal/stats"
)

// naiveMultipathChurnTrial is a straightforward period-by-period
// re-implementation of the multipath churn process, used to verify that the
// period-skipping optimization in multipathTrial samples the same process.
func naiveMultipathChurnTrial(plan core.Plan, joint bool, q float64, sampler *maliciousSampler, rng *stats.RNG) Outcome {
	k, l := plan.K, plan.L
	forward := make([][]bool, k)
	for i := range forward {
		forward[i] = make([]bool, l)
	}
	released := true
	keyLost := false
	for j := 0; j < l; j++ {
		malicious := make([]bool, k)
		compromised := false
		for i := range malicious {
			malicious[i] = sampler.Draw()
			compromised = compromised || malicious[i]
		}
		keyAlive := true
		for period := 0; period < j && keyAlive; period++ {
			dead := make([]bool, k)
			survivors := 0
			for i := 0; i < k; i++ {
				if rng.Float64() < q {
					dead[i] = true
				} else {
					survivors++
				}
			}
			if survivors == 0 {
				keyAlive = false
				break
			}
			for i := 0; i < k; i++ {
				if dead[i] {
					malicious[i] = sampler.Draw()
					compromised = compromised || malicious[i]
				}
			}
		}
		if !keyAlive {
			keyLost = true
		}
		for i := 0; i < k; i++ {
			ok := keyAlive && !malicious[i]
			if ok && rng.Float64() < q {
				ok = false
			}
			forward[i][j] = ok
		}
		released = released && compromised
	}
	delivered := false
	if !keyLost {
		if joint {
			delivered = true
			for j := 0; j < l && delivered; j++ {
				col := false
				for i := 0; i < k; i++ {
					col = col || forward[i][j]
				}
				delivered = col
			}
		} else {
			for i := 0; i < k && !delivered; i++ {
				path := true
				for j := 0; j < l; j++ {
					path = path && forward[i][j]
				}
				delivered = path
			}
		}
	}
	return Outcome{Released: released, Delivered: delivered}
}

func TestPeriodSkipMatchesNaiveChurnProcess(t *testing.T) {
	// The two implementations consume randomness differently, so compare
	// outcome frequencies, not per-trial outcomes.
	const trials = 30000
	plans := []core.Plan{
		{Scheme: core.SchemeJoint, K: 3, L: 6},
		{Scheme: core.SchemeDisjoint, K: 2, L: 4},
		{Scheme: core.SchemeJoint, K: 1, L: 8},
	}
	for _, plan := range plans {
		for _, alpha := range []float64{1, 3} {
			q := 1 - math.Exp(-alpha/float64(plan.L))
			env := Env{Population: 100000, Malicious: 20000, Alpha: alpha}

			fastRel, fastDel := 0, 0
			rng := stats.NewRNG(1234)
			for i := 0; i < trials; i++ {
				out := RunTrial(plan, env, rng)
				if out.Released {
					fastRel++
				}
				if out.Delivered {
					fastDel++
				}
			}

			naiveRel, naiveDel := 0, 0
			rng2 := stats.NewRNG(5678)
			for i := 0; i < trials; i++ {
				sampler := newMaliciousSampler(rng2, env.Population, env.Malicious)
				out := naiveMultipathChurnTrial(plan, plan.Scheme == core.SchemeJoint, q, sampler, rng2)
				if out.Released {
					naiveRel++
				}
				if out.Delivered {
					naiveDel++
				}
			}

			relDiff := math.Abs(float64(fastRel)-float64(naiveRel)) / trials
			delDiff := math.Abs(float64(fastDel)-float64(naiveDel)) / trials
			// 4-sigma bound for a difference of two proportions.
			bound := 4*math.Sqrt(0.5/trials) + 0.002
			if relDiff > bound {
				t.Errorf("%v k=%d l=%d alpha=%v: release rates differ by %.4f (fast %d, naive %d)",
					plan.Scheme, plan.K, plan.L, alpha, relDiff, fastRel, naiveRel)
			}
			if delDiff > bound {
				t.Errorf("%v k=%d l=%d alpha=%v: deliver rates differ by %.4f (fast %d, naive %d)",
					plan.Scheme, plan.K, plan.L, alpha, delDiff, fastDel, naiveDel)
			}
		}
	}
}

func TestConditionalDeathsDistribution(t *testing.T) {
	// Compare against the exact conditional pmf for a small case.
	rng := stats.NewRNG(777)
	const k, q, trials = 4, 0.3, 200000
	counts := make([]int, k+1)
	for i := 0; i < trials; i++ {
		counts[conditionalDeaths(rng, k, q)]++
	}
	if counts[0] != 0 {
		t.Fatalf("sampled 0 deaths %d times; support is [1,k]", counts[0])
	}
	norm := 1 - math.Pow(1-q, k)
	pmf := func(d int) float64 {
		c := 1.0
		for j := 0; j < d; j++ {
			c = c * float64(k-j) / float64(j+1)
		}
		return c * math.Pow(q, float64(d)) * math.Pow(1-q, float64(k-d)) / norm
	}
	for d := 1; d <= k; d++ {
		got := float64(counts[d]) / trials
		want := pmf(d)
		if math.Abs(got-want) > 5*math.Sqrt(want*(1-want)/trials)+0.001 {
			t.Errorf("P[D=%d] = %.4f, want %.4f", d, got, want)
		}
	}
}

func TestConditionalDeathsEdge(t *testing.T) {
	rng := stats.NewRNG(1)
	if got := conditionalDeaths(rng, 5, 1); got != 5 {
		t.Errorf("q=1: got %d, want 5", got)
	}
	for i := 0; i < 100; i++ {
		if got := conditionalDeaths(rng, 1, 0.2); got != 1 {
			t.Errorf("k=1: got %d", got)
		}
	}
}
