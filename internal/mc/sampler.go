// Package mc is the Monte Carlo experiment engine behind the paper's
// evaluation (Section IV). Each trial reconstructs the random variables the
// Overlay Weaver experiments sampled — which holders land on malicious Sybil
// nodes, which holders die of churn and when — and evaluates the
// release-ahead and drop attack outcomes on the planned path topology.
//
// The engine mirrors the paper's setup exactly: a population of N DHT nodes
// of which floor(p*N) are marked malicious (so holder maliciousness is
// hypergeometric, not binomial — the distinction matters for the N=100
// panels of Figure 6), exponential node lifetimes for churn, and 1000+
// trials averaged per data point.
package mc

import "selfemerge/internal/stats"

// maliciousSampler draws holder maliciousness sequentially without
// replacement from a finite population containing a fixed number of marked
// (malicious) nodes. Every call to Draw consumes one node from the
// population, exactly as selecting one more distinct holder would.
//
// Replacement nodes that take over a dead holder's DHT zone are drawn from
// the same shrinking population.
type maliciousSampler struct {
	rng       *stats.RNG
	remaining int     // nodes not yet consumed
	marked    int     // malicious nodes not yet consumed
	rate      float64 // original malicious fraction, for population exhaustion
}

func newMaliciousSampler(rng *stats.RNG, population, malicious int) *maliciousSampler {
	if population <= 0 || malicious < 0 || malicious > population {
		panic("mc: invalid sampler population")
	}
	return &maliciousSampler{
		rng:       rng,
		remaining: population,
		marked:    malicious,
		rate:      float64(malicious) / float64(population),
	}
}

// Draw consumes one node and reports whether it is malicious. When the
// population is exhausted (possible only if churn replacements outnumber the
// network, e.g. long simulations of a 100-node DHT) new arrivals are assumed
// to be malicious at the stationary rate, modelling churn replenishing the
// network with the same Sybil fraction.
func (s *maliciousSampler) Draw() bool {
	if s.remaining <= 0 {
		return s.rng.Bool(s.rate)
	}
	mal := s.rng.Intn(s.remaining) < s.marked
	if mal {
		s.marked--
	}
	s.remaining--
	return mal
}
