package mc

import (
	"math"
	"testing"

	"selfemerge/internal/analytic"
	"selfemerge/internal/core"
	"selfemerge/internal/stats"
)

const testTrials = 20000

// withinCI asserts |got-want| is plausible for a proportion estimated from
// testTrials samples (4-sigma).
func withinCI(t *testing.T, name string, got, want float64) {
	t.Helper()
	sigma := math.Sqrt(want*(1-want)/testTrials) + 1e-9
	if math.Abs(got-want) > 4*sigma+0.005 {
		t.Errorf("%s = %.4f, analytic %.4f (diff %.4f)", name, got, want, math.Abs(got-want))
	}
}

func bigEnv(p float64) Env {
	return Env{Population: 10000, Malicious: int(p * 10000)}
}

func TestCentralMatchesClosedForm(t *testing.T) {
	for _, p := range []float64{0, 0.2, 0.5} {
		res, err := Estimate(core.PlanCentral(p), bigEnv(p), Options{Trials: testTrials, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		withinCI(t, "central Rr", res.Rr(), 1-p)
		withinCI(t, "central Rd", res.Rd(), 1-p)
	}
}

func TestDisjointMatchesEquations1And2(t *testing.T) {
	plan := core.Plan{Scheme: core.SchemeDisjoint, K: 2, L: 3}
	for _, p := range []float64{0.1, 0.2, 0.35} {
		res, err := Estimate(plan, bigEnv(p), Options{Trials: testTrials, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		withinCI(t, "disjoint Rr", res.Rr(), analytic.DisjointRr(p, 2, 3))
		withinCI(t, "disjoint Rd", res.Rd(), analytic.DisjointRd(p, 2, 3))
	}
}

func TestJointMatchesEquations1And3(t *testing.T) {
	plan := core.Plan{Scheme: core.SchemeJoint, K: 3, L: 4}
	for _, p := range []float64{0.1, 0.3, 0.45} {
		res, err := Estimate(plan, bigEnv(p), Options{Trials: testTrials, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		withinCI(t, "joint Rr", res.Rr(), analytic.JointRr(p, 3, 4))
		withinCI(t, "joint Rd", res.Rd(), analytic.JointRd(p, 3, 4))
	}
}

func sharePlan(k, l, n int, m int) core.Plan {
	ms := make([]int, l-1)
	for i := range ms {
		ms[i] = m
	}
	return core.Plan{Scheme: core.SchemeKeyShare, K: k, L: l, ShareN: n, ShareM: ms}
}

func TestShareNoAdversaryNoChurn(t *testing.T) {
	res, err := Estimate(sharePlan(2, 4, 6, 3), Env{Population: 10000}, Options{Trials: 2000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rd() != 1 {
		t.Errorf("share Rd = %v with no adversary/churn, want 1", res.Rd())
	}
	if res.Rr() != 1 {
		t.Errorf("share Rr = %v with no adversary, want 1", res.Rr())
	}
}

func TestShareReleaseNeedsThresholdEverywhere(t *testing.T) {
	// With m = n, release-ahead requires every carrier of every column to be
	// malicious: at p=0.5 in a huge network this is ~(1/2)^(n*(l-1)) — far
	// below the single-column probability, so Rr should be ~1.
	res, err := Estimate(sharePlan(2, 3, 8, 8), bigEnv(0.5), Options{Trials: 5000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rr() < 0.99 {
		t.Errorf("share Rr = %v with m=n=8 at p=0.5, want ~1", res.Rr())
	}
}

func TestShareDropEasierWithHighThreshold(t *testing.T) {
	// m = n also means a single withheld share per column kills delivery, so
	// Rd should be much lower than with m = 1.
	strict, err := Estimate(sharePlan(2, 3, 8, 8), bigEnv(0.3), Options{Trials: 5000, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := Estimate(sharePlan(2, 3, 8, 1), bigEnv(0.3), Options{Trials: 5000, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if strict.Rd() >= loose.Rd() {
		t.Errorf("Rd(m=n)=%v should be below Rd(m=1)=%v", strict.Rd(), loose.Rd())
	}
}

func TestCentralChurnSurvival(t *testing.T) {
	// Under churn the central holder must survive T = alpha lifetimes:
	// Rd = (1-p) * exp(-alpha).
	p, alpha := 0.2, 1.0
	env := bigEnv(p)
	env.Alpha = alpha
	res, err := Estimate(core.PlanCentral(p), env, Options{Trials: testTrials, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	withinCI(t, "central churn Rd", res.Rd(), (1-p)*math.Exp(-alpha))
	withinCI(t, "central churn Rr", res.Rr(), 1-p)
}

func TestChurnDegradesMultipathReleaseResilience(t *testing.T) {
	// Replacement draws add key-exposure opportunities, so Rr under churn
	// must be no better than without churn (Section II-C).
	plan := core.Plan{Scheme: core.SchemeJoint, K: 3, L: 4}
	p := 0.25
	noChurn, err := Estimate(plan, bigEnv(p), Options{Trials: testTrials, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	env := bigEnv(p)
	env.Alpha = 3
	churned, err := Estimate(plan, env, Options{Trials: testTrials, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if churned.Rr() > noChurn.Rr()+0.02 {
		t.Errorf("churn improved Rr: %v > %v", churned.Rr(), noChurn.Rr())
	}
	if churned.Rd() > noChurn.Rd()+0.02 {
		t.Errorf("churn improved Rd: %v > %v", churned.Rd(), noChurn.Rd())
	}
}

func TestShareBeatsJointUnderHeavyChurn(t *testing.T) {
	// The paper's central claim (Figure 7): at T = 3 lifetimes and p = 0.2,
	// planned share routing retains far higher combined resilience than the
	// planned joint scheme.
	const p, alpha = 0.2, 3.0
	cfg := core.PlannerConfig{Budget: 10000}
	joint, err := core.PlanMultipath(core.SchemeJoint, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	share, err := core.PlanKeyShare(p, alpha, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	env := bigEnv(p)
	env.Alpha = alpha
	jr, err := Estimate(joint, env, Options{Trials: 4000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	sr, err := Estimate(share, env, Options{Trials: 4000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if sr.R() < jr.R()+0.1 {
		t.Errorf("share R=%v should clearly beat joint R=%v under churn", sr.R(), jr.R())
	}
	if sr.R() < 0.8 {
		t.Errorf("share R=%v at alpha=3 p=0.2, want >= 0.8", sr.R())
	}
}

func TestEstimateDeterminism(t *testing.T) {
	plan := core.Plan{Scheme: core.SchemeJoint, K: 2, L: 3}
	env := bigEnv(0.3)
	env.Alpha = 2
	opts := Options{Trials: 3000, Seed: 42, Workers: 4}
	a, err := Estimate(plan, env, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Estimate(plan, env, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed produced different results: %+v vs %+v", a, b)
	}
}

func TestEstimateValidation(t *testing.T) {
	plan := core.PlanCentral(0.1)
	if _, err := Estimate(plan, Env{Population: 0}, Options{}); err == nil {
		t.Error("population 0 accepted")
	}
	if _, err := Estimate(plan, Env{Population: 10, Malicious: 11}, Options{}); err == nil {
		t.Error("malicious > population accepted")
	}
	if _, err := Estimate(plan, Env{Population: 10, Alpha: -1}, Options{}); err == nil {
		t.Error("negative alpha accepted")
	}
	bad := core.Plan{Scheme: core.SchemeJoint, K: 0, L: 2}
	if _, err := Estimate(bad, Env{Population: 10}, Options{}); err == nil {
		t.Error("invalid plan accepted")
	}
}

func TestFinitePopulationEffect(t *testing.T) {
	// In a 100-node network using all 100 nodes, exactly 30 of the holders
	// are malicious — never more. With a plan consuming the whole network, a
	// column of k=10 has at most 30 malicious members in total; compare
	// against the binomial world where all columns could be fully malicious.
	plan := core.Plan{Scheme: core.SchemeJoint, K: 10, L: 10}
	small := Env{Population: 100, Malicious: 30}
	res, err := Estimate(plan, small, Options{Trials: 5000, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Drop needs one fully-malicious column (10 malicious in one column):
	// with only 30 marked nodes across 100 slots this is rare but possible;
	// just assert outcome probabilities are sane and Rr+Rd bounded.
	if res.Rr() < 0 || res.Rr() > 1 || res.Rd() < 0 || res.Rd() > 1 {
		t.Errorf("resilience out of range: %+v", res)
	}
}

func TestRunTrialDirect(t *testing.T) {
	rng := stats.NewRNG(99)
	out := RunTrial(core.PlanCentral(0), Env{Population: 10}, rng)
	if out.Released || !out.Delivered {
		t.Errorf("central with no adversary: %+v", out)
	}
	outAllMal := RunTrial(core.PlanCentral(1), Env{Population: 10, Malicious: 10}, rng)
	if !outAllMal.Released || outAllMal.Delivered {
		t.Errorf("central with full adversary: %+v", outAllMal)
	}
}

func TestResultAccessors(t *testing.T) {
	r := Result{Trials: 100, Released: 20, Delivered: 90, Succeeded: 75}
	if r.Rr() != 0.8 {
		t.Errorf("Rr = %v", r.Rr())
	}
	if r.Rd() != 0.9 {
		t.Errorf("Rd = %v", r.Rd())
	}
	if r.R() != 0.75 {
		t.Errorf("R = %v", r.R())
	}
	if r.MinR() != 0.8 {
		t.Errorf("MinR = %v", r.MinR())
	}
	lo, hi := r.ReleaseCI()
	if lo >= 0.2 || hi <= 0.2 {
		t.Errorf("ReleaseCI [%v,%v] misses 0.2", lo, hi)
	}
	var zero Result
	if zero.Rr() != 1 || zero.Rd() != 0 || zero.R() != 0 {
		t.Errorf("zero result accessors: %v %v %v", zero.Rr(), zero.Rd(), zero.R())
	}
}
