package mc

import (
	"fmt"
	"runtime"
	"sync"

	"selfemerge/internal/core"
	"selfemerge/internal/stats"
)

// Result aggregates trial outcomes for one experiment point.
type Result struct {
	Trials    int
	Released  int // trials where the release-ahead attack succeeded
	Delivered int // trials where the key emerged at tr
	Succeeded int // trials with neither early release nor delivery failure
}

// Rr is the measured release-ahead attack resilience (1 - attack success
// rate), the quantity of Equation (1).
func (r Result) Rr() float64 { return 1 - ratio(r.Released, r.Trials) }

// Rd is the measured drop/loss resilience: the probability the key emerged
// at tr despite malicious holders and churn.
func (r Result) Rd() float64 { return ratio(r.Delivered, r.Trials) }

// R is the combined resilience P[delivered and not stolen] — the single
// curve plotted per scheme in Figures 7 and 8.
func (r Result) R() float64 { return ratio(r.Succeeded, r.Trials) }

// MinR returns min(Rr, Rd), matching Figure 6's convention of plotting
// R = Rr = Rd for plans tuned to balance the two.
func (r Result) MinR() float64 {
	if rr := r.Rr(); rr < r.Rd() {
		return rr
	}
	return r.Rd()
}

// ReleaseCI returns the 95% Wilson interval for the release-ahead success
// probability.
func (r Result) ReleaseCI() (lo, hi float64) {
	var p stats.Proportion
	p.AddN(r.Released, r.Trials)
	return p.Wilson95()
}

// DeliverCI returns the 95% Wilson interval for the delivery probability.
func (r Result) DeliverCI() (lo, hi float64) {
	var p stats.Proportion
	p.AddN(r.Delivered, r.Trials)
	return p.Wilson95()
}

func ratio(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Options tunes an estimation run. The zero value is completed by defaults
// matching the paper (1000 trials) with all CPUs.
type Options struct {
	Trials  int    // default 1000, the paper's repetition count
	Seed    uint64 // base seed; same seed => identical result
	Workers int    // default GOMAXPROCS
}

func (o Options) withDefaults() Options {
	if o.Trials == 0 {
		o.Trials = 1000
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// Estimate runs opts.Trials independent trials of plan in env and aggregates
// the outcomes. Trials are distributed over opts.Workers goroutines; the
// result is deterministic for a fixed (plan, env, Trials, Seed, Workers).
func Estimate(plan core.Plan, env Env, opts Options) (Result, error) {
	if err := plan.Validate(); err != nil {
		return Result{}, fmt.Errorf("mc: invalid plan: %w", err)
	}
	if err := env.Validate(); err != nil {
		return Result{}, err
	}
	opts = opts.withDefaults()
	if opts.Trials < 1 {
		return Result{}, fmt.Errorf("mc: trials %d must be >= 1", opts.Trials)
	}
	if opts.Workers < 1 {
		return Result{}, fmt.Errorf("mc: workers %d must be >= 1", opts.Workers)
	}

	root := stats.NewRNG(opts.Seed)
	workers := opts.Workers
	if workers > opts.Trials {
		workers = opts.Trials
	}
	// Pre-split one RNG per worker from the root stream so the partition of
	// trials across workers does not change the sampled randomness layout
	// within a worker.
	rngs := make([]*stats.RNG, workers)
	for i := range rngs {
		rngs[i] = root.Split()
	}

	results := make([]Result, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		share := opts.Trials / workers
		if w < opts.Trials%workers {
			share++
		}
		wg.Add(1)
		go func(w, share int) {
			defer wg.Done()
			rng := rngs[w]
			var acc Result
			for t := 0; t < share; t++ {
				out := RunTrial(plan, env, rng)
				acc.Trials++
				if out.Released {
					acc.Released++
				}
				if out.Delivered {
					acc.Delivered++
				}
				if !out.Released && out.Delivered {
					acc.Succeeded++
				}
			}
			results[w] = acc
		}(w, share)
	}
	wg.Wait()

	var total Result
	for _, r := range results {
		total.Trials += r.Trials
		total.Released += r.Released
		total.Delivered += r.Delivered
		total.Succeeded += r.Succeeded
	}
	return total, nil
}
