package mc

import (
	"math"
	"testing"

	"selfemerge/internal/core"
)

// TestShareReleaseRequiresMainEntry verifies the main-onion gate: even with
// every share threshold trivially met (m=1), release-ahead still requires
// one of the k main first-column holders to be malicious, because only they
// hold the main onion nest at ts. With k=1 main holder in a huge population
// at p=0.5, the release rate must track P[that one holder is malicious] = p,
// not the near-1 probability of gathering m=1 shares everywhere.
func TestShareReleaseRequiresMainEntry(t *testing.T) {
	plan := sharePlan(1, 3, 6, 1) // k=1, l=3, n=6, m=1
	res, err := Estimate(plan, bigEnv(0.5), Options{Trials: 20000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	released := 1 - res.Rr()
	// P[release] = p * P[>=1 malicious among n]^(l-1) ~ 0.5 * (1-0.5^6)^2 ~ 0.485
	want := 0.5 * 0.969 * 0.969
	if released < want-0.03 || released > want+0.03 {
		t.Errorf("release rate = %.4f, want ~%.4f (main-entry gated)", released, want)
	}
}

// TestShareDropGatedByTerminalColumn verifies that delivery needs an honest
// surviving terminal carrier: with every terminal holder malicious the key
// cannot be released even though all thresholds pass. We approximate by
// p=1: everything malicious implies both release (trivially, all shares) and
// no delivery.
func TestShareDropGatedByTerminalColumn(t *testing.T) {
	plan := sharePlan(2, 3, 4, 1)
	res, err := Estimate(plan, Env{Population: 100, Malicious: 100}, Options{Trials: 2000, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rd() != 0 {
		t.Errorf("delivery rate = %v with an all-malicious network", res.Rd())
	}
	if res.Rr() != 0 {
		t.Errorf("Rr = %v with an all-malicious network, want 0", res.Rr())
	}
}

// TestShareChurnExposureIsOnePeriod: the share scheme's defining property —
// raising the emerging period T (more columns' worth of holding time) while
// holding the per-period death rate constant must NOT degrade resilience the
// way it does for pre-assigned keys. We compare joint vs share at identical
// (k, l) under alpha = 4.
func TestShareChurnExposureIsOnePeriod(t *testing.T) {
	const p, alpha = 0.15, 4.0
	jointPlan := core.Plan{Scheme: core.SchemeJoint, K: 3, L: 6}
	shareP := sharePlan(3, 6, 24, 8)
	env := bigEnv(p)
	env.Alpha = alpha
	jr, err := Estimate(jointPlan, env, Options{Trials: 10000, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	sr, err := Estimate(shareP, env, Options{Trials: 10000, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if sr.R() < jr.R()+0.2 {
		t.Errorf("share R=%.3f should dominate joint R=%.3f at alpha=%v by a wide margin",
			sr.R(), jr.R(), alpha)
	}
}

// TestShareLiveReleaseGatedByEntryColumn: under the live-faithful model the
// release-ahead attack runs entirely on start-time material — the column-1
// slot onions nest the whole share chain — so its success rate is
// P[some main slot malicious AND at least max(m) malicious column-1
// carriers], independent of the deeper columns, and far above the quota
// model's every-column-thresholds rate.
func TestShareLiveReleaseGatedByEntryColumn(t *testing.T) {
	plan := sharePlan(2, 4, 6, 2) // k=2, l=4, n=6, m=2
	const p = 0.3
	env := bigEnv(p)
	env.ShareModel = ShareModelLive
	live, err := Estimate(plan, env, Options{Trials: testTrials, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	env.ShareModel = ShareModelQuota
	quota, err := Estimate(plan, env, Options{Trials: testTrials, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	// Closed form over the six column-1 carriers (binomial is accurate in a
	// 10,000-node population): P[>=2 malicious] - P[>=2 but slots 0,1 honest].
	atLeast2 := func(n int, p float64) float64 {
		q := 1 - p
		return 1 - math.Pow(q, float64(n)) - float64(n)*p*math.Pow(q, float64(n-1))
	}
	want := atLeast2(6, p) - (1-p)*(1-p)*atLeast2(4, p)
	withinCI(t, "live-model release", 1-live.Rr(), want)
	if liveRel, quotaRel := 1-live.Rr(), 1-quota.Rr(); liveRel < 3*quotaRel {
		t.Errorf("live-model release %.4f not well above quota-model %.4f", liveRel, quotaRel)
	}
}

// TestShareLiveChainedDeliveryBelowPerColumn: chained slot survival makes
// the live model's churn delivery strictly more pessimistic than the
// binomial per-column model at equal death rates — the live failure mode
// the coarse models miss.
func TestShareLiveChainedDeliveryBelowPerColumn(t *testing.T) {
	plan := sharePlan(2, 4, 8, 3)
	env := bigEnv(0)
	env.Alpha = 2
	env.ShareModel = ShareModelLive
	live, err := Estimate(plan, env, Options{Trials: testTrials, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	env.ShareModel = ShareModelBinomial
	binom, err := Estimate(plan, env, Options{Trials: testTrials, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	if live.Rd() >= binom.Rd()-0.05 {
		t.Errorf("chained delivery %.4f not clearly below per-column %.4f", live.Rd(), binom.Rd())
	}
}

// TestShareLiveBenign: no churn, no adversary — the live model must be
// lossless and unreleasable like the others.
func TestShareLiveBenign(t *testing.T) {
	env := Env{Population: 1000, ShareModel: ShareModelLive}
	res, err := Estimate(sharePlan(2, 3, 5, 2), env, Options{Trials: 2000, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rr() != 1 || res.Rd() != 1 {
		t.Errorf("benign live model: Rr=%v Rd=%v, want 1/1", res.Rr(), res.Rd())
	}
}

// TestShareModelValidation: unknown model values are rejected, known names
// parse and print round-trip.
func TestShareModelValidation(t *testing.T) {
	env := Env{Population: 10, ShareModel: ShareModelLive + 1}
	if err := env.Validate(); err == nil {
		t.Error("unknown share model accepted")
	}
	for _, name := range []string{"default", "quota", "binomial", "live"} {
		m, err := ParseShareModel(name)
		if err != nil {
			t.Fatalf("ParseShareModel(%q): %v", name, err)
		}
		if m != ShareModelDefault && m.String() != name {
			t.Errorf("ParseShareModel(%q).String() = %q", name, m.String())
		}
	}
	if _, err := ParseShareModel("bogus"); err == nil {
		t.Error("bogus share model parsed")
	}
}

// TestMinRVersusR: MinR (Figure 6's convention) can exceed the conjunction R
// (Figures 7-8) but never by construction fall below R.
func TestMinRVersusR(t *testing.T) {
	for _, scheme := range []core.Plan{
		core.PlanCentral(0.3),
		{Scheme: core.SchemeDisjoint, K: 2, L: 3},
		{Scheme: core.SchemeJoint, K: 3, L: 4},
	} {
		env := bigEnv(0.3)
		env.Alpha = 1
		res, err := Estimate(scheme, env, Options{Trials: 5000, Seed: 14})
		if err != nil {
			t.Fatal(err)
		}
		if res.MinR() < res.R()-1e-9 {
			t.Errorf("%v: MinR %.4f below combined R %.4f", scheme.Scheme, res.MinR(), res.R())
		}
	}
}
