// Package dht implements a Kademlia distributed hash table: 160-bit node
// IDs under the XOR metric, k-bucket routing tables, iterative FIND_NODE /
// FIND_VALUE lookups, and TTL'd STORE replication. It is the substrate the
// self-emerging key routing protocol (internal/protocol) runs on, standing
// in for the Overlay Weaver toolkit used by the paper, and runs unchanged
// over the simulated in-memory network or real UDP sockets.
package dht

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math/bits"

	"selfemerge/internal/stats"
)

// IDBytes is the size of a node/key identifier: 160 bits, Kademlia's
// classic width.
const IDBytes = 20

// IDBits is the identifier width in bits.
const IDBits = IDBytes * 8

// ID is a 160-bit Kademlia identifier for both nodes and keys.
type ID [IDBytes]byte

// IDFromBytes copies a 20-byte slice into an ID.
func IDFromBytes(b []byte) (ID, error) {
	var id ID
	if len(b) != IDBytes {
		return ID{}, fmt.Errorf("dht: id must be %d bytes, got %d", IDBytes, len(b))
	}
	copy(id[:], b)
	return id, nil
}

// IDFromKey derives the identifier owning an arbitrary byte key: the
// truncated SHA-256 of the key, the standard DHT key placement rule.
func IDFromKey(key []byte) ID {
	sum := sha256.Sum256(key)
	var id ID
	copy(id[:], sum[:IDBytes])
	return id
}

// RandomID draws a uniform identifier from rng.
func RandomID(rng *stats.RNG) ID {
	var id ID
	for i := 0; i < IDBytes; i += 8 {
		v := rng.Uint64()
		for j := 0; j < 8 && i+j < IDBytes; j++ {
			id[i+j] = byte(v >> (8 * j))
		}
	}
	return id
}

// String returns the hexadecimal form.
func (id ID) String() string { return hex.EncodeToString(id[:]) }

// Short returns an abbreviated hex prefix for logs.
func (id ID) Short() string { return hex.EncodeToString(id[:4]) }

// IsZero reports whether the ID is all zeroes.
func (id ID) IsZero() bool { return id == ID{} }

// XOR returns the Kademlia distance between two identifiers.
func (id ID) XOR(other ID) ID {
	var out ID
	for i := range id {
		out[i] = id[i] ^ other[i]
	}
	return out
}

// Less compares identifiers as big-endian integers.
func (id ID) Less(other ID) bool {
	return bytes.Compare(id[:], other[:]) < 0
}

// LeadingZeros returns the number of leading zero bits (0..160).
func (id ID) LeadingZeros() int {
	for i, b := range id {
		if b != 0 {
			return i*8 + bits.LeadingZeros8(b)
		}
	}
	return IDBits
}

// BucketIndex returns the k-bucket index for a peer at the given XOR
// distance: 0 for the farthest half of the space, IDBits-1 for the nearest.
// The second return is false for the zero distance (self).
func (id ID) BucketIndex(peer ID) (int, bool) {
	d := id.XOR(peer)
	lz := d.LeadingZeros()
	if lz == IDBits {
		return 0, false
	}
	return lz, true
}

// Shard maps the identifier onto one of `shards` equal-width zones of the
// identifier space: floor(top64(id) * shards / 2^64), a fixed-point multiply
// with exact zone boundaries and no modulo bias. It is the zone→shard
// ownership rule of the partitioned live engine: ownership is a pure
// function of the identifier, so churn replacements — which reuse their
// predecessor's identifier — always land on the predecessor's shard, and
// contiguous zones keep the Kademlia neighbourhoods (where most lookup
// traffic concentrates) largely shard-local.
func (id ID) Shard(shards int) int {
	if shards <= 1 {
		return 0
	}
	hi, _ := bits.Mul64(binary.BigEndian.Uint64(id[:8]), uint64(shards))
	return int(hi)
}

// CloserTo reports whether a is closer to id than b under XOR distance.
func (id ID) CloserTo(a, b ID) bool {
	return id.DistanceCompare(a, b) < 0
}

// DistanceCompare orders a and b by XOR distance from id: -1 when a is
// closer, +1 when b is, 0 at equal distance (only when a == b). It is the
// comparison at the core of every routing decision — bucket sorts, shortlist
// sorts, owner resolution — so it works word-wise on big-endian lanes
// without materializing the distance arrays XOR would build.
func (id ID) DistanceCompare(a, b ID) int {
	for ofs := 0; ofs+8 <= IDBytes; ofs += 8 {
		w := binary.BigEndian.Uint64(id[ofs:])
		wa := binary.BigEndian.Uint64(a[ofs:]) ^ w
		wb := binary.BigEndian.Uint64(b[ofs:]) ^ w
		if wa != wb {
			if wa < wb {
				return -1
			}
			return 1
		}
	}
	w := binary.BigEndian.Uint32(id[IDBytes-4:])
	wa := binary.BigEndian.Uint32(a[IDBytes-4:]) ^ w
	wb := binary.BigEndian.Uint32(b[IDBytes-4:]) ^ w
	switch {
	case wa < wb:
		return -1
	case wa > wb:
		return 1
	default:
		return 0
	}
}
