package dht

import (
	"bytes"
	"testing"
)

// FuzzDecodeMessage asserts the DHT wire codec never panics on arbitrary
// datagrams — the property a UDP-exposed service lives or dies by — and
// that anything accepted re-encodes canonically.
func FuzzDecodeMessage(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0xFF})
	f.Add(bytes.Repeat([]byte{0x00}, 64))
	ping, err := (Message{Kind: KindPing, From: Contact{ID: ID{1}, Addr: "n1"}, RPCID: 7}).Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(ping)
	resp, err := (Message{
		Kind:     KindFindNodeResp,
		From:     Contact{ID: ID{2}, Addr: "n2"},
		RPCID:    9,
		Contacts: []Contact{{ID: ID{3}, Addr: "n3"}, {ID: ID{4}, Addr: "n4"}},
	}).Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(resp)
	val, err := (Message{Kind: KindFindValueResp, From: Contact{ID: ID{5}, Addr: "n5"}, Found: true, Value: []byte("v")}).Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(val)

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := DecodeMessage(data)
		if err != nil {
			return
		}
		enc, err := msg.Encode()
		if err != nil {
			// Decoded messages may exceed encode-side limits only if the
			// decoder accepted something the encoder never produces.
			t.Fatalf("decoded message failed to encode: %v", err)
		}
		again, err := DecodeMessage(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		enc2, err := again.Encode()
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("encode/decode not canonical:\n  first  %x\n  second %x", enc, enc2)
		}
	})
}
