package dht

import (
	"bytes"
	"testing"
)

// FuzzDecodeMessage asserts the DHT wire codec never panics on arbitrary
// datagrams — the property a UDP-exposed service lives or dies by — and
// that anything accepted re-encodes canonically.
func FuzzDecodeMessage(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0xFF})
	f.Add(bytes.Repeat([]byte{0x00}, 64))
	ping, err := (Message{Kind: KindPing, From: Contact{ID: ID{1}, Addr: "n1"}, RPCID: 7}).Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(ping)
	resp, err := (Message{
		Kind:     KindFindNodeResp,
		From:     Contact{ID: ID{2}, Addr: "n2"},
		RPCID:    9,
		Contacts: []Contact{{ID: ID{3}, Addr: "n3"}, {ID: ID{4}, Addr: "n4"}},
	}).Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(resp)
	val, err := (Message{Kind: KindFindValueResp, From: Contact{ID: ID{5}, Addr: "n5"}, Found: true, Value: []byte("v")}).Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(val)

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := DecodeMessage(data)
		if err != nil {
			return
		}
		enc, err := msg.Encode()
		if err != nil {
			// Decoded messages may exceed encode-side limits only if the
			// decoder accepted something the encoder never produces.
			t.Fatalf("decoded message failed to encode: %v", err)
		}
		again, err := DecodeMessage(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		enc2, err := again.Encode()
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("encode/decode not canonical:\n  first  %x\n  second %x", enc, enc2)
		}
	})
}

// FuzzMessageAppendEncode asserts the append-style wire codec and the
// scratch-reusing decoder are exactly the classic pair: AppendEncode onto an
// arbitrary prefix preserves the prefix and appends Encode's bytes, and
// DecodeMessageInto over a dirty scratch Message equals DecodeMessage.
func FuzzMessageAppendEncode(f *testing.F) {
	ping, err := (Message{Kind: KindPing, From: Contact{ID: ID{1}, Addr: "n1"}, RPCID: 7}).Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(ping, []byte{})
	resp, err := (Message{
		Kind:     KindFindNodeResp,
		From:     Contact{ID: ID{2}, Addr: "n2"},
		Contacts: []Contact{{ID: ID{3}, Addr: "n3"}},
	}).Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(resp, []byte("prefix"))
	f.Fuzz(func(t *testing.T, data, prefix []byte) {
		msg, err := DecodeMessage(data)
		if err != nil {
			return
		}
		classic, err := msg.Encode()
		if err != nil {
			t.Fatalf("decoded message failed to encode: %v", err)
		}
		appended, err := msg.AppendEncode(append([]byte(nil), prefix...))
		if err != nil {
			t.Fatalf("AppendEncode failed: %v", err)
		}
		if !bytes.HasPrefix(appended, prefix) {
			t.Fatalf("AppendEncode clobbered its prefix: %x", appended)
		}
		if !bytes.Equal(appended[len(prefix):], classic) {
			t.Fatalf("AppendEncode diverged from Encode:\n  append %x\n  encode %x", appended[len(prefix):], classic)
		}
		// Decode into a scratch Message carrying stale contacts from a
		// previous datagram: the pooled-decode path must fully overwrite it.
		scratch := Message{Contacts: []Contact{{ID: ID{9}, Addr: "stale"}, {ID: ID{8}, Addr: "stale2"}}}
		if err := DecodeMessageInto(&scratch, classic); err != nil {
			t.Fatalf("DecodeMessageInto failed: %v", err)
		}
		round, err := scratch.Encode()
		if err != nil {
			t.Fatalf("scratch re-encode failed: %v", err)
		}
		if !bytes.Equal(round, classic) {
			t.Fatalf("scratch decode diverged:\n  scratch %x\n  classic %x", round, classic)
		}
	})
}
