package dht

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"selfemerge/internal/transport"
)

// Kind enumerates the wire message types.
type Kind uint8

// Message kinds. Request/response pairs share an RPCID.
const (
	KindPing Kind = iota + 1
	KindPong
	KindFindNode
	KindFindNodeResp
	KindStore
	KindStoreAck
	KindFindValue
	KindFindValueResp
	KindApp
	KindAppAck
)

// String names the kind for logs.
func (k Kind) String() string {
	names := [...]string{"?", "PING", "PONG", "FIND_NODE", "FIND_NODE_RESP",
		"STORE", "STORE_ACK", "FIND_VALUE", "FIND_VALUE_RESP", "APP", "APP_ACK"}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

const (
	wireMagic   = 0x5345 // "SE"
	wireVersion = 1
	maxContacts = 64
	maxValue    = transport.MaxDatagram - 256
)

// ErrWire is returned for any malformed datagram.
var ErrWire = errors.New("dht: malformed message")

// Message is the single wire envelope for all DHT traffic.
type Message struct {
	Kind  Kind
	RPCID uint64
	From  Contact

	Target   ID        // FindNode / FindValue: the searched identifier
	Contacts []Contact // FindNodeResp / FindValueResp: closest contacts
	Key      ID        // Store / FindValue(Resp): value key
	Value    []byte    // Store / FindValueResp(found): value bytes
	TTL      time.Duration
	Found    bool   // FindValueResp: value present
	App      []byte // App: opaque protocol payload
}

// Encode renders the wire form into a fresh buffer.
func (m Message) Encode() ([]byte, error) {
	return m.AppendEncode(make([]byte, 0, 64+len(m.Value)+len(m.App)+len(m.Contacts)*48))
}

// AppendEncode appends the wire form to buf and returns the extended slice —
// the allocation-free form for senders that recycle wire buffers. The
// encoding is byte-identical to Encode.
func (m Message) AppendEncode(buf []byte) ([]byte, error) {
	if len(m.Contacts) > maxContacts {
		return nil, fmt.Errorf("dht: %d contacts exceeds wire limit", len(m.Contacts))
	}
	if len(m.Value) > maxValue || len(m.App) > maxValue {
		return nil, fmt.Errorf("dht: payload exceeds wire limit")
	}
	buf = binary.BigEndian.AppendUint16(buf, wireMagic)
	buf = append(buf, wireVersion, byte(m.Kind))
	buf = binary.BigEndian.AppendUint64(buf, m.RPCID)
	buf = append(buf, m.From.ID[:]...)
	buf = appendBytes(buf, []byte(m.From.Addr))
	buf = append(buf, m.Target[:]...)
	buf = append(buf, m.Key[:]...)
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.TTL))
	if m.Found {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = append(buf, byte(len(m.Contacts)))
	for _, c := range m.Contacts {
		buf = append(buf, c.ID[:]...)
		buf = appendBytes(buf, []byte(c.Addr))
	}
	buf = appendBytes32(buf, m.Value)
	buf = appendBytes32(buf, m.App)
	return buf, nil
}

// DecodeMessage parses a wire datagram. The Value, App and contact address
// fields alias data, so they are valid only as long as the input buffer is.
func DecodeMessage(data []byte) (Message, error) {
	var m Message
	if err := DecodeMessageInto(&m, data); err != nil {
		return Message{}, err
	}
	return m, nil
}

// DecodeMessageInto parses a wire datagram into m, reusing m's Contacts
// backing array — the allocation-free form for receive loops that recycle a
// scratch Message. All other fields are overwritten; on error m is left in
// an unspecified state. Like DecodeMessage, byte-slice fields alias data.
func DecodeMessageInto(m *Message, data []byte) error {
	return decodeMessageInto(m, data, nil)
}

// decodeMessageInto is the decode core; intern (optional) maps raw contact
// address bytes to an Addr, letting receive loops reuse interned strings
// instead of allocating one per contact per datagram. An interned decode is
// the receive-loop form, and the receive loop trusts the socket-level
// source address over the claimed one — so it leaves From.Addr empty for
// the caller to fill, neither converting the claimed bytes (an allocation
// per datagram) nor admitting them into the bounded intern table (which a
// flood of forged From addresses could otherwise fill, disabling interning
// for legitimate contact addresses).
func decodeMessageInto(m *Message, data []byte, intern func([]byte) transport.Addr) error {
	trustClaimedFrom := intern == nil
	if intern == nil {
		intern = func(b []byte) transport.Addr { return transport.Addr(b) }
	}
	r := wireReader{buf: data}
	magic, err := r.uint16()
	if err != nil || magic != wireMagic {
		return ErrWire
	}
	version, err := r.byte()
	if err != nil || version != wireVersion {
		return ErrWire
	}
	kindByte, err := r.byte()
	if err != nil {
		return ErrWire
	}
	m.Kind = Kind(kindByte)
	if m.Kind < KindPing || m.Kind > KindAppAck {
		return ErrWire
	}
	if m.RPCID, err = r.uint64(); err != nil {
		return ErrWire
	}
	if m.From.ID, err = r.id(); err != nil {
		return ErrWire
	}
	addr, err := r.bytes16()
	if err != nil {
		return ErrWire
	}
	if trustClaimedFrom {
		m.From.Addr = transport.Addr(addr)
	} else {
		m.From.Addr = ""
	}
	if m.Target, err = r.id(); err != nil {
		return ErrWire
	}
	if m.Key, err = r.id(); err != nil {
		return ErrWire
	}
	ttl, err := r.uint64()
	if err != nil {
		return ErrWire
	}
	m.TTL = time.Duration(ttl)
	foundByte, err := r.byte()
	if err != nil {
		return ErrWire
	}
	m.Found = foundByte == 1
	contactCount, err := r.byte()
	if err != nil || int(contactCount) > maxContacts {
		return ErrWire
	}
	m.Contacts = m.Contacts[:0]
	if n := int(contactCount); cap(m.Contacts) < n {
		m.Contacts = make([]Contact, 0, n)
	}
	for i := 0; i < int(contactCount); i++ {
		var c Contact
		if c.ID, err = r.id(); err != nil {
			return ErrWire
		}
		caddr, err := r.bytes16()
		if err != nil {
			return ErrWire
		}
		c.Addr = intern(caddr)
		m.Contacts = append(m.Contacts, c)
	}
	if m.Value, err = r.bytes32(); err != nil {
		return ErrWire
	}
	if m.App, err = r.bytes32(); err != nil {
		return ErrWire
	}
	if r.remaining() != 0 {
		return ErrWire
	}
	return nil
}

func appendBytes(buf, b []byte) []byte {
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(b)))
	return append(buf, b...)
}

func appendBytes32(buf, b []byte) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(b)))
	return append(buf, b...)
}

type wireReader struct {
	buf []byte
	off int
}

func (r *wireReader) remaining() int { return len(r.buf) - r.off }

func (r *wireReader) byte() (byte, error) {
	if r.remaining() < 1 {
		return 0, ErrWire
	}
	b := r.buf[r.off]
	r.off++
	return b, nil
}

func (r *wireReader) uint16() (uint16, error) {
	if r.remaining() < 2 {
		return 0, ErrWire
	}
	v := binary.BigEndian.Uint16(r.buf[r.off:])
	r.off += 2
	return v, nil
}

func (r *wireReader) uint64() (uint64, error) {
	if r.remaining() < 8 {
		return 0, ErrWire
	}
	v := binary.BigEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v, nil
}

func (r *wireReader) id() (ID, error) {
	if r.remaining() < IDBytes {
		return ID{}, ErrWire
	}
	var id ID
	copy(id[:], r.buf[r.off:])
	r.off += IDBytes
	return id, nil
}

func (r *wireReader) take(n int) ([]byte, error) {
	if n < 0 || r.remaining() < n {
		return nil, ErrWire
	}
	out := r.buf[r.off : r.off+n]
	r.off += n
	return out, nil
}

func (r *wireReader) bytes16() ([]byte, error) {
	n, err := r.uint16()
	if err != nil {
		return nil, err
	}
	return r.take(int(n))
}

func (r *wireReader) bytes32() ([]byte, error) {
	n, err := r.uint32()
	if err != nil {
		return nil, err
	}
	if n > maxValue {
		return nil, ErrWire
	}
	return r.take(int(n))
}

func (r *wireReader) uint32() (uint32, error) {
	if r.remaining() < 4 {
		return 0, ErrWire
	}
	v := binary.BigEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v, nil
}
