package dht

import (
	"testing"
	"testing/quick"

	"selfemerge/internal/stats"
)

func TestIDFromBytes(t *testing.T) {
	raw := make([]byte, IDBytes)
	raw[0] = 0xAB
	id, err := IDFromBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	if id[0] != 0xAB {
		t.Error("bytes not copied")
	}
	if _, err := IDFromBytes(raw[:19]); err == nil {
		t.Error("short slice accepted")
	}
}

func TestIDFromKeyDeterministic(t *testing.T) {
	a := IDFromKey([]byte("hello"))
	b := IDFromKey([]byte("hello"))
	c := IDFromKey([]byte("world"))
	if a != b {
		t.Error("same key produced different IDs")
	}
	if a == c {
		t.Error("different keys collided")
	}
}

func TestXORMetricAxioms(t *testing.T) {
	rng := stats.NewRNG(3)
	err := quick.Check(func(_ uint64) bool {
		a, b, c := RandomID(rng), RandomID(rng), RandomID(rng)
		// d(x,x) = 0
		if a.XOR(a) != (ID{}) {
			return false
		}
		// symmetry
		if a.XOR(b) != b.XOR(a) {
			return false
		}
		// XOR triangle equality: d(a,c) = d(a,b) xor d(b,c)
		if a.XOR(c) != a.XOR(b).XOR(b.XOR(c)) {
			return false
		}
		return true
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBucketIndex(t *testing.T) {
	var self ID
	// Peer differing in the top bit lands in bucket 0.
	var top ID
	top[0] = 0x80
	if idx, ok := self.BucketIndex(top); !ok || idx != 0 {
		t.Errorf("top-bit peer: idx=%d ok=%v", idx, ok)
	}
	// Peer differing only in the lowest bit lands in bucket 159.
	var low ID
	low[IDBytes-1] = 0x01
	if idx, ok := self.BucketIndex(low); !ok || idx != IDBits-1 {
		t.Errorf("low-bit peer: idx=%d ok=%v", idx, ok)
	}
	if _, ok := self.BucketIndex(self); ok {
		t.Error("self must not map to a bucket")
	}
}

func TestLeadingZeros(t *testing.T) {
	var id ID
	if got := id.LeadingZeros(); got != IDBits {
		t.Errorf("zero ID: %d", got)
	}
	id[0] = 0x01
	if got := id.LeadingZeros(); got != 7 {
		t.Errorf("0x01 first byte: %d", got)
	}
	id[0] = 0
	id[10] = 0xF0
	if got := id.LeadingZeros(); got != 80 {
		t.Errorf("0xF0 at byte 10: %d", got)
	}
}

func TestCloserTo(t *testing.T) {
	target := IDFromKey([]byte("t"))
	near := target
	near[IDBytes-1] ^= 0x01
	far := target
	far[0] ^= 0x80
	if !target.CloserTo(near, far) {
		t.Error("near not closer than far")
	}
	if target.CloserTo(far, near) {
		t.Error("far reported closer than near")
	}
}

func TestRandomIDsDistinct(t *testing.T) {
	rng := stats.NewRNG(9)
	seen := make(map[ID]bool)
	for i := 0; i < 1000; i++ {
		id := RandomID(rng)
		if seen[id] {
			t.Fatal("duplicate random ID")
		}
		seen[id] = true
	}
}

func TestStringForms(t *testing.T) {
	id := IDFromKey([]byte("x"))
	if len(id.String()) != IDBytes*2 {
		t.Errorf("String len %d", len(id.String()))
	}
	if len(id.Short()) != 8 {
		t.Errorf("Short len %d", len(id.Short()))
	}
	if (ID{}).IsZero() != true || id.IsZero() {
		t.Error("IsZero wrong")
	}
}
