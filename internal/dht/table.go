package dht

import (
	"encoding/binary"
	"slices"
	"sync"
	"time"

	"selfemerge/internal/transport"
)

// Contact is a routable peer: identifier plus transport address.
type Contact struct {
	ID   ID
	Addr transport.Addr
}

// bucketEntry tracks liveness metadata alongside the contact.
type bucketEntry struct {
	Contact
	lastSeen time.Time
}

// Table is a Kademlia routing table: IDBits k-buckets of at most K contacts
// each, least-recently-seen first. Observing a known contact refreshes it;
// observing a new contact inserts it, evicting the stalest entry of a full
// bucket when that entry has not been seen within StaleAfter (a simplified,
// ping-free variant of Kademlia's eviction check, adequate for the
// emulation and documented in DESIGN.md).
type Table struct {
	self       ID
	k          int
	staleAfter time.Duration
	now        func() time.Time

	mu      sync.Mutex
	buckets [IDBits][]bucketEntry
}

// NewTable creates a routing table for the given node.
func NewTable(self ID, k int, staleAfter time.Duration, now func() time.Time) *Table {
	if k < 1 {
		panic("dht: bucket size must be >= 1")
	}
	if now == nil {
		panic("dht: table requires a clock")
	}
	return &Table{self: self, k: k, staleAfter: staleAfter, now: now}
}

// Observe records that a contact was seen alive right now, on the word of
// an unverified inbound datagram. A known ID is refreshed but its tracked
// address is NOT re-pointed: any peer can claim any ID in a forged From, so
// accepting an address change here would let an attacker hijack an existing
// entry's traffic with a single spoofed packet. Address changes require
// ObserveVerified (a reply matched to an RPC this node issued).
func (t *Table) Observe(c Contact) {
	t.observe(c, false)
}

// ObserveVerified records a contact whose (ID, Addr) binding was confirmed
// by a matched RPC reply: the peer answered at that address with the pending
// request's RPCID, which a third party cannot forge blindly. Only verified
// observations may update the tracked address of a known ID.
func (t *Table) ObserveVerified(c Contact) {
	t.observe(c, true)
}

func (t *Table) observe(c Contact, verified bool) {
	idx, ok := t.self.BucketIndex(c.ID)
	if !ok {
		return // never track self
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	bucket := t.buckets[idx]
	for i := range bucket {
		if bucket[i].ID == c.ID {
			if verified {
				bucket[i].Addr = c.Addr
			}
			bucket[i].lastSeen = t.now()
			// Move to tail (most recently seen).
			entry := bucket[i]
			copy(bucket[i:], bucket[i+1:])
			bucket[len(bucket)-1] = entry
			return
		}
	}
	entry := bucketEntry{Contact: c, lastSeen: t.now()}
	if len(bucket) < t.k {
		t.buckets[idx] = append(bucket, entry)
		return
	}
	// Bucket full: replace the least-recently-seen entry if stale.
	if t.staleAfter > 0 && t.now().Sub(bucket[0].lastSeen) > t.staleAfter {
		copy(bucket, bucket[1:])
		bucket[len(bucket)-1] = entry
	}
	// Otherwise drop the newcomer (Kademlia prefers long-lived peers).
}

// Remove drops a contact (e.g. after an RPC timeout).
func (t *Table) Remove(id ID) {
	idx, ok := t.self.BucketIndex(id)
	if !ok {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	bucket := t.buckets[idx]
	for i := range bucket {
		if bucket[i].ID == id {
			t.buckets[idx] = append(bucket[:i], bucket[i+1:]...)
			return
		}
	}
}

// ranked is one selection candidate: the contact plus its XOR distance from
// the target packed into big-endian uint64/uint32 lanes, so every heap
// comparison is at most three integer compares instead of a 20-byte
// memcompare over materialized distance arrays.
type ranked struct {
	d0, d1 uint64
	d2     uint32
	c      Contact
}

// farther orders candidates by distance, larger first.
func (a ranked) farther(b ranked) bool {
	if a.d0 != b.d0 {
		return a.d0 > b.d0
	}
	if a.d1 != b.d1 {
		return a.d1 > b.d1
	}
	return a.d2 > b.d2
}

// rankedScratch pools the selection heaps Closest runs on, so the per-call
// cost is the selection itself, not its buffers.
var rankedScratch = sync.Pool{New: func() any { return new([]ranked) }}

// Closest returns up to count contacts closest to target under XOR
// distance, nearest first, in a fresh slice.
func (t *Table) Closest(target ID, count int) []Contact {
	return t.AppendClosest(nil, target, count)
}

// AppendClosest appends up to count contacts closest to target under XOR
// distance to dst, nearest first — the allocation-free form for receive
// paths that recycle a result buffer. This is the per-message hot path
// (every FIND_NODE handler and every lookup bootstrap runs it), so instead
// of sorting the whole table it runs an exact bounded selection: a
// count-sized max-heap on word-packed precomputed distances — most contacts
// fall to one integer comparison against the heap root — followed by a
// final sort of just the survivors. Distances are unique (distinct IDs), so
// the selected set and its order match a full sort exactly.
func (t *Table) AppendClosest(dst []Contact, target ID, count int) []Contact {
	if count <= 0 {
		return dst
	}
	t0 := binary.BigEndian.Uint64(target[:])
	t1 := binary.BigEndian.Uint64(target[8:])
	t2 := binary.BigEndian.Uint32(target[16:])
	hp := rankedScratch.Get().(*[]ranked)
	heap := (*hp)[:0]
	t.mu.Lock()
	for i := range t.buckets {
		for _, e := range t.buckets[i] {
			r := ranked{
				d0: binary.BigEndian.Uint64(e.ID[:]) ^ t0,
				d1: binary.BigEndian.Uint64(e.ID[8:]) ^ t1,
				d2: binary.BigEndian.Uint32(e.ID[16:]) ^ t2,
				c:  e.Contact,
			}
			if len(heap) < count {
				// Grow phase: sift the newcomer up the max-heap.
				heap = append(heap, r)
				for j := len(heap) - 1; j > 0; {
					parent := (j - 1) / 2
					if !heap[j].farther(heap[parent]) {
						break
					}
					heap[j], heap[parent] = heap[parent], heap[j]
					j = parent
				}
			} else if heap[0].farther(r) {
				// Replacement phase: evict the farthest kept contact.
				heap[0] = r
				for j := 0; ; {
					l, rgt := 2*j+1, 2*j+2
					largest := j
					if l < len(heap) && heap[l].farther(heap[largest]) {
						largest = l
					}
					if rgt < len(heap) && heap[rgt].farther(heap[largest]) {
						largest = rgt
					}
					if largest == j {
						break
					}
					heap[j], heap[largest] = heap[largest], heap[j]
					j = largest
				}
			}
		}
	}
	t.mu.Unlock()
	slices.SortFunc(heap, func(a, b ranked) int {
		if a.farther(b) {
			return 1
		}
		if b.farther(a) {
			return -1
		}
		return 0
	})
	if dst == nil {
		dst = make([]Contact, 0, len(heap))
	}
	for _, r := range heap {
		dst = append(dst, r.c)
	}
	*hp = heap[:0]
	rankedScratch.Put(hp)
	return dst
}

// Len returns the number of tracked contacts.
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for i := range t.buckets {
		n += len(t.buckets[i])
	}
	return n
}

// Contains reports whether the table currently tracks id.
func (t *Table) Contains(id ID) bool {
	idx, ok := t.self.BucketIndex(id)
	if !ok {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, e := range t.buckets[idx] {
		if e.ID == id {
			return true
		}
	}
	return false
}
