package dht

import (
	"sort"
	"sync"
	"time"

	"selfemerge/internal/transport"
)

// Contact is a routable peer: identifier plus transport address.
type Contact struct {
	ID   ID
	Addr transport.Addr
}

// bucketEntry tracks liveness metadata alongside the contact.
type bucketEntry struct {
	Contact
	lastSeen time.Time
}

// Table is a Kademlia routing table: IDBits k-buckets of at most K contacts
// each, least-recently-seen first. Observing a known contact refreshes it;
// observing a new contact inserts it, evicting the stalest entry of a full
// bucket when that entry has not been seen within StaleAfter (a simplified,
// ping-free variant of Kademlia's eviction check, adequate for the
// emulation and documented in DESIGN.md).
type Table struct {
	self       ID
	k          int
	staleAfter time.Duration
	now        func() time.Time

	mu      sync.Mutex
	buckets [IDBits][]bucketEntry
}

// NewTable creates a routing table for the given node.
func NewTable(self ID, k int, staleAfter time.Duration, now func() time.Time) *Table {
	if k < 1 {
		panic("dht: bucket size must be >= 1")
	}
	if now == nil {
		panic("dht: table requires a clock")
	}
	return &Table{self: self, k: k, staleAfter: staleAfter, now: now}
}

// Observe records that a contact was seen alive right now.
func (t *Table) Observe(c Contact) {
	idx, ok := t.self.BucketIndex(c.ID)
	if !ok {
		return // never track self
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	bucket := t.buckets[idx]
	for i := range bucket {
		if bucket[i].ID == c.ID {
			bucket[i].Addr = c.Addr
			bucket[i].lastSeen = t.now()
			// Move to tail (most recently seen).
			entry := bucket[i]
			copy(bucket[i:], bucket[i+1:])
			bucket[len(bucket)-1] = entry
			return
		}
	}
	entry := bucketEntry{Contact: c, lastSeen: t.now()}
	if len(bucket) < t.k {
		t.buckets[idx] = append(bucket, entry)
		return
	}
	// Bucket full: replace the least-recently-seen entry if stale.
	if t.staleAfter > 0 && t.now().Sub(bucket[0].lastSeen) > t.staleAfter {
		copy(bucket, bucket[1:])
		bucket[len(bucket)-1] = entry
	}
	// Otherwise drop the newcomer (Kademlia prefers long-lived peers).
}

// Remove drops a contact (e.g. after an RPC timeout).
func (t *Table) Remove(id ID) {
	idx, ok := t.self.BucketIndex(id)
	if !ok {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	bucket := t.buckets[idx]
	for i := range bucket {
		if bucket[i].ID == id {
			t.buckets[idx] = append(bucket[:i], bucket[i+1:]...)
			return
		}
	}
}

// Closest returns up to count contacts closest to target under XOR
// distance.
func (t *Table) Closest(target ID, count int) []Contact {
	t.mu.Lock()
	all := make([]Contact, 0, count*2)
	for i := range t.buckets {
		for _, e := range t.buckets[i] {
			all = append(all, e.Contact)
		}
	}
	t.mu.Unlock()
	sort.Slice(all, func(i, j int) bool {
		return target.CloserTo(all[i].ID, all[j].ID)
	})
	if len(all) > count {
		all = all[:count]
	}
	return all
}

// Len returns the number of tracked contacts.
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for i := range t.buckets {
		n += len(t.buckets[i])
	}
	return n
}

// Contains reports whether the table currently tracks id.
func (t *Table) Contains(id ID) bool {
	idx, ok := t.self.BucketIndex(id)
	if !ok {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, e := range t.buckets[idx] {
		if e.ID == id {
			return true
		}
	}
	return false
}
