package dht

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sync"
	"time"

	"selfemerge/internal/transport"
)

// Contact is a routable peer: identifier plus transport address.
type Contact struct {
	ID   ID
	Addr transport.Addr
}

// bucketEntry tracks liveness metadata alongside the contact. The ID is
// carried twice: as bytes (inside Contact, for identity compares and
// copy-out) and pre-packed into big-endian lanes, so the selection scan
// XORs lanes against the target directly instead of byte-swapping every
// entry's ID on every Closest call. lastSeen is UnixNano on the table
// clock rather than a time.Time: with millions of live entries the
// time.Time location pointer alone was a measurable garbage-collector
// scan cost, and the staleness test only ever needs a subtraction.
type bucketEntry struct {
	Contact
	l0, l1   uint64
	l2       uint32
	lastSeen int64
}

// bucket is one k-bucket: live entries least-recently-seen first, plus a
// replacement cache of newcomers (newest last) waiting for an eviction, and
// the state of the at-most-one outstanding liveness probe.
type bucket struct {
	entries []bucketEntry
	spare   []bucketEntry
	probing bool
}

// TablePolicy selects the full-bucket admission policy.
type TablePolicy int

const (
	// TableDefault resolves to the context's default: TablePingEvict for a
	// Node (secure by default), TableNaive for a standalone NewTable.
	TableDefault TablePolicy = iota
	// TablePingEvict is the real Kademlia policy: a newcomer to a full
	// bucket waits in the replacement cache while the least-recently-seen
	// entry is pinged, and is promoted only if that probe times out. A live
	// long-lived peer is never displaced by unverified traffic, which is
	// what makes bucket-poisoning floods ineffective.
	TablePingEvict
	// TableNaive is the historical ping-free variant: a newcomer replaces
	// the least-recently-seen entry as soon as it looks stale on the local
	// clock, with no liveness check. Kept for the adversary experiments
	// (the "undefended" arm of the attack curves) and as the pinned policy
	// of recorded deterministic scenarios.
	TableNaive
)

// String returns the policy's axis label.
func (p TablePolicy) String() string {
	switch p {
	case TablePingEvict:
		return "pingevict"
	case TableNaive:
		return "naive"
	default:
		return "default"
	}
}

// ParseTablePolicy parses an axis label ("pingevict" or "naive").
func ParseTablePolicy(s string) (TablePolicy, error) {
	switch s {
	case "pingevict":
		return TablePingEvict, nil
	case "naive":
		return TableNaive, nil
	}
	return TableDefault, fmt.Errorf("dht: unknown table policy %q (want pingevict or naive)", s)
}

// Table is a Kademlia routing table: IDBits k-buckets of at most K contacts
// each, least-recently-seen first. Observing a known contact refreshes it;
// observing a new contact inserts it, and a full bucket admits newcomers
// per the configured TablePolicy. Policy rationale and the threat model are
// documented in DESIGN.md.
type Table struct {
	self       ID
	k          int
	staleAfter time.Duration
	now        func() time.Time

	mu      sync.Mutex
	policy  TablePolicy
	pinger  func(Contact, func(alive bool))
	buckets [IDBits]bucket
	// occupied is a bitmap of buckets with live entries (bit i ↔ buckets[i]),
	// so the selection scan walks the ~log2(N) populated buckets directly
	// instead of testing all IDBits lengths per call. Guarded by mu.
	occupied [(IDBits + 63) / 64]uint64
}

// setOccupied resyncs bucket idx's occupancy bit. Callers hold t.mu and call
// it after any mutation that can change len(entries) across zero.
func (t *Table) setOccupied(idx int) {
	bit := uint64(1) << (idx & 63)
	if len(t.buckets[idx].entries) != 0 {
		t.occupied[idx>>6] |= bit
	} else {
		t.occupied[idx>>6] &^= bit
	}
}

// NewTable creates a routing table for the given node. A standalone table
// defaults to TableNaive (no pinger is attached); Node configures
// TablePingEvict wired to its Ping RPC.
func NewTable(self ID, k int, staleAfter time.Duration, now func() time.Time) *Table {
	if k < 1 {
		panic("dht: bucket size must be >= 1")
	}
	if now == nil {
		panic("dht: table requires a clock")
	}
	return &Table{self: self, k: k, staleAfter: staleAfter, now: now, policy: TableNaive}
}

// SetPolicy selects the full-bucket admission policy. TableDefault resolves
// to TableNaive for a standalone table.
func (t *Table) SetPolicy(p TablePolicy) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if p == TableDefault {
		p = TableNaive
	}
	t.policy = p
}

// SetPinger installs the liveness probe TablePingEvict uses: pinger must
// call done exactly once, with alive=false only after a timeout. It is
// invoked outside the table lock.
func (t *Table) SetPinger(pinger func(Contact, func(alive bool))) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.pinger = pinger
}

// Observe records that a contact was seen alive right now, on the word of
// an unverified inbound datagram. A known ID is refreshed but its tracked
// address is NOT re-pointed: any peer can claim any ID in a forged From, so
// accepting an address change here would let an attacker hijack an existing
// entry's traffic with a single spoofed packet. Address changes require
// ObserveVerified (a reply matched to an RPC this node issued).
func (t *Table) Observe(c Contact) {
	t.observe(c, false)
}

// ObserveVerified records a contact whose (ID, Addr) binding was confirmed
// by a matched RPC reply: the peer answered at that address with the pending
// request's RPCID, which a third party cannot forge blindly. Only verified
// observations may update the tracked address of a known ID.
func (t *Table) ObserveVerified(c Contact) {
	t.observe(c, true)
}

func (t *Table) observe(c Contact, verified bool) {
	idx, ok := t.self.BucketIndex(c.ID)
	if !ok {
		return // never track self
	}
	t.mu.Lock()
	b := &t.buckets[idx]
	entries := b.entries
	for i := range entries {
		if entries[i].ID == c.ID {
			if verified {
				entries[i].Addr = c.Addr
			}
			entries[i].lastSeen = t.now().UnixNano()
			// Move to tail (most recently seen).
			entry := entries[i]
			copy(entries[i:], entries[i+1:])
			entries[len(entries)-1] = entry
			t.mu.Unlock()
			return
		}
	}
	entry := bucketEntry{Contact: c, lastSeen: t.now().UnixNano()}
	entry.l0 = binary.BigEndian.Uint64(c.ID[:])
	entry.l1 = binary.BigEndian.Uint64(c.ID[8:])
	entry.l2 = binary.BigEndian.Uint32(c.ID[16:])
	if len(entries) < t.k {
		if cap(entries) == 0 {
			// First insert: skip the smallest growth steps without paying a
			// full K×entry zeroed allocation for the many buckets that stay
			// nearly empty (the far tail of every node's table).
			n := 8
			if n > t.k {
				n = t.k
			}
			entries = make([]bucketEntry, 0, n)
		}
		b.entries = append(entries, entry)
		t.setOccupied(idx)
		t.mu.Unlock()
		return
	}
	// Bucket full: admission is policy-dependent.
	if t.policy != TablePingEvict {
		// Naive: replace the least-recently-seen entry if it looks stale on
		// the local clock — no liveness check, so a forged-contact flood can
		// displace live peers (the measured weakness of this policy).
		if t.staleAfter > 0 && t.now().UnixNano()-entries[0].lastSeen > int64(t.staleAfter) {
			copy(entries, entries[1:])
			entries[len(entries)-1] = entry
		}
		// Otherwise drop the newcomer (Kademlia prefers long-lived peers).
		t.mu.Unlock()
		return
	}
	// Ping-evict: the newcomer waits in the replacement cache while the
	// least-recently-seen live entry is probed. Nothing is evicted on the
	// newcomer's word alone.
	t.upsertSpare(b, entry, verified)
	var probe Contact
	start := !b.probing && t.pinger != nil
	if start {
		b.probing = true
		probe = entries[0].Contact
	}
	pinger := t.pinger
	t.mu.Unlock()
	if start {
		// Outside the lock: the pinger issues a real RPC. A live peer's pong
		// refreshes it via ObserveVerified (and the newcomer stays spare); a
		// timeout removes it via the RPC failure path, and probeDone promotes
		// from the cache.
		pinger(probe, func(alive bool) { t.probeDone(probe.ID, alive) })
	}
}

// upsertSpare inserts or refreshes a replacement-cache record, newest last,
// capped at k (oldest dropped first). Callers hold t.mu.
func (t *Table) upsertSpare(b *bucket, e bucketEntry, verified bool) {
	for i := range b.spare {
		if b.spare[i].ID == e.ID {
			if verified {
				b.spare[i].Addr = e.Addr
			}
			b.spare[i].lastSeen = e.lastSeen
			entry := b.spare[i]
			copy(b.spare[i:], b.spare[i+1:])
			b.spare[len(b.spare)-1] = entry
			return
		}
	}
	if len(b.spare) >= t.k {
		copy(b.spare, b.spare[1:])
		b.spare = b.spare[:len(b.spare)-1]
	}
	b.spare = append(b.spare, e)
}

// probeDone finishes a liveness probe: the probing slot reopens, and if the
// probed entry died (the timeout path already removed it) the freed room is
// filled from the replacement cache.
func (t *Table) probeDone(id ID, _ bool) {
	idx, ok := t.self.BucketIndex(id)
	if !ok {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	b := &t.buckets[idx]
	b.probing = false
	t.promoteSpares(b)
	t.setOccupied(idx)
}

// promoteSpares moves replacement-cache records (newest first) into free
// bucket slots. Callers hold t.mu.
func (t *Table) promoteSpares(b *bucket) {
	for len(b.entries) < t.k && len(b.spare) > 0 {
		last := len(b.spare) - 1
		b.entries = append(b.entries, b.spare[last])
		b.spare[last] = bucketEntry{}
		b.spare = b.spare[:last]
	}
}

// Remove drops a contact (e.g. after an RPC timeout), refilling the freed
// slot from the bucket's replacement cache when one is waiting.
func (t *Table) Remove(id ID) {
	idx, ok := t.self.BucketIndex(id)
	if !ok {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	b := &t.buckets[idx]
	for i := range b.entries {
		if b.entries[i].ID == id {
			b.entries = append(b.entries[:i], b.entries[i+1:]...)
			t.promoteSpares(b)
			t.setOccupied(idx)
			return
		}
	}
	// Not live: forget any replacement-cache record too.
	for i := range b.spare {
		if b.spare[i].ID == id {
			b.spare = append(b.spare[:i], b.spare[i+1:]...)
			return
		}
	}
}

// ranked is one selection candidate: the contact plus its XOR distance from
// the target packed into big-endian uint64/uint32 lanes, so every heap
// comparison is at most three integer compares instead of a 20-byte
// memcompare over materialized distance arrays.
type ranked struct {
	d0, d1 uint64
	d2     uint32
	c      Contact
}

// farther orders candidates by distance, larger first.
func (a ranked) farther(b ranked) bool {
	if a.d0 != b.d0 {
		return a.d0 > b.d0
	}
	if a.d1 != b.d1 {
		return a.d1 > b.d1
	}
	return a.d2 > b.d2
}

// beyond reports whether the candidate lies strictly beyond the distance
// given as packed lanes.
func (a ranked) beyond(b0, b1 uint64, b2 uint32) bool {
	if a.d0 != b0 {
		return a.d0 > b0
	}
	if a.d1 != b1 {
		return a.d1 > b1
	}
	return a.d2 > b2
}

// rankContact packs c with its XOR distance lanes from target.
func rankContact(target ID, c Contact) ranked {
	return ranked{
		d0: binary.BigEndian.Uint64(c.ID[:]) ^ binary.BigEndian.Uint64(target[:]),
		d1: binary.BigEndian.Uint64(c.ID[8:]) ^ binary.BigEndian.Uint64(target[8:]),
		d2: binary.BigEndian.Uint32(c.ID[16:]) ^ binary.BigEndian.Uint32(target[16:]),
		c:  c,
	}
}

// rankedScratch pools the selection heaps Closest runs on, so the per-call
// cost is the selection itself, not its buffers.
var rankedScratch = sync.Pool{New: func() any { return new([]ranked) }}

// Closest returns up to count contacts closest to target under XOR
// distance, nearest first, in a fresh slice.
func (t *Table) Closest(target ID, count int) []Contact {
	return t.AppendClosest(nil, target, count)
}

// AppendClosest appends up to count contacts closest to target under XOR
// distance to dst, nearest first — the allocation-free form for receive
// paths that recycle a result buffer. This is the per-message hot path
// (every FIND_NODE handler and every lookup bootstrap runs it); the
// selection itself lives in appendClosestRanked.
func (t *Table) AppendClosest(dst []Contact, target ID, count int) []Contact {
	if count <= 0 {
		return dst
	}
	hp := rankedScratch.Get().(*[]ranked)
	heap := t.appendClosestRanked((*hp)[:0], target, count)
	if dst == nil {
		dst = make([]Contact, 0, len(heap))
	}
	for i := range heap {
		dst = append(dst, heap[i].c)
	}
	*hp = heap[:0]
	rankedScratch.Put(hp)
	return dst
}

// bucketBound is one non-empty bucket in the pruned scan order: its index
// plus the packed lower bound on the XOR distance from the target that any
// of its entries can achieve.
type bucketBound struct {
	l0, l1 uint64
	l2     uint32
	idx    int
}

// above orders bounds by floor, larger first.
func (a bucketBound) above(b bucketBound) bool {
	if a.l0 != b.l0 {
		return a.l0 > b.l0
	}
	if a.l1 != b.l1 {
		return a.l1 > b.l1
	}
	return a.l2 > b.l2
}

// appendClosestRanked is the selection core behind AppendClosest and the
// lookup shortlist bootstrap: it appends the count contacts closest to
// target to dst as ranked entries (distance lanes included), nearest first.
//
// It runs an exact bounded selection — a count-sized max-heap on
// word-packed distances, so most candidates fall to one integer comparison
// against the heap root — over a bucket scan pruned by per-bucket distance
// floors. Every entry of bucket b differs from self first at bit b, so its
// distance from target equals self XOR target on the bits above b, the
// flipped bit of that distance at b, and arbitrary bits below: an exact
// floor. Buckets are visited floor-ascending, and once the heap is full
// with its farthest member at or under the next floor no unscanned entry
// can displace anything, so the scan stops — near a populated table's
// target neighbourhood that leaves one or two buckets of the ~log2(N)
// non-empty ones. Distances are unique (distinct IDs), so the pruned
// selection and its nearest-first order match a full sort exactly.
func (t *Table) appendClosestRanked(dst []ranked, target ID, count int) []ranked {
	if count <= 0 {
		return dst
	}
	t0 := binary.BigEndian.Uint64(target[:])
	t1 := binary.BigEndian.Uint64(target[8:])
	t2 := binary.BigEndian.Uint32(target[16:])
	// The self-to-target distance lanes the per-bucket floors are carved
	// from.
	s0 := binary.BigEndian.Uint64(t.self[:]) ^ t0
	s1 := binary.BigEndian.Uint64(t.self[8:]) ^ t1
	s2 := binary.BigEndian.Uint32(t.self[16:]) ^ t2
	heap := dst
	t.mu.Lock()
	var order [IDBits]bucketBound
	nb := 0
	for w, word := range t.occupied {
		for word != 0 {
			i := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			b := bucketBound{idx: i}
			switch {
			case i < 64:
				b.l0 = s0&^(^uint64(0)>>i) | ^s0&(1<<(63-i))
			case i < 128:
				b.l0 = s0
				b.l1 = s1&^(^uint64(0)>>(i-64)) | ^s1&(1<<(127-i))
			default:
				b.l0, b.l1 = s0, s1
				b.l2 = s2&^(^uint32(0)>>(i-128)) | ^s2&(1<<(159-i))
			}
			// Floor-ascending insertion sort; only ~log2(N) buckets are
			// non-empty.
			j := nb - 1
			for j >= 0 && order[j].above(b) {
				order[j+1] = order[j]
				j--
			}
			order[j+1] = b
			nb++
		}
	}
	for bi := 0; bi < nb; bi++ {
		ob := &order[bi]
		if len(heap) == count && !heap[0].beyond(ob.l0, ob.l1, ob.l2) {
			// The farthest kept contact is at or under this bucket's floor,
			// and floors only rise from here: nothing left can improve.
			break
		}
		entries := t.buckets[ob.idx].entries
		for ei := range entries {
			// By pointer: a by-value range would copy the whole entry
			// per candidate just to read half of it.
			e := &entries[ei]
			d0 := e.l0 ^ t0
			d1 := e.l1 ^ t1
			d2 := e.l2 ^ t2
			if len(heap) < count {
				// Grow phase: sift the newcomer up the max-heap.
				heap = append(heap, ranked{d0: d0, d1: d1, d2: d2, c: e.Contact})
				for j := len(heap) - 1; j > 0; {
					parent := (j - 1) / 2
					if !heap[j].farther(heap[parent]) {
						break
					}
					heap[j], heap[parent] = heap[parent], heap[j]
					j = parent
				}
			} else if heap[0].beyond(d0, d1, d2) {
				// Replacement phase: evict the farthest kept contact. The
				// common case once the heap is full is rejection after the
				// lane compare above — candidates that lose never pay the
				// contact copy into a ranked record.
				heap[0] = ranked{d0: d0, d1: d1, d2: d2, c: e.Contact}
				for j := 0; ; {
					l, rgt := 2*j+1, 2*j+2
					largest := j
					if l < len(heap) && heap[l].farther(heap[largest]) {
						largest = l
					}
					if rgt < len(heap) && heap[rgt].farther(heap[largest]) {
						largest = rgt
					}
					if largest == j {
						break
					}
					heap[j], heap[largest] = heap[largest], heap[j]
					j = largest
				}
			}
		}
	}
	t.mu.Unlock()
	// In-place heapsort of the survivors: repeatedly retire the farthest to
	// the end — ascending by distance, nearest first, identical to a
	// comparator sort because distances are unique. Reuses the max-heap the
	// selection already built instead of paying an indirect-comparator sort.
	for end := len(heap) - 1; end > 0; end-- {
		heap[0], heap[end] = heap[end], heap[0]
		h := heap[:end]
		for j := 0; ; {
			l, rgt := 2*j+1, 2*j+2
			largest := j
			if l < len(h) && h[l].farther(h[largest]) {
				largest = l
			}
			if rgt < len(h) && h[rgt].farther(h[largest]) {
				largest = rgt
			}
			if largest == j {
				break
			}
			h[j], h[largest] = h[largest], h[j]
			j = largest
		}
	}
	return heap
}

// Len returns the number of tracked contacts.
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for i := range t.buckets {
		n += len(t.buckets[i].entries)
	}
	return n
}

// Each calls fn for every tracked contact, bucket order, least-recently-seen
// first within a bucket. fn runs under the table lock and must not call back
// into the table; it is a diagnostic hook (route audits), not a query path.
func (t *Table) Each(fn func(Contact)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range t.buckets {
		for _, e := range t.buckets[i].entries {
			fn(e.Contact)
		}
	}
}

// Contains reports whether the table currently tracks id.
func (t *Table) Contains(id ID) bool {
	idx, ok := t.self.BucketIndex(id)
	if !ok {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, e := range t.buckets[idx].entries {
		if e.ID == id {
			return true
		}
	}
	return false
}
