package dht

import (
	"encoding/binary"
	"fmt"
	"slices"
	"sync"
	"time"

	"selfemerge/internal/transport"
)

// Contact is a routable peer: identifier plus transport address.
type Contact struct {
	ID   ID
	Addr transport.Addr
}

// bucketEntry tracks liveness metadata alongside the contact.
type bucketEntry struct {
	Contact
	lastSeen time.Time
}

// bucket is one k-bucket: live entries least-recently-seen first, plus a
// replacement cache of newcomers (newest last) waiting for an eviction, and
// the state of the at-most-one outstanding liveness probe.
type bucket struct {
	entries []bucketEntry
	spare   []bucketEntry
	probing bool
}

// TablePolicy selects the full-bucket admission policy.
type TablePolicy int

const (
	// TableDefault resolves to the context's default: TablePingEvict for a
	// Node (secure by default), TableNaive for a standalone NewTable.
	TableDefault TablePolicy = iota
	// TablePingEvict is the real Kademlia policy: a newcomer to a full
	// bucket waits in the replacement cache while the least-recently-seen
	// entry is pinged, and is promoted only if that probe times out. A live
	// long-lived peer is never displaced by unverified traffic, which is
	// what makes bucket-poisoning floods ineffective.
	TablePingEvict
	// TableNaive is the historical ping-free variant: a newcomer replaces
	// the least-recently-seen entry as soon as it looks stale on the local
	// clock, with no liveness check. Kept for the adversary experiments
	// (the "undefended" arm of the attack curves) and as the pinned policy
	// of recorded deterministic scenarios.
	TableNaive
)

// String returns the policy's axis label.
func (p TablePolicy) String() string {
	switch p {
	case TablePingEvict:
		return "pingevict"
	case TableNaive:
		return "naive"
	default:
		return "default"
	}
}

// ParseTablePolicy parses an axis label ("pingevict" or "naive").
func ParseTablePolicy(s string) (TablePolicy, error) {
	switch s {
	case "pingevict":
		return TablePingEvict, nil
	case "naive":
		return TableNaive, nil
	}
	return TableDefault, fmt.Errorf("dht: unknown table policy %q (want pingevict or naive)", s)
}

// Table is a Kademlia routing table: IDBits k-buckets of at most K contacts
// each, least-recently-seen first. Observing a known contact refreshes it;
// observing a new contact inserts it, and a full bucket admits newcomers
// per the configured TablePolicy. Policy rationale and the threat model are
// documented in DESIGN.md.
type Table struct {
	self       ID
	k          int
	staleAfter time.Duration
	now        func() time.Time

	mu      sync.Mutex
	policy  TablePolicy
	pinger  func(Contact, func(alive bool))
	buckets [IDBits]bucket
}

// NewTable creates a routing table for the given node. A standalone table
// defaults to TableNaive (no pinger is attached); Node configures
// TablePingEvict wired to its Ping RPC.
func NewTable(self ID, k int, staleAfter time.Duration, now func() time.Time) *Table {
	if k < 1 {
		panic("dht: bucket size must be >= 1")
	}
	if now == nil {
		panic("dht: table requires a clock")
	}
	return &Table{self: self, k: k, staleAfter: staleAfter, now: now, policy: TableNaive}
}

// SetPolicy selects the full-bucket admission policy. TableDefault resolves
// to TableNaive for a standalone table.
func (t *Table) SetPolicy(p TablePolicy) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if p == TableDefault {
		p = TableNaive
	}
	t.policy = p
}

// SetPinger installs the liveness probe TablePingEvict uses: pinger must
// call done exactly once, with alive=false only after a timeout. It is
// invoked outside the table lock.
func (t *Table) SetPinger(pinger func(Contact, func(alive bool))) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.pinger = pinger
}

// Observe records that a contact was seen alive right now, on the word of
// an unverified inbound datagram. A known ID is refreshed but its tracked
// address is NOT re-pointed: any peer can claim any ID in a forged From, so
// accepting an address change here would let an attacker hijack an existing
// entry's traffic with a single spoofed packet. Address changes require
// ObserveVerified (a reply matched to an RPC this node issued).
func (t *Table) Observe(c Contact) {
	t.observe(c, false)
}

// ObserveVerified records a contact whose (ID, Addr) binding was confirmed
// by a matched RPC reply: the peer answered at that address with the pending
// request's RPCID, which a third party cannot forge blindly. Only verified
// observations may update the tracked address of a known ID.
func (t *Table) ObserveVerified(c Contact) {
	t.observe(c, true)
}

func (t *Table) observe(c Contact, verified bool) {
	idx, ok := t.self.BucketIndex(c.ID)
	if !ok {
		return // never track self
	}
	t.mu.Lock()
	b := &t.buckets[idx]
	entries := b.entries
	for i := range entries {
		if entries[i].ID == c.ID {
			if verified {
				entries[i].Addr = c.Addr
			}
			entries[i].lastSeen = t.now()
			// Move to tail (most recently seen).
			entry := entries[i]
			copy(entries[i:], entries[i+1:])
			entries[len(entries)-1] = entry
			t.mu.Unlock()
			return
		}
	}
	entry := bucketEntry{Contact: c, lastSeen: t.now()}
	if len(entries) < t.k {
		b.entries = append(entries, entry)
		t.mu.Unlock()
		return
	}
	// Bucket full: admission is policy-dependent.
	if t.policy != TablePingEvict {
		// Naive: replace the least-recently-seen entry if it looks stale on
		// the local clock — no liveness check, so a forged-contact flood can
		// displace live peers (the measured weakness of this policy).
		if t.staleAfter > 0 && t.now().Sub(entries[0].lastSeen) > t.staleAfter {
			copy(entries, entries[1:])
			entries[len(entries)-1] = entry
		}
		// Otherwise drop the newcomer (Kademlia prefers long-lived peers).
		t.mu.Unlock()
		return
	}
	// Ping-evict: the newcomer waits in the replacement cache while the
	// least-recently-seen live entry is probed. Nothing is evicted on the
	// newcomer's word alone.
	t.upsertSpare(b, c, entry.lastSeen, verified)
	var probe Contact
	start := !b.probing && t.pinger != nil
	if start {
		b.probing = true
		probe = entries[0].Contact
	}
	pinger := t.pinger
	t.mu.Unlock()
	if start {
		// Outside the lock: the pinger issues a real RPC. A live peer's pong
		// refreshes it via ObserveVerified (and the newcomer stays spare); a
		// timeout removes it via the RPC failure path, and probeDone promotes
		// from the cache.
		pinger(probe, func(alive bool) { t.probeDone(probe.ID, alive) })
	}
}

// upsertSpare inserts or refreshes a replacement-cache record, newest last,
// capped at k (oldest dropped first). Callers hold t.mu.
func (t *Table) upsertSpare(b *bucket, c Contact, seen time.Time, verified bool) {
	for i := range b.spare {
		if b.spare[i].ID == c.ID {
			if verified {
				b.spare[i].Addr = c.Addr
			}
			b.spare[i].lastSeen = seen
			entry := b.spare[i]
			copy(b.spare[i:], b.spare[i+1:])
			b.spare[len(b.spare)-1] = entry
			return
		}
	}
	if len(b.spare) >= t.k {
		copy(b.spare, b.spare[1:])
		b.spare = b.spare[:len(b.spare)-1]
	}
	b.spare = append(b.spare, bucketEntry{Contact: c, lastSeen: seen})
}

// probeDone finishes a liveness probe: the probing slot reopens, and if the
// probed entry died (the timeout path already removed it) the freed room is
// filled from the replacement cache.
func (t *Table) probeDone(id ID, _ bool) {
	idx, ok := t.self.BucketIndex(id)
	if !ok {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	b := &t.buckets[idx]
	b.probing = false
	t.promoteSpares(b)
}

// promoteSpares moves replacement-cache records (newest first) into free
// bucket slots. Callers hold t.mu.
func (t *Table) promoteSpares(b *bucket) {
	for len(b.entries) < t.k && len(b.spare) > 0 {
		last := len(b.spare) - 1
		b.entries = append(b.entries, b.spare[last])
		b.spare[last] = bucketEntry{}
		b.spare = b.spare[:last]
	}
}

// Remove drops a contact (e.g. after an RPC timeout), refilling the freed
// slot from the bucket's replacement cache when one is waiting.
func (t *Table) Remove(id ID) {
	idx, ok := t.self.BucketIndex(id)
	if !ok {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	b := &t.buckets[idx]
	for i := range b.entries {
		if b.entries[i].ID == id {
			b.entries = append(b.entries[:i], b.entries[i+1:]...)
			t.promoteSpares(b)
			return
		}
	}
	// Not live: forget any replacement-cache record too.
	for i := range b.spare {
		if b.spare[i].ID == id {
			b.spare = append(b.spare[:i], b.spare[i+1:]...)
			return
		}
	}
}

// ranked is one selection candidate: the contact plus its XOR distance from
// the target packed into big-endian uint64/uint32 lanes, so every heap
// comparison is at most three integer compares instead of a 20-byte
// memcompare over materialized distance arrays.
type ranked struct {
	d0, d1 uint64
	d2     uint32
	c      Contact
}

// farther orders candidates by distance, larger first.
func (a ranked) farther(b ranked) bool {
	if a.d0 != b.d0 {
		return a.d0 > b.d0
	}
	if a.d1 != b.d1 {
		return a.d1 > b.d1
	}
	return a.d2 > b.d2
}

// rankedScratch pools the selection heaps Closest runs on, so the per-call
// cost is the selection itself, not its buffers.
var rankedScratch = sync.Pool{New: func() any { return new([]ranked) }}

// Closest returns up to count contacts closest to target under XOR
// distance, nearest first, in a fresh slice.
func (t *Table) Closest(target ID, count int) []Contact {
	return t.AppendClosest(nil, target, count)
}

// AppendClosest appends up to count contacts closest to target under XOR
// distance to dst, nearest first — the allocation-free form for receive
// paths that recycle a result buffer. This is the per-message hot path
// (every FIND_NODE handler and every lookup bootstrap runs it), so instead
// of sorting the whole table it runs an exact bounded selection: a
// count-sized max-heap on word-packed precomputed distances — most contacts
// fall to one integer comparison against the heap root — followed by a
// final sort of just the survivors. Distances are unique (distinct IDs), so
// the selected set and its order match a full sort exactly.
func (t *Table) AppendClosest(dst []Contact, target ID, count int) []Contact {
	if count <= 0 {
		return dst
	}
	t0 := binary.BigEndian.Uint64(target[:])
	t1 := binary.BigEndian.Uint64(target[8:])
	t2 := binary.BigEndian.Uint32(target[16:])
	hp := rankedScratch.Get().(*[]ranked)
	heap := (*hp)[:0]
	t.mu.Lock()
	for i := range t.buckets {
		for _, e := range t.buckets[i].entries {
			r := ranked{
				d0: binary.BigEndian.Uint64(e.ID[:]) ^ t0,
				d1: binary.BigEndian.Uint64(e.ID[8:]) ^ t1,
				d2: binary.BigEndian.Uint32(e.ID[16:]) ^ t2,
				c:  e.Contact,
			}
			if len(heap) < count {
				// Grow phase: sift the newcomer up the max-heap.
				heap = append(heap, r)
				for j := len(heap) - 1; j > 0; {
					parent := (j - 1) / 2
					if !heap[j].farther(heap[parent]) {
						break
					}
					heap[j], heap[parent] = heap[parent], heap[j]
					j = parent
				}
			} else if heap[0].farther(r) {
				// Replacement phase: evict the farthest kept contact.
				heap[0] = r
				for j := 0; ; {
					l, rgt := 2*j+1, 2*j+2
					largest := j
					if l < len(heap) && heap[l].farther(heap[largest]) {
						largest = l
					}
					if rgt < len(heap) && heap[rgt].farther(heap[largest]) {
						largest = rgt
					}
					if largest == j {
						break
					}
					heap[j], heap[largest] = heap[largest], heap[j]
					j = largest
				}
			}
		}
	}
	t.mu.Unlock()
	slices.SortFunc(heap, func(a, b ranked) int {
		if a.farther(b) {
			return 1
		}
		if b.farther(a) {
			return -1
		}
		return 0
	})
	if dst == nil {
		dst = make([]Contact, 0, len(heap))
	}
	for _, r := range heap {
		dst = append(dst, r.c)
	}
	*hp = heap[:0]
	rankedScratch.Put(hp)
	return dst
}

// Len returns the number of tracked contacts.
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for i := range t.buckets {
		n += len(t.buckets[i].entries)
	}
	return n
}

// Each calls fn for every tracked contact, bucket order, least-recently-seen
// first within a bucket. fn runs under the table lock and must not call back
// into the table; it is a diagnostic hook (route audits), not a query path.
func (t *Table) Each(fn func(Contact)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range t.buckets {
		for _, e := range t.buckets[i].entries {
			fn(e.Contact)
		}
	}
}

// Contains reports whether the table currently tracks id.
func (t *Table) Contains(id ID) bool {
	idx, ok := t.self.BucketIndex(id)
	if !ok {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, e := range t.buckets[idx].entries {
		if e.ID == id {
			return true
		}
	}
	return false
}
