package dht

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"selfemerge/internal/sim"
	"selfemerge/internal/stats"
	"selfemerge/internal/transport"
	"selfemerge/internal/transport/simnet"
)

// cluster is a simnet DHT network for tests.
type cluster struct {
	sim   *sim.Simulator
	net   *simnet.Network
	nodes []*Node
	rng   *stats.RNG
}

// newCluster boots n nodes, all bootstrapped through node 0, and runs the
// simulator to quiescence.
func newCluster(t *testing.T, n int, _ func(self *Node, from Contact, payload []byte)) *cluster {
	t.Helper()
	c := &cluster{
		sim: sim.NewSimulator(),
		rng: stats.NewRNG(1234),
	}
	c.net = simnet.New(c.sim, simnet.Config{BaseLatency: 5 * time.Millisecond, Seed: 99})
	for i := 0; i < n; i++ {
		addr := transport.Addr(fmt.Sprintf("node-%d", i))
		ep := c.net.Endpoint(addr)
		node, err := NewNode(Config{
			ID:       RandomID(c.rng),
			Endpoint: ep,
			Clock:    c.sim,
		})
		if err != nil {
			t.Fatal(err)
		}
		c.nodes = append(c.nodes, node)
	}
	seed := []Contact{c.nodes[0].Contact()}
	for _, node := range c.nodes[1:] {
		node.Bootstrap(seed, nil)
	}
	c.sim.Run()
	return c
}

func TestClusterBootstrap(t *testing.T) {
	c := newCluster(t, 40, nil)
	for i, node := range c.nodes {
		if node.Table().Len() < 10 {
			t.Errorf("node %d knows only %d contacts", i, node.Table().Len())
		}
	}
}

func TestLookupFindsGloballyClosest(t *testing.T) {
	c := newCluster(t, 60, nil)
	target := IDFromKey([]byte("lookup-target"))

	// Ground truth: sort all node IDs by distance to target.
	ids := make([]ID, len(c.nodes))
	for i, n := range c.nodes {
		ids[i] = n.ID()
	}
	sort.Slice(ids, func(i, j int) bool { return target.CloserTo(ids[i], ids[j]) })

	var got []Contact
	c.nodes[7].Lookup(target, func(res []Contact) { got = append([]Contact(nil), res...) })
	c.sim.Run()

	if len(got) == 0 {
		t.Fatal("lookup returned nothing")
	}
	// The first few results must be the true closest nodes.
	for i := 0; i < 3 && i < len(got); i++ {
		if got[i].ID != ids[i] {
			t.Errorf("result[%d] = %s, want %s", i, got[i].ID.Short(), ids[i].Short())
		}
	}
}

func TestStoreAndGet(t *testing.T) {
	c := newCluster(t, 50, nil)
	key := IDFromKey([]byte("stored-key"))
	value := []byte("self-emerging ciphertext")

	var acked int
	c.nodes[3].Store(key, value, time.Hour, func(n int) { acked = n })
	c.sim.Run()
	if acked == 0 {
		t.Fatal("store acked by no replicas")
	}

	var got []byte
	var ok bool
	// Copy inside the callback: the value may alias a recycled delivery
	// buffer, valid only for the duration of the call (Get's contract).
	c.nodes[44].Get(key, func(v []byte, found bool) { got, ok = append([]byte(nil), v...), found })
	c.sim.Run()
	if !ok || string(got) != string(value) {
		t.Fatalf("Get = %q, %v", got, ok)
	}
}

func TestStoreIncludesSelfWhenOwner(t *testing.T) {
	c := newCluster(t, 40, nil)
	owner := c.nodes[13]
	key := owner.ID() // the storing node is trivially the globally closest to its own ID
	var acked int
	owner.Store(key, []byte("zone-local"), time.Hour, func(n int) { acked = n })
	c.sim.Run()
	if acked == 0 {
		t.Fatal("store acked by no replicas")
	}
	// The owner must hold the value itself, not just its neighbors: lookups
	// never return self, so Store has to rank-insert the local node.
	if v, ok := owner.loadLocal(key); !ok || string(v) != "zone-local" {
		t.Fatalf("owning node does not hold its zone's value: %q, %v", v, ok)
	}
	// And the value is still reachable from an arbitrary vantage point.
	var got []byte
	var found bool
	c.nodes[31].Get(key, func(v []byte, ok bool) { got, found = append([]byte(nil), v...), ok })
	c.sim.Run()
	if !found || string(got) != "zone-local" {
		t.Fatalf("Get after owner store = %q, %v", got, found)
	}
}

func TestForgedFromCannotHijackAddress(t *testing.T) {
	c := newCluster(t, 10, nil)
	contactee, victim := c.nodes[2], c.nodes[6]
	contactee.Table().Observe(victim.Contact())

	// An attacker forges a ping claiming the victim's ID. handle() rewrites
	// From.Addr to the socket source, so accepting the address change would
	// re-point the victim's entry at the attacker.
	attacker := c.net.Endpoint("attacker")
	forged := Message{Kind: KindPing, From: Contact{ID: victim.ID(), Addr: attacker.Addr()}}
	data, err := forged.AppendEncode(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := attacker.Send(transport.Addr("node-2"), data); err != nil {
		t.Fatal(err)
	}
	c.sim.Run()

	got := contactee.Table().Closest(victim.ID(), 1)
	if len(got) == 0 || got[0].ID != victim.ID() {
		t.Fatal("victim missing from routing table")
	}
	if got[0].Addr != victim.Contact().Addr {
		t.Fatalf("forged packet hijacked tracked address: %v", got[0].Addr)
	}
	// A verified exchange with the real peer still refreshes the entry.
	pingErr := fmt.Errorf("sentinel")
	contactee.Ping(got[0], func(err error) { pingErr = err })
	c.sim.Run()
	if pingErr != nil {
		t.Fatalf("ping real victim after forgery: %v", pingErr)
	}
}

func TestGetMissingKey(t *testing.T) {
	c := newCluster(t, 30, nil)
	var ok bool
	ran := false
	c.nodes[5].Get(IDFromKey([]byte("never-stored")), func(_ []byte, found bool) { ok, ran = found, true })
	c.sim.Run()
	if !ran {
		t.Fatal("callback never ran")
	}
	if ok {
		t.Fatal("found a value that was never stored")
	}
}

func TestStoreTTLExpires(t *testing.T) {
	c := newCluster(t, 30, nil)
	key := IDFromKey([]byte("ttl-key"))
	c.nodes[0].Store(key, []byte("v"), time.Minute, nil)
	c.sim.Run()

	var okBefore, okAfter bool
	c.nodes[9].Get(key, func(_ []byte, found bool) { okBefore = found })
	c.sim.Run()
	c.sim.RunFor(2 * time.Minute)
	c.nodes[9].Get(key, func(_ []byte, found bool) { okAfter = found })
	c.sim.Run()
	if !okBefore {
		t.Fatal("value missing before TTL")
	}
	if okAfter {
		t.Fatal("value alive after TTL")
	}
}

func TestSendToOwnerRoutesToClosest(t *testing.T) {
	received := make(map[ID][]byte)
	var receivers []*Node
	c := &cluster{sim: sim.NewSimulator(), rng: stats.NewRNG(7)}
	c.net = simnet.New(c.sim, simnet.Config{BaseLatency: time.Millisecond, Seed: 1})
	for i := 0; i < 40; i++ {
		addr := transport.Addr(fmt.Sprintf("node-%d", i))
		ep := c.net.Endpoint(addr)
		id := RandomID(c.rng)
		node, err := NewNode(Config{
			ID:       id,
			Endpoint: ep,
			Clock:    c.sim,
			OnApp: func(from Contact, payload []byte) {
				received[id] = payload
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		c.nodes = append(c.nodes, node)
		receivers = append(receivers, node)
	}
	seed := []Contact{c.nodes[0].Contact()}
	for _, node := range c.nodes[1:] {
		node.Bootstrap(seed, nil)
	}
	c.sim.Run()

	key := IDFromKey([]byte("owner-routing"))
	var owner Contact
	c.nodes[11].SendToOwner(key, []byte("package"), func(ct Contact, err error) {
		if err != nil {
			t.Errorf("SendToOwner: %v", err)
		}
		owner = ct
	})
	c.sim.Run()

	// The receiving node must be the globally closest to the key.
	best := receivers[0].ID()
	for _, n := range receivers {
		if key.CloserTo(n.ID(), best) {
			best = n.ID()
		}
	}
	if owner.ID != best {
		t.Errorf("owner = %s, want %s", owner.ID.Short(), best.Short())
	}
	if string(received[best]) != "package" {
		t.Errorf("closest node did not receive the payload: %q", received[best])
	}
}

func TestLookupSurvivesDeadNodes(t *testing.T) {
	c := newCluster(t, 50, nil)
	// Kill a third of the network.
	for i := 10; i < 26; i++ {
		if err := c.nodes[i].Close(); err != nil {
			t.Fatal(err)
		}
	}
	var got []Contact
	c.nodes[2].Lookup(IDFromKey([]byte("after-churn")), func(res []Contact) { got = append([]Contact(nil), res...) })
	c.sim.Run()
	if len(got) == 0 {
		t.Fatal("lookup failed after node deaths")
	}
}

func TestNodeValidation(t *testing.T) {
	s := sim.NewSimulator()
	net := simnet.New(s, simnet.Config{})
	ep := net.Endpoint("a")
	if _, err := NewNode(Config{Endpoint: ep, Clock: s}); err == nil {
		t.Error("zero ID accepted")
	}
	if _, err := NewNode(Config{ID: IDFromKey([]byte("x")), Clock: s}); err == nil {
		t.Error("nil endpoint accepted")
	}
	if _, err := NewNode(Config{ID: IDFromKey([]byte("x")), Endpoint: ep}); err == nil {
		t.Error("nil clock accepted")
	}
}

func TestPing(t *testing.T) {
	c := newCluster(t, 5, nil)
	var pingErr = fmt.Errorf("sentinel")
	c.nodes[1].Ping(c.nodes[2].Contact(), func(err error) { pingErr = err })
	c.sim.Run()
	if pingErr != nil {
		t.Fatalf("ping failed: %v", pingErr)
	}
	// Ping a dead node: must time out.
	if err := c.nodes[3].Close(); err != nil {
		t.Fatal(err)
	}
	var timeoutErr error
	c.nodes[1].Ping(c.nodes[3].Contact(), func(err error) { timeoutErr = err })
	c.sim.Run()
	if timeoutErr != ErrTimeout {
		t.Fatalf("ping dead node: %v, want ErrTimeout", timeoutErr)
	}
}

func TestClosedNodeRejectsOps(t *testing.T) {
	c := newCluster(t, 5, nil)
	if err := c.nodes[4].Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.nodes[4].SendApp(c.nodes[0].Contact(), []byte("x")); err != ErrClosed {
		t.Errorf("SendApp on closed node: %v", err)
	}
	if err := c.nodes[4].Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestRPCTimeoutRemovesFromTable(t *testing.T) {
	c := newCluster(t, 20, nil)
	victim := c.nodes[7]
	contactee := c.nodes[3]
	// Ensure contactee knows victim.
	contactee.Table().Observe(victim.Contact())
	c.net.SetDown(transport.Addr("node-7"), true)
	var err error
	contactee.Ping(victim.Contact(), func(e error) { err = e })
	c.sim.Run()
	if err != ErrTimeout {
		t.Fatalf("expected timeout, got %v", err)
	}
	if contactee.Table().Contains(victim.ID()) {
		t.Error("unresponsive node still in routing table")
	}
}
