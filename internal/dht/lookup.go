package dht

import (
	"sync"
	"time"

	"selfemerge/internal/sim"
)

// Lookup performs an iterative FIND_NODE for target and calls cb with the
// up-to-K closest contacts found. cb runs on the clock's dispatch context.
// The contact slice is only valid for the duration of the callback (it
// aliases a recycled lookup buffer), so copy to retain.
func (n *Node) Lookup(target ID, cb func([]Contact)) {
	n.newLookup(target, false, func(contacts []Contact, _ []byte, _ bool) {
		cb(contacts)
	})
}

// Get performs an iterative FIND_VALUE for key. cb receives the value if
// any replica held it; the value bytes are only valid for the duration of
// the callback (they may alias a recycled delivery buffer), so copy to
// retain.
func (n *Node) Get(key ID, cb func(value []byte, ok bool)) {
	n.newLookup(key, true, func(_ []Contact, value []byte, found bool) {
		cb(value, found)
	})
}

// Store replicates value at the cfg.Replicate closest nodes to key. The
// local node is itself a replica candidate: lookups never return self, so
// without the explicit insertion a storing node that owns the key's zone
// would replicate only to its neighbors and the owner itself would answer
// Get with a referral instead of the value (the same rank insertion
// SendToOwners performs). cb (optional) receives the number of acknowledged
// replicas; a local store counts as one acknowledgement.
func (n *Node) Store(key ID, value []byte, ttl time.Duration, cb func(acked int)) {
	n.Lookup(key, func(closest []Contact) {
		self := n.Contact()
		pos := len(closest)
		for i, c := range closest {
			if key.CloserTo(self.ID, c.ID) {
				pos = i
				break
			}
		}
		closest = insertContact(closest, pos, self)
		if len(closest) > n.cfg.Replicate {
			closest = closest[:n.cfg.Replicate]
		}
		var (
			mu    sync.Mutex
			acked int
			left  = len(closest)
		)
		settle := func(ok bool) {
			mu.Lock()
			if ok {
				acked++
			}
			left--
			finished := left == 0
			total := acked
			mu.Unlock()
			if finished && cb != nil {
				cb(total)
			}
		}
		for _, c := range closest {
			if c.ID == self.ID {
				// Local replica: store immediately, acknowledge through the
				// queue so cb never fires synchronously inside the lookup
				// callback.
				n.storeLocal(key, value, ttl)
				sim.Schedule(n.cfg.Clock, 0, func() { settle(true) })
				continue
			}
			n.request(c, Message{Kind: KindStore, Key: key, Value: value, TTL: ttl}, func(_ Message, err error) {
				settle(err == nil)
			})
		}
	})
}

// SendToOwner routes an application payload to the node currently owning
// key (the closest node found by lookup). done (optional) receives the
// owner contact, or an error if the network is empty.
func (n *Node) SendToOwner(key ID, payload []byte, done func(Contact, error)) {
	n.SendToOwners(key, payload, 1, done)
}

// SendToOwners routes an application payload to the replicas closest nodes
// to key. Iterative lookups from different vantage points can disagree on
// the single closest node when routing tables are incomplete, so protocols
// that must land related packets on the same holder send to a small replica
// set and deduplicate at the receiver — the standard Kademlia practice.
// The local node is itself a candidate owner: lookups never return self, so
// without this a holder that owns the key's zone would hand the payload to
// its neighbor instead of keeping it. done (optional) receives the closest
// owner.
func (n *Node) SendToOwners(key ID, payload []byte, replicas int, done func(Contact, error)) {
	if replicas < 1 {
		replicas = 1
	}
	n.Lookup(key, func(closest []Contact) {
		if len(closest) == 0 {
			// Not even one peer responded: the node is isolated (or the
			// network is empty), so keeping the payload locally would just
			// strand it invisibly.
			if done != nil {
				done(Contact{}, ErrLookupFailed)
			}
			return
		}
		self := n.Contact()
		pos := len(closest)
		for i, c := range closest {
			if key.CloserTo(self.ID, c.ID) {
				pos = i
				break
			}
		}
		closest = insertContact(closest, pos, self)
		if len(closest) > replicas {
			closest = closest[:replicas]
		}
		var err error
		for i, c := range closest {
			var sendErr error
			if c.ID == self.ID {
				sendErr = n.deliverLocal(payload)
			} else {
				sendErr = n.SendApp(c, payload)
			}
			if i == 0 {
				err = sendErr
			}
		}
		if done != nil {
			done(closest[0], err)
		}
	})
}

// insertContact inserts c at position pos, shifting the tail in place: the
// slice aliases a recycled lookup buffer that is ours for the callback's
// duration, so the shift is safe and the usual call allocates nothing.
func insertContact(list []Contact, pos int, c Contact) []Contact {
	list = append(list, Contact{})
	copy(list[pos+1:], list[pos:])
	list[pos] = c
	return list
}

// deliverLocal hands an application payload to the local node's own OnApp,
// asynchronously, as if it had arrived over the wire. The payload travels
// through a pooled buffer reclaimed after the handler returns, matching the
// transport delivery contract.
func (n *Node) deliverLocal(payload []byte) error {
	n.mu.Lock()
	closed := n.closed
	n.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if n.cfg.OnApp == nil {
		return nil
	}
	buf := wireBufs.Get().(*[]byte)
	msg := append((*buf)[:0], payload...)
	*buf = msg
	self := n.Contact()
	sim.Schedule(n.cfg.Clock, 0, func() {
		n.cfg.OnApp(self, msg)
		wireBufs.Put(buf)
	})
	return nil
}

// ErrLookupFailed is reported when a lookup yields no contacts at all.
var ErrLookupFailed = lookupError("dht: lookup found no contacts")

type lookupError string

func (e lookupError) Error() string { return string(e) }

// lookupState drives one iterative lookup. States are pooled: the maps and
// slices survive between lookups (cleared, capacity kept), so a steady
// mission workload runs its lookups allocation-free.
type lookupState struct {
	node     *Node
	target   ID
	wantVal  bool
	finishCb func([]Contact, []byte, bool)

	mu        sync.Mutex
	shortlist []Contact
	result    []Contact
	seen      map[ID]bool
	queried   map[ID]bool
	requeried map[ID]bool
	inflight  int
	finished  bool
}

var lookupStates = sync.Pool{New: func() any {
	return &lookupState{
		seen:      make(map[ID]bool, 32),
		queried:   make(map[ID]bool, 16),
		requeried: make(map[ID]bool, 4),
	}
}}

// release returns a drained state (finished, no queries in flight) to the
// pool. The maps and slices keep their capacity for the next lookup.
func (ls *lookupState) release() {
	clear(ls.seen)
	clear(ls.queried)
	clear(ls.requeried)
	ls.shortlist = ls.shortlist[:0]
	ls.result = ls.result[:0]
	ls.node = nil
	ls.finishCb = nil
	ls.finished = false
	lookupStates.Put(ls)
}

func (n *Node) newLookup(target ID, wantValue bool, cb func([]Contact, []byte, bool)) {
	// Local value short-circuit.
	if wantValue {
		if v, ok := n.loadLocal(target); ok {
			sim.Schedule(n.cfg.Clock, 0, func() { cb(nil, v, true) })
			return
		}
	}
	ls := lookupStates.Get().(*lookupState) //lint:allow poolpair step() assumes ownership: the state releases itself when the lookup drains
	ls.node = n
	ls.target = target
	ls.wantVal = wantValue
	ls.finishCb = cb
	ls.seen[n.cfg.ID] = true
	ls.queried[n.cfg.ID] = true
	ls.shortlist = n.table.AppendClosest(ls.shortlist, target, n.cfg.K)
	for _, c := range ls.shortlist {
		ls.seen[c.ID] = true
	}
	ls.step()
}

// step issues queries up to the alpha limit and detects termination.
func (ls *lookupState) step() {
	ls.mu.Lock()
	if ls.finished {
		ls.mu.Unlock()
		return
	}
	ls.sortShortlist()
	// Collect the next batch of unqueried candidates within the K closest
	// known (the standard Kademlia termination window), up to the alpha
	// parallelism limit. The batch lives on the stack for the usual alpha.
	var batch [8]Contact
	toQuery := batch[:0]
	if a := ls.node.cfg.Alpha; a > len(batch) {
		toQuery = make([]Contact, 0, a)
	}
	window := ls.shortlist
	if len(window) > ls.node.cfg.K {
		window = window[:ls.node.cfg.K]
	}
	for _, c := range window {
		if ls.inflight+len(toQuery) >= ls.node.cfg.Alpha {
			break
		}
		if !ls.queried[c.ID] {
			toQuery = append(toQuery, c)
		}
	}
	if len(toQuery) == 0 && ls.inflight == 0 {
		ls.finished = true
		result := ls.closestK()
		cb := ls.finishCb
		ls.mu.Unlock()
		cb(result, nil, false)
		ls.release()
		return
	}
	for _, c := range toQuery {
		ls.queried[c.ID] = true
		ls.inflight++
	}
	ls.mu.Unlock()

	kind := KindFindNode
	if ls.wantVal {
		kind = KindFindValue
	}
	for _, c := range toQuery {
		q := lookupQueries.Get().(*lookupQuery)
		q.ls, q.contact = ls, c
		ls.node.requestArg(c, Message{Kind: kind, Target: ls.target, Key: ls.target}, lookupQueryDone, q)
	}
}

// lookupQuery is the pooled argument for one in-flight lookup RPC: with the
// package-level lookupQueryDone it replaces the per-query response closure
// on the mission hot path.
type lookupQuery struct {
	ls      *lookupState
	contact Contact
}

var lookupQueries = sync.Pool{New: func() any { return new(lookupQuery) }}

func lookupQueryDone(v any, resp Message, err error) {
	q := v.(*lookupQuery)
	ls, contact := q.ls, q.contact
	q.ls = nil
	lookupQueries.Put(q)
	ls.onResponse(contact, resp, err)
}

func (ls *lookupState) onResponse(from Contact, resp Message, err error) {
	ls.mu.Lock()
	ls.inflight--
	if ls.finished {
		// A late response after a value-found finish: the state is recycled
		// once the last straggler drains.
		idle := ls.inflight == 0
		ls.mu.Unlock()
		if idle {
			ls.release()
		}
		return
	}
	if err != nil {
		if ls.node.cfg.Retry.enabled() && !ls.requeried[from.ID] {
			// Re-query before giving up the slot: a retry-hardened lookup
			// gives a timed-out contact one more full RPC (with its own
			// retries) before excluding it from the owner set — correlated
			// faults make a single timeout weak evidence of death. Clearing
			// the queried mark puts the contact back in step's candidate
			// window; the requeried mark makes the second failure final.
			ls.requeried[from.ID] = true
			delete(ls.queried, from.ID)
		} else {
			// Failover: an unresponsive contact (dead, churned out, or down)
			// is dropped from the shortlist so the final owner set never
			// includes it — the lookup routes around the failure to the
			// next-closest live node. The routing table penalty happens in
			// request's timeout path.
			for i, c := range ls.shortlist {
				if c.ID == from.ID {
					ls.shortlist = append(ls.shortlist[:i], ls.shortlist[i+1:]...)
					break
				}
			}
		}
	}
	if err == nil {
		if ls.wantVal && resp.Found {
			ls.finished = true
			value := resp.Value
			cb := ls.finishCb
			idle := ls.inflight == 0
			ls.mu.Unlock()
			cb(nil, value, true)
			if idle {
				ls.release()
			}
			return
		}
		for _, c := range resp.Contacts {
			if !ls.seen[c.ID] {
				ls.seen[c.ID] = true
				ls.shortlist = append(ls.shortlist, c)
			}
		}
	}
	ls.mu.Unlock()
	ls.step()
}

// closestK returns the final result set in the state's pooled result buffer
// — valid until the state is released, i.e. for the duration of the finish
// callback. Callers hold ls.mu.
func (ls *lookupState) closestK() []Contact {
	out := append(ls.result[:0], ls.shortlist...)
	if len(out) > ls.node.cfg.K {
		out = out[:ls.node.cfg.K]
	}
	ls.result = out
	return out
}

func (ls *lookupState) sortShortlist() {
	// Re-sorted on every lookup step over a mostly-sorted list: insertion
	// sort with the word-wise distance comparator is O(n + inversions)
	// here and, unlike slices.SortFunc, allocates no comparator closure.
	// IDs are unique in the shortlist, so the (stable) result matches any
	// correct sort exactly.
	sl := ls.shortlist
	for i := 1; i < len(sl); i++ {
		c := sl[i]
		j := i - 1
		for j >= 0 && ls.target.DistanceCompare(sl[j].ID, c.ID) > 0 {
			sl[j+1] = sl[j]
			j--
		}
		sl[j+1] = c
	}
}
