package dht

import (
	"sync"
	"time"

	"selfemerge/internal/sim"
)

// Lookup performs an iterative FIND_NODE for target and calls cb with the
// up-to-K closest contacts found. cb runs on the clock's dispatch context.
// The contact slice is only valid for the duration of the callback (it
// aliases a recycled lookup buffer), so copy to retain.
//
// The adapter rides through newLookup's arg slot: func values are
// pointer-shaped, so boxing cb allocates nothing and the lookup machinery
// stays closure-free.
func (n *Node) Lookup(target ID, cb func([]Contact)) {
	n.newLookup(target, false, lookupFinishContacts, cb)
}

func lookupFinishContacts(arg any, contacts []Contact, _ []byte, _ bool) {
	arg.(func([]Contact))(contacts)
}

// Get performs an iterative FIND_VALUE for key. cb receives the value if
// any replica held it; the value bytes are only valid for the duration of
// the callback (they may alias a recycled delivery buffer), so copy to
// retain.
func (n *Node) Get(key ID, cb func(value []byte, ok bool)) {
	n.newLookup(key, true, lookupFinishValue, cb)
}

func lookupFinishValue(arg any, _ []Contact, value []byte, found bool) {
	arg.(func([]byte, bool))(value, found)
}

// Store replicates value at the cfg.Replicate closest nodes to key. The
// local node is itself a replica candidate: lookups never return self, so
// without the explicit insertion a storing node that owns the key's zone
// would replicate only to its neighbors and the owner itself would answer
// Get with a referral instead of the value (the same rank insertion
// SendToOwners performs). cb (optional) receives the number of acknowledged
// replicas; a local store counts as one acknowledgement.
func (n *Node) Store(key ID, value []byte, ttl time.Duration, cb func(acked int)) {
	n.Lookup(key, func(closest []Contact) {
		self := n.Contact()
		pos := len(closest)
		for i, c := range closest {
			if key.CloserTo(self.ID, c.ID) {
				pos = i
				break
			}
		}
		closest = insertContact(closest, pos, self)
		if len(closest) > n.cfg.Replicate {
			closest = closest[:n.cfg.Replicate]
		}
		var (
			mu    sync.Mutex
			acked int
			left  = len(closest)
		)
		settle := func(ok bool) {
			mu.Lock()
			if ok {
				acked++
			}
			left--
			finished := left == 0
			total := acked
			mu.Unlock()
			if finished && cb != nil {
				cb(total)
			}
		}
		for _, c := range closest {
			if c.ID == self.ID {
				// Local replica: store immediately, acknowledge through the
				// queue so cb never fires synchronously inside the lookup
				// callback.
				n.storeLocal(key, value, ttl)
				sim.Schedule(n.cfg.Clock, 0, func() { settle(true) })
				continue
			}
			n.request(c, Message{Kind: KindStore, Key: key, Value: value, TTL: ttl}, func(_ Message, err error) {
				settle(err == nil)
			})
		}
	})
}

// SendToOwner routes an application payload to the node currently owning
// key (the closest node found by lookup). done (optional) receives the
// owner contact, or an error if the network is empty.
func (n *Node) SendToOwner(key ID, payload []byte, done func(Contact, error)) {
	n.SendToOwners(key, payload, 1, done)
}

// SendToOwners routes an application payload to the replicas closest nodes
// to key. Iterative lookups from different vantage points can disagree on
// the single closest node when routing tables are incomplete, so protocols
// that must land related packets on the same holder send to a small replica
// set and deduplicate at the receiver — the standard Kademlia practice.
// The local node is itself a candidate owner: lookups never return self, so
// without this a holder that owns the key's zone would hand the payload to
// its neighbor instead of keeping it. done (optional) receives the closest
// owner.
func (n *Node) SendToOwners(key ID, payload []byte, replicas int, done func(Contact, error)) {
	n.SendToOwnersArg(key, payload, replicas, sendOwnersAdapter, done)
}

func sendOwnersAdapter(arg any, c Contact, err error) {
	if cb, _ := arg.(func(Contact, error)); cb != nil {
		cb(c, err)
	}
}

// ownersSend is the pooled carrier for one SendToOwnersArg call: with the
// package-level ownersFinish it replaces the per-send completion closures
// on the mission hot path.
type ownersSend struct {
	node     *Node
	key      ID
	payload  []byte
	replicas int
	done     func(any, Contact, error)
	arg      any
}

var ownersSends = sync.Pool{New: func() any { return new(ownersSend) }}

// SendToOwnersArg is SendToOwners with an arg-threaded completion callback:
// done should be a package-level (non-capturing) function and arg rides
// along through the lookup machinery, so a steady mission send path
// allocates no per-call closures. done may be nil.
func (n *Node) SendToOwnersArg(key ID, payload []byte, replicas int, done func(any, Contact, error), arg any) {
	if replicas < 1 {
		replicas = 1
	}
	s := ownersSends.Get().(*ownersSend)
	*s = ownersSend{node: n, key: key, payload: payload, replicas: replicas, done: done, arg: arg}
	n.newLookup(key, false, ownersFinish, s)
}

func ownersFinish(v any, closest []Contact, _ []byte, _ bool) {
	s := v.(*ownersSend)
	n, key, payload, replicas := s.node, s.key, s.payload, s.replicas
	done, arg := s.done, s.arg
	*s = ownersSend{}
	ownersSends.Put(s)
	if len(closest) == 0 {
		// Not even one peer responded: the node is isolated (or the
		// network is empty), so keeping the payload locally would just
		// strand it invisibly.
		if done != nil {
			done(arg, Contact{}, ErrLookupFailed)
		}
		return
	}
	self := n.Contact()
	pos := len(closest)
	for i, c := range closest {
		if key.CloserTo(self.ID, c.ID) {
			pos = i
			break
		}
	}
	closest = insertContact(closest, pos, self)
	if len(closest) > replicas {
		closest = closest[:replicas]
	}
	var err error
	for i, c := range closest {
		var sendErr error
		if c.ID == self.ID {
			sendErr = n.deliverLocal(payload)
		} else {
			sendErr = n.SendApp(c, payload)
		}
		if i == 0 {
			err = sendErr
		}
	}
	if done != nil {
		done(arg, closest[0], err)
	}
}

// insertContact inserts c at position pos, shifting the tail in place: the
// slice aliases a recycled lookup buffer that is ours for the callback's
// duration, so the shift is safe and the usual call allocates nothing.
func insertContact(list []Contact, pos int, c Contact) []Contact {
	list = append(list, Contact{})
	copy(list[pos+1:], list[pos:])
	list[pos] = c
	return list
}

// deliverLocal hands an application payload to the local node's own OnApp,
// asynchronously, as if it had arrived over the wire. The payload travels
// through a pooled buffer reclaimed after the handler returns, matching the
// transport delivery contract.
func (n *Node) deliverLocal(payload []byte) error {
	n.mu.Lock()
	closed := n.closed
	n.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if n.cfg.OnApp == nil {
		return nil
	}
	buf := wireBufs.Get().(*[]byte)
	msg := append((*buf)[:0], payload...)
	*buf = msg
	self := n.Contact()
	sim.Schedule(n.cfg.Clock, 0, func() {
		n.cfg.OnApp(self, msg)
		wireBufs.Put(buf)
	})
	return nil
}

// ErrLookupFailed is reported when a lookup yields no contacts at all.
var ErrLookupFailed = lookupError("dht: lookup found no contacts")

type lookupError string

func (e lookupError) Error() string { return string(e) }

// lookupState drives one iterative lookup. States are pooled: the maps and
// slices survive between lookups (cleared, capacity kept), so a steady
// mission workload runs its lookups allocation-free.
type lookupState struct {
	node      *Node
	target    ID
	wantVal   bool
	finishCb  func(any, []Contact, []byte, bool)
	finishArg any

	mu        sync.Mutex
	shortlist []ranked
	// sorted is the length of the shortlist prefix known to be in ascending
	// distance order: appends land past it, removals keep it, and
	// sortShortlist only has to insert the tail.
	sorted    int
	result    []Contact
	seen      distSet
	queried   distSet
	requeried map[ID]bool
	inflight  int
	finished  bool
}

// release returns a drained state (finished, no queries in flight) to its
// node's freelist. The sets and slices keep their capacity for the node's
// next lookup — unlike a global sync.Pool, whose GC eviction made every
// lookup after a collection re-grow its shortlist and sets from scratch,
// feeding the next collection in turn.
func (ls *lookupState) release() {
	n := ls.node
	ls.seen.reset()
	ls.queried.reset()
	clear(ls.requeried)
	ls.shortlist = ls.shortlist[:0]
	ls.sorted = 0
	ls.result = ls.result[:0]
	ls.node = nil
	ls.finishCb = nil
	ls.finishArg = nil
	ls.finished = false
	n.mu.Lock()
	n.lsFree = append(n.lsFree, ls)
	n.mu.Unlock()
}

// distSet is an open-addressing membership set over packed XOR-distance
// lanes. For a fixed lookup target, ID ↔ distance is a bijection, so
// distance membership is exactly ID membership — and because IDs are
// uniformly distributed, d0 doubles as a ready-made hash: each operation is
// a mask and a short probe, with none of the per-call key hashing a
// map[ID]bool pays. Deletion backward-shifts the probe cluster, so the set
// needs no tombstones.
type distSet struct {
	slots []distSlot // power-of-two length
	used  int
}

type distSlot struct {
	d0, d1 uint64
	d2     uint32
	full   bool
}

func (s *distSet) reset() {
	clear(s.slots)
	s.used = 0
}

func (s *distSet) grow() {
	old := s.slots
	size := 2 * len(old)
	if size == 0 {
		size = 64
	}
	s.slots = make([]distSlot, size)
	mask := size - 1
	for i := range old {
		if !old[i].full {
			continue
		}
		j := int(old[i].d0) & mask
		for s.slots[j].full {
			j = (j + 1) & mask
		}
		s.slots[j] = old[i]
	}
}

// add inserts the distance and reports whether it was newly added.
func (s *distSet) add(d0, d1 uint64, d2 uint32) bool {
	if 4*(s.used+1) > 3*len(s.slots) {
		s.grow()
	}
	mask := len(s.slots) - 1
	i := int(d0) & mask
	for {
		sl := &s.slots[i]
		if !sl.full {
			*sl = distSlot{d0: d0, d1: d1, d2: d2, full: true}
			s.used++
			return true
		}
		if sl.d0 == d0 && sl.d1 == d1 && sl.d2 == d2 {
			return false
		}
		i = (i + 1) & mask
	}
}

func (s *distSet) has(d0, d1 uint64, d2 uint32) bool {
	if s.used == 0 {
		return false
	}
	mask := len(s.slots) - 1
	i := int(d0) & mask
	for {
		sl := &s.slots[i]
		if !sl.full {
			return false
		}
		if sl.d0 == d0 && sl.d1 == d1 && sl.d2 == d2 {
			return true
		}
		i = (i + 1) & mask
	}
}

// del removes the distance if present, closing the hole by backward-shifting
// any cluster successor that can still be found from its home slot.
func (s *distSet) del(d0, d1 uint64, d2 uint32) {
	if s.used == 0 {
		return
	}
	mask := len(s.slots) - 1
	i := int(d0) & mask
	for {
		sl := &s.slots[i]
		if !sl.full {
			return
		}
		if sl.d0 == d0 && sl.d1 == d1 && sl.d2 == d2 {
			break
		}
		i = (i + 1) & mask
	}
	s.used--
	for j := (i + 1) & mask; s.slots[j].full; j = (j + 1) & mask {
		// Shift slot j into the hole unless its home lies in (i, j] —
		// moving it there would strand it before its home.
		home := int(s.slots[j].d0) & mask
		if (j-home)&mask >= (j-i)&mask {
			s.slots[i] = s.slots[j]
			i = j
		}
	}
	s.slots[i] = distSlot{}
}

func (n *Node) newLookup(target ID, wantValue bool, cb func(any, []Contact, []byte, bool), arg any) {
	// Local value short-circuit.
	if wantValue {
		if v, ok := n.loadLocal(target); ok {
			sim.Schedule(n.cfg.Clock, 0, func() { cb(arg, nil, v, true) })
			return
		}
	}
	n.mu.Lock()
	var ls *lookupState
	if k := len(n.lsFree); k > 0 {
		ls = n.lsFree[k-1]
		n.lsFree[k-1] = nil
		n.lsFree = n.lsFree[:k-1]
	}
	n.mu.Unlock()
	if ls == nil {
		ls = &lookupState{requeried: make(map[ID]bool, 4)}
	}
	ls.node = n
	ls.target = target
	ls.wantVal = wantValue
	ls.finishCb = cb
	ls.finishArg = arg
	self := rankContact(target, Contact{ID: n.cfg.ID})
	ls.seen.add(self.d0, self.d1, self.d2)
	ls.queried.add(self.d0, self.d1, self.d2)
	// The bootstrap selection arrives nearest-first: the whole list starts
	// sorted.
	ls.shortlist = n.table.appendClosestRanked(ls.shortlist, target, n.cfg.K)
	ls.sorted = len(ls.shortlist)
	for i := range ls.shortlist {
		r := &ls.shortlist[i]
		ls.seen.add(r.d0, r.d1, r.d2)
	}
	ls.step()
}

// step issues queries up to the alpha limit and detects termination.
func (ls *lookupState) step() {
	ls.mu.Lock()
	if ls.finished {
		ls.mu.Unlock()
		return
	}
	ls.sortShortlist()
	// Collect the next batch of unqueried candidates within the K closest
	// known (the standard Kademlia termination window), up to the alpha
	// parallelism limit. The batch lives on the stack for the usual alpha.
	var batch [8]ranked
	toQuery := batch[:0]
	if a := ls.node.cfg.Alpha; a > len(batch) {
		toQuery = make([]ranked, 0, a)
	}
	window := ls.shortlist
	if len(window) > ls.node.cfg.K {
		window = window[:ls.node.cfg.K]
	}
	for i := range window {
		if ls.inflight+len(toQuery) >= ls.node.cfg.Alpha {
			break
		}
		if r := &window[i]; !ls.queried.has(r.d0, r.d1, r.d2) {
			toQuery = append(toQuery, *r)
		}
	}
	if len(toQuery) == 0 && ls.inflight == 0 {
		ls.finished = true
		result := ls.closestK()
		cb, arg := ls.finishCb, ls.finishArg
		ls.mu.Unlock()
		cb(arg, result, nil, false)
		ls.release()
		return
	}
	for i := range toQuery {
		r := &toQuery[i]
		ls.queried.add(r.d0, r.d1, r.d2)
		ls.inflight++
	}
	ls.mu.Unlock()

	kind := KindFindNode
	if ls.wantVal {
		kind = KindFindValue
	}
	for i := range toQuery {
		q := lookupQueries.Get().(*lookupQuery)
		q.ls, q.contact = ls, toQuery[i].c
		ls.node.requestArg(toQuery[i].c, Message{Kind: kind, Target: ls.target, Key: ls.target}, lookupQueryDone, q)
	}
}

// lookupQuery is the pooled argument for one in-flight lookup RPC: with the
// package-level lookupQueryDone it replaces the per-query response closure
// on the mission hot path.
type lookupQuery struct {
	ls      *lookupState
	contact Contact
}

var lookupQueries = sync.Pool{New: func() any { return new(lookupQuery) }}

func lookupQueryDone(v any, resp Message, err error) {
	q := v.(*lookupQuery)
	ls, contact := q.ls, q.contact
	q.ls = nil
	lookupQueries.Put(q)
	ls.onResponse(contact, resp, err)
}

func (ls *lookupState) onResponse(from Contact, resp Message, err error) {
	ls.mu.Lock()
	ls.inflight--
	if ls.finished {
		// A late response after a value-found finish: the state is recycled
		// once the last straggler drains.
		idle := ls.inflight == 0
		ls.mu.Unlock()
		if idle {
			ls.release()
		}
		return
	}
	if err != nil {
		if ls.node.cfg.Retry.enabled() && !ls.requeried[from.ID] {
			// Re-query before giving up the slot: a retry-hardened lookup
			// gives a timed-out contact one more full RPC (with its own
			// retries) before excluding it from the owner set — correlated
			// faults make a single timeout weak evidence of death. Clearing
			// the queried mark puts the contact back in step's candidate
			// window; the requeried mark makes the second failure final.
			ls.requeried[from.ID] = true
			r := rankContact(ls.target, from)
			ls.queried.del(r.d0, r.d1, r.d2)
		} else {
			// Failover: an unresponsive contact (dead, churned out, or down)
			// is dropped from the shortlist so the final owner set never
			// includes it — the lookup routes around the failure to the
			// next-closest live node. The routing table penalty happens in
			// request's timeout path.
			for i := range ls.shortlist {
				if ls.shortlist[i].c.ID == from.ID {
					ls.shortlist = append(ls.shortlist[:i], ls.shortlist[i+1:]...)
					if i < ls.sorted {
						// Removing from a sorted prefix keeps it sorted.
						ls.sorted--
					}
					break
				}
			}
		}
	}
	if err == nil {
		if ls.wantVal && resp.Found {
			ls.finished = true
			value := resp.Value
			cb, arg := ls.finishCb, ls.finishArg
			idle := ls.inflight == 0
			ls.mu.Unlock()
			cb(arg, nil, value, true)
			if idle {
				ls.release()
			}
			return
		}
		for _, c := range resp.Contacts {
			if r := rankContact(ls.target, c); ls.seen.add(r.d0, r.d1, r.d2) {
				ls.shortlist = append(ls.shortlist, r)
			}
		}
	}
	ls.mu.Unlock()
	ls.step()
}

// closestK returns the final result set in the state's pooled result buffer
// — valid until the state is released, i.e. for the duration of the finish
// callback. Callers hold ls.mu.
func (ls *lookupState) closestK() []Contact {
	sl := ls.shortlist
	if len(sl) > ls.node.cfg.K {
		// Truncate before copying: the shortlist holds every contact ever
		// seen, and copying hundreds of entries to keep K showed up in the
		// 100k-node profiles.
		sl = sl[:ls.node.cfg.K]
	}
	out := ls.result[:0]
	for i := range sl {
		out = append(out, sl[i].c)
	}
	ls.result = out
	return out
}

func (ls *lookupState) sortShortlist() {
	// Only the tail appended since the last sort is out of place (removals
	// keep the sorted prefix sorted), so insertion starts there: each new
	// entry walks to its slot and the — much longer — settled prefix is
	// never rescanned. Entries carry their packed distance lanes, so each
	// comparison is at most three integer compares instead of re-decoding
	// IDs. Distances are unique in the shortlist (distinct IDs), so the
	// result matches a full stable sort exactly.
	sl := ls.shortlist
	start := ls.sorted
	if start < 1 {
		start = 1
	}
	for i := start; i < len(sl); i++ {
		c := sl[i]
		j := i - 1
		for j >= 0 && sl[j].farther(c) {
			sl[j+1] = sl[j]
			j--
		}
		sl[j+1] = c
	}
	ls.sorted = len(sl)
}
