package dht

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"selfemerge/internal/stats"
)

func sampleMessage() Message {
	return Message{
		Kind:   KindFindValueResp,
		RPCID:  0xDEADBEEF,
		From:   Contact{ID: IDFromKey([]byte("from")), Addr: "node-7"},
		Target: IDFromKey([]byte("target")),
		Contacts: []Contact{
			{ID: IDFromKey([]byte("a")), Addr: "10.0.0.1:4000"},
			{ID: IDFromKey([]byte("b")), Addr: "10.0.0.2:4000"},
		},
		Key:   IDFromKey([]byte("key")),
		Value: []byte("stored-bytes"),
		TTL:   90 * time.Minute,
		Found: true,
		App:   []byte("app-payload"),
	}
}

func TestMessageRoundTrip(t *testing.T) {
	m := sampleMessage()
	data, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeMessage(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != m.Kind || got.RPCID != m.RPCID || got.From.ID != m.From.ID ||
		got.From.Addr != m.From.Addr || got.Target != m.Target || got.Key != m.Key ||
		got.TTL != m.TTL || got.Found != m.Found {
		t.Errorf("scalar fields mismatch: %+v vs %+v", got, m)
	}
	if !bytes.Equal(got.Value, m.Value) || !bytes.Equal(got.App, m.App) {
		t.Error("payload mismatch")
	}
	if len(got.Contacts) != 2 || got.Contacts[1].Addr != "10.0.0.2:4000" {
		t.Errorf("contacts mismatch: %+v", got.Contacts)
	}
}

func TestMessageRoundTripProperty(t *testing.T) {
	rng := stats.NewRNG(21)
	err := quick.Check(func(value, app []byte, rpcID uint64, kindSeed uint8) bool {
		if len(value) > 1024 {
			value = value[:1024]
		}
		if len(app) > 1024 {
			app = app[:1024]
		}
		m := Message{
			Kind:  Kind(kindSeed%9 + 1),
			RPCID: rpcID,
			From:  Contact{ID: RandomID(rng), Addr: "x"},
			Value: value,
			App:   app,
		}
		data, err := m.Encode()
		if err != nil {
			return false
		}
		got, err := DecodeMessage(data)
		if err != nil {
			return false
		}
		return got.Kind == m.Kind && got.RPCID == m.RPCID &&
			bytes.Equal(got.Value, m.Value) && bytes.Equal(got.App, m.App)
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{1, 2, 3},
		bytes.Repeat([]byte{0xFF}, 100),
	}
	// Valid message with trailing garbage must also fail.
	good, err := sampleMessage().Encode()
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases, append(append([]byte(nil), good...), 0x00))
	// Wrong magic.
	bad := append([]byte(nil), good...)
	bad[0] ^= 0xFF
	cases = append(cases, bad)
	// Wrong version.
	badV := append([]byte(nil), good...)
	badV[2] = 99
	cases = append(cases, badV)
	// Invalid kind.
	badK := append([]byte(nil), good...)
	badK[3] = 200
	cases = append(cases, badK)

	for i, c := range cases {
		if _, err := DecodeMessage(c); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestDecodeFuzzNoPanic(t *testing.T) {
	rng := stats.NewRNG(33)
	good, err := sampleMessage().Encode()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		mangled := append([]byte(nil), good...)
		flips := rng.Intn(8) + 1
		for f := 0; f < flips; f++ {
			mangled[rng.Intn(len(mangled))] ^= byte(rng.Intn(255) + 1)
		}
		if rng.Bool(0.3) {
			mangled = mangled[:rng.Intn(len(mangled))]
		}
		_, _ = DecodeMessage(mangled) // must not panic
	}
}

func TestEncodeLimits(t *testing.T) {
	m := Message{Kind: KindApp, App: make([]byte, maxValue+1)}
	if _, err := m.Encode(); err == nil {
		t.Error("oversized app payload accepted")
	}
	m2 := Message{Kind: KindFindNodeResp, Contacts: make([]Contact, maxContacts+1)}
	if _, err := m2.Encode(); err == nil {
		t.Error("too many contacts accepted")
	}
}

func TestKindString(t *testing.T) {
	if KindPing.String() != "PING" || KindApp.String() != "APP" {
		t.Error("kind names wrong")
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind empty")
	}
}
