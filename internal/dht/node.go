package dht

import (
	"errors"
	"fmt"
	"slices"
	"sync"
	"time"

	"selfemerge/internal/sim"
	"selfemerge/internal/stats"
	"selfemerge/internal/transport"
)

// Config configures a DHT node.
type Config struct {
	// ID is the node's identifier. Required.
	ID ID
	// Endpoint is the transport attachment. Required; the node installs its
	// own handler.
	Endpoint transport.Endpoint
	// Clock drives timeouts and TTL expiry. Required (sim or real).
	Clock sim.Clock
	// K is the bucket size and lookup width (default 20).
	K int
	// Alpha is the lookup parallelism (default 3).
	Alpha int
	// Replicate is how many closest nodes receive each stored value
	// (default 3).
	Replicate int
	// RPCTimeout bounds each request/response exchange (default 500ms).
	RPCTimeout time.Duration
	// ProbeTimeout bounds the ping-evict policy's liveness probes,
	// independently of RPCTimeout (default: RPCTimeout). Probes never
	// retry regardless of Retry: the replacement-cache policy wants one
	// prompt liveness verdict per admission decision, and a retry-stretched
	// probe would starve the cache of decisions exactly when the network
	// degrades.
	ProbeTimeout time.Duration
	// Retry configures re-sending of timed-out requests. The zero value is
	// single-shot (the historical behavior, byte-identical event
	// sequences); see RetryPolicy.
	Retry RetryPolicy
	// StaleAfter is the bucket-eviction staleness threshold (default 10m).
	StaleAfter time.Duration
	// Table selects the full-bucket admission policy. TableDefault resolves
	// to TablePingEvict: the library is eclipse-resistant unless a caller
	// explicitly opts into the naive policy (the adversary experiments do,
	// for their undefended baseline arm).
	Table TablePolicy
	// OnApp receives application payloads (the self-emerging protocol
	// messages). Optional.
	OnApp func(from Contact, payload []byte)
}

func (c Config) withDefaults() Config {
	if c.K == 0 {
		c.K = 20
	}
	if c.Alpha == 0 {
		c.Alpha = 3
	}
	if c.Replicate == 0 {
		c.Replicate = 3
	}
	if c.RPCTimeout == 0 {
		c.RPCTimeout = 500 * time.Millisecond
	}
	if c.ProbeTimeout == 0 {
		c.ProbeTimeout = c.RPCTimeout
	}
	c.Retry = c.Retry.withDefaults()
	if c.StaleAfter == 0 {
		c.StaleAfter = 10 * time.Minute
	}
	if c.Table == TableDefault {
		c.Table = TablePingEvict
	}
	return c
}

// ErrTimeout is passed to RPC callbacks when the peer does not answer
// within RPCTimeout.
var ErrTimeout = errors.New("dht: rpc timeout")

// ErrClosed is returned for operations on a closed node.
var ErrClosed = errors.New("dht: node closed")

// Node is one Kademlia participant.
type Node struct {
	cfg   Config
	table *Table

	// Receive-path scratch: handlers are invoked serially per endpoint (the
	// transport contract), so one decode Message, one reply contact buffer
	// and one address intern table per node serve every inbound datagram
	// without allocating. The intern table maps raw address bytes to their
	// canonical string, sparing one string allocation per contact per
	// datagram; it is bounded, so a flood of unique addresses degrades to
	// plain allocation instead of growing it without limit.
	rx         Message
	rxContacts []Contact
	addrIntern addrTable
	internFn   func([]byte) transport.Addr

	// appSeen dedups acked app payloads by (sender, RPCID): a retrying or
	// fault-duplicated sender may deliver one payload several times. Only
	// the handle path touches it (serial per endpoint), so it needs no
	// lock; it is nil until the first acked app message arrives, so
	// fire-and-forget traffic pays nothing.
	appSeen map[appKey]struct{}

	// retryRng draws the backoff jitter; nil unless cfg.Retry is enabled.
	// Guarded by mu (the timeout path draws from it).
	retryRng *stats.RNG

	mu sync.Mutex
	// lsFree and rpcFree are per-node freelists for lookup states and
	// in-flight RPC records (guarded by mu). Node-owned recycling keeps the
	// records' grown buffers across the node's whole life; the global
	// sync.Pools they replace were emptied at every GC, and on large runs
	// the post-eviction re-allocations fed the next collection.
	lsFree     []*lookupState
	rpcFree    []*pendingRPC
	pending    map[uint64]*pendingRPC
	rpcSeq     uint64
	values     map[ID]storedValue
	resilience Resilience
	closed     bool
}

// appKey identifies one acked app delivery for receiver-side dedup.
type appKey struct {
	from ID
	rpc  uint64
}

// maxAppSeen bounds the dedup table; at the bound it is cleared wholesale
// (dedup degrades to best-effort rather than the table growing without
// limit).
const maxAppSeen = 1 << 15

// wireBufs pools wire-encode buffers: transport.Endpoint.Send does not
// retain its payload, so a buffer is reusable the moment the send returns.
var wireBufs = sync.Pool{New: func() any { return new([]byte) }}

// pendingRPC is one in-flight request: a pooled record armed as the timeout
// event's argument, so the per-RPC cost is neither a record allocation, a
// timeout closure, nor a boxed Timer.
//
// Release protocol: whichever path removes the record from n.pending owns
// it. settle (and the cold cancel paths) own it only if timer.Stop()
// reports true; on false the timeout callback is already in flight with the
// record as its argument, finds its pending slot gone, and releases it
// itself. Owners copy cb out before releasing.
type pendingRPC struct {
	node  *Node
	cb    rpcCallback
	timer sim.ArgTimer
	to    ID
	id    uint64

	// Retry state. wire retains the encoded request for re-sends (empty
	// when the request is single-shot), addr its destination, timeout the
	// per-attempt deadline (probes run a shorter one), attempt the number
	// of sends made so far. waiting marks the backoff gap between a
	// timed-out attempt and its re-send: the timer is re-armed twice per
	// retry (timeout, then gap), and whichever phase it is in, the record
	// stays in n.pending so a late response can still settle it.
	wire    []byte
	addr    transport.Addr
	timeout time.Duration
	attempt int
	waiting bool
	retry   bool
}

// rpcCallback is either a plain closure or an arg-based package-level
// function with its pooled argument — the latter lets hot callers (the
// lookup query fan-out) issue RPCs without allocating a response closure.
type rpcCallback struct {
	fn    func(Message, error)
	argFn func(any, Message, error)
	arg   any
}

func (c rpcCallback) deliver(m Message, err error) {
	if c.fn != nil {
		c.fn(m, err)
		return
	}
	c.argFn(c.arg, m, err)
}

// releasePending returns a settled record to its node's freelist. The wire
// buffer keeps its capacity for the record's next life. Callers must NOT
// hold n.mu.
func releasePending(p *pendingRPC) {
	n := p.node
	p.node = nil
	p.cb = rpcCallback{}
	p.timer = sim.ArgTimer{}
	p.wire = p.wire[:0]
	p.addr = ""
	p.attempt = 0
	p.waiting = false
	p.retry = false
	n.mu.Lock()
	n.rpcFree = append(n.rpcFree, p)
	n.mu.Unlock()
}

// rpcTimeout is the package-level timeout callback: fires when the peer did
// not answer within the attempt's deadline, and again at the end of each
// retry backoff gap. A retryable record cycles timeout → backoff gap →
// re-send until its attempts run out; only then does the callback see
// ErrTimeout.
func rpcTimeout(v any) {
	p := v.(*pendingRPC)
	n := p.node
	n.mu.Lock()
	q, still := n.pending[p.id]
	still = still && q == p
	if still && p.retry && len(p.wire) > 0 && p.attempt < n.cfg.Retry.Attempts {
		if !p.waiting {
			// Attempt timed out with retries left: hold the pending slot
			// through a deterministic jittered backoff, so a straggling
			// response can still settle the RPC mid-gap.
			p.waiting = true
			gap := n.cfg.Retry.backoff(p.attempt, n.retryRng)
			p.timer = sim.AfterFuncArg(n.cfg.Clock, gap, rpcTimeout, p)
			n.mu.Unlock()
			return
		}
		// Backoff elapsed: re-send the retained wire form (same RPCID) and
		// arm a fresh attempt deadline. The bytes are copied out under the
		// lock — a response racing this re-send may release the record the
		// moment the lock drops.
		p.waiting = false
		p.attempt++
		n.resilience.Retries++
		p.timer = sim.AfterFuncArg(n.cfg.Clock, p.timeout, rpcTimeout, p)
		addr := p.addr
		buf := wireBufs.Get().(*[]byte)
		data := append((*buf)[:0], p.wire...)
		n.mu.Unlock()
		_ = n.cfg.Endpoint.Send(addr, data)
		*buf = data
		wireBufs.Put(buf)
		return
	}
	if still {
		delete(n.pending, p.id)
	}
	n.mu.Unlock()
	if !still {
		// A response (or close/cancel) beat the timeout to the pending slot
		// after this event had already been dispatched; that path saw
		// Stop()==false and left the release to us.
		releasePending(p)
		return
	}
	cb, to := p.cb, p.to
	releasePending(p)
	// Unresponsive: penalize in the routing table.
	n.table.Remove(to)
	cb.deliver(Message{}, ErrTimeout)
}

type storedValue struct {
	data      []byte
	expiresAt time.Time
}

// NewNode creates a node and installs its transport handler. The node is
// immediately live; call Bootstrap to join an existing network.
func NewNode(cfg Config) (*Node, error) {
	if cfg.Endpoint == nil {
		return nil, errors.New("dht: config requires an endpoint")
	}
	if cfg.Clock == nil {
		return nil, errors.New("dht: config requires a clock")
	}
	if cfg.ID.IsZero() {
		return nil, errors.New("dht: config requires a non-zero ID")
	}
	cfg = cfg.withDefaults()
	n := &Node{
		cfg:     cfg,
		table:   NewTable(cfg.ID, cfg.K, cfg.StaleAfter, func() time.Time { return cfg.Clock.Now() }),
		pending: make(map[uint64]*pendingRPC),
		values:  make(map[ID]storedValue),
	}
	n.internFn = n.internAddr
	if cfg.Retry.enabled() {
		n.retryRng = stats.NewRNG(retrySeed(cfg.ID))
	}
	n.table.SetPolicy(cfg.Table)
	if cfg.Table == TablePingEvict {
		n.table.SetPinger(func(c Contact, done func(alive bool)) {
			n.probe(c, func(err error) { done(err == nil) })
		})
	}
	cfg.Endpoint.SetHandler(n.handle)
	return n, nil
}

// maxInternedAddrs bounds the receive-path address intern table.
const maxInternedAddrs = 1 << 16

// addrTable is the receive path's open-addressing address interner: raw
// address bytes hash (FNV-1a) to their canonical string. A contact decode is
// one short hash and usually one slot probe — measurably cheaper than a
// map[string]Addr lookup, which pays full map machinery per contact on the
// hottest path in the simulator. Entries are never deleted.
type addrTable struct {
	slots []addrSlot // power-of-two length
	used  int
}

type addrSlot struct {
	hash uint64 // 0 = empty (occupied hashes are forced nonzero)
	addr transport.Addr
}

func hashAddr(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	if h == 0 {
		h = 1
	}
	return h
}

// internAddr returns the canonical Addr for raw address bytes, remembering
// it for future datagrams. Only the handle path uses it, which runs
// serially, so the table needs no lock.
func (n *Node) internAddr(b []byte) transport.Addr {
	t := &n.addrIntern
	h := hashAddr(b)
	if t.used > 0 {
		mask := len(t.slots) - 1
		for i := int(h) & mask; ; i = (i + 1) & mask {
			sl := &t.slots[i]
			if sl.hash == 0 {
				break
			}
			if sl.hash == h && string(sl.addr) == string(b) {
				return sl.addr
			}
		}
	}
	a := transport.Addr(b)
	if t.used >= maxInternedAddrs {
		// Bounded: a flood of unique addresses degrades to plain
		// allocation instead of growing the table without limit.
		return a
	}
	if 4*(t.used+1) > 3*len(t.slots) {
		old := t.slots
		size := 2 * len(old)
		if size == 0 {
			size = 32
		}
		t.slots = make([]addrSlot, size)
		mask := size - 1
		for i := range old {
			if old[i].hash == 0 {
				continue
			}
			j := int(old[i].hash) & mask
			for t.slots[j].hash != 0 {
				j = (j + 1) & mask
			}
			t.slots[j] = old[i]
		}
	}
	mask := len(t.slots) - 1
	i := int(h) & mask
	for t.slots[i].hash != 0 {
		i = (i + 1) & mask
	}
	t.slots[i] = addrSlot{hash: h, addr: a}
	t.used++
	return a
}

// ID returns the node identifier.
func (n *Node) ID() ID { return n.cfg.ID }

// Contact returns the node's own contact record.
func (n *Node) Contact() Contact {
	return Contact{ID: n.cfg.ID, Addr: n.cfg.Endpoint.Addr()}
}

// Table exposes the routing table (read-mostly; used by tests and churn
// instrumentation).
func (n *Node) Table() *Table { return n.table }

// Close detaches the node from the network and fails all pending RPCs.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	pending := n.pending
	n.pending = make(map[uint64]*pendingRPC)
	n.mu.Unlock()
	// Fail pending RPCs in issue order: map iteration order is randomized,
	// and the callbacks schedule events, which must stay deterministic for
	// reproducible simulation runs.
	ids := make([]uint64, 0, len(pending))
	for id := range pending {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	for _, id := range ids {
		p := pending[id]
		cb := p.cb
		if p.timer.Stop() {
			releasePending(p)
		}
		sim.Schedule(n.cfg.Clock, 0, func() { cb.deliver(Message{}, ErrClosed) })
	}
	return n.cfg.Endpoint.Close()
}

// handle is the transport inbound entry point. It decodes into the node's
// scratch Message (handlers run serially per endpoint), so everything the
// dispatch below touches — including msg.App handed to OnApp — is valid
// only until handle returns; consumers that keep bytes must copy them.
func (n *Node) handle(from transport.Addr, data []byte) {
	msg := &n.rx
	if err := decodeMessageInto(msg, data, n.internFn); err != nil {
		return // malformed datagram: drop, like any UDP service
	}
	if msg.From.ID == n.cfg.ID {
		return // ignore self-echo
	}
	// Trust the socket-level source address over the claimed one. The
	// observation is unverified — anyone can put any ID in From — so it may
	// refresh or insert, but never re-point a tracked ID's address; settle
	// upgrades matched responses to ObserveVerified below.
	msg.From.Addr = from
	n.table.Observe(msg.From)

	switch msg.Kind {
	case KindPing:
		n.reply(msg.From, Message{Kind: KindPong, RPCID: msg.RPCID})
	case KindFindNode:
		n.rxContacts = n.table.AppendClosest(n.rxContacts[:0], msg.Target, n.cfg.K)
		n.reply(msg.From, Message{
			Kind:     KindFindNodeResp,
			RPCID:    msg.RPCID,
			Contacts: n.rxContacts,
		})
	case KindStore:
		n.storeLocal(msg.Key, msg.Value, msg.TTL)
		n.reply(msg.From, Message{Kind: KindStoreAck, RPCID: msg.RPCID, Key: msg.Key})
	case KindFindValue:
		if value, ok := n.loadLocal(msg.Key); ok {
			n.reply(msg.From, Message{Kind: KindFindValueResp, RPCID: msg.RPCID, Key: msg.Key, Found: true, Value: value})
			return
		}
		n.rxContacts = n.table.AppendClosest(n.rxContacts[:0], msg.Key, n.cfg.K)
		n.reply(msg.From, Message{
			Kind:     KindFindValueResp,
			RPCID:    msg.RPCID,
			Key:      msg.Key,
			Contacts: n.rxContacts,
		})
	case KindApp:
		if msg.RPCID != 0 {
			// An acked app delivery (the sender runs a retry policy): always
			// acknowledge — the sender may have missed an earlier ack — and
			// suppress repeats of the same (sender, RPCID), whether re-sent
			// or fault-duplicated in flight.
			key := appKey{from: msg.From.ID, rpc: msg.RPCID}
			_, dup := n.appSeen[key]
			if !dup {
				if n.appSeen == nil {
					n.appSeen = make(map[appKey]struct{}, 64)
				} else if len(n.appSeen) >= maxAppSeen {
					clear(n.appSeen)
				}
				n.appSeen[key] = struct{}{}
			}
			n.reply(msg.From, Message{Kind: KindAppAck, RPCID: msg.RPCID})
			if dup {
				n.mu.Lock()
				n.resilience.Duplicates++
				n.mu.Unlock()
				return
			}
		}
		if n.cfg.OnApp != nil {
			n.cfg.OnApp(msg.From, msg.App)
		}
	case KindPong, KindFindNodeResp, KindStoreAck, KindFindValueResp, KindAppAck:
		n.settle(*msg)
	}
}

// reply sends a response message (no pending bookkeeping) through a pooled
// wire buffer.
func (n *Node) reply(to Contact, m Message) {
	m.From = n.Contact()
	buf := wireBufs.Get().(*[]byte)
	data, err := m.AppendEncode((*buf)[:0])
	if err == nil {
		_ = n.cfg.Endpoint.Send(to.Addr, data)
		*buf = data
	}
	wireBufs.Put(buf)
}

// request sends m to the peer and arranges for cb to run with the response
// or ErrTimeout. cb runs on the clock's dispatch context.
func (n *Node) request(to Contact, m Message, cb func(Message, error)) {
	n.startRequest(to, m, rpcCallback{fn: cb})
}

// requestArg is the closure-free form of request: fn is a package-level
// function and arg a pooled record, so issuing the RPC allocates nothing.
func (n *Node) requestArg(to Contact, m Message, fn func(any, Message, error), arg any) {
	n.startRequest(to, m, rpcCallback{argFn: fn, arg: arg})
}

func (n *Node) startRequest(to Contact, m Message, cb rpcCallback) {
	n.startRequestOpt(to, m, cb, n.cfg.RPCTimeout, n.cfg.Retry.enabled())
}

// startRequestOpt is the full-control form: timeout is the per-attempt
// deadline, retry opts the request into the node's RetryPolicy (probes pass
// false — one prompt verdict, never stretched).
func (n *Node) startRequestOpt(to Contact, m Message, cb rpcCallback, timeout time.Duration, retry bool) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		sim.Schedule(n.cfg.Clock, 0, func() { cb.deliver(Message{}, ErrClosed) })
		return
	}
	n.rpcSeq++
	id := n.rpcSeq
	m.RPCID = id
	var p *pendingRPC
	if k := len(n.rpcFree); k > 0 {
		p = n.rpcFree[k-1]
		n.rpcFree[k-1] = nil
		n.rpcFree = n.rpcFree[:k-1]
	} else {
		p = new(pendingRPC)
	}
	p.node, p.cb, p.to, p.id = n, cb, to.ID, id
	p.addr, p.timeout, p.attempt, p.retry = to.Addr, timeout, 1, retry
	p.timer = sim.AfterFuncArg(n.cfg.Clock, timeout, rpcTimeout, p)
	n.pending[id] = p
	n.mu.Unlock()

	m.From = n.Contact()
	buf := wireBufs.Get().(*[]byte)
	data, err := m.AppendEncode((*buf)[:0])
	if err != nil {
		wireBufs.Put(buf)
		n.mu.Lock()
		delete(n.pending, id)
		n.mu.Unlock()
		if p.timer.Stop() {
			releasePending(p)
		}
		sim.Schedule(n.cfg.Clock, 0, func() { cb.deliver(Message{}, err) })
		return
	}
	if retry {
		// Retain the encoded request for re-sends — but only while the
		// record is still ours: with a real clock the timeout (or even a
		// settle) could in principle win the race and recycle it.
		n.mu.Lock()
		if n.pending[id] == p {
			p.wire = append(p.wire[:0], data...)
		}
		n.mu.Unlock()
	}
	_ = n.cfg.Endpoint.Send(to.Addr, data)
	*buf = data
	wireBufs.Put(buf)
}

// probe is the ping-evict policy's liveness check: single-shot on its own
// ProbeTimeout, bypassing the retry policy.
func (n *Node) probe(to Contact, cb func(error)) {
	n.startRequestOpt(to, Message{Kind: KindPing}, rpcCallback{fn: func(_ Message, err error) { cb(err) }}, n.cfg.ProbeTimeout, false)
}

// settle matches a response to its pending request.
func (n *Node) settle(msg Message) {
	n.mu.Lock()
	p, found := n.pending[msg.RPCID]
	ok := found
	if ok && p.to != msg.From.ID {
		ok = false // response forged or misrouted; keep waiting
	}
	var cb rpcCallback
	var timer sim.ArgTimer
	if ok {
		delete(n.pending, msg.RPCID)
		cb, timer = p.cb, p.timer
		if p.attempt > 1 || p.waiting {
			// Answered after a re-send, or mid-backoff after the first
			// deadline: without the retry policy holding the slot open this
			// RPC would already have failed with ErrTimeout.
			n.resilience.Recovered++
		}
	}
	if !found {
		// No pending slot at all: a late or fault-duplicated response
		// (its RPC already settled or timed out), dropped here.
		n.resilience.Duplicates++
	}
	n.mu.Unlock()
	if !ok {
		return
	}
	// The peer answered at this address with an RPCID we issued to this ID:
	// the (ID, Addr) binding is confirmed, so address changes may be applied.
	n.table.ObserveVerified(msg.From)
	if timer.Stop() {
		releasePending(p)
	}
	cb.deliver(msg, nil)
}

// Ping checks a peer's liveness.
func (n *Node) Ping(to Contact, cb func(error)) {
	n.request(to, Message{Kind: KindPing}, func(_ Message, err error) { cb(err) })
}

// SendApp delivers an opaque application payload directly to a known
// contact. Fire-and-forget, like all DHT datagrams — unless the node runs a
// retry policy, in which case the payload travels as an acknowledged
// request: the receiver replies KindAppAck (and dedups re-sent copies), and
// an unacknowledged send is re-sent per the policy.
func (n *Node) SendApp(to Contact, payload []byte) error {
	n.mu.Lock()
	closed := n.closed
	n.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if n.cfg.Retry.enabled() {
		n.startRequest(to, Message{Kind: KindApp, App: payload}, rpcCallback{argFn: appAckDone, arg: nil})
		return nil
	}
	m := Message{Kind: KindApp, From: n.Contact(), App: payload}
	buf := wireBufs.Get().(*[]byte)
	data, err := m.AppendEncode((*buf)[:0])
	if err != nil {
		wireBufs.Put(buf)
		return fmt.Errorf("dht: encoding app message: %w", err)
	}
	sendErr := n.cfg.Endpoint.Send(to.Addr, data)
	*buf = data
	wireBufs.Put(buf)
	return sendErr
}

// appAckDone consumes the ack (or final timeout) of a retried app send:
// the send interface stays fire-and-forget, so there is nobody to tell —
// the value of the exchange is the re-sends it drove.
func appAckDone(any, Message, error) {}

// Bootstrap seeds the routing table and performs a self-lookup to populate
// nearby buckets. done (optional) receives the number of contacts known
// afterwards.
func (n *Node) Bootstrap(seeds []Contact, done func(contacts int)) {
	for _, s := range seeds {
		if s.ID != n.cfg.ID {
			n.table.Observe(s)
		}
	}
	n.Lookup(n.cfg.ID, func([]Contact) {
		if done != nil {
			done(n.table.Len())
		}
	})
}

// storeLocal records a value with its TTL.
func (n *Node) storeLocal(key ID, value []byte, ttl time.Duration) {
	if len(value) == 0 {
		return
	}
	data := make([]byte, len(value))
	copy(data, value)
	expiry := time.Time{}
	if ttl > 0 {
		expiry = n.cfg.Clock.Now().Add(ttl)
	}
	n.mu.Lock()
	n.values[key] = storedValue{data: data, expiresAt: expiry}
	n.mu.Unlock()
}

// loadLocal returns a stored value if present and unexpired.
func (n *Node) loadLocal(key ID) ([]byte, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	v, ok := n.values[key]
	if !ok {
		return nil, false
	}
	if !v.expiresAt.IsZero() && n.cfg.Clock.Now().After(v.expiresAt) {
		delete(n.values, key)
		return nil, false
	}
	return v.data, true
}
