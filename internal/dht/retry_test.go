package dht

import (
	"testing"
	"time"

	"selfemerge/internal/sim"
	"selfemerge/internal/stats"
	"selfemerge/internal/transport"
	"selfemerge/internal/transport/simnet"
)

// TestBackoffSequenceGolden pins the deterministic backoff schedule: the
// exact jittered gaps a known node ID draws for consecutive re-sends. Any
// change here shifts every retry-enabled event sequence — if intentional,
// re-pin and note it as a determinism break for retry arms.
func TestBackoffSequenceGolden(t *testing.T) {
	p := RetryPolicy{Attempts: 5}.withDefaults()
	var id ID
	copy(id[:], []byte{0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03, 0x04})
	rng := stats.NewRNG(retrySeed(id))
	var got []time.Duration
	for attempt := 1; attempt < p.Attempts; attempt++ {
		got = append(got, p.backoff(attempt, rng))
	}
	want := []time.Duration{294103557, 409774523, 791183175, 2275030741}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("backoff[%d] = %v, want %v (full sequence %v)", i, got[i], want[i], got)
		}
	}
	// Structural bounds hold regardless of the jitter draw: gap i lies in
	// [base/2, base] with base = min(Backoff<<i, MaxBackoff).
	rng2 := stats.NewRNG(stats.Mix64(9, 9))
	for attempt := 1; attempt < 12; attempt++ {
		base := p.Backoff << (attempt - 1)
		if base <= 0 || base > p.MaxBackoff {
			base = p.MaxBackoff
		}
		g := p.backoff(attempt, rng2)
		if g < base/2 || g > base {
			t.Errorf("backoff(%d) = %v outside [%v, %v]", attempt, g, base/2, base)
		}
	}
}

// retryPair is two nodes on one fabric, a configured from-node and a plain
// receiver, with an optional injector between them.
func retryPair(t *testing.T, cfg Config, inj simnet.Injector, onApp func(Contact, []byte)) (*sim.Simulator, *Node, *Node) {
	t.Helper()
	s := sim.NewSimulator()
	net := simnet.New(s, simnet.Config{BaseLatency: 5 * time.Millisecond, Seed: 3, Inject: inj})
	rng := stats.NewRNG(42)
	cfg.ID = RandomID(rng)
	cfg.Endpoint = net.Endpoint("a")
	cfg.Clock = s
	a, err := NewNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewNode(Config{ID: RandomID(rng), Endpoint: net.Endpoint("b"), Clock: s, OnApp: onApp})
	if err != nil {
		t.Fatal(err)
	}
	return s, a, b
}

// dropFirst drops the first n datagrams it judges, then passes everything.
type dropFirst struct{ n int }

func (d *dropFirst) Judge(time.Time, transport.Addr, transport.Addr) simnet.Verdict {
	if d.n > 0 {
		d.n--
		return simnet.Verdict{Drop: true}
	}
	return simnet.Verdict{}
}

// TestRetryRecoversLostRPC: with the first request datagram eaten, a
// single-shot ping fails while a retrying ping succeeds — and the counters
// record one re-send and one recovered RPC.
func TestRetryRecoversLostRPC(t *testing.T) {
	run := func(policy RetryPolicy) (error, Resilience) {
		s, a, b := retryPair(t, Config{Retry: policy}, &dropFirst{n: 1}, nil)
		var got error
		sawCb := false
		a.Ping(b.Contact(), func(err error) { got, sawCb = err, true })
		s.RunFor(time.Minute)
		if !sawCb {
			t.Fatal("ping callback never ran")
		}
		return got, a.Resilience()
	}
	if err, _ := run(RetryPolicy{}); err != ErrTimeout {
		t.Fatalf("single-shot ping over a dropped datagram: err = %v, want ErrTimeout", err)
	}
	err, res := run(RetryPolicy{Attempts: 3})
	if err != nil {
		t.Fatalf("retrying ping failed: %v", err)
	}
	if res.Retries != 1 || res.Recovered != 1 {
		t.Fatalf("resilience = %+v, want 1 retry / 1 recovered", res)
	}
}

// TestRetryExhaustsToTimeout: a peer that never answers still yields
// ErrTimeout, after exactly Attempts sends.
func TestRetryExhaustsToTimeout(t *testing.T) {
	s, a, b := retryPair(t, Config{Retry: RetryPolicy{Attempts: 3}}, &dropFirst{n: 1 << 30}, nil)
	var got error
	sawCb := false
	a.Ping(b.Contact(), func(err error) { got, sawCb = err, true })
	s.RunFor(time.Minute)
	if !sawCb || got != ErrTimeout {
		t.Fatalf("cb=%v err=%v, want ErrTimeout", sawCb, got)
	}
	if res := a.Resilience(); res.Retries != 2 || res.Recovered != 0 {
		t.Fatalf("resilience = %+v, want 2 retries / 0 recovered", res)
	}
}

// dupAll duplicates every datagram.
type dupAll struct{}

func (dupAll) Judge(time.Time, transport.Addr, transport.Addr) simnet.Verdict {
	return simnet.Verdict{DupExtra: time.Millisecond}
}

// TestAckedAppDedup: a retrying sender's app payload arrives exactly once
// at OnApp even when the fabric duplicates every datagram, and the
// duplicate is counted.
func TestAckedAppDedup(t *testing.T) {
	delivered := 0
	var s *sim.Simulator
	var a, b *Node
	s, a, b = retryPair(t, Config{Retry: RetryPolicy{Attempts: 3}}, dupAll{}, func(from Contact, payload []byte) {
		delivered++
		if string(payload) != "hello" {
			t.Errorf("payload = %q", payload)
		}
	})
	if err := a.SendApp(b.Contact(), []byte("hello")); err != nil {
		t.Fatal(err)
	}
	s.RunFor(time.Minute)
	if delivered != 1 {
		t.Fatalf("OnApp ran %d times, want 1", delivered)
	}
	if res := b.Resilience(); res.Duplicates == 0 {
		t.Fatal("receiver counted no duplicate deliveries")
	}
}

// TestFireAndForgetAppUnchanged: without a retry policy, SendApp stays a
// bare KindApp datagram — RPCID zero, no ack traffic, no dedup state.
func TestFireAndForgetAppUnchanged(t *testing.T) {
	delivered := 0
	var s *sim.Simulator
	var a, b *Node
	s, a, b = retryPair(t, Config{}, nil, func(Contact, []byte) { delivered++ })
	if err := a.SendApp(b.Contact(), []byte("x")); err != nil {
		t.Fatal(err)
	}
	s.RunFor(time.Second)
	if delivered != 1 {
		t.Fatalf("OnApp ran %d times, want 1", delivered)
	}
	if b.appSeen != nil {
		t.Fatal("fire-and-forget delivery populated the ack dedup table")
	}
	if res := a.Resilience(); res != (Resilience{}) {
		t.Fatalf("sender resilience = %+v, want zero", res)
	}
}

// TestProbeTimeoutIndependent: liveness probes run on ProbeTimeout,
// single-shot, even when the node retries its regular RPCs on a slower
// RPCTimeout.
func TestProbeTimeoutIndependent(t *testing.T) {
	s, a, b := retryPair(t, Config{
		RPCTimeout:   2 * time.Second,
		ProbeTimeout: 100 * time.Millisecond,
		Retry:        RetryPolicy{Attempts: 4},
	}, &dropFirst{n: 1 << 30}, nil)
	_ = b
	start := s.Now()
	var elapsed time.Duration
	sawCb := false
	a.probe(b.Contact(), func(err error) {
		elapsed, sawCb = s.Now().Sub(start), true
		if err != ErrTimeout {
			t.Errorf("probe err = %v, want ErrTimeout", err)
		}
	})
	s.RunFor(time.Minute)
	if !sawCb {
		t.Fatal("probe callback never ran")
	}
	if elapsed != 100*time.Millisecond {
		t.Fatalf("probe verdict after %v, want exactly ProbeTimeout (100ms): no retry stretch", elapsed)
	}
	if res := a.Resilience(); res.Retries != 0 {
		t.Fatalf("probe retried: %+v", res)
	}
}

// TestLookupRequeriesTimedOutContact: with retry enabled, one transient
// blackout of a contact does not exclude it from the lookup result; the
// re-query path gives it a second RPC.
func TestLookupRequeriesTimedOutContact(t *testing.T) {
	// Deterministic micro-topology: a knows only b; every datagram between
	// them is eaten until the blackout lifts, which happens while the
	// requery is pending.
	// First RPC: both sends eaten (2 drops). Requery RPC: first send eaten
	// (3rd drop), its retry passes — so the contact only survives if the
	// requery path ran AND the node-level retry backed it up.
	inj := &dropFirst{n: 3}
	s, a, b := retryPair(t, Config{Retry: RetryPolicy{Attempts: 2}}, inj, nil)
	a.table.Observe(b.Contact())
	var got []Contact
	a.Lookup(b.ID(), func(cs []Contact) {
		got = append(got[:0], cs...)
	})
	s.RunFor(time.Minute)
	found := false
	for _, c := range got {
		if c.ID == b.ID() {
			found = true
		}
	}
	if !found {
		t.Fatalf("requery did not restore the blacked-out contact; result %v", got)
	}
}
