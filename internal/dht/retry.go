package dht

import (
	"encoding/binary"
	"time"

	"selfemerge/internal/stats"
)

// RetryPolicy configures re-sending of timed-out requests. The zero value
// is single-shot — the historical behavior: one send, one RPCTimeout, one
// ErrTimeout. With Attempts > 1 a timed-out request holds its pending slot
// through a deterministic exponential backoff gap and is re-sent verbatim
// (same RPCID), up to Attempts sends total; the callback sees ErrTimeout
// only after the last attempt times out. Responses to any attempt settle
// the RPC — a late answer to the first send arriving during a backoff gap
// still counts.
type RetryPolicy struct {
	// Attempts is the total number of sends per request (0 or 1:
	// single-shot, no retry machinery at all).
	Attempts int
	// Backoff is the base gap between a timeout and the re-send; it
	// doubles per attempt (default 300ms when retrying).
	Backoff time.Duration
	// MaxBackoff caps the doubled gap (default 3s when retrying).
	MaxBackoff time.Duration
}

// enabled reports whether the policy re-sends at all.
func (p RetryPolicy) enabled() bool { return p.Attempts > 1 }

func (p RetryPolicy) withDefaults() RetryPolicy {
	if !p.enabled() {
		return p
	}
	if p.Backoff == 0 {
		p.Backoff = 300 * time.Millisecond
	}
	if p.MaxBackoff == 0 {
		p.MaxBackoff = 3 * time.Second
	}
	return p
}

// backoff returns the jittered gap before re-send number attempt+1, where
// attempt counts sends already made (>= 1). The gap is exponential with a
// deterministic half-width jitter — uniform in [base/2, base] — drawn from
// the node's seeded retry stream, so two nodes with distinct IDs desynchronize
// their re-sends while a re-run of the same configuration reproduces every
// gap exactly.
func (p RetryPolicy) backoff(attempt int, rng *stats.RNG) time.Duration {
	base := p.MaxBackoff
	if attempt-1 < 16 {
		if d := p.Backoff << (attempt - 1); d > 0 && d < base {
			base = d
		}
	}
	half := base / 2
	return half + time.Duration(rng.Uint64n(uint64(half)+1))
}

// retryStream labels the per-node retry-jitter substream, derived from the
// node ID so no extra seed plumbing is needed and no draw is shared with
// any other stream.
const retryStream = 0x7e7291

// retrySeed derives the node's retry-jitter RNG seed from its identifier.
func retrySeed(id ID) uint64 {
	return stats.Mix64(binary.BigEndian.Uint64(id[:8]), retryStream)
}

// Resilience counts a node's fault-recovery activity.
type Resilience struct {
	// Retries is the number of request re-sends (beyond first attempts).
	Retries uint64
	// Recovered is the number of RPCs that settled successfully only
	// because the retry policy held them open past their first timeout.
	Recovered uint64
	// Duplicates is the number of duplicate deliveries suppressed: repeated
	// acked app payloads deduplicated at the receiver, plus late or
	// duplicated responses that no longer matched a pending request.
	Duplicates uint64
}

// Add accumulates other into r.
func (r *Resilience) Add(other Resilience) {
	r.Retries += other.Retries
	r.Recovered += other.Recovered
	r.Duplicates += other.Duplicates
}

// Resilience reports the node's fault-recovery counters.
func (n *Node) Resilience() Resilience {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.resilience
}
