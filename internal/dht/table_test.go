package dht

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"selfemerge/internal/stats"
	"selfemerge/internal/transport"
)

func newTestTable(k int) (*Table, *time.Time) {
	now := time.Unix(1000, 0)
	self := IDFromKey([]byte("self"))
	table := NewTable(self, k, 10*time.Minute, func() time.Time { return now })
	return table, &now
}

func TestTableObserveAndClosest(t *testing.T) {
	table, _ := newTestTable(20)
	var contacts []Contact
	for i := 0; i < 50; i++ {
		c := Contact{ID: IDFromKey([]byte(fmt.Sprintf("n%d", i)))}
		contacts = append(contacts, c)
		table.Observe(c)
	}
	if table.Len() == 0 {
		t.Fatal("table empty after observes")
	}
	target := IDFromKey([]byte("target"))
	closest := table.Closest(target, 10)
	if len(closest) != 10 {
		t.Fatalf("Closest returned %d", len(closest))
	}
	// Verify ordering.
	for i := 1; i < len(closest); i++ {
		if target.CloserTo(closest[i].ID, closest[i-1].ID) {
			t.Fatal("Closest not sorted by distance")
		}
	}
	// Verify they are genuinely the closest among all tracked contacts.
	tracked := table.Closest(target, 1000)
	for i := 1; i < len(tracked); i++ {
		if target.CloserTo(tracked[i].ID, tracked[i-1].ID) {
			t.Fatal("full listing not sorted")
		}
	}
}

func TestTableNeverTracksSelf(t *testing.T) {
	table, _ := newTestTable(20)
	table.Observe(Contact{ID: IDFromKey([]byte("self"))})
	if table.Len() != 0 {
		t.Error("table tracked self")
	}
}

func TestTableRefreshMovesToTail(t *testing.T) {
	table, _ := newTestTable(20)
	a := Contact{ID: IDFromKey([]byte("a")), Addr: "addr-1"}
	table.Observe(a)
	a.Addr = "addr-2"
	table.Observe(a)
	if table.Len() != 1 {
		t.Fatalf("duplicate observe inflated table to %d", table.Len())
	}
	// An unverified observation refreshes liveness but must NOT re-point the
	// tracked address: a forged From would otherwise hijack the entry.
	got := table.Closest(a.ID, 1)
	if got[0].Addr != "addr-1" {
		t.Errorf("unverified observe hijacked address: %v", got[0].Addr)
	}
	// A verified observation (matched RPC reply) is allowed to update it.
	table.ObserveVerified(a)
	got = table.Closest(a.ID, 1)
	if got[0].Addr != "addr-2" {
		t.Errorf("verified observe did not update address: %v", got[0].Addr)
	}
}

func TestTableBucketFullDropsNewcomer(t *testing.T) {
	// Fill one bucket with fresh entries; a newcomer to the same bucket
	// must be dropped while existing entries are fresh.
	self := ID{}
	now := time.Unix(1000, 0)
	table := NewTable(self, 2, 10*time.Minute, func() time.Time { return now })
	// All IDs with top bit set share bucket 0.
	mk := func(b byte) Contact {
		var id ID
		id[0] = 0x80
		id[IDBytes-1] = b
		return Contact{ID: id}
	}
	table.Observe(mk(1))
	table.Observe(mk(2))
	table.Observe(mk(3)) // bucket full, entries fresh -> dropped
	if table.Len() != 2 {
		t.Fatalf("Len = %d", table.Len())
	}
	if table.Contains(mk(3).ID) {
		t.Error("newcomer admitted to full fresh bucket")
	}
}

func TestTableBucketEvictsStale(t *testing.T) {
	self := ID{}
	now := time.Unix(1000, 0)
	table := NewTable(self, 2, 10*time.Minute, func() time.Time { return now })
	mk := func(b byte) Contact {
		var id ID
		id[0] = 0x80
		id[IDBytes-1] = b
		return Contact{ID: id}
	}
	table.Observe(mk(1))
	table.Observe(mk(2))
	now = now.Add(time.Hour) // both stale now
	table.Observe(mk(3))
	if !table.Contains(mk(3).ID) {
		t.Error("newcomer not admitted over stale entry")
	}
	if table.Contains(mk(1).ID) {
		t.Error("stalest entry not evicted")
	}
	if table.Len() != 2 {
		t.Errorf("Len = %d", table.Len())
	}
}

// mkBucket0 builds contacts that all land in bucket 0 of a zero self ID
// (top bit set), distinguished by the low byte.
func mkBucket0(b byte) Contact {
	var id ID
	id[0] = 0x80
	id[IDBytes-1] = b
	return Contact{ID: id, Addr: transport.Addr(fmt.Sprintf("peer-%d", b))}
}

func TestPingEvictFloodNeverEvictsLivePeer(t *testing.T) {
	// Poisoning regression: a forged-contact flood against a full bucket,
	// however fast and however stale the residents look, must never displace
	// a live peer under TablePingEvict.
	self := ID{}
	now := time.Unix(1000, 0)
	table := NewTable(self, 2, 10*time.Minute, func() time.Time { return now })
	table.SetPolicy(TablePingEvict)
	pings := 0
	table.SetPinger(func(c Contact, done func(alive bool)) {
		pings++
		// Every resident is alive; in the real wiring the pong would also
		// refresh the entry via ObserveVerified.
		table.ObserveVerified(c)
		done(true)
	})
	a, b := mkBucket0(1), mkBucket0(2)
	table.Observe(a)
	table.Observe(b)
	for i := 0; i < 100; i++ {
		now = now.Add(time.Hour) // far past any staleness threshold
		table.Observe(mkBucket0(byte(10 + i%200)))
		if !table.Contains(a.ID) || !table.Contains(b.ID) {
			t.Fatalf("live peer evicted by forged flood after %d observes", i+1)
		}
	}
	if pings == 0 {
		t.Fatal("full bucket never probed its LRU entry")
	}
	if table.Len() != 2 {
		t.Fatalf("Len = %d, want 2", table.Len())
	}
}

func TestPingEvictReplacesDeadPeerViaTimeout(t *testing.T) {
	self := ID{}
	now := time.Unix(1000, 0)
	table := NewTable(self, 2, 10*time.Minute, func() time.Time { return now })
	table.SetPolicy(TablePingEvict)
	dead := mkBucket0(1)
	table.SetPinger(func(c Contact, done func(alive bool)) {
		if c.ID == dead.ID {
			// Mimic the node's timeout path: Remove fires first, then the
			// ping callback reports the failure.
			table.Remove(c.ID)
			done(false)
			return
		}
		table.ObserveVerified(c)
		done(true)
	})
	live := mkBucket0(2)
	table.Observe(dead)
	table.Observe(live)
	newcomer := mkBucket0(3)
	table.Observe(newcomer) // probes dead (the LRU), which times out
	if table.Contains(dead.ID) {
		t.Fatal("dead peer survived a failed probe")
	}
	if !table.Contains(live.ID) {
		t.Fatal("live peer lost")
	}
	if !table.Contains(newcomer.ID) {
		t.Fatal("newcomer not promoted from the replacement cache")
	}
}

func TestPingEvictSingleOutstandingProbe(t *testing.T) {
	self := ID{}
	now := time.Unix(1000, 0)
	table := NewTable(self, 2, 10*time.Minute, func() time.Time { return now })
	table.SetPolicy(TablePingEvict)
	var pending []func(alive bool)
	table.SetPinger(func(c Contact, done func(alive bool)) {
		pending = append(pending, done)
	})
	table.Observe(mkBucket0(1))
	table.Observe(mkBucket0(2))
	for i := 0; i < 10; i++ {
		table.Observe(mkBucket0(byte(10 + i)))
	}
	if len(pending) != 1 {
		t.Fatalf("%d concurrent probes for one bucket, want 1", len(pending))
	}
	pending[0](true)
	table.Observe(mkBucket0(50))
	if len(pending) != 2 {
		t.Fatalf("probe slot did not reopen: %d probes", len(pending))
	}
}

// modelTable is a deliberately simple reference implementation of the naive
// policy: per-bucket ordered slices manipulated with the most obvious code,
// and Closest computed by fully sorting all tracked contacts.
type modelTable struct {
	self       ID
	k          int
	staleAfter time.Duration
	now        func() time.Time
	buckets    map[int][]bucketEntry
}

func (m *modelTable) observe(c Contact) {
	idx, ok := m.self.BucketIndex(c.ID)
	if !ok {
		return
	}
	b := m.buckets[idx]
	for i := range b {
		if b[i].ID == c.ID {
			e := b[i]
			e.lastSeen = m.now().UnixNano()
			m.buckets[idx] = append(append(append([]bucketEntry{}, b[:i]...), b[i+1:]...), e)
			return
		}
	}
	e := bucketEntry{Contact: c, lastSeen: m.now().UnixNano()}
	if len(b) < m.k {
		m.buckets[idx] = append(b, e)
		return
	}
	if m.now().UnixNano()-b[0].lastSeen > int64(m.staleAfter) {
		m.buckets[idx] = append(append([]bucketEntry{}, b[1:]...), e)
	}
}

func (m *modelTable) remove(id ID) {
	idx, ok := m.self.BucketIndex(id)
	if !ok {
		return
	}
	b := m.buckets[idx]
	for i := range b {
		if b[i].ID == id {
			m.buckets[idx] = append(append([]bucketEntry{}, b[:i]...), b[i+1:]...)
			return
		}
	}
}

func (m *modelTable) closest(target ID, count int) []Contact {
	var all []Contact
	for _, b := range m.buckets {
		for _, e := range b {
			all = append(all, e.Contact)
		}
	}
	sort.Slice(all, func(i, j int) bool { return target.CloserTo(all[i].ID, all[j].ID) })
	if len(all) > count {
		all = all[:count]
	}
	return all
}

func TestTableRandomizedAgainstModel(t *testing.T) {
	// Differential test: a random interleaving of Observe, Remove, clock
	// advance and Closest must agree exactly with the model implementation
	// under the naive policy (the policy the model defines).
	rng := stats.NewRNG(4242)
	self := RandomID(rng)
	now := time.Unix(5000, 0)
	const k = 3
	table := NewTable(self, k, 10*time.Minute, func() time.Time { return now })
	model := &modelTable{
		self: self, k: k, staleAfter: 10 * time.Minute,
		now:     func() time.Time { return now },
		buckets: map[int][]bucketEntry{},
	}
	pool := make([]Contact, 120)
	for i := range pool {
		pool[i] = Contact{ID: RandomID(rng), Addr: transport.Addr(fmt.Sprintf("addr-%d", i))}
	}
	for op := 0; op < 20000; op++ {
		switch rng.Uint64n(10) {
		case 0:
			now = now.Add(time.Duration(rng.Uint64n(uint64(4 * time.Minute))))
		case 1:
			c := pool[rng.Uint64n(uint64(len(pool)))]
			table.Remove(c.ID)
			model.remove(c.ID)
		case 2:
			target := RandomID(rng)
			n := int(rng.Uint64n(8)) + 1
			got := table.Closest(target, n)
			want := model.closest(target, n)
			if len(got) != len(want) {
				t.Fatalf("op %d: Closest returned %d contacts, model %d", op, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("op %d: Closest[%d] = %v, model %v", op, i, got[i], want[i])
				}
			}
		default:
			c := pool[rng.Uint64n(uint64(len(pool)))]
			table.Observe(c)
			model.observe(c)
		}
	}
	if table.Len() == 0 {
		t.Fatal("randomized run tracked nothing")
	}
}

func TestTableRemove(t *testing.T) {
	table, _ := newTestTable(20)
	c := Contact{ID: IDFromKey([]byte("x"))}
	table.Observe(c)
	table.Remove(c.ID)
	if table.Contains(c.ID) || table.Len() != 0 {
		t.Error("Remove failed")
	}
	table.Remove(c.ID) // removing absent contact is a no-op
}

func TestTableBucketInvariant(t *testing.T) {
	// Property: no bucket ever exceeds k entries and every entry lands in
	// the bucket matching its XOR prefix.
	rng := stats.NewRNG(55)
	self := RandomID(rng)
	now := time.Unix(0, 0)
	const k = 4
	table := NewTable(self, k, time.Hour, func() time.Time { return now })
	for i := 0; i < 5000; i++ {
		table.Observe(Contact{ID: RandomID(rng)})
	}
	table.mu.Lock()
	defer table.mu.Unlock()
	for idx, b := range table.buckets {
		if len(b.entries) > k {
			t.Fatalf("bucket %d has %d entries", idx, len(b.entries))
		}
		if len(b.spare) > k {
			t.Fatalf("bucket %d has %d spare entries", idx, len(b.spare))
		}
		for _, e := range b.entries {
			want, ok := self.BucketIndex(e.ID)
			if !ok || want != idx {
				t.Fatalf("entry %v in bucket %d, want %d", e.ID.Short(), idx, want)
			}
		}
	}
}
