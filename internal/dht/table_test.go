package dht

import (
	"fmt"
	"testing"
	"time"

	"selfemerge/internal/stats"
)

func newTestTable(k int) (*Table, *time.Time) {
	now := time.Unix(1000, 0)
	self := IDFromKey([]byte("self"))
	table := NewTable(self, k, 10*time.Minute, func() time.Time { return now })
	return table, &now
}

func TestTableObserveAndClosest(t *testing.T) {
	table, _ := newTestTable(20)
	var contacts []Contact
	for i := 0; i < 50; i++ {
		c := Contact{ID: IDFromKey([]byte(fmt.Sprintf("n%d", i)))}
		contacts = append(contacts, c)
		table.Observe(c)
	}
	if table.Len() == 0 {
		t.Fatal("table empty after observes")
	}
	target := IDFromKey([]byte("target"))
	closest := table.Closest(target, 10)
	if len(closest) != 10 {
		t.Fatalf("Closest returned %d", len(closest))
	}
	// Verify ordering.
	for i := 1; i < len(closest); i++ {
		if target.CloserTo(closest[i].ID, closest[i-1].ID) {
			t.Fatal("Closest not sorted by distance")
		}
	}
	// Verify they are genuinely the closest among all tracked contacts.
	tracked := table.Closest(target, 1000)
	for i := 1; i < len(tracked); i++ {
		if target.CloserTo(tracked[i].ID, tracked[i-1].ID) {
			t.Fatal("full listing not sorted")
		}
	}
}

func TestTableNeverTracksSelf(t *testing.T) {
	table, _ := newTestTable(20)
	table.Observe(Contact{ID: IDFromKey([]byte("self"))})
	if table.Len() != 0 {
		t.Error("table tracked self")
	}
}

func TestTableRefreshMovesToTail(t *testing.T) {
	table, _ := newTestTable(20)
	a := Contact{ID: IDFromKey([]byte("a")), Addr: "addr-1"}
	table.Observe(a)
	a.Addr = "addr-2"
	table.Observe(a)
	if table.Len() != 1 {
		t.Fatalf("duplicate observe inflated table to %d", table.Len())
	}
	// An unverified observation refreshes liveness but must NOT re-point the
	// tracked address: a forged From would otherwise hijack the entry.
	got := table.Closest(a.ID, 1)
	if got[0].Addr != "addr-1" {
		t.Errorf("unverified observe hijacked address: %v", got[0].Addr)
	}
	// A verified observation (matched RPC reply) is allowed to update it.
	table.ObserveVerified(a)
	got = table.Closest(a.ID, 1)
	if got[0].Addr != "addr-2" {
		t.Errorf("verified observe did not update address: %v", got[0].Addr)
	}
}

func TestTableBucketFullDropsNewcomer(t *testing.T) {
	// Fill one bucket with fresh entries; a newcomer to the same bucket
	// must be dropped while existing entries are fresh.
	self := ID{}
	now := time.Unix(1000, 0)
	table := NewTable(self, 2, 10*time.Minute, func() time.Time { return now })
	// All IDs with top bit set share bucket 0.
	mk := func(b byte) Contact {
		var id ID
		id[0] = 0x80
		id[IDBytes-1] = b
		return Contact{ID: id}
	}
	table.Observe(mk(1))
	table.Observe(mk(2))
	table.Observe(mk(3)) // bucket full, entries fresh -> dropped
	if table.Len() != 2 {
		t.Fatalf("Len = %d", table.Len())
	}
	if table.Contains(mk(3).ID) {
		t.Error("newcomer admitted to full fresh bucket")
	}
}

func TestTableBucketEvictsStale(t *testing.T) {
	self := ID{}
	now := time.Unix(1000, 0)
	table := NewTable(self, 2, 10*time.Minute, func() time.Time { return now })
	mk := func(b byte) Contact {
		var id ID
		id[0] = 0x80
		id[IDBytes-1] = b
		return Contact{ID: id}
	}
	table.Observe(mk(1))
	table.Observe(mk(2))
	now = now.Add(time.Hour) // both stale now
	table.Observe(mk(3))
	if !table.Contains(mk(3).ID) {
		t.Error("newcomer not admitted over stale entry")
	}
	if table.Contains(mk(1).ID) {
		t.Error("stalest entry not evicted")
	}
	if table.Len() != 2 {
		t.Errorf("Len = %d", table.Len())
	}
}

func TestTableRemove(t *testing.T) {
	table, _ := newTestTable(20)
	c := Contact{ID: IDFromKey([]byte("x"))}
	table.Observe(c)
	table.Remove(c.ID)
	if table.Contains(c.ID) || table.Len() != 0 {
		t.Error("Remove failed")
	}
	table.Remove(c.ID) // removing absent contact is a no-op
}

func TestTableBucketInvariant(t *testing.T) {
	// Property: no bucket ever exceeds k entries and every entry lands in
	// the bucket matching its XOR prefix.
	rng := stats.NewRNG(55)
	self := RandomID(rng)
	now := time.Unix(0, 0)
	const k = 4
	table := NewTable(self, k, time.Hour, func() time.Time { return now })
	for i := 0; i < 5000; i++ {
		table.Observe(Contact{ID: RandomID(rng)})
	}
	table.mu.Lock()
	defer table.mu.Unlock()
	for idx, bucket := range table.buckets {
		if len(bucket) > k {
			t.Fatalf("bucket %d has %d entries", idx, len(bucket))
		}
		for _, e := range bucket {
			want, ok := self.BucketIndex(e.ID)
			if !ok || want != idx {
				t.Fatalf("entry %v in bucket %d, want %d", e.ID.Short(), idx, want)
			}
		}
	}
}
