package lint_test

import (
	"testing"

	"selfemerge/internal/lint"
	"selfemerge/internal/lint/linttest"
)

func TestDetrand(t *testing.T) {
	linttest.Run(t, "testdata", lint.Detrand, "fixture/detrand/...")
}
