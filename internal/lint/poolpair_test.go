package lint_test

import (
	"testing"

	"selfemerge/internal/lint"
	"selfemerge/internal/lint/linttest"
)

func TestPoolpair(t *testing.T) {
	linttest.Run(t, "testdata", lint.Poolpair, "fixture/poolpair")
}
