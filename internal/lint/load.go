package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	PkgPath   string
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listPackage is the subset of `go list -json` output the loader reads.
type listPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	DepOnly    bool
	Standard   bool
	ImportMap  map[string]string
	Module     *struct{ GoVersion string }
	Error      *struct{ Err string }
}

// Load lists patterns in dir with the go command, type-checks every matched
// package of the surrounding module from source (dependencies are imported
// from the compiler export data `go list -export` leaves in the build
// cache), and returns them ready for analysis. It is the package loader
// behind both the standalone emergelint driver and the fixture test
// harness — a stdlib-only stand-in for go/packages.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-export", "-json", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	// A parent `go test` run sets GOFLAGS and friends for its own purposes;
	// keep the child honest and module-aware but otherwise inherit.
	cmd.Env = append(os.Environ(), "GOWORK=off")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := map[string]string{} // package path -> export data file
	var targets []*listPackage
	dec := json.NewDecoder(&stdout)
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly && !lp.Standard && len(lp.CgoFiles) == 0 {
			targets = append(targets, lp)
		}
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var out []*Package
	for _, lp := range targets {
		pkg, err := typecheck(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// exportImporter returns a types.Importer that resolves imports through the
// compiler export data files recorded by `go list -export`.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

// typecheck parses and type-checks one listed package from source.
func typecheck(fset *token.FileSet, imp types.Importer, lp *listPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		full := name
		if !filepath.IsAbs(full) {
			full = filepath.Join(lp.Dir, name)
		}
		f, err := parser.ParseFile(fset, full, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	goVersion := ""
	if lp.Module != nil {
		goVersion = lp.Module.GoVersion
	}
	return check(fset, imp, lp.ImportPath, goVersion, lp.ImportMap, files)
}

// check runs the type checker over parsed files, resolving imports through
// imp after applying the vendor/test import map.
func check(fset *token.FileSet, imp types.Importer, pkgPath, goVersion string, importMap map[string]string, files []*ast.File) (*Package, error) {
	resolve := imp
	if len(importMap) > 0 {
		resolve = importerFunc(func(path string) (*types.Package, error) {
			if mapped, ok := importMap[path]; ok {
				path = mapped
			}
			return imp.Import(path)
		})
	}
	if goVersion != "" && !strings.HasPrefix(goVersion, "go") {
		goVersion = "go" + goVersion
	}
	conf := &types.Config{
		Importer:  resolve,
		Sizes:     types.SizesFor("gc", runtime.GOARCH),
		GoVersion: goVersion,
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", pkgPath, err)
	}
	return &Package{
		PkgPath:   pkgPath,
		Fset:      fset,
		Syntax:    files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
