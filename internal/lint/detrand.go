package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// deterministicPkgs names the determinism-critical packages by their import
// path's final element: everything a simulated run executes between seed and
// report. Code here must draw time from the injected sim.Clock and
// randomness from the seeded stats.ByteStream / protocol.Sender seams; the
// audited real-world fallbacks (realClock, crypto/rand defaults for real
// deployments, wall-clock Elapsed diagnostics) carry //lint:allow
// annotations.
var deterministicPkgs = map[string]bool{
	"selfemerge": true, // the root mission-orchestration package
	"sim":        true,
	"dht":        true,
	"protocol":   true,
	"scenario":   true,
	"adversary":  true,
	"simnet":     true,
	"experiment": true,
	"churn":      true,
	"fault":      true,
	"onion":      true, // crypto/* seeded paths
	"seal":       true,
	"shamir":     true,
}

// isDeterministicPkg reports whether the package at path is inside the
// seeded-deterministic boundary.
func isDeterministicPkg(path string) bool {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		path = path[i+1:]
	}
	return deterministicPkgs[path]
}

// Detrand forbids ambient nondeterminism — wall-clock time, the global
// math/rand generators, crypto/rand — inside the determinism-critical
// packages, where every byte of a simulated run must be a pure function of
// its seed.
var Detrand = &Analyzer{
	Name: "detrand",
	Doc: "forbid time.Now, global math/rand and crypto/rand in determinism-critical packages; " +
		"use the injected sim.Clock, stats.ByteStream or protocol.Sender seams instead " +
		"(//lint:allow detrand reason marks the audited real-world fallbacks)",
	Run: runDetrand,
}

// wallClockFuncs are the package time functions that read or schedule off
// the system clock. Pure construction/formatting (time.Date, time.Unix,
// time.Parse, Duration arithmetic) stays legal.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// seededRandCtors are the math/rand(/v2) constructors that produce an
// explicitly seeded generator; everything else at package level feeds off
// the global, ambiently seeded source.
var seededRandCtors = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true,
	"NewChaCha8": true, "NewZipf": true,
}

func runDetrand(pass *Pass) error {
	if !isDeterministicPkg(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.TypesInfo.Uses[ident].(*types.PkgName)
			if !ok {
				return true
			}
			switch pkgName.Imported().Path() {
			case "time":
				if wallClockFuncs[sel.Sel.Name] {
					pass.Reportf(sel.Pos(),
						"time.%s reads the wall clock in determinism-critical package %s; use the injected sim.Clock",
						sel.Sel.Name, pass.Pkg.Path())
				}
			case "math/rand", "math/rand/v2":
				obj := pass.TypesInfo.Uses[sel.Sel]
				if _, isFunc := obj.(*types.Func); isFunc && !seededRandCtors[sel.Sel.Name] {
					pass.Reportf(sel.Pos(),
						"global rand.%s is ambiently seeded; draw from an explicitly seeded generator (stats.ByteStream, rand.New)",
						sel.Sel.Name)
				}
			case "crypto/rand":
				pass.Reportf(sel.Pos(),
					"crypto/rand.%s is unseedable inside the deterministic boundary; use the stats.ByteStream / protocol.Sender seam",
					sel.Sel.Name)
			}
			return true
		})
	}
	return nil
}
