package lint_test

import (
	"testing"

	"selfemerge/internal/lint"
)

// TestTreeClean runs the full suite over the real module: the shipped tree
// must be lint-clean, with every deliberate exemption carrying a reasoned
// //lint:allow annotation. This is the same property the CI lint job
// enforces through go vet -vettool.
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks the whole module")
	}
	pkgs, err := lint.Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	for _, pkg := range pkgs {
		diags, err := lint.RunAnalyzers(pkg, lint.Suite())
		if err != nil {
			t.Fatalf("%s: %v", pkg.PkgPath, err)
		}
		for _, d := range diags {
			t.Errorf("%s: %s: %s", pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
		}
	}
}
