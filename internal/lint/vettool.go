package lint

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"io"
	"os"
	"strings"
)

// vetConfig mirrors the JSON compilation-unit description `go vet` hands an
// alternative tool (the unpublished -vettool protocol implemented by the
// x/tools unitchecker). Only the fields this driver consumes are declared;
// unknown fields are ignored by encoding/json.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// VetMain implements the `go vet -vettool` command-line protocol:
//
//	emergelint -V=full     describe the executable for build caching
//	emergelint -flags      describe analyzer flags in JSON
//	emergelint unit.cfg    analyze one compilation unit
//
// It returns true when it handled the invocation (the caller should exit),
// false when the arguments select the standalone driver instead.
func VetMain(args []string, analyzers []*Analyzer) bool {
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		// The go command parses `<name> version <id>` and folds the id into
		// its action cache key, so the id must change when the analyzers
		// do: derive it from the binary's own content hash.
		fmt.Printf("emergelint version %s\n", selfID())
		return true
	}
	if len(args) == 1 && args[0] == "-flags" {
		// No analyzer flags: every check is always on. An empty JSON array
		// tells `go vet` there is nothing to forward.
		fmt.Println("[]")
		return true
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		runUnit(args[0], analyzers)
		return true
	}
	return false
}

// selfID returns a content-derived version token for -V=full.
func selfID() string {
	exe, err := os.Executable()
	if err == nil {
		if f, err := os.Open(exe); err == nil {
			defer f.Close()
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				return fmt.Sprintf("v1-%x", h.Sum(nil)[:12])
			}
		}
	}
	return "v1-unknown"
}

// runUnit analyzes one go-vet compilation unit and exits.
func runUnit(cfgFile string, analyzers []*Analyzer) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fatalf("%v", err)
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		fatalf("cannot decode vet config %s: %v", cfgFile, err)
	}
	// The go command requests a facts file for every vet action, including
	// dependency-only ones; this suite carries no facts, so an empty file
	// satisfies the cache either way.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fatalf("writing facts output: %v", err)
		}
	}
	if cfg.VetxOnly {
		os.Exit(0)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				os.Exit(0)
			}
			fatalf("%v", err)
		}
		files = append(files, f)
	}
	imp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	pkg, err := check(fset, imp, cfg.ImportPath, cfg.GoVersion, cfg.ImportMap, files)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			os.Exit(0)
		}
		fatalf("%v", err)
	}
	diags, err := RunAnalyzers(pkg, analyzers)
	if err != nil {
		fatalf("%v", err)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
	os.Exit(0)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "emergelint: "+format+"\n", args...)
	os.Exit(1)
}
