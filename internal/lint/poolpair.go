package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Poolpair tracks sync.Pool acquisitions (`x := pool.Get().(*T)`) through
// the acquiring function and reports paths — early returns, error paths,
// loop back-edges — on which the record is neither released (pool.Put) nor
// ownership-transferred. A transfer is any way the record leaves the
// function's hands: passed to another call (the Stop-ownership handoff the
// timer path documents), stored into a field, map or slice, captured by a
// closure, sent on a channel, aliased or returned. Leaks the analyzer
// cannot see (transfer via unsafe tricks) and deliberate drops take a
// //lint:allow poolpair annotation.
var Poolpair = &Analyzer{
	Name: "poolpair",
	Doc: "report paths where a sync.Pool Get has no paired Put or ownership transfer " +
		"(calls, field/map stores, closures, channel sends and returns transfer ownership)",
	Run: runPoolpair,
}

func runPoolpair(pass *Pass) error {
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil || hasGotoOrLabels(fn.Body) {
				return true
			}
			for _, acq := range findAcquisitions(pass, fn.Body) {
				t := &tracker{pass: pass, acq: acq}
				f, _ := t.walkList(fn.Body.List, stFree)
				if f.norm&stHeld != 0 {
					t.leak("function end")
				}
			}
			return true
		})
	}
	return nil
}

// acquisition is one pool Get bound to a local variable.
type acquisition struct {
	stmt ast.Stmt     // the acquiring assignment
	obj  types.Object // the local the record is bound to
	pos  token.Pos
}

// findAcquisitions locates `x := pool.Get()` / `x := pool.Get().(*T)`
// assignments where pool's type is sync.Pool.
func findAcquisitions(pass *Pass, body *ast.BlockStmt) []*acquisition {
	var out []*acquisition
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		lhs, ok := as.Lhs[0].(*ast.Ident)
		if !ok || lhs.Name == "_" {
			return true
		}
		rhs := as.Rhs[0]
		if ta, ok := rhs.(*ast.TypeAssertExpr); ok {
			rhs = ta.X
		}
		call, ok := rhs.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Get" || len(call.Args) != 0 {
			return true
		}
		if !isSyncPool(pass.TypesInfo.Types[sel.X].Type) {
			return true
		}
		obj := pass.TypesInfo.ObjectOf(lhs)
		if obj == nil {
			return true
		}
		out = append(out, &acquisition{stmt: as, obj: obj, pos: as.Pos()})
		return true
	})
	return out
}

func isSyncPool(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Pool" && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "sync"
}

// Abstract state: which of {held, free} are possible on some path at a
// program point. Zero means no path reaches the point.
const (
	stHeld uint8 = 1 << iota
	stFree
)

// flow is the result of walking a statement (list): states reaching normal
// fall-through, unlabeled break, and continue.
type flow struct {
	norm, brk, cont uint8
}

// tracker walks one function for one acquisition.
type tracker struct {
	pass     *Pass
	acq      *acquisition
	reported bool
}

func (t *tracker) leak(where string) {
	if t.reported {
		return // one report per acquisition: the earliest leaking path
	}
	t.reported = true
	t.pass.Reportf(t.acq.pos,
		"pooled record %s acquired here may reach %s unreleased: add the paired Put or transfer ownership on every path",
		t.acq.obj.Name(), where)
}

// walkList folds the transfer function over a statement list. seen reports
// whether the acquisition statement itself is inside the list (for
// loop-carried leak detection).
func (t *tracker) walkList(stmts []ast.Stmt, in uint8) (flow, bool) {
	out := flow{norm: in}
	seen := false
	for _, s := range stmts {
		if out.norm == 0 {
			break // unreachable
		}
		f, sawAcq := t.walkStmt(s, out.norm)
		seen = seen || sawAcq
		out.norm = f.norm
		out.brk |= f.brk
		out.cont |= f.cont
	}
	return out, seen
}

// walkStmt is the statement transfer function.
func (t *tracker) walkStmt(s ast.Stmt, in uint8) (flow, bool) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		if s == t.acq.stmt {
			return flow{norm: stHeld}, true
		}
		return flow{norm: t.apply(s, in)}, false
	case *ast.ReturnStmt:
		if in&stHeld != 0 && !returnsObj(t.pass, s, t.acq.obj) && !stmtTransfers(t.pass, s, t.acq.obj) {
			t.leak("this return")
		}
		return flow{}, false
	case *ast.BlockStmt:
		f, seen := t.walkList(s.List, in)
		return f, seen
	case *ast.IfStmt:
		in = t.apply(s.Init, in)
		in = t.applyExpr(s.Cond, in)
		thenF, seenT := t.walkList(s.Body.List, in)
		elseF := flow{norm: in}
		seenE := false
		if s.Else != nil {
			elseF, seenE = t.walkStmt(s.Else, in)
		}
		return flow{
			norm: thenF.norm | elseF.norm,
			brk:  thenF.brk | elseF.brk,
			cont: thenF.cont | elseF.cont,
		}, seenT || seenE
	case *ast.ForStmt:
		in = t.apply(s.Init, in)
		bodyF, seen := t.walkList(s.Body.List, in)
		if seen && (bodyF.norm|bodyF.cont)&stHeld != 0 {
			t.leak("the next loop iteration")
		}
		after := bodyF.brk
		if s.Cond != nil {
			// Conditional loops may run zero times or fall out normally.
			after |= in | bodyF.norm | bodyF.cont
		}
		return flow{norm: after}, seen
	case *ast.RangeStmt:
		bodyF, seen := t.walkList(s.Body.List, in)
		if seen && (bodyF.norm|bodyF.cont)&stHeld != 0 {
			t.leak("the next loop iteration")
		}
		return flow{norm: in | bodyF.norm | bodyF.brk | bodyF.cont}, seen
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return t.walkCases(s, in)
	case *ast.LabeledStmt:
		return t.walkStmt(s.Stmt, in)
	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			return flow{brk: in}, false
		case token.CONTINUE:
			return flow{cont: in}, false
		}
		return flow{norm: in}, false
	case *ast.ExprStmt:
		if isTerminalCall(t.pass, s.X) {
			return flow{}, false
		}
		return flow{norm: t.apply(s, in)}, false
	case *ast.DeferStmt, *ast.GoStmt, *ast.SendStmt, *ast.DeclStmt, *ast.IncDecStmt:
		return flow{norm: t.apply(s, in)}, false
	default:
		return flow{norm: t.apply(s, in)}, false
	}
}

// walkCases handles switch/type-switch/select: each clause runs from the
// entry state; the union of clause exits (plus fall-past for a switch with
// no default) flows on. Unlabeled breaks inside clauses exit the switch.
func (t *tracker) walkCases(s ast.Stmt, in uint8) (flow, bool) {
	var clauses []ast.Stmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		in = t.apply(s.Init, in)
		in = t.applyExpr(s.Tag, in)
		clauses = s.Body.List
	case *ast.TypeSwitchStmt:
		in = t.apply(s.Init, in)
		clauses = s.Body.List
	case *ast.SelectStmt:
		clauses = s.Body.List
		hasDefault = true // select always takes some clause
	}
	out := flow{}
	seenAny := false
	for _, c := range clauses {
		var body []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			body = c.Body
		case *ast.CommClause:
			body = c.Body
		}
		f, seen := t.walkList(body, in)
		seenAny = seenAny || seen
		out.norm |= f.norm | f.brk // unlabeled break exits the switch
		out.cont |= f.cont
	}
	if !hasDefault {
		out.norm |= in
	}
	return out, seenAny
}

// apply runs the intra-statement transfer function: a statement that
// releases or transfers the record moves every held path to free.
func (t *tracker) apply(s ast.Stmt, in uint8) uint8 {
	if s == nil || in == 0 {
		return in
	}
	if stmtTransfers(t.pass, s, t.acq.obj) {
		if in&stHeld != 0 {
			return (in &^ stHeld) | stFree
		}
	}
	return in
}

// applyExpr applies the transfer function to a bare expression (an if/switch
// condition may contain a releasing call).
func (t *tracker) applyExpr(e ast.Expr, in uint8) uint8 {
	if e == nil {
		return in
	}
	return t.apply(&ast.ExprStmt{X: e}, in)
}

// stmtTransfers reports whether the statement releases the record or
// transfers its ownership: the object passed to any non-builtin call
// (pool.Put included), stored anywhere, aliased, captured by a closure,
// sent on a channel, or returned.
func stmtTransfers(pass *Pass, s ast.Stmt, obj types.Object) bool {
	transfers := false
	ast.Inspect(s, func(n ast.Node) bool {
		if transfers {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if isBuiltinCall(pass, n) {
				return true
			}
			for _, arg := range n.Args {
				if bareObj(pass, arg, obj) {
					transfers = true
				}
			}
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				if bareObj(pass, rhs, obj) {
					transfers = true // alias or store: stop tracking either way
				}
			}
		case *ast.SendStmt:
			if bareObj(pass, n.Value, obj) {
				transfers = true
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					el = kv.Value
				}
				if bareObj(pass, el, obj) {
					transfers = true
				}
			}
		case *ast.FuncLit:
			ast.Inspect(n.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
					transfers = true
				}
				return !transfers
			})
			return false
		}
		return true
	})
	return transfers
}

// returnsObj reports whether the return hands the record to the caller.
func returnsObj(pass *Pass, s *ast.ReturnStmt, obj types.Object) bool {
	for _, r := range s.Results {
		if bareObj(pass, r, obj) {
			return true
		}
	}
	return false
}

// bareObj reports whether e is the record value itself (possibly &x or
// parenthesized) rather than a read through it.
func bareObj(pass *Pass, e ast.Expr, obj types.Object) bool {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return pass.TypesInfo.ObjectOf(x) == obj
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return false
			}
			e = x.X
		default:
			return false
		}
	}
}

// isBuiltinCall reports whether the call is a language builtin (len, cap,
// append...), which never takes ownership.
func isBuiltinCall(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	_, isBuiltin := pass.TypesInfo.ObjectOf(id).(*types.Builtin)
	return isBuiltin
}

// isTerminalCall reports whether the expression is a call that never
// returns (panic, os.Exit, log.Fatal*): held records on such paths are the
// runtime's problem, not a leak.
func isTerminalCall(pass *Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fun.Name == "panic" {
			_, isBuiltin := pass.TypesInfo.ObjectOf(fun).(*types.Builtin)
			return isBuiltin
		}
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			if pkg, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok {
				path := pkg.Imported().Path()
				name := fun.Sel.Name
				return path == "os" && name == "Exit" ||
					path == "log" && (name == "Fatal" || name == "Fatalf" || name == "Fatalln")
			}
		}
	}
	return false
}

// hasGotoOrLabels reports whether the body uses goto or labeled branches,
// which the structured walker does not model.
func hasGotoOrLabels(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if br, ok := n.(*ast.BranchStmt); ok && (br.Tok == token.GOTO || br.Label != nil) {
			found = true
		}
		return !found
	})
	return found
}
