package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Mapiter flags `for range` over a map whose body has order-dependent
// effects — appending to or index-storing into state that outlives the loop,
// sending on channels, scheduling or emitting — without a subsequent
// deterministic sort. Go randomizes map iteration order per run, so such a
// loop is exactly the bug class the engine's (time, shard, seq) merge
// ordering exists to prevent: results that differ run to run even at a
// fixed seed.
var Mapiter = &Analyzer{
	Name: "mapiter",
	Doc: "flag range-over-map loops in determinism-critical packages whose bodies write to " +
		"emitted/merged/scheduled state without a subsequent deterministic sort; " +
		"iterate sorted keys, sort the result, or //lint:allow mapiter reason",
	Run: runMapiter,
}

// orderSensitiveCalls are method names that emit, schedule or hand off work:
// calling one per map entry bakes the iteration order into the event
// sequence. Writes into plain maps, scalar accumulation (x += v) and
// deletes stay legal — their final state is iteration-order independent.
var orderSensitiveCalls = map[string]bool{
	"Schedule": true, "ScheduleArg": true, "AfterFunc": true, "AfterFuncArg": true,
	"Send": true, "SendTo": true, "Emit": true, "Enqueue": true,
	"Push": true, "Publish": true, "Dispatch": true,
}

func runMapiter(pass *Pass) error {
	if !isDeterministicPkg(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkMapRanges(pass, fn.Body)
		}
	}
	return nil
}

// checkMapRanges walks one function body reporting order-dependent
// range-over-map loops.
func checkMapRanges(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		for _, eff := range mapRangeEffects(pass, rng) {
			if eff.sortable != nil && sortedAfter(pass, body, rng, eff.sortable) {
				continue
			}
			pass.Reportf(eff.pos,
				"map iteration order leaks into %s; iterate sorted keys or sort the result afterwards", eff.what)
		}
		return true
	})
	return
}

// effect is one order-dependent action found in a range body. sortable names
// the written variable when a later deterministic sort absolves the effect
// (append/index-store targets); it is nil for sends and scheduling calls,
// which bake the order in immediately.
type effect struct {
	pos      token.Pos
	what     string
	sortable types.Object
}

// mapRangeEffects collects the order-dependent effects of one range body.
func mapRangeEffects(pass *Pass, rng *ast.RangeStmt) []effect {
	var effects []effect
	outer := func(e ast.Expr) (types.Object, bool) {
		id := rootIdent(e)
		if id == nil {
			return nil, false
		}
		obj := pass.TypesInfo.ObjectOf(id)
		if obj == nil || obj.Pos() == token.NoPos {
			return nil, false // package-level dotted imports etc.: treat as inner
		}
		// Declared before the range statement = outlives the loop.
		return obj, obj.Pos() < rng.Pos()
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				}
				effects = append(effects, assignEffects(pass, rng, outer, n.Tok, lhs, rhs)...)
			}
		case *ast.SendStmt:
			effects = append(effects, effect{pos: n.Arrow, what: "a channel send"})
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok || !orderSensitiveCalls[sel.Sel.Name] {
				return true
			}
			if _, isPkg := pass.TypesInfo.Uses[rootIdent(sel.X)].(*types.PkgName); isPkg {
				// Package-qualified (sim.Schedule, sim.ScheduleArg...):
				// always order-sensitive.
				effects = append(effects, effect{pos: n.Pos(), what: sel.Sel.Name + " per map entry"})
				return true
			}
			if _, isOuter := outer(sel.X); isOuter {
				effects = append(effects, effect{pos: n.Pos(), what: sel.Sel.Name + " per map entry"})
			}
		}
		return true
	})
	return effects
}

// assignEffects classifies one assignment target inside a range body.
func assignEffects(pass *Pass, rng *ast.RangeStmt, outer func(ast.Expr) (types.Object, bool), tok token.Token, lhs, rhs ast.Expr) []effect {
	// append into anything that outlives the loop records the order,
	// whatever shape the destination takes (local slice, field, element).
	if call, ok := rhs.(*ast.CallExpr); ok {
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
			if obj, isOuter := outer(lhs); isOuter {
				return []effect{{pos: lhs.Pos(), what: "append order of " + exprString(lhs), sortable: obj}}
			}
			return nil
		}
	}
	switch lhs := lhs.(type) {
	case *ast.Ident:
		return nil
	case *ast.IndexExpr:
		base := pass.TypesInfo.Types[lhs.X].Type
		if base == nil {
			return nil
		}
		switch base.Underlying().(type) {
		case *types.Slice, *types.Array:
			if obj, isOuter := outer(lhs.X); isOuter {
				return []effect{{pos: lhs.Pos(), what: "element order of " + exprString(lhs.X), sortable: obj}}
			}
		}
		// Map stores are per-key: final state is order-independent.
	case *ast.SelectorExpr:
		// Field store through something that outlives the loop: last write
		// wins, so the surviving value depends on iteration order — unless
		// the root is the loop's own value variable (per-entry update).
		if obj, isOuter := outer(lhs.X); isOuter {
			return []effect{{pos: lhs.Pos(), what: "the surviving write to " + exprString(lhs), sortable: obj}}
		}
	}
	return nil
}

// sortedAfter reports whether obj is passed to a sorting call after the
// range statement within the same function body.
func sortedAfter(pass *Pass, body *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rng.End() || found {
			return !found
		}
		// Include the qualifier so sort.Strings / slices.SortFunc both match.
		name := exprString(call.Fun)
		if !strings.Contains(name, "Sort") && !strings.Contains(name, "sort") {
			return true
		}
		for _, arg := range call.Args {
			if id := rootIdent(arg); id != nil && pass.TypesInfo.ObjectOf(id) == obj {
				found = true
			}
		}
		return !found
	})
	return found
}

// rootIdent unwraps selectors, indexing, derefs and parens to the base
// identifier of an expression, or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// exprString renders a small expression for diagnostics.
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	case *ast.ParenExpr:
		return "(" + exprString(x.X) + ")"
	default:
		return "expression"
	}
}
