// Package lint is the emergelint analyzer suite: machine-checked versions of
// the cross-package contracts the reproduction's byte-determinism rests on.
// The compiler cannot see that simulated runs must be a pure function of
// their seed, that transport handlers must copy pooled payloads to retain
// them, or that pooled records follow an exact acquire/release protocol —
// these analyzers can, and CI runs them over the whole tree so new code
// cannot silently break the contracts.
//
// The package is deliberately self-contained: it reimplements the small
// slice of the golang.org/x/tools go/analysis vocabulary it needs (Analyzer,
// Pass, Diagnostic, a go-vet unitchecker, a go-list-driven loader) on the
// standard library alone, because the repository builds offline with no
// module dependencies.
//
// # Annotations
//
// A diagnostic at a site that is deliberately exempt — the realClock seam,
// the crypto/rand fallbacks real deployments keep, wall-clock Elapsed
// diagnostics — is suppressed with a load-bearing annotation on the same
// line or the line directly above:
//
//	//lint:allow detrand reason why this site is exempt
//
// The reason is mandatory, and an annotation that suppresses nothing is
// itself reported, so stale exemptions cannot accumulate.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check. It mirrors the x/tools go/analysis shape so
// the analyzers port wholesale if the dependency ever becomes available.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //lint:allow
	// annotations. It must be a single word.
	Name string
	// Doc is the one-paragraph description printed by `emergelint help`.
	Doc string
	// Run executes the analyzer over one package.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diagnostics []Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diagnostics = append(p.diagnostics, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// InTestFile reports whether pos lies in a _test.go file. The determinism
// and pooling contracts bind shipped code; tests exercise wall clocks and
// throwaway buffers freely.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Suite returns the full emergelint analyzer set in reporting order.
func Suite() []*Analyzer {
	return []*Analyzer{Detrand, Mapiter, Retain, Poolpair}
}

// AllowPrefix is the annotation marker: //lint:allow <analyzer> <reason>.
const AllowPrefix = "lint:allow"

// allowance is one parsed //lint:allow annotation.
type allowance struct {
	pos      token.Pos
	line     int // the annotation's own physical line
	file     string
	analyzer string
	reason   string
	used     bool
}

// parseAllowances extracts every //lint:allow annotation from the files. An
// annotation covers its own line (trailing comment form) and the line
// directly below it (standalone comment form).
func parseAllowances(fset *token.FileSet, files []*ast.File) []*allowance {
	var out []*allowance
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, AllowPrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, AllowPrefix))
				// A nested comment (fixture `// want` markers) is not part
				// of the reason.
				rest, _, _ = strings.Cut(rest, "//")
				name, reason, _ := strings.Cut(rest, " ")
				pos := fset.Position(c.Pos())
				out = append(out, &allowance{
					pos:      c.Pos(),
					line:     pos.Line,
					file:     pos.Filename,
					analyzer: name,
					reason:   strings.TrimSpace(reason),
				})
			}
		}
	}
	return out
}

// RunAnalyzers executes the analyzers over one loaded package, applies the
// //lint:allow suppression pass, and returns the surviving diagnostics plus
// annotation-hygiene findings (missing reasons, unused or unknown allows).
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	known := map[string]bool{}
	var raw []Diagnostic
	for _, a := range analyzers {
		known[a.Name] = true
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Syntax,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
		}
		raw = append(raw, pass.diagnostics...)
	}

	allows := parseAllowances(pkg.Fset, pkg.Syntax)
	var out []Diagnostic
	for _, d := range raw {
		pos := pkg.Fset.Position(d.Pos)
		suppressed := false
		for _, al := range allows {
			if al.analyzer == d.Analyzer && al.file == pos.Filename &&
				(al.line == pos.Line || al.line+1 == pos.Line) && al.reason != "" {
				al.used = true
				suppressed = true
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	for _, al := range allows {
		switch {
		case !known[al.analyzer]:
			// Only meaningful when the full suite runs; a partial run
			// (fixture tests) must not flag other analyzers' allows.
			if len(analyzers) == len(Suite()) {
				out = append(out, Diagnostic{Pos: al.pos, Analyzer: "lintallow",
					Message: fmt.Sprintf("//lint:allow names unknown analyzer %q", al.analyzer)})
			}
		case al.reason == "":
			out = append(out, Diagnostic{Pos: al.pos, Analyzer: al.analyzer,
				Message: "//lint:allow needs a reason: the annotation must say why the site is exempt"})
		case !al.used:
			out = append(out, Diagnostic{Pos: al.pos, Analyzer: al.analyzer,
				Message: fmt.Sprintf("unused //lint:allow %s: no diagnostic here, delete the stale exemption", al.analyzer)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := pkg.Fset.Position(out[i].Pos), pkg.Fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return out[i].Message < out[j].Message
	})
	return out, nil
}
