package lint_test

import (
	"testing"

	"selfemerge/internal/lint"
	"selfemerge/internal/lint/linttest"
)

func TestMapiter(t *testing.T) {
	linttest.Run(t, "testdata", lint.Mapiter, "fixture/mapiter/...")
}
