package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Retain enforces the copy-to-retain transport.Handler contract: a
// handler's payload slice is only valid for the duration of the call
// (transports recycle delivery buffers), so any byte of it that outlives
// the call — stored in a field, a map, a slice, captured by an escaping
// closure, sent on a channel — must first be cloned. The analyzer tracks
// the payload parameter and its subslice aliases through handler-shaped
// functions (func(transport.Addr, []byte)) and reports retention without an
// intervening clone.
var Retain = &Analyzer{
	Name: "retain",
	Doc: "enforce the copy-to-retain transport.Handler contract: pooled payload bytes must be " +
		"cloned (append([]byte(nil), p...), bytes.Clone, string(p)) before escaping the handler call",
	Run: runRetain,
}

func runRetain(pass *Pass) error {
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil && isHandlerSig(pass, fn.Type) {
					checkHandlerBody(pass, fn.Type, fn.Body)
				}
			case *ast.FuncLit:
				if isHandlerSig(pass, fn.Type) {
					checkHandlerBody(pass, fn.Type, fn.Body)
				}
			}
			return true
		})
	}
	return nil
}

// isHandlerSig reports whether ft is handler-shaped: exactly
// (transport.Addr, []byte) with no results. This matches both values of the
// named transport.Handler type and methods like a node's inbound dispatch
// that go vet sees before conversion.
func isHandlerSig(pass *Pass, ft *ast.FuncType) bool {
	if ft.Results != nil && len(ft.Results.List) > 0 {
		return false
	}
	params := flattenFields(ft.Params)
	if len(params) != 2 {
		return false
	}
	addr, ok := pass.TypesInfo.Types[params[0].typ].Type.(*types.Named)
	if !ok || addr.Obj().Name() != "Addr" || !pkgPathEndsWith(addr.Obj().Pkg(), "transport") {
		return false
	}
	slice, ok := pass.TypesInfo.Types[params[1].typ].Type.(*types.Slice)
	if !ok {
		return false
	}
	basic, ok := slice.Elem().(*types.Basic)
	return ok && basic.Kind() == types.Byte
}

// param is one flattened parameter declaration.
type param struct {
	name *ast.Ident // nil for unnamed
	typ  ast.Expr
}

func flattenFields(fl *ast.FieldList) []param {
	var out []param
	if fl == nil {
		return nil
	}
	for _, f := range fl.List {
		if len(f.Names) == 0 {
			out = append(out, param{typ: f.Type})
			continue
		}
		for _, name := range f.Names {
			out = append(out, param{name: name, typ: f.Type})
		}
	}
	return out
}

func pkgPathEndsWith(pkg *types.Package, elem string) bool {
	if pkg == nil {
		return false
	}
	path := pkg.Path()
	return path == elem || strings.HasSuffix(path, "/"+elem)
}

// checkHandlerBody tracks the payload parameter through one handler body.
func checkHandlerBody(pass *Pass, ft *ast.FuncType, body *ast.BlockStmt) {
	params := flattenFields(ft.Params)
	payload := params[1].name
	if payload == nil || payload.Name == "_" {
		return
	}
	// tainted holds objects aliasing the pooled payload bytes: the
	// parameter itself plus subslice/plain-copy locals.
	tainted := map[types.Object]bool{pass.TypesInfo.ObjectOf(payload): true}
	isTainted := func(e ast.Expr) bool { return exprTainted(pass, tainted, e) }

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if len(n.Rhs) != len(n.Lhs) {
					continue
				}
				rhs := n.Rhs[i]
				if !isTainted(rhs) {
					continue
				}
				switch lhs := lhs.(type) {
				case *ast.Ident:
					obj := pass.TypesInfo.ObjectOf(lhs)
					if obj == nil {
						continue
					}
					if obj.Parent() == pass.Pkg.Scope() {
						// A package-level variable outlives every call.
						pass.Reportf(n.Pos(),
							"handler payload escapes to package variable %s without a clone; the transport recycles the buffer after the call (copy-to-retain contract)",
							lhs.Name)
						continue
					}
					// A plain local copy aliases the same backing array.
					tainted[obj] = true
				case *ast.SelectorExpr:
					pass.Reportf(n.Pos(),
						"handler payload escapes to field %s without a clone; the transport recycles the buffer after the call (copy-to-retain contract)",
						exprString(lhs))
				case *ast.IndexExpr:
					pass.Reportf(n.Pos(),
						"handler payload escapes into %s without a clone; the transport recycles the buffer after the call (copy-to-retain contract)",
						exprString(lhs.X))
				}
			}
		case *ast.SendStmt:
			if isTainted(n.Value) {
				pass.Reportf(n.Pos(),
					"handler payload sent on a channel without a clone; the receiver outlives the call (copy-to-retain contract)")
			}
		case *ast.GoStmt:
			if captures(pass, tainted, n.Call) {
				pass.Reportf(n.Pos(),
					"handler payload captured by a goroutine; it runs after the transport recycles the buffer (copy-to-retain contract)")
			}
		case *ast.FuncLit:
			// An escaping closure (scheduled, stored, passed along) may run
			// after the handler returns. Immediately-invoked literals are
			// checked by their surrounding statements instead.
			if immediatelyInvoked(body, n) {
				return true
			}
			if capturesTainted(pass, tainted, n) {
				pass.Reportf(n.Pos(),
					"handler payload captured by an escaping closure without a clone (copy-to-retain contract)")
				return false // one report per closure
			}
		}
		return true
	})
}

// exprTainted reports whether e carries pooled payload bytes: a tainted
// identifier, a subslice of one, or an append whose destination is tainted.
// Cloning forms launder the taint: append onto an untainted destination,
// slices.Clone/bytes.Clone, string conversion.
func exprTainted(pass *Pass, tainted map[types.Object]bool, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return tainted[pass.TypesInfo.ObjectOf(e)]
	case *ast.SliceExpr:
		return exprTainted(pass, tainted, e.X)
	case *ast.ParenExpr:
		return exprTainted(pass, tainted, e.X)
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "append" && len(e.Args) > 0 {
			// append(dst, p...) copies the bytes: taint follows dst alone.
			// append(dst, p) (no ellipsis, element type []byte) retains the
			// slice header itself.
			if exprTainted(pass, tainted, e.Args[0]) {
				return true
			}
			if e.Ellipsis == 0 {
				for _, arg := range e.Args[1:] {
					if exprTainted(pass, tainted, arg) {
						return true
					}
				}
			}
			return false
		}
		// Clone helpers and conversions launder; any other call's result is
		// the callee's responsibility.
		return false
	}
	return false
}

// capturesTainted reports whether the function literal references a tainted
// identifier.
func capturesTainted(pass *Pass, tainted map[types.Object]bool, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && tainted[pass.TypesInfo.ObjectOf(id)] {
			found = true
		}
		return !found
	})
	return found
}

// captures reports whether a call statement references tainted bytes either
// in its arguments' closures or by passing them to a goroutine.
func captures(pass *Pass, tainted map[types.Object]bool, call *ast.CallExpr) bool {
	if lit, ok := call.Fun.(*ast.FuncLit); ok && capturesTainted(pass, tainted, lit) {
		return true
	}
	for _, arg := range call.Args {
		if exprTainted(pass, tainted, arg) {
			return true
		}
		if lit, ok := arg.(*ast.FuncLit); ok && capturesTainted(pass, tainted, lit) {
			return true
		}
	}
	return false
}

// immediatelyInvoked reports whether lit appears as the function expression
// of a call (including deferred calls, which still run before the handler
// returns; goroutine launches are reported by the GoStmt case before the
// walk descends here).
func immediatelyInvoked(body *ast.BlockStmt, lit *ast.FuncLit) bool {
	invoked := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && call.Fun == lit {
			invoked = true
		}
		return !invoked
	})
	return invoked
}
