package lint_test

import (
	"testing"

	"selfemerge/internal/lint"
	"selfemerge/internal/lint/linttest"
)

func TestRetain(t *testing.T) {
	linttest.Run(t, "testdata", lint.Retain, "fixture/retain")
}
