// Package linttest is a compact analysistest: it loads fixture packages
// from a testdata module, runs one analyzer over them, and checks the
// diagnostics against `// want "regexp"` expectations embedded in the
// fixture sources. A diagnostic with no matching want, or a want with no
// matching diagnostic, fails the test.
package linttest

import (
	"fmt"
	"go/ast"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"selfemerge/internal/lint"
)

// expectation is one `// want` regexp anchored to a file line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads patterns from the testdata module rooted at dir, runs analyzer
// over every matched package, and compares diagnostics with the fixtures'
// want comments.
func Run(t *testing.T, dir string, analyzer *lint.Analyzer, patterns ...string) {
	t.Helper()
	pkgs, err := lint.Load(dir, patterns...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no fixture packages matched %v", patterns)
	}
	for _, pkg := range pkgs {
		diags, err := lint.RunAnalyzers(pkg, []*lint.Analyzer{analyzer})
		if err != nil {
			t.Fatalf("running %s over %s: %v", analyzer.Name, pkg.PkgPath, err)
		}
		wants := collectWants(t, pkg)
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			if w := matchWant(wants, pos.Filename, pos.Line, d.Message); w == nil {
				t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
			}
		}
		for _, w := range wants {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.raw)
			}
		}
	}
}

// matchWant finds the first unmatched expectation on the diagnostic's line
// whose regexp matches the message.
func matchWant(wants []*expectation, file string, line int, message string) *expectation {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.re.MatchString(message) {
			w.matched = true
			return w
		}
	}
	return nil
}

// collectWants parses every `// want` comment in the package. The marker
// may open the comment or trail other text (so a fixture can annotate a
// //lint:allow line); each following quoted string is one expected-message
// regexp for the marker's own line.
func collectWants(t *testing.T, pkg *lint.Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				wants = append(wants, parseWant(t, pkg, c)...)
			}
		}
	}
	return wants
}

func parseWant(t *testing.T, pkg *lint.Package, c *ast.Comment) []*expectation {
	t.Helper()
	text := c.Text
	trimmed := strings.TrimSpace(strings.TrimPrefix(text, "//"))
	var rest string
	switch i := strings.LastIndex(text, "// want "); {
	case strings.HasPrefix(trimmed, "want "):
		rest = strings.TrimPrefix(trimmed, "want ")
	case i >= 0:
		// Nested marker: `code //lint:allow x reason // want "..."`.
		rest = text[i+len("// want "):]
	default:
		return nil
	}
	pos := pkg.Fset.Position(c.Pos())
	var out []*expectation
	rest = strings.TrimSpace(rest)
	for rest != "" {
		if rest[0] != '"' && rest[0] != '`' {
			t.Fatalf("%s: malformed want comment %q", pos, text)
		}
		lit, remainder, err := cutQuoted(rest)
		if err != nil {
			t.Fatalf("%s: malformed want comment %q: %v", pos, text, err)
		}
		re, err := regexp.Compile(lit)
		if err != nil {
			t.Fatalf("%s: bad want regexp %q: %v", pos, lit, err)
		}
		out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: lit})
		rest = strings.TrimSpace(remainder)
	}
	return out
}

// cutQuoted splits one leading Go string literal off s.
func cutQuoted(s string) (string, string, error) {
	if s[0] == '`' {
		end := strings.IndexByte(s[1:], '`')
		if end < 0 {
			return "", "", fmt.Errorf("unterminated raw string")
		}
		return s[1 : 1+end], s[end+2:], nil
	}
	for i := 1; i < len(s); i++ {
		if s[i] == '\\' {
			i++
			continue
		}
		if s[i] == '"' {
			lit, err := strconv.Unquote(s[:i+1])
			return lit, s[i+1:], err
		}
	}
	return "", "", fmt.Errorf("unterminated string")
}
