// Package dht is a mapiter fixture: range-over-map with order-dependent
// effects inside a determinism-critical package.
package dht

import (
	"sort"
)

type scheduler struct{}

func (scheduler) Schedule(d int, fn func()) {}

type emitter struct{ rows []string }

func (e *emitter) Emit(s string) {}

func appendNoSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `map iteration order leaks into append order of keys`
	}
	return keys
}

func appendThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func appendThenSliceSort(m map[string]int) []int {
	var vals []int
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

func scheduleEach(m map[string]func(), s scheduler) {
	for _, fn := range m {
		s.Schedule(1, fn) // want `map iteration order leaks into Schedule per map entry`
	}
}

func emitEach(m map[string]string, e *emitter) {
	for _, v := range m {
		e.Emit(v) // want `map iteration order leaks into Emit per map entry`
	}
}

func sendEach(m map[string]int, ch chan int) {
	for _, v := range m {
		ch <- v // want `map iteration order leaks into a channel send`
	}
}

func sliceStore(m map[int]string, out []string) {
	i := 0
	for _, v := range m {
		out[i] = v // want `map iteration order leaks into element order of out`
		i++
	}
}

func lastWriteWins(m map[string]int, e *emitter) {
	for k := range m {
		e.rows = append(e.rows, k) // want `map iteration order leaks into append order of e\.rows`
	}
}

// Order-insensitive bodies stay legal: scalar accumulation, map-to-map
// stores, per-entry updates through the loop value, deletes.
func clean(m map[string]int, out map[string]int, dead map[string]bool) int {
	n := 0
	for k, v := range m {
		n += v
		out[k] = v
		if dead[k] {
			delete(out, k)
		}
	}
	return n
}

type box struct{ n int }

func cleanPerEntry(m map[string]*box) {
	for _, b := range m {
		b.n++
	}
}

func allowed(m map[string]int, ch chan int) {
	for _, v := range m {
		ch <- v //lint:allow mapiter the consumer re-sorts by sequence number
	}
}
