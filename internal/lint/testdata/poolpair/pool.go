// Package poolpair exercises the pool acquire/release protocol: every
// sync.Pool Get must reach its paired Put or an ownership transfer on every
// path out of the acquiring function.
package poolpair

import (
	"errors"
	"sync"
)

type rec struct{ n int }

var pool = sync.Pool{New: func() any { return new(rec) }}

type registry struct {
	parked map[int]*rec
}

func errOut() error { return errors.New("nope") }

func leakOnError(fail bool) error {
	r := pool.Get().(*rec) // want `pooled record r acquired here may reach this return unreleased`
	if fail {
		return errOut()
	}
	pool.Put(r)
	return nil
}

func leakAtEnd(fail bool) {
	r := pool.Get().(*rec) // want `pooled record r acquired here may reach function end unreleased`
	if fail {
		pool.Put(r)
	}
}

func leakInLoop(n int) {
	for i := 0; i < n; i++ {
		r := pool.Get().(*rec) // want `pooled record r acquired here may reach the next loop iteration unreleased`
		if r.n > 0 {
			continue
		}
		pool.Put(r)
	}
}

func leakInSwitch(mode int) {
	r := pool.Get().(*rec) // want `pooled record r acquired here may reach function end unreleased`
	switch mode {
	case 0:
		pool.Put(r)
	case 1:
		r.n = 0
	}
}

func releasedBothBranches(fail bool) error {
	r := pool.Get().(*rec)
	if fail {
		pool.Put(r)
		return errOut()
	}
	pool.Put(r)
	return nil
}

func releasedByDefer(fail bool) error {
	r := pool.Get().(*rec)
	defer pool.Put(r)
	if fail {
		return errOut()
	}
	return nil
}

// The documented Stop-ownership pattern: arming a timer with the record
// transfers ownership; the timer's fire/Stop paths release it.
func armTimer(arm func(*rec)) {
	r := pool.Get().(*rec)
	arm(r)
}

// Storing the record parks ownership with the registry.
func parkInRegistry(reg *registry, id int) {
	r := pool.Get().(*rec)
	reg.parked[id] = r
}

// Returning the record hands ownership to the caller.
func handOut() *rec {
	r := pool.Get().(*rec)
	return r
}

// A capturing closure owns the record wherever it ends up running.
func closureOwns(schedule func(func())) {
	r := pool.Get().(*rec)
	schedule(func() { pool.Put(r) })
}

func allowedDrop() {
	r := pool.Get().(*rec) //lint:allow poolpair deliberate drop: the pool refills from New
	r.n = 0
}
