// Package other sits outside the deterministic boundary: wall clocks and
// ambient randomness are its business.
package other

import (
	crand "crypto/rand"
	"time"
)

func free() time.Time {
	b := make([]byte, 8)
	_, _ = crand.Read(b)
	return time.Now()
}
