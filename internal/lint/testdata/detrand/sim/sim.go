// Package sim is a detrand fixture: its path ends in a determinism-critical
// package name, so ambient time and randomness are forbidden.
package sim

import (
	crand "crypto/rand"
	mrand "math/rand"
	rand2 "math/rand/v2"
	"time"
)

// Clock stands in for the injected seam.
type Clock interface {
	Now() time.Time
}

func wallClock() {
	_ = time.Now()               // want `time\.Now reads the wall clock`
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the wall clock`
	_ = time.Since(time.Time{})  // want `time\.Since reads the wall clock`
	t := time.NewTimer(0)        // want `time\.NewTimer reads the wall clock`
	t.Stop()
}

func globalRand() {
	_ = mrand.Intn(4)                   // want `global rand\.Intn is ambiently seeded`
	_ = rand2.IntN(4)                   // want `global rand\.IntN is ambiently seeded`
	mrand.Shuffle(1, func(i, j int) {}) // want `global rand\.Shuffle is ambiently seeded`
}

func cryptoRand() {
	b := make([]byte, 8)
	_, _ = crand.Read(b) // want `crypto/rand\.Read is unseedable`
	_ = crand.Reader     // want `crypto/rand\.Reader is unseedable`
}

// seeded generators, injected clocks and pure time construction stay legal.
func clean(c Clock) {
	_ = c.Now()
	r := mrand.New(mrand.NewSource(1))
	_ = r.Intn(4)
	r2 := rand2.New(rand2.NewPCG(1, 2))
	_ = r2.IntN(4)
	_ = 5 * time.Second
	_ = time.Unix(0, 0)
}

// The audited real-world seam: a load-bearing annotation suppresses the
// diagnostic.
//
//lint:allow detrand the real-clock seam serves the UDP deployment path
func realNow() time.Time { return time.Now() }

func allowedInline() time.Time {
	return time.Now() //lint:allow detrand wall-clock Elapsed diagnostics only
}

func missingReason() time.Time {
	return time.Now() //lint:allow detrand // want `time\.Now reads the wall clock` `//lint:allow needs a reason`
}

func unusedAllow() {
	//lint:allow detrand nothing here needs an exemption // want `unused //lint:allow detrand`
	_ = time.Unix(0, 0)
}
