// Package transport mirrors the real transport package's Handler contract
// for the retain fixtures: the analyzer matches the (Addr, []byte) handler
// shape by the package path's final element, so fixtures exercise it
// without importing the module under test.
package transport

// Addr identifies an endpoint.
type Addr string

// Handler consumes an inbound datagram; the payload is only valid for the
// duration of the call.
type Handler func(from Addr, payload []byte)
