// Package retain exercises the copy-to-retain transport.Handler contract:
// pooled payload bytes must be cloned before anything retains them past the
// handler call.
package retain

import (
	"fixture/transport"
)

type keeper struct {
	last   []byte
	frames [][]byte
}

var (
	sink    []byte
	store   = map[string][]byte{}
	byteCh  = make(chan []byte, 1)
	pending []func()
)

func use(b []byte) {}

func later(f func()) { pending = append(pending, f) }

func fieldEscape(k *keeper) transport.Handler {
	return func(from transport.Addr, payload []byte) {
		k.last = payload // want `handler payload escapes to field k\.last`
	}
}

func mapEscape(from transport.Addr, payload []byte) {
	store["x"] = payload // want `handler payload escapes into store`
}

func subsliceEscape(from transport.Addr, payload []byte) {
	body := payload[4:]
	store["x"] = body // want `handler payload escapes into store`
}

func globalEscape(from transport.Addr, payload []byte) {
	sink = payload // want `handler payload escapes to package variable sink`
}

func (k *keeper) sliceOfSlices(from transport.Addr, payload []byte) {
	k.frames = append(k.frames, payload) // want `handler payload escapes to field k\.frames`
}

func channelEscape(from transport.Addr, payload []byte) {
	byteCh <- payload // want `handler payload sent on a channel`
}

func closureEscape(from transport.Addr, payload []byte) {
	later(func() { use(payload) }) // want `handler payload captured by an escaping closure`
}

func goroutineEscape(from transport.Addr, payload []byte) {
	go use(payload) // want `handler payload captured by a goroutine`
}

// Cloning first satisfies the contract, as does purely synchronous use.
func (k *keeper) clean(from transport.Addr, payload []byte) {
	k.last = append(k.last[:0], payload...)
	store["y"] = append([]byte(nil), payload...)
	k.frames = append(k.frames, append([]byte(nil), payload...))
	use(payload)
	func() { use(payload) }()
	if len(payload) > 8 {
		use(payload[8:])
	}
}

func allowed(from transport.Addr, payload []byte) {
	sink = payload //lint:allow retain the fixture transport never recycles this buffer
}

// Non-handler shapes are out of scope even when they touch slices.
func notAHandler(name string, payload []byte) {
	sink = payload
}
