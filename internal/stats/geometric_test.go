package stats

import (
	"math"
	"testing"
)

func TestGeometricMean(t *testing.T) {
	r := NewRNG(61)
	for _, s := range []float64{0.05, 0.3, 0.9} {
		var sum Summary
		for i := 0; i < 100000; i++ {
			sum.Add(float64(r.Geometric(s)))
		}
		want := 1 / s
		if math.Abs(sum.Mean()-want) > 0.05*want {
			t.Errorf("Geometric(%v) mean = %.3f, want %.3f", s, sum.Mean(), want)
		}
		if sum.Min() < 1 {
			t.Errorf("Geometric(%v) produced %v < 1", s, sum.Min())
		}
	}
}

func TestGeometricCertainSuccess(t *testing.T) {
	r := NewRNG(67)
	for i := 0; i < 100; i++ {
		if got := r.Geometric(1); got != 1 {
			t.Fatalf("Geometric(1) = %d", got)
		}
	}
}

func TestGeometricPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Geometric(0) did not panic")
		}
	}()
	NewRNG(1).Geometric(0)
}
