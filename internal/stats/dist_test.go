package stats

import (
	"math"
	"testing"
)

func TestBinomialMoments(t *testing.T) {
	r := NewRNG(29)
	tests := []struct {
		n int
		p float64
	}{
		{10, 0.5}, {100, 0.1}, {7, 0.9}, {1, 0.3},
	}
	for _, tc := range tests {
		var s Summary
		for i := 0; i < 50000; i++ {
			s.Add(float64(r.Binomial(tc.n, tc.p)))
		}
		wantMean := float64(tc.n) * tc.p
		wantVar := float64(tc.n) * tc.p * (1 - tc.p)
		if math.Abs(s.Mean()-wantMean) > 4*math.Sqrt(wantVar/50000)+0.02 {
			t.Errorf("Binomial(%d,%v) mean = %.4f, want %.4f", tc.n, tc.p, s.Mean(), wantMean)
		}
		if math.Abs(s.Variance()-wantVar) > 0.1*wantVar+0.05 {
			t.Errorf("Binomial(%d,%v) var = %.4f, want %.4f", tc.n, tc.p, s.Variance(), wantVar)
		}
	}
}

func TestBinomialEdgeCases(t *testing.T) {
	r := NewRNG(31)
	if got := r.Binomial(10, 0); got != 0 {
		t.Errorf("Binomial(10,0) = %d", got)
	}
	if got := r.Binomial(10, 1); got != 10 {
		t.Errorf("Binomial(10,1) = %d", got)
	}
	if got := r.Binomial(0, 0.5); got != 0 {
		t.Errorf("Binomial(0,0.5) = %d", got)
	}
}

func TestHypergeometricMoments(t *testing.T) {
	r := NewRNG(37)
	const population, marked, draws = 100, 30, 20
	var s Summary
	for i := 0; i < 50000; i++ {
		s.Add(float64(r.Hypergeometric(population, marked, draws)))
	}
	wantMean := float64(draws) * float64(marked) / float64(population)
	// Var = n*K/N*(1-K/N)*(N-n)/(N-1)
	pf := float64(marked) / float64(population)
	wantVar := float64(draws) * pf * (1 - pf) * float64(population-draws) / float64(population-1)
	if math.Abs(s.Mean()-wantMean) > 0.05 {
		t.Errorf("mean = %.4f, want %.4f", s.Mean(), wantMean)
	}
	if math.Abs(s.Variance()-wantVar) > 0.15*wantVar {
		t.Errorf("var = %.4f, want %.4f", s.Variance(), wantVar)
	}
}

func TestHypergeometricBounds(t *testing.T) {
	r := NewRNG(41)
	for i := 0; i < 1000; i++ {
		got := r.Hypergeometric(50, 10, 45)
		// At least 45-(50-10)=5 marked must be drawn, at most 10.
		if got < 5 || got > 10 {
			t.Fatalf("Hypergeometric(50,10,45) = %d out of [5,10]", got)
		}
	}
	if got := r.Hypergeometric(10, 10, 7); got != 7 {
		t.Errorf("all-marked population: got %d, want 7", got)
	}
	if got := r.Hypergeometric(10, 0, 7); got != 0 {
		t.Errorf("no-marked population: got %d, want 0", got)
	}
}

func TestMarkedSetExactCount(t *testing.T) {
	r := NewRNG(43)
	for _, tc := range []struct{ population, marked int }{
		{100, 0}, {100, 37}, {100, 100}, {1, 1},
	} {
		set := r.MarkedSet(tc.population, tc.marked)
		if len(set) != tc.population {
			t.Fatalf("len = %d, want %d", len(set), tc.population)
		}
		count := 0
		for _, m := range set {
			if m {
				count++
			}
		}
		if count != tc.marked {
			t.Errorf("population=%d marked=%d: counted %d", tc.population, tc.marked, count)
		}
	}
}
