package stats

import (
	"math"
	"testing"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if got := s.Mean(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", got)
	}
	// Sample variance of this classic dataset is 32/7.
	if got := s.Variance(); math.Abs(got-32.0/7.0) > 1e-12 {
		t.Errorf("Variance = %v, want %v", got, 32.0/7.0)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", s.Min(), s.Max())
	}
}

func TestSummaryEmptyAndSingle(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Variance() != 0 || s.StdErr() != 0 {
		t.Error("empty summary should report zeros")
	}
	s.Add(3)
	if s.Mean() != 3 || s.Variance() != 0 {
		t.Errorf("single observation: mean=%v var=%v", s.Mean(), s.Variance())
	}
}

func TestProportionRateAndInterval(t *testing.T) {
	var p Proportion
	for i := 0; i < 80; i++ {
		p.Add(true)
	}
	for i := 0; i < 20; i++ {
		p.Add(false)
	}
	if got := p.Rate(); got != 0.8 {
		t.Fatalf("Rate = %v", got)
	}
	lo, hi := p.Wilson95()
	if lo >= 0.8 || hi <= 0.8 {
		t.Errorf("Wilson interval [%v,%v] does not contain 0.8", lo, hi)
	}
	if lo < 0.70 || hi > 0.90 {
		t.Errorf("Wilson interval [%v,%v] implausibly wide for n=100", lo, hi)
	}
}

func TestProportionExtremes(t *testing.T) {
	var p Proportion
	p.AddN(100, 100)
	lo, hi := p.Wilson95()
	if hi < 1-1e-9 {
		t.Errorf("hi = %v, want ~1", hi)
	}
	if lo < 0.9 {
		t.Errorf("lo = %v, want > 0.9 for 100/100", lo)
	}
	var q Proportion
	lo, hi = q.Wilson95()
	if lo != 0 || hi != 1 {
		t.Errorf("no-trials interval = [%v,%v], want [0,1]", lo, hi)
	}
}

func TestWilsonCoverage(t *testing.T) {
	// The interval should contain the true p in roughly 95% of experiments.
	r := NewRNG(47)
	const trueP = 0.3
	covered := 0
	const experiments = 2000
	for e := 0; e < experiments; e++ {
		var p Proportion
		for i := 0; i < 200; i++ {
			p.Add(r.Bool(trueP))
		}
		lo, hi := p.Wilson95()
		if lo <= trueP && trueP <= hi {
			covered++
		}
	}
	rate := float64(covered) / experiments
	if rate < 0.92 || rate > 0.99 {
		t.Errorf("coverage = %.3f, want ~0.95", rate)
	}
}
