package stats

import "math"

// Binomial draws the number of successes among n independent trials each
// succeeding with probability p. It runs in O(n); the trial counts used by
// the simulator (path widths, column sizes) are small enough that a direct
// Bernoulli sum is both exact and fast.
func (r *RNG) Binomial(n int, p float64) int {
	if n < 0 {
		panic("stats: Binomial called with negative n")
	}
	switch {
	case p <= 0:
		return 0
	case p >= 1:
		return n
	}
	successes := 0
	for i := 0; i < n; i++ {
		if r.Float64() < p {
			successes++
		}
	}
	return successes
}

// Geometric returns the 1-based index of the first success in a sequence of
// independent trials with success probability s, i.e. a geometric variate on
// {1, 2, ...}. It panics if s <= 0; s >= 1 returns 1.
func (r *RNG) Geometric(s float64) int {
	if s <= 0 {
		panic("stats: Geometric called with non-positive success probability")
	}
	if s >= 1 {
		return 1
	}
	// Inversion: ceil(ln(1-U)/ln(1-s)) with 1-U ~ U.
	u := 1 - r.Float64() // in (0, 1]
	g := int(math.Ceil(math.Log(u) / math.Log(1-s)))
	if g < 1 {
		g = 1
	}
	return g
}

// Hypergeometric draws the number of "marked" elements obtained when drawing
// draws elements without replacement from a population of size population
// containing marked marked elements. It panics on impossible arguments.
//
// This models the paper's experimental setup exactly: "We randomly select
// 10000*p non-repeated nodes and mark them as malicious", then holders are
// chosen without replacement from that finite population. At small network
// sizes (the N=100 panels of Figure 6) the difference from a binomial draw is
// material.
func (r *RNG) Hypergeometric(population, marked, draws int) int {
	if population < 0 || marked < 0 || draws < 0 || marked > population || draws > population {
		panic("stats: Hypergeometric arguments out of range")
	}
	got := 0
	remainingMarked := marked
	remainingPop := population
	for i := 0; i < draws; i++ {
		if remainingMarked > 0 && r.Intn(remainingPop) < remainingMarked {
			got++
			remainingMarked--
		}
		remainingPop--
	}
	return got
}

// MarkedSet returns a membership slice of length population with exactly
// marked true entries chosen uniformly at random. It reproduces the paper's
// Sybil marking step ("select floor(p*N) non-repeated nodes and mark them
// malicious").
func (r *RNG) MarkedSet(population, marked int) []bool {
	if marked < 0 || marked > population {
		panic("stats: MarkedSet requires 0 <= marked <= population")
	}
	set := make([]bool, population)
	for _, idx := range r.SampleWithoutReplacement(population, marked) {
		set[idx] = true
	}
	return set
}
