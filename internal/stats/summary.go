package stats

import "math"

// Summary accumulates observations online (Welford's algorithm) and reports
// mean, variance and confidence intervals without retaining samples.
type Summary struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// N returns the number of observations recorded.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean, or 0 with no observations.
func (s *Summary) Mean() float64 { return s.mean }

// Min returns the smallest observation, or 0 with no observations.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation, or 0 with no observations.
func (s *Summary) Max() float64 { return s.max }

// Variance returns the unbiased sample variance, or 0 for fewer than two
// observations.
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// StdErr returns the standard error of the mean.
func (s *Summary) StdErr() float64 {
	if s.n == 0 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(s.n))
}

// CI95 returns the half-width of a normal-approximation 95% confidence
// interval on the mean.
func (s *Summary) CI95() float64 { return 1.96 * s.StdErr() }

// Proportion accumulates Bernoulli outcomes and reports the success rate with
// a Wilson score interval, which behaves well near 0 and 1 where the Monte
// Carlo resilience estimates live.
type Proportion struct {
	successes int
	trials    int
}

// Add records one Bernoulli outcome.
func (p *Proportion) Add(success bool) {
	p.trials++
	if success {
		p.successes++
	}
}

// AddN records many outcomes at once.
func (p *Proportion) AddN(successes, trials int) {
	p.successes += successes
	p.trials += trials
}

// Trials returns the number of recorded outcomes.
func (p *Proportion) Trials() int { return p.trials }

// Successes returns the number of recorded successes.
func (p *Proportion) Successes() int { return p.successes }

// Rate returns the observed success proportion, or 0 with no trials.
func (p *Proportion) Rate() float64 {
	if p.trials == 0 {
		return 0
	}
	return float64(p.successes) / float64(p.trials)
}

// Wilson95 returns the 95% Wilson score interval (lo, hi) for the true
// success probability.
func (p *Proportion) Wilson95() (lo, hi float64) {
	if p.trials == 0 {
		return 0, 1
	}
	const z = 1.96
	n := float64(p.trials)
	phat := p.Rate()
	z2 := z * z
	denom := 1 + z2/n
	center := (phat + z2/(2*n)) / denom
	half := z * math.Sqrt(phat*(1-phat)/n+z2/(4*n*n)) / denom
	lo = center - half
	hi = center + half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}
