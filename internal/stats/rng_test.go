package stats

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("iteration %d: streams diverged: %d != %d", i, got, want)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical outputs", same)
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	// Must not be stuck at zero.
	var nonzero bool
	for i := 0; i < 10; i++ {
		if r.Uint64() != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("zero seed produced all-zero stream")
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(7)
	child := parent.Split()
	if parent == child {
		t.Fatal("Split returned the same generator")
	}
	// The child's stream must differ from the parent's continued stream.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("parent and child streams matched %d/100 times", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestIntnUniformity(t *testing.T) {
	r := NewRNG(11)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("value %d drawn %d times, want ~%.0f", v, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestExpMean(t *testing.T) {
	r := NewRNG(5)
	const mean = 3.5
	var s Summary
	for i := 0; i < 200000; i++ {
		s.Add(r.Exp(mean))
	}
	if math.Abs(s.Mean()-mean) > 0.05 {
		t.Fatalf("Exp mean = %.4f, want ~%.1f", s.Mean(), mean)
	}
	if s.Min() < 0 {
		t.Fatalf("Exp produced negative value %v", s.Min())
	}
}

func TestExpPanicsOnNonPositiveMean(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	NewRNG(1).Exp(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(13)
	err := quick.Check(func(seed uint64) bool {
		n := int(seed%50) + 1
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	r := NewRNG(17)
	tests := []struct{ n, k int }{
		{10, 0}, {10, 1}, {10, 5}, {10, 10}, {1000, 3}, {100, 99},
	}
	for _, tc := range tests {
		got := r.SampleWithoutReplacement(tc.n, tc.k)
		if len(got) != tc.k {
			t.Fatalf("n=%d k=%d: got %d values", tc.n, tc.k, len(got))
		}
		seen := make(map[int]struct{}, tc.k)
		for _, v := range got {
			if v < 0 || v >= tc.n {
				t.Fatalf("n=%d k=%d: value %d out of range", tc.n, tc.k, v)
			}
			if _, dup := seen[v]; dup {
				t.Fatalf("n=%d k=%d: duplicate value %d", tc.n, tc.k, v)
			}
			seen[v] = struct{}{}
		}
	}
}

func TestSampleWithoutReplacementUniform(t *testing.T) {
	// Each element should appear with probability k/n.
	r := NewRNG(19)
	const n, k, trials = 20, 5, 40000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		for _, v := range r.SampleWithoutReplacement(n, k) {
			counts[v]++
		}
	}
	want := float64(trials) * k / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("element %d sampled %d times, want ~%.0f", v, c, want)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRNG(23)
	for _, p := range []float64{0, 0.25, 0.5, 0.9, 1} {
		hits := 0
		const trials = 50000
		for i := 0; i < trials; i++ {
			if r.Bool(p) {
				hits++
			}
		}
		got := float64(hits) / trials
		if math.Abs(got-p) > 0.01 {
			t.Errorf("Bool(%v) rate = %.4f", p, got)
		}
	}
}

func TestMix64Substreams(t *testing.T) {
	// Pure function of (seed, stream): repeatable, and distinct across both
	// arguments — adjacent streams of one seed and matched streams of
	// adjacent seeds must all land on different substream seeds.
	if Mix64(7, 3) != Mix64(7, 3) {
		t.Fatal("Mix64 not deterministic")
	}
	seen := make(map[uint64]string)
	for seed := uint64(0); seed < 32; seed++ {
		for stream := uint64(0); stream < 32; stream++ {
			v := Mix64(seed, stream)
			key := fmt.Sprintf("seed %d stream %d", seed, stream)
			if prev, dup := seen[v]; dup {
				t.Fatalf("%s collides with %s at %d", key, prev, v)
			}
			seen[v] = key
		}
	}
	// The derived substream must not be the raw seed: callers that want an
	// identity stream (shard 0) special-case it themselves.
	if Mix64(42, 0) == 42 {
		t.Error("Mix64(seed, 0) leaked the raw seed")
	}
}
