// Package stats provides deterministic pseudo-random number generation,
// sampling from the distributions used by the self-emerging data simulator
// (exponential lifetimes, binomial and hypergeometric adversary draws), and
// summary statistics for Monte Carlo experiment results.
//
// All generators are seeded explicitly so that every simulation in this
// repository is reproducible: the same seed always yields the same run.
package stats

import (
	"encoding/binary"
	"math"
	mathrand "math/rand/v2"
)

// RNG is a deterministic pseudo-random number generator based on
// xoshiro256++ with a SplitMix64 seeding sequence. It is not safe for
// concurrent use; create one RNG per goroutine (see Split).
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed via SplitMix64, guaranteeing a
// well-mixed internal state even for small or adjacent seeds.
func NewRNG(seed uint64) *RNG {
	var r RNG
	sm := seed
	for i := range r.s {
		sm, r.s[i] = splitMix64(sm)
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return &r
}

// splitMix64 advances the SplitMix64 state and returns (newState, output).
func splitMix64(state uint64) (uint64, uint64) {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return state, z ^ (z >> 31)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[0]+r.s[3], 23) + r.s[0]
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split derives an independent generator from r. The child stream is
// decorrelated from the parent by reseeding through SplitMix64, so parent and
// child may be used on different goroutines without sharing state.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}

// Mix64 derives a decorrelated substream seed from a base seed and a stream
// index, without constructing a generator: splitMix64 evaluated at the base
// advanced stream golden-ratio increments (the same constant splitMix64
// itself steps by, so distinct streams sample well-separated points of the
// sequence). The scenario engine keys each shard's private network off
// Mix64(pointSeed, shard), making every shard an independent replica that is
// still a pure function of the point seed.
func Mix64(seed, stream uint64) uint64 {
	_, out := splitMix64(seed + stream*0x9e3779b97f4a7c15)
	return out
}

// ByteStream is a deterministic, seedable stream of pseudo-random bytes: a
// ChaCha8 generator keyed from a 64-bit seed through SplitMix64. It
// implements io.Reader (Read never fails) and stands in for crypto/rand
// wherever the protocol draws key material, nonces or identifiers, making
// whole live runs — including every ciphertext byte — a pure function of
// their seed, with no per-draw syscall. Not safe for concurrent use; create
// one stream per network (or mission).
//
// ByteStream output is NOT cryptographically secure key material for real
// deployments: the 64-bit seed is the entire secret. Production binaries
// keep the crypto/rand default.
type ByteStream struct {
	c *mathrand.ChaCha8
}

// NewByteStream returns a stream seeded from seed: the ChaCha8 key is four
// decorrelated SplitMix64 substream outputs, so even adjacent seeds yield
// unrelated streams.
func NewByteStream(seed uint64) *ByteStream {
	var key [32]byte
	for i := 0; i < 4; i++ {
		binary.LittleEndian.PutUint64(key[i*8:], Mix64(seed, uint64(i)))
	}
	return &ByteStream{c: mathrand.NewChaCha8(key)}
}

// Read fills p with the next pseudo-random bytes; it always succeeds.
func (s *ByteStream) Read(p []byte) (int, error) {
	return s.c.Read(p)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn called with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n) using Lemire's unbiased
// multiply-shift rejection method. It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("stats: Uint64n called with zero n")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	threshold := -n % n
	for {
		v := r.Uint64()
		hi, lo := mul64(v, n)
		if lo >= threshold {
			return hi
		}
	}
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t&mask32 + x0*y1
	hi = x1*y1 + t>>32 + w1>>32
	lo = x * y
	return hi, lo
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap, implementing
// the Fisher-Yates shuffle.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	switch {
	case p <= 0:
		return false
	case p >= 1:
		return true
	default:
		return r.Float64() < p
	}
}

// Exp returns an exponentially distributed value with the given mean
// (i.e. rate 1/mean). It panics if mean <= 0.
func (r *RNG) Exp(mean float64) float64 {
	if mean <= 0 {
		panic("stats: Exp called with non-positive mean")
	}
	// Inversion: -mean * ln(1-U); 1-U avoids log(0) because Float64 < 1.
	return -mean * math.Log(1-r.Float64())
}

// SampleWithoutReplacement returns k distinct values drawn uniformly from
// [0, n). It panics if k > n or k < 0. The result is in random order.
//
// For k much smaller than n it uses rejection via a set; otherwise it uses a
// partial Fisher-Yates shuffle.
func (r *RNG) SampleWithoutReplacement(n, k int) []int {
	if k < 0 || k > n {
		panic("stats: SampleWithoutReplacement requires 0 <= k <= n")
	}
	if k == 0 {
		return nil
	}
	if k*8 < n {
		seen := make(map[int]struct{}, k)
		out := make([]int, 0, k)
		for len(out) < k {
			v := r.Intn(n)
			if _, dup := seen[v]; dup {
				continue
			}
			seen[v] = struct{}{}
			out = append(out, v)
		}
		return out
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	return idx[:k]
}
