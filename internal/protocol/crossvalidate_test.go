package protocol_test

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"selfemerge/internal/adversary"
	"selfemerge/internal/core"
	"selfemerge/internal/dht"
	"selfemerge/internal/mc"
	"selfemerge/internal/protocol"
	"selfemerge/internal/sim"
	"selfemerge/internal/stats"
	"selfemerge/internal/transport"
	"selfemerge/internal/transport/simnet"
)

// protocolTrial runs one full-protocol emergence attempt in a fresh simnet
// cluster with the given malicious marking and reports (releasedEarly,
// delivered). It is the executable counterpart of one mc.RunTrial.
func protocolTrial(t *testing.T, seed uint64, nodes int, malicious []bool, plan core.Plan, drop bool) (bool, bool) {
	t.Helper()
	s := sim.NewSimulator()
	net := simnet.New(s, simnet.Config{BaseLatency: time.Millisecond, Seed: seed})
	collector := adversary.NewCollector()
	rng := stats.NewRNG(seed)

	var mu sync.Mutex
	var deliveredAt time.Time
	var delivered bool

	cluster := make([]*dht.Node, 0, nodes)
	for i := 0; i < nodes; i++ {
		ep := net.Endpoint(transport.Addr(fmt.Sprintf("n%d", i)))
		host := protocol.NewHost(protocol.HostConfig{
			Clock:     s,
			Malicious: malicious[i],
			Drop:      drop && malicious[i],
			Reporter:  collector,
			OnSecret: func(_ protocol.MissionID, _ []byte) {
				mu.Lock()
				if !delivered {
					delivered = true
					deliveredAt = s.Now()
				}
				mu.Unlock()
			},
		})
		node, err := dht.NewNode(dht.Config{
			ID:       dht.RandomID(rng),
			Endpoint: ep,
			Clock:    s,
			OnApp:    host.HandleApp,
		})
		if err != nil {
			t.Fatal(err)
		}
		host.Attach(node)
		cluster = append(cluster, node)
	}
	boot := []dht.Contact{cluster[0].Contact()}
	for _, n := range cluster[1:] {
		n.Bootstrap(boot, nil)
	}
	s.Run()

	// Fully deterministic mission ID per trial: slot placement (and with it
	// the sampled rates) must be identical across runs.
	var id protocol.MissionID
	for b := 0; b < 8; b++ {
		id[b] = byte(seed >> (8 * b))
		id[8+b] = byte(seed>>(8*b)) ^ 0x5A
	}
	m := protocol.Mission{
		ID:       id,
		Plan:     plan,
		Secret:   []byte("xv"),
		Receiver: cluster[1].ID(),
		Start:    s.Now(),
		Release:  s.Now().Add(time.Duration(plan.L) * time.Hour),
	}
	if _, err := protocol.Dispatch(cluster[2], m); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(m.Release.Add(time.Minute))
	s.Run()

	releasedEarly := false
	if at, ok := collector.Recovered(m.ID); ok && at.Before(m.Release) {
		releasedEarly = true
	}
	mu.Lock()
	defer mu.Unlock()
	return releasedEarly, delivered && !deliveredAt.Before(m.Release)
}

// TestProtocolMatchesMonteCarloJoint cross-validates the full protocol
// simulation against the Monte Carlo engine that generates the figures: for
// the joint scheme at p = 0.5 in a small cluster, both must produce
// statistically compatible release and delivery rates.
//
// The comparison deliberately uses per-node Bernoulli marking (matching the
// MC's sampler at large population) and a cluster small enough that
// slot-to-node collisions are the dominant divergence; tolerances reflect
// that.
func TestProtocolMatchesMonteCarloJoint(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validation is slow")
	}
	const (
		nodes  = 40
		trials = 60
		p      = 0.5
	)
	plan := core.Plan{Scheme: core.SchemeJoint, K: 2, L: 2}

	released, delivered := 0, 0
	rng := stats.NewRNG(77)
	for trial := 0; trial < trials; trial++ {
		// Nodes 0-2 are bootstrap, receiver and dispatcher: the MC model
		// (like the paper's) assumes honest endpoints, so exempt them.
		malicious := make([]bool, nodes)
		for i := 3; i < nodes; i++ {
			malicious[i] = rng.Bool(p)
		}
		rel, del := protocolTrial(t, uint64(trial)+1000, nodes, malicious, plan, false)
		if rel {
			released++
		}
		if del {
			delivered++
		}
	}
	relRate := float64(released) / trials
	delRate := float64(delivered) / trials

	// MC reference at huge population (Bernoulli regime). The protocol
	// delivers every packet to holderReplicas = 2 nodes, so a slot is
	// exposed when either replica is malicious: effective rate
	// p' = 1-(1-p)^2.
	pEff := 1 - (1-p)*(1-p)
	ref, err := mc.Estimate(plan, mc.Env{Population: 1000000, Malicious: int(pEff * 1000000)},
		mc.Options{Trials: 200000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	wantRel := 1 - ref.Rr()

	// Generous bound: 60 protocol trials have sigma ~ 0.065, and multiple
	// slots can share one physical node in a 40-node cluster, which
	// correlates columns and shifts the rate toward compromise.
	if math.Abs(relRate-wantRel) > 0.25 {
		t.Errorf("release rate: protocol %.3f vs MC %.3f", relRate, wantRel)
	}
	// Spying holders forward faithfully, so delivery must be perfect; the
	// MC's Rd models the drop attack, compared in the dedicated test below.
	if delRate != 1 {
		t.Errorf("delivery rate under spy-only adversary = %.3f, want 1.0", delRate)
	}
	t.Logf("joint k=2 l=2 p=0.5: protocol released=%.3f delivered=%.3f; MC released=%.3f",
		relRate, delRate, wantRel)
}

// TestProtocolDropMatchesMonteCarlo does the same comparison for the drop
// attack: malicious holders discard packages.
func TestProtocolDropMatchesMonteCarlo(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validation is slow")
	}
	const (
		nodes  = 40
		trials = 60
		p      = 0.3
	)
	plan := core.Plan{Scheme: core.SchemeJoint, K: 2, L: 2}

	delivered := 0
	rng := stats.NewRNG(88)
	for trial := 0; trial < trials; trial++ {
		// Exempt bootstrap/receiver/dispatcher, as in the MC model.
		malicious := make([]bool, nodes)
		for i := 3; i < nodes; i++ {
			malicious[i] = rng.Bool(p)
		}
		_, del := protocolTrial(t, uint64(trial)+5000, nodes, malicious, plan, true)
		if del {
			delivered++
		}
	}
	delRate := float64(delivered) / trials

	ref, err := mc.Estimate(plan, mc.Env{Population: 1000000, Malicious: 300000},
		mc.Options{Trials: 200000, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(delRate-ref.Rd()) > 0.25 {
		t.Errorf("drop delivery rate: protocol %.3f vs MC %.3f", delRate, ref.Rd())
	}
	t.Logf("drop attack k=2 l=2 p=0.3: protocol delivered=%.3f; MC Rd=%.3f", delRate, ref.Rd())
}
