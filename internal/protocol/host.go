package protocol

import (
	"sort"
	"sync"
	"time"

	"selfemerge/internal/crypto/onion"
	"selfemerge/internal/crypto/seal"
	"selfemerge/internal/crypto/shamir"
	"selfemerge/internal/dht"
	"selfemerge/internal/sim"
)

// Reporter receives a copy of every packet a compromised holder observes
// (the adversary's collection channel). Implemented by
// adversary.Collector.
type Reporter interface {
	Report(now time.Time, from dht.ID, pkt Packet)
}

// HostConfig configures one node's protocol runtime.
type HostConfig struct {
	// Clock drives hold timers. Required.
	Clock sim.Clock
	// Malicious marks the node as adversary-controlled: every packet it
	// sees is reported to Reporter, and if Drop is set it discards
	// everything instead of forwarding (the drop attack).
	Malicious bool
	// Drop activates the drop attack on malicious nodes.
	Drop bool
	// Reporter collects intelligence from malicious nodes.
	Reporter Reporter
	// OnSecret fires when a PkSecret reaches this node (the receiver role).
	OnSecret func(mission MissionID, secret []byte)
	// Replicas is how many closest nodes receive each forwarded packet
	// (default 2). Scenario runs that cross-validate against the Monte
	// Carlo model use 1 so every holder slot maps to one physical node.
	Replicas int
	// Repair enables protocol-level churn repair: key grants carrying a
	// column width and holding period are periodically re-pushed to the
	// current owners of their column's slots, so replacements of dead
	// holders regain the layer key from a surviving custodian — the repair
	// process of Section II-C that the Monte Carlo model assumes. Only the
	// multipath schemes' grants carry repair metadata; the key share
	// scheme's just-in-time keys have no column-wide custodian to re-grant
	// them and rely on their Shamir thresholds instead, as in the model.
	Repair bool
}

// Host is the holder-side protocol engine attached to one DHT node. It
// buffers packages and key material per mission, peels onion layers as the
// needed keys become available, and forwards on the hold schedule.
type Host struct {
	cfg  HostConfig
	node *dht.Node

	mu       sync.Mutex
	missions map[MissionID]*missionState
}

type slotRef struct {
	column int
	slot   int
}

type missionState struct {
	// Column-wide key material (K_c of the multipath schemes, CK_c of the
	// key share scheme).
	colKeys   map[int]seal.Key
	colShares map[int][]shamir.Share
	// Per-slot key material (SK_{c,s}).
	slotKeys   map[slotRef]seal.Key
	slotShares map[slotRef][]shamir.Share

	// Main onion custody, one per column (joint/share copies are deduped).
	mainSealed map[int]*heldPackage
	// Slot onion custody.
	slotSealed map[slotRef]*heldPackage

	// Central-scheme custody.
	central *heldPackage
}

// heldPackage is a package waiting on its keys and/or its hold timer.
type heldPackage struct {
	pkt    Packet
	peeled *onion.Layer
	due    bool
	done   bool
	timer  sim.Timer
}

// NewHost creates a host; call Attach to bind it to its node after the
// node is constructed (the node's OnApp must be h.HandleApp).
func NewHost(cfg HostConfig) *Host {
	return &Host{cfg: cfg, missions: make(map[MissionID]*missionState)}
}

// Attach binds the host to its DHT node.
func (h *Host) Attach(node *dht.Node) { h.node = node }

// HandleApp is the dht.Config.OnApp entry point.
func (h *Host) HandleApp(from dht.Contact, payload []byte) {
	pkt, err := DecodePacket(payload)
	if err != nil {
		return
	}
	if h.cfg.Malicious && h.cfg.Reporter != nil {
		h.cfg.Reporter.Report(h.cfg.Clock.Now(), from.ID, pkt)
	}
	if h.cfg.Malicious && h.cfg.Drop && pkt.Kind != PkKeyGrant {
		// Drop attack: swallow every package. Key grants are still accepted
		// (and re-granted during repair) — the attack targets the packages,
		// and refusing routine key maintenance would expose the Sybil.
		return
	}

	switch pkt.Kind {
	case PkSecret:
		if h.cfg.OnSecret != nil {
			h.cfg.OnSecret(pkt.Mission, pkt.Data)
		}
		return
	case PkCentral:
		h.onCentral(pkt)
	case PkKeyGrant:
		h.onKeyGrant(pkt)
	case PkMainOnion:
		h.onOnion(pkt, true)
	case PkSlotOnion:
		h.onOnion(pkt, false)
	case PkColShare:
		h.onColShare(pkt)
	case PkSlotShare:
		h.onSlotShare(pkt)
	}
}

func (h *Host) state(id MissionID) *missionState {
	ms, ok := h.missions[id]
	if !ok {
		ms = &missionState{
			colKeys:    make(map[int]seal.Key),
			colShares:  make(map[int][]shamir.Share),
			slotKeys:   make(map[slotRef]seal.Key),
			slotShares: make(map[slotRef][]shamir.Share),
			mainSealed: make(map[int]*heldPackage),
			slotSealed: make(map[slotRef]*heldPackage),
		}
		h.missions[id] = ms
	}
	return ms
}

func (h *Host) onCentral(pkt Packet) {
	h.mu.Lock()
	ms := h.state(pkt.Mission)
	if ms.central != nil {
		h.mu.Unlock()
		return
	}
	hp := &heldPackage{pkt: pkt}
	ms.central = hp
	h.mu.Unlock()
	h.scheduleHold(hp, func() {
		h.node.SendToOwner(pkt.Target, Packet{
			Mission: pkt.Mission,
			Kind:    PkSecret,
			Data:    pkt.Data,
		}.Encode(), nil)
	})
}

func (h *Host) onKeyGrant(pkt Packet) {
	key, err := seal.KeyFromBytes(pkt.Data)
	if err != nil {
		return
	}
	h.mu.Lock()
	ms := h.state(pkt.Mission)
	fresh := false
	if pkt.X == keyGrantSlot {
		ref := slotRef{int(pkt.Column), int(pkt.Slot)}
		if _, dup := ms.slotKeys[ref]; !dup {
			ms.slotKeys[ref] = key
			fresh = true
		}
	} else {
		if _, dup := ms.colKeys[int(pkt.Column)]; !dup {
			ms.colKeys[int(pkt.Column)] = key
			fresh = true
		}
	}
	h.mu.Unlock()
	if fresh {
		h.scheduleGrantRefresh(pkt)
	}
	h.advance(pkt.Mission)
}

// scheduleGrantRefresh arms the custody-refresh loop for a newly received
// key grant: at the end of every holding period, while the key is still
// needed (before the grant's HoldUntil), the custodian re-pushes the grant
// to the current owners of its column's slots. A holder that churned out is
// thereby replaced by a fresh node that receives the layer key from this
// surviving custodian — the once-per-period repair of Section II-C. Dead
// custodians cannot refresh (their lookups fail on a closed node), so a
// column whose every custodian dies within one period loses its key, as the
// Monte Carlo model prescribes.
func (h *Host) scheduleGrantRefresh(pkt Packet) {
	if !h.cfg.Repair || pkt.Step <= 0 || pkt.Width == 0 {
		return
	}
	// Fire slightly before each period boundary (1/16 of a holding period
	// early): a replacement then regains the key before the next onion hop
	// arrives, and the re-grant exposure lands strictly inside the waiting
	// period it repairs — the window Equation (1)'s release-ahead
	// bookkeeping (and the Monte Carlo engine) attributes it to.
	margin := time.Duration(pkt.Step / 16)
	var tick func()
	tick = func() {
		if h.cfg.Clock.Now().UnixNano() >= pkt.HoldUntil-int64(margin) {
			return
		}
		if pkt.X == keyGrantSlot {
			// Slot keys are per-carrier: only this slot can be repaired.
			// Inert today — no sender attaches repair metadata to slot
			// grants (the share scheme relies on thresholds, not repair) —
			// but kept so slot-granting schemes inherit correct semantics.
			h.node.SendToOwners(SlotID(pkt.Mission, int(pkt.Column), int(pkt.Slot)),
				pkt.Encode(), h.replicas(), nil)
		} else {
			for s := 0; s < int(pkt.Width); s++ {
				p := pkt
				p.Slot = uint16(s)
				h.node.SendToOwners(SlotID(pkt.Mission, int(pkt.Column), s),
					p.Encode(), h.replicas(), nil)
			}
		}
		h.cfg.Clock.AfterFunc(time.Duration(pkt.Step), tick)
	}
	h.cfg.Clock.AfterFunc(time.Duration(pkt.Step)-margin, tick)
}

// replicas returns the forwarding replica count.
func (h *Host) replicas() int {
	if h.cfg.Replicas > 0 {
		return h.cfg.Replicas
	}
	return holderReplicas
}

func (h *Host) onOnion(pkt Packet, main bool) {
	h.mu.Lock()
	ms := h.state(pkt.Mission)
	col := int(pkt.Column)
	var hp *heldPackage
	if main {
		if _, dup := ms.mainSealed[col]; dup {
			h.mu.Unlock()
			return // replica already in custody (joint fan-in)
		}
		hp = &heldPackage{pkt: pkt}
		ms.mainSealed[col] = hp
	} else {
		ref := slotRef{col, int(pkt.Slot)}
		if _, dup := ms.slotSealed[ref]; dup {
			h.mu.Unlock()
			return
		}
		hp = &heldPackage{pkt: pkt}
		ms.slotSealed[ref] = hp
	}
	h.mu.Unlock()

	h.scheduleHold(hp, func() { h.advance(pkt.Mission) })
	h.advance(pkt.Mission)
}

func (h *Host) onColShare(pkt Packet) {
	x, data, err := parseShareBlob(pkt.Data)
	if err != nil {
		return
	}
	h.mu.Lock()
	ms := h.state(pkt.Mission)
	col := int(pkt.Column)
	if !hasShare(ms.colShares[col], x) {
		ms.colShares[col] = append(ms.colShares[col], shamir.Share{X: x, Data: data})
	}
	h.mu.Unlock()
	h.advance(pkt.Mission)
}

func (h *Host) onSlotShare(pkt Packet) {
	x, data, err := parseShareBlob(pkt.Data)
	if err != nil {
		return
	}
	h.mu.Lock()
	ms := h.state(pkt.Mission)
	ref := slotRef{int(pkt.Column), int(pkt.Slot)}
	if !hasShare(ms.slotShares[ref], x) {
		ms.slotShares[ref] = append(ms.slotShares[ref], shamir.Share{X: x, Data: data})
	}
	h.mu.Unlock()
	h.advance(pkt.Mission)
}

func hasShare(shares []shamir.Share, x uint8) bool {
	for _, s := range shares {
		if s.X == x {
			return true
		}
	}
	return false
}

// scheduleHold arms the package's hold timer.
func (h *Host) scheduleHold(hp *heldPackage, fire func()) {
	delay := time.Duration(hp.pkt.HoldUntil - h.cfg.Clock.Now().UnixNano())
	hp.timer = h.cfg.Clock.AfterFunc(delay, func() {
		h.mu.Lock()
		hp.due = true
		h.mu.Unlock()
		fire()
	})
}

// advance runs the peel/forward state machine for a mission: peel whatever
// has its key available, and forward whatever is both peeled and due.
func (h *Host) advance(mission MissionID) {
	h.mu.Lock()
	ms, ok := h.missions[mission]
	if !ok {
		h.mu.Unlock()
		return
	}

	type action struct {
		run func()
	}
	var actions []action

	// Iterate custody in sorted order: forwarding emits network events, and
	// deterministic event sequencing is what makes whole-scenario runs
	// reproducible under a fixed seed (Go map order is randomized per run).
	mainCols := make([]int, 0, len(ms.mainSealed))
	for col := range ms.mainSealed {
		mainCols = append(mainCols, col)
	}
	sort.Ints(mainCols)
	slotRefs := make([]slotRef, 0, len(ms.slotSealed))
	for ref := range ms.slotSealed {
		slotRefs = append(slotRefs, ref)
	}
	sort.Slice(slotRefs, func(i, j int) bool {
		if slotRefs[i].column != slotRefs[j].column {
			return slotRefs[i].column < slotRefs[j].column
		}
		return slotRefs[i].slot < slotRefs[j].slot
	})

	// Try peeling main onions with available column keys (granted, or
	// recovered from shares).
	for _, col := range mainCols {
		hp := ms.mainSealed[col]
		if hp.peeled != nil {
			continue
		}
		key, ok := h.columnKeyLocked(ms, col)
		if !ok {
			continue
		}
		layer, err := onion.Peel(key, hp.pkt.Data)
		if err != nil {
			continue
		}
		layerCopy := layer
		hp.peeled = &layerCopy
	}
	// Slot onions likewise with slot keys.
	for _, ref := range slotRefs {
		hp := ms.slotSealed[ref]
		if hp.peeled != nil {
			continue
		}
		key, ok := h.slotKeyLocked(ms, ref)
		if !ok {
			continue
		}
		layer, err := onion.Peel(key, hp.pkt.Data)
		if err != nil {
			continue
		}
		layerCopy := layer
		hp.peeled = &layerCopy
	}

	// Forward anything peeled and due.
	for _, col := range mainCols {
		hp := ms.mainSealed[col]
		if hp.peeled != nil && hp.due && !hp.done {
			hp.done = true
			actions = append(actions, action{h.forwardMainLocked(mission, col, hp)})
		}
	}
	for _, ref := range slotRefs {
		hp := ms.slotSealed[ref]
		if hp.peeled != nil && hp.due && !hp.done {
			hp.done = true
			actions = append(actions, action{h.forwardSlotLocked(mission, ref, hp)})
		}
	}
	h.mu.Unlock()

	for _, a := range actions {
		a.run()
	}
}

// columnKeyLocked returns the column key, recovering it from shares when
// enough have arrived. Interpolating through all collected shares yields
// the true key once the (unknown to the holder) threshold is met — the
// authenticated onion layer is the success oracle.
func (h *Host) columnKeyLocked(ms *missionState, col int) (seal.Key, bool) {
	if key, ok := ms.colKeys[col]; ok {
		return key, true
	}
	shares := ms.colShares[col]
	if len(shares) == 0 {
		return seal.Key{}, false
	}
	raw, err := shamir.Combine(shares, len(shares))
	if err != nil {
		return seal.Key{}, false
	}
	key, err := seal.KeyFromBytes(raw)
	if err != nil {
		return seal.Key{}, false
	}
	return key, true
}

func (h *Host) slotKeyLocked(ms *missionState, ref slotRef) (seal.Key, bool) {
	if key, ok := ms.slotKeys[ref]; ok {
		return key, true
	}
	shares := ms.slotShares[ref]
	if len(shares) == 0 {
		return seal.Key{}, false
	}
	raw, err := shamir.Combine(shares, len(shares))
	if err != nil {
		return seal.Key{}, false
	}
	key, err := seal.KeyFromBytes(raw)
	if err != nil {
		return seal.Key{}, false
	}
	return key, true
}

// forwardMainLocked builds the forwarding action for a peeled, due main
// onion (or the final secret delivery). Callers hold h.mu.
func (h *Host) forwardMainLocked(mission MissionID, col int, hp *heldPackage) func() {
	layer := hp.peeled
	pkt := hp.pkt
	node := h.node
	return func() {
		if layer.Payload != nil {
			// Terminal layer: release the secret to the receiver.
			if len(layer.NextHops) > 0 {
				target, err := dht.IDFromBytes(layer.NextHops[0])
				if err != nil {
					return
				}
				node.SendToOwner(target, Packet{
					Mission: mission,
					Kind:    PkSecret,
					Data:    layer.Payload,
				}.Encode(), nil)
			}
			return
		}
		for s, hop := range layer.NextHops {
			target, err := dht.IDFromBytes(hop)
			if err != nil {
				continue
			}
			node.SendToOwners(target, Packet{
				Mission:   mission,
				Kind:      PkMainOnion,
				Column:    uint16(col + 1),
				Slot:      uint16(s),
				HoldUntil: pkt.HoldUntil + pkt.Step,
				Step:      pkt.Step,
				Target:    pkt.Target,
				Data:      layer.Rest,
			}.Encode(), h.replicas(), nil)
		}
	}
}

// forwardSlotLocked builds the scatter action for a peeled, due slot
// onion: deliver the column share to every next carrier, each slot share
// to its slot, and the remaining slot onion down its own stream. Callers
// hold h.mu.
func (h *Host) forwardSlotLocked(mission MissionID, ref slotRef, hp *heldPackage) func() {
	layer := hp.peeled
	pkt := hp.pkt
	node := h.node
	return func() {
		nextCol := ref.column + 1
		hops := make([]dht.ID, 0, len(layer.NextHops))
		for _, hop := range layer.NextHops {
			id, err := dht.IDFromBytes(hop)
			if err != nil {
				return
			}
			hops = append(hops, id)
		}
		for _, blob := range layer.Shares {
			if len(blob) < 2 {
				continue
			}
			switch blob[0] {
			case shareTagColumn:
				for s, hop := range hops {
					node.SendToOwners(hop, Packet{
						Mission:   mission,
						Kind:      PkColShare,
						Column:    uint16(nextCol),
						Slot:      uint16(s),
						HoldUntil: pkt.HoldUntil + pkt.Step,
						Step:      pkt.Step,
						Data:      blob[1:],
					}.Encode(), h.replicas(), nil)
				}
			case shareTagSlot:
				if len(blob) < 4 {
					continue
				}
				slot := int(blob[1])<<8 | int(blob[2])
				if slot >= len(hops) {
					continue
				}
				node.SendToOwners(hops[slot], Packet{
					Mission:   mission,
					Kind:      PkSlotShare,
					Column:    uint16(nextCol),
					Slot:      uint16(slot),
					HoldUntil: pkt.HoldUntil + pkt.Step,
					Step:      pkt.Step,
					Data:      blob[3:],
				}.Encode(), h.replicas(), nil)
			}
		}
		if layer.Rest != nil && ref.slot < len(hops) {
			node.SendToOwners(hops[ref.slot], Packet{
				Mission:   mission,
				Kind:      PkSlotOnion,
				Column:    uint16(nextCol),
				Slot:      uint16(ref.slot),
				HoldUntil: pkt.HoldUntil + pkt.Step,
				Step:      pkt.Step,
				Data:      layer.Rest,
			}.Encode(), h.replicas(), nil)
		}
	}
}
