package protocol

import (
	"bytes"
	"sort"
	"sync"
	"time"

	"selfemerge/internal/crypto/onion"
	"selfemerge/internal/crypto/seal"
	"selfemerge/internal/crypto/shamir"
	"selfemerge/internal/dht"
	"selfemerge/internal/sim"
)

// Reporter receives a copy of every packet a compromised holder observes
// (the adversary's collection channel). Implemented by
// adversary.Collector.
type Reporter interface {
	Report(now time.Time, from dht.ID, pkt Packet)
}

// HostConfig configures one node's protocol runtime.
type HostConfig struct {
	// Clock drives hold timers. Required.
	Clock sim.Clock
	// Malicious marks the node as adversary-controlled: every packet it
	// sees is reported to Reporter, and if Drop is set it discards
	// everything instead of forwarding (the drop attack).
	Malicious bool
	// Drop activates the drop attack on malicious nodes.
	Drop bool
	// Reporter collects intelligence from malicious nodes.
	Reporter Reporter
	// OnSecret fires when a PkSecret reaches this node (the receiver role).
	OnSecret func(mission MissionID, secret []byte)
	// Replicas is how many closest nodes receive each forwarded packet
	// (default 2). Scenario runs that cross-validate against the Monte
	// Carlo model use 1 so every holder slot maps to one physical node.
	Replicas int
	// Repair enables protocol-level churn repair: key grants carrying a
	// column width and holding period are periodically re-pushed to the
	// current owners of their column's slots, so replacements of dead
	// holders regain the layer key from a surviving custodian — the repair
	// process of Section II-C that the Monte Carlo model assumes. The key
	// share scheme repairs its just-in-time material the same way: column-1
	// key grants refresh through this path, and scattered Shamir shares are
	// re-granted to same-zone replacement custodians once per holding
	// period (scheduleShareRefresh).
	Repair bool
	// Retry hardens the repair pushes against message loss: every grant or
	// share re-push tick fires a second identical push half a refresh
	// margin later (still inside the period it repairs). The pushes are
	// idempotent — receivers dedup by mission coordinates — so the second
	// copy only matters when the first was eaten by a fault. Wired from the
	// network-level retry knob alongside the DHT RetryPolicy.
	Retry bool
}

// Host is the holder-side protocol engine attached to one DHT node. It
// buffers packages and key material per mission, peels onion layers as the
// needed keys become available, and forwards on the hold schedule.
type Host struct {
	cfg  HostConfig
	node *dht.Node

	mu       sync.Mutex
	missions map[MissionID]*missionState
	// advance's deterministic-iteration sort scratch, reused across calls
	// (guarded by mu).
	colScratch []int
	refScratch []slotRef
}

type slotRef struct {
	column int
	slot   int
}

// missionState is one mission's custody at one holder. Its maps are nil
// until first written (nil map reads are free): a typical holder touches
// only one or two of the eight custody kinds per mission, so eager maps
// were most of the mission path's protocol allocations.
type missionState struct {
	// Column-wide key material (K_c of the multipath schemes, CK_c of the
	// key share scheme).
	colKeys   map[int]seal.Key
	colShares map[int][]shamir.Share
	// Per-slot key material (SK_{c,s}).
	slotKeys   map[slotRef]seal.Key
	slotShares map[slotRef][]shamir.Share
	// Share collections with an armed churn-repair refresh (one per holding
	// period, see scheduleShareRefresh).
	colRepair  map[int]bool
	slotRepair map[slotRef]bool

	// Main onion custody, one per column (joint/share copies are deduped).
	mainSealed map[int]*heldPackage
	// Slot onion custody.
	slotSealed map[slotRef]*heldPackage

	// Central-scheme custody.
	central *heldPackage

	// sealers caches one decrypt handle per confirmed layer key so the
	// AES-GCM key schedule is paid once per (mission, key) rather than once
	// per peel attempt. Only granted or oracle-confirmed keys land here;
	// garbage interpolation candidates never do.
	sealers map[seal.Key]*seal.Sealer
}

// sealerFor returns the mission's cached decrypt handle for key,
// constructing and caching it on first use. Callers hold h.mu.
func (ms *missionState) sealerFor(key seal.Key) *seal.Sealer {
	if s, ok := ms.sealers[key]; ok {
		return s
	}
	s, err := seal.NewSealer(key)
	if err != nil {
		return nil
	}
	ms.cacheSealer(key, s)
	return s
}

func (ms *missionState) cacheSealer(key seal.Key, s *seal.Sealer) {
	if ms.sealers == nil {
		ms.sealers = make(map[seal.Key]*seal.Sealer, 2)
	}
	ms.sealers[key] = s
}

// heldPackage is a package waiting on its keys and/or its hold timer.
type heldPackage struct {
	pkt    Packet
	peeled *onion.Layer
	due    bool
	done   bool
	timer  sim.Timer
	// buf is the pooled custody clone backing pkt.Data; it goes back to
	// custodyBufs once the sealed bytes are dead (see releaseBuf).
	buf *[]byte
	// triedShares memoizes the size of the share collection the last failed
	// recovery attempt ran against, so advance() re-enumerates candidate
	// keys only after new share material arrives.
	triedShares int
}

// custodyBufs pools package-custody clones: a packet's delivery buffer is
// recycled when the handler returns, so taking custody copies the bytes.
// The copy is dead the moment the package peels (the peeled layer owns
// fresh plaintext from the decrypt) or a central hold fires its send, and
// returns to the pool there — a steady mission workload re-uses a small
// set of clone buffers instead of allocating one per custody.
var custodyBufs = sync.Pool{New: func() any { return new([]byte) }}

// cloneCustody copies data into a pooled custody buffer.
func cloneCustody(data []byte) *[]byte {
	buf := custodyBufs.Get().(*[]byte)
	*buf = append((*buf)[:0], data...)
	return buf
}

// releaseBuf returns the custody clone to the pool once the sealed bytes
// are dead: after a successful peel the layer owns fresh plaintext, and a
// fired central hold has already encoded its send. Callers hold the host
// lock (hp is mu-guarded state).
func (hp *heldPackage) releaseBuf() {
	if hp.buf == nil {
		return
	}
	hp.pkt.Data = nil
	custodyBufs.Put(hp.buf)
	hp.buf = nil
}

// NewHost creates a host; call Attach to bind it to its node after the
// node is constructed (the node's OnApp must be h.HandleApp).
func NewHost(cfg HostConfig) *Host {
	return &Host{cfg: cfg, missions: make(map[MissionID]*missionState)}
}

// Attach binds the host to its DHT node.
func (h *Host) Attach(node *dht.Node) { h.node = node }

// HandleApp is the dht.Config.OnApp entry point. The payload follows the
// transport delivery contract — it is valid only for the duration of the
// call (it usually aliases a recycled delivery buffer) — so every path
// below that keeps packet bytes beyond this call clones them first.
func (h *Host) HandleApp(from dht.Contact, payload []byte) {
	pkt, err := DecodePacket(payload)
	if err != nil {
		return
	}
	if h.cfg.Malicious && h.cfg.Reporter != nil {
		h.cfg.Reporter.Report(h.cfg.Clock.Now(), from.ID, pkt)
	}
	if h.cfg.Malicious && h.cfg.Drop && pkt.Kind != PkKeyGrant {
		// Drop attack: swallow every package. Key grants are still accepted
		// (and re-granted during repair) — the attack targets the packages,
		// and refusing routine key maintenance would expose the Sybil.
		return
	}

	switch pkt.Kind {
	case PkSecret:
		if h.cfg.OnSecret != nil {
			h.cfg.OnSecret(pkt.Mission, pkt.Data)
		}
		return
	case PkCentral:
		h.onCentral(pkt)
	case PkKeyGrant:
		h.onKeyGrant(pkt)
	case PkMainOnion:
		h.onOnion(pkt, true)
	case PkSlotOnion:
		h.onOnion(pkt, false)
	case PkColShare:
		h.onColShare(pkt)
	case PkSlotShare:
		h.onSlotShare(pkt)
	}
}

func (h *Host) state(id MissionID) *missionState {
	ms, ok := h.missions[id]
	if !ok {
		ms = &missionState{}
		h.missions[id] = ms
	}
	return ms
}

func (h *Host) onCentral(pkt Packet) {
	h.mu.Lock()
	ms := h.state(pkt.Mission)
	if ms.central != nil {
		h.mu.Unlock()
		return // replica already in custody: no clone for routine duplicates
	}
	buf := cloneCustody(pkt.Data) // custody outlives the delivery buffer
	pkt.Data = *buf
	hp := &heldPackage{pkt: pkt, buf: buf}
	ms.central = hp
	h.mu.Unlock()
	h.scheduleHold(hp, func() {
		sendPacket(h.node, pkt.Target, Packet{
			Mission: pkt.Mission,
			Kind:    PkSecret,
			Data:    pkt.Data,
		}, 1)
		// sendPacket encodes synchronously; the custody bytes are dead.
		h.mu.Lock()
		hp.releaseBuf()
		h.mu.Unlock()
	})
}

func (h *Host) onKeyGrant(pkt Packet) {
	key, err := seal.KeyFromBytes(pkt.Data)
	if err != nil {
		return
	}
	h.mu.Lock()
	ms := h.state(pkt.Mission)
	fresh := false
	if pkt.X == keyGrantSlot {
		ref := slotRef{int(pkt.Column), int(pkt.Slot)}
		if _, dup := ms.slotKeys[ref]; !dup {
			if ms.slotKeys == nil {
				ms.slotKeys = make(map[slotRef]seal.Key, 2)
			}
			ms.slotKeys[ref] = key
			fresh = true
		}
	} else {
		if _, dup := ms.colKeys[int(pkt.Column)]; !dup {
			if ms.colKeys == nil {
				ms.colKeys = make(map[int]seal.Key, 2)
			}
			ms.colKeys[int(pkt.Column)] = key
			fresh = true
		}
	}
	h.mu.Unlock()
	if fresh {
		// The refresh loop re-encodes the grant for the rest of its life, so
		// it gets its own copy of the key bytes (the inbound Data aliases a
		// recycled delivery buffer).
		pkt.Data = key.Bytes()
		h.scheduleGrantRefresh(pkt)
	}
	h.advance(pkt.Mission)
}

// scheduleGrantRefresh arms the custody-refresh loop for a newly received
// key grant: at the end of every holding period, while the key is still
// needed (before the grant's HoldUntil), the custodian re-pushes the grant
// to the current owners of its column's slots. A holder that churned out is
// thereby replaced by a fresh node that receives the layer key from this
// surviving custodian — the once-per-period repair of Section II-C. Dead
// custodians cannot refresh (their lookups fail on a closed node), so a
// column whose every custodian dies within one period loses its key, as the
// Monte Carlo model prescribes.
func (h *Host) scheduleGrantRefresh(pkt Packet) {
	if !h.cfg.Repair || pkt.Step <= 0 || pkt.Width == 0 {
		return
	}
	// Fire slightly before each period boundary (1/16 of a holding period
	// early): a replacement then regains the key before the next onion hop
	// arrives, and the re-grant exposure lands strictly inside the waiting
	// period it repairs — the window Equation (1)'s release-ahead
	// bookkeeping (and the Monte Carlo engine) attributes it to.
	//
	// Multipath grants stop refreshing at the boundary before their
	// column's onion arrives: repairing storage periods only is what the
	// Monte Carlo replacement-draw bookkeeping models. The share scheme's
	// column-1 grants (X != 0) live a single period — custody and carry
	// coincide — so their one refresh fires inside it, just before the
	// forward deadline.
	margin := time.Duration(pkt.Step / 16)
	deadline := pkt.HoldUntil - int64(margin)
	if pkt.X != 0 {
		deadline = pkt.HoldUntil
	}
	push := func() {
		if pkt.X == keyGrantSlot {
			// Slot keys are per-carrier: only this slot can be repaired. The
			// share scheme's direct column-1 SK grants arrive with repair
			// metadata, so a replacement entry carrier regains its slot key
			// from the surviving custodian within the first holding period.
			sendPacket(h.node, SlotID(pkt.Mission, int(pkt.Column), int(pkt.Slot)),
				pkt, h.replicas())
		} else {
			for s := 0; s < int(pkt.Width); s++ {
				p := pkt
				p.Slot = uint16(s)
				sendPacket(h.node, SlotID(pkt.Mission, int(pkt.Column), s),
					p, h.replicas())
			}
		}
	}
	var tick func()
	tick = func() {
		if h.cfg.Clock.Now().UnixNano() >= deadline {
			return
		}
		push()
		if h.cfg.Retry {
			// Retry-hardened repair: one identical backup push half a margin
			// later — still half a margin before the boundary, so the
			// exposure stays inside the period — covering a first push eaten
			// whole by a burst or partition window.
			sim.Schedule(h.cfg.Clock, margin/2, push)
		}
		sim.Schedule(h.cfg.Clock, time.Duration(pkt.Step), tick)
	}
	sim.Schedule(h.cfg.Clock, time.Duration(pkt.Step)-margin, tick)
}

// replicas returns the forwarding replica count.
func (h *Host) replicas() int {
	if h.cfg.Replicas > 0 {
		return h.cfg.Replicas
	}
	return holderReplicas
}

func (h *Host) onOnion(pkt Packet, main bool) {
	h.mu.Lock()
	ms := h.state(pkt.Mission)
	col := int(pkt.Column)
	var hp *heldPackage
	if main {
		if _, dup := ms.mainSealed[col]; dup {
			h.mu.Unlock()
			return // replica already in custody (joint fan-in), no clone paid
		}
		buf := cloneCustody(pkt.Data) // custody outlives the delivery buffer
		pkt.Data = *buf
		hp = &heldPackage{pkt: pkt, buf: buf}
		if ms.mainSealed == nil {
			ms.mainSealed = make(map[int]*heldPackage, 2)
		}
		ms.mainSealed[col] = hp
	} else {
		ref := slotRef{col, int(pkt.Slot)}
		if _, dup := ms.slotSealed[ref]; dup {
			h.mu.Unlock()
			return
		}
		buf := cloneCustody(pkt.Data)
		pkt.Data = *buf
		hp = &heldPackage{pkt: pkt, buf: buf}
		if ms.slotSealed == nil {
			ms.slotSealed = make(map[slotRef]*heldPackage, 2)
		}
		ms.slotSealed[ref] = hp
	}
	h.mu.Unlock()

	h.scheduleHold(hp, func() { h.advance(pkt.Mission) })
	h.advance(pkt.Mission)
}

func (h *Host) onColShare(pkt Packet) {
	x, data, err := parseShareBlob(pkt.Data)
	if err != nil {
		return
	}
	h.mu.Lock()
	ms := h.state(pkt.Mission)
	col := int(pkt.Column)
	merged, fresh := addShare(ms.colShares[col], x, data)
	if fresh {
		if ms.colShares == nil {
			ms.colShares = make(map[int][]shamir.Share, 2)
		}
		ms.colShares[col] = merged
	}
	repair := fresh && h.repairableShare(pkt) && !ms.colRepair[col]
	if repair {
		if ms.colRepair == nil {
			ms.colRepair = make(map[int]bool, 2)
		}
		ms.colRepair[col] = true
	}
	h.mu.Unlock()
	if repair {
		h.scheduleShareRefresh(pkt)
	}
	h.advance(pkt.Mission)
}

func (h *Host) onSlotShare(pkt Packet) {
	x, data, err := parseShareBlob(pkt.Data)
	if err != nil {
		return
	}
	h.mu.Lock()
	ms := h.state(pkt.Mission)
	ref := slotRef{int(pkt.Column), int(pkt.Slot)}
	merged, fresh := addShare(ms.slotShares[ref], x, data)
	if fresh {
		if ms.slotShares == nil {
			ms.slotShares = make(map[slotRef][]shamir.Share, 2)
		}
		ms.slotShares[ref] = merged
	}
	repair := fresh && h.repairableShare(pkt) && !ms.slotRepair[ref]
	if repair {
		if ms.slotRepair == nil {
			ms.slotRepair = make(map[slotRef]bool, 2)
		}
		ms.slotRepair[ref] = true
	}
	h.mu.Unlock()
	if repair {
		h.scheduleShareRefresh(pkt)
	}
	h.advance(pkt.Mission)
}

// addShare merges one received share into the collection. Only exact
// duplicates (same X, same payload) are dropped: a conflicting payload for
// an already-seen X is kept as an additional variant, so a corrupt or stale
// early arrival cannot shadow the honest share — the subset recovery of
// shareKeyCandidates picks whichever variants the onion-layer oracle
// validates. Inserted share data is cloned: the inbound bytes alias a
// recycled delivery buffer (duplicates never pay the copy).
func addShare(shares []shamir.Share, x uint8, data []byte) ([]shamir.Share, bool) {
	for _, s := range shares {
		if s.X == x && bytes.Equal(s.Data, data) {
			return shares, false
		}
	}
	return append(shares, shamir.Share{X: x, Data: append([]byte(nil), data...)}), true
}

// repairableShare reports whether a received share participates in churn
// repair: the host repairs, the packet carries its holding period, and the
// share is still ahead of its forward deadline.
func (h *Host) repairableShare(pkt Packet) bool {
	return h.cfg.Repair && pkt.Step > 0 && pkt.HoldUntil > h.cfg.Clock.Now().UnixNano()
}

// scheduleShareRefresh arms the just-in-time share repair for a column (or
// slot) whose first share just arrived: once per holding period — which for
// shares, living exactly one period between scatter and consumption, means
// once, slightly before the forward deadline — the custodian re-pushes every
// share it holds to the current owners of the column's slots. A same-zone
// replacement that took over a died custodian's slot mid-period thereby
// regains the key material from a surviving sibling (column-key shares
// fan out to every carrier, so any survivor can repair the whole column),
// mirroring the multipath schemes' column-key re-grant of Section II-C. The
// packages themselves (slot onions, the main onion copy) are single-custody
// and die with their holder — repair restores shares, not onions — so the
// delivery model gains no repair term; the margin (1/16 of a holding period)
// keeps the re-grant exposure strictly inside the period it repairs.
func (h *Host) scheduleShareRefresh(pkt Packet) {
	margin := time.Duration(pkt.Step / 16)
	delay := time.Duration(pkt.HoldUntil-h.cfg.Clock.Now().UnixNano()) - margin
	if delay <= 0 {
		return // received during the repair window itself (a re-grant)
	}
	// The repair tick re-encodes from the held share collection, never from
	// the triggering packet's payload — drop the reference so the captured
	// packet does not pin the recycled delivery buffer.
	pkt.Data = nil
	sim.Schedule(h.cfg.Clock, delay, func() { h.regrantShares(pkt) })
	if h.cfg.Retry {
		// Retry-hardened repair: a second regrant half a margin later (still
		// before the forward deadline). regrantShares re-reads the held share
		// collection each time, so the backup tick is idempotent — it only
		// changes anything when the first tick's pushes were lost.
		sim.Schedule(h.cfg.Clock, delay+margin/2, func() { h.regrantShares(pkt) })
	}
}

// regrantShares is one share-repair tick: re-push the currently-held shares
// of the packet's column (PkColShare, to every slot the scatter covered) or
// slot (PkSlotShare, to its own slot) to the slots' current owners.
func (h *Host) regrantShares(pkt Packet) {
	h.mu.Lock()
	ms, ok := h.missions[pkt.Mission]
	if !ok {
		h.mu.Unlock()
		return
	}
	col := int(pkt.Column)
	var shares []shamir.Share
	slots := []int{int(pkt.Slot)}
	if pkt.Kind == PkColShare {
		shares = append(shares, ms.colShares[col]...)
		if pkt.Width > 1 {
			slots = slots[:0]
			for s := 0; s < int(pkt.Width); s++ {
				slots = append(slots, s)
			}
		}
	} else {
		shares = append(shares, ms.slotShares[slotRef{col, int(pkt.Slot)}]...)
	}
	h.mu.Unlock()

	for _, s := range slots {
		for _, sh := range shares {
			p := pkt
			p.Slot = uint16(s)
			p.Data = shareBlob(sh.X, sh.Data)
			sendPacket(h.node, SlotID(pkt.Mission, col, s), p, h.replicas())
		}
	}
}

// ShareInventory reports how many distinct column-key and slot-key share
// coordinates the host currently holds for one mission column/slot —
// conflicting variants of one coordinate count once. Exposed for tests and
// churn-repair observability.
func (h *Host) ShareInventory(mission MissionID, column, slot int) (colShares, slotShares int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	ms, ok := h.missions[mission]
	if !ok {
		return 0, 0
	}
	distinct := func(shares []shamir.Share) int {
		seen := make(map[uint8]bool, len(shares))
		for _, s := range shares {
			seen[s.X] = true
		}
		return len(seen)
	}
	return distinct(ms.colShares[column]), distinct(ms.slotShares[slotRef{column, slot}])
}

// scheduleHold arms the package's hold timer.
func (h *Host) scheduleHold(hp *heldPackage, fire func()) {
	delay := time.Duration(hp.pkt.HoldUntil - h.cfg.Clock.Now().UnixNano())
	hp.timer = h.cfg.Clock.AfterFunc(delay, func() {
		h.mu.Lock()
		hp.due = true
		h.mu.Unlock()
		fire()
	})
}

// advance runs the peel/forward state machine for a mission: peel whatever
// has its key available, and forward whatever is both peeled and due.
func (h *Host) advance(mission MissionID) {
	h.mu.Lock()
	ms, ok := h.missions[mission]
	if !ok {
		h.mu.Unlock()
		return
	}

	var actions []func()

	// Iterate custody in sorted order: forwarding emits network events, and
	// deterministic event sequencing is what makes whole-scenario runs
	// reproducible under a fixed seed (Go map order is randomized per run).
	// The sort scratch lives on the Host (mu-guarded): advance runs on every
	// packet arrival and must not allocate in the steady state.
	mainCols := h.colScratch[:0]
	for col := range ms.mainSealed {
		mainCols = append(mainCols, col)
	}
	sort.Ints(mainCols)
	h.colScratch = mainCols
	slotRefs := h.refScratch[:0]
	for ref := range ms.slotSealed {
		slotRefs = append(slotRefs, ref)
	}
	sort.Slice(slotRefs, func(i, j int) bool {
		if slotRefs[i].column != slotRefs[j].column {
			return slotRefs[i].column < slotRefs[j].column
		}
		return slotRefs[i].slot < slotRefs[j].slot
	})
	h.refScratch = slotRefs

	// Try peeling main onions with available column keys: granted directly,
	// or recovered from shares and validated against the onion itself.
	for _, col := range mainCols {
		key, direct := ms.colKeys[col]
		if k, recovered := ms.peelLocked(ms.mainSealed[col], key, direct, ms.colShares[col]); recovered {
			if ms.colKeys == nil {
				ms.colKeys = make(map[int]seal.Key, 2)
			}
			ms.colKeys[col] = k
		}
	}
	// Slot onions likewise with slot keys.
	for _, ref := range slotRefs {
		key, direct := ms.slotKeys[ref]
		if k, recovered := ms.peelLocked(ms.slotSealed[ref], key, direct, ms.slotShares[ref]); recovered {
			if ms.slotKeys == nil {
				ms.slotKeys = make(map[slotRef]seal.Key, 2)
			}
			ms.slotKeys[ref] = k
		}
	}

	// Forward anything peeled and due.
	for _, col := range mainCols {
		hp := ms.mainSealed[col]
		if hp.peeled != nil && hp.due && !hp.done {
			hp.done = true
			actions = append(actions, h.forwardMainLocked(mission, col, hp))
		}
	}
	for _, ref := range slotRefs {
		hp := ms.slotSealed[ref]
		if hp.peeled != nil && hp.due && !hp.done {
			hp.done = true
			actions = append(actions, h.forwardSlotLocked(mission, ref, hp))
		}
	}
	h.mu.Unlock()

	for _, a := range actions {
		a()
	}
}

// peelLocked attempts to open the held package with the directly-granted
// key or, failing that, with candidate keys recovered from subsets of the
// collected shares — the authenticated onion layer is the success oracle
// that tells a true threshold interpolation from garbage, so stale,
// churn-duplicated or adversary-injected shares can delay recovery but
// never poison it. A key the oracle confirms is returned (recovered=true)
// for the caller to cache, so later peels (and re-grants) skip the search.
// Peels run through the mission's sealer cache: a granted key's cipher
// state is built once, and a confirmed candidate's sealer is kept so the
// re-grant path never rebuilds it. Callers hold h.mu.
func (ms *missionState) peelLocked(hp *heldPackage, key seal.Key, direct bool, shares []shamir.Share) (recoveredKey seal.Key, recovered bool) {
	if hp == nil || hp.peeled != nil {
		return seal.Key{}, false
	}
	if direct {
		if s := ms.sealerFor(key); s != nil {
			if layer, err := onion.PeelSealer(s, hp.pkt.Data); err == nil {
				hp.peeled = &layer
				hp.releaseBuf() // the layer owns fresh plaintext; the sealed clone is dead
			}
		}
		return seal.Key{}, false
	}
	if len(shares) == hp.triedShares {
		return seal.Key{}, false // nothing new since the last failed recovery
	}
	hp.triedShares = len(shares)
	for _, cand := range shareKeyCandidates(shares) {
		s, err := seal.NewSealer(cand)
		if err != nil {
			continue
		}
		if layer, err := onion.PeelSealer(s, hp.pkt.Data); err == nil {
			hp.peeled = &layer
			hp.releaseBuf()
			ms.cacheSealer(cand, s)
			return cand, true
		}
	}
	return seal.Key{}, false
}

// maxShareCombines bounds the subset interpolations of one recovery attempt:
// the honest no-conflict path needs a single combine, one poisoned share
// needs a leave-one-out round, and anything past the bound (mass injection)
// degrades to waiting for more honest material rather than burning CPU.
const maxShareCombines = 512

// shareKeyCandidates interpolates candidate keys from subsets of the
// collected shares, larger subsets first: with h consistent honest shares at
// or above the (holder-unknown) threshold, the all-honest subset of size h
// is reached before any smaller — and therefore underdetermined — one.
// Subsets carrying duplicate X coordinates (conflicting variants) are
// rejected by Combine itself and skipped; candidate keys are deduplicated.
// The order is deterministic, which keeps whole-scenario runs reproducible.
func shareKeyCandidates(shares []shamir.Share) []seal.Key {
	n := len(shares)
	if n == 0 {
		return nil
	}
	var (
		out      []seal.Key
		seen     map[seal.Key]bool
		combines int
	)
	try := func(sub []shamir.Share) {
		combines++
		raw, err := shamir.Combine(sub, len(sub))
		if err != nil {
			return
		}
		key, err := seal.KeyFromBytes(raw)
		if err != nil {
			return
		}
		if seen == nil {
			seen = make(map[seal.Key]bool)
		}
		if !seen[key] {
			seen[key] = true
			out = append(out, key)
		}
	}
	if n <= 16 {
		sub := make([]shamir.Share, 0, n)
		var rec func(start, size int)
		rec = func(start, size int) {
			if combines >= maxShareCombines {
				return
			}
			if len(sub) == size {
				try(sub)
				return
			}
			for i := start; i <= n-(size-len(sub)); i++ {
				sub = append(sub, shares[i])
				rec(i+1, size)
				sub = sub[:len(sub)-1]
			}
		}
		for size := n; size >= 1 && combines < maxShareCombines; size-- {
			rec(0, size)
		}
		return out
	}
	// Collections too large to enumerate exhaustively: the full set, then
	// every single and pair exclusion — tolerating up to two poisoned shares
	// without an exponential search.
	try(shares)
	sub := make([]shamir.Share, 0, n-1)
	for i := 0; i < n && combines < maxShareCombines; i++ {
		sub = append(sub[:0], shares[:i]...)
		sub = append(sub, shares[i+1:]...)
		try(sub)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n && combines < maxShareCombines; j++ {
			sub = sub[:0]
			for t, s := range shares {
				if t != i && t != j {
					sub = append(sub, s)
				}
			}
			try(sub)
		}
	}
	return out
}

// forwardMainLocked builds the forwarding action for a peeled, due main
// onion (or the final secret delivery). Callers hold h.mu.
func (h *Host) forwardMainLocked(mission MissionID, col int, hp *heldPackage) func() {
	layer := hp.peeled
	pkt := hp.pkt
	node := h.node
	return func() {
		if layer.Payload != nil {
			// Terminal layer: release the secret to the receiver.
			if len(layer.NextHops) > 0 {
				target, err := dht.IDFromBytes(layer.NextHops[0])
				if err != nil {
					return
				}
				sendPacket(node, target, Packet{
					Mission: mission,
					Kind:    PkSecret,
					Data:    layer.Payload,
				}, 1)
			}
			return
		}
		for s, hop := range layer.NextHops {
			target, err := dht.IDFromBytes(hop)
			if err != nil {
				continue
			}
			sendPacket(node, target, Packet{
				Mission:   mission,
				Kind:      PkMainOnion,
				Column:    uint16(col + 1),
				Slot:      uint16(s),
				HoldUntil: pkt.HoldUntil + pkt.Step,
				Step:      pkt.Step,
				Target:    pkt.Target,
				Data:      layer.Rest,
			}, h.replicas())
		}
	}
}

// forwardSlotLocked builds the scatter action for a peeled, due slot
// onion: deliver the column share to every next carrier, each slot share
// to its slot, and the remaining slot onion down its own stream. Callers
// hold h.mu.
func (h *Host) forwardSlotLocked(mission MissionID, ref slotRef, hp *heldPackage) func() {
	layer := hp.peeled
	pkt := hp.pkt
	node := h.node
	return func() {
		nextCol := ref.column + 1
		hops := make([]dht.ID, 0, len(layer.NextHops))
		for _, hop := range layer.NextHops {
			id, err := dht.IDFromBytes(hop)
			if err != nil {
				return
			}
			hops = append(hops, id)
		}
		for _, blob := range layer.Shares {
			if len(blob) < 2 {
				continue
			}
			switch blob[0] {
			case shareTagColumn:
				// Width rides along so any receiving custodian can repair
				// the whole column's share custody (column-key shares fan
				// out to every carrier).
				for s, hop := range hops {
					sendPacket(node, hop, Packet{
						Mission:   mission,
						Kind:      PkColShare,
						Column:    uint16(nextCol),
						Slot:      uint16(s),
						Width:     uint16(len(hops)),
						HoldUntil: pkt.HoldUntil + pkt.Step,
						Step:      pkt.Step,
						Data:      blob[1:],
					}, h.replicas())
				}
			case shareTagSlot:
				if len(blob) < 4 {
					continue
				}
				slot := int(blob[1])<<8 | int(blob[2])
				if slot >= len(hops) {
					continue
				}
				sendPacket(node, hops[slot], Packet{
					Mission:   mission,
					Kind:      PkSlotShare,
					Column:    uint16(nextCol),
					Slot:      uint16(slot),
					HoldUntil: pkt.HoldUntil + pkt.Step,
					Step:      pkt.Step,
					Data:      blob[3:],
				}, h.replicas())
			}
		}
		if layer.Rest != nil && ref.slot < len(hops) {
			sendPacket(node, hops[ref.slot], Packet{
				Mission:   mission,
				Kind:      PkSlotOnion,
				Column:    uint16(nextCol),
				Slot:      uint16(ref.slot),
				HoldUntil: pkt.HoldUntil + pkt.Step,
				Step:      pkt.Step,
				Data:      layer.Rest,
			}, h.replicas())
		}
	}
}
