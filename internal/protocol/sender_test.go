package protocol_test

import (
	"fmt"
	"testing"

	"selfemerge/internal/dht"
	"selfemerge/internal/protocol"
	"selfemerge/internal/stats"
)

// TestSlotIDMatchesSprintfDerivation pins the manual decimal-append SlotID
// against the historical fmt.Sprintf derivation byte for byte: the slot tag
// is mission || "/column/slot", and every mission's holder placement
// depends on it, so the fast path must be provably identical.
func TestSlotIDMatchesSprintfDerivation(t *testing.T) {
	reference := func(mission protocol.MissionID, column, slot int) dht.ID {
		tag := make([]byte, 0, 16+12)
		tag = append(tag, mission[:]...)
		tag = append(tag, []byte(fmt.Sprintf("/%d/%d", column, slot))...)
		return dht.IDFromKey(tag)
	}
	missions := []protocol.MissionID{
		{},
		{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16},
		{0xFF, 0x2F, '0', '9', '/', 0, 0xAA},
	}
	values := []int{0, 1, 2, 9, 10, 99, 100, 12345, 65535, 1 << 20, -1, -37}
	for _, m := range missions {
		for _, c := range values {
			for _, s := range values {
				got, want := protocol.SlotID(m, c, s), reference(m, c, s)
				if got != want {
					t.Fatalf("SlotID(%x, %d, %d) = %v, reference derivation %v", m[:4], c, s, got, want)
				}
			}
		}
	}
}

// TestSeededSenderDeterministic asserts that two senders over equal seeded
// streams produce identical mission identifiers — the property that makes
// live runs byte-reproducible end to end.
func TestSeededSenderDeterministic(t *testing.T) {
	a := protocol.NewSender(stats.NewByteStream(42))
	b := protocol.NewSender(stats.NewByteStream(42))
	for i := 0; i < 16; i++ {
		ida, err := a.NewMissionID()
		if err != nil {
			t.Fatal(err)
		}
		idb, err := b.NewMissionID()
		if err != nil {
			t.Fatal(err)
		}
		if ida != idb {
			t.Fatalf("draw %d: %x vs %x", i, ida, idb)
		}
	}
	other, err := protocol.NewSender(stats.NewByteStream(43)).NewMissionID()
	if err != nil {
		t.Fatal(err)
	}
	first, err := protocol.NewSender(stats.NewByteStream(42)).NewMissionID()
	if err != nil {
		t.Fatal(err)
	}
	if other == first {
		t.Fatal("distinct seeds produced the same first mission id")
	}
}
