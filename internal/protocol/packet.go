// Package protocol implements the self-emerging key routing protocol of
// Section III on top of the DHT: the sender-side mission construction
// (routing path selection, onion and key-share package generation) and the
// holder-side runtime (hold timers, layer peeling, share recovery,
// forwarding), for all four schemes. Malicious holders feed an adversary
// collector and can mount release-ahead and drop attacks; churn kills
// holders mid-flight. The Monte Carlo engine (internal/mc) regenerates the
// paper's figures; this package is the executable protocol those models
// abstract.
package protocol

import (
	"encoding/binary"
	"errors"
	"fmt"

	"selfemerge/internal/dht"
)

// MissionID identifies one self-emerging message end to end.
type MissionID [16]byte

// PacketKind enumerates protocol messages (carried inside DHT App
// payloads).
type PacketKind uint8

// Packet kinds.
const (
	// PkCentral instructs a single holder to keep Data until HoldUntil and
	// then deliver it to Target (the centralized scheme).
	PkCentral PacketKind = iota + 1
	// PkKeyGrant pre-assigns an onion layer key for a column
	// (disjoint/joint schemes).
	PkKeyGrant
	// PkMainOnion carries the (remaining) main onion to a holder.
	PkMainOnion
	// PkSlotOnion carries a share-path slot onion (key share scheme).
	PkSlotOnion
	// PkColShare carries one Shamir share of a column key CK_c.
	PkColShare
	// PkSlotShare carries one Shamir share of a slot key SK_{c,s}.
	PkSlotShare
	// PkSecret delivers the emerged secret to the receiver.
	PkSecret
)

// String names the kind.
func (k PacketKind) String() string {
	names := [...]string{"?", "CENTRAL", "KEY_GRANT", "MAIN_ONION", "SLOT_ONION",
		"COL_SHARE", "SLOT_SHARE", "SECRET"}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("PacketKind(%d)", uint8(k))
}

// Packet is the single protocol message envelope.
type Packet struct {
	Mission MissionID
	Kind    PacketKind
	Column  uint16 // 1-based holder column
	Slot    uint16 // 0-based slot within the column (path index)
	// Width is the number of holder slots in this packet's column. Carried
	// on PkKeyGrant so that any surviving custodian can re-grant the column
	// key to every slot of its column during churn repair; zero elsewhere.
	Width uint16
	X     uint8 // Shamir share index for *Share kinds
	// HoldUntil is the absolute forward/release time in nanoseconds since
	// the epoch of the mission clock.
	HoldUntil int64
	// Step is the holding period th in nanoseconds, used by holders to
	// compute the next hop's HoldUntil.
	Step   int64
	Target dht.ID // receiver identifier (central/secret packets)
	Data   []byte
}

// ErrPacket is returned for malformed protocol payloads.
var ErrPacket = errors.New("protocol: malformed packet")

// Encode renders the wire form into a fresh buffer.
func (p Packet) Encode() []byte {
	return p.AppendEncode(make([]byte, 0, 64+len(p.Data)))
}

// AppendEncode appends the wire form to buf and returns the extended slice —
// the allocation-free form for send paths that recycle packet buffers. The
// encoding is byte-identical to Encode.
func (p Packet) AppendEncode(buf []byte) []byte {
	buf = append(buf, p.Mission[:]...)
	buf = append(buf, byte(p.Kind))
	buf = binary.BigEndian.AppendUint16(buf, p.Column)
	buf = binary.BigEndian.AppendUint16(buf, p.Slot)
	buf = binary.BigEndian.AppendUint16(buf, p.Width)
	buf = append(buf, p.X)
	buf = binary.BigEndian.AppendUint64(buf, uint64(p.HoldUntil))
	buf = binary.BigEndian.AppendUint64(buf, uint64(p.Step))
	buf = append(buf, p.Target[:]...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(p.Data)))
	buf = append(buf, p.Data...)
	return buf
}

// DecodePacket parses a protocol payload.
func DecodePacket(data []byte) (Packet, error) {
	const fixed = 16 + 1 + 2 + 2 + 2 + 1 + 8 + 8 + dht.IDBytes + 4
	if len(data) < fixed {
		return Packet{}, ErrPacket
	}
	var p Packet
	off := 0
	copy(p.Mission[:], data[off:off+16])
	off += 16
	p.Kind = PacketKind(data[off])
	off++
	if p.Kind < PkCentral || p.Kind > PkSecret {
		return Packet{}, ErrPacket
	}
	p.Column = binary.BigEndian.Uint16(data[off:])
	off += 2
	p.Slot = binary.BigEndian.Uint16(data[off:])
	off += 2
	p.Width = binary.BigEndian.Uint16(data[off:])
	off += 2
	p.X = data[off]
	off++
	p.HoldUntil = int64(binary.BigEndian.Uint64(data[off:]))
	off += 8
	p.Step = int64(binary.BigEndian.Uint64(data[off:]))
	off += 8
	copy(p.Target[:], data[off:off+dht.IDBytes])
	off += dht.IDBytes
	n := binary.BigEndian.Uint32(data[off:])
	off += 4
	if int(n) != len(data)-off {
		return Packet{}, ErrPacket
	}
	p.Data = data[off:]
	return p, nil
}

// shareBlob encodes a Shamir share (X coordinate plus data) for embedding
// in onion layers and packets.
func shareBlob(x uint8, data []byte) []byte {
	return appendShareBlob(make([]byte, 0, 1+len(data)), x, data)
}

// appendShareBlob appends the share blob encoding to dst.
func appendShareBlob(dst []byte, x uint8, data []byte) []byte {
	dst = append(dst, x)
	return append(dst, data...)
}

// parseShareBlob splits a share blob.
func parseShareBlob(blob []byte) (x uint8, data []byte, err error) {
	if len(blob) < 2 {
		return 0, nil, ErrPacket
	}
	return blob[0], blob[1:], nil
}

// ParseShare decodes the payload of a PkColShare/PkSlotShare packet into
// its Shamir coordinates. Exported for the adversary's collector.
func ParseShare(blob []byte) (x uint8, data []byte, err error) {
	return parseShareBlob(blob)
}

// EncodeShareBlob renders a Shamir share coordinate as the payload of a
// PkColShare/PkSlotShare packet — the inverse of ParseShare. Exported for
// the packet fuzz targets.
func EncodeShareBlob(x uint8, data []byte) []byte {
	return shareBlob(x, data)
}

// AppendEncodeShareBlob is EncodeShareBlob appending to dst, for senders
// that recycle blob buffers. The encoding is byte-identical.
func AppendEncodeShareBlob(dst []byte, x uint8, data []byte) []byte {
	return appendShareBlob(dst, x, data)
}

// ShareKind discriminates the tagged share blobs embedded in slot-onion
// layers.
type ShareKind uint8

// Share kinds inside onion layers.
const (
	ShareKindColumn ShareKind = iota + 1
	ShareKindSlot
)

// ParseShareTag decodes a tagged share blob from a slot-onion layer:
// column-key shares carry (kind=column, x, data); slot-key shares
// additionally carry the destination slot.
func ParseShareTag(blob []byte) (kind ShareKind, slot int, x uint8, data []byte, err error) {
	if len(blob) < 2 {
		return 0, 0, 0, nil, ErrPacket
	}
	switch blob[0] {
	case shareTagColumn:
		x, data, err = parseShareBlob(blob[1:])
		return ShareKindColumn, 0, x, data, err
	case shareTagSlot:
		if len(blob) < 5 {
			return 0, 0, 0, nil, ErrPacket
		}
		slot = int(blob[1])<<8 | int(blob[2])
		x, data, err = parseShareBlob(blob[3:])
		return ShareKindSlot, slot, x, data, err
	default:
		return 0, 0, 0, nil, ErrPacket
	}
}

// KeyGrantSlotMarker is the X-field discriminator marking a PkKeyGrant as
// carrying a slot key (the key share scheme's direct column-1 deliveries).
const KeyGrantSlotMarker = keyGrantSlot
