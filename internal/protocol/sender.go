package protocol

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"

	"selfemerge/internal/core"
	"selfemerge/internal/crypto/onion"
	"selfemerge/internal/crypto/seal"
	"selfemerge/internal/crypto/shamir"
	"selfemerge/internal/dht"
)

// Mission describes one self-emerging message: what to hide, for whom, and
// the timing window.
type Mission struct {
	ID       MissionID
	Plan     core.Plan
	Secret   []byte // the secret key protected by the scheme
	Receiver dht.ID // identifier the receiver listens on
	Start    time.Time
	Release  time.Time
	// Replicas is how many closest nodes receive each dispatched packet
	// (default holderReplicas). Scenario runs that cross-validate against
	// the Monte Carlo model use 1 so each holder slot maps to exactly one
	// physical node, as the model assumes.
	Replicas int
}

// replicas returns the mission's packet replica count.
func (m Mission) replicas() int {
	if m.Replicas > 0 {
		return m.Replicas
	}
	return holderReplicas
}

// Sender performs the sender-side mission construction of Section III:
// routing path selection, onion and key-share package generation, and
// injection into the DHT. It owns the randomness source every cryptographic
// draw of a dispatch flows through — mission identifiers, layer keys, GCM
// nonces, Shamir polynomial coefficients — so a Sender built over a seeded
// stream (stats.ByteStream) makes entire missions byte-reproducible, while
// the default crypto/rand source serves real deployments. A Sender with a
// deterministic source is not safe for concurrent use; the crypto/rand
// default is.
type Sender struct {
	rand io.Reader
}

// NewSender returns a sender drawing all cryptographic randomness from r
// (nil means crypto/rand).
func NewSender(r io.Reader) *Sender {
	if r == nil {
		r = rand.Reader //lint:allow detrand real deployments key from the OS CSPRNG; deterministic runs inject a seeded reader
	}
	return &Sender{rand: r}
}

// defaultSender is the crypto/rand-backed sender behind the package-level
// Dispatch and NewMissionID.
var defaultSender = NewSender(nil)

// NewMissionID draws a random mission identifier from crypto/rand.
func NewMissionID() (MissionID, error) {
	return defaultSender.NewMissionID()
}

// NewMissionID draws a mission identifier from the sender's randomness
// source.
func (s *Sender) NewMissionID() (MissionID, error) {
	var id MissionID
	if _, err := io.ReadFull(s.rand, id[:]); err != nil {
		return MissionID{}, fmt.Errorf("protocol: mission id: %w", err)
	}
	return id, nil
}

// SlotID derives the DHT identifier of holder slot (column, slot) of a
// mission: the pseudo-random, deterministic holder selection of Section
// III ("pseudo-randomly selects nodes in the DHT to form the routing
// paths"). The tag is mission || "/column/slot" in decimal, assembled on
// the stack (this runs once per packet routed, so no fmt formatting).
func SlotID(mission MissionID, column, slot int) dht.ID {
	var tag [len(mission) + 2 + 2*20]byte
	b := append(tag[:0], mission[:]...)
	b = append(b, '/')
	b = strconv.AppendInt(b, int64(column), 10)
	b = append(b, '/')
	b = strconv.AppendInt(b, int64(slot), 10)
	return dht.IDFromKey(b)
}

// Dispatch validates the mission and injects all start-time packages into
// the DHT through node, drawing randomness from crypto/rand. It returns the
// number of packets sent.
func Dispatch(node *dht.Node, m Mission) (int, error) {
	return defaultSender.Dispatch(node, m)
}

// Dispatch validates the mission and injects all start-time packages into
// the DHT through node. It returns the number of packets sent. Packets are
// routed to the current owners of the mission's slot IDs.
func (s *Sender) Dispatch(node *dht.Node, m Mission) (int, error) {
	if err := m.validate(); err != nil {
		return 0, err
	}
	switch m.Plan.Scheme {
	case core.SchemeCentral:
		return s.dispatchCentral(node, m)
	case core.SchemeDisjoint:
		return s.dispatchMultipath(node, m, false)
	case core.SchemeJoint:
		return s.dispatchMultipath(node, m, true)
	case core.SchemeKeyShare:
		return s.dispatchShare(node, m)
	default:
		return 0, fmt.Errorf("protocol: unknown scheme %v", m.Plan.Scheme)
	}
}

func (m Mission) validate() error {
	if err := m.Plan.Validate(); err != nil {
		return err
	}
	if len(m.Secret) == 0 {
		return errors.New("protocol: mission has no secret")
	}
	if m.Receiver.IsZero() {
		return errors.New("protocol: mission has no receiver")
	}
	if !m.Release.After(m.Start) {
		return errors.New("protocol: release time must follow start time")
	}
	return nil
}

// emergingPeriod returns T and the holding period th = T/l.
func (m Mission) timing() (hold time.Duration, releaseAt int64) {
	total := m.Release.Sub(m.Start)
	return m.Plan.HoldPeriod(total), m.Release.UnixNano()
}

// holderReplicas is how many closest nodes receive each protocol packet.
// Lookups from different vantage points (the sender at ts, the previous
// holder at each hop) can resolve a slot ID to different nodes while
// routing tables converge; delivering to the top two and deduplicating at
// the receiver makes the rendezvous reliable.
const holderReplicas = 2

// pktBufs pools encoded-packet buffers. A buffer handed to SendToOwners
// stays referenced until the underlying lookup completes (the owners are
// resolved asynchronously), so it is released from the done callback rather
// than on return.
var pktBufs = sync.Pool{New: func() any { return new([]byte) }}

// sendPacket encodes p into a pooled buffer and routes it to the current
// owners of slot, reclaiming the buffer once the lookup-and-send completes.
// The arg-threaded completion keeps the steady send path closure-free.
func sendPacket(node *dht.Node, slot dht.ID, p Packet, replicas int) {
	buf := pktBufs.Get().(*[]byte)
	data := p.AppendEncode((*buf)[:0])
	*buf = data
	node.SendToOwnersArg(slot, data, replicas, sendPacketDone, buf)
}

func sendPacketDone(v any, _ dht.Contact, _ error) {
	pktBufs.Put(v.(*[]byte))
}

// send routes one packet to the owners of the given slot identifier.
func send(node *dht.Node, slot dht.ID, m Mission, p Packet) {
	sendPacket(node, slot, p, m.replicas())
}

func (s *Sender) dispatchCentral(node *dht.Node, m Mission) (int, error) {
	_, releaseAt := m.timing()
	send(node, SlotID(m.ID, 1, 0), m, Packet{
		Mission:   m.ID,
		Kind:      PkCentral,
		Column:    1,
		HoldUntil: releaseAt,
		Target:    m.Receiver,
		Data:      m.Secret,
	})
	return 1, nil
}

// dispatchMultipath implements the node-disjoint (joint=false) and
// node-joint (joint=true) schemes: k onion replicas over l columns with
// layer keys pre-assigned at start time.
func (s *Sender) dispatchMultipath(node *dht.Node, m Mission, joint bool) (int, error) {
	k, l := m.Plan.K, m.Plan.L
	hold, releaseAt := m.timing()

	// One layer key per column, replicated across the column's k holders.
	// The sealers cache each key's AES-GCM state, so the disjoint scheme's
	// k onion replicas pay every key schedule once, not once per onion.
	keys := make([]seal.Key, l)
	sealers := make([]*seal.Sealer, l)
	for c := range keys {
		key, err := seal.NewKeyFrom(s.rand)
		if err != nil {
			return 0, err
		}
		keys[c] = key
		if sealers[c], err = seal.NewSealerRand(key, s.rand); err != nil {
			return 0, err
		}
	}

	sent := 0
	// Pre-assign layer keys to every holder slot at start time. Each grant
	// carries the column width, its holding period and the instant the
	// column forwards its onion, so that surviving custodians can re-grant
	// the key to churn replacements once per holding period until the key
	// is no longer needed (protocol churn repair, Section II-C).
	for c := 1; c <= l; c++ {
		for sl := 0; sl < k; sl++ {
			send(node, SlotID(m.ID, c, sl), m, Packet{
				Mission:   m.ID,
				Kind:      PkKeyGrant,
				Column:    uint16(c),
				Slot:      uint16(sl),
				Width:     uint16(k),
				HoldUntil: m.Start.Add(time.Duration(c) * hold).UnixNano(),
				Step:      int64(hold),
				Data:      keys[c-1][:],
			})
			sent++
		}
	}

	// Build and send the onions.
	buildLayers := func(path int) []onion.Layer {
		layers := make([]onion.Layer, l)
		for c := 1; c <= l; c++ {
			var hops [][]byte
			if c < l {
				if joint {
					for sl := 0; sl < k; sl++ {
						id := SlotID(m.ID, c+1, sl)
						hops = append(hops, id[:])
					}
				} else {
					id := SlotID(m.ID, c+1, path)
					hops = append(hops, id[:])
				}
			} else {
				hops = append(hops, m.Receiver[:])
			}
			layers[c-1] = onion.Layer{NextHops: hops}
		}
		layers[l-1].Payload = m.Secret
		return layers
	}

	firstHold := m.Start.Add(hold).UnixNano()
	if joint {
		wrapped, err := onion.BuildSealers(buildLayers(0), sealers)
		if err != nil {
			return sent, err
		}
		for sl := 0; sl < k; sl++ {
			send(node, SlotID(m.ID, 1, sl), m, Packet{
				Mission:   m.ID,
				Kind:      PkMainOnion,
				Column:    1,
				Slot:      uint16(sl),
				HoldUntil: firstHold,
				Step:      int64(hold),
				Target:    m.Receiver,
				Data:      wrapped,
			})
			sent++
		}
	} else {
		for path := 0; path < k; path++ {
			wrapped, err := onion.BuildSealers(buildLayers(path), sealers)
			if err != nil {
				return sent, err
			}
			send(node, SlotID(m.ID, 1, path), m, Packet{
				Mission:   m.ID,
				Kind:      PkMainOnion,
				Column:    1,
				Slot:      uint16(path),
				HoldUntil: firstHold,
				Step:      int64(hold),
				Target:    m.Receiver,
				Data:      wrapped,
			})
			sent++
		}
	}
	_ = releaseAt
	return sent, nil
}

// dispatchShare implements the key share routing scheme. Column keys CK_c
// seal the main onion's layers; slot keys SK_{c,s} seal each carrier
// chain's slot onions. Neither is pre-assigned: for c >= 2 both are Shamir
// split (m, n) and the shares ride inside the column c-1 slot onions,
// arriving exactly one hop ahead of the packages they unlock (Section
// III-D).
func (s *Sender) dispatchShare(node *dht.Node, m Mission) (int, error) {
	k, l, n := m.Plan.K, m.Plan.L, m.Plan.ShareN
	hold, _ := m.timing()

	columnKeys := make([]seal.Key, l+1) // 1-based
	slotKeys := make([][]seal.Key, l)   // [column][slot], columns 1..l-1 used
	for c := 1; c <= l; c++ {
		key, err := seal.NewKeyFrom(s.rand)
		if err != nil {
			return 0, err
		}
		columnKeys[c] = key
	}
	for c := 1; c < l; c++ {
		slotKeys[c] = make([]seal.Key, n)
		for sl := 0; sl < n; sl++ {
			key, err := seal.NewKeyFrom(s.rand)
			if err != nil {
				return 0, err
			}
			slotKeys[c][sl] = key
		}
	}

	// Shamir-split the column c+1 keys; share index s goes to carrier
	// (c, s). thresholds[c-1] protects column c+1. Each split draws its
	// whole polynomial set in one batched read from the sender's source.
	colShares := make([][]shamir.Share, l+1)  // colShares[c][s] = share of CK_c
	slotShares := make([][][]shamir.Share, l) // slotShares[c][t][s] = share of SK_{c,t}
	for c := 2; c <= l; c++ {
		threshold := m.Plan.ShareM[c-2]
		shares, err := shamir.SplitRand(s.rand, columnKeys[c][:], threshold, n)
		if err != nil {
			return 0, fmt.Errorf("protocol: splitting CK_%d: %w", c, err)
		}
		colShares[c] = shares
		if c < l {
			slotShares[c] = make([][]shamir.Share, n)
			for t := 0; t < n; t++ {
				ss, err := shamir.SplitRand(s.rand, slotKeys[c][t][:], threshold, n)
				if err != nil {
					return 0, fmt.Errorf("protocol: splitting SK_%d_%d: %w", c, t, err)
				}
				slotShares[c][t] = ss
			}
		}
	}

	// Slot onions: chain for carrier stream s over columns 1..l-1. Layer c
	// (sealed under SK_{c,s}) reveals the shares carrier (c, s) must
	// scatter: its share of CK_{c+1} and, when c+1 < l, its share of every
	// SK_{c+1,t}.
	sent := 0
	for sl := 0; sl < n; sl++ {
		var layers []onion.Layer
		var sealers []*seal.Sealer
		for c := 1; c < l; c++ {
			var shares [][]byte
			colShare := colShares[c+1][sl]
			shares = append(shares, append([]byte{shareTagColumn}, shareBlob(colShare.X, colShare.Data)...))
			if c+1 < l {
				for t := 0; t < n; t++ {
					slotShare := slotShares[c+1][t][sl]
					blob := make([]byte, 0, 4+len(slotShare.Data))
					blob = append(blob, shareTagSlot, byte(t>>8), byte(t))
					blob = appendShareBlob(blob, slotShare.X, slotShare.Data)
					shares = append(shares, blob)
				}
			}
			var hops [][]byte
			nextCount := n
			if c+1 == l {
				nextCount = n // terminal column also holds n carriers
			}
			for t := 0; t < nextCount; t++ {
				id := SlotID(m.ID, c+1, t)
				hops = append(hops, id[:])
			}
			layers = append(layers, onion.Layer{NextHops: hops, Shares: shares})
			slr, err := seal.NewSealerRand(slotKeys[c][sl], s.rand)
			if err != nil {
				return sent, err
			}
			sealers = append(sealers, slr)
		}
		if len(layers) == 0 {
			continue
		}
		wrapped, err := onion.BuildSealers(layers, sealers)
		if err != nil {
			return sent, err
		}
		firstHold := m.Start.Add(hold).UnixNano()
		send(node, SlotID(m.ID, 1, sl), m, Packet{
			Mission:   m.ID,
			Kind:      PkSlotOnion,
			Column:    1,
			Slot:      uint16(sl),
			HoldUntil: firstHold,
			Step:      int64(hold),
			Data:      wrapped,
		})
		sent++
		// Column 1 keys are delivered directly at start time, with repair
		// metadata so replacement entry carriers regain them within the
		// first holding period (layer keys for columns >= 2 exist only as
		// Shamir shares, which repair through the share re-grant path of
		// scheduleShareRefresh instead).
		send(node, SlotID(m.ID, 1, sl), m, Packet{
			Mission:   m.ID,
			Kind:      PkKeyGrant,
			Column:    1,
			Slot:      uint16(sl),
			Width:     1,
			X:         keyGrantSlot,
			HoldUntil: m.Start.Add(hold).UnixNano(),
			Step:      int64(hold),
			Data:      slotKeys[1][sl][:],
		})
		sent++
	}

	// Main onion: layers 1..l under the column keys; the k main holders of
	// column 1 receive it (and CK_1) directly.
	mainLayers := make([]onion.Layer, l)
	mainSealers := make([]*seal.Sealer, l)
	for c := 1; c <= l; c++ {
		var hops [][]byte
		if c < l {
			for t := 0; t < n; t++ {
				id := SlotID(m.ID, c+1, t)
				hops = append(hops, id[:])
			}
		} else {
			hops = append(hops, m.Receiver[:])
		}
		mainLayers[c-1] = onion.Layer{NextHops: hops}
		slr, err := seal.NewSealerRand(columnKeys[c], s.rand)
		if err != nil {
			return sent, err
		}
		mainSealers[c-1] = slr
	}
	mainLayers[l-1].Payload = m.Secret
	wrappedMain, err := onion.BuildSealers(mainLayers, mainSealers)
	if err != nil {
		return sent, err
	}
	firstHold := m.Start.Add(hold).UnixNano()
	for sl := 0; sl < k; sl++ {
		send(node, SlotID(m.ID, 1, sl), m, Packet{
			Mission:   m.ID,
			Kind:      PkMainOnion,
			Column:    1,
			Slot:      uint16(sl),
			HoldUntil: firstHold,
			Step:      int64(hold),
			Target:    m.Receiver,
			Data:      wrappedMain,
		})
		sent++
		send(node, SlotID(m.ID, 1, sl), m, Packet{
			Mission:   m.ID,
			Kind:      PkKeyGrant,
			Column:    1,
			Slot:      uint16(sl),
			Width:     uint16(k),
			X:         keyGrantColumn,
			HoldUntil: firstHold,
			Step:      int64(hold),
			Data:      columnKeys[1][:],
		})
		sent++
	}
	return sent, nil
}

// Share blob tags inside slot-onion layers.
const (
	shareTagColumn = 0xC0
	shareTagSlot   = 0x51
)

// KeyGrant X-field discriminators for the share scheme's direct column-1
// key deliveries.
const (
	keyGrantColumn = 0x01 // data is CK_1
	keyGrantSlot   = 0x02 // data is SK_{1,slot}
)
