package protocol_test

import (
	"fmt"
	"testing"
	"time"

	"selfemerge/internal/core"
	"selfemerge/internal/dht"
	"selfemerge/internal/transport"
)

// TestShareRepairRegrantsToReplacement is the churn-repair contract of the
// key share scheme: a share custodian that dies mid-holding-period is
// replaced by a same-zone join, and before the column's forward deadline
// (HoldUntil) a surviving sibling custodian re-grants the column-key shares
// it holds — the just-in-time share repair mirroring the multipath schemes'
// column-key re-grant.
func TestShareRepairRegrantsToReplacement(t *testing.T) {
	repair := func(cfg *HostConfig) { cfg.Repair = true }
	tb := newTestbed(t, 60, 0, false, repair)
	plan := core.Plan{Scheme: core.SchemeKeyShare, K: 2, L: 3, ShareN: 5, ShareM: []int{2, 2}}
	m := tb.launch(plan, 3*time.Hour) // holding period th = 1h

	// Column-2 material scatters at ts+1h; let it land.
	tb.sim.RunUntil(m.Start.Add(time.Hour + time.Minute))

	// Pick a column-2 custodian that is not infrastructure (bootstrap,
	// receiver, dispatcher) and really holds the scattered shares.
	victimIdx, victimSlot := -1, -1
	for s := 0; s < plan.ShareN && victimIdx < 0; s++ {
		owner := tb.ownerOf(SlotID(m.ID, 2, s))
		for i, node := range tb.nodes {
			if node == owner && i > 2 {
				if col, _ := tb.hosts[i].ShareInventory(m.ID, 2, s); col >= plan.ShareM[0] {
					victimIdx, victimSlot = i, s
				}
				break
			}
		}
	}
	if victimIdx < 0 {
		t.Skip("no killable column-2 custodian (slots landed on infrastructure)")
	}

	// Kill the custodian mid-period and join its same-zone replacement:
	// same identifier and address, wiped state.
	victim := tb.nodes[victimIdx]
	if err := victim.Close(); err != nil {
		t.Fatal(err)
	}
	addr := transport.Addr(fmt.Sprintf("n%d", victimIdx))
	_, replacement := tb.spawn(addr, victim.ID(), false, false, repair)
	tb.nodes[victimIdx] = tb.nodes[len(tb.nodes)-1]
	tb.nodes = tb.nodes[:len(tb.nodes)-1]
	tb.hosts[victimIdx] = tb.hosts[len(tb.hosts)-1]
	tb.hosts = tb.hosts[:len(tb.hosts)-1]
	tb.nodes[victimIdx].Bootstrap([]dht.Contact{tb.nodes[0].Contact()}, nil)

	// Before the repair tick (1/16 of a period ahead of the deadline) the
	// replacement has nothing: its state died with the predecessor.
	tb.sim.RunUntil(m.Start.Add(time.Hour + 50*time.Minute))
	if col, _ := replacement.ShareInventory(m.ID, 2, victimSlot); col != 0 {
		t.Fatalf("replacement held %d shares before the repair window", col)
	}

	// Strictly before HoldUntil (ts+2h) the re-grant must have refilled the
	// replacement's column-share custody to at least the Shamir threshold.
	holdUntil := m.Start.Add(2 * time.Hour)
	tb.sim.RunUntil(holdUntil.Add(-time.Minute))
	col, _ := replacement.ShareInventory(m.ID, 2, victimSlot)
	if col < plan.ShareM[0] {
		t.Fatalf("replacement held %d column shares before HoldUntil, want >= %d (no re-grant)",
			col, plan.ShareM[0])
	}

	// The mission itself still emerges: the other chains were untouched.
	tb.assertEmerges(m)
}

// TestShareRepairDisabledLeavesReplacementEmpty is the control: without
// Repair the replacement join receives nothing, confirming the re-grant
// above came from the repair path rather than stray retransmissions.
func TestShareRepairDisabledLeavesReplacementEmpty(t *testing.T) {
	tb := newTestbed(t, 60, 0, false)
	plan := core.Plan{Scheme: core.SchemeKeyShare, K: 2, L: 3, ShareN: 5, ShareM: []int{2, 2}}
	m := tb.launch(plan, 3*time.Hour)
	tb.sim.RunUntil(m.Start.Add(time.Hour + time.Minute))

	victimIdx, victimSlot := -1, -1
	for s := 0; s < plan.ShareN && victimIdx < 0; s++ {
		owner := tb.ownerOf(SlotID(m.ID, 2, s))
		for i, node := range tb.nodes {
			if node == owner && i > 2 {
				if col, _ := tb.hosts[i].ShareInventory(m.ID, 2, s); col >= plan.ShareM[0] {
					victimIdx, victimSlot = i, s
				}
				break
			}
		}
	}
	if victimIdx < 0 {
		t.Skip("no killable column-2 custodian (slots landed on infrastructure)")
	}
	victim := tb.nodes[victimIdx]
	if err := victim.Close(); err != nil {
		t.Fatal(err)
	}
	_, replacement := tb.spawn(transport.Addr(fmt.Sprintf("n%d", victimIdx)), victim.ID(), false, false)
	tb.nodes[victimIdx] = tb.nodes[len(tb.nodes)-1]
	tb.nodes = tb.nodes[:len(tb.nodes)-1]
	tb.hosts[victimIdx] = tb.hosts[len(tb.hosts)-1]
	tb.hosts = tb.hosts[:len(tb.hosts)-1]
	tb.nodes[victimIdx].Bootstrap([]dht.Contact{tb.nodes[0].Contact()}, nil)

	tb.sim.RunUntil(m.Start.Add(2*time.Hour - time.Minute))
	if col, _ := replacement.ShareInventory(m.ID, 2, victimSlot); col != 0 {
		t.Fatalf("replacement held %d shares with repair disabled", col)
	}
}
