package protocol_test

import (
	"bytes"
	"testing"

	"selfemerge/internal/dht"
	"selfemerge/internal/protocol"
)

// FuzzDecodePacket asserts the wire codec's two invariants on arbitrary
// input: decoding never panics, and anything that decodes re-encodes to a
// canonical form that survives another decode/encode cycle byte-for-byte.
func FuzzDecodePacket(f *testing.F) {
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 80))
	valid := protocol.Packet{
		Mission:   protocol.MissionID{1, 2, 3},
		Kind:      protocol.PkSlotShare,
		Column:    3,
		Slot:      1,
		Width:     5,
		X:         9,
		HoldUntil: 123456789,
		Step:      3600,
		Target:    dht.IDFromKey([]byte("receiver")),
		Data:      []byte("share blob"),
	}
	f.Add(valid.Encode())
	f.Add(protocol.Packet{Kind: protocol.PkSecret, Data: []byte("s")}.Encode())

	f.Fuzz(func(t *testing.T, data []byte) {
		pkt, err := protocol.DecodePacket(data)
		if err != nil {
			return
		}
		enc := pkt.Encode()
		again, err := protocol.DecodePacket(enc)
		if err != nil {
			t.Fatalf("decoded packet failed to re-decode: %v", err)
		}
		if !bytes.Equal(enc, again.Encode()) {
			t.Fatalf("encode/decode not canonical:\n  first  %x\n  second %x", enc, again.Encode())
		}
		if again.Kind != pkt.Kind || again.Mission != pkt.Mission ||
			again.Column != pkt.Column || again.Slot != pkt.Slot ||
			again.Width != pkt.Width || again.X != pkt.X ||
			again.HoldUntil != pkt.HoldUntil || again.Step != pkt.Step ||
			again.Target != pkt.Target || !bytes.Equal(again.Data, pkt.Data) {
			t.Fatalf("round trip mutated fields: %+v vs %+v", pkt, again)
		}
	})
}

// FuzzPacketAppendEncode asserts the append-style packet codec is exactly
// the classic one: for anything that decodes, AppendEncode onto an
// arbitrary prefix leaves the prefix intact and appends bytes identical to
// Encode, and the appended bytes round-trip.
func FuzzPacketAppendEncode(f *testing.F) {
	valid := protocol.Packet{
		Mission: protocol.MissionID{7, 7},
		Kind:    protocol.PkMainOnion,
		Column:  2,
		Data:    []byte("wrapped onion"),
	}
	f.Add(valid.Encode(), []byte{})
	f.Add(valid.Encode(), []byte("prefix"))
	f.Add([]byte{}, []byte{0xAA})
	f.Fuzz(func(t *testing.T, data, prefix []byte) {
		pkt, err := protocol.DecodePacket(data)
		if err != nil {
			return
		}
		classic := pkt.Encode()
		appended := pkt.AppendEncode(append([]byte(nil), prefix...))
		if !bytes.HasPrefix(appended, prefix) {
			t.Fatalf("AppendEncode clobbered its prefix: %x", appended)
		}
		if !bytes.Equal(appended[len(prefix):], classic) {
			t.Fatalf("AppendEncode diverged from Encode:\n  append %x\n  encode %x", appended[len(prefix):], classic)
		}
		if _, err := protocol.DecodePacket(appended[len(prefix):]); err != nil {
			t.Fatalf("appended encoding failed to decode: %v", err)
		}
	})
}

// FuzzParseShareBlob asserts the share-blob codecs never panic on arbitrary
// payloads and that whatever parses is consistent: ParseShare round-trips
// through the blob encoding, and ParseShareTag only accepts the two tag
// kinds with their documented minimum sizes.
func FuzzParseShareBlob(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x01})
	f.Add([]byte{0x05, 0xAA, 0xBB, 0xCC})
	f.Add([]byte{0xC0, 0x05, 0xAA, 0xBB}) // tagged column share
	f.Add([]byte{0x51, 0x00, 0x02, 0x05, 0xAA})
	f.Fuzz(func(t *testing.T, blob []byte) {
		if x, data, err := protocol.ParseShare(blob); err == nil {
			if len(blob) < 2 {
				t.Fatalf("ParseShare accepted %d bytes", len(blob))
			}
			if x != blob[0] || !bytes.Equal(data, blob[1:]) {
				t.Fatalf("ParseShare(%x) = (%d, %x)", blob, x, data)
			}
		}
		kind, slot, x, data, err := protocol.ParseShareTag(blob)
		if err != nil {
			return
		}
		switch kind {
		case protocol.ShareKindColumn:
			if len(blob) < 3 || slot != 0 || x != blob[1] || !bytes.Equal(data, blob[2:]) {
				t.Fatalf("column tag (%x) = (%d, %d, %x)", blob, slot, x, data)
			}
		case protocol.ShareKindSlot:
			if len(blob) < 5 || slot != int(blob[1])<<8|int(blob[2]) ||
				x != blob[3] || !bytes.Equal(data, blob[4:]) {
				t.Fatalf("slot tag (%x) = (%d, %d, %x)", blob, slot, x, data)
			}
		default:
			t.Fatalf("ParseShareTag returned unknown kind %d", kind)
		}
	})
}

// FuzzSharePacketRoundTrip drives arbitrary share coordinates through the
// full PkColShare/PkSlotShare path: share blob encoding, packet encoding,
// decode, and share re-parse must return the original coordinates exactly.
func FuzzSharePacketRoundTrip(f *testing.F) {
	f.Add(uint8(1), []byte("share data"), uint16(2), uint16(0), false)
	f.Add(uint8(255), []byte{0}, uint16(65535), uint16(65535), true)
	f.Add(uint8(0), []byte{}, uint16(0), uint16(9), true)
	f.Fuzz(func(t *testing.T, x uint8, data []byte, column, slot uint16, isSlot bool) {
		kind := protocol.PkColShare
		if isSlot {
			kind = protocol.PkSlotShare
		}
		blob := protocol.EncodeShareBlob(x, data)
		if appended := protocol.AppendEncodeShareBlob([]byte("pfx"), x, data); !bytes.Equal(appended, append([]byte("pfx"), blob...)) {
			t.Fatalf("AppendEncodeShareBlob diverged from EncodeShareBlob: %x vs pfx+%x", appended, blob)
		}
		pkt := protocol.Packet{
			Mission:   protocol.MissionID{0xF0, 0x0D},
			Kind:      kind,
			Column:    column,
			Slot:      slot,
			Width:     column, // exercised alongside the repair metadata
			HoldUntil: 1 << 40,
			Step:      1 << 30,
			Data:      blob,
		}
		decoded, err := protocol.DecodePacket(pkt.Encode())
		if err != nil {
			t.Fatalf("share packet failed to decode: %v", err)
		}
		if decoded.Kind != kind || decoded.Column != column || decoded.Slot != slot {
			t.Fatalf("share packet mutated: %+v", decoded)
		}
		gotX, gotData, err := protocol.ParseShare(decoded.Data)
		if len(data) == 0 {
			// A share needs at least one payload byte; the codec must say so
			// rather than fabricate coordinates.
			if err == nil {
				t.Fatal("empty share blob accepted")
			}
			return
		}
		if err != nil {
			t.Fatalf("share blob failed to re-parse: %v", err)
		}
		if gotX != x || !bytes.Equal(gotData, data) {
			t.Fatalf("share coordinates mutated: (%d, %x) vs (%d, %x)", gotX, gotData, x, data)
		}
	})
}
