package protocol_test

import (
	"bytes"
	"testing"

	"selfemerge/internal/dht"
	"selfemerge/internal/protocol"
)

// FuzzDecodePacket asserts the wire codec's two invariants on arbitrary
// input: decoding never panics, and anything that decodes re-encodes to a
// canonical form that survives another decode/encode cycle byte-for-byte.
func FuzzDecodePacket(f *testing.F) {
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 80))
	valid := protocol.Packet{
		Mission:   protocol.MissionID{1, 2, 3},
		Kind:      protocol.PkSlotShare,
		Column:    3,
		Slot:      1,
		Width:     5,
		X:         9,
		HoldUntil: 123456789,
		Step:      3600,
		Target:    dht.IDFromKey([]byte("receiver")),
		Data:      []byte("share blob"),
	}
	f.Add(valid.Encode())
	f.Add(protocol.Packet{Kind: protocol.PkSecret, Data: []byte("s")}.Encode())

	f.Fuzz(func(t *testing.T, data []byte) {
		pkt, err := protocol.DecodePacket(data)
		if err != nil {
			return
		}
		enc := pkt.Encode()
		again, err := protocol.DecodePacket(enc)
		if err != nil {
			t.Fatalf("decoded packet failed to re-decode: %v", err)
		}
		if !bytes.Equal(enc, again.Encode()) {
			t.Fatalf("encode/decode not canonical:\n  first  %x\n  second %x", enc, again.Encode())
		}
		if again.Kind != pkt.Kind || again.Mission != pkt.Mission ||
			again.Column != pkt.Column || again.Slot != pkt.Slot ||
			again.Width != pkt.Width || again.X != pkt.X ||
			again.HoldUntil != pkt.HoldUntil || again.Step != pkt.Step ||
			again.Target != pkt.Target || !bytes.Equal(again.Data, pkt.Data) {
			t.Fatalf("round trip mutated fields: %+v vs %+v", pkt, again)
		}
	})
}
