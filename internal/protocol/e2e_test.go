package protocol_test

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"selfemerge/internal/adversary"
	"selfemerge/internal/core"
	"selfemerge/internal/dht"
	"selfemerge/internal/protocol"
	"selfemerge/internal/sim"
	"selfemerge/internal/stats"
	"selfemerge/internal/transport"
	"selfemerge/internal/transport/simnet"
)

// Local aliases keep the test body readable.
type (
	Mission    = protocol.Mission
	MissionID  = protocol.MissionID
	Host       = protocol.Host
	HostConfig = protocol.HostConfig
	Packet     = protocol.Packet
)

var (
	NewHost      = protocol.NewHost
	NewMissionID = protocol.NewMissionID
	Dispatch     = protocol.Dispatch
	SlotID       = protocol.SlotID
	DecodePacket = protocol.DecodePacket
)

const PkSlotShare = protocol.PkSlotShare
const PkSecret = protocol.PkSecret

// testbed is a full simnet DHT network with a protocol host on every node.
type testbed struct {
	t         *testing.T
	sim       *sim.Simulator
	net       *simnet.Network
	nodes     []*dht.Node
	hosts     []*Host
	collector *adversary.Collector

	mu          sync.Mutex
	deliveries  map[MissionID]time.Time
	secrets     map[MissionID][]byte
	deliveredTo map[MissionID]dht.ID
}

// newTestbed boots n nodes; maliciousFrac of them are adversary-controlled
// (spy mode, or drop mode when drop is set). Optional hooks mutate each
// node's host configuration before the host is built.
func newTestbed(t *testing.T, n int, maliciousFrac float64, drop bool, hooks ...func(*HostConfig)) *testbed {
	t.Helper()
	tb := &testbed{
		t:           t,
		sim:         sim.NewSimulator(),
		collector:   adversary.NewCollector(),
		deliveries:  make(map[MissionID]time.Time),
		secrets:     make(map[MissionID][]byte),
		deliveredTo: make(map[MissionID]dht.ID),
	}
	tb.net = simnet.New(tb.sim, simnet.Config{BaseLatency: 2 * time.Millisecond, Seed: 7})
	rng := stats.NewRNG(42)
	malCount := int(maliciousFrac * float64(n))
	for i := 0; i < n; i++ {
		addr := transport.Addr(fmt.Sprintf("n%d", i))
		id := dht.RandomID(rng)
		tb.spawn(addr, id, i < malCount, drop, hooks...)
	}
	seed := []dht.Contact{tb.nodes[0].Contact()}
	for _, node := range tb.nodes[1:] {
		node.Bootstrap(seed, nil)
	}
	tb.sim.Run()
	return tb
}

// spawn creates one live node+host at the given address and identifier,
// appending it to the testbed (reusing an address models a same-zone
// replacement join: fresh state, same DHT zone).
func (tb *testbed) spawn(addr transport.Addr, id dht.ID, malicious, drop bool, hooks ...func(*HostConfig)) (*dht.Node, *Host) {
	tb.t.Helper()
	cfg := HostConfig{
		Clock:     tb.sim,
		Malicious: malicious,
		Drop:      drop && malicious,
		Reporter:  tb.collector,
		OnSecret: func(mission MissionID, secret []byte) {
			tb.mu.Lock()
			defer tb.mu.Unlock()
			if _, dup := tb.deliveries[mission]; !dup {
				tb.deliveries[mission] = tb.sim.Now()
				tb.secrets[mission] = append([]byte(nil), secret...)
				tb.deliveredTo[mission] = id
			}
		},
	}
	for _, hook := range hooks {
		hook(&cfg)
	}
	host := NewHost(cfg)
	node, err := dht.NewNode(dht.Config{
		ID:       id,
		Endpoint: tb.net.Endpoint(addr),
		Clock:    tb.sim,
		OnApp:    host.HandleApp,
	})
	if err != nil {
		tb.t.Fatal(err)
	}
	host.Attach(node)
	tb.nodes = append(tb.nodes, node)
	tb.hosts = append(tb.hosts, host)
	return node, host
}

// ownerOf returns the cluster node whose ID is closest to the given key.
func (tb *testbed) ownerOf(key dht.ID) *dht.Node {
	return tb.ownersOf(key, 1)[0]
}

// ownersOf returns the n cluster nodes closest to the given key, nearest
// first (the packet replica set).
func (tb *testbed) ownersOf(key dht.ID, n int) []*dht.Node {
	sorted := append([]*dht.Node(nil), tb.nodes...)
	sort.Slice(sorted, func(i, j int) bool {
		return key.CloserTo(sorted[i].ID(), sorted[j].ID())
	})
	if len(sorted) > n {
		sorted = sorted[:n]
	}
	return sorted
}

// launch dispatches a mission whose receiver is nodes[1] and returns it.
func (tb *testbed) launch(plan core.Plan, emerging time.Duration) Mission {
	tb.t.Helper()
	id, err := NewMissionID()
	if err != nil {
		tb.t.Fatal(err)
	}
	m := Mission{
		ID:       id,
		Plan:     plan,
		Secret:   []byte("attack at dawn"),
		Receiver: tb.nodes[1].ID(),
		Start:    tb.sim.Now(),
		Release:  tb.sim.Now().Add(emerging),
	}
	if _, err := Dispatch(tb.nodes[2], m); err != nil {
		tb.t.Fatal(err)
	}
	return m
}

// deliveredAt returns the delivery time for a mission.
func (tb *testbed) deliveredAt(m MissionID) (time.Time, bool) {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	at, ok := tb.deliveries[m]
	return at, ok
}

func (tb *testbed) secretFor(m MissionID) []byte {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	return tb.secrets[m]
}

// assertEmerges runs the clock past release and checks on-time delivery.
func (tb *testbed) assertEmerges(m Mission) {
	tb.t.Helper()
	// Just before release: nothing delivered.
	tb.sim.RunUntil(m.Release.Add(-time.Second))
	if at, ok := tb.deliveredAt(m.ID); ok {
		tb.t.Fatalf("secret delivered at %v, before release %v", at, m.Release)
	}
	// Past release (+ slack for lookups/latency).
	tb.sim.RunUntil(m.Release.Add(30 * time.Second))
	tb.sim.Run()
	at, ok := tb.deliveredAt(m.ID)
	if !ok {
		tb.t.Fatal("secret never emerged")
	}
	if at.Before(m.Release) {
		tb.t.Fatalf("secret emerged at %v, before release %v", at, m.Release)
	}
	if got := tb.secretFor(m.ID); !bytes.Equal(got, m.Secret) {
		tb.t.Fatalf("emerged secret = %q, want %q", got, m.Secret)
	}
}

func TestCentralEmergesOnTime(t *testing.T) {
	tb := newTestbed(t, 30, 0, false)
	m := tb.launch(core.PlanCentral(0), 2*time.Hour)
	tb.assertEmerges(m)
}

func TestDisjointEmergesOnTime(t *testing.T) {
	tb := newTestbed(t, 40, 0, false)
	plan := core.Plan{Scheme: core.SchemeDisjoint, K: 2, L: 3}
	m := tb.launch(plan, 3*time.Hour)
	tb.assertEmerges(m)
}

func TestJointEmergesOnTime(t *testing.T) {
	tb := newTestbed(t, 40, 0, false)
	plan := core.Plan{Scheme: core.SchemeJoint, K: 3, L: 3}
	m := tb.launch(plan, 3*time.Hour)
	tb.assertEmerges(m)
}

func TestShareEmergesOnTime(t *testing.T) {
	tb := newTestbed(t, 60, 0, false)
	plan := core.Plan{Scheme: core.SchemeKeyShare, K: 2, L: 3, ShareN: 5, ShareM: []int{2, 2}}
	m := tb.launch(plan, 3*time.Hour)
	tb.assertEmerges(m)
}

func TestShareEmergesLongPath(t *testing.T) {
	tb := newTestbed(t, 80, 0, false)
	plan := core.Plan{Scheme: core.SchemeKeyShare, K: 2, L: 5, ShareN: 4, ShareM: []int{2, 2, 2, 2}}
	m := tb.launch(plan, 5*time.Hour)
	tb.assertEmerges(m)
}

func TestReleaseAheadFullCompromise(t *testing.T) {
	// Every node is a spy: the adversary holds every layer key at ts and
	// sees the entry onion, so the secret falls before a single holding
	// period elapses — the K4 case of Figure 2(b).
	tb := newTestbed(t, 40, 1.0, false)
	plan := core.Plan{Scheme: core.SchemeJoint, K: 2, L: 3}
	m := tb.launch(plan, 3*time.Hour)

	tb.sim.RunFor(10 * time.Minute) // far before the first forward at +1h
	recoveredAt, ok := tb.collector.Recovered(m.ID)
	if !ok {
		t.Fatal("full-compromise adversary failed to reconstruct the secret")
	}
	if !recoveredAt.Before(m.Start.Add(time.Hour)) {
		t.Fatalf("recovered at %v, expected before the first hop", recoveredAt)
	}
	secret, _ := tb.collector.Secret(m.ID)
	if !bytes.Equal(secret, m.Secret) {
		t.Fatalf("adversary reconstructed %q", secret)
	}
	// Spies still forward: the legitimate receiver gets it too, on time.
	tb.assertEmerges(m)
}

func TestReleaseAheadShareSchemeFullCompromise(t *testing.T) {
	tb := newTestbed(t, 50, 1.0, false)
	plan := core.Plan{Scheme: core.SchemeKeyShare, K: 2, L: 3, ShareN: 4, ShareM: []int{2, 2}}
	m := tb.launch(plan, 3*time.Hour)
	// The just-in-time structure delays even a full adversary: shares for
	// column c only exist once column c-1 peels. Run until one holding
	// period before release.
	tb.sim.RunUntil(m.Release.Add(-30 * time.Minute))
	if _, ok := tb.collector.Recovered(m.ID); !ok {
		t.Fatal("full-compromise adversary failed against share scheme")
	}
	recoveredAt, _ := tb.collector.Recovered(m.ID)
	if !recoveredAt.Before(m.Release) {
		t.Fatal("recovery not ahead of release")
	}
}

func TestDropAttackBlocksDelivery(t *testing.T) {
	tb := newTestbed(t, 40, 1.0, true)
	plan := core.Plan{Scheme: core.SchemeJoint, K: 2, L: 3}
	m := tb.launch(plan, 2*time.Hour)
	tb.sim.RunUntil(m.Release.Add(time.Hour))
	tb.sim.Run()
	if at, ok := tb.deliveredAt(m.ID); ok {
		t.Fatalf("secret delivered at %v despite a full drop attack", at)
	}
}

func TestDisjointSinglePathDiesWithHolder(t *testing.T) {
	tb := newTestbed(t, 40, 0, false)
	plan := core.Plan{Scheme: core.SchemeDisjoint, K: 1, L: 2}
	// Fixed mission ID: the kill below targets the globally closest node to
	// slot (1,0), which must deterministically be the node the dispatch
	// lookup picked.
	id := MissionID{0xD1, 0x5C, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06}
	m := Mission{
		ID:       id,
		Plan:     plan,
		Secret:   []byte("fragile"),
		Receiver: tb.nodes[1].ID(),
		Start:    tb.sim.Now(),
		Release:  tb.sim.Now().Add(2 * time.Hour),
	}
	if _, err := Dispatch(tb.nodes[2], m); err != nil {
		t.Fatal(err)
	}
	// Let the packages land, then kill every replica holder of the single
	// path's first slot before any forwards.
	tb.sim.RunFor(time.Minute)
	for _, owner := range tb.ownersOf(SlotID(m.ID, 1, 0), 2) {
		if owner.ID() == tb.nodes[1].ID() {
			t.Skip("a replica holder is the receiver; skip")
		}
		if err := owner.Close(); err != nil {
			t.Fatal(err)
		}
	}
	tb.sim.RunUntil(m.Release.Add(time.Hour))
	tb.sim.Run()
	if _, ok := tb.deliveredAt(m.ID); ok {
		t.Fatal("single-path mission survived its holder's death")
	}
}

func TestJointSurvivesOneHolderDeath(t *testing.T) {
	tb := newTestbed(t, 60, 0, false)
	plan := core.Plan{Scheme: core.SchemeJoint, K: 3, L: 2}
	id, err := NewMissionID()
	if err != nil {
		t.Fatal(err)
	}
	m := Mission{
		ID:       id,
		Plan:     plan,
		Secret:   []byte("redundant"),
		Receiver: tb.nodes[1].ID(),
		Start:    tb.sim.Now(),
		Release:  tb.sim.Now().Add(2 * time.Hour),
	}
	// Ensure the three first-column slots live on distinct nodes; the
	// mission ID is random, so retry a few times if they collide.
	owners := map[dht.ID]bool{}
	for try := 0; try < 20; try++ {
		owners = map[dht.ID]bool{}
		for s := 0; s < 3; s++ {
			owners[tb.ownerOf(SlotID(m.ID, 1, s)).ID()] = true
		}
		if len(owners) == 3 {
			break
		}
		m.ID[0]++
	}
	if len(owners) != 3 {
		t.Skip("could not find a mission ID with distinct first-column holders")
	}
	if _, err := Dispatch(tb.nodes[2], m); err != nil {
		t.Fatal(err)
	}
	tb.sim.RunFor(time.Minute)
	victim := tb.ownerOf(SlotID(m.ID, 1, 0))
	receiverID := tb.nodes[1].ID()
	if victim.ID() == receiverID {
		t.Skip("victim is the receiver; skip")
	}
	if err := victim.Close(); err != nil {
		t.Fatal(err)
	}
	tb.sim.RunUntil(m.Release.Add(30 * time.Second))
	tb.sim.Run()
	if _, ok := tb.deliveredAt(m.ID); !ok {
		t.Fatal("joint scheme failed to survive one first-column holder death")
	}
}

func TestDispatchValidation(t *testing.T) {
	tb := newTestbed(t, 10, 0, false)
	good := Mission{
		Plan:     core.PlanCentral(0),
		Secret:   []byte("s"),
		Receiver: tb.nodes[1].ID(),
		Start:    tb.sim.Now(),
		Release:  tb.sim.Now().Add(time.Hour),
	}
	cases := map[string]func(*Mission){
		"no secret":      func(m *Mission) { m.Secret = nil },
		"no receiver":    func(m *Mission) { m.Receiver = dht.ID{} },
		"release first":  func(m *Mission) { m.Release = m.Start.Add(-time.Hour) },
		"invalid plan":   func(m *Mission) { m.Plan = core.Plan{Scheme: core.SchemeJoint} },
		"unknown scheme": func(m *Mission) { m.Plan = core.Plan{Scheme: core.Scheme(9), K: 1, L: 1} },
	}
	for name, mutate := range cases {
		bad := good
		mutate(&bad)
		if _, err := Dispatch(tb.nodes[2], bad); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestSlotIDDeterministic(t *testing.T) {
	var m MissionID
	m[3] = 9
	a := SlotID(m, 2, 5)
	b := SlotID(m, 2, 5)
	c := SlotID(m, 2, 6)
	d := SlotID(m, 3, 5)
	if a != b {
		t.Error("SlotID not deterministic")
	}
	if a == c || a == d || c == d {
		t.Error("SlotID collisions across columns/slots")
	}
}

func TestPacketRoundTrip(t *testing.T) {
	var mid MissionID
	mid[0] = 0xAA
	p := Packet{
		Mission:   mid,
		Kind:      PkSlotShare,
		Column:    7,
		Slot:      3,
		X:         9,
		HoldUntil: 123456789,
		Step:      3600,
		Target:    dht.IDFromKey([]byte("r")),
		Data:      []byte("blob"),
	}
	got, err := DecodePacket(p.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Mission != p.Mission || got.Kind != p.Kind || got.Column != p.Column ||
		got.Slot != p.Slot || got.X != p.X || got.HoldUntil != p.HoldUntil ||
		got.Step != p.Step || got.Target != p.Target || !bytes.Equal(got.Data, p.Data) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, p)
	}
}

func TestPacketDecodeRejectsGarbage(t *testing.T) {
	for _, raw := range [][]byte{nil, {1}, make([]byte, 40), bytes.Repeat([]byte{0xFF}, 80)} {
		if _, err := DecodePacket(raw); err == nil {
			t.Errorf("garbage %v accepted", raw)
		}
	}
	// Valid packet with trailing junk.
	p := Packet{Mission: MissionID{1}, Kind: PkSecret, Data: []byte("x")}
	enc := append(p.Encode(), 0)
	if _, err := DecodePacket(enc); err == nil {
		t.Error("trailing junk accepted")
	}
}
