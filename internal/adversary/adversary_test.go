package adversary

import (
	"bytes"
	"testing"
	"time"

	"selfemerge/internal/crypto/onion"
	"selfemerge/internal/crypto/seal"
	"selfemerge/internal/crypto/shamir"
	"selfemerge/internal/dht"
	"selfemerge/internal/protocol"
)

// buildChain constructs a 3-layer main onion and returns (wrapped, keys,
// secret).
func buildChain(t *testing.T) ([]byte, []seal.Key, []byte) {
	t.Helper()
	secret := []byte("the emerging secret")
	keys := make([]seal.Key, 3)
	for i := range keys {
		k, err := seal.NewKey()
		if err != nil {
			t.Fatal(err)
		}
		keys[i] = k
	}
	hop := dht.IDFromKey([]byte("next"))
	layers := []onion.Layer{
		{NextHops: [][]byte{hop[:]}},
		{NextHops: [][]byte{hop[:]}},
		{NextHops: [][]byte{hop[:]}, Payload: secret},
	}
	wrapped, err := onion.Build(layers, keys)
	if err != nil {
		t.Fatal(err)
	}
	return wrapped, keys, secret
}

func report(c *Collector, at time.Time, pkt protocol.Packet) {
	c.Report(at, dht.ID{}, pkt)
}

func grant(mission protocol.MissionID, col int, key seal.Key) protocol.Packet {
	return protocol.Packet{Mission: mission, Kind: protocol.PkKeyGrant, Column: uint16(col), Data: key.Bytes()}
}

func TestReleaseAheadNeedsEveryColumn(t *testing.T) {
	// The Figure 2(b) K3 case: keys for head and tail but a gap in the
	// middle stops reconstruction; filling the gap releases the secret.
	wrapped, keys, secret := buildChain(t)
	c := NewCollector()
	var mission protocol.MissionID
	mission[0] = 1
	now := time.Unix(0, 0)

	report(c, now, protocol.Packet{Mission: mission, Kind: protocol.PkMainOnion, Column: 1, Data: wrapped})
	report(c, now, grant(mission, 1, keys[0]))
	report(c, now, grant(mission, 3, keys[2]))
	if _, ok := c.Recovered(mission); ok {
		t.Fatal("recovered with a column gap: onion continuity broken")
	}

	// The missing middle key closes the gap.
	later := now.Add(time.Minute)
	report(c, later, grant(mission, 2, keys[1]))
	at, ok := c.Recovered(mission)
	if !ok {
		t.Fatal("not recovered despite holding every layer key and the onion")
	}
	if !at.Equal(later) {
		t.Errorf("recoveredAt = %v, want %v", at, later)
	}
	got, _ := c.Secret(mission)
	if !bytes.Equal(got, secret) {
		t.Errorf("reconstructed %q", got)
	}
}

func TestReleaseAheadNeedsTheOnionToo(t *testing.T) {
	_, keys, _ := buildChain(t)
	c := NewCollector()
	var mission protocol.MissionID
	now := time.Unix(0, 0)
	for i, k := range keys {
		report(c, now, grant(mission, i+1, k))
	}
	if _, ok := c.Recovered(mission); ok {
		t.Fatal("recovered from keys alone, without any onion")
	}
}

func TestCentralPacketIsImmediateCompromise(t *testing.T) {
	c := NewCollector()
	var mission protocol.MissionID
	now := time.Unix(100, 0)
	report(c, now, protocol.Packet{Mission: mission, Kind: protocol.PkCentral, Data: []byte("s")})
	at, ok := c.Recovered(mission)
	if !ok || !at.Equal(now) {
		t.Fatalf("central packet: recovered=%v at=%v", ok, at)
	}
}

func TestColumnKeyFromShares(t *testing.T) {
	// m=2 of n=4: one share is not enough, two are.
	key, err := seal.NewKey()
	if err != nil {
		t.Fatal(err)
	}
	shares, err := shamir.Split(key.Bytes(), 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	secret := []byte("inner")
	hop := dht.IDFromKey([]byte("h"))
	wrapped, err := onion.Build([]onion.Layer{{NextHops: [][]byte{hop[:]}, Payload: secret}}, []seal.Key{key})
	if err != nil {
		t.Fatal(err)
	}

	c := NewCollector()
	var mission protocol.MissionID
	now := time.Unix(0, 0)
	report(c, now, protocol.Packet{Mission: mission, Kind: protocol.PkMainOnion, Column: 1, Data: wrapped})
	shareBlob := func(s shamir.Share) []byte {
		return append([]byte{s.X}, s.Data...)
	}
	report(c, now, protocol.Packet{Mission: mission, Kind: protocol.PkColShare, Column: 1, Data: shareBlob(shares[0])})
	if _, ok := c.Recovered(mission); ok {
		t.Fatal("recovered below threshold")
	}
	report(c, now.Add(time.Second), protocol.Packet{Mission: mission, Kind: protocol.PkColShare, Column: 1, Data: shareBlob(shares[2])})
	if _, ok := c.Recovered(mission); !ok {
		t.Fatal("not recovered at threshold")
	}
}

func TestDuplicateSharesDoNotFakeThreshold(t *testing.T) {
	key, err := seal.NewKey()
	if err != nil {
		t.Fatal(err)
	}
	shares, err := shamir.Split(key.Bytes(), 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	hop := dht.IDFromKey([]byte("h"))
	wrapped, err := onion.Build([]onion.Layer{{NextHops: [][]byte{hop[:]}, Payload: []byte("s")}}, []seal.Key{key})
	if err != nil {
		t.Fatal(err)
	}
	c := NewCollector()
	var mission protocol.MissionID
	now := time.Unix(0, 0)
	report(c, now, protocol.Packet{Mission: mission, Kind: protocol.PkMainOnion, Column: 1, Data: wrapped})
	blob := append([]byte{shares[0].X}, shares[0].Data...)
	for i := 0; i < 5; i++ {
		report(c, now, protocol.Packet{Mission: mission, Kind: protocol.PkColShare, Column: 1, Data: blob})
	}
	if _, ok := c.Recovered(mission); ok {
		t.Fatal("recovered from one share reported five times")
	}
	if got := c.Packets(mission); got != 6 {
		t.Errorf("Packets = %d", got)
	}
}

func TestSecretCopyIsolated(t *testing.T) {
	c := NewCollector()
	var mission protocol.MissionID
	report(c, time.Unix(0, 0), protocol.Packet{Mission: mission, Kind: protocol.PkSecret, Data: []byte("abc")})
	got, ok := c.Secret(mission)
	if !ok {
		t.Fatal("missing secret")
	}
	got[0] = 'X'
	again, _ := c.Secret(mission)
	if again[0] == 'X' {
		t.Error("Secret returned aliased memory")
	}
}

func TestUnknownMissionQueries(t *testing.T) {
	c := NewCollector()
	var mission protocol.MissionID
	if _, ok := c.Recovered(mission); ok {
		t.Error("unknown mission recovered")
	}
	if _, ok := c.Secret(mission); ok {
		t.Error("unknown mission has secret")
	}
	if c.Packets(mission) != 0 {
		t.Error("unknown mission has packets")
	}
}
