package adversary

import "fmt"

// Strategy selects what Sybil-controlled holders do with their position —
// the adversary axis of the experiments. Spy and Drop are the paper's
// Section II-B holder strategies; Eclipse is the routing-layer attack the
// paper's model cannot see (bucket poisoning of the DHT substrate, the
// weakness that broke Vanish-style data-hiding systems).
type Strategy int

const (
	// StrategySpy collects everything malicious holders observe for
	// release-ahead reconstruction, forwarding traffic faithfully.
	StrategySpy Strategy = iota
	// StrategyDrop makes malicious holders swallow every package they hold,
	// attacking availability instead of confidentiality.
	StrategyDrop
	// StrategyEclipse adds bucket poisoning on top of dropping: attacker
	// nodes flood victims' routing tables with forged contacts bearing
	// identifiers inside observed mission zones, degrading honest routing
	// toward those zones, while held packages are swallowed as in
	// StrategyDrop. Its effectiveness depends entirely on the table's
	// admission policy (dht.TablePolicy), which is the point of the axis.
	StrategyEclipse
)

// String returns the strategy's axis label.
func (s Strategy) String() string {
	switch s {
	case StrategyDrop:
		return "drop"
	case StrategyEclipse:
		return "eclipse"
	default:
		return "spy"
	}
}

// Drops reports whether holders swallow the packages they hold under this
// strategy.
func (s Strategy) Drops() bool {
	return s == StrategyDrop || s == StrategyEclipse
}

// ParseStrategy parses an axis label ("spy", "drop" or "eclipse").
func ParseStrategy(s string) (Strategy, error) {
	switch s {
	case "spy":
		return StrategySpy, nil
	case "drop":
		return StrategyDrop, nil
	case "eclipse":
		return StrategyEclipse, nil
	}
	return StrategySpy, fmt.Errorf("adversary: unknown strategy %q (want spy, drop or eclipse)", s)
}
