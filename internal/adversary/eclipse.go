package adversary

import (
	"sync"
	"time"

	"selfemerge/internal/dht"
	"selfemerge/internal/protocol"
	"selfemerge/internal/sim"
	"selfemerge/internal/stats"
	"selfemerge/internal/transport"
)

// Forger drives the bucket-poisoning half of StrategyEclipse: from every
// attacker-controlled endpoint it emits forged DHT pings whose From claims
// an identifier inside an observed mission zone. The victim's node rewrites
// the claimed address to the datagram's socket source (the attacker's own
// address), so a table that admits the forgery on an unverified observation
// ends up routing zone traffic at the attacker — and a table that evicts a
// live peer for it loses real routes. Against dht.TablePingEvict both doors
// are closed; against dht.TableNaive the flood displaces quiet live entries
// once they pass the staleness threshold, which is what the attack curves
// measure.
//
// Zone intelligence arrives through ObserveZone (wired to the Collector's
// zone sink): any packet a Sybil holder observes names its mission and
// holder-slot coordinates, and SlotID is public derivation, so the adversary
// aims at the observed zone and the next column's — where the mission's
// future traffic must flow. Before any intel arrives, forged identifiers
// are uniform random (blind poisoning).
//
// All randomness comes from a private seeded stream, so runs remain byte-
// reproducible; a Forger is only constructed for eclipse runs, leaving
// honest and spy/drop runs untouched.
type Forger struct {
	clock sim.Clock
	rate  float64 // forged contacts per attacker per minute

	mu        sync.Mutex
	rng       *stats.RNG
	attackers map[int]transport.Endpoint
	attIdx    []int // sorted attacker slots, for deterministic choice
	victims   []transport.Addr
	victimSet map[transport.Addr]bool
	zones     []dht.ID
	zoneSet   map[dht.ID]bool
	acc       float64
	started   bool
	forged    uint64
}

// maxZoneTargets bounds the zone-intel list; missions are finite but
// long sweeps accumulate.
const maxZoneTargets = 1 << 14

// zoneSuffixBytes is how many trailing identifier bytes are randomized
// around a zone target, scattering forgeries through the zone's vicinity
// while keeping the high prefix (and therefore the victims' bucket index)
// intact.
const zoneSuffixBytes = 4

// NewForger creates an idle forger; Start arms the tick loop.
func NewForger(clock sim.Clock, ratePerAttackerPerMinute float64, seed uint64) *Forger {
	return &Forger{
		clock:     clock,
		rate:      ratePerAttackerPerMinute,
		rng:       stats.NewRNG(stats.Mix64(seed, 0xec11b5e)),
		attackers: make(map[int]transport.Endpoint),
		victimSet: make(map[transport.Addr]bool),
		zoneSet:   make(map[dht.ID]bool),
	}
}

// SetAttacker registers the endpoint of the malicious node at population
// slot idx (churn replacements re-register).
func (f *Forger) SetAttacker(idx int, ep transport.Endpoint) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, known := f.attackers[idx]; !known {
		// Keep the slot list sorted so the per-forge attacker draw is a
		// deterministic function of the RNG stream alone.
		pos := len(f.attIdx)
		for i, v := range f.attIdx {
			if v > idx {
				pos = i
				break
			}
		}
		f.attIdx = append(f.attIdx, 0)
		copy(f.attIdx[pos+1:], f.attIdx[pos:])
		f.attIdx[pos] = idx
	}
	f.attackers[idx] = ep
}

// ClearAttacker drops slot idx from the attacker set (an honest churn
// replacement took the slot over).
func (f *Forger) ClearAttacker(idx int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, known := f.attackers[idx]; !known {
		return
	}
	delete(f.attackers, idx)
	for i, v := range f.attIdx {
		if v == idx {
			f.attIdx = append(f.attIdx[:i], f.attIdx[i+1:]...)
			break
		}
	}
}

// AddVictim registers a flood target address (idempotent).
func (f *Forger) AddVictim(addr transport.Addr) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.victimSet[addr] {
		return
	}
	f.victimSet[addr] = true
	f.victims = append(f.victims, addr)
}

// ObserveZone ingests holder-slot intelligence: the zone of the observed
// packet and of the next column's same slot, where the mission's future
// traffic must flow. Matches the Collector's zone-sink signature.
func (f *Forger) ObserveZone(mission protocol.MissionID, column, slot int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.addZone(protocol.SlotID(mission, column, slot))
	f.addZone(protocol.SlotID(mission, column+1, slot))
}

// addZone records a target zone identifier. Callers hold f.mu.
func (f *Forger) addZone(id dht.ID) {
	if f.zoneSet[id] || len(f.zones) >= maxZoneTargets {
		return
	}
	f.zoneSet[id] = true
	f.zones = append(f.zones, id)
}

// Forged reports how many forged contacts have been emitted.
func (f *Forger) Forged() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.forged
}

// forgeTick is the forger's pacing quantum.
const forgeTick = time.Second

// Start arms the tick loop; the forger emits rate forged contacts per
// attacker per minute, fractional rates accumulating across ticks.
func (f *Forger) Start() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.started || f.rate <= 0 {
		return
	}
	f.started = true
	sim.Schedule(f.clock, forgeTick, f.tick)
}

func (f *Forger) tick() {
	f.mu.Lock()
	f.acc += float64(len(f.attackers)) * f.rate * forgeTick.Minutes()
	n := int(f.acc)
	f.acc -= float64(n)
	type forgery struct {
		ep     transport.Endpoint
		victim transport.Addr
		id     dht.ID
	}
	var batch []forgery
	if n > 0 && len(f.attackers) > 0 && len(f.victims) > 0 {
		batch = make([]forgery, 0, n)
		for i := 0; i < n; i++ {
			ep := f.attackers[f.attIdx[f.rng.Uint64n(uint64(len(f.attIdx)))]]
			victim := f.victims[f.rng.Uint64n(uint64(len(f.victims)))]
			var id dht.ID
			if len(f.zones) > 0 {
				id = f.zones[f.rng.Uint64n(uint64(len(f.zones)))]
				for b := len(id) - zoneSuffixBytes; b < len(id); b++ {
					id[b] = byte(f.rng.Uint64n(256))
				}
			} else {
				id = dht.RandomID(f.rng)
			}
			batch = append(batch, forgery{ep: ep, victim: victim, id: id})
		}
		f.forged += uint64(len(batch))
	}
	f.mu.Unlock()

	// Emit outside the lock: Send re-enters the transport fabric.
	var buf []byte
	for _, fo := range batch {
		msg := dht.Message{Kind: dht.KindPing, From: dht.Contact{ID: fo.id, Addr: fo.ep.Addr()}}
		data, err := msg.AppendEncode(buf[:0])
		if err != nil {
			continue
		}
		buf = data
		_ = fo.ep.Send(fo.victim, data)
	}
	sim.Schedule(f.clock, forgeTick, f.tick)
}
