// Package adversary implements the attack machinery of Section II-B: a
// collector aggregating everything Sybil-controlled holders observe and an
// inference engine that tries to reconstruct the protected secret from it
// before the release time (the release-ahead attack). The drop attack is
// enacted by the holders themselves (protocol.HostConfig.Drop); this
// package records what the adversary could decrypt and when.
package adversary

import (
	"sync"
	"time"

	"selfemerge/internal/crypto/onion"
	"selfemerge/internal/crypto/seal"
	"selfemerge/internal/crypto/shamir"
	"selfemerge/internal/dht"
	"selfemerge/internal/protocol"
)

// Collector aggregates packets reported by malicious holders and attempts
// secret reconstruction after every new observation. Safe for concurrent
// use.
type Collector struct {
	mu       sync.Mutex
	missions map[protocol.MissionID]*intel
	zoneSink func(mission protocol.MissionID, column, slot int)
}

// SetZoneSink installs a callback receiving the holder-slot coordinates of
// every reported packet — the routing-layer intelligence StrategyEclipse
// aims its forgeries with (see Forger.ObserveZone). The sink is invoked
// outside the collector lock.
func (c *Collector) SetZoneSink(sink func(mission protocol.MissionID, column, slot int)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.zoneSink = sink
}

type slotRef struct {
	column int
	slot   int
}

type intel struct {
	colKeys    map[int]seal.Key
	colShares  map[int][]shamir.Share
	slotKeys   map[slotRef]seal.Key
	slotShares map[slotRef][]shamir.Share
	mainOnions map[int][]byte
	slotOnions map[slotRef][]byte

	secret      []byte
	recoveredAt time.Time
	packets     int
}

// NewCollector creates an empty collector.
func NewCollector() *Collector {
	return &Collector{missions: make(map[protocol.MissionID]*intel)}
}

var _ protocol.Reporter = (*Collector)(nil)

// Report ingests one observed packet and re-runs inference.
func (c *Collector) Report(now time.Time, _ dht.ID, pkt protocol.Packet) {
	c.mu.Lock()
	defer c.ingestDone(pkt)
	in := c.intel(pkt.Mission)
	in.packets++
	col := int(pkt.Column)
	switch pkt.Kind {
	case protocol.PkCentral:
		// The central holder sees the secret outright.
		in.note(pkt.Data, now)
	case protocol.PkSecret:
		// Legitimate release passing through a malicious relay.
		in.note(pkt.Data, now)
	case protocol.PkKeyGrant:
		if key, err := seal.KeyFromBytes(pkt.Data); err == nil {
			if pkt.X == keyGrantSlot {
				in.slotKeys[slotRef{col, int(pkt.Slot)}] = key
			} else {
				in.colKeys[col] = key
			}
		}
	case protocol.PkMainOnion:
		if _, ok := in.mainOnions[col]; !ok {
			// Clone: observed packet payloads alias recycled delivery buffers.
			in.mainOnions[col] = append([]byte(nil), pkt.Data...)
		}
	case protocol.PkSlotOnion:
		ref := slotRef{col, int(pkt.Slot)}
		if _, ok := in.slotOnions[ref]; !ok {
			in.slotOnions[ref] = append([]byte(nil), pkt.Data...)
		}
	case protocol.PkColShare:
		if x, data, err := protocol.ParseShare(pkt.Data); err == nil {
			in.addColShare(col, shamir.Share{X: x, Data: data})
		}
	case protocol.PkSlotShare:
		if x, data, err := protocol.ParseShare(pkt.Data); err == nil {
			in.addSlotShare(slotRef{col, int(pkt.Slot)}, shamir.Share{X: x, Data: data})
		}
	}
	c.infer(in, now)
}

// ingestDone releases the collector lock and forwards the packet's zone
// coordinates to the zone sink, outside the lock.
func (c *Collector) ingestDone(pkt protocol.Packet) {
	sink := c.zoneSink
	c.mu.Unlock()
	if sink != nil {
		sink(pkt.Mission, int(pkt.Column), int(pkt.Slot))
	}
}

// Recovered reports whether (and when) the adversary reconstructed the
// mission secret.
func (c *Collector) Recovered(mission protocol.MissionID) (time.Time, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	in, ok := c.missions[mission]
	if !ok || in.secret == nil {
		return time.Time{}, false
	}
	return in.recoveredAt, true
}

// Secret returns the reconstructed secret, if any.
func (c *Collector) Secret(mission protocol.MissionID) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	in, ok := c.missions[mission]
	if !ok || in.secret == nil {
		return nil, false
	}
	out := make([]byte, len(in.secret))
	copy(out, in.secret)
	return out, true
}

// Packets returns how many observations were collected for a mission.
func (c *Collector) Packets(mission protocol.MissionID) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	in, ok := c.missions[mission]
	if !ok {
		return 0
	}
	return in.packets
}

func (c *Collector) intel(id protocol.MissionID) *intel {
	in, ok := c.missions[id]
	if !ok {
		in = &intel{
			colKeys:    make(map[int]seal.Key),
			colShares:  make(map[int][]shamir.Share),
			slotKeys:   make(map[slotRef]seal.Key),
			slotShares: make(map[slotRef][]shamir.Share),
			mainOnions: make(map[int][]byte),
			slotOnions: make(map[slotRef][]byte),
		}
		c.missions[id] = in
	}
	return in
}

func (in *intel) note(secret []byte, now time.Time) {
	if in.secret != nil {
		return
	}
	in.secret = append([]byte(nil), secret...)
	in.recoveredAt = now
}

// addColShare keeps the first variant seen for each X coordinate, cloning
// the data (packet payloads alias recycled delivery buffers).
func (in *intel) addColShare(col int, s shamir.Share) {
	for _, have := range in.colShares[col] {
		if have.X == s.X {
			return
		}
	}
	s.Data = append([]byte(nil), s.Data...)
	in.colShares[col] = append(in.colShares[col], s)
}

func (in *intel) addSlotShare(ref slotRef, s shamir.Share) {
	for _, have := range in.slotShares[ref] {
		if have.X == s.X {
			return
		}
	}
	s.Data = append([]byte(nil), s.Data...)
	in.slotShares[ref] = append(in.slotShares[ref], s)
}

// infer runs decrypt-to-fixpoint: recover keys from shares, peel every
// onion a key opens, harvest shares and inner onions from peeled layers,
// repeat until nothing new — then check whether the secret fell out.
func (c *Collector) infer(in *intel, now time.Time) {
	if in.secret != nil {
		return
	}
	for progress := true; progress; {
		progress = false
		// Peel main onions.
		for col, sealed := range in.mainOnions {
			key, ok := in.columnKey(col)
			if !ok {
				continue
			}
			layer, err := onion.Peel(key, sealed)
			if err != nil {
				continue
			}
			delete(in.mainOnions, col)
			progress = true
			if layer.Payload != nil {
				in.note(layer.Payload, now)
				return
			}
			if layer.Rest != nil {
				if _, have := in.mainOnions[col+1]; !have {
					in.mainOnions[col+1] = layer.Rest
				}
			}
		}
		// Peel slot onions and harvest the shares inside.
		for ref, sealed := range in.slotOnions {
			key, ok := in.slotKey(ref)
			if !ok {
				continue
			}
			layer, err := onion.Peel(key, sealed)
			if err != nil {
				continue
			}
			delete(in.slotOnions, ref)
			progress = true
			next := ref.column + 1
			for _, blob := range layer.Shares {
				kind, slot, x, data, err := protocol.ParseShareTag(blob)
				if err != nil {
					continue
				}
				switch kind {
				case protocol.ShareKindColumn:
					in.addColShare(next, shamir.Share{X: x, Data: data})
				case protocol.ShareKindSlot:
					in.addSlotShare(slotRef{next, slot}, shamir.Share{X: x, Data: data})
				}
			}
			if layer.Rest != nil {
				nref := slotRef{next, ref.slot}
				if _, have := in.slotOnions[nref]; !have {
					in.slotOnions[nref] = layer.Rest
				}
			}
		}
	}
}

// columnKey returns the column key if directly known or recoverable from
// the collected shares. Interpolation through all shares yields the true
// key exactly when the threshold is met; the onion's authenticated layer
// is the verification oracle, so a garbage interpolation merely fails the
// next peel.
func (in *intel) columnKey(col int) (seal.Key, bool) {
	if key, ok := in.colKeys[col]; ok {
		return key, true
	}
	return keyFromShares(in.colShares[col])
}

func (in *intel) slotKey(ref slotRef) (seal.Key, bool) {
	if key, ok := in.slotKeys[ref]; ok {
		return key, true
	}
	return keyFromShares(in.slotShares[ref])
}

func keyFromShares(shares []shamir.Share) (seal.Key, bool) {
	if len(shares) == 0 {
		return seal.Key{}, false
	}
	raw, err := shamir.Combine(shares, len(shares))
	if err != nil {
		return seal.Key{}, false
	}
	key, err := seal.KeyFromBytes(raw)
	if err != nil {
		return seal.Key{}, false
	}
	return key, true
}

// keyGrantSlot mirrors protocol's unexported discriminator (kept in sync
// via protocol.KeyGrantSlotMarker).
const keyGrantSlot = protocol.KeyGrantSlotMarker
