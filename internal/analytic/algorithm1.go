package analytic

import (
	"fmt"
	"math"
)

// KeyShareInput carries the parameters of Algorithm 1 ("Key share routing
// scheme"). K and L come from planning the underlying node-joint multipath
// topology; N caps how many DHT nodes may be consumed by the share-routing
// layer; T is the emerging period; Lambda the mean node lifetime of the
// exponential churn model; P the malicious-node rate.
type KeyShareInput struct {
	K      int     // onion path replication factor (node-joint layer)
	L      int     // path length / number of holder columns
	N      int     // total nodes available to construct the share paths
	T      float64 // expected emerging time (same unit as Lambda)
	Lambda float64 // average node lifetime (exponential churn)
	P      float64 // node malicious rate
}

// ColumnPlan records the Shamir threshold chosen for one holder column
// together with the cumulative attack success probabilities the recurrence
// assigns to that column.
type ColumnPlan struct {
	Column int     // 1-based column index along the paths
	M      int     // threshold: shares required to recover the column key
	N      int     // total shares issued for the column key
	Pr     float64 // cumulative release-ahead success probability at this column
	Pd     float64 // cumulative drop success probability at this column
}

// KeySharePlan is the output of Algorithm 1: the per-column thresholds and
// the end-to-end resiliences of the key share routing scheme.
type KeySharePlan struct {
	Input   KeyShareInput
	Columns []ColumnPlan // l entries; Columns[0] is the direct-delivery first column
	SharesN int          // n = floor(N/l), shares per column
	Dead    int          // d = floor(pdead*n), expected shares lost per holding period
	PDead   float64      // per-holding-period death probability 1-exp(-T/(lambda*l))
	Result  Resilience
}

// PlanKeyShare runs Algorithm 1 as printed in the paper.
//
// Reading of the printed algorithm (the ICDCS text is OCR-damaged around the
// binomial sums; EXPERIMENTS.md discusses the interpretation):
//
//	n = floor(N/l)                       // line 1: uniform node budget per column
//	pdead = 1 - exp(-T/(lambda*l))       // line 2: exponential decay over th = T/l
//	d = floor(pdead*n)                   // line 3: expected dead shares per column
//	pr = pd = p                          // line 4: column 1 keys are delivered directly
//	for column = 2..l:                   // line 7
//	    choose m in [1,n] minimizing
//	        |P[Bin(n,p) >= m] - P[Bin(n-d,p) >= n-d-m+1]|   // line 8
//	    pr' = 1-(1-pr)(1-P[Bin(n,p) >= m])                  // line 9
//	    pd' = 1-(1-pd)(1-P[Bin(n-d,p) >= n-d-m+1])          // lines 10-11
//	Rr = 1 - prod_cols (1-(1-Pr_col)^k)                     // lines 14-15, 18
//	Rd = prod_cols (1-Pd_col^k)                             // line 16
//
// The release-ahead branch asks whether the adversary can gather m of the n
// shares of a column key (so it can decrypt that onion layer at ts); the
// drop branch asks whether, of the n-d shares that survive churn, the
// adversary controls enough (more than n-d-m) that fewer than m honest
// shares remain deliverable. Choosing m to equalize the two success rates is
// the paper's "no bias" rule.
func PlanKeyShare(in KeyShareInput) (KeySharePlan, error) {
	if err := in.validate(); err != nil {
		return KeySharePlan{}, err
	}
	n := in.N / in.L
	if n < 1 {
		return KeySharePlan{}, fmt.Errorf("analytic: node budget N=%d too small for %d columns", in.N, in.L)
	}
	pdead := 1 - math.Exp(-in.T/(in.Lambda*float64(in.L)))
	d := int(pdead * float64(n))
	if d >= n {
		d = n - 1 // keep at least one live share so thresholds remain meaningful
	}

	plan := KeySharePlan{
		Input:   in,
		SharesN: n,
		Dead:    d,
		PDead:   pdead,
		Columns: make([]ColumnPlan, 0, in.L),
	}

	// Column 1: the sender hands the first onion keys directly to the first
	// holders, so compromise probability is just p per holder.
	pr, pd := in.P, in.P
	plan.Columns = append(plan.Columns, ColumnPlan{Column: 1, M: 1, N: 1, Pr: pr, Pd: pd})

	// Line 8's minimization depends only on (n, d, p), which are identical
	// for every column, so the threshold and the per-column attack tails are
	// computed once.
	m, release, drop := chooseThreshold(n, d, in.P)
	for column := 2; column <= in.L; column++ {
		pr = 1 - (1-pr)*(1-release)
		pd = 1 - (1-pd)*(1-drop)
		plan.Columns = append(plan.Columns, ColumnPlan{Column: column, M: m, N: n, Pr: pr, Pd: pd})
	}

	rrProd, rd := 1.0, 1.0
	for _, col := range plan.Columns {
		rrProd *= 1 - math.Pow(1-col.Pr, float64(in.K))
		rd *= 1 - math.Pow(col.Pd, float64(in.K))
	}
	plan.Result = Resilience{ReleaseAhead: 1 - rrProd, Drop: rd}
	return plan, nil
}

// chooseThreshold implements line 8 of Algorithm 1: pick the m in [1, n]
// that minimizes the absolute difference between the release-ahead and drop
// success probabilities for one column, balancing the two attacks. It
// returns the threshold together with both per-column success probabilities.
func chooseThreshold(n, d int, p float64) (m int, release, drop float64) {
	releaseTail := TailTable(n, p)
	dropTail := TailTable(n-d, p)
	tailAt := func(t []float64, idx int) float64 {
		switch {
		case idx < 0:
			return 1
		case idx >= len(t):
			return 0
		default:
			return t[idx]
		}
	}
	bestM := 1
	bestDif := math.Inf(1)
	for cand := 1; cand <= n; cand++ {
		rel := tailAt(releaseTail, cand)
		dr := tailAt(dropTail, n-d-cand+1)
		if dif := math.Abs(rel - dr); dif < bestDif {
			bestDif = dif
			bestM = cand
		}
	}
	return bestM, tailAt(releaseTail, bestM), tailAt(dropTail, n-d-bestM+1)
}

func (in KeyShareInput) validate() error {
	if in.K < 1 || in.L < 1 {
		return fmt.Errorf("analytic: key share plan requires k,l >= 1 (got k=%d l=%d)", in.K, in.L)
	}
	if in.N < in.L {
		return fmt.Errorf("analytic: key share plan requires N >= l (got N=%d l=%d)", in.N, in.L)
	}
	if in.T <= 0 || in.Lambda <= 0 {
		return fmt.Errorf("analytic: key share plan requires positive T and Lambda (got T=%v lambda=%v)", in.T, in.Lambda)
	}
	if in.P < 0 || in.P > 1 || math.IsNaN(in.P) {
		return fmt.Errorf("analytic: malicious rate p=%v outside [0,1]", in.P)
	}
	return nil
}
