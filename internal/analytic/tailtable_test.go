package analytic

import (
	"math"
	"testing"
)

func TestTailTableMatchesBinomialTail(t *testing.T) {
	for _, n := range []int{0, 1, 7, 40, 200} {
		for _, p := range []float64{0, 0.1, 0.5, 0.93, 1} {
			table := TailTable(n, p)
			if len(table) != n+2 {
				t.Fatalf("n=%d: table len %d", n, len(table))
			}
			for m := 0; m <= n+1; m++ {
				want := BinomialTail(n, p, m)
				if math.Abs(table[m]-want) > 1e-9 {
					t.Errorf("TailTable(%d,%v)[%d] = %v, want %v", n, p, m, table[m], want)
				}
			}
		}
	}
}

func TestTailTableMonotone(t *testing.T) {
	table := TailTable(500, 0.37)
	for m := 1; m < len(table); m++ {
		if table[m] > table[m-1]+1e-12 {
			t.Fatalf("table not monotone at m=%d: %v > %v", m, table[m], table[m-1])
		}
	}
	if table[0] != 1 {
		t.Errorf("T[0] = %v, want 1", table[0])
	}
	if table[len(table)-1] != 0 {
		t.Errorf("T[n+1] = %v, want 0", table[len(table)-1])
	}
}
