// Package analytic implements the closed-form security analysis from the
// paper: the attack-resilience equations (1), (2) and (3) for the
// centralized, node-disjoint and node-joint multipath routing schemes,
// Lemma 1, and Algorithm 1 (the per-column (m, n) share-threshold selection
// and resilience recurrences of the key share routing scheme).
//
// Everything here is deterministic mathematics; the Monte Carlo counterparts
// live in internal/mc and are cross-validated against this package in tests.
package analytic

import "math"

// BinomialPMF returns P[X = i] for X ~ Binomial(n, p), computed in log space
// so that it remains finite for the large n (thousands of shares per column)
// that Algorithm 1 can request.
func BinomialPMF(n int, p float64, i int) float64 {
	if i < 0 || i > n || n < 0 {
		return 0
	}
	switch {
	case p <= 0:
		if i == 0 {
			return 1
		}
		return 0
	case p >= 1:
		if i == n {
			return 1
		}
		return 0
	}
	return math.Exp(logBinomialPMF(n, p, i))
}

func logBinomialPMF(n int, p float64, i int) float64 {
	lg, _ := math.Lgamma(float64(n + 1))
	lgi, _ := math.Lgamma(float64(i + 1))
	lgni, _ := math.Lgamma(float64(n - i + 1))
	return lg - lgi - lgni + float64(i)*math.Log(p) + float64(n-i)*math.Log(1-p)
}

// BinomialTail returns P[X >= m] for X ~ Binomial(n, p). This is the
// quantity that appears throughout Algorithm 1: the probability that the
// adversary controls at least m of the n share holders in a column.
//
// The sum is accumulated in log space with a running maximum shift, so it is
// numerically stable for n in the tens of thousands.
func BinomialTail(n int, p float64, m int) float64 {
	if n < 0 {
		return 0
	}
	if m <= 0 {
		return 1
	}
	if m > n {
		return 0
	}
	switch {
	case p <= 0:
		return 0 // m >= 1 here, and X is identically 0
	case p >= 1:
		return 1 // X is identically n >= m
	}
	// Sum the smaller tail for accuracy, then complement if needed.
	mean := float64(n) * p
	if float64(m) > mean {
		return sumPMFRange(n, p, m, n)
	}
	return 1 - sumPMFRange(n, p, 0, m-1)
}

// TailTable returns T with T[m] = P[X >= m] for X ~ Binomial(n, p) and
// m = 0..n+1 (T[n+1] = 0). Building the whole table costs O(n), after which
// threshold scans are O(1) per lookup — Algorithm 1 evaluates both attack
// tails for every candidate threshold, so this avoids an O(n^2) blowup.
func TailTable(n int, p float64) []float64 {
	t := make([]float64, n+2)
	if n < 0 {
		return t
	}
	switch {
	case p <= 0:
		for m := 0; m <= 0; m++ {
			t[m] = 1
		}
		return t
	case p >= 1:
		for m := 0; m <= n; m++ {
			t[m] = 1
		}
		return t
	}
	// Backward cumulative sum of the pmf in shifted log space.
	logs := make([]float64, n+1)
	maxLog := math.Inf(-1)
	for i := 0; i <= n; i++ {
		logs[i] = logBinomialPMF(n, p, i)
		if logs[i] > maxLog {
			maxLog = logs[i]
		}
	}
	sum := 0.0
	for m := n; m >= 0; m-- {
		sum += math.Exp(logs[m] - maxLog)
		v := sum * math.Exp(maxLog)
		if v > 1 {
			v = 1
		}
		t[m] = v
	}
	t[0] = 1 // P[X >= 0] is exactly 1; the log-space sum rounds just below it
	return t
}

// sumPMFRange returns sum_{i=lo}^{hi} P[X=i] using log-space accumulation.
func sumPMFRange(n int, p float64, lo, hi int) float64 {
	if lo > hi {
		return 0
	}
	logs := make([]float64, 0, hi-lo+1)
	maxLog := math.Inf(-1)
	for i := lo; i <= hi; i++ {
		l := logBinomialPMF(n, p, i)
		logs = append(logs, l)
		if l > maxLog {
			maxLog = l
		}
	}
	if math.IsInf(maxLog, -1) {
		return 0
	}
	var sum float64
	for _, l := range logs {
		sum += math.Exp(l - maxLog)
	}
	v := sum * math.Exp(maxLog)
	if v > 1 {
		v = 1
	}
	return v
}
