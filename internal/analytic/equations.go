package analytic

import (
	"fmt"
	"math"
)

// Resilience bundles the two attack-resilience probabilities the paper
// tracks for every scheme: Rr, the probability that a release-ahead attack
// fails (the adversary cannot restore the secret key at start time ts), and
// Rd, the probability that a drop attack fails (the key is still released at
// tr despite malicious holders discarding packages).
type Resilience struct {
	ReleaseAhead float64 // Rr
	Drop         float64 // Rd
}

// Min returns min(Rr, Rd), the figure-of-merit the evaluation plots as R
// when parameters are planned so that Rr ≈ Rd.
func (r Resilience) Min() float64 {
	return math.Min(r.ReleaseAhead, r.Drop)
}

// validateP panics on a malicious-node rate outside [0, 1]; the rate is a
// probability and every public function in this package shares the check.
func validateP(p float64) {
	if p < 0 || p > 1 || math.IsNaN(p) {
		panic(fmt.Sprintf("analytic: malicious rate p=%v outside [0,1]", p))
	}
}

// Central returns the resilience of the centralized scheme: a single DHT
// node stores the key for the whole emerging period, so both attacks succeed
// exactly when that node is malicious (Section III-A).
func Central(p float64) Resilience {
	validateP(p)
	return Resilience{ReleaseAhead: 1 - p, Drop: 1 - p}
}

// DisjointRr evaluates Equation (1): the release-ahead resilience of k
// replicated node-disjoint onion paths with l holders each. The adversary
// must hold at least one replica of every onion-layer key, i.e. compromise
// at least one of the k holders in every one of the l columns.
func DisjointRr(p float64, k, l int) float64 {
	validateP(p)
	validateShape(k, l)
	return 1 - math.Pow(1-math.Pow(1-p, float64(k)), float64(l))
}

// DisjointRd evaluates Equation (2): the drop resilience of the node-disjoint
// scheme. To drop the key the adversary must cut all k paths, and a path is
// cut when any one of its l holders is malicious.
func DisjointRd(p float64, k, l int) float64 {
	validateP(p)
	validateShape(k, l)
	return 1 - math.Pow(1-math.Pow(1-p, float64(l)), float64(k))
}

// Disjoint returns both resiliences of the node-disjoint multipath scheme.
func Disjoint(p float64, k, l int) Resilience {
	return Resilience{ReleaseAhead: DisjointRr(p, k, l), Drop: DisjointRd(p, k, l)}
}

// JointRr returns the release-ahead resilience of the node-joint multipath
// scheme. Connecting every column-j holder to every column-(j+1) holder does
// not change the key replication structure, so Rr is Equation (1) unchanged.
func JointRr(p float64, k, l int) float64 {
	return DisjointRr(p, k, l)
}

// JointRd evaluates Equation (3): the drop resilience of the node-joint
// scheme. The onion survives a column unless all k of its holders are
// malicious, and must survive all l columns.
func JointRd(p float64, k, l int) float64 {
	validateP(p)
	validateShape(k, l)
	return math.Pow(1-math.Pow(p, float64(k)), float64(l))
}

// Joint returns both resiliences of the node-joint multipath scheme.
func Joint(p float64, k, l int) Resilience {
	return Resilience{ReleaseAhead: JointRr(p, k, l), Drop: JointRd(p, k, l)}
}

func validateShape(k, l int) {
	if k < 1 || l < 1 {
		panic(fmt.Sprintf("analytic: path shape k=%d l=%d must be >= 1", k, l))
	}
}
