package analytic

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCentralResilience(t *testing.T) {
	for _, p := range []float64{0, 0.1, 0.5, 1} {
		r := Central(p)
		if r.ReleaseAhead != 1-p || r.Drop != 1-p {
			t.Errorf("Central(%v) = %+v", p, r)
		}
	}
}

func TestDisjointMatchesHandComputation(t *testing.T) {
	// k=2, l=3, p=0.2 (the running example of Section III-B).
	const p, k, l = 0.2, 2, 3
	wantRr := 1 - math.Pow(1-math.Pow(1-p, k), l) // Eq. (1)
	wantRd := 1 - math.Pow(1-math.Pow(1-p, l), k) // Eq. (2)
	got := Disjoint(p, k, l)
	if math.Abs(got.ReleaseAhead-wantRr) > 1e-15 {
		t.Errorf("Rr = %v, want %v", got.ReleaseAhead, wantRr)
	}
	if math.Abs(got.Drop-wantRd) > 1e-15 {
		t.Errorf("Rd = %v, want %v", got.Drop, wantRd)
	}
}

func TestJointRdMatchesEq3(t *testing.T) {
	tests := []struct {
		p    float64
		k, l int
		want float64
	}{
		{0.2, 2, 3, math.Pow(1-0.04, 3)},
		{0.5, 1, 1, 0.5},
		{0.3, 4, 10, math.Pow(1-math.Pow(0.3, 4), 10)},
	}
	for _, tc := range tests {
		if got := JointRd(tc.p, tc.k, tc.l); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("JointRd(%v,%d,%d) = %v, want %v", tc.p, tc.k, tc.l, got, tc.want)
		}
	}
}

func TestSchemesDegenerateToCentral(t *testing.T) {
	// With k=1 paths of length l=1, every multipath scheme is the
	// centralized scheme.
	for _, p := range []float64{0, 0.25, 0.5, 0.9} {
		want := Central(p)
		if got := Disjoint(p, 1, 1); got != want {
			t.Errorf("Disjoint(%v,1,1) = %+v, want %+v", p, got, want)
		}
		if got := Joint(p, 1, 1); got != want {
			t.Errorf("Joint(%v,1,1) = %+v, want %+v", p, got, want)
		}
	}
}

func TestJointDominatesDisjointOnDrop(t *testing.T) {
	// Section III-C: node-joint routing can only improve drop resilience
	// while leaving release-ahead resilience unchanged.
	err := quick.Check(func(seed uint64) bool {
		p := float64(seed%101) / 100.0
		k := int(seed/101%6) + 1
		l := int(seed/707%8) + 1
		if JointRr(p, k, l) != DisjointRr(p, k, l) {
			return false
		}
		return JointRd(p, k, l) >= DisjointRd(p, k, l)-1e-12
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLemma1(t *testing.T) {
	// Lemma 1: for the node-joint scheme, Rr + Rd > 1 whenever p < 0.5.
	err := quick.Check(func(seed uint64) bool {
		p := float64(seed%50) / 100.0 // p in [0, 0.49]
		k := int(seed/50%8) + 1
		l := int(seed/400%10) + 1
		r := Joint(p, k, l)
		return r.ReleaseAhead+r.Drop > 1-1e-12
	}, &quick.Config{MaxCount: 1000})
	if err != nil {
		t.Fatal(err)
	}
}

func TestResilienceInUnitInterval(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		p := float64(seed%101) / 100.0
		k := int(seed/101%10) + 1
		l := int(seed/1010%10) + 1
		for _, v := range []float64{
			DisjointRr(p, k, l), DisjointRd(p, k, l), JointRd(p, k, l),
		} {
			if v < -1e-12 || v > 1+1e-12 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 1000})
	if err != nil {
		t.Fatal(err)
	}
}

func TestResilienceMonotoneInP(t *testing.T) {
	// More malicious nodes can never help the defender.
	const k, l = 3, 4
	prevRr, prevRd, prevJd := 1.0, 1.0, 1.0
	for p := 0.0; p <= 1.0; p += 0.01 {
		rr, rd, jd := DisjointRr(p, k, l), DisjointRd(p, k, l), JointRd(p, k, l)
		if rr > prevRr+1e-12 || rd > prevRd+1e-12 || jd > prevJd+1e-12 {
			t.Fatalf("resilience increased with p at p=%v", p)
		}
		prevRr, prevRd, prevJd = rr, rd, jd
	}
}

func TestValidatePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"negative p": func() { Central(-0.1) },
		"p above 1":  func() { Central(1.1) },
		"k zero":     func() { DisjointRr(0.5, 0, 3) },
		"l zero":     func() { JointRd(0.5, 3, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestMinHelper(t *testing.T) {
	r := Resilience{ReleaseAhead: 0.7, Drop: 0.9}
	if r.Min() != 0.7 {
		t.Errorf("Min = %v", r.Min())
	}
}
