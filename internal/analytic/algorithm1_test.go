package analytic

import (
	"math"
	"testing"
)

func validInput() KeyShareInput {
	return KeyShareInput{K: 2, L: 5, N: 1000, T: 3, Lambda: 1, P: 0.2}
}

func TestPlanKeyShareBasics(t *testing.T) {
	in := validInput()
	plan, err := PlanKeyShare(in)
	if err != nil {
		t.Fatal(err)
	}
	if plan.SharesN != in.N/in.L {
		t.Errorf("SharesN = %d, want %d", plan.SharesN, in.N/in.L)
	}
	wantPDead := 1 - math.Exp(-in.T/(in.Lambda*float64(in.L)))
	if math.Abs(plan.PDead-wantPDead) > 1e-12 {
		t.Errorf("PDead = %v, want %v", plan.PDead, wantPDead)
	}
	if len(plan.Columns) != in.L {
		t.Fatalf("got %d column plans, want %d", len(plan.Columns), in.L)
	}
	if plan.Columns[0].Pr != in.P || plan.Columns[0].Pd != in.P {
		t.Errorf("column 1 must start at pr=pd=p, got %+v", plan.Columns[0])
	}
	for i, col := range plan.Columns {
		if col.Column != i+1 {
			t.Errorf("column %d mislabeled as %d", i+1, col.Column)
		}
		if i > 0 {
			if col.M < 1 || col.M > col.N {
				t.Errorf("column %d threshold m=%d outside [1,%d]", col.Column, col.M, col.N)
			}
			if col.N != plan.SharesN {
				t.Errorf("column %d has n=%d, want %d", col.Column, col.N, plan.SharesN)
			}
		}
	}
	if plan.Result.ReleaseAhead < 0 || plan.Result.ReleaseAhead > 1 ||
		plan.Result.Drop < 0 || plan.Result.Drop > 1 {
		t.Errorf("resilience out of range: %+v", plan.Result)
	}
}

func TestPlanKeySharePrPdMonotoneAlongColumns(t *testing.T) {
	// "The farther away from the beginning a column is, the larger pr and pd
	// it will have" (Section III-D).
	plan, err := PlanKeyShare(validInput())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(plan.Columns); i++ {
		if plan.Columns[i].Pr < plan.Columns[i-1].Pr-1e-12 {
			t.Errorf("Pr decreased at column %d", i+1)
		}
		if plan.Columns[i].Pd < plan.Columns[i-1].Pd-1e-12 {
			t.Errorf("Pd decreased at column %d", i+1)
		}
	}
}

func TestPlanKeyShareChurnResilienceVsMultipath(t *testing.T) {
	// The headline claim (Figure 7): under heavy churn (T = 5*lambda) and
	// moderate adversaries, key share routing retains high resilience while
	// pre-assigned keys decay. We verify the plan's resilience stays high.
	in := KeyShareInput{K: 3, L: 10, N: 10000, T: 5, Lambda: 1, P: 0.2}
	plan, err := PlanKeyShare(in)
	if err != nil {
		t.Fatal(err)
	}
	if min := plan.Result.Min(); min < 0.9 {
		t.Errorf("share-scheme resilience %v under churn, want >= 0.9", min)
	}
}

func TestPlanKeyShareMoreNodesNeverHurt(t *testing.T) {
	base := validInput()
	prev := -1.0
	for _, n := range []int{100, 1000, 5000, 10000} {
		in := base
		in.N = n
		plan, err := PlanKeyShare(in)
		if err != nil {
			t.Fatal(err)
		}
		got := plan.Result.Min()
		if got < prev-0.02 { // small tolerance: integer thresholds are not perfectly monotone
			t.Errorf("resilience dropped from %v to %v when N grew to %d", prev, got, n)
		}
		prev = got
	}
}

func TestPlanKeyShareValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*KeyShareInput)
	}{
		{"k zero", func(in *KeyShareInput) { in.K = 0 }},
		{"l zero", func(in *KeyShareInput) { in.L = 0 }},
		{"N below l", func(in *KeyShareInput) { in.N = 2; in.L = 5 }},
		{"non-positive T", func(in *KeyShareInput) { in.T = 0 }},
		{"non-positive lambda", func(in *KeyShareInput) { in.Lambda = -1 }},
		{"p out of range", func(in *KeyShareInput) { in.P = 1.5 }},
	}
	for _, tc := range tests {
		in := validInput()
		tc.mutate(&in)
		if _, err := PlanKeyShare(in); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestChooseThresholdBalances(t *testing.T) {
	// The chosen m should make release and drop success rates close; any
	// neighbouring m must not be strictly better.
	n, d, p := 50, 10, 0.25
	m, release, drop := chooseThreshold(n, d, p)
	dif := func(m int) float64 {
		return math.Abs(BinomialTail(n, p, m) - BinomialTail(n-d, p, n-d-m+1))
	}
	best := dif(m)
	for _, alt := range []int{m - 1, m + 1} {
		if alt >= 1 && alt <= n && dif(alt) < best-1e-15 {
			t.Errorf("m=%d has dif %v but m=%d gives %v", m, best, alt, dif(alt))
		}
	}
	if math.Abs(release-BinomialTail(n, p, m)) > 1e-9 {
		t.Errorf("returned release %v != tail %v", release, BinomialTail(n, p, m))
	}
	if math.Abs(drop-BinomialTail(n-d, p, n-d-m+1)) > 1e-9 {
		t.Errorf("returned drop %v != tail %v", drop, BinomialTail(n-d, p, n-d-m+1))
	}
}
