package analytic

import (
	"math"
	"testing"
	"testing/quick"
)

// naiveTail computes P[X >= m] by direct summation of C(n,i)p^i(1-p)^(n-i)
// using float multiplication; valid for small n.
func naiveTail(n int, p float64, m int) float64 {
	sum := 0.0
	for i := m; i <= n; i++ {
		c := 1.0
		for j := 0; j < i; j++ {
			c = c * float64(n-j) / float64(j+1)
		}
		sum += c * math.Pow(p, float64(i)) * math.Pow(1-p, float64(n-i))
	}
	return sum
}

func TestBinomialTailSmallCases(t *testing.T) {
	tests := []struct {
		n int
		p float64
		m int
	}{
		{1, 0.3, 1}, {2, 0.5, 1}, {5, 0.2, 3}, {10, 0.7, 7},
		{20, 0.1, 1}, {20, 0.9, 20}, {15, 0.45, 8},
	}
	for _, tc := range tests {
		got := BinomialTail(tc.n, tc.p, tc.m)
		want := naiveTail(tc.n, tc.p, tc.m)
		if math.Abs(got-want) > 1e-10 {
			t.Errorf("BinomialTail(%d,%v,%d) = %v, want %v", tc.n, tc.p, tc.m, got, want)
		}
	}
}

func TestBinomialTailEdges(t *testing.T) {
	if got := BinomialTail(10, 0.3, 0); got != 1 {
		t.Errorf("m=0: got %v, want 1", got)
	}
	if got := BinomialTail(10, 0.3, 11); got != 0 {
		t.Errorf("m>n: got %v, want 0", got)
	}
	if got := BinomialTail(10, 0, 1); got != 0 {
		t.Errorf("p=0: got %v, want 0", got)
	}
	if got := BinomialTail(10, 1, 10); got != 1 {
		t.Errorf("p=1 m=n: got %v, want 1", got)
	}
	if got := BinomialTail(0, 0.5, 0); got != 1 {
		t.Errorf("n=0 m=0: got %v, want 1", got)
	}
}

func TestBinomialTailLargeNStable(t *testing.T) {
	// Must not overflow/underflow to NaN for very large n.
	for _, n := range []int{1000, 10000, 50000} {
		for _, p := range []float64{0.01, 0.3, 0.5, 0.99} {
			for _, mFrac := range []float64{0.1, 0.5, 0.9} {
				m := int(mFrac * float64(n))
				got := BinomialTail(n, p, m)
				if math.IsNaN(got) || got < 0 || got > 1 {
					t.Fatalf("BinomialTail(%d,%v,%d) = %v out of [0,1]", n, p, m, got)
				}
			}
		}
	}
	// Central limit sanity: P[X >= mean] ~ 0.5 for large n.
	got := BinomialTail(10000, 0.3, 3000)
	if math.Abs(got-0.5) > 0.02 {
		t.Errorf("P[Bin(10000,0.3) >= 3000] = %v, want ~0.5", got)
	}
}

func TestBinomialTailMonotonicInM(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		n := int(seed%30) + 1
		p := float64(seed%97) / 96.0
		prev := 1.1
		for m := 0; m <= n+1; m++ {
			cur := BinomialTail(n, p, m)
			if cur > prev+1e-12 {
				return false
			}
			prev = cur
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestBinomialPMFSumsToOne(t *testing.T) {
	for _, n := range []int{1, 5, 40} {
		for _, p := range []float64{0.1, 0.5, 0.93} {
			sum := 0.0
			for i := 0; i <= n; i++ {
				sum += BinomialPMF(n, p, i)
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Errorf("sum of pmf(n=%d,p=%v) = %v", n, p, sum)
			}
		}
	}
}

func TestBinomialPMFOutOfRange(t *testing.T) {
	if got := BinomialPMF(5, 0.5, -1); got != 0 {
		t.Errorf("i=-1: got %v", got)
	}
	if got := BinomialPMF(5, 0.5, 6); got != 0 {
		t.Errorf("i>n: got %v", got)
	}
}
