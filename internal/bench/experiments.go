package bench

import (
	"fmt"

	"selfemerge/internal/core"
	"selfemerge/internal/mc"
)

// Options tunes the experiment sweeps. The zero value reproduces the paper's
// setup: 1000 trials per point, malicious rate swept from 0 to 0.5.
type Options struct {
	Trials  int     // Monte Carlo trials per point; default 1000
	Seed    uint64  // base RNG seed
	PStep   float64 // malicious-rate grid step; default 0.02
	PMax    float64 // sweep upper bound; default 0.5
	Workers int     // default GOMAXPROCS
	// IncludePredicted appends the closed-form (Equations (1)-(3),
	// Algorithm 1) curves next to the measured ones, labelled "<scheme>/eq".
	IncludePredicted bool
}

func (o Options) withDefaults() Options {
	if o.Trials == 0 {
		o.Trials = 1000
	}
	if o.PStep == 0 {
		o.PStep = 0.02
	}
	if o.PMax == 0 {
		o.PMax = 0.5
	}
	return o
}

func (o Options) grid() []float64 {
	var ps []float64
	// Build on integer steps to avoid floating-point drift in the grid.
	steps := int(o.PMax/o.PStep + 0.5)
	for i := 0; i <= steps; i++ {
		ps = append(ps, float64(i)*o.PStep)
	}
	return ps
}

func (o Options) mcOptions(pointIndex int) mc.Options {
	return mc.Options{
		Trials:  o.Trials,
		Seed:    o.Seed + uint64(pointIndex)*0x9e3779b97f4a7c15,
		Workers: o.Workers,
	}
}

// Figure6 reproduces Figure 6: attack resilience (panel a/c) and required
// nodes C (panel b/d) versus malicious rate p for the centralized,
// node-disjoint and node-joint schemes, in a DHT of the given network size
// (10,000 for panels a-b, 100 for panels c-d). No churn.
func Figure6(network int, opts Options) (resilience, cost Figure, err error) {
	opts = opts.withDefaults()
	grid := opts.grid()
	schemes := []core.Scheme{core.SchemeCentral, core.SchemeDisjoint, core.SchemeJoint}

	resilience = Figure{
		ID:     fmt.Sprintf("fig6-resilience-%d", network),
		Title:  fmt.Sprintf("attack resilience, %d nodes", network),
		XLabel: "p",
		YLabel: "R",
	}
	cost = Figure{
		ID:     fmt.Sprintf("fig6-cost-%d", network),
		Title:  fmt.Sprintf("required nodes, %d nodes", network),
		XLabel: "p",
		YLabel: "C",
	}

	for _, scheme := range schemes {
		measured := Series{Label: scheme.String()}
		costs := Series{Label: scheme.String()}
		predicted := Series{Label: scheme.String() + "/eq"}
		for i, p := range grid {
			plan, planErr := planFor(scheme, p, network, 0, 0)
			if planErr != nil {
				return Figure{}, Figure{}, planErr
			}
			env := mc.Env{Population: network, Malicious: malCount(p, network)}
			res, estErr := mc.Estimate(plan, env, opts.mcOptions(i))
			if estErr != nil {
				return Figure{}, Figure{}, estErr
			}
			measured.Points = append(measured.Points, Point{X: p, Y: res.MinR()})
			costs.Points = append(costs.Points, Point{X: p, Y: float64(plan.NodesRequired())})
			predicted.Points = append(predicted.Points, Point{X: p, Y: plan.Predicted.Min()})
		}
		resilience.Series = append(resilience.Series, measured)
		cost.Series = append(cost.Series, costs)
		if opts.IncludePredicted {
			resilience.Series = append(resilience.Series, predicted)
		}
	}
	return resilience, cost, nil
}

// Figure7 reproduces one panel of Figure 7: combined resilience R versus p
// under churn, with the emerging period T equal to alpha mean node
// lifetimes, for all four schemes in a 10,000-node DHT.
func Figure7(alpha float64, opts Options) (Figure, error) {
	opts = opts.withDefaults()
	const network = 10000
	grid := opts.grid()
	fig := Figure{
		ID:     fmt.Sprintf("fig7-alpha%g", alpha),
		Title:  fmt.Sprintf("churn resilience, alpha = %g", alpha),
		XLabel: "p",
		YLabel: "R",
	}
	schemes := []core.Scheme{core.SchemeCentral, core.SchemeDisjoint, core.SchemeJoint, core.SchemeKeyShare}
	for _, scheme := range schemes {
		series := Series{Label: scheme.String()}
		for i, p := range grid {
			plan, err := planFor(scheme, p, network, alpha, 1)
			if err != nil {
				return Figure{}, err
			}
			env := mc.Env{Population: network, Malicious: malCount(p, network), Alpha: alpha}
			res, err := mc.Estimate(plan, env, opts.mcOptions(i))
			if err != nil {
				return Figure{}, err
			}
			series.Points = append(series.Points, Point{X: p, Y: res.R()})
		}
		fig.Series = append(fig.Series, series)
	}
	return fig, nil
}

// Figure8 reproduces Figure 8: combined resilience of the key share routing
// scheme at alpha = 3 versus p, when only 100 / 1000 / 5000 / 10000 of the
// 10,000 DHT nodes are available to construct the share-routing paths.
func Figure8(opts Options) (Figure, error) {
	opts = opts.withDefaults()
	const network = 10000
	const alpha = 3.0
	grid := opts.grid()
	fig := Figure{
		ID:     "fig8",
		Title:  "key share routing cost (alpha = 3)",
		XLabel: "p",
		YLabel: "R",
	}
	for _, available := range []int{100, 1000, 5000, 10000} {
		series := Series{Label: fmt.Sprintf("%d", available)}
		for i, p := range grid {
			plan, err := core.PlanKeyShare(p, alpha, 1, core.PlannerConfig{Budget: available})
			if err != nil {
				return Figure{}, err
			}
			env := mc.Env{Population: network, Malicious: malCount(p, network), Alpha: alpha}
			res, err := mc.Estimate(plan, env, opts.mcOptions(i))
			if err != nil {
				return Figure{}, err
			}
			series.Points = append(series.Points, Point{X: p, Y: res.R()})
		}
		fig.Series = append(fig.Series, series)
	}
	return fig, nil
}

// planFor sizes scheme for malicious rate p under a node budget; alpha and
// lifetime are used only by the key share scheme's Algorithm 1.
func planFor(scheme core.Scheme, p float64, budget int, alpha, lifetime float64) (core.Plan, error) {
	switch scheme {
	case core.SchemeCentral:
		return core.PlanCentral(p), nil
	case core.SchemeDisjoint, core.SchemeJoint:
		return core.PlanMultipath(scheme, p, core.PlannerConfig{Budget: budget})
	case core.SchemeKeyShare:
		if alpha <= 0 {
			alpha = 1
		}
		if lifetime <= 0 {
			lifetime = 1
		}
		return core.PlanKeyShare(p, alpha, lifetime, core.PlannerConfig{Budget: budget})
	default:
		return core.Plan{}, fmt.Errorf("bench: unknown scheme %v", scheme)
	}
}

func malCount(p float64, network int) int {
	return int(p * float64(network))
}
