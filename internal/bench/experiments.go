package bench

import (
	"fmt"

	"selfemerge/internal/core"
	"selfemerge/internal/experiment"
)

// Options tunes the experiment sweeps. The zero value reproduces the paper's
// setup: 1000 trials per point, malicious rate swept from 0 to 0.5.
type Options struct {
	Trials  int     // Monte Carlo trials per point; default 1000
	Seed    uint64  // base RNG seed
	PStep   float64 // malicious-rate grid step; default 0.02
	PMax    float64 // sweep upper bound; default 0.5
	Workers int     // per-point Monte Carlo workers; default GOMAXPROCS
	// IncludePredicted appends the closed-form (Equations (1)-(3),
	// Algorithm 1) curves next to the measured ones, labelled "<scheme>/eq".
	IncludePredicted bool
}

func (o Options) withDefaults() Options {
	if o.Trials == 0 {
		o.Trials = 1000
	}
	if o.PStep == 0 {
		o.PStep = 0.02
	}
	if o.PMax == 0 {
		o.PMax = 0.5
	}
	return o
}

// runner builds the shared experiment runner every figure sweep executes on.
// Points run sequentially (Parallel 1): each point's Monte Carlo estimate
// already spreads its trials over o.Workers (default GOMAXPROCS), exactly
// the pre-runner execution profile — point-level parallelism on top would
// square the goroutine count without adding throughput and perturb the
// per-point trial partition the historical figure series were sampled with.
func (o Options) runner() experiment.Runner {
	return experiment.Runner{
		Estimator: experiment.MonteCarlo{Trials: o.Trials, Workers: o.Workers},
		Parallel:  1,
	}
}

// pAxis is the malicious-rate X axis common to every figure.
func (o Options) pAxis() experiment.Axis {
	return experiment.RangeAxis("p", 0, o.PMax, o.PStep)
}

// seriesOf projects one sweep series onto a figure curve via y.
func seriesOf(label string, results []experiment.Result, y func(experiment.Result) float64) Series {
	s := Series{Label: label}
	for _, r := range results {
		s.Points = append(s.Points, Point{X: r.Point.X, Y: y(r)})
	}
	return s
}

// Figure6 reproduces Figure 6: attack resilience (panel a/c) and required
// nodes C (panel b/d) versus malicious rate p for the centralized,
// node-disjoint and node-joint schemes, in a DHT of the given network size
// (10,000 for panels a-b, 100 for panels c-d). No churn.
func Figure6(network int, opts Options) (resilience, cost Figure, err error) {
	opts = opts.withDefaults()
	rs, err := opts.runner().Run(experiment.Sweep{
		Name: fmt.Sprintf("fig6-%d", network),
		Seed: opts.Seed,
		Base: experiment.Point{Network: network},
		Axes: []experiment.Axis{
			opts.pAxis(),
			experiment.SchemeAxis(core.SchemeCentral, core.SchemeDisjoint, core.SchemeJoint),
		},
	})
	if err != nil {
		return Figure{}, Figure{}, err
	}

	resilience = Figure{
		ID:     fmt.Sprintf("fig6-resilience-%d", network),
		Title:  fmt.Sprintf("attack resilience, %d nodes", network),
		XLabel: "p",
		YLabel: "R",
	}
	cost = Figure{
		ID:     fmt.Sprintf("fig6-cost-%d", network),
		Title:  fmt.Sprintf("required nodes, %d nodes", network),
		XLabel: "p",
		YLabel: "C",
	}
	for _, series := range rs.SeriesResults() {
		label := series[0].Point.Series
		resilience.Series = append(resilience.Series, seriesOf(label, series, experiment.Result.MinR))
		cost.Series = append(cost.Series, seriesOf(label, series, func(r experiment.Result) float64 {
			return float64(r.Cost)
		}))
		if opts.IncludePredicted {
			resilience.Series = append(resilience.Series, seriesOf(label+"/eq", series,
				func(r experiment.Result) float64 { return r.Predicted.Min() }))
		}
	}
	return resilience, cost, nil
}

// Figure7 reproduces one panel of Figure 7: combined resilience R versus p
// under churn, with the emerging period T equal to alpha mean node
// lifetimes, for all four schemes in a 10,000-node DHT.
func Figure7(alpha float64, opts Options) (Figure, error) {
	opts = opts.withDefaults()
	rs, err := opts.runner().Run(experiment.Sweep{
		Name: fmt.Sprintf("fig7-alpha%g", alpha),
		Seed: opts.Seed,
		Base: experiment.Point{Network: 10000, Alpha: alpha},
		Axes: []experiment.Axis{
			opts.pAxis(),
			experiment.SchemeAxis(core.SchemeCentral, core.SchemeDisjoint, core.SchemeJoint, core.SchemeKeyShare),
		},
	})
	if err != nil {
		return Figure{}, err
	}
	fig := Figure{
		ID:     fmt.Sprintf("fig7-alpha%g", alpha),
		Title:  fmt.Sprintf("churn resilience, alpha = %g", alpha),
		XLabel: "p",
		YLabel: "R",
	}
	for _, series := range rs.SeriesResults() {
		fig.Series = append(fig.Series, seriesOf(series[0].Point.Series, series,
			func(r experiment.Result) float64 { return r.R }))
	}
	return fig, nil
}

// Figure8 reproduces Figure 8: combined resilience of the key share routing
// scheme at alpha = 3 versus p, when only 100 / 1000 / 5000 / 10000 of the
// 10,000 DHT nodes are available to construct the share-routing paths.
func Figure8(opts Options) (Figure, error) {
	opts = opts.withDefaults()
	rs, err := opts.runner().Run(experiment.Sweep{
		Name: "fig8",
		Seed: opts.Seed,
		Base: experiment.Point{Network: 10000, Alpha: 3, Scheme: core.SchemeKeyShare},
		Axes: []experiment.Axis{
			opts.pAxis(),
			experiment.IntAxis("budget", 100, 1000, 5000, 10000),
		},
	})
	if err != nil {
		return Figure{}, err
	}
	fig := Figure{
		ID:     "fig8",
		Title:  "key share routing cost (alpha = 3)",
		XLabel: "p",
		YLabel: "R",
	}
	for _, series := range rs.SeriesResults() {
		fig.Series = append(fig.Series, seriesOf(series[0].Point.Series, series,
			func(r experiment.Result) float64 { return r.R }))
	}
	return fig, nil
}
