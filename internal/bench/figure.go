// Package bench regenerates every figure of the paper's evaluation
// (Section IV): the attack-resilience and node-cost sweeps of Figure 6, the
// churn-resilience sweeps of Figure 7, and the key-share cost sweep of
// Figure 8. Each generator returns a Figure — labelled series over the
// malicious-rate axis — that can be rendered as CSV or an ASCII table, and
// is exercised by the bench_test.go benchmarks at the repository root.
package bench

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Point is one (x, y) sample of a series.
type Point struct {
	X float64
	Y float64
}

// Series is one labelled curve of a figure.
type Series struct {
	Label  string
	Points []Point
}

// Figure is a reproduction of one paper figure panel.
type Figure struct {
	ID     string // e.g. "fig6a"
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// WriteCSV renders the figure as CSV with a shared x column. All series must
// be sampled on the same x grid (the generators in this package guarantee
// it).
func (f Figure) WriteCSV(w io.Writer) error {
	labels := make([]string, 0, len(f.Series)+1)
	labels = append(labels, f.XLabel)
	for _, s := range f.Series {
		labels = append(labels, s.Label)
	}
	if _, err := fmt.Fprintf(w, "%s\n", strings.Join(labels, ",")); err != nil {
		return err
	}
	if len(f.Series) == 0 {
		return nil
	}
	for i, pt := range f.Series[0].Points {
		row := make([]string, 0, len(f.Series)+1)
		row = append(row, fmt.Sprintf("%.4g", pt.X))
		for _, s := range f.Series {
			if i >= len(s.Points) || s.Points[i].X != pt.X {
				return fmt.Errorf("bench: series %q not aligned with %q at row %d", s.Label, f.Series[0].Label, i)
			}
			row = append(row, fmt.Sprintf("%.6g", s.Points[i].Y))
		}
		if _, err := fmt.Fprintf(w, "%s\n", strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// WriteTable renders the figure as a fixed-width ASCII table with a title,
// the human-friendly form printed by cmd/emergesim.
func (f Figure) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s — %s\n", f.ID, f.Title); err != nil {
		return err
	}
	header := fmt.Sprintf("%8s", f.XLabel)
	for _, s := range f.Series {
		header += fmt.Sprintf(" %12s", s.Label)
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	if len(f.Series) == 0 {
		return nil
	}
	for i, pt := range f.Series[0].Points {
		row := fmt.Sprintf("%8.3f", pt.X)
		for _, s := range f.Series {
			if i >= len(s.Points) {
				return fmt.Errorf("bench: series %q shorter than %q", s.Label, f.Series[0].Label)
			}
			row += fmt.Sprintf(" %12.4f", s.Points[i].Y)
		}
		if _, err := fmt.Fprintln(w, row); err != nil {
			return err
		}
	}
	return nil
}

// SeriesByLabel returns the series with the given label.
func (f Figure) SeriesByLabel(label string) (Series, bool) {
	for _, s := range f.Series {
		if s.Label == label {
			return s, true
		}
	}
	return Series{}, false
}

// ValueAt returns the y value of the series at the x closest to want.
func (s Series) ValueAt(want float64) float64 {
	best := math.Inf(1)
	var y float64
	for _, pt := range s.Points {
		if d := math.Abs(pt.X - want); d < best {
			best = d
			y = pt.Y
		}
	}
	return y
}
