package bench

import (
	"bytes"
	"strings"
	"testing"
)

// Coarse, fast settings for CI; cmd/emergesim runs the full-resolution
// sweeps.
func fastOpts() Options {
	return Options{Trials: 400, PStep: 0.1, Seed: 7}
}

func TestFigure6ShapesAt10000(t *testing.T) {
	res, cost, err := Figure6(10000, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	central, ok := res.SeriesByLabel("central")
	if !ok {
		t.Fatal("missing central series")
	}
	disjoint, _ := res.SeriesByLabel("disjoint")
	joint, _ := res.SeriesByLabel("joint")

	// Centralized baseline is 1-p everywhere (within MC noise).
	for _, pt := range central.Points {
		if diff := pt.Y - (1 - pt.X); diff > 0.06 || diff < -0.06 {
			t.Errorf("central at p=%v: R=%v, want ~%v", pt.X, pt.Y, 1-pt.X)
		}
	}
	// Paper: joint keeps R > 0.99 before p = 0.34 and > 0.9 before 0.42.
	if got := joint.ValueAt(0.3); got < 0.98 {
		t.Errorf("joint R at p=0.3 = %v, want > 0.98", got)
	}
	if got := joint.ValueAt(0.4); got < 0.88 {
		t.Errorf("joint R at p=0.4 = %v, want > 0.88", got)
	}
	// Paper: disjoint holds > 0.9 through p = 0.18 then decays to baseline.
	if got := disjoint.ValueAt(0.1); got < 0.9 {
		t.Errorf("disjoint R at p=0.1 = %v, want > 0.9", got)
	}
	if got := disjoint.ValueAt(0.5); got > 0.58 {
		t.Errorf("disjoint R at p=0.5 = %v, want ~baseline 0.5", got)
	}
	// Ordering: joint >= disjoint (within noise) everywhere.
	for i := range joint.Points {
		if joint.Points[i].Y < disjoint.Points[i].Y-0.05 {
			t.Errorf("p=%v: joint %v < disjoint %v", joint.Points[i].X, joint.Points[i].Y, disjoint.Points[i].Y)
		}
	}

	// Cost panel: central constant 1; joint cost explodes past p=0.15.
	centralCost, _ := cost.SeriesByLabel("central")
	for _, pt := range centralCost.Points {
		if pt.Y != 1 {
			t.Errorf("central cost at p=%v = %v", pt.X, pt.Y)
		}
	}
	jointCost, _ := cost.SeriesByLabel("joint")
	if got := jointCost.ValueAt(0.3); got < 1000 {
		t.Errorf("joint cost at p=0.3 = %v, want > 1000", got)
	}
	if got := jointCost.ValueAt(0.1); got > 200 {
		t.Errorf("joint cost at p=0.1 = %v, want modest (< 200)", got)
	}
}

func TestFigure6SmallNetwork(t *testing.T) {
	res, cost, err := Figure6(100, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	joint, _ := res.SeriesByLabel("joint")
	// Paper: even at N=100 the joint scheme "still keeps good attack
	// resilience".
	if got := joint.ValueAt(0.2); got < 0.9 {
		t.Errorf("joint R at p=0.2, N=100 = %v, want > 0.9", got)
	}
	jointCost, _ := cost.SeriesByLabel("joint")
	for _, pt := range jointCost.Points {
		if pt.Y > 100 {
			t.Errorf("joint cost %v exceeds the 100-node network", pt.Y)
		}
	}
}

func TestFigure7ShareDominatesUnderChurn(t *testing.T) {
	fig, err := Figure7(3, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	share, ok := fig.SeriesByLabel("share")
	if !ok {
		t.Fatal("missing share series")
	}
	joint, _ := fig.SeriesByLabel("joint")
	central, _ := fig.SeriesByLabel("central")

	// Paper: share keeps nearly unchanged high resilience for p < 0.3.
	if got := share.ValueAt(0.2); got < 0.85 {
		t.Errorf("share R at p=0.2 alpha=3 = %v, want > 0.85", got)
	}
	// All other schemes collapse under churn at alpha=3.
	if got := central.ValueAt(0.1); got > 0.2 {
		t.Errorf("central R at alpha=3 = %v, want < 0.2 (exp(-3) ~ 0.05)", got)
	}
	if share.ValueAt(0.2) <= joint.ValueAt(0.2) {
		t.Errorf("share (%v) should beat joint (%v) at p=0.2 alpha=3",
			share.ValueAt(0.2), joint.ValueAt(0.2))
	}
}

func TestFigure8CostOrdering(t *testing.T) {
	fig, err := Figure8(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	n100, _ := fig.SeriesByLabel("100")
	n1000, _ := fig.SeriesByLabel("1000")
	n10000, _ := fig.SeriesByLabel("10000")

	// Paper: the 10000-node curve dominates, 1000 keeps R > 0.95 up to
	// p ~ 0.26, and 100 keeps R > 0.9 up to p ~ 0.14.
	if got := n10000.ValueAt(0.2); got < 0.9 {
		t.Errorf("share R (10000 avail) at p=0.2 = %v, want > 0.9", got)
	}
	if got := n1000.ValueAt(0.2); got < 0.85 {
		t.Errorf("share R (1000 avail) at p=0.2 = %v, want > 0.85", got)
	}
	if got := n100.ValueAt(0.1); got < 0.8 {
		t.Errorf("share R (100 avail) at p=0.1 = %v, want > 0.8", got)
	}
	// Ordering at moderate p (tolerating MC noise).
	if n10000.ValueAt(0.3) < n100.ValueAt(0.3)-0.05 {
		t.Errorf("10000-node curve below 100-node curve at p=0.3")
	}
}

func TestFigureRendering(t *testing.T) {
	fig := Figure{
		ID: "test", Title: "demo", XLabel: "p", YLabel: "R",
		Series: []Series{
			{Label: "a", Points: []Point{{0, 1}, {0.5, 0.8}}},
			{Label: "b", Points: []Point{{0, 0.9}, {0.5, 0.7}}},
		},
	}
	var csv bytes.Buffer
	if err := fig.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	want := "p,a,b\n0,1\n" // prefix check
	if !strings.HasPrefix(csv.String(), "p,a,b\n") {
		t.Errorf("CSV header wrong: %q (want prefix %q)", csv.String(), want)
	}
	if !strings.Contains(csv.String(), "0.5,0.8,0.7") {
		t.Errorf("CSV rows wrong: %q", csv.String())
	}
	var tbl bytes.Buffer
	if err := fig.WriteTable(&tbl); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl.String(), "demo") || !strings.Contains(tbl.String(), "0.8000") {
		t.Errorf("table rendering wrong: %q", tbl.String())
	}
}

func TestFigureRenderingMisaligned(t *testing.T) {
	fig := Figure{
		XLabel: "p",
		Series: []Series{
			{Label: "a", Points: []Point{{0, 1}, {0.5, 0.8}}},
			{Label: "b", Points: []Point{{0, 0.9}}},
		},
	}
	var buf bytes.Buffer
	if err := fig.WriteCSV(&buf); err == nil {
		t.Error("misaligned series accepted by WriteCSV")
	}
	if err := fig.WriteTable(&buf); err == nil {
		t.Error("misaligned series accepted by WriteTable")
	}
}

func TestOptionsGrid(t *testing.T) {
	o := Options{PStep: 0.25, PMax: 0.5}.withDefaults()
	grid := o.pAxis().Labels()
	want := []string{"0", "0.25", "0.5"}
	if len(grid) != len(want) {
		t.Fatalf("grid = %v", grid)
	}
	for i := range want {
		if grid[i] != want[i] {
			t.Errorf("grid[%d] = %v, want %v", i, grid[i], want[i])
		}
	}
}

func TestSeriesValueAt(t *testing.T) {
	s := Series{Points: []Point{{0, 1}, {0.2, 0.9}, {0.4, 0.5}}}
	if got := s.ValueAt(0.19); got != 0.9 {
		t.Errorf("ValueAt(0.19) = %v", got)
	}
	if got := s.ValueAt(10); got != 0.5 {
		t.Errorf("ValueAt(10) = %v", got)
	}
}

func TestFigure6IncludePredicted(t *testing.T) {
	opts := fastOpts()
	opts.IncludePredicted = true
	opts.PStep = 0.25
	res, _, err := Figure6(10000, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.SeriesByLabel("joint/eq"); !ok {
		t.Error("predicted series missing")
	}
}
