package bench

import (
	"bytes"
	"testing"

	"selfemerge/internal/testutil"
)

// regressOpts pins every source of randomness: a fixed seed and a single
// Monte Carlo worker, so the series are identical across machines. The
// golden files were generated from the pre-experiment-runner figure loops;
// the sweep-based generators must reproduce them byte for byte.
func regressOpts() Options {
	return Options{Trials: 200, PStep: 0.1, Seed: 7, Workers: 1, IncludePredicted: true}
}

func renderCSV(t *testing.T, fig Figure) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := fig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func renderTable(t *testing.T, fig Figure) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := fig.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFigure6RegressionGolden locks the Figure 6 series (measured,
// closed-form and node-cost, both network sizes) to the pre-refactor output.
func TestFigure6RegressionGolden(t *testing.T) {
	for _, network := range []int{10000, 100} {
		res, cost, err := Figure6(network, regressOpts())
		if err != nil {
			t.Fatal(err)
		}
		testutil.Golden(t, res.ID+".csv", renderCSV(t, res))
		testutil.Golden(t, cost.ID+".csv", renderCSV(t, cost))
		// The ASCII table shares the golden treatment (satellite: emitter
		// coverage) on the larger panel only; the CSVs cover the numbers.
		if network == 10000 {
			testutil.Golden(t, res.ID+".table", renderTable(t, res))
		}
	}
}

// TestFigure7RegressionGolden locks one churn panel (alpha = 3).
func TestFigure7RegressionGolden(t *testing.T) {
	fig, err := Figure7(3, regressOpts())
	if err != nil {
		t.Fatal(err)
	}
	testutil.Golden(t, fig.ID+".csv", renderCSV(t, fig))
	testutil.Golden(t, fig.ID+".table", renderTable(t, fig))
}

// TestFigure8RegressionGolden locks the key-share cost sweep.
func TestFigure8RegressionGolden(t *testing.T) {
	fig, err := Figure8(regressOpts())
	if err != nil {
		t.Fatal(err)
	}
	testutil.Golden(t, fig.ID+".csv", renderCSV(t, fig))
}
