package churn

import (
	"math"
	"testing"
	"time"

	"selfemerge/internal/sim"
	"selfemerge/internal/stats"
)

func TestSampleLifetimeMean(t *testing.T) {
	s := sim.NewSimulator()
	p := New(s, Config{MeanLifetime: time.Hour, Seed: 1})
	var sum stats.Summary
	for i := 0; i < 50000; i++ {
		sum.Add(float64(p.SampleLifetime()))
	}
	want := float64(time.Hour)
	if math.Abs(sum.Mean()-want) > 0.03*want {
		t.Errorf("mean lifetime = %v, want ~%v", time.Duration(sum.Mean()), time.Hour)
	}
}

func TestScheduleDeathFires(t *testing.T) {
	s := sim.NewSimulator()
	p := New(s, Config{MeanLifetime: time.Hour, Seed: 2})
	died := false
	timer, life := p.ScheduleDeath(func() { died = true })
	if timer == nil || life <= 0 {
		t.Fatal("no timer scheduled")
	}
	s.Run()
	if !died {
		t.Fatal("death never fired")
	}
}

func TestScheduleDeathDisabled(t *testing.T) {
	s := sim.NewSimulator()
	p := New(s, Config{})
	timer, life := p.ScheduleDeath(func() { t.Error("death fired with churn disabled") })
	if timer != nil || life != 0 {
		t.Fatal("expected nil timer")
	}
	s.Run()
}

func TestScheduleDeathCancel(t *testing.T) {
	s := sim.NewSimulator()
	p := New(s, Config{MeanLifetime: time.Hour, Seed: 3})
	timer, _ := p.ScheduleDeath(func() { t.Error("cancelled death fired") })
	timer.Stop()
	s.Run()
}

func TestManageAvailabilityFlaps(t *testing.T) {
	s := sim.NewSimulator()
	p := New(s, Config{MeanUptime: time.Hour, MeanDowntime: 10 * time.Minute, Seed: 4})
	transitions := 0
	down := false
	stop := p.ManageAvailability(func(d bool) {
		if d == down {
			t.Fatal("non-alternating availability transition")
		}
		down = d
		transitions++
	})
	s.RunUntil(s.Now().Add(24 * time.Hour))
	if transitions < 5 {
		t.Fatalf("only %d transitions in 24h", transitions)
	}
	stop()
	before := transitions
	s.RunUntil(s.Now().Add(24 * time.Hour))
	// One already-queued transition may fire; no sustained flapping.
	if transitions > before+1 {
		t.Fatalf("flapping continued after stop: %d -> %d", before, transitions)
	}
}

func TestManageAvailabilityDisabled(t *testing.T) {
	s := sim.NewSimulator()
	p := New(s, Config{})
	stop := p.ManageAvailability(func(bool) { t.Error("transition with flapping disabled") })
	s.RunUntil(s.Now().Add(time.Hour))
	stop()
}
