// Package churn drives node lifecycle dynamics in the event-driven DHT
// simulation, per Section II-C: permanent departures ("node death") with
// exponentially distributed lifetimes (the decay model of Bhagwan et al.
// the paper adopts), and transient unavailability (session up/down
// flapping).
package churn

import (
	"time"

	"selfemerge/internal/sim"
	"selfemerge/internal/stats"
)

// Config parameterizes a churn process.
type Config struct {
	// MeanLifetime is the average time until a node permanently leaves.
	// Zero disables deaths.
	MeanLifetime time.Duration
	// MeanUptime / MeanDowntime parameterize transient availability
	// flapping. Zero MeanDowntime disables flapping.
	MeanUptime   time.Duration
	MeanDowntime time.Duration
	// Seed seeds the process RNG.
	Seed uint64
}

// Process schedules churn events on a clock. It is not safe for concurrent
// use; drive it from the simulator goroutine.
type Process struct {
	clock sim.Clock
	rng   *stats.RNG
	cfg   Config
}

// New creates a churn process.
func New(clock sim.Clock, cfg Config) *Process {
	return &Process{clock: clock, rng: stats.NewRNG(cfg.Seed), cfg: cfg}
}

// SampleLifetime draws one exponential lifetime.
func (p *Process) SampleLifetime() time.Duration {
	if p.cfg.MeanLifetime <= 0 {
		return 0
	}
	return time.Duration(p.rng.Exp(float64(p.cfg.MeanLifetime)))
}

// ScheduleDeath arranges for die to run after an exponentially distributed
// lifetime. It returns the timer (stop it if the node is decommissioned by
// other means) and the sampled lifetime. With deaths disabled it returns
// (nil, 0) and never calls die.
func (p *Process) ScheduleDeath(die func()) (sim.Timer, time.Duration) {
	if p.cfg.MeanLifetime <= 0 {
		return nil, 0
	}
	life := p.SampleLifetime()
	return p.clock.AfterFunc(life, die), life
}

// ManageAvailability alternates setDown(true)/setDown(false) with
// exponential down- and uptimes, starting from up. It returns a stop
// function. With flapping disabled it is a no-op returning a no-op stop.
func (p *Process) ManageAvailability(setDown func(bool)) (stop func()) {
	if p.cfg.MeanDowntime <= 0 || p.cfg.MeanUptime <= 0 {
		return func() {}
	}
	stopped := false
	var timer sim.Timer
	var goDown, goUp func()
	goDown = func() {
		if stopped {
			return
		}
		setDown(true)
		timer = p.clock.AfterFunc(time.Duration(p.rng.Exp(float64(p.cfg.MeanDowntime))), goUp)
	}
	goUp = func() {
		if stopped {
			return
		}
		setDown(false)
		timer = p.clock.AfterFunc(time.Duration(p.rng.Exp(float64(p.cfg.MeanUptime))), goDown)
	}
	timer = p.clock.AfterFunc(time.Duration(p.rng.Exp(float64(p.cfg.MeanUptime))), goDown)
	return func() {
		stopped = true
		if timer != nil {
			timer.Stop()
		}
	}
}
