package experiment

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"selfemerge/internal/adversary"
	"selfemerge/internal/fault"
)

// csvHeader is the stable column set of WriteCSV. Wall-clock fields are
// deliberately absent: the CSV and JSON emitters are byte-deterministic for
// a fixed sweep and estimator, regardless of runner worker count.
var csvHeader = []string{
	"index", "series", "x",
	"scheme", "k", "l", "sharen", "replicas",
	"network", "budget", "p", "alpha", "attack", "seed",
	"samples", "released", "delivered", "succeeded",
	"rr", "rd", "r", "min_r", "cost", "pred_rr", "pred_rd",
	"ref_rr", "ref_rd", "agree_release", "agree_deliver", "deaths", "joins",
}

// faultHeader extends csvHeader for result sets that exercise the fault or
// retry knobs. Conditional so every recorded fault-free sweep keeps its
// historical bytes.
var faultHeader = []string{
	"fault", "fault_sev", "retry", "retries", "recovered", "dup_deliveries",
}

// hasFaultArm reports whether any point of the set turns a fault or retry
// knob, which is what switches the emitters onto the extended column set.
func (rs *ResultSet) hasFaultArm() bool {
	for _, res := range rs.Results {
		pt := res.Point
		if pt.Fault != fault.ProfileNone || pt.FaultSev != 0 || pt.Retry != 0 {
			return true
		}
	}
	return false
}

// loopHeader extends csvHeader for result sets measured on the partition
// engine, carrying its event-loop counters. Conditional like faultHeader so
// recorded non-partitioned sweeps keep their historical bytes.
var loopHeader = []string{
	"epochs", "idle_skips", "merge_allocs",
}

// hasLoopStats reports whether any result ran on the partition engine. The
// test is on the measured counters, not the point's Partition axis: an
// estimator-level Partition setting leaves the points untouched but still
// produces epochs.
func (rs *ResultSet) hasLoopStats() bool {
	for _, res := range rs.Results {
		if res.Epochs > 0 {
			return true
		}
	}
	return false
}

func fnum(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

// attackLabel names the point's adversary for the emitters: the strategy
// label, with the legacy Drop boolean folded in so pre-strategy sweeps emit
// the exact bytes they always did.
func attackLabel(pt Point) string {
	if pt.Strategy != adversary.StrategySpy {
		return pt.Strategy.String()
	}
	if pt.Drop {
		return "drop"
	}
	return "spy"
}

// WriteCSV renders one row per point, in grid order.
func (rs *ResultSet) WriteCSV(w io.Writer) error {
	header := csvHeader
	faultArm := rs.hasFaultArm()
	loopArm := rs.hasLoopStats()
	if faultArm || loopArm {
		header = append([]string(nil), csvHeader...)
	}
	if faultArm {
		header = append(header, faultHeader...)
	}
	if loopArm {
		header = append(header, loopHeader...)
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	for _, res := range rs.Results {
		pt := res.Point
		attack := attackLabel(pt)
		row := []string{
			strconv.Itoa(pt.Index), pt.Series, fnum(pt.X),
			res.Plan.Scheme.String(), strconv.Itoa(res.Plan.K), strconv.Itoa(res.Plan.L),
			strconv.Itoa(res.Plan.ShareN), strconv.Itoa(pt.Replicas),
			strconv.Itoa(pt.Network), strconv.Itoa(pt.Budget),
			fnum(pt.P), fnum(pt.Alpha), attack, strconv.FormatUint(pt.Seed, 10),
			strconv.Itoa(res.Samples), strconv.Itoa(res.Released),
			strconv.Itoa(res.Delivered), strconv.Itoa(res.Succeeded),
			fnum(res.Rr), fnum(res.Rd), fnum(res.R), fnum(res.MinR()),
			strconv.Itoa(res.Cost), fnum(res.Predicted.ReleaseAhead), fnum(res.Predicted.Drop),
		}
		if res.HasReference {
			row = append(row,
				fnum(res.RefRelease.Rr()), fnum(res.RefDeliver.Rd()),
				strconv.FormatBool(res.AgreeRelease), strconv.FormatBool(res.AgreeDeliver),
			)
		} else {
			row = append(row, "", "", "", "")
		}
		row = append(row, strconv.Itoa(res.Deaths), strconv.Itoa(res.Joins))
		if faultArm {
			row = append(row,
				pt.Fault.String(), fnum(pt.FaultSev), strconv.Itoa(pt.Retry),
				strconv.FormatUint(res.Retries, 10), strconv.FormatUint(res.Recovered, 10),
				strconv.FormatUint(res.Duplicates, 10),
			)
		}
		if loopArm {
			row = append(row,
				strconv.FormatUint(res.Epochs, 10), strconv.FormatUint(res.IdleSkips, 10),
				strconv.FormatUint(res.MergeAllocs, 10),
			)
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// sweepJSON / resultJSON define the stable JSON schema of WriteJSON.
type sweepJSON struct {
	Name      string       `json:"name,omitempty"`
	Estimator string       `json:"estimator"`
	Seed      uint64       `json:"seed"`
	Axes      []axisJSON   `json:"axes"`
	Results   []resultJSON `json:"results"`
}

type axisJSON struct {
	Name   string   `json:"name"`
	Values []string `json:"values"`
}

type resultJSON struct {
	Index  int     `json:"index"`
	Series string  `json:"series"`
	X      float64 `json:"x"`

	Scheme   string `json:"scheme"`
	K        int    `json:"k"`
	L        int    `json:"l"`
	ShareN   int    `json:"sharen"`
	ShareM   []int  `json:"sharem,omitempty"`
	Replicas int    `json:"replicas"`

	Network int     `json:"network"`
	Budget  int     `json:"budget"`
	P       float64 `json:"p"`
	Alpha   float64 `json:"alpha"`
	Attack  string  `json:"attack"`
	Seed    uint64  `json:"seed"`

	Samples   int     `json:"samples"`
	Released  int     `json:"released"`
	Delivered int     `json:"delivered"`
	Succeeded int     `json:"succeeded"`
	Rr        float64 `json:"rr"`
	Rd        float64 `json:"rd"`
	R         float64 `json:"r"`
	MinR      float64 `json:"min_r"`
	Cost      int     `json:"cost"`
	PredRr    float64 `json:"pred_rr"`
	PredRd    float64 `json:"pred_rd"`

	// The reference fields stay pointers with omitempty: absence means "no
	// reference was computed" (abstract estimators), which is distinct from
	// a measured zero.
	RefRr        *float64 `json:"ref_rr,omitempty"`
	RefRd        *float64 `json:"ref_rd,omitempty"`
	AgreeRelease *bool    `json:"agree_release,omitempty"`
	AgreeDeliver *bool    `json:"agree_deliver,omitempty"`
	Deaths       int      `json:"deaths"`
	Joins        int      `json:"joins"`

	// Fault-injection / retry-hardening fields, all omitempty: absent on the
	// historical fault-free single-shot points, so recorded sweep JSON keeps
	// its exact bytes.
	Fault      string  `json:"fault,omitempty"`
	FaultSev   float64 `json:"fault_sev,omitempty"`
	Retry      int     `json:"retry,omitempty"`
	Retries    uint64  `json:"retries,omitempty"`
	Recovered  uint64  `json:"recovered,omitempty"`
	Duplicates uint64  `json:"dup_deliveries,omitempty"`

	// Partition event-loop counters, omitempty: absent on every point not
	// measured through the partition engine, so recorded sweep JSON keeps
	// its exact bytes. IdleSkips and MergeAllocs piggyback on Epochs > 0
	// (an engine run always executes at least one epoch) so a measured zero
	// still emits on partitioned points.
	Epochs      uint64  `json:"epochs,omitempty"`
	IdleSkips   *uint64 `json:"idle_skips,omitempty"`
	MergeAllocs *uint64 `json:"merge_allocs,omitempty"`
}

// WriteJSON renders the whole result set as one indented JSON document.
func (rs *ResultSet) WriteJSON(w io.Writer) error {
	doc := sweepJSON{
		Name:      rs.Sweep.Name,
		Estimator: rs.Estimator,
		Seed:      rs.Sweep.Seed,
	}
	for _, ax := range rs.Sweep.Axes {
		doc.Axes = append(doc.Axes, axisJSON{Name: ax.Name, Values: ax.Labels()})
	}
	for _, res := range rs.Results {
		pt := res.Point
		attack := attackLabel(pt)
		rj := resultJSON{
			Index: pt.Index, Series: pt.Series, X: pt.X,
			Scheme: res.Plan.Scheme.String(), K: res.Plan.K, L: res.Plan.L,
			ShareN: res.Plan.ShareN, ShareM: res.Plan.ShareM, Replicas: pt.Replicas,
			Network: pt.Network, Budget: pt.Budget, P: pt.P, Alpha: pt.Alpha,
			Attack: attack, Seed: pt.Seed,
			Samples: res.Samples, Released: res.Released,
			Delivered: res.Delivered, Succeeded: res.Succeeded,
			Rr: res.Rr, Rd: res.Rd, R: res.R, MinR: res.MinR(), Cost: res.Cost,
			PredRr: res.Predicted.ReleaseAhead, PredRd: res.Predicted.Drop,
			Deaths: res.Deaths, Joins: res.Joins,
		}
		if res.HasReference {
			refRr, refRd := res.RefRelease.Rr(), res.RefDeliver.Rd()
			agreeRel, agreeDel := res.AgreeRelease, res.AgreeDeliver
			rj.RefRr, rj.RefRd = &refRr, &refRd
			rj.AgreeRelease, rj.AgreeDeliver = &agreeRel, &agreeDel
		}
		if pt.Fault != fault.ProfileNone || pt.FaultSev != 0 || pt.Retry != 0 {
			// Only points with a turned knob name their profile: "none" is a
			// real label on fault arms but must stay absent (omitempty) on the
			// historical points.
			rj.Fault = pt.Fault.String()
			rj.FaultSev, rj.Retry = pt.FaultSev, pt.Retry
			rj.Retries, rj.Recovered, rj.Duplicates = res.Retries, res.Recovered, res.Duplicates
		}
		if res.Epochs > 0 {
			idle, mallocs := res.IdleSkips, res.MergeAllocs
			rj.Epochs = res.Epochs
			rj.IdleSkips, rj.MergeAllocs = &idle, &mallocs
		}
		doc.Results = append(doc.Results, rj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// WriteTable renders a fixed-width per-point table, the human-friendly form
// printed by cmd/emergesim.
func (rs *ResultSet) WriteTable(w io.Writer) error {
	name := rs.Sweep.Name
	if name == "" {
		name = "sweep"
	}
	if _, err := fmt.Fprintf(w, "%s — estimator=%s points=%d seed=%d\n",
		name, rs.Estimator, len(rs.Results), rs.Sweep.Seed); err != nil {
		return err
	}
	header := fmt.Sprintf("%-18s %8s %7s %7s %7s %7s %8s %8s", "series", "x", "Rr", "Rd", "R", "minR", "cost", "samples")
	hasRef := false
	for _, res := range rs.Results {
		hasRef = hasRef || res.HasReference
	}
	if hasRef {
		header += fmt.Sprintf(" %7s %7s %6s", "mc-Rr", "mc-Rd", "agree")
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	for _, res := range rs.Results {
		// X renders via fnum, not a fixed decimal count: integer axes
		// (network, budget) would overflow an %8.3f cell.
		row := fmt.Sprintf("%-18s %8s %7.3f %7.3f %7.3f %7.3f %8d %8d",
			res.Point.Series, fnum(res.Point.X), res.Rr, res.Rd, res.R, res.MinR(), res.Cost, res.Samples)
		if hasRef {
			if res.HasReference {
				agree := "ok"
				if !res.AgreeRelease || !res.AgreeDeliver {
					agree = "MISS"
				}
				row += fmt.Sprintf(" %7.3f %7.3f %6s", res.RefRelease.Rr(), res.RefDeliver.Rd(), agree)
			} else {
				row += fmt.Sprintf(" %7s %7s %6s", "-", "-", "-")
			}
		}
		if _, err := fmt.Fprintln(w, row); err != nil {
			return err
		}
	}
	return nil
}
