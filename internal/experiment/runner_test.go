package experiment

import (
	"bytes"
	"fmt"
	"sync/atomic"
	"testing"

	"selfemerge/internal/adversary"
	"selfemerge/internal/core"
	"selfemerge/internal/dht"
)

// fakeEstimator records call counts and fails on demand. When order is set,
// the failAt point blocks until the failAt2 point has failed: the runner may
// legitimately skip dispatched-but-unstarted points once a failure aborts
// the run, so a test asserting which of two failures is reported must pin
// their relative order instead of racing the worker pool.
type fakeEstimator struct {
	calls   atomic.Int64
	failAt  int // point index to fail on; -1 disables
	failAt2 int
	order   chan struct{}
}

func (f *fakeEstimator) Name() string { return "fake" }

func (f *fakeEstimator) Estimate(pt Point) (Result, error) {
	f.calls.Add(1)
	if pt.Index == f.failAt2 {
		if f.order != nil {
			close(f.order)
		}
		return Result{}, fmt.Errorf("boom at %d", pt.Index)
	}
	if pt.Index == f.failAt {
		if f.order != nil {
			<-f.order
		}
		return Result{}, fmt.Errorf("boom at %d", pt.Index)
	}
	return Result{Point: pt, R: float64(pt.Index)}, nil
}

func testSweep() Sweep {
	return Sweep{
		Seed: 1,
		Base: Point{Network: 100, K: 2, L: 2},
		Axes: []Axis{
			RangeAxis("p", 0, 0.3, 0.1),
			SchemeAxis(core.SchemeCentral, core.SchemeDisjoint, core.SchemeJoint),
		},
	}
}

func TestRunnerGridOrder(t *testing.T) {
	est := &fakeEstimator{failAt: -1, failAt2: -1}
	rs, err := Runner{Estimator: est, Parallel: 5}.Run(testSweep())
	if err != nil {
		t.Fatal(err)
	}
	if est.calls.Load() != 12 {
		t.Errorf("estimator called %d times, want 12", est.calls.Load())
	}
	for i, res := range rs.Results {
		if res.Point.Index != i || res.R != float64(i) {
			t.Errorf("result %d out of grid order: %+v", i, res.Point)
		}
	}
	series := rs.SeriesResults()
	if len(series) != 3 || len(series[0]) != 4 {
		t.Fatalf("series layout %dx%d, want 3x4", len(series), len(series[0]))
	}
	if series[2][1].Point.Series != "joint" || series[2][1].Point.X != 0.1 {
		t.Errorf("series grouping wrong: %+v", series[2][1].Point)
	}
}

func TestRunnerFirstErrorByGridOrder(t *testing.T) {
	// Two failing points: the reported error must be the earliest by grid
	// order regardless of completion order. The order gate guarantees point
	// 3 has started (and so will be recorded) before point 7 may fail.
	est := &fakeEstimator{failAt: 7, failAt2: 3, order: make(chan struct{})}
	_, err := Runner{Estimator: est, Parallel: 4}.Run(testSweep())
	if err == nil {
		t.Fatal("runner swallowed the failure")
	}
	if want := "boom at 3"; !bytes.Contains([]byte(err.Error()), []byte(want)) {
		t.Errorf("err = %v, want the earliest point's %q", err, want)
	}
}

func TestRunnerNeedsEstimator(t *testing.T) {
	if _, err := (Runner{}).Run(testSweep()); err == nil {
		t.Error("runner without estimator accepted")
	}
}

func TestRunnerAbortsAfterFailure(t *testing.T) {
	// With one worker the schedule is deterministic: the failure at point 2
	// must stop the run before the remaining 9 points execute.
	est := &fakeEstimator{failAt: 2, failAt2: -1}
	if _, err := (Runner{Estimator: est, Parallel: 1}).Run(testSweep()); err == nil {
		t.Fatal("runner swallowed the failure")
	}
	if got := est.calls.Load(); got != 3 {
		t.Errorf("estimator ran %d points after the failure at index 2, want 3 total", got)
	}
}

func TestAbstractEstimatorsRejectLiveOnlyAxes(t *testing.T) {
	base := Point{Scheme: core.SchemeJoint, P: 0.1, Network: 100, K: 2, L: 2}
	drop, replicated, eclipsed, forged, tabled := base, base, base, base, base
	drop.Drop = true
	replicated.Replicas = 2
	eclipsed.Strategy = adversary.StrategyEclipse
	forged.Strategy, forged.Forge = adversary.StrategyEclipse, 30
	tabled.Table = dht.TablePingEvict
	for _, est := range []Estimator{Analytic{}, MonteCarlo{Trials: 10}} {
		if _, err := est.Estimate(drop); err == nil {
			t.Errorf("%s estimator silently accepted a drop-attack point", est.Name())
		}
		if _, err := est.Estimate(replicated); err == nil {
			t.Errorf("%s estimator silently accepted a replicated point", est.Name())
		}
		if _, err := est.Estimate(eclipsed); err == nil {
			t.Errorf("%s estimator silently accepted an eclipse-strategy point", est.Name())
		}
		if _, err := est.Estimate(forged); err == nil {
			t.Errorf("%s estimator silently accepted a forge-rate point", est.Name())
		}
		if _, err := est.Estimate(tabled); err == nil {
			t.Errorf("%s estimator silently accepted a table-policy point", est.Name())
		}
	}
}

func TestRunnerValidatePreflightsWithoutEstimating(t *testing.T) {
	est := &fakeEstimator{failAt: -1, failAt2: -1}
	// An invalid share shape (no ShareN) fails plan construction for every
	// point; Validate must report it without a single Estimate call.
	sw := Sweep{
		Base: Point{Scheme: core.SchemeKeyShare, Network: 100, K: 2, L: 3},
		Axes: []Axis{RangeAxis("p", 0, 0.2, 0.1)},
	}
	if err := (Runner{Estimator: est}).Validate(sw); err == nil {
		t.Error("Validate accepted an invalid share shape")
	}
	// Estimator-specific checks run through the PointChecker interface.
	churned := Sweep{
		Base: Point{Scheme: core.SchemeJoint, Network: 100, Alpha: 3, K: 2, L: 2},
		Axes: []Axis{RangeAxis("p", 0, 0.2, 0.1)},
	}
	if err := (Runner{Estimator: Analytic{}}).Validate(churned); err == nil {
		t.Error("Validate accepted an alpha sweep for the no-churn closed forms")
	}
	if err := (Runner{Estimator: est}).Validate(churned); err != nil {
		t.Errorf("Validate rejected a valid sweep for a checker-less estimator: %v", err)
	}
	if est.calls.Load() != 0 {
		t.Errorf("Validate ran %d estimates", est.calls.Load())
	}
}

func TestAnalyticRejectsChurnForNoChurnSchemes(t *testing.T) {
	churned := Point{Scheme: core.SchemeJoint, P: 0.1, Alpha: 3, Network: 100, K: 2, L: 2}
	if _, err := (Analytic{}).Estimate(churned); err == nil {
		t.Error("analytic estimator silently ignored alpha for a no-churn closed form")
	}
	// The key share scheme's Algorithm 1 does consume alpha.
	share := Point{Scheme: core.SchemeKeyShare, P: 0.1, Alpha: 3, Network: 1000}
	if _, err := (Analytic{}).Estimate(share); err != nil {
		t.Errorf("analytic estimator rejected a churned key-share point: %v", err)
	}
}

// TestSweepDeterministicAcrossWorkerCounts is the satellite determinism
// guarantee: the same sweep, same seed, emitted byte-identically no matter
// how many runner workers executed it. The Monte Carlo estimator pins its
// per-point worker count so the trial partition is fixed too.
func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	sw := testSweep()
	est := MonteCarlo{Trials: 120, Workers: 1}
	var outputs [][]byte
	for _, parallel := range []int{1, 4, 16} {
		rs, err := Runner{Estimator: est, Parallel: parallel}.Run(sw)
		if err != nil {
			t.Fatal(err)
		}
		var csv, js bytes.Buffer
		if err := rs.WriteCSV(&csv); err != nil {
			t.Fatal(err)
		}
		if err := rs.WriteJSON(&js); err != nil {
			t.Fatal(err)
		}
		outputs = append(outputs, append(csv.Bytes(), js.Bytes()...))
	}
	for i := 1; i < len(outputs); i++ {
		if !bytes.Equal(outputs[0], outputs[i]) {
			t.Errorf("output with worker count %d differs from worker count 1", []int{1, 4, 16}[i])
		}
	}
}

func TestAnalyticEstimator(t *testing.T) {
	res, err := Analytic{}.Estimate(Point{Scheme: core.SchemeCentral, P: 0.2, Network: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rr != 0.8 || res.Rd != 0.8 || res.R != 0.8 || res.Cost != 1 {
		t.Errorf("central closed form = %+v", res)
	}
	// Explicit key share shapes have no closed form.
	_, err = Analytic{}.Estimate(Point{
		Scheme: core.SchemeKeyShare, P: 0.1, Network: 100,
		K: 2, L: 3, ShareN: 5, ShareM: []int{2, 2},
	})
	if err == nil {
		t.Error("analytic estimator accepted an explicit share shape")
	}
}

func TestMonteCarloEstimator(t *testing.T) {
	pt := Point{Scheme: core.SchemeJoint, P: 0.1, Network: 1000, K: 3, L: 2, Seed: 9}
	res, err := MonteCarlo{Trials: 400, Workers: 1}.Estimate(pt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples != 400 {
		t.Fatalf("samples = %d", res.Samples)
	}
	if res.Rr < 0.9 || res.Rd < 0.95 {
		t.Errorf("joint 3x2 at p=0.1: Rr=%v Rd=%v, want high", res.Rr, res.Rd)
	}
	// Same point, same result (the estimator is deterministic and pure).
	again, err := MonteCarlo{Trials: 400, Workers: 1}.Estimate(pt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Released != again.Released || res.Delivered != again.Delivered {
		t.Error("Monte Carlo estimator not deterministic for a fixed point")
	}
}
