package experiment

import (
	"testing"

	"selfemerge/internal/adversary"
	"selfemerge/internal/core"
	"selfemerge/internal/dht"
)

func TestSweepExpansion(t *testing.T) {
	sw := Sweep{
		Name: "test",
		Seed: 42,
		Base: Point{Network: 1000, K: 3, L: 2},
		Axes: []Axis{
			RangeAxis("p", 0, 0.2, 0.1),
			SchemeAxis(core.SchemeCentral, core.SchemeJoint),
		},
	}
	points, err := sw.Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("expanded %d points, want 6", len(points))
	}
	// Grid order: series-major (scheme), X-minor (p).
	wantSeries := []string{"central", "central", "central", "joint", "joint", "joint"}
	wantX := []float64{0, 0.1, 0.2, 0, 0.1, 0.2}
	for i, pt := range points {
		if pt.Index != i {
			t.Errorf("point %d has Index %d", i, pt.Index)
		}
		if pt.Series != wantSeries[i] {
			t.Errorf("point %d series %q, want %q", i, pt.Series, wantSeries[i])
		}
		if pt.X != wantX[i] || pt.P != wantX[i] {
			t.Errorf("point %d x/p = %v/%v, want %v", i, pt.X, pt.P, wantX[i])
		}
		if pt.Network != 1000 || pt.K != 3 || pt.L != 2 {
			t.Errorf("point %d lost base fields: %+v", i, pt)
		}
	}
	// Per-point seeds: deterministic, shared at matched X across series
	// (common random numbers), distinct along X.
	if points[0].Seed != 42 {
		t.Errorf("first seed %d, want the sweep seed", points[0].Seed)
	}
	if points[0].Seed == points[1].Seed {
		t.Error("adjacent X points share a seed")
	}
	for i := 0; i < 3; i++ {
		if points[i].Seed != points[i+3].Seed {
			t.Errorf("series at x index %d do not share seeds", i)
		}
	}
	if points[0].Scheme != core.SchemeCentral || points[3].Scheme != core.SchemeJoint {
		t.Errorf("scheme axis not applied: %v / %v", points[0].Scheme, points[3].Scheme)
	}
}

func TestSweepSeriesLabelsMultiAxis(t *testing.T) {
	sw := Sweep{
		Base: Point{Network: 100, Scheme: core.SchemeJoint, K: 2, L: 2},
		Axes: []Axis{
			RangeAxis("p", 0, 0.1, 0.1),
			FloatAxis("alpha", 1, 3),
			DropAxis(false, true),
		},
	}
	labels := sw.SeriesLabels()
	want := []string{"1/spy", "1/drop", "3/spy", "3/drop"}
	if len(labels) != len(want) {
		t.Fatalf("labels = %v", labels)
	}
	for i := range want {
		if labels[i] != want[i] {
			t.Errorf("label[%d] = %q, want %q", i, labels[i], want[i])
		}
	}
	points, err := sw.Points()
	if err != nil {
		t.Fatal(err)
	}
	// Later axes vary fastest: series 1 is alpha=1, drop=true.
	if pt := points[2]; pt.Alpha != 1 || !pt.Drop {
		t.Errorf("series 1 point = %+v, want alpha=1 drop", pt)
	}
	if pt := points[4]; pt.Alpha != 3 || pt.Drop {
		t.Errorf("series 2 point = %+v, want alpha=3 spy", pt)
	}
}

func TestSweepSingleAxisLabel(t *testing.T) {
	sw := Sweep{
		Base: Point{Network: 100, Scheme: core.SchemeJoint, K: 2, L: 2},
		Axes: []Axis{RangeAxis("p", 0, 0.1, 0.1)},
	}
	labels := sw.SeriesLabels()
	if len(labels) != 1 || labels[0] != "joint" {
		t.Fatalf("labels = %v", labels)
	}
}

func TestSweepValidation(t *testing.T) {
	base := Point{Network: 100, Scheme: core.SchemeJoint, K: 2, L: 2}
	cases := []Sweep{
		{Base: base},                            // no axes
		{Base: base, Axes: []Axis{{Name: "p"}}}, // empty axis
		{Base: base, Axes: []Axis{FloatAxis("p", 0.1), FloatAxis("p", 0.2)}},                                                                // duplicate
		{Base: base, Axes: []Axis{FloatAxis("p", 1.5)}},                                                                                     // invalid rate
		{Base: Point{Scheme: core.SchemeJoint, K: 2, L: 2}, Axes: []Axis{FloatAxis("p", 0.1)}},                                              // no network
		{Base: base, Axes: []Axis{SchemeAxis(core.SchemeCentral, core.SchemeJoint)}},                                                        // categorical X axis
		{Base: base, Axes: []Axis{DropAxis(false, true), FloatAxis("p", 0.1)}},                                                              // categorical X axis
		{Base: base, Axes: []Axis{FloatAxis("k", 2.5)}},                                                                                     // fractional integer axis
		{Base: base, Axes: []Axis{FloatAxis("p", 0.1), FloatAxis("budget", 100, 1000)}},                                                     // budget with explicit shape
		{Base: base, Axes: []Axis{StrategyAxis(adversary.StrategySpy), FloatAxis("p", 0.1)}},                                                // categorical X axis
		{Base: base, Axes: []Axis{TableAxis(dht.TableNaive), FloatAxis("p", 0.1)}},                                                          // categorical X axis
		{Base: base, Axes: []Axis{FloatAxis("p", 0.1), DropAxis(false, true), StrategyAxis(adversary.StrategySpy, adversary.StrategyDrop)}}, // drop/strategy ambiguity
		{Base: base, Axes: []Axis{FloatAxis("forge", 10)}},                                                                                  // forge without eclipse
	}
	for i, sw := range cases {
		if _, err := sw.Points(); err == nil {
			t.Errorf("sweep %d accepted", i)
		}
	}
}

func TestRangeAxisNeverOvershootsStop(t *testing.T) {
	if got := RangeAxis("alpha", 0, 10, 4).Labels(); len(got) != 3 || got[2] != "8" {
		t.Errorf("0:10:4 = %v, want [0 4 8]", got)
	}
	if got := RangeAxis("p", 0.5, 1, 0.3).Labels(); len(got) != 2 || got[1] != "0.8" {
		t.Errorf("0.5:1:0.3 = %v, want [0.5 0.8]", got)
	}
	// Exact divisions keep their endpoint, including ratios that land just
	// below an integer in floating point (0.5/0.02 = 24.999...).
	if got := RangeAxis("p", 0, 0.5, 0.02).Labels(); len(got) != 26 || got[25] != "0.5" {
		t.Errorf("0:0.5:0.02 has %d values ending %v, want 26 ending 0.5", len(got), got[len(got)-1])
	}
}

func TestParseAxis(t *testing.T) {
	ax, err := ParseAxis("p=0:0.5:0.25")
	if err != nil {
		t.Fatal(err)
	}
	if got := ax.Labels(); len(got) != 3 || got[0] != "0" || got[2] != "0.5" {
		t.Errorf("range labels = %v", got)
	}
	ax, err = ParseAxis("alpha=1,3,5")
	if err != nil {
		t.Fatal(err)
	}
	if got := ax.Labels(); len(got) != 3 || got[1] != "3" {
		t.Errorf("list labels = %v", got)
	}
	ax, err = ParseAxis("scheme=central,share")
	if err != nil {
		t.Fatal(err)
	}
	if got := ax.Labels(); len(got) != 2 || got[1] != "share" {
		t.Errorf("scheme labels = %v", got)
	}
	ax, err = ParseAxis("drop=spy,drop")
	if err != nil {
		t.Fatal(err)
	}
	if got := ax.Labels(); len(got) != 2 || got[0] != "spy" || got[1] != "drop" {
		t.Errorf("drop labels = %v", got)
	}
	ax, err = ParseAxis("strategy=spy,drop,eclipse")
	if err != nil {
		t.Fatal(err)
	}
	if got := ax.Labels(); len(got) != 3 || got[2] != "eclipse" {
		t.Errorf("strategy labels = %v", got)
	}
	ax, err = ParseAxis("table=naive,pingevict")
	if err != nil {
		t.Fatal(err)
	}
	if got := ax.Labels(); len(got) != 2 || got[1] != "pingevict" {
		t.Errorf("table labels = %v", got)
	}
	ax, err = ParseAxis("forge=0:60:30")
	if err != nil {
		t.Fatal(err)
	}
	if got := ax.Labels(); len(got) != 3 || got[2] != "60" {
		t.Errorf("forge labels = %v", got)
	}
	// The CLI alias nodes= maps onto the network axis.
	ax, err = ParseAxis("nodes=100,1000")
	if err != nil {
		t.Fatal(err)
	}
	if ax.Name != "network" {
		t.Errorf("nodes alias parsed as %q", ax.Name)
	}

	for _, bad := range []string{
		"", "p", "p=", "=1", "bogus=1", "p=a,b", "p=0:0.5", "p=0:0.5:0", "p=0.5:0:0.1", "scheme=warp", "drop=maybe",
		"strategy=ddos", "table=btree",
	} {
		if _, err := ParseAxis(bad); err == nil {
			t.Errorf("ParseAxis(%q) accepted", bad)
		}
	}
}

func TestPointPlanAndEnv(t *testing.T) {
	pt := Point{Scheme: core.SchemeJoint, P: 0.25, Alpha: 2, Network: 400}
	plan, err := pt.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if plan.Scheme != core.SchemeJoint || plan.K < 1 || plan.L < 1 {
		t.Errorf("planner-sized plan = %+v", plan)
	}
	env := pt.Env()
	if env.Population != 400 || env.Malicious != 100 || env.Alpha != 2 {
		t.Errorf("env = %+v", env)
	}

	// Explicit shapes bypass the planner.
	pt = Point{Scheme: core.SchemeJoint, P: 0.1, Network: 400, K: 3, L: 2}
	plan, err = pt.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if plan.K != 3 || plan.L != 2 {
		t.Errorf("explicit plan = %+v", plan)
	}
}
