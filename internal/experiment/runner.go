package experiment

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Runner executes a sweep's points concurrently over a worker pool. Results
// are collected in grid order, so a run's output is identical regardless of
// the worker count; per-point determinism is the estimator's contract.
type Runner struct {
	Estimator Estimator
	// Parallel is the number of points in flight at once (default
	// GOMAXPROCS). Live-scenario points each own a private simulator and
	// network fabric, so a multi-point live sweep scales near-linearly with
	// this.
	Parallel int
}

// ResultSet is the outcome of one sweep run.
type ResultSet struct {
	Sweep     Sweep
	Estimator string
	Results   []Result
	// Elapsed is the wall-clock time of the whole run; PointElapsed sums
	// the per-point wall times (> Elapsed when points ran concurrently).
	Elapsed      time.Duration
	PointElapsed time.Duration
}

// PointChecker is implemented by estimators that can reject a point without
// measuring it; Validate uses it to fail fast on estimator-specific
// parameter mismatches (e.g. a drop axis on an abstract estimator).
type PointChecker interface {
	CheckPoint(Point) error
}

// Validate expands the sweep and pre-flights every point — environment
// validation, plan construction, and the estimator's own point checks —
// without running any estimates. Callers use it to classify parameter
// mistakes as usage errors before committing compute.
func (r Runner) Validate(sw Sweep) error {
	if r.Estimator == nil {
		return fmt.Errorf("experiment: runner has no estimator")
	}
	points, err := sw.Points()
	if err != nil {
		return err
	}
	checker, _ := r.Estimator.(PointChecker)
	for _, pt := range points {
		if _, err := pt.Plan(); err != nil {
			return fmt.Errorf("experiment: point %d (%s, x=%g): %w", pt.Index, pt.Series, pt.X, err)
		}
		if checker != nil {
			if err := checker.CheckPoint(pt); err != nil {
				return fmt.Errorf("experiment: point %d (%s, x=%g): %w", pt.Index, pt.Series, pt.X, err)
			}
		}
	}
	return nil
}

// Run expands and executes the sweep. A failing point aborts the run: no
// new points start after a failure, in-flight points finish, and the error
// of the earliest failing point (by grid order) is returned.
func (r Runner) Run(sw Sweep) (*ResultSet, error) {
	if r.Estimator == nil {
		return nil, fmt.Errorf("experiment: runner has no estimator")
	}
	points, err := sw.Points()
	if err != nil {
		return nil, err
	}
	workers := r.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(points) {
		workers = len(points)
	}

	began := time.Now() //lint:allow detrand Elapsed is operator-facing wall time, not part of the seeded result
	results := make([]Result, len(points))
	errs := make([]error, len(points))
	next := make(chan int)
	var aborted atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if aborted.Load() {
					continue
				}
				results[i], errs[i] = r.Estimator.Estimate(points[i])
				if errs[i] != nil {
					aborted.Store(true)
				}
			}
		}()
	}
	for i := range points {
		if aborted.Load() {
			break
		}
		next <- i
	}
	close(next)
	wg.Wait()

	rs := &ResultSet{
		Sweep:     sw,
		Estimator: r.Estimator.Name(),
		Results:   results,
		Elapsed:   time.Since(began), //lint:allow detrand wall-time metadata only; every seeded quantity flows from pt.Seed
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiment: point %d (%s, x=%g): %w",
				i, points[i].Series, points[i].X, err)
		}
		rs.PointElapsed += results[i].Elapsed
	}
	return rs, nil
}

// SeriesResults groups the results by sweep series, in declaration order:
// out[s][x] is the point at series s, X index x.
func (rs *ResultSet) SeriesResults() [][]Result {
	nx := len(rs.Sweep.XValues())
	if nx == 0 {
		return nil
	}
	out := make([][]Result, 0, len(rs.Results)/nx)
	for start := 0; start+nx <= len(rs.Results); start += nx {
		out = append(out, rs.Results[start:start+nx])
	}
	return out
}
