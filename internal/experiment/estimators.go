package experiment

import (
	"fmt"
	"time"

	"selfemerge/internal/adversary"
	"selfemerge/internal/analytic"
	"selfemerge/internal/core"
	"selfemerge/internal/dht"
	"selfemerge/internal/fault"
	"selfemerge/internal/mc"
)

// rejectLiveOnly refuses the point parameters only the live estimator
// honors. The abstract models measure spy and drop outcomes of one trial at
// once and have no packet replicas; silently accepting a drop or replicas
// axis would emit byte-identical series under distinct labels.
func rejectLiveOnly(pt Point, estimator string) error {
	if pt.Drop {
		return fmt.Errorf("experiment: the %s estimator measures spy and drop outcomes at once; the drop attack selector applies to the live estimator only", estimator)
	}
	if pt.Replicas > 1 {
		return fmt.Errorf("experiment: the %s estimator has no packet replicas; the replicas axis applies to the live estimator only", estimator)
	}
	if pt.Strategy != adversary.StrategySpy {
		return fmt.Errorf("experiment: the %s estimator cannot model the %s strategy; the strategy axis applies to the live estimator only", estimator, pt.Strategy)
	}
	if pt.Forge > 0 {
		return fmt.Errorf("experiment: the %s estimator has no routing layer to poison; the forge axis applies to the live estimator only", estimator)
	}
	if pt.Table != dht.TableDefault {
		return fmt.Errorf("experiment: the %s estimator has no routing table; the table axis applies to the live estimator only", estimator)
	}
	if pt.Partition > 0 {
		return fmt.Errorf("experiment: the %s estimator has no event loops to partition; the partition axis applies to the live estimator only", estimator)
	}
	if pt.Fault != fault.ProfileNone && pt.FaultSev > 0 {
		return fmt.Errorf("experiment: the %s estimator has no network fabric to perturb; the fault axes apply to the live estimator only", estimator)
	}
	if pt.Retry > 1 {
		return fmt.Errorf("experiment: the %s estimator has no RPCs to retry; the retry axis applies to the live estimator only", estimator)
	}
	return nil
}

// Analytic estimates points from the closed forms: Equations (1)-(3) for the
// centralized and multipath schemes, Algorithm 1 (plus the entry-column
// churn correction) for planner-sized key share shapes. It is exact and
// instantaneous, and ignores the point's seed.
type Analytic struct{}

// Name implements Estimator.
func (Analytic) Name() string { return "analytic" }

// checkPlan validates the point for closed-form estimation and builds its
// plan, shared by CheckPoint and Estimate so the planner search runs once.
func (a Analytic) checkPlan(pt Point) (core.Plan, error) {
	if err := pt.Validate(); err != nil {
		return core.Plan{}, err
	}
	if err := rejectLiveOnly(pt, a.Name()); err != nil {
		return core.Plan{}, err
	}
	// Equations (1)-(3) are no-churn; only the key share scheme's Algorithm
	// 1 consumes alpha. Accepting an alpha axis for the other schemes would
	// emit identical series under distinct labels.
	if pt.Alpha > 0 && pt.Scheme != core.SchemeKeyShare {
		return core.Plan{}, fmt.Errorf("experiment: the closed forms for %v are no-churn; the alpha axis applies to the mc and live estimators", pt.Scheme)
	}
	plan, err := pt.Plan()
	if err != nil {
		return core.Plan{}, err
	}
	// Explicit key share shapes carry no closed form (Algorithm 1 sizes
	// shapes, it does not evaluate given thresholds); reject at pre-flight
	// so Runner.Validate fails before any compute runs.
	if plan.Predicted == (analytic.Resilience{}) {
		return core.Plan{}, fmt.Errorf("experiment: no closed form for %v shape %dx%d", plan.Scheme, plan.K, plan.L)
	}
	return plan, nil
}

// CheckPoint implements PointChecker.
func (a Analytic) CheckPoint(pt Point) error {
	_, err := a.checkPlan(pt)
	return err
}

// Estimate implements Estimator.
func (a Analytic) Estimate(pt Point) (Result, error) {
	began := time.Now() //lint:allow detrand Elapsed is operator-facing wall time, not part of the seeded result
	plan, err := a.checkPlan(pt)
	if err != nil {
		return Result{}, err
	}
	pred := plan.Predicted
	return Result{
		Point:     pt,
		Plan:      plan,
		Rr:        pred.ReleaseAhead,
		Rd:        pred.Drop,
		R:         pred.Min(),
		Cost:      plan.NodesRequired(),
		Predicted: pred,
		Elapsed:   time.Since(began), //lint:allow detrand wall-time metadata only; every seeded quantity flows from pt.Seed
	}, nil
}

// MonteCarlo estimates points by sampling the abstract model
// (mc.Estimate): the engine behind Figures 6-8. The zero value matches the
// paper's setup (1000 trials, all CPUs).
type MonteCarlo struct {
	// Trials per point (default 1000).
	Trials int
	// Workers parallelizes the trials of a single point (default
	// GOMAXPROCS). Combine multi-point Runner parallelism with Workers 1
	// (the trial partition is per-machine otherwise), and per-point workers
	// with Runner.Parallel 1 — both layers wide at once merely
	// oversubscribes the scheduler.
	Workers int
	// ShareModel pins the key share scheme's churn-loss and
	// release-exposure model (the mc.Env knob): the paper's quota model by
	// default, the binomial ablation, or the live-faithful chained model the
	// scenario estimator cross-validates against.
	ShareModel mc.ShareModel
}

// Name implements Estimator.
func (MonteCarlo) Name() string { return "mc" }

// CheckPoint implements PointChecker.
func (m MonteCarlo) CheckPoint(pt Point) error {
	if err := pt.Validate(); err != nil {
		return err
	}
	return rejectLiveOnly(pt, m.Name())
}

// Estimate implements Estimator.
func (m MonteCarlo) Estimate(pt Point) (Result, error) {
	began := time.Now() //lint:allow detrand Elapsed is operator-facing wall time, not part of the seeded result
	if err := m.CheckPoint(pt); err != nil {
		return Result{}, err
	}
	plan, err := pt.Plan()
	if err != nil {
		return Result{}, err
	}
	env := pt.Env()
	env.ShareModel = m.ShareModel
	res, err := mc.Estimate(plan, env, mc.Options{Trials: m.Trials, Seed: pt.Seed, Workers: m.Workers})
	if err != nil {
		return Result{}, err
	}
	return Result{
		Point:     pt,
		Plan:      plan,
		Samples:   res.Trials,
		Released:  res.Released,
		Delivered: res.Delivered,
		Succeeded: res.Succeeded,
		Rr:        res.Rr(),
		Rd:        res.Rd(),
		R:         res.R(),
		Cost:      plan.NodesRequired(),
		Predicted: plan.Predicted,
		Elapsed:   time.Since(began), //lint:allow detrand wall-time metadata only; every seeded quantity flows from pt.Seed
	}, nil
}
