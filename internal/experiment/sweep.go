package experiment

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"selfemerge/internal/adversary"
	"selfemerge/internal/core"
	"selfemerge/internal/dht"
	"selfemerge/internal/fault"
)

// seedStride decorrelates per-point seeds along the X axis; it is the same
// golden-ratio stride the pre-runner figure sweeps used, so refactored
// figures reproduce their historical series exactly.
const seedStride = 0x9e3779b97f4a7c15

// Sweep declares a parameter sweep: a base point and the axes that vary.
// The first axis is the figure's X axis (numeric); the cartesian product of the
// remaining axes (later axes varying faster) forms the series. Expansion is
// deterministic: point i of series s has flat index s*len(X)+i, and every
// point at X index i gets seed Seed + i*seedStride — series share random
// numbers at matched X, the common-random-numbers variance reduction the
// original figure loops applied.
type Sweep struct {
	Name string
	Base Point
	Axes []Axis
	Seed uint64
}

// Axis is one swept dimension: a parameter name from the fixed vocabulary
// (p, alpha, network, budget, k, l, sharen, replicas, forge, partition,
// faultsev, retry, scheme, drop, strategy, table, fault) and the values it
// takes.
type Axis struct {
	Name string
	vals []axisValue
}

type axisValue struct {
	num      float64
	scheme   core.Scheme
	flag     bool
	strategy adversary.Strategy
	table    dht.TablePolicy
	fault    fault.Profile
	label    string
}

// Len returns the number of values on the axis.
func (a Axis) Len() int { return len(a.vals) }

// Labels returns the human-readable axis values.
func (a Axis) Labels() []string {
	out := make([]string, len(a.vals))
	for i, v := range a.vals {
		out[i] = v.label
	}
	return out
}

// FloatAxis declares a numeric axis from explicit values. Labels round to
// six significant digits, matching the emitters, so range grids do not leak
// floating-point noise (0.15000000000000002) into series labels.
func FloatAxis(name string, values ...float64) Axis {
	ax := Axis{Name: name}
	for _, v := range values {
		ax.vals = append(ax.vals, axisValue{num: v, label: strconv.FormatFloat(v, 'g', 6, 64)})
	}
	return ax
}

// RangeAxis declares a numeric axis over [start, stop] in step increments.
// The grid is built on integer steps to avoid floating-point drift, and
// never emits a value beyond stop: a step that does not evenly divide the
// range truncates (0:10:4 yields 0, 4, 8).
func RangeAxis(name string, start, stop, step float64) Axis {
	if step <= 0 {
		return FloatAxis(name, start)
	}
	r := (stop - start) / step
	// Floor with a relative epsilon so exact divisions landing just below an
	// integer (0.5/0.02 = 24.999...) still include their endpoint.
	steps := int(r*(1+1e-12) + 1e-9)
	values := make([]float64, 0, steps+1)
	for i := 0; i <= steps; i++ {
		values = append(values, start+float64(i)*step)
	}
	return FloatAxis(name, values...)
}

// IntAxis declares an integer-valued axis.
func IntAxis(name string, values ...int) Axis {
	ax := Axis{Name: name}
	for _, v := range values {
		ax.vals = append(ax.vals, axisValue{num: float64(v), label: strconv.Itoa(v)})
	}
	return ax
}

// SchemeAxis declares the routing-scheme axis.
func SchemeAxis(schemes ...core.Scheme) Axis {
	ax := Axis{Name: "scheme"}
	for _, s := range schemes {
		ax.vals = append(ax.vals, axisValue{scheme: s, label: s.String()})
	}
	return ax
}

// DropAxis declares the adversary-kind axis (spy vs drop attack).
func DropAxis(values ...bool) Axis {
	ax := Axis{Name: "drop"}
	for _, v := range values {
		label := "spy"
		if v {
			label = "drop"
		}
		ax.vals = append(ax.vals, axisValue{flag: v, label: label})
	}
	return ax
}

// StrategyAxis declares the adversary-strategy axis (spy, drop, eclipse) —
// the generalization of DropAxis that can also select the routing-layer
// eclipse attack.
func StrategyAxis(strategies ...adversary.Strategy) Axis {
	ax := Axis{Name: "strategy"}
	for _, s := range strategies {
		ax.vals = append(ax.vals, axisValue{strategy: s, label: s.String()})
	}
	return ax
}

// TableAxis declares the routing-table-policy axis (naive vs pingevict),
// the defense arm of the eclipse experiments.
func TableAxis(policies ...dht.TablePolicy) Axis {
	ax := Axis{Name: "table"}
	for _, p := range policies {
		ax.vals = append(ax.vals, axisValue{table: p, label: p.String()})
	}
	return ax
}

// FaultAxis declares the fault-injection-profile axis (none, burst,
// partition, flap) — the fault arm selector of the resilience sweeps. The
// companion numeric axes faultsev and retry scale the profile and harden the
// RPC layer against it.
func FaultAxis(profiles ...fault.Profile) Axis {
	ax := Axis{Name: "fault"}
	for _, p := range profiles {
		ax.vals = append(ax.vals, axisValue{fault: p, label: p.String()})
	}
	return ax
}

// ParseAxis parses a command-line axis spec: "name=v1,v2,..." or, for
// numeric axes, a range "name=start:stop:step". Scheme values are the figure
// labels (central, disjoint, joint, share); drop values are spy/drop (or
// false/true).
func ParseAxis(spec string) (Axis, error) {
	name, rest, ok := strings.Cut(spec, "=")
	if !ok || name == "" || rest == "" {
		return Axis{}, fmt.Errorf("experiment: axis %q not of form name=values", spec)
	}
	name = strings.ToLower(strings.TrimSpace(name))
	if name == "nodes" { // CLI alias
		name = "network"
	}
	switch name {
	case "scheme":
		var schemes []core.Scheme
		for _, part := range strings.Split(rest, ",") {
			s, err := core.ParseScheme(strings.TrimSpace(part))
			if err != nil {
				return Axis{}, fmt.Errorf("experiment: axis %q: %w", spec, err)
			}
			schemes = append(schemes, s)
		}
		return SchemeAxis(schemes...), nil
	case "drop":
		var flags []bool
		for _, part := range strings.Split(rest, ",") {
			switch strings.ToLower(strings.TrimSpace(part)) {
			case "spy", "false", "0":
				flags = append(flags, false)
			case "drop", "true", "1":
				flags = append(flags, true)
			default:
				return Axis{}, fmt.Errorf("experiment: axis %q: drop values are spy|drop", spec)
			}
		}
		return DropAxis(flags...), nil
	case "strategy":
		var strategies []adversary.Strategy
		for _, part := range strings.Split(rest, ",") {
			s, err := adversary.ParseStrategy(strings.ToLower(strings.TrimSpace(part)))
			if err != nil {
				return Axis{}, fmt.Errorf("experiment: axis %q: %w", spec, err)
			}
			strategies = append(strategies, s)
		}
		return StrategyAxis(strategies...), nil
	case "table":
		var policies []dht.TablePolicy
		for _, part := range strings.Split(rest, ",") {
			p, err := dht.ParseTablePolicy(strings.ToLower(strings.TrimSpace(part)))
			if err != nil {
				return Axis{}, fmt.Errorf("experiment: axis %q: %w", spec, err)
			}
			policies = append(policies, p)
		}
		return TableAxis(policies...), nil
	case "fault":
		var profiles []fault.Profile
		for _, part := range strings.Split(rest, ",") {
			p, err := fault.ParseProfile(strings.ToLower(strings.TrimSpace(part)))
			if err != nil {
				return Axis{}, fmt.Errorf("experiment: axis %q: %w", spec, err)
			}
			profiles = append(profiles, p)
		}
		return FaultAxis(profiles...), nil
	case "p", "alpha", "network", "budget", "k", "l", "sharen", "replicas", "forge", "partition", "faultsev", "retry":
		if start, stop, step, ok, err := parseRange(rest); err != nil {
			return Axis{}, fmt.Errorf("experiment: axis %q: %w", spec, err)
		} else if ok {
			return RangeAxis(name, start, stop, step), nil
		}
		var values []float64
		for _, part := range strings.Split(rest, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				return Axis{}, fmt.Errorf("experiment: axis %q: %w", spec, err)
			}
			values = append(values, v)
		}
		return FloatAxis(name, values...), nil
	default:
		return Axis{}, fmt.Errorf("experiment: unknown axis %q", name)
	}
}

// parseRange recognizes "start:stop:step"; ok is false for plain lists.
func parseRange(s string) (start, stop, step float64, ok bool, err error) {
	if !strings.Contains(s, ":") {
		return 0, 0, 0, false, nil
	}
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return 0, 0, 0, false, fmt.Errorf("range %q not of form start:stop:step", s)
	}
	vals := make([]float64, 3)
	for i, p := range parts {
		if vals[i], err = strconv.ParseFloat(strings.TrimSpace(p), 64); err != nil {
			return 0, 0, 0, false, fmt.Errorf("range %q: %w", s, err)
		}
	}
	if vals[2] <= 0 {
		return 0, 0, 0, false, fmt.Errorf("range %q: step must be positive", s)
	}
	if vals[1] < vals[0] {
		return 0, 0, 0, false, fmt.Errorf("range %q: stop below start", s)
	}
	return vals[0], vals[1], vals[2], true, nil
}

// apply writes the axis value into the point. Integer axes reject
// fractional values: silently truncating would run a different parameter
// than the series label claims.
func (a Axis) apply(pt *Point, v axisValue) error {
	integral := func() (int, error) {
		if v.num != math.Trunc(v.num) {
			return 0, fmt.Errorf("experiment: axis %q value %v is not an integer", a.Name, v.num)
		}
		return int(v.num), nil
	}
	var err error
	switch a.Name {
	case "p":
		pt.P = v.num
	case "alpha":
		pt.Alpha = v.num
	case "network":
		pt.Network, err = integral()
	case "budget":
		pt.Budget, err = integral()
	case "k":
		pt.K, err = integral()
	case "l":
		pt.L, err = integral()
	case "sharen":
		pt.ShareN, err = integral()
	case "replicas":
		pt.Replicas, err = integral()
	case "forge":
		pt.Forge = v.num
	case "partition":
		pt.Partition, err = integral()
	case "faultsev":
		pt.FaultSev = v.num
	case "retry":
		pt.Retry, err = integral()
	case "fault":
		pt.Fault = v.fault
	case "scheme":
		pt.Scheme = v.scheme
	case "drop":
		pt.Drop = v.flag
	case "strategy":
		pt.Strategy = v.strategy
	case "table":
		pt.Table = v.table
	default:
		return fmt.Errorf("experiment: unknown axis %q", a.Name)
	}
	return err
}

// XValues returns the first axis's numeric values (the figure's X grid).
func (s Sweep) XValues() []float64 {
	if len(s.Axes) == 0 {
		return nil
	}
	out := make([]float64, s.Axes[0].Len())
	for i, v := range s.Axes[0].vals {
		out[i] = v.num
	}
	return out
}

// SeriesLabels returns one label per series, in expansion order: the
// "/"-joined labels of the non-X axes, or the base scheme's name for a
// single-axis sweep.
func (s Sweep) SeriesLabels() []string {
	if len(s.Axes) <= 1 {
		return []string{s.Base.Scheme.String()}
	}
	labels := []string{""}
	for _, ax := range s.Axes[1:] {
		next := make([]string, 0, len(labels)*ax.Len())
		for _, prefix := range labels {
			for _, v := range ax.vals {
				label := v.label
				if prefix != "" {
					label = prefix + "/" + v.label
				}
				next = append(next, label)
			}
		}
		labels = next
	}
	return labels
}

// Points expands the sweep into its deterministic grid.
func (s Sweep) Points() ([]Point, error) {
	if len(s.Axes) == 0 {
		return nil, fmt.Errorf("experiment: sweep %q has no axes", s.Name)
	}
	// The first axis is the figure's X axis and must be numeric: categorical
	// axes (scheme, drop, strategy, table) carry no X coordinate, so every
	// row would plot at x=0 under an indistinguishable label.
	switch s.Axes[0].Name {
	case "scheme", "drop", "strategy", "table", "fault":
		return nil, fmt.Errorf("experiment: first axis %q is categorical; lead with a numeric axis (p, alpha, network, ...)", s.Axes[0].Name)
	}
	seen := map[string]bool{}
	for _, ax := range s.Axes {
		if ax.Len() == 0 {
			return nil, fmt.Errorf("experiment: axis %q has no values", ax.Name)
		}
		if seen[ax.Name] {
			return nil, fmt.Errorf("experiment: axis %q declared twice", ax.Name)
		}
		seen[ax.Name] = true
	}
	// Reject axes no point of the sweep can consult — every value would
	// emit the same series under a different label. A budget axis only
	// matters to planner-sized non-central shapes; a sharen axis only to
	// explicit key share shapes.
	explicitShape := s.Base.K != 0 || s.Base.L != 0 || seen["k"] || seen["l"]
	if seen["budget"] {
		if explicitShape {
			return nil, fmt.Errorf("experiment: budget axis requires planner-sized shapes (k = l = 0, no k/l axes)")
		}
		if s.Base.Scheme == core.SchemeCentral && !seen["scheme"] {
			return nil, fmt.Errorf("experiment: the central scheme ignores the node budget")
		}
	}
	// The drop boolean and the strategy enum set the same adversary knob;
	// sweeping both would let a drop=spy row silently contradict a
	// strategy=eclipse row.
	if seen["drop"] && (seen["strategy"] || s.Base.Strategy != adversary.StrategySpy) {
		return nil, fmt.Errorf("experiment: the drop axis and the strategy selector both set the adversary; use strategy=spy,drop,... instead")
	}
	if seen["sharen"] {
		if s.Base.Scheme != core.SchemeKeyShare && !seen["scheme"] {
			return nil, fmt.Errorf("experiment: the sharen axis applies to the share scheme only")
		}
		if !explicitShape {
			return nil, fmt.Errorf("experiment: the sharen axis requires an explicit shape (planner-sized share plans compute it)")
		}
	}

	xAxis := s.Axes[0]
	labels := s.SeriesLabels()
	// seriesCombo returns the value picked from each non-X axis for series
	// index si, with later axes varying fastest (matching SeriesLabels).
	combo := func(si int) []axisValue {
		vals := make([]axisValue, len(s.Axes)-1)
		for i := len(s.Axes) - 1; i >= 1; i-- {
			n := s.Axes[i].Len()
			vals[i-1] = s.Axes[i].vals[si%n]
			si /= n
		}
		return vals
	}

	points := make([]Point, 0, len(labels)*xAxis.Len())
	for si := range labels {
		seriesVals := combo(si)
		for xi, xv := range xAxis.vals {
			pt := s.Base
			pt.ShareM = append([]int(nil), s.Base.ShareM...)
			if err := xAxis.apply(&pt, xv); err != nil {
				return nil, err
			}
			for i, ax := range s.Axes[1:] {
				if err := ax.apply(&pt, seriesVals[i]); err != nil {
					return nil, err
				}
			}
			pt.Seed = s.Seed + uint64(xi)*seedStride
			pt.Index = len(points)
			pt.X = xv.num
			pt.Series = labels[si]
			if err := pt.Validate(); err != nil {
				return nil, fmt.Errorf("point %d (%s, x=%s): %w", pt.Index, pt.Series, xv.label, err)
			}
			points = append(points, pt)
		}
	}
	return points, nil
}
