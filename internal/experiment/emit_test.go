package experiment

import (
	"bytes"
	"testing"

	"selfemerge/internal/core"
	"selfemerge/internal/testutil"
)

// goldenSet renders all three emitters of one result set against goldens.
func goldenSet(t *testing.T, prefix string, rs *ResultSet) {
	t.Helper()
	var csv, js, tbl bytes.Buffer
	if err := rs.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if err := rs.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if err := rs.WriteTable(&tbl); err != nil {
		t.Fatal(err)
	}
	testutil.Golden(t, prefix+".csv", csv.Bytes())
	testutil.Golden(t, prefix+".json", js.Bytes())
	testutil.Golden(t, prefix+".table", tbl.Bytes())
}

// TestSweepEmitGoldenMC locks the sweep CSV/JSON/table output schema for the
// Monte Carlo estimator (pinned to one worker, so the bytes are identical on
// every machine).
func TestSweepEmitGoldenMC(t *testing.T) {
	sw := Sweep{
		Name: "golden-mc",
		Seed: 7,
		Base: Point{Network: 500, Alpha: 1, K: 3, L: 2},
		Axes: []Axis{
			RangeAxis("p", 0, 0.2, 0.1),
			SchemeAxis(core.SchemeCentral, core.SchemeJoint),
		},
	}
	rs, err := Runner{Estimator: MonteCarlo{Trials: 100, Workers: 1}, Parallel: 2}.Run(sw)
	if err != nil {
		t.Fatal(err)
	}
	goldenSet(t, "sweep-mc", rs)
}

// TestSweepEmitGoldenAnalytic locks the emitters for the closed-form
// estimator, including a planner-sized multi-axis sweep.
func TestSweepEmitGoldenAnalytic(t *testing.T) {
	sw := Sweep{
		Name: "golden-analytic",
		Seed: 7,
		Base: Point{Network: 1000},
		Axes: []Axis{
			RangeAxis("p", 0, 0.3, 0.15),
			SchemeAxis(core.SchemeCentral, core.SchemeDisjoint, core.SchemeJoint),
		},
	}
	rs, err := Runner{Estimator: Analytic{}, Parallel: 3}.Run(sw)
	if err != nil {
		t.Fatal(err)
	}
	goldenSet(t, "sweep-analytic", rs)
}
