// Package experiment is the unified parallel experiment engine behind the
// paper's evaluation: one sweep abstraction over the three ways this
// repository measures a resilience point — the closed-form equations
// (internal/analytic), the sampled Monte Carlo model (internal/mc), and the
// live protocol stack (internal/scenario).
//
// A Sweep declares axes (malicious rate p, churn severity alpha, network
// size, scheme, shape, node budget, replicas, attack kind) over a base
// Point; it expands to a deterministic per-point-seeded grid. An Estimator
// measures one Point; a Runner executes a sweep's points concurrently over a
// worker pool and collects the Results in grid order, so the output is
// byte-identical regardless of worker count. Live-scenario points each build
// a private simulator and network fabric, which is what lets a full live
// figure curve saturate every core instead of serializing one-at-a-time
// runs.
//
// The figure generators of internal/bench are thin declarative sweep specs
// on this runner, and cmd/emergesim's sweep subcommand exposes it on the
// command line.
package experiment

import (
	"fmt"
	"math"
	"time"

	"selfemerge/internal/adversary"
	"selfemerge/internal/analytic"
	"selfemerge/internal/core"
	"selfemerge/internal/dht"
	"selfemerge/internal/fault"
	"selfemerge/internal/mc"
)

// Point is one fully-specified experiment point of a sweep grid: the scheme
// shape parameters, the environment, and the seed that makes the point's
// measurement reproducible.
type Point struct {
	Scheme core.Scheme
	// P is the malicious (Sybil) rate.
	P float64
	// Alpha is the churn severity T/lifetime; zero disables churn.
	Alpha float64
	// Network is the DHT population N.
	Network int
	// Budget caps the nodes a planner-sized plan may consume (0 => Network).
	Budget int
	// K and L fix the plan shape explicitly; both zero lets the planner size
	// it. ShareN/ShareM complete an explicit key share shape.
	K, L   int
	ShareN int
	ShareM []int
	// Replicas is the per-packet replica count for live estimation (0 => the
	// estimator's default).
	Replicas int
	// Drop selects the drop attack instead of the spy adversary (live
	// estimation; the abstract models measure both at once).
	Drop bool
	// Strategy selects the adversary strategy directly (spy, drop, eclipse);
	// it subsumes Drop, which survives as the legacy boolean axis. Live
	// estimation only.
	Strategy adversary.Strategy
	// Forge is the eclipse forgery rate (forged contacts per attacker per
	// minute); nonzero requires StrategyEclipse. Live estimation only.
	Forge float64
	// Table pins the DHT routing-table policy for live estimation (naive
	// stale-eviction vs ping-before-evict); TableDefault keeps the network
	// fabric's historical naive default.
	Table dht.TablePolicy
	// Partition runs the live point's one population across this many
	// parallel event loops (the partition engine; 0 = the estimator's
	// default, usually the classic single loop). Live estimation only.
	Partition int
	// Fault selects the deterministic fault-injection profile of the live
	// point's simnet fabric (none, burst, partition, flap); FaultSev scales
	// it in [0,1]. A none profile with nonzero severity — or vice versa — is
	// a valid no-op point, so severity and profile axes can cross freely.
	// Live estimation only; the abstract models are fault-blind.
	Fault    fault.Profile
	FaultSev float64
	// Retry is the live point's total send attempts per DHT RPC (0 or 1 =
	// the historical single-shot behaviour; above 1 enables the retry
	// hardening). Live estimation only.
	Retry int

	// Seed is the point's private base seed, assigned by the sweep
	// expansion: points sharing an X value share seeds, so series differ
	// only by the swept parameter (common random numbers).
	Seed uint64
	// Index is the point's flat position in the sweep grid; X and Series
	// locate it on the figure: the first-axis value and the series label
	// formed from the remaining axes.
	Index  int
	X      float64
	Series string
}

// Spec returns the canonical plan-builder parameters of the point.
func (pt Point) Spec() core.PlanSpec {
	budget := pt.Budget
	if budget == 0 {
		budget = pt.Network
	}
	return core.PlanSpec{
		Scheme: pt.Scheme,
		P:      pt.P,
		Alpha:  pt.Alpha,
		Budget: budget,
		K:      pt.K,
		L:      pt.L,
		ShareN: pt.ShareN,
		ShareM: pt.ShareM,
	}
}

// Plan builds the point's routing plan.
func (pt Point) Plan() (core.Plan, error) { return pt.Spec().Plan() }

// MaliciousCount is floor(p*N), the paper's Sybil head count.
func (pt Point) MaliciousCount() int { return int(pt.P * float64(pt.Network)) }

// Env is the point's abstract-model environment.
func (pt Point) Env() mc.Env {
	return mc.Env{Population: pt.Network, Malicious: pt.MaliciousCount(), Alpha: pt.Alpha}
}

// Validate checks the environment parameters an estimator relies on.
func (pt Point) Validate() error {
	if pt.Network < 1 {
		return fmt.Errorf("experiment: network size %d must be >= 1", pt.Network)
	}
	if pt.P < 0 || pt.P > 1 || math.IsNaN(pt.P) {
		return fmt.Errorf("experiment: malicious rate %v outside [0,1]", pt.P)
	}
	if pt.Alpha < 0 || math.IsNaN(pt.Alpha) {
		return fmt.Errorf("experiment: alpha %v must be >= 0", pt.Alpha)
	}
	if pt.Replicas < 0 {
		// Downstream defaults would quietly measure with 2 replicas while
		// the emitters label the series with the negative value.
		return fmt.Errorf("experiment: replicas %d must be >= 0", pt.Replicas)
	}
	if !pt.Scheme.Valid() {
		return fmt.Errorf("experiment: invalid scheme %d", int(pt.Scheme))
	}
	if pt.Forge < 0 || math.IsNaN(pt.Forge) {
		return fmt.Errorf("experiment: forge rate %v must be >= 0", pt.Forge)
	}
	if pt.Forge > 0 && pt.Strategy != adversary.StrategyEclipse {
		return fmt.Errorf("experiment: forge rate %v requires the eclipse strategy", pt.Forge)
	}
	if pt.Partition < 0 {
		return fmt.Errorf("experiment: partition %d must be >= 0", pt.Partition)
	}
	if err := (fault.Config{Profile: pt.Fault, Severity: pt.FaultSev}).Validate(); err != nil {
		return fmt.Errorf("experiment: %w", err)
	}
	if pt.Retry < 0 {
		return fmt.Errorf("experiment: retry %d must be >= 0", pt.Retry)
	}
	return nil
}

// Estimator measures the resilience of one experiment point. Implementations
// must be safe for concurrent use: the Runner calls Estimate from many
// goroutines.
type Estimator interface {
	// Name identifies the estimator in reports ("analytic", "mc", "live").
	Name() string
	// Estimate measures pt. The result must be deterministic for a fixed
	// point (including its seed) and independent of concurrent calls.
	Estimate(pt Point) (Result, error)
}

// Result is one measured point. Sampled estimators fill the outcome counts;
// the analytic estimator reports closed-form rates with zero Samples. Live
// estimation additionally carries the matched Monte Carlo references and the
// churn totals observed during the run.
type Result struct {
	Point Point
	Plan  core.Plan

	// Samples is the number of trials (MC) or missions (live); zero for the
	// closed forms. Released/Delivered/Succeeded are outcome counts.
	Samples   int
	Released  int
	Delivered int
	Succeeded int

	// Rr, Rd and R are the release-ahead, drop/loss and combined
	// resiliences.
	Rr float64
	Rd float64
	R  float64
	// Cost is the number of DHT nodes the plan consumes (Figure 6's C).
	Cost int
	// Predicted is the plan's closed-form resilience, when one exists.
	Predicted analytic.Resilience

	// HasReference marks live results cross-checked against the matched
	// Monte Carlo estimates; Agree* report the scenario.AgreesWithMC checks.
	HasReference bool
	RefRelease   mc.Result
	RefDeliver   mc.Result
	AgreeRelease bool
	AgreeDeliver bool
	// Deaths and Joins are the churn totals a live run observed.
	Deaths, Joins int
	// Retries, Recovered and Duplicates are the retry-hardening counters a
	// live run observed: RPC re-sends, RPCs that settled after a re-send,
	// and receiver-suppressed duplicate deliveries. All zero for single-shot
	// points and the abstract estimators.
	Retries, Recovered, Duplicates uint64

	// Epochs, IdleSkips and MergeAllocs are the partition engine's
	// event-loop counters: lockstep epoch barriers executed, epochs with at
	// most one busy shard, and hand-off outbox capacity growths. Pure
	// functions of the point (independent of GOMAXPROCS and worker counts);
	// all zero for non-partitioned points and the abstract estimators.
	Epochs, IdleSkips, MergeAllocs uint64

	// Elapsed is the wall-clock cost of the point. It is excluded from the
	// deterministic emitters.
	Elapsed time.Duration
}

// MinR returns min(Rr, Rd), Figure 6's plotting convention.
func (r Result) MinR() float64 { return math.Min(r.Rr, r.Rd) }
