package core
