package core

import (
	"testing"
	"time"
)

func TestSchemeString(t *testing.T) {
	tests := []struct {
		s    Scheme
		want string
	}{
		{SchemeCentral, "central"},
		{SchemeDisjoint, "disjoint"},
		{SchemeJoint, "joint"},
		{SchemeKeyShare, "share"},
		{Scheme(99), "Scheme(99)"},
	}
	for _, tc := range tests {
		if got := tc.s.String(); got != tc.want {
			t.Errorf("String(%d) = %q, want %q", int(tc.s), got, tc.want)
		}
	}
}

func TestParseSchemeRoundTrip(t *testing.T) {
	for _, s := range []Scheme{SchemeCentral, SchemeDisjoint, SchemeJoint, SchemeKeyShare} {
		got, err := ParseScheme(s.String())
		if err != nil || got != s {
			t.Errorf("ParseScheme(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseScheme("bogus"); err == nil {
		t.Error("ParseScheme(bogus) succeeded")
	}
}

func TestPlanCentral(t *testing.T) {
	plan := PlanCentral(0.3)
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	if plan.NodesRequired() != 1 {
		t.Errorf("NodesRequired = %d", plan.NodesRequired())
	}
	if plan.Predicted.ReleaseAhead != 0.7 || plan.Predicted.Drop != 0.7 {
		t.Errorf("Predicted = %+v", plan.Predicted)
	}
}

func TestPlanMultipathMeetsTargetCheaply(t *testing.T) {
	cfg := PlannerConfig{Budget: 10000}
	plan, err := PlanMultipath(SchemeJoint, 0.2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := plan.Predicted.Min(); got < 0.999 {
		t.Errorf("joint plan at p=0.2 achieves %v, want >= 0.999", got)
	}
	if plan.NodesRequired() > 500 {
		t.Errorf("joint plan at p=0.2 uses %d nodes; target should be reachable cheaply", plan.NodesRequired())
	}
}

func TestPlanMultipathFallsBackToMaxMin(t *testing.T) {
	// At p=0.45 no shape within 10000 nodes reaches 0.999; the planner must
	// return the best achievable, which the paper shows is still > 0.8 for
	// the joint scheme.
	plan, err := PlanMultipath(SchemeJoint, 0.45, PlannerConfig{Budget: 10000})
	if err != nil {
		t.Fatal(err)
	}
	got := plan.Predicted.Min()
	if got >= 0.999 {
		t.Fatalf("unexpectedly met target at p=0.45: %+v", plan)
	}
	if got < 0.75 {
		t.Errorf("joint max-min at p=0.45 = %v, want > 0.75", got)
	}
	if plan.NodesRequired() > 10000 {
		t.Errorf("plan exceeds budget: %d", plan.NodesRequired())
	}
}

func TestPlanMultipathDisjointDegradesToBaseline(t *testing.T) {
	// Figure 6(a): past p ~ 0.3 the disjoint optimum collapses to (or very
	// near) the centralized baseline.
	plan, err := PlanMultipath(SchemeDisjoint, 0.45, PlannerConfig{Budget: 10000})
	if err != nil {
		t.Fatal(err)
	}
	base := 1 - 0.45
	if got := plan.Predicted.Min(); got < base-1e-9 || got > base+0.05 {
		t.Errorf("disjoint at p=0.45 = %v, want within [baseline, baseline+0.05] = [%v, %v]", got, base, base+0.05)
	}
}

func TestPlanMultipathJointBeatsDisjoint(t *testing.T) {
	for _, p := range []float64{0.1, 0.2, 0.3, 0.4} {
		dj, err := PlanMultipath(SchemeDisjoint, p, PlannerConfig{Budget: 10000})
		if err != nil {
			t.Fatal(err)
		}
		jt, err := PlanMultipath(SchemeJoint, p, PlannerConfig{Budget: 10000})
		if err != nil {
			t.Fatal(err)
		}
		if jt.Predicted.Min() < dj.Predicted.Min()-1e-9 {
			t.Errorf("p=%v: joint %v < disjoint %v", p, jt.Predicted.Min(), dj.Predicted.Min())
		}
	}
}

func TestPlanMultipathRespectsBudget(t *testing.T) {
	for _, budget := range []int{1, 10, 100, 10000} {
		for _, p := range []float64{0.1, 0.3, 0.5} {
			plan, err := PlanMultipath(SchemeJoint, p, PlannerConfig{Budget: budget})
			if err != nil {
				t.Fatal(err)
			}
			if plan.NodesRequired() > budget {
				t.Errorf("budget=%d p=%v: plan uses %d nodes", budget, p, plan.NodesRequired())
			}
		}
	}
}

func TestPlanMultipathRejectsWrongScheme(t *testing.T) {
	if _, err := PlanMultipath(SchemeCentral, 0.2, PlannerConfig{Budget: 10}); err == nil {
		t.Error("expected error for central scheme")
	}
	if _, err := PlanMultipath(SchemeKeyShare, 0.2, PlannerConfig{Budget: 10}); err == nil {
		t.Error("expected error for share scheme")
	}
	if _, err := PlanMultipath(SchemeJoint, 0.2, PlannerConfig{Budget: 0}); err == nil {
		t.Error("expected error for zero budget")
	}
}

func TestPlanKeyShareStructure(t *testing.T) {
	plan, err := PlanKeyShare(0.2, 3, 1, PlannerConfig{Budget: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	if plan.L < 2 {
		t.Errorf("share plan needs >= 2 columns, got %d", plan.L)
	}
	if plan.ShareN < plan.K {
		t.Errorf("n=%d < k=%d", plan.ShareN, plan.K)
	}
	if len(plan.ShareM) != plan.L-1 {
		t.Errorf("got %d thresholds for %d columns", len(plan.ShareM), plan.L)
	}
	if plan.NodesRequired() > 10000 {
		t.Errorf("share plan exceeds budget: %d", plan.NodesRequired())
	}
}

func TestPlanKeyShareSmallBudget(t *testing.T) {
	// Figure 8 runs the share scheme down to 100 available nodes.
	plan, err := PlanKeyShare(0.1, 3, 1, PlannerConfig{Budget: 100})
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	if plan.NodesRequired() > 100 {
		t.Errorf("plan uses %d nodes, budget 100", plan.NodesRequired())
	}
}

func TestPlanKeyShareChurnResilient(t *testing.T) {
	// The paper's headline: at T = 5 lifetimes and p < 0.3 the share scheme
	// retains high predicted resilience.
	plan, err := PlanKeyShare(0.2, 5, 1, PlannerConfig{Budget: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.Predicted.Min(); got < 0.9 {
		t.Errorf("share plan resilience %v at alpha=5, want >= 0.9", got)
	}
}

func TestHoldPeriod(t *testing.T) {
	plan := Plan{Scheme: SchemeJoint, K: 2, L: 4}
	if got := plan.HoldPeriod(8 * time.Hour); got != 2*time.Hour {
		t.Errorf("HoldPeriod = %v", got)
	}
}

func TestPlanValidateCatchesCorruption(t *testing.T) {
	tests := []struct {
		name string
		plan Plan
	}{
		{"bad scheme", Plan{Scheme: Scheme(9), K: 1, L: 1}},
		{"central wrong shape", Plan{Scheme: SchemeCentral, K: 2, L: 1}},
		{"zero k", Plan{Scheme: SchemeJoint, K: 0, L: 3}},
		{"share n below k", Plan{Scheme: SchemeKeyShare, K: 5, L: 3, ShareN: 2, ShareM: []int{1, 1}}},
		{"share threshold count", Plan{Scheme: SchemeKeyShare, K: 2, L: 3, ShareN: 4, ShareM: []int{1}}},
		{"share threshold range", Plan{Scheme: SchemeKeyShare, K: 2, L: 3, ShareN: 4, ShareM: []int{0, 2}}},
	}
	for _, tc := range tests {
		if err := tc.plan.Validate(); err == nil {
			t.Errorf("%s: Validate passed", tc.name)
		}
	}
}
