// Package core implements the paper's primary contribution: the four
// self-emerging key routing schemes (centralized, node-disjoint multipath,
// node-joint multipath, and key share routing), the planner that sizes a
// scheme's path structure (k paths of l holders, per-column Shamir
// thresholds) for a target adversary, and the concrete holder topologies the
// protocol and simulators execute.
package core

import "fmt"

// Scheme identifies one of the four self-emerging key routing schemes of
// Section III.
type Scheme int

const (
	// SchemeCentral stores the key on a single DHT node for the whole
	// emerging period (Section III-A). Baseline.
	SchemeCentral Scheme = iota + 1
	// SchemeDisjoint routes k replicated onions along node-disjoint paths of
	// l holders with pre-assigned layer keys (Section III-B).
	SchemeDisjoint
	// SchemeJoint additionally forwards every column-j package to every
	// column-(j+1) holder, maximizing path multiplicity (Section III-C).
	SchemeJoint
	// SchemeKeyShare delivers onion layer keys just-in-time as Shamir shares
	// routed alongside the onions (Section III-D, Algorithm 1).
	SchemeKeyShare
)

// String returns the scheme label used across the paper's figures.
func (s Scheme) String() string {
	switch s {
	case SchemeCentral:
		return "central"
	case SchemeDisjoint:
		return "disjoint"
	case SchemeJoint:
		return "joint"
	case SchemeKeyShare:
		return "share"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Valid reports whether s names a known scheme.
func (s Scheme) Valid() bool {
	return s >= SchemeCentral && s <= SchemeKeyShare
}

// ParseScheme converts a figure label back into a Scheme.
func ParseScheme(label string) (Scheme, error) {
	for _, s := range []Scheme{SchemeCentral, SchemeDisjoint, SchemeJoint, SchemeKeyShare} {
		if s.String() == label {
			return s, nil
		}
	}
	return 0, fmt.Errorf("core: unknown scheme %q", label)
}
