package core

import (
	"fmt"
	"math"
)

// PlanSpec is the one canonical plan-from-parameters builder: it describes a
// routing plan either by explicit shape (K and L set, as the emergesim
// scenario/sweep flags do) or by planner sizing under a node budget (as the
// figure sweeps do). The bench sweeps, the experiment estimators and
// cmd/emergesim all build their plans through it.
type PlanSpec struct {
	Scheme Scheme
	// P is the malicious rate the planner sizes against; it also drives the
	// closed-form prediction attached to explicit shapes.
	P float64
	// Alpha is the churn severity T/lifetime used by the key share scheme's
	// Algorithm 1 (non-positive defaults to 1, the mild-churn setting).
	Alpha float64
	// Budget caps how many DHT nodes a planner-sized plan may consume.
	Budget int
	// K and L, when both zero, ask the planner to size the shape; otherwise
	// they fix it explicitly. ShareN/ShareM complete an explicit key share
	// shape.
	K, L   int
	ShareN int
	ShareM []int
}

// Plan builds the plan the spec describes.
func (s PlanSpec) Plan() (Plan, error) {
	// The closed forms panic outside the unit interval; reject early so CLI
	// flag typos surface as errors, not panics.
	if s.P < 0 || s.P > 1 || math.IsNaN(s.P) {
		return Plan{}, fmt.Errorf("core: malicious rate %v outside [0,1]", s.P)
	}
	if s.K != 0 || s.L != 0 {
		return s.explicit()
	}
	return s.sized()
}

// explicit assembles a fixed-shape plan, attaching the no-churn closed-form
// prediction where one exists.
func (s PlanSpec) explicit() (Plan, error) {
	var plan Plan
	switch s.Scheme {
	case SchemeCentral:
		plan = PlanCentral(s.P)
	case SchemeDisjoint:
		plan = Plan{Scheme: SchemeDisjoint, K: s.K, L: s.L, Predicted: resilienceOf(SchemeDisjoint, s.P, s.K, s.L)}
	case SchemeJoint:
		plan = Plan{Scheme: SchemeJoint, K: s.K, L: s.L, Predicted: resilienceOf(SchemeJoint, s.P, s.K, s.L)}
	case SchemeKeyShare:
		plan = Plan{Scheme: SchemeKeyShare, K: s.K, L: s.L, ShareN: s.ShareN, ShareM: s.ShareM}
	default:
		return Plan{}, fmt.Errorf("core: unknown scheme %v", s.Scheme)
	}
	if err := plan.Validate(); err != nil {
		return Plan{}, err
	}
	return plan, nil
}

// sized runs the scheme's planner. The key share planner takes the emerging
// period in lifetime units (T = alpha, lifetime = 1): only the ratio matters.
func (s PlanSpec) sized() (Plan, error) {
	switch s.Scheme {
	case SchemeCentral:
		return PlanCentral(s.P), nil
	case SchemeDisjoint, SchemeJoint:
		return PlanMultipath(s.Scheme, s.P, PlannerConfig{Budget: s.Budget})
	case SchemeKeyShare:
		alpha := s.Alpha
		if alpha <= 0 {
			alpha = 1
		}
		return PlanKeyShare(s.P, alpha, 1, PlannerConfig{Budget: s.Budget})
	default:
		return Plan{}, fmt.Errorf("core: unknown scheme %v", s.Scheme)
	}
}
