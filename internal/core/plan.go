package core

import (
	"fmt"
	"math"
	"time"

	"selfemerge/internal/analytic"
)

// Plan is a fully-sized routing scheme: which scheme to run, the path shape
// (k replicated paths of l holder columns), and — for the key share scheme —
// the per-column Shamir thresholds. A Plan is what the sender needs to build
// a Topology, generate packages and dispatch them into the DHT.
type Plan struct {
	Scheme Scheme
	K      int // replication factor: number of (main) paths
	L      int // path length: number of holder columns

	// ShareN is the number of share carriers per column (key share scheme
	// only); ShareM[j] is the Shamir threshold protecting the column j+1 key
	// for j in [0, L-1). ShareM[0] corresponds to column 2: the first
	// column's keys are delivered directly and have no threshold.
	ShareN int
	ShareM []int

	// Predicted holds the closed-form no-churn resilience of the plan
	// (Equations (1)-(3), or Algorithm 1 for the key share scheme).
	Predicted analytic.Resilience
}

// NodesRequired returns the number of distinct DHT nodes the plan consumes —
// the quantity plotted as C in Figure 6(b)/(d).
func (p Plan) NodesRequired() int {
	switch p.Scheme {
	case SchemeCentral:
		return 1
	case SchemeDisjoint, SchemeJoint:
		return p.K * p.L
	case SchemeKeyShare:
		// Resources are assigned uniformly along the paths (Algorithm 1
		// line 1): every column, terminal included, holds ShareN carriers.
		return p.ShareN * p.L
	default:
		return 0
	}
}

// HoldPeriod returns th = T/l, the per-hop holding period that makes the
// whole route take exactly the emerging period T.
func (p Plan) HoldPeriod(emergingPeriod time.Duration) time.Duration {
	if p.L <= 0 {
		return emergingPeriod
	}
	return emergingPeriod / time.Duration(p.L)
}

// Validate checks structural invariants.
func (p Plan) Validate() error {
	if !p.Scheme.Valid() {
		return fmt.Errorf("core: invalid scheme %d", int(p.Scheme))
	}
	if p.Scheme == SchemeCentral {
		if p.K != 1 || p.L != 1 {
			return fmt.Errorf("core: central plan must be 1x1, got %dx%d", p.K, p.L)
		}
		return nil
	}
	if p.K < 1 || p.L < 1 {
		return fmt.Errorf("core: plan shape %dx%d invalid", p.K, p.L)
	}
	if p.Scheme == SchemeKeyShare {
		if p.ShareN < p.K {
			return fmt.Errorf("core: share plan has n=%d < k=%d", p.ShareN, p.K)
		}
		if len(p.ShareM) != p.L-1 {
			return fmt.Errorf("core: share plan has %d thresholds, want %d", len(p.ShareM), p.L-1)
		}
		for i, m := range p.ShareM {
			if m < 1 || m > p.ShareN {
				return fmt.Errorf("core: threshold m[%d]=%d outside [1,%d]", i, m, p.ShareN)
			}
		}
	}
	return nil
}

// PlannerConfig bounds the planner's search. The zero value is completed by
// defaults that cover the paper's sweeps.
type PlannerConfig struct {
	// Budget is the maximum number of DHT nodes the plan may consume (the
	// "available nodes" N of Figures 6 and 8).
	Budget int
	// TargetR is the resilience the sender asks for. The planner returns the
	// cheapest shape whose min(Rr, Rd) meets the target; when no shape within
	// Budget meets it, the planner returns the best-achievable (max-min)
	// shape — this is what bends the curves of Figure 6(a) downward and
	// drives the node cost of Figure 6(b) toward the budget as p grows.
	// Default 0.999.
	TargetR float64
	// MaxK caps the replication factor search. Default 64: Rr decays in k,
	// so optima stay far below this.
	MaxK int
	// MaxL caps the path length search. Default: the node budget.
	MaxL int
	// ShareMaxK and ShareMaxL cap the key share scheme's own shape search
	// (defaults 12 and 8). Long share paths are counter-productive: every
	// extra column both divides the share budget (n = N/l) and adds one
	// more Shamir threshold that must hold, so the search stays small; the
	// paper's examples use l = 3.
	ShareMaxK int
	ShareMaxL int
}

func (c PlannerConfig) withDefaults() PlannerConfig {
	if c.TargetR == 0 {
		c.TargetR = 0.999
	}
	if c.MaxK == 0 {
		c.MaxK = 64
	}
	if c.MaxL == 0 {
		c.MaxL = c.Budget
	}
	if c.ShareMaxK == 0 {
		c.ShareMaxK = 12
	}
	if c.ShareMaxL == 0 {
		c.ShareMaxL = 8
	}
	return c
}

// PlanCentral returns the trivial single-node plan.
func PlanCentral(p float64) Plan {
	return Plan{Scheme: SchemeCentral, K: 1, L: 1, Predicted: analytic.Central(p)}
}

// PlanMultipath sizes a node-disjoint or node-joint multipath scheme for
// malicious rate p: the cheapest (k, l) whose min(Rr, Rd) reaches
// cfg.TargetR, or the max-min shape within budget when the target is
// unreachable (Section III-B: "the sender can apply equations 1 and 2 to
// calculate k and l ... for her expected attack resilience").
func PlanMultipath(scheme Scheme, p float64, cfg PlannerConfig) (Plan, error) {
	if scheme != SchemeDisjoint && scheme != SchemeJoint {
		return Plan{}, fmt.Errorf("core: PlanMultipath does not size %v", scheme)
	}
	cfg = cfg.withDefaults()
	if cfg.Budget < 1 {
		return Plan{}, fmt.Errorf("core: node budget %d must be >= 1", cfg.Budget)
	}

	var (
		// Cheapest shape meeting the target.
		hit     Plan
		hitCost int
		// Best-achievable fallback.
		best      = Plan{Scheme: scheme, K: 1, L: 1, Predicted: resilienceOf(scheme, p, 1, 1)}
		bestScore = best.Predicted.Min()
		bestCost  = 1
	)
	for l := 1; l <= cfg.MaxL; l++ {
		maxK := cfg.Budget / l
		if maxK > cfg.MaxK {
			maxK = cfg.MaxK
		}
		for k := 1; k <= maxK; k++ {
			r := resilienceOf(scheme, p, k, l)
			score := r.Min()
			cost := k * l
			if score >= cfg.TargetR && (hitCost == 0 || cost < hitCost) {
				hit = Plan{Scheme: scheme, K: k, L: l, Predicted: r}
				hitCost = cost
			}
			if score > bestScore+1e-12 || (score > bestScore-1e-12 && cost < bestCost) {
				best = Plan{Scheme: scheme, K: k, L: l, Predicted: r}
				bestScore = score
				bestCost = cost
			}
		}
	}
	if hitCost != 0 {
		return hit, nil
	}
	return best, nil
}

func resilienceOf(scheme Scheme, p float64, k, l int) analytic.Resilience {
	if scheme == SchemeJoint {
		return analytic.Joint(p, k, l)
	}
	return analytic.Disjoint(p, k, l)
}

// PlanKeyShare sizes the key share routing scheme for the given emerging
// period and mean node lifetime (any common unit; only the ratio alpha =
// T/lifetime matters). For every candidate shape (k paths, l columns) within
// cfg's share-search bounds it runs Algorithm 1 to pick the per-column
// Shamir thresholds and predict Rr/Rd, corrects the drop prediction for the
// entry column (the main onion enters on only k holders, each of which must
// survive one holding period — a churn term Algorithm 1's recurrence leaves
// out), and keeps the max-min shape.
//
// Unlike the multipath planner there is no cheapest-cost notion: Algorithm 1
// line 1 always spreads the full node budget uniformly along the columns
// (n = floor(N/l)), matching Figure 8 where the budget itself is the
// independent variable.
func PlanKeyShare(p float64, emergingPeriod, meanLifetime float64, cfg PlannerConfig) (Plan, error) {
	cfg = cfg.withDefaults()
	if cfg.Budget < 2 {
		return Plan{}, fmt.Errorf("core: budget %d cannot host a share topology", cfg.Budget)
	}
	if emergingPeriod <= 0 || meanLifetime <= 0 {
		return Plan{}, fmt.Errorf("core: emerging period %v and lifetime %v must be positive", emergingPeriod, meanLifetime)
	}

	var (
		best      Plan
		bestScore = -1.0
	)
	maxL := cfg.ShareMaxL
	if maxL > cfg.Budget/2 {
		maxL = cfg.Budget / 2
	}
	for l := 2; l <= maxL; l++ {
		n := cfg.Budget / l
		if n < 1 {
			break
		}
		maxK := cfg.ShareMaxK
		if maxK > n {
			maxK = n
		}
		for k := 1; k <= maxK; k++ {
			ks, err := analytic.PlanKeyShare(analytic.KeyShareInput{
				K:      k,
				L:      l,
				N:      cfg.Budget,
				T:      emergingPeriod,
				Lambda: meanLifetime,
				P:      p,
			})
			if err != nil {
				return Plan{}, fmt.Errorf("core: sizing share thresholds: %w", err)
			}
			// Entry correction: the main onion must clear column 1, which
			// requires one of the k main holders to be honest and survive
			// the first holding period.
			perHolderLoss := p + (1-p)*ks.PDead
			entry := 1 - math.Pow(perHolderLoss, float64(k))
			adjusted := analytic.Resilience{
				ReleaseAhead: ks.Result.ReleaseAhead,
				Drop:         ks.Result.Drop * entry,
			}
			score := adjusted.Min()
			if score > bestScore+1e-12 {
				thresholds := make([]int, 0, l-1)
				for _, col := range ks.Columns[1:] {
					thresholds = append(thresholds, col.M)
				}
				best = Plan{
					Scheme:    SchemeKeyShare,
					K:         k,
					L:         l,
					ShareN:    ks.SharesN,
					ShareM:    thresholds,
					Predicted: adjusted,
				}
				bestScore = score
			}
		}
	}
	if bestScore < 0 {
		return Plan{}, fmt.Errorf("core: no feasible share topology within budget %d", cfg.Budget)
	}
	if err := best.Validate(); err != nil {
		return Plan{}, err
	}
	return best, nil
}
