// Package selfemerge is a Go implementation of timed-release self-emerging
// data over distributed hash tables, reproducing Li & Palanisamy,
// "Timed-release of Self-emerging Data using Distributed Hash Tables"
// (ICDCS 2017).
//
// A sender encrypts a message, parks the ciphertext in an always-available
// cloud store, and routes the decryption key through a Kademlia DHT along
// pseudo-random multi-hop holder paths so that the key is unavailable to
// everyone — including the receiver — before the release time tr, and
// reappears automatically at tr. Four routing schemes trade attack
// resilience against churn resilience and node cost:
//
//   - SchemeCentral: one holder keeps the key for the whole emerging period.
//   - SchemeDisjoint: k node-disjoint onion paths of l holders (Section III-B).
//   - SchemeJoint: node-joint multipath routing, maximizing path multiplicity
//     (Section III-C).
//   - SchemeKeyShare: onion layer keys delivered just-in-time as Shamir
//     shares (Section III-D, Algorithm 1) — the churn-resilient scheme.
//     Holders recover keys from threshold-sized share subsets validated
//     against the authenticated onion layers (so corrupt shares cannot
//     poison recovery), and surviving custodians re-grant scattered shares
//     to same-zone churn replacements once per holding period; the
//     live-faithful Monte Carlo model (mc.ShareModelLive) mirrors these
//     semantics and cross-validates against live scenario runs.
//
// The package offers an in-process network (simulated time, thousands of
// nodes) for experimentation and testing; the same DHT and protocol code
// runs over real UDP sockets via cmd/dhtnode. The paper's full evaluation
// (Figures 6, 7 and 8) regenerates via cmd/emergesim and the benchmarks in
// bench_test.go.
//
// Evaluation is organized around the unified experiment engine
// (internal/experiment): a declarative Sweep expands to a deterministic
// per-point-seeded grid, and a worker-pool Runner measures every point
// through one of three interchangeable estimators — the closed-form
// equations (internal/analytic), the Monte Carlo model (internal/mc), or
// live missions through the full protocol stack (internal/scenario), each
// live point booting a private simulator so sweeps scale across cores.
// A single live point scales across cores too: scenario.Config.Shards = S
// partitions its missions over S independent network replicas (each a
// private simulator, fabric and zone map seeded from a substream of the
// point seed), run concurrently and merged in fixed shard order — results
// are byte-identical regardless of GOMAXPROCS or worker counts, and S is
// part of the point descriptor: it selects S independent network
// compositions to average over, shrinking per-network scatter ~sqrt(S).
// The "emergesim sweep" subcommand exposes the engine on the command line;
// the figure names (fig6a..fig8) are canned sweep specs.
//
// The mission hot path is tuned to run live scenarios as fast as the
// hardware allows: wire codecs are append-style over pooled buffers (the
// transports recycle delivery buffers; handlers clone what they keep),
// AES-GCM state is cached per key (seal.Sealer, onion.BuildSealers),
// Shamir splitting draws whole polynomial sets in one batch, and the
// simulator schedules per-message events without closures or timer
// handles. Simulation networks draw every sender-side cryptographic byte —
// mission IDs, keys, nonces, share polynomials — from a ChaCha8 stream
// derived from NetworkConfig.Seed, making a live run a pure function of
// its seed down to the ciphertexts; real deployments (cmd/emergectl with
// NetworkConfig.SystemRand, cmd/dhtnode) keep crypto/rand. Baselines and
// the CI allocation gate live in BENCH_scenario.json.
//
// Quick start:
//
//	net, _ := selfemerge.NewNetwork(selfemerge.NetworkConfig{Nodes: 200})
//	msg, _ := net.Send([]byte("attack at dawn"), 24*time.Hour,
//	    selfemerge.WithScheme(selfemerge.SchemeJoint))
//	net.RunUntil(msg.Release())       // advance simulated time
//	plaintext, at, ok := net.Emerged(msg)
package selfemerge
