module selfemerge

go 1.23
