module selfemerge

go 1.22
