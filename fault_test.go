package selfemerge

import (
	"testing"
	"time"
)

// TestCrashRestartAcrossHoldingBoundary: under the flap profile, holder
// endpoints go transport-down for crash sojourns and come back with custody
// intact — including across holding-period boundaries, where the forwarding
// hop and the grant refresh land on nodes that may be mid-outage. With the
// retry policy enabled the mission still emerges on time, and the counters
// show the recovery machinery actually worked for it.
func TestCrashRestartAcrossHoldingBoundary(t *testing.T) {
	net, err := NewNetwork(NetworkConfig{
		Nodes:         80,
		Fault:         FaultFlap,
		FaultSeverity: 0.7,
		Retry:         3,
		Seed:          12,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Joint k=3 l=2: one holding-period boundary at T/2, crossed while the
	// crash schedule (mean sojourns: ~132s up, ~7.3s down at severity 0.7)
	// has cycled every holder through multiple outages.
	msg, err := net.Send([]byte("survives the crashes"), 2*time.Hour,
		WithScheme(SchemeJoint), WithThreatModel(0.1))
	if err != nil {
		t.Fatal(err)
	}
	net.RunUntil(msg.Release().Add(5 * time.Minute))
	net.Settle()
	plain, at, ok := net.Emerged(msg)
	if !ok {
		t.Fatal("message never emerged through crash-restart windows")
	}
	if string(plain) != "survives the crashes" {
		t.Fatalf("plaintext = %q", plain)
	}
	if at.Before(msg.Release()) {
		t.Fatalf("emerged at %v before release %v", at, msg.Release())
	}
	res := net.ResilienceStats()
	if res.Retries == 0 || res.Recovered == 0 {
		t.Fatalf("no retry activity under flap outages: %+v", res)
	}
}

// TestFlapWithoutRetryDegrades is the control arm: the same crash-restart
// schedule with single-shot RPCs records zero retry activity, whatever the
// mission outcome. (The sweep-level curves in DESIGN.md quantify the Rd gap;
// this pins the mechanism: no policy, no re-sends.)
func TestFlapWithoutRetryDegrades(t *testing.T) {
	net, err := NewNetwork(NetworkConfig{
		Nodes:         80,
		Fault:         FaultFlap,
		FaultSeverity: 0.7,
		Seed:          12,
	})
	if err != nil {
		t.Fatal(err)
	}
	msg, err := net.Send([]byte("unhardened"), 2*time.Hour,
		WithScheme(SchemeJoint), WithThreatModel(0.1))
	if err != nil {
		t.Fatal(err)
	}
	net.RunUntil(msg.Release().Add(5 * time.Minute))
	net.Settle()
	if res := net.ResilienceStats(); res != (Resilience{}) {
		t.Fatalf("single-shot run recorded retry activity: %+v", res)
	}
}
