package selfemerge

import (
	"bytes"
	"testing"
	"time"
)

func TestQuickstartFlow(t *testing.T) {
	net, err := NewNetwork(NetworkConfig{Nodes: 60, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	msg, err := net.Send([]byte("see you in the future"), 4*time.Hour,
		WithScheme(SchemeJoint), WithThreatModel(0.1))
	if err != nil {
		t.Fatal(err)
	}
	// Before release: nothing.
	net.RunUntil(msg.Release().Add(-time.Minute))
	if _, _, ok := net.Emerged(msg); ok {
		t.Fatal("message emerged before release time")
	}
	// After release: plaintext comes back.
	net.RunUntil(msg.Release().Add(time.Minute))
	net.Settle()
	plain, at, ok := net.Emerged(msg)
	if !ok {
		t.Fatal("message never emerged")
	}
	if !bytes.Equal(plain, []byte("see you in the future")) {
		t.Fatalf("plaintext = %q", plain)
	}
	if at.Before(msg.Release()) {
		t.Fatalf("emerged at %v before release %v", at, msg.Release())
	}
}

func TestAllSchemesEmerge(t *testing.T) {
	for _, scheme := range []Scheme{SchemeCentral, SchemeDisjoint, SchemeJoint, SchemeKeyShare} {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			net, err := NewNetwork(NetworkConfig{Nodes: 80, Seed: 2})
			if err != nil {
				t.Fatal(err)
			}
			msg, err := net.Send([]byte("payload"), 6*time.Hour,
				WithScheme(scheme), WithThreatModel(0.1), WithNodeBudget(40))
			if err != nil {
				t.Fatal(err)
			}
			net.RunUntil(msg.Release().Add(5 * time.Minute))
			net.Settle()
			plain, _, ok := net.Emerged(msg)
			if !ok {
				t.Fatalf("%v never emerged", scheme)
			}
			if string(plain) != "payload" {
				t.Fatalf("plaintext = %q", plain)
			}
		})
	}
}

func TestFullCompromiseIsReleaseAhead(t *testing.T) {
	net, err := NewNetwork(NetworkConfig{Nodes: 50, MaliciousRate: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	msg, err := net.Send([]byte("sensitive"), 10*time.Hour, WithScheme(SchemeJoint))
	if err != nil {
		t.Fatal(err)
	}
	net.RunFor(time.Hour) // well before release
	at, ok := net.AdversaryRecovered(msg)
	if !ok {
		t.Fatal("total compromise did not recover the key")
	}
	if !at.Before(msg.Release()) {
		t.Fatal("recovery not ahead of release")
	}
	if !net.AdversaryDecrypts(msg) {
		t.Fatal("adversary key does not decrypt the cloud object")
	}
}

func TestDropAttackPreventsEmergence(t *testing.T) {
	net, err := NewNetwork(NetworkConfig{Nodes: 50, MaliciousRate: 1, DropAttack: true, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	msg, err := net.Send([]byte("doomed"), 2*time.Hour, WithScheme(SchemeJoint))
	if err != nil {
		t.Fatal(err)
	}
	net.RunUntil(msg.Release().Add(time.Hour))
	net.Settle()
	if _, _, ok := net.Emerged(msg); ok {
		t.Fatal("message emerged through a total drop attack")
	}
}

func TestEclipsePoisoningNaiveVsPingEvict(t *testing.T) {
	// Same seed, same flood, only the bucket admission policy differs. The
	// naive table stale-evicts quiet live peers for forged newcomers; the
	// ping-evict table probes the resident first and keeps it when it
	// answers, so live routing state survives the flood.
	audit := func(policy TablePolicy) (live, poisoned int, forged uint64) {
		net, err := NewNetwork(NetworkConfig{
			Nodes:         80,
			MaliciousRate: 0.2,
			Attack:        AttackEclipse,
			ForgeRate:     60,
			Table:         policy,
			Seed:          99,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Run well past the staleness threshold so naive tables consider
		// their quiet residents evictable.
		net.RunFor(90 * time.Minute)
		live, poisoned = net.RouteAudit()
		return live, poisoned, net.ForgedContacts()
	}
	naiveLive, naivePoisoned, naiveForged := audit(TableNaive)
	evictLive, _, evictForged := audit(TablePingEvict)
	if naiveForged == 0 || evictForged == 0 {
		t.Fatalf("forger idle: %d/%d forged contacts", naiveForged, evictForged)
	}
	if naivePoisoned == 0 {
		t.Fatal("flood poisoned no naive-table entries")
	}
	if evictLive <= naiveLive {
		t.Errorf("ping-evict kept %d live routes, naive kept %d; expected the defended tables to retain more", evictLive, naiveLive)
	}
	t.Logf("live routes: naive %d (poisoned %d), pingevict %d; forged %d", naiveLive, naivePoisoned, evictLive, naiveForged)
}

func TestEclipsePingEvictStillEmerges(t *testing.T) {
	net, err := NewNetwork(NetworkConfig{
		Nodes:         80,
		MaliciousRate: 0.1,
		Attack:        AttackEclipse,
		ForgeRate:     60,
		Table:         TablePingEvict,
		Seed:          23,
	})
	if err != nil {
		t.Fatal(err)
	}
	msg, err := net.Send([]byte("through the flood"), 3*time.Hour,
		WithScheme(SchemeJoint), WithThreatModel(0.1))
	if err != nil {
		t.Fatal(err)
	}
	net.RunUntil(msg.Release().Add(10 * time.Minute))
	net.Settle()
	if _, _, ok := net.Emerged(msg); !ok {
		t.Fatal("message lost under an eclipse flood despite ping-evict tables")
	}
	if net.ForgedContacts() == 0 {
		t.Fatal("forger emitted nothing; the run measured no attack")
	}
}

func TestNoAdversaryNothingRecovered(t *testing.T) {
	net, err := NewNetwork(NetworkConfig{Nodes: 40, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	msg, err := net.Send([]byte("clean"), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	net.RunUntil(msg.Release().Add(time.Minute))
	net.Settle()
	if _, ok := net.AdversaryRecovered(msg); ok {
		t.Fatal("adversary recovered a key with zero malicious nodes")
	}
	if net.AdversaryDecrypts(msg) {
		t.Fatal("adversary decrypts with zero malicious nodes")
	}
}

func TestChurnNetworkStillServes(t *testing.T) {
	// Mild churn relative to the emerging period: the joint scheme should
	// still deliver with high probability at this scale; we fix the seed so
	// the test is deterministic.
	net, err := NewNetwork(NetworkConfig{Nodes: 120, MeanLifetime: 200 * time.Hour, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	msg, err := net.Send([]byte("survives churn"), 2*time.Hour, WithScheme(SchemeJoint))
	if err != nil {
		t.Fatal(err)
	}
	net.RunUntil(msg.Release().Add(10 * time.Minute))
	net.Settle()
	if _, _, ok := net.Emerged(msg); !ok {
		t.Fatal("message lost under mild churn")
	}
}

func TestChurnReplacementKeepsPopulationServing(t *testing.T) {
	// Heavy churn with replacement and protocol repair: dead holders are
	// re-filled and re-granted their layer keys, so the joint scheme still
	// delivers. Without Replace+Repair this configuration routinely loses
	// missions.
	net, err := NewNetwork(NetworkConfig{
		Nodes:        120,
		MeanLifetime: 8 * time.Hour,
		Replace:      true,
		Repair:       true,
		Seed:         16,
	})
	if err != nil {
		t.Fatal(err)
	}
	msg, err := net.Send([]byte("replaced but alive"), 4*time.Hour,
		WithScheme(SchemeJoint), WithThreatModel(0.05))
	if err != nil {
		t.Fatal(err)
	}
	net.RunUntil(msg.Release().Add(10 * time.Minute))
	net.Settle()
	if _, _, ok := net.Emerged(msg); !ok {
		t.Fatal("message lost despite churn replacement and repair")
	}
	deaths, joins := net.ChurnEvents()
	if deaths == 0 {
		t.Fatal("churn configuration produced no deaths")
	}
	if joins != deaths {
		t.Fatalf("%d deaths but %d joins", deaths, joins)
	}
}

func TestTransientFlappingStillServes(t *testing.T) {
	// Endpoints flap up/down at the transport layer (simnet down
	// transitions driven by the churn process) but nodes never die; the
	// fabric drops traffic to down endpoints, and the joint scheme's
	// redundancy still delivers.
	net, err := NewNetwork(NetworkConfig{
		Nodes:        100,
		MeanUptime:   3 * time.Hour,
		MeanDowntime: 10 * time.Minute,
		Seed:         17,
	})
	if err != nil {
		t.Fatal(err)
	}
	msg, err := net.Send([]byte("up and down"), 4*time.Hour, WithScheme(SchemeJoint))
	if err != nil {
		t.Fatal(err)
	}
	net.RunUntil(msg.Release().Add(10 * time.Minute))
	net.Settle()
	if _, _, ok := net.Emerged(msg); !ok {
		t.Fatal("message lost under transient flapping")
	}
	_, _, dropped := net.FabricStats()
	if dropped == 0 {
		t.Fatal("flapping endpoints dropped no traffic")
	}
}

func TestSendValidation(t *testing.T) {
	net, err := NewNetwork(NetworkConfig{Nodes: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Send(nil, time.Hour); err == nil {
		t.Error("empty message accepted")
	}
	if _, err := net.Send([]byte("x"), 0); err == nil {
		t.Error("zero emerging period accepted")
	}
	if _, err := net.Send([]byte("x"), time.Hour, WithScheme(Scheme(9))); err == nil {
		t.Error("bogus scheme accepted")
	}
}

func TestNetworkValidation(t *testing.T) {
	if _, err := NewNetwork(NetworkConfig{Nodes: 2}); err == nil {
		t.Error("2-node network accepted")
	}
	if _, err := NewNetwork(NetworkConfig{MaliciousRate: 1.5}); err == nil {
		t.Error("malicious rate 1.5 accepted")
	}
	if _, err := NewNetwork(NetworkConfig{Nodes: 10, ForgeRate: 5}); err == nil {
		t.Error("forge rate without the eclipse strategy accepted")
	}
	if _, err := NewNetwork(NetworkConfig{Nodes: 10, Attack: AttackEclipse, ForgeRate: -1}); err == nil {
		t.Error("negative forge rate accepted")
	}
}

func TestMessageAccessors(t *testing.T) {
	net, err := NewNetwork(NetworkConfig{Nodes: 40, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	msg, err := net.Send([]byte("x"), time.Hour, WithScheme(SchemeDisjoint), WithThreatModel(0.05))
	if err != nil {
		t.Fatal(err)
	}
	if msg.Plan().Scheme != SchemeDisjoint {
		t.Errorf("Plan().Scheme = %v", msg.Plan().Scheme)
	}
	if msg.CloudObject() == "" {
		t.Error("no cloud object")
	}
	if msg.Release().Before(net.Now()) {
		t.Error("release in the past")
	}
	if net.Nodes() != 40 {
		t.Errorf("Nodes = %d", net.Nodes())
	}
	if net.Cloud().Len() != 1 {
		t.Errorf("cloud holds %d objects", net.Cloud().Len())
	}
}
