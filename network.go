package selfemerge

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"selfemerge/internal/adversary"
	"selfemerge/internal/churn"
	"selfemerge/internal/cloud"
	"selfemerge/internal/core"
	"selfemerge/internal/dht"
	"selfemerge/internal/protocol"
	"selfemerge/internal/sim"
	"selfemerge/internal/stats"
	"selfemerge/internal/transport"
	"selfemerge/internal/transport/simnet"
)

// Scheme selects a self-emerging key routing scheme.
type Scheme = core.Scheme

// The four schemes of the paper, in increasing sophistication.
const (
	SchemeCentral  = core.SchemeCentral
	SchemeDisjoint = core.SchemeDisjoint
	SchemeJoint    = core.SchemeJoint
	SchemeKeyShare = core.SchemeKeyShare
)

// NetworkConfig sizes an in-process self-emerging data network.
type NetworkConfig struct {
	// Nodes is the DHT population (default 100).
	Nodes int
	// MaliciousRate is the fraction p of Sybil-controlled nodes (default 0).
	MaliciousRate float64
	// DropAttack switches malicious nodes from spying (release-ahead
	// collection) to dropping every package they hold.
	DropAttack bool
	// MeanLifetime enables churn: nodes die permanently with exponentially
	// distributed lifetimes of this mean. Zero disables churn.
	MeanLifetime time.Duration
	// Latency is the one-way network latency (default 5ms).
	Latency time.Duration
	// Seed makes the network fully reproducible.
	Seed uint64
}

func (c NetworkConfig) withDefaults() (NetworkConfig, error) {
	if c.Nodes == 0 {
		c.Nodes = 100
	}
	if c.Nodes < 3 {
		return c, errors.New("selfemerge: need at least 3 nodes")
	}
	if c.MaliciousRate < 0 || c.MaliciousRate > 1 {
		return c, fmt.Errorf("selfemerge: malicious rate %v outside [0,1]", c.MaliciousRate)
	}
	if c.Latency == 0 {
		c.Latency = 5 * time.Millisecond
	}
	return c, nil
}

// Network is an in-process deployment: a simulated-time Kademlia DHT with
// protocol hosts on every node, a cloud store, an adversary collector, and
// an optional churn process. It is the environment the examples and tests
// drive; create one per experiment.
type Network struct {
	cfg       NetworkConfig
	simulator *sim.Simulator
	fabric    *simnet.Network
	cloudSt   *cloud.Store
	collector *adversary.Collector
	rng       *stats.RNG
	churnProc *churn.Process

	nodes    []*dht.Node
	receiver *dht.Node

	mu         sync.Mutex
	deliveries map[protocol.MissionID]delivery
}

type delivery struct {
	at     time.Time
	secret []byte
}

// NewNetwork boots and bootstraps the network; it returns with the DHT
// converged (simulated time has advanced past the join traffic).
func NewNetwork(cfg NetworkConfig) (*Network, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	n := &Network{
		cfg:        cfg,
		simulator:  sim.NewSimulator(),
		cloudSt:    cloud.NewStore(),
		collector:  adversary.NewCollector(),
		rng:        stats.NewRNG(cfg.Seed),
		deliveries: make(map[protocol.MissionID]delivery),
	}
	n.fabric = simnet.New(n.simulator, simnet.Config{BaseLatency: cfg.Latency, Seed: cfg.Seed + 1})
	if cfg.MeanLifetime > 0 {
		n.churnProc = churn.New(n.simulator, churn.Config{MeanLifetime: cfg.MeanLifetime, Seed: cfg.Seed + 2})
	}

	malicious := n.rng.MarkedSet(cfg.Nodes, int(cfg.MaliciousRate*float64(cfg.Nodes)))
	for i := 0; i < cfg.Nodes; i++ {
		if err := n.addNode(i, malicious[i]); err != nil {
			return nil, err
		}
	}
	n.receiver = n.nodes[1]
	seed := []dht.Contact{n.nodes[0].Contact()}
	for _, node := range n.nodes[1:] {
		node.Bootstrap(seed, nil)
	}
	// Settle the join traffic within a bounded window. Draining the whole
	// event queue would fast-forward through every scheduled churn death.
	n.simulator.RunFor(time.Minute)
	return n, nil
}

func (n *Network) addNode(idx int, malicious bool) error {
	addr := transport.Addr(fmt.Sprintf("node-%d", idx))
	ep := n.fabric.Endpoint(addr)
	host := protocol.NewHost(protocol.HostConfig{
		Clock:     n.simulator,
		Malicious: malicious,
		Drop:      malicious && n.cfg.DropAttack,
		Reporter:  n.collector,
		OnSecret: func(mission protocol.MissionID, secret []byte) {
			n.mu.Lock()
			defer n.mu.Unlock()
			if _, dup := n.deliveries[mission]; !dup {
				n.deliveries[mission] = delivery{
					at:     n.simulator.Now(),
					secret: append([]byte(nil), secret...),
				}
			}
		},
	})
	node, err := dht.NewNode(dht.Config{
		ID:       dht.RandomID(n.rng),
		Endpoint: ep,
		Clock:    n.simulator,
		OnApp:    host.HandleApp,
	})
	if err != nil {
		return err
	}
	host.Attach(node)
	n.nodes = append(n.nodes, node)

	// Churn: the node dies permanently at an exponential lifetime; the
	// receiver (node 1) and bootstrap (node 0) are exempt so experiments
	// can always observe outcomes.
	if n.churnProc != nil && idx > 1 {
		n.churnProc.ScheduleDeath(func() { _ = node.Close() })
	}
	return nil
}

// Now returns the current simulated time.
func (n *Network) Now() time.Time { return n.simulator.Now() }

// RunFor advances simulated time by d, executing all due events.
func (n *Network) RunFor(d time.Duration) { n.simulator.RunFor(d) }

// RunUntil advances simulated time to the given instant.
func (n *Network) RunUntil(t time.Time) { n.simulator.RunUntil(t) }

// Settle flushes in-flight traffic by advancing simulated time a few
// minutes. It deliberately does not drain the whole event queue: with churn
// enabled the queue always holds far-future death timers, and jumping to
// them would kill the network.
func (n *Network) Settle() { n.simulator.RunFor(5 * time.Minute) }

// Nodes returns the number of live DHT nodes created (including any that
// have since churned out).
func (n *Network) Nodes() int { return len(n.nodes) }

// Cloud exposes the network's cloud store.
func (n *Network) Cloud() *cloud.Store { return n.cloudSt }
