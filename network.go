package selfemerge

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"selfemerge/internal/adversary"
	"selfemerge/internal/churn"
	"selfemerge/internal/cloud"
	"selfemerge/internal/core"
	"selfemerge/internal/dht"
	"selfemerge/internal/fault"
	"selfemerge/internal/protocol"
	"selfemerge/internal/sim"
	"selfemerge/internal/stats"
	"selfemerge/internal/transport"
	"selfemerge/internal/transport/simnet"
)

// Scheme selects a self-emerging key routing scheme.
type Scheme = core.Scheme

// The four schemes of the paper, in increasing sophistication.
const (
	SchemeCentral  = core.SchemeCentral
	SchemeDisjoint = core.SchemeDisjoint
	SchemeJoint    = core.SchemeJoint
	SchemeKeyShare = core.SchemeKeyShare
)

// AttackStrategy selects what Sybil-controlled holders do with their
// position.
type AttackStrategy = adversary.Strategy

// The adversary strategies: passive release-ahead collection, package
// dropping, and bucket-poisoning eclipse (which also drops).
const (
	AttackSpy     = adversary.StrategySpy
	AttackDrop    = adversary.StrategyDrop
	AttackEclipse = adversary.StrategyEclipse
)

// FaultProfile selects a correlated-fault regime for the simulated fabric
// (see internal/fault).
type FaultProfile = fault.Profile

// The fault regimes: none, Gilbert–Elliott burst loss, timed bisection
// partitions, and crash-restart flapping.
const (
	FaultNone      = fault.ProfileNone
	FaultBurst     = fault.ProfileBurst
	FaultPartition = fault.ProfilePartition
	FaultFlap      = fault.ProfileFlap
)

// Resilience is the retry-hardening counter set ResilienceStats reports
// (see dht.Resilience).
type Resilience = dht.Resilience

// TablePolicy selects the DHT routing-table bucket admission policy.
type TablePolicy = dht.TablePolicy

// The admission policies: ping-before-evict (eclipse-resistant) and the
// historical naive stale-eviction.
const (
	TablePingEvict = dht.TablePingEvict
	TableNaive     = dht.TableNaive
)

// NetworkConfig sizes an in-process self-emerging data network.
type NetworkConfig struct {
	// Nodes is the DHT population (default 100).
	Nodes int
	// MaliciousRate is the fraction p of Sybil-controlled nodes (default 0).
	MaliciousRate float64
	// DropAttack switches malicious nodes from spying (release-ahead
	// collection) to dropping every package they hold. Equivalent to
	// Attack: adversary.StrategyDrop; kept for existing callers.
	DropAttack bool
	// Attack selects the malicious-holder strategy: spy (default), drop, or
	// eclipse (bucket poisoning plus drop; see adversary.Strategy). When
	// both this and DropAttack are set they must agree; DropAttack alone
	// maps to StrategyDrop.
	Attack adversary.Strategy
	// ForgeRate is the eclipse flood intensity: forged contacts emitted per
	// attacker per minute. Only meaningful with StrategyEclipse; zero means
	// the eclipse adversary degenerates to drop.
	ForgeRate float64
	// Table selects the DHT bucket admission policy. The default resolves
	// to dht.TableNaive — the historical behavior every recorded
	// deterministic run was captured under — NOT the dht package's own
	// secure default; attack experiments flip it to dht.TablePingEvict to
	// measure the defense.
	Table dht.TablePolicy
	// MeanLifetime enables churn: nodes die permanently with exponentially
	// distributed lifetimes of this mean. Zero disables churn.
	MeanLifetime time.Duration
	// Replace keeps the population stationary under churn: every death is
	// followed by a fresh node joining and bootstrapping into the DHT,
	// malicious with probability MaliciousRate — the steady-state network
	// of Section II-C. The replacement adopts the dead node's identifier
	// and address with wiped state, taking over the vacated DHT zone, which
	// is exactly the slot-refill semantics the paper's repair model (and
	// the Monte Carlo engine) assumes. Without Replace the population only
	// shrinks.
	Replace bool
	// MeanUptime and MeanDowntime enable transient availability flapping on
	// top of permanent churn: endpoints alternate up/down with exponential
	// sojourn times at the simnet transport layer. Both must be set.
	MeanUptime   time.Duration
	MeanDowntime time.Duration
	// HonestEndpoints exempts the three infrastructure nodes (bootstrap,
	// receiver, dispatcher) from the malicious marking, matching the
	// honest-endpoint assumption of the paper's model. The marked count
	// stays floor(MaliciousRate * Nodes), drawn from the remaining nodes.
	HonestEndpoints bool
	// Replicas is how many closest nodes receive each protocol packet
	// (default 2). Model-faithful scenario runs use 1.
	Replicas int
	// Repair enables protocol-level churn repair: surviving key custodians
	// re-grant layer keys to churn replacements once per holding period.
	Repair bool
	// Fault selects a correlated-fault regime for the fabric: Gilbert–
	// Elliott burst loss, timed bisection partitions, or crash-restart
	// flapping (see internal/fault). FaultNone (the default) constructs no
	// engine at all, so default runs keep their historical byte-exact event
	// sequences. Fault profiles require the single event loop: the
	// partition engine's cross-shard hand-off path bypasses the fabric
	// injector.
	Fault fault.Profile
	// FaultSeverity in [0,1] scales the fault regime's intensity; zero
	// makes any profile a no-op (and constructs no engine).
	FaultSeverity float64
	// Retry is the total number of send attempts per DHT RPC (0 or 1:
	// single-shot, the historical behavior). Values above 1 enable the
	// full retry-hardened arm: dht.RetryPolicy exponential backoff on every
	// RPC, acknowledged app sends with receiver dedup, lookup re-query of
	// timed-out contacts, and doubled repair pushes at the protocol layer.
	Retry int
	// Partition splits the one population across this many parallel event
	// loops (shards), each with its own simulator and simnet fabric slice,
	// advancing in conservative lockstep epochs with cross-shard sends
	// merged at epoch barriers in a fixed order — the scaling mode for
	// populations one core's event loop cannot hold. A node's shard is a
	// pure function of its DHT identifier (dht.ID.Shard), so churn
	// replacements stay on their predecessor's shard. Zero keeps the
	// historical single event loop; 1 runs the partition machinery with one
	// shard, which is byte-identical to the single loop. Results are
	// byte-deterministic at any worker count or GOMAXPROCS.
	Partition int
	// PartitionWorkers caps how many shard loops run concurrently within an
	// epoch (0 = GOMAXPROCS). Execution throttle only: results are
	// identical for any value.
	PartitionWorkers int
	// Latency is the one-way network latency (default 5ms).
	Latency time.Duration
	// Seed makes the network fully reproducible.
	Seed uint64
	// SystemRand switches the sender-side cryptographic randomness —
	// mission identifiers, layer keys, GCM nonces, Shamir coefficients —
	// from the default seed-derived ChaCha8 stream to crypto/rand. The
	// deterministic default makes every byte of a run (ciphertexts
	// included) a pure function of Seed; it never affects mission outcomes,
	// which depend on placement and timing, not key values. Real
	// deployments (cmd/emergectl) set SystemRand, because a 64-bit seed is
	// not a key-material secret.
	SystemRand bool
}

func (c NetworkConfig) withDefaults() (NetworkConfig, error) {
	if c.Nodes == 0 {
		c.Nodes = 100
	}
	if c.Nodes < 3 {
		return c, errors.New("selfemerge: need at least 3 nodes")
	}
	if c.MaliciousRate < 0 || c.MaliciousRate > 1 {
		return c, fmt.Errorf("selfemerge: malicious rate %v outside [0,1]", c.MaliciousRate)
	}
	if c.Latency < 0 {
		// A negative latency would schedule deliveries into the past on the
		// single loop and corrupt the partition engine's lookahead; zero is
		// a defaulting request, negative is always a caller bug.
		return c, fmt.Errorf("selfemerge: negative latency %v", c.Latency)
	}
	if c.Latency == 0 {
		c.Latency = 5 * time.Millisecond
	}
	if c.DropAttack {
		switch c.Attack {
		case adversary.StrategySpy:
			c.Attack = adversary.StrategyDrop
		case adversary.StrategyDrop, adversary.StrategyEclipse:
			// Drop semantics already implied.
		}
	}
	if c.ForgeRate < 0 {
		return c, fmt.Errorf("selfemerge: negative forge rate %v", c.ForgeRate)
	}
	if c.ForgeRate > 0 && c.Attack != adversary.StrategyEclipse {
		return c, errors.New("selfemerge: ForgeRate requires Attack: eclipse")
	}
	if c.Table == dht.TableDefault {
		c.Table = dht.TableNaive
	}
	if c.Partition < 0 {
		return c, fmt.Errorf("selfemerge: negative partition count %d", c.Partition)
	}
	if c.Partition > 0 && c.ForgeRate > 0 {
		// The eclipse forger is a global actor ticking on the single
		// simulator and reading zone intelligence as it is collected; under
		// the partition engine reports are deferred to epoch barriers, which
		// would shift its observations. Eclipse measurements stay on the
		// single loop (or replicate-mode sharding).
		return c, errors.New("selfemerge: ForgeRate requires the single event loop, not Partition")
	}
	if err := (fault.Config{Profile: c.Fault, Severity: c.FaultSeverity}).Validate(); err != nil {
		return c, err
	}
	if c.Partition > 0 && c.Fault != fault.ProfileNone && c.FaultSeverity > 0 {
		// The fault injector hooks the single fabric's send path; the
		// partition engine's cross-shard hand-offs bypass it, so a sharded
		// run would inject faults on a shard-dependent subset of traffic.
		// Fault measurements stay on the single loop (or replicate-mode
		// sharding, where each replica network carries its own engine).
		return c, errors.New("selfemerge: fault profiles require the single event loop, not Partition")
	}
	if c.Retry < 0 {
		return c, fmt.Errorf("selfemerge: negative retry attempts %d", c.Retry)
	}
	return c, nil
}

// Network is an in-process deployment: a simulated-time Kademlia DHT with
// protocol hosts on every node, a cloud store, an adversary collector, and
// an optional churn process. It is the environment the examples and tests
// drive; create one per experiment.
type Network struct {
	cfg       NetworkConfig
	simulator *sim.Simulator
	fabric    *simnet.Network
	cloudSt   *cloud.Store
	collector *adversary.Collector
	rng       *stats.RNG
	churnProc *churn.Process

	// Partition mode (cfg.Partition >= 1): per-shard event loops advancing
	// in lockstep, the partitioned fabric, and the per-shard state that
	// keeps concurrent shard loops deterministic — a churn process and a
	// replacement-marking RNG per shard (shard 0 aliases the classic
	// rng/seed streams, so a one-shard partition replays the single-loop
	// run byte for byte), plus per-shard adversary report queues drained at
	// barriers. simulator aliases sims[0]: its clock is the barrier time.
	sims       []*sim.Simulator
	lockstep   *sim.Lockstep
	partFab    *simnet.Partition
	shardRng   []*stats.RNG
	shardChurn []*churn.Process
	reports    []reportQueue
	// cryptoSrc feeds every sender-side cryptographic draw; sender wraps it
	// for mission construction. Seed-derived ChaCha8 by default, crypto/rand
	// with SystemRand.
	cryptoSrc io.Reader
	sender    *protocol.Sender
	forger    *adversary.Forger
	// faultEng drives correlated faults on the single fabric; nil unless an
	// active fault profile is configured (the Forger pattern: constructed
	// only when enabled, so default runs add no RNG draws and no events).
	faultEng *fault.Engine

	nodes    []*dht.Node
	receiver *dht.Node

	mu         sync.Mutex
	deliveries map[protocol.MissionID]delivery
	deaths     int
	joins      int
	// retired accumulates the resilience counters of churn-replaced nodes
	// at death, so ResilienceStats never loses a dead node's activity.
	retired dht.Resilience
}

type delivery struct {
	at     time.Time
	secret []byte
}

// NewNetwork boots and bootstraps the network; it returns with the DHT
// converged (simulated time has advanced past the join traffic).
func NewNetwork(cfg NetworkConfig) (*Network, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	n := &Network{
		cfg:        cfg,
		cloudSt:    cloud.NewStore(),
		collector:  adversary.NewCollector(),
		rng:        stats.NewRNG(cfg.Seed),
		deliveries: make(map[protocol.MissionID]delivery),
	}
	if !cfg.SystemRand {
		// A decorrelated substream of the network seed, so the crypto
		// stream never re-samples the bytes the structural RNG consumes.
		n.cryptoSrc = stats.NewByteStream(stats.Mix64(cfg.Seed, 0xc0de))
	}
	n.sender = protocol.NewSender(n.cryptoSrc)
	churnCfg := churn.Config{
		MeanLifetime: cfg.MeanLifetime,
		MeanUptime:   cfg.MeanUptime,
		MeanDowntime: cfg.MeanDowntime,
		Seed:         cfg.Seed + 2,
	}
	churnEnabled := cfg.MeanLifetime > 0 || (cfg.MeanUptime > 0 && cfg.MeanDowntime > 0)
	if cfg.Partition > 0 {
		// Partition mode: one event loop, fabric slice, churn process and
		// replacement RNG per shard. Shard 0 keeps every historical seed
		// derivation (fabric Seed+1, churn Seed+2, the shared structural
		// rng), so Partition: 1 replays the classic run byte for byte;
		// higher shards draw decorrelated substreams.
		n.sims = make([]*sim.Simulator, cfg.Partition)
		clocks := make([]sim.Clock, cfg.Partition)
		for i := range n.sims {
			n.sims[i] = sim.NewSimulator()
			clocks[i] = n.sims[i]
		}
		n.simulator = n.sims[0]
		part, err := simnet.NewPartition(clocks, simnet.Config{BaseLatency: cfg.Latency, Seed: cfg.Seed + 1})
		if err != nil {
			return nil, err
		}
		n.partFab = part
		n.reports = make([]reportQueue, cfg.Partition)
		n.shardRng = make([]*stats.RNG, cfg.Partition)
		n.shardRng[0] = n.rng
		for i := 1; i < cfg.Partition; i++ {
			n.shardRng[i] = stats.NewRNG(stats.Mix64(cfg.Seed+3, uint64(i)))
		}
		if churnEnabled {
			n.shardChurn = make([]*churn.Process, cfg.Partition)
			for i := range n.shardChurn {
				sub := churnCfg
				if i > 0 {
					sub.Seed = stats.Mix64(cfg.Seed+2, uint64(i))
				}
				n.shardChurn[i] = churn.New(n.sims[i], sub)
			}
		}
		if err := part.CheckLookahead(part.Lookahead()); err != nil {
			return nil, err
		}
		n.lockstep = &sim.Lockstep{
			Sims:      n.sims,
			Lookahead: part.Lookahead(),
			Workers:   cfg.PartitionWorkers,
			Exchange:  n.exchange,
			Release:   n.releaseReports,
		}
	} else {
		n.simulator = sim.NewSimulator()
		fabCfg := simnet.Config{BaseLatency: cfg.Latency, Seed: cfg.Seed + 1}
		if cfg.Fault != fault.ProfileNone && cfg.FaultSeverity > 0 {
			// Only active fault runs construct the engine (the Forger
			// pattern): a constructed-but-idle engine would still be consulted
			// per datagram and could shift allocation behavior. The seed is a
			// decorrelated substream of the point seed, so the fault schedule
			// never re-samples fabric or churn draws.
			eng, err := fault.New(fault.Config{
				Profile:  cfg.Fault,
				Severity: cfg.FaultSeverity,
				Seed:     stats.Mix64(cfg.Seed, 0xfa177),
			})
			if err != nil {
				return nil, err
			}
			n.faultEng = eng
			fabCfg.Inject = eng
		}
		n.fabric = simnet.New(n.simulator, fabCfg)
		if churnEnabled {
			n.churnProc = churn.New(n.simulator, churnCfg)
		}
	}

	if cfg.Attack == adversary.StrategyEclipse && cfg.ForgeRate > 0 {
		// Only eclipse runs construct the forger: its tick events and RNG
		// draws would otherwise shift every honest run's event sequence.
		n.forger = adversary.NewForger(n.simulator, cfg.ForgeRate, stats.Mix64(cfg.Seed, 0xf049e))
		n.collector.SetZoneSink(n.forger.ObserveZone)
	}

	malicious := n.markMalicious()
	for i := 0; i < cfg.Nodes; i++ {
		if err := n.addNode(i, malicious[i]); err != nil {
			return nil, err
		}
	}
	if n.forger != nil {
		n.forger.Start()
	}
	n.receiver = n.nodes[1]
	seed := []dht.Contact{n.nodes[0].Contact()}
	for _, node := range n.nodes[1:] {
		node.Bootstrap(seed, nil)
	}
	// Settle the join traffic within a bounded window. Draining the whole
	// event queue would fast-forward through every scheduled churn death.
	n.RunFor(time.Minute)
	return n, nil
}

// shardOf maps a node identifier to its owning shard (always 0 on the
// classic single loop).
func (n *Network) shardOf(id dht.ID) int {
	if n.partFab == nil {
		return 0
	}
	return id.Shard(n.partFab.Shards())
}

// clockOf returns the event loop a shard's nodes run on.
func (n *Network) clockOf(shard int) *sim.Simulator {
	if n.sims != nil {
		return n.sims[shard]
	}
	return n.simulator
}

// churnOf returns the churn process driving a shard's deaths and flapping
// (nil when churn is disabled).
func (n *Network) churnOf(shard int) *churn.Process {
	if n.shardChurn != nil {
		return n.shardChurn[shard]
	}
	return n.churnProc
}

// rngOf returns the RNG for a shard's post-boot structural draws
// (replacement maliciousness marking).
func (n *Network) rngOf(shard int) *stats.RNG {
	if n.shardRng != nil {
		return n.shardRng[shard]
	}
	return n.rng
}

// reportQueue collects one shard's malicious-holder observations during an
// epoch. It is written only from that shard's event loop and drained only at
// barriers, so it needs no lock.
type reportQueue struct {
	recs []reportRec
	head int // consumed prefix during a release merge
	seq  uint64
}

// reportRec is one deferred adversary observation with its merge
// coordinates.
type reportRec struct {
	at    int64
	shard int
	seq   uint64
	from  dht.ID
	pkt   protocol.Packet
}

// shardReporter defers one shard's collector reports into its queue. The
// packet's payload is cloned at enqueue: the transport reclaims the handler's
// buffer when the event returns, long before the barrier drain.
type shardReporter struct {
	n     *Network
	shard int
}

func (r shardReporter) Report(now time.Time, from dht.ID, pkt protocol.Packet) {
	q := &r.n.reports[r.shard]
	pkt.Data = append([]byte(nil), pkt.Data...)
	q.recs = append(q.recs, reportRec{at: now.UnixNano(), shard: r.shard, seq: q.seq, from: from, pkt: pkt})
	q.seq++
}

// exchange is the lockstep barrier hook: inject the queued cross-shard
// datagrams into the destination simulators before the barrier probes them.
// Deferred adversary reports are NOT drained here — with the adaptive epoch
// bounds the shard clocks diverge inside an epoch, so a report from a
// wide-bound shard may be queued before an earlier-timestamped one from a
// narrow-bound shard exists; releaseReports holds everything back until the
// barrier proves no earlier report can still appear.
func (n *Network) exchange() {
	n.partFab.Flush()
}

// releaseReports is the lockstep Release hook: feed the deferred adversary
// reports timestamped strictly before the horizon to the collector,
// single-threaded, in (time, shard, seq) order. The lockstep calls it with
// the global next-event time after each barrier probe — every report any
// shard can still produce is at or after that — so the collector ingests a
// prefix of the global timestamp order at every call, and its first-wins
// state stays a pure function of the run (what the adversary is judged to
// have known never depends on epoch shapes or worker counts). Reports
// timestamped exactly at the horizon wait for the next barrier; the final
// call at deadline+1ns flushes them.
//
// Each queue is filled in nondecreasing timestamp order (a shard's clock
// only advances), so the drain is a k-way merge over queue prefixes, like
// the fabric's Flush: take the earliest (at, shard) head, per-queue seq
// monotonicity supplies the rest of the order.
func (n *Network) releaseReports(before time.Time) {
	horizon := before.UnixNano()
	for {
		best := -1
		var bestAt int64
		for i := range n.reports {
			q := &n.reports[i]
			if q.head == len(q.recs) {
				continue
			}
			// Queues are at-sorted: a head at or past the horizon parks the
			// whole queue until a later release.
			if at := q.recs[q.head].at; at < horizon && (best == -1 || at < bestAt) {
				best, bestAt = i, at
			}
		}
		if best == -1 {
			break
		}
		q := &n.reports[best]
		r := &q.recs[q.head]
		n.collector.Report(time.Unix(0, r.at), r.from, r.pkt)
		r.pkt.Data = nil // release the clone
		q.head++
	}
	for i := range n.reports {
		q := &n.reports[i]
		if q.head == 0 {
			continue
		}
		rem := copy(q.recs, q.recs[q.head:])
		for j := rem; j < len(q.recs); j++ {
			q.recs[j].pkt.Data = nil // duplicates of the compacted records
		}
		q.recs = q.recs[:rem]
		q.head = 0
	}
}

// markMalicious draws the initial malicious marking. With HonestEndpoints
// the three infrastructure nodes (bootstrap 0, receiver 1, dispatcher 2)
// are exempt, matching the honest-endpoint assumption of the paper's model.
func (n *Network) markMalicious() []bool {
	count := int(n.cfg.MaliciousRate * float64(n.cfg.Nodes))
	if !n.cfg.HonestEndpoints {
		return n.rng.MarkedSet(n.cfg.Nodes, count)
	}
	const infra = 3
	eligible := n.cfg.Nodes - infra
	if count > eligible {
		count = eligible
	}
	out := make([]bool, infra, n.cfg.Nodes)
	return append(out, n.rng.MarkedSet(eligible, count)...)
}

func (n *Network) addNode(idx int, malicious bool) error {
	addr := transport.Addr(fmt.Sprintf("node-%d", idx))
	return n.spawn(addr, dht.RandomID(n.rng), idx, malicious)
}

// spawn creates a live node with the given address and identifier, installs
// it at population slot idx (replacing — and releasing — any dead
// predecessor there), and, for churn-eligible slots, schedules its death
// and replacement.
func (n *Network) spawn(addr transport.Addr, id dht.ID, idx int, malicious bool) error {
	shard := n.shardOf(id)
	clock := n.clockOf(shard)
	var ep transport.Endpoint
	if n.partFab != nil {
		ep = n.partFab.Endpoint(shard, addr)
	} else {
		ep = n.fabric.Endpoint(addr)
	}
	var onSecret func(protocol.MissionID, []byte)
	if idx == 1 {
		// Only the receiver's deliveries count: a stray PkSecret landing on
		// another node (possible while routing tables converge) is not an
		// emergence. The timestamp comes from the receiver's own shard
		// clock — the loop this callback runs on.
		onSecret = func(mission protocol.MissionID, secret []byte) {
			n.mu.Lock()
			defer n.mu.Unlock()
			if _, dup := n.deliveries[mission]; !dup {
				n.deliveries[mission] = delivery{
					at:     clock.Now(),
					secret: append([]byte(nil), secret...),
				}
			}
		}
	}
	var reporter protocol.Reporter = n.collector
	if n.partFab != nil {
		// Concurrent shard loops reporting straight into the collector would
		// interleave nondeterministically: queue per shard instead and merge
		// at epoch barriers in (time, shard, seq) order.
		reporter = shardReporter{n: n, shard: shard}
	}
	host := protocol.NewHost(protocol.HostConfig{
		Clock:     clock,
		Malicious: malicious,
		Drop:      malicious && n.cfg.Attack.Drops(),
		Reporter:  reporter,
		OnSecret:  onSecret,
		Replicas:  n.cfg.Replicas,
		Repair:    n.cfg.Repair,
		Retry:     n.cfg.Retry > 1,
	})
	node, err := dht.NewNode(dht.Config{
		ID:       id,
		Endpoint: ep,
		Clock:    clock,
		Table:    n.cfg.Table,
		Retry:    dht.RetryPolicy{Attempts: n.cfg.Retry},
		OnApp:    host.HandleApp,
	})
	if err != nil {
		return err
	}
	host.Attach(node)
	if n.forger != nil {
		n.forger.AddVictim(addr)
		if malicious {
			n.forger.SetAttacker(idx, ep)
		} else {
			n.forger.ClearAttacker(idx)
		}
	}
	n.mu.Lock()
	if idx < len(n.nodes) {
		n.nodes[idx] = node // replacement: drop the dead predecessor's state
	} else {
		n.nodes = append(n.nodes, node)
	}
	n.mu.Unlock()

	// Churn: the node dies permanently at an exponential lifetime and flaps
	// transiently at the transport layer; the bootstrap (node 0), receiver
	// (node 1) and dispatcher (node 2) are exempt so experiments can always
	// launch missions and observe outcomes — the model's honest, stable
	// endpoints.
	proc := n.churnOf(shard)
	if idx <= 2 {
		return nil
	}
	// Crash-restart windows (ProfileFlap): the endpoint goes transport-down
	// for a sojourn and comes back with routing table, stored values and
	// held custody intact — unlike a churn death, which closes the node and
	// spawns a wiped replacement. The schedule is a pure function of
	// (fault seed, address). Fault profiles run on the single loop only, so
	// n.fabric is always the live fabric here.
	stopCrash := func() {}
	if n.faultEng != nil {
		stopCrash = n.faultEng.ManageCrashes(clock, addr, func(down bool) { n.fabric.SetDown(addr, down) })
	}
	if proc == nil {
		return nil
	}
	var stopFlap func()
	if n.partFab != nil {
		stopFlap = n.partFab.ApplyChurn(addr, proc)
	} else {
		stopFlap = n.fabric.ApplyChurn(addr, proc)
	}
	proc.ScheduleDeath(func() {
		stopFlap()
		stopCrash()
		// Harvest the dying node's resilience counters before its slot is
		// reused; without Replace the closed node stays in the population
		// slice and keeps reporting its own totals.
		if n.cfg.Replace {
			r := node.Resilience()
			n.mu.Lock()
			n.retired.Add(r)
			n.mu.Unlock()
		}
		_ = node.Close()
		n.mu.Lock()
		n.deaths++
		n.mu.Unlock()
		if n.cfg.Replace {
			n.join(addr, id, idx)
		}
	})
	return nil
}

// join spawns the replacement for the dead node at population slot idx — a
// fresh node with wiped state taking over the vacated address and DHT zone —
// and bootstraps it. It is malicious with probability MaliciousRate,
// keeping the Sybil fraction stationary as churn replenishes the network.
func (n *Network) join(addr transport.Addr, id dht.ID, idx int) {
	// The maliciousness draw comes from the joining node's shard RNG: the
	// death event runs on that shard's loop, and a shared RNG across
	// concurrent loops would make the marking sequence depend on scheduling.
	if err := n.spawn(addr, id, idx, n.rngOf(n.shardOf(id)).Bool(n.cfg.MaliciousRate)); err != nil {
		// Unreachable by construction: spawn only fails on a nil
		// endpoint/clock or zero ID, and a replacement reuses a valid ID on
		// a fresh endpoint. If it ever fires, the joins counter diverging
		// from deaths is the diagnostic.
		return
	}
	n.mu.Lock()
	n.joins++
	replacement := n.nodes[idx]
	seed := n.nodes[0].Contact()
	n.mu.Unlock()
	replacement.Bootstrap([]dht.Contact{seed}, nil)
}

// ChurnEvents reports how many permanent deaths and replacement joins have
// occurred so far.
func (n *Network) ChurnEvents() (deaths, joins int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.deaths, n.joins
}

// ForgedContacts reports how many forged contact claims the eclipse
// adversary has emitted so far (zero under other strategies).
func (n *Network) ForgedContacts() uint64 {
	if n.forger == nil {
		return 0
	}
	return n.forger.Forged()
}

// RouteAudit scans every current node's routing table and classifies each
// entry: live if its (identifier, address) binding matches a node currently
// in the population, poisoned otherwise. Without churn, poisoned entries are
// exactly the eclipse adversary's forgeries that won admission; with churn,
// not-yet-expired routes to dead nodes count as poisoned too.
func (n *Network) RouteAudit() (live, poisoned int) {
	n.mu.Lock()
	nodes := append([]*dht.Node(nil), n.nodes...)
	n.mu.Unlock()
	real := make(map[dht.ID]transport.Addr, len(nodes))
	for _, node := range nodes {
		real[node.ID()] = node.Contact().Addr
	}
	for _, node := range nodes {
		node.Table().Each(func(c dht.Contact) {
			if addr, ok := real[c.ID]; ok && addr == c.Addr {
				live++
			} else {
				poisoned++
			}
		})
	}
	return live, poisoned
}

// ResilienceStats sums the population's fault-recovery counters — retries,
// recovered RPCs, suppressed duplicate deliveries — over the live nodes
// plus every churn-replaced node's final counts.
func (n *Network) ResilienceStats() dht.Resilience {
	n.mu.Lock()
	nodes := append([]*dht.Node(nil), n.nodes...)
	total := n.retired
	n.mu.Unlock()
	for _, node := range nodes {
		total.Add(node.Resilience())
	}
	return total
}

// FabricStats reports transport-level (sent, delivered, dropped) datagram
// counts.
func (n *Network) FabricStats() (sent, delivered, dropped int) {
	if n.partFab != nil {
		return n.partFab.Stats()
	}
	return n.fabric.Stats()
}

// LoopStats reports the partition engine's event-loop counters: epoch
// barriers executed, epochs with at most one busy shard (the adaptive
// bound's inline fast-forwards), and hand-off outbox capacity growths. All
// three are pure functions of the configuration and seed — independent of
// GOMAXPROCS and worker counts — which is what lets CI gate them. Zero in
// classic (non-partitioned) mode.
func (n *Network) LoopStats() (epochs, idleSkips, mergeAllocs uint64) {
	if n.lockstep == nil {
		return 0, 0, 0
	}
	return n.lockstep.Epochs(), n.lockstep.IdleSkips(), n.partFab.MergeAllocs()
}

// Now returns the current simulated time. In partition mode this is the
// barrier time: between Run calls every shard clock agrees.
func (n *Network) Now() time.Time { return n.simulator.Now() }

// RunFor advances simulated time by d, executing all due events.
func (n *Network) RunFor(d time.Duration) {
	if n.lockstep != nil {
		n.lockstep.RunFor(d)
		return
	}
	n.simulator.RunFor(d)
}

// RunUntil advances simulated time to the given instant.
func (n *Network) RunUntil(t time.Time) {
	if n.lockstep != nil {
		n.lockstep.RunUntil(t)
		return
	}
	n.simulator.RunUntil(t)
}

// Settle flushes in-flight traffic by advancing simulated time a few
// minutes. It deliberately does not drain the whole event queue: with churn
// enabled the queue always holds far-future death timers, and jumping to
// them would kill the network.
func (n *Network) Settle() { n.RunFor(5 * time.Minute) }

// Nodes returns the population size: one slot per node, with churn
// replacements taking over their dead predecessor's slot. Without Replace,
// slots of churned-out nodes still count.
func (n *Network) Nodes() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.nodes)
}

// Cloud exposes the network's cloud store.
func (n *Network) Cloud() *cloud.Store { return n.cloudSt }
