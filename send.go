package selfemerge

import (
	"fmt"
	"time"

	"selfemerge/internal/core"
	"selfemerge/internal/crypto/seal"
	"selfemerge/internal/protocol"
)

// SendOption customizes Send.
type SendOption func(*sendConfig)

type sendConfig struct {
	scheme        Scheme
	maliciousRate float64
	budget        int
	plan          *core.Plan
	missionID     *protocol.MissionID
}

// WithScheme selects the routing scheme (default SchemeJoint).
func WithScheme(s Scheme) SendOption {
	return func(c *sendConfig) { c.scheme = s }
}

// WithThreatModel tells the planner what fraction of DHT nodes to assume
// compromised when sizing the path structure (default 0.2).
func WithThreatModel(maliciousRate float64) SendOption {
	return func(c *sendConfig) { c.maliciousRate = maliciousRate }
}

// WithNodeBudget caps how many DHT nodes the plan may consume (default:
// the network size).
func WithNodeBudget(n int) SendOption {
	return func(c *sendConfig) { c.budget = n }
}

// WithPlan bypasses the planner entirely (advanced use and tests).
func WithPlan(plan core.Plan) SendOption {
	return func(c *sendConfig) { c.plan = &plan }
}

// WithMissionID fixes the mission identifier instead of drawing a random
// one. The identifier determines the pseudo-random holder slot placement,
// so scenario runs use it to make whole missions reproducible under a seed.
func WithMissionID(id protocol.MissionID) SendOption {
	return func(c *sendConfig) { c.missionID = &id }
}

// Message is a dispatched self-emerging message: the handle the receiver
// uses to await emergence.
type Message struct {
	mission     protocol.Mission
	cloudObject string
}

// Start returns the dispatch time ts.
func (m *Message) Start() time.Time { return m.mission.Start }

// Release returns the release time tr.
func (m *Message) Release() time.Time { return m.mission.Release }

// MissionID returns the mission identifier.
func (m *Message) MissionID() protocol.MissionID { return m.mission.ID }

// Plan returns the routing plan protecting the message's key.
func (m *Message) Plan() core.Plan { return m.mission.Plan }

// CloudObject names the ciphertext object in the cloud store.
func (m *Message) CloudObject() string { return m.cloudObject }

// Send protects plaintext as self-emerging data: it seals it under a fresh
// key, uploads the ciphertext to the cloud, plans a routing scheme sized
// for the emerging period, and dispatches the key into the DHT. The key
// re-emerges at Now()+emerging.
func (n *Network) Send(plaintext []byte, emerging time.Duration, opts ...SendOption) (*Message, error) {
	if len(plaintext) == 0 {
		return nil, fmt.Errorf("selfemerge: empty message")
	}
	if emerging <= 0 {
		return nil, fmt.Errorf("selfemerge: emerging period must be positive")
	}
	cfg := sendConfig{scheme: SchemeJoint, maliciousRate: 0.2, budget: n.cfg.Nodes}
	for _, opt := range opts {
		opt(&cfg)
	}

	plan, err := n.planFor(cfg, emerging)
	if err != nil {
		return nil, err
	}

	key, err := seal.NewKeyFrom(n.cryptoSrc)
	if err != nil {
		return nil, err
	}
	sealer, err := seal.NewSealerRand(key, n.cryptoSrc)
	if err != nil {
		return nil, err
	}
	ciphertext, err := sealer.Encrypt(plaintext, nil)
	if err != nil {
		return nil, err
	}

	var missionID protocol.MissionID
	if cfg.missionID != nil {
		missionID = *cfg.missionID
	} else {
		missionID, err = n.sender.NewMissionID()
		if err != nil {
			return nil, err
		}
	}
	object := fmt.Sprintf("msg-%x", missionID[:8])
	n.cloudSt.Put(object, ciphertext)

	mission := protocol.Mission{
		ID:       missionID,
		Plan:     plan,
		Secret:   key.Bytes(),
		Receiver: n.receiver.ID(),
		Start:    n.simulator.Now(),
		Release:  n.simulator.Now().Add(emerging),
		Replicas: n.cfg.Replicas,
	}
	// Dispatch from a node that is neither the bootstrap nor the receiver,
	// through the network's sender (and so its randomness source).
	if _, err := n.sender.Dispatch(n.nodes[2], mission); err != nil {
		return nil, err
	}
	return &Message{mission: mission, cloudObject: object}, nil
}

func (n *Network) planFor(cfg sendConfig, emerging time.Duration) (core.Plan, error) {
	if cfg.plan != nil {
		return *cfg.plan, nil
	}
	pcfg := core.PlannerConfig{Budget: cfg.budget}
	switch cfg.scheme {
	case SchemeCentral:
		return core.PlanCentral(cfg.maliciousRate), nil
	case SchemeDisjoint, SchemeJoint:
		return core.PlanMultipath(cfg.scheme, cfg.maliciousRate, pcfg)
	case SchemeKeyShare:
		lifetime := n.cfg.MeanLifetime
		if lifetime == 0 {
			lifetime = emerging // no churn: alpha = 1, thresholds stay mild
		}
		return core.PlanKeyShare(cfg.maliciousRate, float64(emerging), float64(lifetime), pcfg)
	default:
		return core.Plan{}, fmt.Errorf("selfemerge: unknown scheme %v", cfg.scheme)
	}
}

// Emerged reports whether the message's key has emerged, and if so decrypts
// the cloud ciphertext: the receiver workflow of Figure 1. The returned
// time is when the key reached the receiver.
func (n *Network) Emerged(m *Message) (plaintext []byte, at time.Time, ok bool) {
	n.mu.Lock()
	d, found := n.deliveries[m.mission.ID]
	n.mu.Unlock()
	if !found {
		return nil, time.Time{}, false
	}
	key, err := seal.KeyFromBytes(d.secret)
	if err != nil {
		return nil, time.Time{}, false
	}
	ciphertext, err := n.cloudSt.Get(m.cloudObject, "receiver")
	if err != nil {
		return nil, time.Time{}, false
	}
	plain, err := seal.Decrypt(key, ciphertext, nil)
	if err != nil {
		return nil, time.Time{}, false
	}
	return plain, d.at, true
}

// AdversaryRecovered reports whether (and when) the Sybil adversary
// reconstructed the message key — before the release time this is a
// successful release-ahead attack.
func (n *Network) AdversaryRecovered(m *Message) (time.Time, bool) {
	return n.collector.Recovered(m.mission.ID)
}

// AdversaryDecrypts reports whether the adversary can actually read the
// message right now: it tries the reconstructed key against the cloud
// ciphertext.
func (n *Network) AdversaryDecrypts(m *Message) bool {
	secret, ok := n.collector.Secret(m.mission.ID)
	if !ok {
		return false
	}
	key, err := seal.KeyFromBytes(secret)
	if err != nil {
		return false
	}
	ciphertext, err := n.cloudSt.Get(m.cloudObject, "adversary")
	if err != nil {
		return false
	}
	_, err = seal.Decrypt(key, ciphertext, nil)
	return err == nil
}
